// A simulated semester of the Multimedia Micro-University — every paper
// mechanism in one run:
//
//   * 24 student stations join through the class administrator (AdminNode
//     assigns broadcast-vector positions, adapts m to the link budget);
//   * two instructors author courses (scripts, pages, BLOBs, SCM, library);
//   * six weekly lectures pre-broadcast down the m-ary tree over a lossy
//     campus network, with anti-entropy repair for dropped pushes and
//     post-lecture migration reclaiming student buffers;
//   * students search the virtual library and check courses in/out; the
//     semester ends with assessment reports and a QA audit of the courses.
//
// Build & run:  ./build/examples/semester
//               [--metrics-json=<path>] [--trace-json=<path>]
#include <cstdio>
#include <memory>
#include <string>

#include "core/awareness.hpp"
#include "core/registrar.hpp"
#include "core/sessions.hpp"
#include "dist/admin_node.hpp"
#include "dist/lecture.hpp"
#include "docmodel/qa_checker.hpp"
#include "net/sim_network.hpp"
#include "obs/metrics.hpp"
#include "obs/scrape.hpp"
#include "obs/trace_export.hpp"
#include "workload/patterns.hpp"

using namespace wdoc;

namespace {

struct StudentStation {
  std::unique_ptr<core::WebDocDb> db;
  std::unique_ptr<dist::AdminClient> client;
  std::unique_ptr<core::StudentSession> session;
  StationId id;
};

core::CourseSpec make_course(const std::string& num, const std::string& title,
                             const std::string& keywords) {
  core::CourseSpec spec;
  spec.script_name = "script-" + num;
  spec.course_number = num;
  spec.title = title;
  spec.keywords = keywords;
  spec.description = "Virtual course " + title;
  spec.starting_url = "http://mmu.edu/" + num + "/index.html";
  spec.html_pages = {
      {spec.starting_url + "/p0", "<html><a href=\"p1\">next</a></html>"},
      {spec.starting_url + "/p1", "<html>end</html>"},
  };
  core::CourseSpec::ResourceSpec video;
  video.digest = digest128(num + " weekly video");
  video.size = 10ull << 20;
  video.type = blob::MediaType::video;
  video.playout_ms = 0;
  spec.resources.push_back(video);
  spec.now = 1000;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_path = obs::metrics_json_arg(argc, argv);
  const std::string trace_path = obs::trace_json_arg(argc, argv);
  net::SimNetwork net(1999);
  net::StationLink campus;
  campus.up_bps = 10e6;
  campus.down_bps = 10e6;
  campus.latency = SimTime::millis(15);
  campus.loss_rate = 0.05;  // a flaky 1999 campus network

  // --- tier 2: the class administrator -----------------------------------
  dist::Coordinator coordinator;
  StationId admin_id = net.add_station(campus);
  coordinator.adapt(campus.up_bps, 0.03);
  dist::AdminNode admin(net, admin_id, coordinator,
                        coordinator.m_for(blob::MediaType::video));
  admin.bind();

  // Administration criterion: accounts, admission, registrar.
  core::AccountRegistry accounts;
  core::Registrar registrar(accounts);
  UserId registrar_office =
      accounts.create_account("registrar-office", core::Role::administrator, 0)
          .expect("admin account");
  UserId shih_id = accounts
                       .create_account("shih", core::Role::instructor, 0,
                                       registrar_office)
                       .expect("shih account");

  // --- tier 3: the instructor's station -----------------------------------
  auto instructor_db = core::WebDocDb::create().expect("instructor db");
  StationId instructor_station = net.add_station(campus);
  instructor_db->attach(net, instructor_station).expect("attach");
  dist::AdminClient instructor_client(net, *instructor_db->node(), admin_id);
  instructor_client.bind();
  instructor_client.request_join(nullptr).expect("join");
  net.run();

  core::InstructorSession shih(*instructor_db, UserId{1}, "shih");
  core::InstructorSession ma(*instructor_db, UserId{2}, "ma");
  shih.author_course(make_course("CS101", "Introduction to Computer Engineering",
                                 "hardware, logic, engineering"))
      .expect("CS101");
  ma.author_course(make_course("CS102", "Introduction to Multimedia Computing",
                               "multimedia, video, networking"))
      .expect("CS102");
  std::printf("instructors authored %zu courses at station %llu\n",
              instructor_db->library().entry_count(),
              (unsigned long long)instructor_station.value());

  // --- student stations join through the administrator ---------------------
  std::vector<StudentStation> students;
  for (int i = 0; i < 24; ++i) {
    StudentStation s;
    s.db = core::WebDocDb::create().expect("student db");
    s.id = net.add_station(campus);
    s.db->attach(net, s.id).expect("attach");
    s.client = std::make_unique<dist::AdminClient>(net, *s.db->node(), admin_id);
    s.client->bind();
    s.client->request_join(nullptr).expect("join");
    s.session = std::make_unique<core::StudentSession>(
        *s.db, UserId{100 + static_cast<std::uint64_t>(i)},
        "student-" + std::to_string(i));
    students.push_back(std::move(s));
  }
  net.run();
  // Re-adapt m now that the class size is known, and push the new vector.
  coordinator.adapt(campus.up_bps, 0.03);
  admin.set_m(coordinator.m_for(blob::MediaType::video)).expect("set m");
  net.run();
  std::printf("%zu student stations joined; tree m=%llu, instructor at position "
              "%llu\n",
              students.size(),
              (unsigned long long)coordinator.m_for(blob::MediaType::video),
              (unsigned long long)instructor_db->node()->position());

  // Admission + enrollment through the registrar, then library check-outs.
  std::vector<UserId> student_accounts;
  for (std::size_t i = 0; i < students.size(); ++i) {
    UserId account = accounts
                         .create_account(students[i].session->name(),
                                         core::Role::student, 100, registrar_office)
                         .expect("student account");
    student_accounts.push_back(account);
    registrar.admit(registrar_office, account, "computer science", 200)
        .expect("admit");
    registrar
        .enroll(account, account, i % 2 == 0 ? "CS101" : "CS102",
                300 + (std::int64_t)i)
        .expect("enroll");
  }
  std::printf("registrar: %zu admissions, roster CS101=%zu CS102=%zu\n",
              registrar.admission_count(), registrar.roster("CS101").size(),
              registrar.roster("CS102").size());

  // Students browse the (instructor-station) library and check courses out.
  auto& library = instructor_db->library();
  for (std::size_t i = 0; i < students.size(); ++i) {
    const char* course = i % 2 == 0 ? "CS101" : "CS102";
    library.check_out(course, students[i].session->user(), 5000 + (std::int64_t)i)
        .expect("check out");
  }
  std::printf("library: %zu open loans on CS101, %zu on CS102\n",
              library.holders_of("CS101").size(), library.holders_of("CS102").size());

  // Awareness criterion: a discussion room hosted at the instructor station.
  core::AwarenessHost chat_host(net, net.add_station(campus));
  chat_host.bind();
  std::vector<std::unique_ptr<core::AwarenessClient>> chatters;
  int questions_heard = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    chatters.push_back(std::make_unique<core::AwarenessClient>(
        net, net.add_station(campus), chat_host.id(),
        students[i].session->user(), students[i].session->name()));
    chatters.back()->bind();
    chatters.back()->set_chat_handler(
        [&](const std::string&, const std::string&, const std::string&) {
          ++questions_heard;
        });
    chatters.back()->join("cs101-discussion").expect("join room");
  }
  net.run();
  chatters[0]->chat("cs101-discussion", "is lecture 1 up yet?").expect("chat");
  net.run();
  std::printf("awareness: %zu in the discussion room, question heard by %d peers\n",
              chat_host.roster("cs101-discussion").size(), questions_heard);

  // --- six weekly lectures over the lossy network ---------------------------
  std::vector<dist::StationNode*> audience;
  for (auto& s : students) audience.push_back(s.db->node());

  std::uint64_t total_repairs = 0;
  for (int week = 1; week <= 6; ++week) {
    const char* course = week % 2 == 1 ? "CS101" : "CS102";
    auto manifest = instructor_db
                        ->manifest_for("http://mmu.edu/" + std::string(course) +
                                       "/index.html")
                        .expect("manifest");
    manifest.doc_key += "#week" + std::to_string(week);  // weekly edition
    dist::LectureSession lecture(LectureId{static_cast<std::uint64_t>(week)},
                                 manifest, *instructor_db->node(), audience);
    lecture.begin().expect("begin");
    net.run();

    int rounds = 0;
    while (!lecture.fully_distributed() && rounds < 20) {
      (void)lecture.repair().expect("repair");
      net.run();
      ++rounds;
    }
    total_repairs += lecture.repairs_issued();
    std::uint64_t reclaimed = lecture.end();
    std::printf("  week %d (%s): distributed to %zu stations, %llu repair "
                "pull(s), migration reclaimed %.1f MB\n",
                week, course, audience.size(),
                (unsigned long long)lecture.repairs_issued(),
                static_cast<double>(reclaimed) / 1e6);
  }
  std::printf("semester total repair pulls over lossy links: %llu\n",
              (unsigned long long)total_repairs);

  // --- end of term: check-ins, assessment, QA audit ------------------------
  for (std::size_t i = 0; i < students.size(); ++i) {
    const char* course = i % 2 == 0 ? "CS101" : "CS102";
    library.check_in(course, students[i].session->user(), 900000 + (std::int64_t)i)
        .expect("check in");
  }
  auto report = library.assess(students[0].session->user());
  std::printf("assessment of %s: %llu checkout(s), %lld us of study\n",
              students[0].session->name().c_str(),
              (unsigned long long)report.total_checkouts,
              (long long)report.total_borrow_micros);

  // Grades go to the registrar; the student checks their transcript — the
  // paper's "checking transcript information" example.
  for (std::size_t i = 0; i < students.size(); ++i) {
    double grade = 2.0 + static_cast<double>(i % 5) * 0.5;
    registrar
        .record_grade(shih_id, student_accounts[i], i % 2 == 0 ? "CS101" : "CS102",
                      grade)
        .expect("grade");
  }
  auto transcript =
      registrar.transcript(student_accounts[0], student_accounts[0]).expect("transcript");
  std::printf("transcript of %s: %zu course(s), GPA %.2f\n",
              students[0].session->name().c_str(), transcript.courses.size(),
              transcript.gpa);

  docmodel::QaChecker qa(instructor_db->repository());
  for (const char* course : {"CS101", "CS102"}) {
    auto findings = qa.file_report("http://mmu.edu/" + std::string(course) +
                                       "/index.html",
                                   std::string("qa-final-") + course, "huang",
                                   950000)
                        .expect("qa");
    std::printf("QA audit of %s: %s (%zu pages, %zu links)\n", course,
                findings.clean() ? "clean" : "FINDINGS", findings.pages_checked,
                findings.links_checked);
  }

  // End-of-term cluster scrape: the request fans down the broadcast tree
  // and every station's counters merge on the way back up into one
  // snapshot at the administrator. The campus network has quiesced now
  // that lectures are over (lecture-time loss was the interesting part),
  // and a dropped scrape message would stall that attempt's merge — so the
  // administrator re-issues until one completes, like lecture repair.
  net::StationLink quiet = campus;
  quiet.loss_rate = 0.0;
  net.set_link(admin_id, quiet).expect("quiesce admin");
  net.set_link(instructor_station, quiet).expect("quiesce instructor");
  for (auto& s : students) net.set_link(s.id, quiet).expect("quiesce student");
  // Loss may have left some members with stale tree views; one reliable
  // re-announcement brings every station onto the same vector and m.
  admin.announce_vector().expect("re-announce");
  net.run();
  obs::Snapshot cluster;
  bool scraped = false;
  int scrape_attempts = 0;
  while (!scraped && scrape_attempts < 64) {
    admin
        .scrape_cluster([&](obs::Snapshot snap, SimTime) {
          cluster = std::move(snap);
          scraped = true;
        })
        .expect("scrape");
    net.run();
    ++scrape_attempts;
  }
  std::printf("end-of-term cluster scrape (%d attempt(s)): "
              "%zu station-labeled samples; pushes received=%.0f, "
              "instances demoted=%.0f\n",
              scrape_attempts, cluster.samples.size(),
              obs::counter_total(cluster, "station.pushes_received"),
              obs::counter_total(cluster, "station.demotions"));

  std::printf("network totals: %llu messages, %.1f MB on the wire\n",
              (unsigned long long)net.total_messages(),
              static_cast<double>(net.total_bytes_on_wire()) / 1e6);
  if (!trace_path.empty() && obs::write_trace_file(trace_path)) {
    std::printf("trace written to %s — load it at ui.perfetto.dev\n",
                trace_path.c_str());
  }
  if (!metrics_path.empty() && obs::write_json_file(metrics_path)) {
    std::printf("metrics snapshot written to %s\n", metrics_path.c_str());
  }
  return 0;
}

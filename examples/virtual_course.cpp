// Virtual course authoring pipeline — the paper's Web document development
// paradigm end to end (§3): a script with two implementation tries, HTML
// and program files, shared multimedia resources, QA traversal + bug
// report, annotations by different instructors, SCM versions, and the
// object-reuse path (instance -> class -> new instance).
//
// Build & run:  ./build/examples/virtual_course
#include <cstdio>

#include "core/sessions.hpp"
#include "workload/patterns.hpp"

using namespace wdoc;

int main() {
  auto db = core::WebDocDb::create().expect("create database");
  auto& repo = db->repository();

  // --- document layer: script with two implementation tries ---------------
  docmodel::ScriptInfo script;
  script.name = "intro-ce";
  script.keywords = "computer engineering, logic, architecture";
  script.author = "shih";
  script.version = "1.0";
  script.created_at = 1000;
  script.description = "Script for 'Introduction to Computer Engineering'.";
  script.expected_completion = 90000;
  script.pct_complete = 10.0;
  repo.create_script(script).expect("script");

  for (int attempt = 1; attempt <= 2; ++attempt) {
    docmodel::ImplementationInfo impl;
    impl.starting_url = "http://mmu.edu/CS101/try" + std::to_string(attempt);
    impl.script_name = "intro-ce";
    impl.author = "shih";
    impl.created_at = 1000 + attempt * 100;
    impl.try_number = attempt;
    repo.create_implementation(impl).expect("implementation");

    for (int page = 0; page < 3; ++page) {
      docmodel::HtmlFileInfo html;
      html.path = impl.starting_url + "/page" + std::to_string(page) + ".html";
      html.starting_url = impl.starting_url;
      std::string body = "<html><h1>CE lecture " + std::to_string(page) + "</h1></html>";
      html.content.assign(body.begin(), body.end());
      repo.add_html_file(html).expect("html");
    }
    docmodel::ProgramFileInfo applet;
    applet.path = impl.starting_url + "/simulator.class";
    applet.starting_url = impl.starting_url;
    applet.language = "java";
    applet.content = Bytes(2048, 0x2a);
    repo.add_program_file(applet).expect("applet");
  }

  // Both tries share the same logic-animation BLOB: stored once.
  Bytes animation(300000, 0x7);
  repo.attach_resource("implementation", "http://mmu.edu/CS101/try1", animation,
                       blob::MediaType::animation, 0)
      .expect("resource try1");
  repo.attach_resource("implementation", "http://mmu.edu/CS101/try2", animation,
                       blob::MediaType::animation, 0)
      .expect("resource try2");
  std::printf("two tries attach the same 300000-byte animation; BLOB layer stores "
              "%llu bytes (logical %llu)\n",
              static_cast<unsigned long long>(db->blobs().stored_bytes()),
              static_cast<unsigned long long>(db->blobs().logical_bytes()));

  // --- QA: traversal log, test record, bug report --------------------------
  core::InstructorSession shih(*db, UserId{1}, "shih");
  auto log = workload::random_traversal("http://mmu.edu/CS101/try1", 3, 25, 11);
  shih.record_test("http://mmu.edu/CS101/try1", log, "qa-try1-smoke", 5000,
                   "page2 references a missing animation frame")
      .expect("record test");
  auto bug = repo.get_bug_report("qa-try1-smoke-bug1").expect("bug");
  std::printf("QA: test record 'qa-try1-smoke' (%zu traversal events) -> bug '%s'\n",
              log.size(), bug.name.c_str());

  // --- annotations by different instructors over the same try -------------
  core::InstructorSession ma(*db, UserId{2}, "ma");
  shih.annotate("http://mmu.edu/CS101/try1", workload::random_annotation(8, 21),
                "shih-margin-notes", 6000)
      .expect("shih annotation");
  ma.annotate("http://mmu.edu/CS101/try1", workload::random_annotation(5, 22),
              "ma-margin-notes", 6100)
      .expect("ma annotation");
  auto anns = repo.annotations_of("http://mmu.edu/CS101/try1").expect("annotations");
  std::printf("annotations on try1 by %zu instructors:", anns.size());
  for (const auto& a : anns) std::printf(" %s", a.c_str());
  std::printf("\n");

  // --- integrity: what must be revisited when the script changes? ----------
  auto alerts =
      db->update_alerts({integrity::SciKind::script, "intro-ce"}).expect("alerts");
  std::printf("updating the script alerts %zu dependent SCIs (impls, pages, "
              "programs, resources, tests)\n",
              alerts.size());

  // --- object reuse: instance -> class -> new course instance --------------
  auto manifest = db->manifest_for("http://mmu.edu/CS101/try1").expect("manifest");
  auto& objects = db->objects();
  objects.put_instance(manifest, /*ephemeral=*/false).expect("instance");
  objects.declare_class(manifest.doc_key).expect("declare class");
  auto copy = objects.instantiate(manifest.doc_key, "http://mmu.edu/CS101-spring")
                  .expect("instantiate");
  std::printf("declared class of %s and instantiated %s: structure copied "
              "(%llu B), BLOBs shared (store still %llu B)\n",
              manifest.doc_key.c_str(), copy.doc_key.c_str(),
              static_cast<unsigned long long>(copy.structure_bytes),
              static_cast<unsigned long long>(db->blobs().stored_bytes()));

  // --- progress bookkeeping -----------------------------------------------
  repo.set_script_progress("intro-ce", 80.0).expect("progress");
  std::printf("script progress now %.0f%%\n",
              repo.get_script("intro-ce").expect("script").pct_complete);
  return 0;
}

// Collaborative editing under the paper's lock compatibility table — run
// live on real threads (ThreadTransport), not the simulator.
//
// Three instructor threads work on the same course: two edit disjoint
// implementations concurrently (allowed: disjoint subtrees), one keeps
// reading the whole script container (allowed against readers, refused
// against an active writer's subtree). Conflicts are retried. Messages
// between stations announce check-ins, demonstrating that the same
// protocol Message type runs off the simulator.
//
// Build & run:  ./build/examples/collaborative_editing
#include <atomic>
#include <cstdio>
#include <thread>

#include "core/sessions.hpp"
#include "net/thread_transport.hpp"

using namespace wdoc;

int main() {
  auto db = core::WebDocDb::create().expect("create database");
  auto& repo = db->repository();

  // One script with two implementations -> a lockable tree.
  docmodel::ScriptInfo script;
  script.name = "intro-md";
  script.author = "shih";
  script.keywords = "multimedia databases";
  script.description = "Multimedia database design course.";
  repo.create_script(script).expect("script");
  for (int i = 1; i <= 2; ++i) {
    docmodel::ImplementationInfo impl;
    impl.starting_url = "http://mmu.edu/MD/impl" + std::to_string(i);
    impl.script_name = "intro-md";
    impl.try_number = i;
    repo.create_implementation(impl).expect("impl");
    docmodel::HtmlFileInfo page;
    page.path = impl.starting_url + "/index.html";
    page.starting_url = impl.starting_url;
    repo.add_html_file(page).expect("page");
  }
  db->register_lock_tree("intro-md").expect("lock tree");
  auto impl1 = *db->lock_node_of("implementation:http://mmu.edu/MD/impl1");
  auto impl2 = *db->lock_node_of("implementation:http://mmu.edu/MD/impl2");
  auto root = *db->lock_node_of("script:intro-md");
  auto& locks = db->locks();

  // Live transport: one station per instructor, broadcasting check-ins.
  net::ThreadTransport transport;
  std::atomic<int> notices{0};
  std::vector<StationId> stations;
  for (int i = 0; i < 3; ++i) {
    stations.push_back(transport.add_station([&](const net::Message& msg) {
      notices++;
      std::printf("  [station] %s from station %llu\n", msg.type.c_str(),
                  static_cast<unsigned long long>(msg.from.value()));
    }));
  }
  auto announce = [&](int self, const char* what) {
    for (std::size_t peer = 0; peer < stations.size(); ++peer) {
      if (static_cast<int>(peer) == self) continue;
      net::Message msg;
      msg.from = stations[static_cast<std::size_t>(self)];
      msg.to = stations[peer];
      msg.type = what;
      transport.send(std::move(msg)).expect("announce");
    }
  };

  std::mutex lock_mu;  // the lock manager itself is station-local state
  std::atomic<int> edits_done{0};
  std::atomic<int> conflicts{0};

  auto writer_thread = [&](int self, UserId user, LockResourceId target,
                           const char* label) {
    for (int edit = 0; edit < 5; ++edit) {
      for (;;) {
        {
          std::lock_guard<std::mutex> g(lock_mu);
          if (locks.lock(user, target, locking::Access::write).is_ok()) break;
        }
        conflicts++;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      // "Edit" the implementation while holding the write lock.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      {
        std::lock_guard<std::mutex> g(lock_mu);
        locks.unlock(user, target).expect("unlock");
      }
      edits_done++;
      announce(self, (std::string("checkin.") + label).c_str());
    }
  };

  auto reader_thread = [&](UserId user) {
    // Bounded read attempts: while the reader holds the script container's
    // read lock, writers inside are refused (the paper's table), so an
    // eager reader could starve them on one core. 25 polite reads with
    // back-off demonstrate coexistence without hogging the container.
    int reads = 0;
    for (int attempt = 0; attempt < 25 && edits_done.load() < 10; ++attempt) {
      bool got = false;
      {
        std::lock_guard<std::mutex> g(lock_mu);
        got = locks.lock(user, root, locking::Access::read).is_ok();
      }
      if (got) {
        ++reads;
        {
          std::lock_guard<std::mutex> g(lock_mu);
          locks.unlock(user, root).expect("unlock read");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      } else {
        conflicts++;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    std::printf("reader completed %d whole-script reads\n", reads);
  };

  std::printf("three instructors collaborating on 'intro-md'...\n");
  std::thread t1(writer_thread, 0, UserId{1}, impl1, "impl1");
  std::thread t2(writer_thread, 1, UserId{2}, impl2, "impl2");
  std::thread t3(reader_thread, UserId{3});
  t1.join();
  t2.join();
  t3.join();
  (void)transport.quiesce();
  transport.shutdown();

  std::printf("done: %d edits committed, %d lock conflicts retried, "
              "%d check-in notices delivered\n",
              edits_done.load(), conflicts.load(), notices.load());
  std::printf("paper's table allowed disjoint-implementation writers to run "
              "in parallel while the reader shared the container.\n");
  return 0;
}

// SQL shell — the "open database connection" surface of the paper's
// three-tier architecture, as a command-line tool.
//
// Usage:
//   ./build/examples/sql_shell                  # runs the built-in demo
//   ./build/examples/sql_shell 'SELECT 1 FROM t' ...   # execute arguments
//   echo 'SELECT * FROM wd_script;' | ./build/examples/sql_shell -
//
// The demo installs the paper's eleven-table schema, loads a small course
// corpus, and walks through DDL/DML/aggregate queries.
#include <cstdio>
#include <iostream>
#include <string>

#include "docmodel/schema_defs.hpp"
#include "storage/sql.hpp"
#include "workload/corpus.hpp"

using namespace wdoc;

namespace {

void run(storage::sql::Engine& engine, const std::string& stmt, bool echo = true) {
  if (echo) std::printf("wdoc> %s\n", stmt.c_str());
  auto result = engine.execute(stmt);
  if (!result) {
    std::printf("error: %s\n\n", result.error().to_string().c_str());
    return;
  }
  std::printf("%s\n", result.value().to_string().c_str());
}

void demo(storage::Database& db, storage::sql::Engine& engine) {
  // Load a small corpus into the paper's schema so SELECTs have substance.
  blob::BlobStore blobs;
  docmodel::Repository repo(db, blobs);
  workload::CorpusConfig cfg;
  cfg.courses = 8;
  cfg.impls_per_course = 2;
  cfg.seed = 1999;
  workload::generate_corpus(repo, cfg).expect("corpus");

  std::printf("-- the paper's document layer, via SQL --\n\n");
  run(engine, "SELECT name, author, pct_complete FROM wd_script "
              "ORDER BY name LIMIT 4");
  run(engine, "SELECT COUNT(*) FROM wd_implementation");
  run(engine, "SELECT author, COUNT(*) FROM wd_script GROUP BY author "
              "ORDER BY count DESC");
  run(engine, "SELECT script_name, COUNT(*) FROM wd_implementation "
              "GROUP BY script_name ORDER BY script_name LIMIT 3");
  run(engine, "SELECT owner_name, SUM(size) FROM wd_resource "
              "GROUP BY owner_name ORDER BY sum_size DESC LIMIT 3");

  std::printf("-- ad-hoc tables work too --\n\n");
  run(engine, "CREATE TABLE grades (student TEXT INDEXED, course TEXT, "
              "score REAL)");
  run(engine, "INSERT INTO grades VALUES ('alice', 'CS100', 91.5)");
  run(engine, "INSERT INTO grades VALUES ('alice', 'CS101', 78.0)");
  run(engine, "INSERT INTO grades VALUES ('bob', 'CS100', 66.0)");
  run(engine, "SELECT student, AVG(score) FROM grades GROUP BY student");
  run(engine, "UPDATE grades SET score = 70.0 WHERE student = 'bob'");
  run(engine, "SELECT * FROM grades WHERE score >= 70.0 ORDER BY score DESC");
  run(engine, "DELETE FROM grades WHERE student = 'bob'");
  run(engine, "SELECT COUNT(*) FROM grades");
}

}  // namespace

int main(int argc, char** argv) {
  auto db = storage::Database::in_memory();
  docmodel::install_schemas(*db).expect("schemas");
  storage::sql::Engine engine(*db);

  if (argc > 1 && std::string(argv[1]) == "-") {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) run(engine, line, /*echo=*/true);
    }
    return 0;
  }
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) run(engine, argv[i]);
    return 0;
  }
  demo(*db, engine);
  return 0;
}

// Distributed lecture demonstration over the network simulator.
//
// 39 student stations join the class administrator in linear order; the
// coordinator adapts the tree fan-out m to the measured bandwidth; the
// instructor pre-broadcasts a 10 MB lecture down the m-ary tree; the run is
// compared against a naive star broadcast (everything through the
// instructor's uplink). Afterwards a latecomer pulls the lecture up the
// parent chain, and end-of-lecture migration reclaims every student's
// buffer space — the paper's §4 mechanisms in one sitting.
//
// Build & run:  ./build/examples/distributed_lecture
//               [--metrics-json=<path>] [--trace-json=<path>]
#include <cstdio>
#include <memory>
#include <string>

#include "dist/coordinator.hpp"
#include "net/fault.hpp"
#include "net/sim_network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"

using namespace wdoc;

namespace {

struct Station {
  StationId id;
  std::unique_ptr<blob::BlobStore> blobs;
  std::unique_ptr<dist::ObjectStore> store;
  std::unique_ptr<dist::StationNode> node;
};

dist::DocManifest lecture() {
  dist::DocManifest m;
  m.doc_key = "http://mmu.edu/CS102/lecture5";
  m.structure_bytes = 64 << 10;
  dist::BlobRef video;
  video.digest = digest128("lecture 5 video");
  video.size = 10 << 20;
  video.type = blob::MediaType::video;
  m.blobs.push_back(video);
  return m;
}

// Time until every station holds the lecture.
SimTime broadcast_and_measure(net::SimNetwork& net, std::vector<Station>& stations,
                              std::uint64_t m) {
  std::vector<StationId> vec;
  for (auto& s : stations) vec.push_back(s.id);
  for (auto& s : stations) s.node->set_tree(vec, m);
  auto doc = lecture();
  doc.home = stations[0].id;
  stations[0].node->broadcast_push(doc).expect("push");
  net.run();
  SimTime done = net.now();
  // Reset for the next strategy: drop every copy except the instructor's.
  for (std::size_t i = 1; i < stations.size(); ++i) {
    (void)stations[i].node->end_lecture();
    (void)stations[i].store->remove(doc.doc_key);
  }
  return done;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string metrics_path = obs::metrics_json_arg(argc, argv);
  const std::string trace_path = obs::trace_json_arg(argc, argv);
  net::SimNetwork net(1999);
  net::StationLink campus;
  campus.up_bps = 10e6;   // 10 Mb/s campus uplinks, 1999-style
  campus.down_bps = 10e6;
  campus.latency = SimTime::millis(15);

  std::vector<Station> stations;
  dist::Coordinator coordinator;
  for (int i = 0; i < 40; ++i) {
    Station s;
    s.id = net.add_station(campus);
    s.blobs = std::make_unique<blob::BlobStore>();
    s.store = std::make_unique<dist::ObjectStore>(*s.blobs);
    s.node = std::make_unique<dist::StationNode>(net, s.id, *s.store);
    s.node->bind();
    coordinator.register_station(s.id);
    stations.push_back(std::move(s));
  }
  std::printf("%zu stations registered with the class administrator\n",
              stations.size());

  // Adaptive fan-out: the administrator "maintains the sizes of m's, based
  // on the number of workstations and the physical network bandwidth".
  coordinator.adapt(campus.up_bps, 0.03);
  std::uint64_t m = coordinator.m_for(blob::MediaType::video);
  std::printf("adaptive m for video lectures: %llu (tree depth %llu)\n",
              static_cast<unsigned long long>(m),
              static_cast<unsigned long long>(dist::tree_depth(stations.size(), m)));

  // Pre-broadcast through the adaptive m-ary tree vs a star (m = N-1).
  SimTime t0 = net.now();
  SimTime tree_done = broadcast_and_measure(net, stations, m);
  SimTime tree_cost = tree_done - t0;
  std::uint64_t tree_root_bytes = net.stats(stations[0].id).bytes_sent;

  SimTime t1 = net.now();
  SimTime star_done = broadcast_and_measure(net, stations, stations.size() - 1);
  SimTime star_cost = star_done - t1;
  std::uint64_t star_root_bytes =
      net.stats(stations[0].id).bytes_sent - tree_root_bytes;

  std::printf("pre-broadcast of a 10 MB lecture to 39 students:\n");
  std::printf("  m-ary tree (m=%llu): %s, instructor uplink carried %.1f MB\n",
              static_cast<unsigned long long>(m), tree_cost.to_string().c_str(),
              static_cast<double>(tree_root_bytes) / 1e6);
  std::printf("  star broadcast     : %s, instructor uplink carried %.1f MB\n",
              star_cost.to_string().c_str(),
              static_cast<double>(star_root_bytes) / 1e6);

  // Re-broadcast through the tree so everyone holds the lecture again.
  std::vector<StationId> vec;
  for (auto& s : stations) vec.push_back(s.id);
  for (auto& s : stations) s.node->set_tree(vec, m);
  auto doc = lecture();
  doc.home = stations[0].id;
  stations[0].node->broadcast_push(doc).expect("push");
  net.run();

  // A latecomer (fresh station) joins and pulls the lecture up its chain.
  Station late;
  late.id = net.add_station(campus);
  late.blobs = std::make_unique<blob::BlobStore>();
  late.store = std::make_unique<dist::ObjectStore>(*late.blobs);
  late.node = std::make_unique<dist::StationNode>(net, late.id, *late.store);
  late.node->bind();
  coordinator.register_station(late.id);
  vec.push_back(late.id);
  for (auto& s : stations) s.node->set_tree(vec, m);
  late.node->set_tree(vec, m);

  SimTime fetch_start = net.now();
  SimTime fetch_done;
  late.node
      ->fetch(doc.doc_key,
              [&](Result<dist::DocManifest> r, SimTime at) {
                std::move(r).expect("latecomer fetch");
                fetch_done = at;
              })
      .expect("fetch");
  net.run();
  std::printf("latecomer pulled the lecture from its parent chain in %s\n",
              (fetch_done - fetch_start).to_string().c_str());

  // End of lecture: duplicated instances migrate back to references.
  std::uint64_t before = 0, after = 0;
  for (std::size_t i = 1; i < stations.size(); ++i) {
    before += stations[i].store->disk_bytes();
  }
  for (std::size_t i = 1; i < stations.size(); ++i) {
    (void)stations[i].node->end_lecture();
    after += stations[i].store->disk_bytes();
  }
  std::printf("end-of-lecture migration: student disk %0.1f MB -> %0.1f MB "
              "(instructor keeps the persistent instance)\n",
              static_cast<double>(before) / 1e6, static_cast<double>(after) / 1e6);

  // Fault drill: crash the interior station at tree position 2 and watch
  // one of its children ride the rpc lifecycle — attempt-timeouts drive the
  // failure detector past its threshold, the dead parent is skipped, and
  // the pull reroutes to the grandparent (the root, ⌊(k−i−1)/m⌋+1 twice).
  {
    net::FaultPlan plan;
    plan.crashes.push_back({stations[1].id, net.now() + SimTime::millis(1),
                            SimTime::zero() /* never restarts */});
    net.inject(plan).expect("inject");
    net.run();

    Station& orphan = stations[m + 1];  // first child of tree position 2
    SimTime drill_start = net.now();
    SimTime drill_done;
    orphan.node
        ->fetch(doc.doc_key,
                [&](Result<dist::DocManifest> r, SimTime at) {
                  std::move(r).expect("failover fetch");
                  drill_done = at;
                })
        .expect("fetch");
    net.run();
    const net::RpcStats rpc = orphan.node->rpc_stats();
    std::printf(
        "fault drill: station %llu crashed mid-semester; its child spent "
        "%llu attempt-timeouts (%llu retries), declared it dead after %u, "
        "and pulled the lecture around it in %s (failovers=%llu)\n",
        static_cast<unsigned long long>(stations[1].id.value()),
        static_cast<unsigned long long>(rpc.attempt_timeouts),
        static_cast<unsigned long long>(rpc.retries),
        dist::StationConfig{}.failover_threshold,
        (drill_done - drill_start).to_string().c_str(),
        static_cast<unsigned long long>(orphan.node->stats().failovers));
  }

  std::printf("\nmetrics (wdoc_obs process-wide registry):\n");
  std::fputs(obs::to_table(obs::MetricsRegistry::global().snapshot()).c_str(),
             stdout);
  if (!trace_path.empty() && obs::write_trace_file(trace_path)) {
    std::printf("trace written to %s — load it at ui.perfetto.dev\n",
                trace_path.c_str());
  }
  if (!metrics_path.empty() && obs::write_json_file(metrics_path)) {
    std::printf("metrics snapshot written to %s\n", metrics_path.c_str());
  }
  return 0;
}

// Quickstart: the five-minute tour of the Web document database.
//
// An instructor authors a virtual course (script + implementation + pages +
// a video resource), lists it in the virtual library; a student searches,
// checks the course out, studies, checks it back in; the instructor then
// updates the script and receives the referential-integrity alerts.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/sessions.hpp"

using namespace wdoc;

int main() {
  // 1. One station of the distributed database, in memory.
  auto db = core::WebDocDb::create().expect("create database");

  core::InstructorSession shih(*db, UserId{1}, "shih");
  core::StudentSession alice(*db, UserId{100}, "alice");

  // 2. Author a course.
  core::CourseSpec course;
  course.script_name = "intro-multimedia";
  course.course_number = "CS102";
  course.title = "Introduction to Multimedia Computing";
  course.keywords = "multimedia, video, networking";
  course.description = "Script: 12 lectures on multimedia systems and networking.";
  course.starting_url = "http://mmu.edu/CS102/index.html";
  course.html_pages = {
      {"http://mmu.edu/CS102/lecture1.html", "<html><h1>Lecture 1</h1></html>"},
      {"http://mmu.edu/CS102/lecture2.html", "<html><h1>Lecture 2</h1></html>"},
  };
  core::CourseSpec::ResourceSpec video;
  video.digest = digest128("CS102 lecture 1 video");
  video.size = 10ull << 20;  // a 10 MB clip, size-only for the demo
  video.type = blob::MediaType::video;
  video.playout_ms = 0;
  course.resources.push_back(video);
  course.now = 1000;
  shih.author_course(course).expect("author course");
  std::printf("authored %s (%s) — %zu pages, %llu BLOB bytes\n",
              course.course_number.c_str(), course.title.c_str(),
              course.html_pages.size(),
              static_cast<unsigned long long>(db->blobs().stored_bytes()));

  // 3. Student-side: search the virtual library and check the course out.
  auto hits = alice.search("multimedia");
  std::printf("search 'multimedia' -> %zu hit(s); top: %s\n", hits.size(),
              hits.empty() ? "-" : hits[0].course_number.c_str());
  alice.check_out("CS102", 2000).expect("check out");
  std::printf("alice checked out CS102\n");
  alice.check_in("CS102", 9000).expect("check in");

  auto report = alice.assessment();
  std::printf("assessment: %llu checkout(s), %llu distinct course(s), "
              "%lld us of study\n",
              static_cast<unsigned long long>(report.total_checkouts),
              static_cast<unsigned long long>(report.distinct_courses),
              static_cast<long long>(report.total_borrow_micros));

  // 4. The instructor edits the script under lock + SCM.
  shih.begin_edit("intro-multimedia", 10000).expect("begin edit");
  Bytes v2{'v', '2', ' ', 's', 'c', 'r', 'i', 'p', 't'};
  shih.finish_edit("intro-multimedia", v2, "tighten lecture 2", 11000)
      .expect("finish edit");
  std::printf("script now at version %llu\n",
              static_cast<unsigned long long>(
                  db->scm().head("script:intro-multimedia").expect("head").number));

  // 5. Referential-integrity alerts for the update.
  auto alerts = shih.alerts_for_script("intro-multimedia").expect("alerts");
  std::printf("update of intro-multimedia raised %zu alert(s):\n", alerts.size());
  for (const auto& alert : alerts) {
    std::printf("  [depth %zu] %s\n", alert.depth, alert.message.c_str());
  }
  return 0;
}

// Standalone HTTP gateway over a seeded virtual-library catalog: the binary
// behind the README curl walkthrough and the CI gateway smoke job. Serves
// until POST /admin/quit (or SIGINT/SIGTERM).
//
//   http_gateway [--port=8080] [--courses=500] [--seed=1]
//                [--workers=8] [--metrics-json=<path>]
//
// With --port=0 an ephemeral port is chosen and printed, which is what the
// smoke job scrapes.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "http/gateway.hpp"
#include "http/server.hpp"
#include "obs/metrics.hpp"
#include "storage/database.hpp"
#include "workload/library_corpus.hpp"

using namespace wdoc;

namespace {

std::atomic<bool> g_signalled{false};

std::uint64_t flag_u64(int argc, char** argv, const char* name, std::uint64_t fallback) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::strtoull(argv[i] + prefix.size(), nullptr, 10);
    }
  }
  return fallback;
}

std::string flag_str(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  workload::LibraryCorpusConfig corpus_cfg;
  corpus_cfg.courses = flag_u64(argc, argv, "courses", 500);
  corpus_cfg.seed = flag_u64(argc, argv, "seed", 1);
  const auto port = static_cast<std::uint16_t>(flag_u64(argc, argv, "port", 8080));
  const std::size_t workers = flag_u64(argc, argv, "workers", 8);
  const std::string metrics_path = flag_str(argc, argv, "metrics-json");

  auto entries = workload::library_corpus(corpus_cfg);
  std::vector<library::VirtualLibrary> shards(corpus_cfg.shards);
  workload::populate_shards(shards, entries, corpus_cfg);
  auto db = storage::Database::in_memory();
  http::StorageDocumentSource docs(*db);
  for (const auto& e : entries) {
    docs.put(e.course_number, workload::course_document(e)).expect("put doc");
  }
  std::vector<library::VirtualLibrary*> shard_ptrs;
  for (auto& s : shards) shard_ptrs.push_back(&s);
  http::Gateway gateway(http::GatewayConfig{}, shard_ptrs, &docs);

  http::ServerConfig server_cfg;
  server_cfg.port = port;
  server_cfg.workers = workers;
  http::HttpServer server(server_cfg,
                          [&](const http::Request& req) { return gateway.handle(req); });
  server.start().expect("server start");

  std::signal(SIGINT, [](int) { g_signalled.store(true); });
  std::signal(SIGTERM, [](int) { g_signalled.store(true); });

  std::printf("wdoc gateway: %zu courses on %zu library shards\n", corpus_cfg.courses,
              corpus_cfg.shards);
  std::printf("listening on http://127.0.0.1:%u\n", server.port());
  std::printf("try:\n");
  std::printf("  curl 'http://127.0.0.1:%u/search?q=distributed+database&limit=5'\n",
              server.port());
  std::printf("  curl -X POST 'http://127.0.0.1:%u/check-out?course=%s&student=42'\n",
              server.port(), entries.front().course_number.c_str());
  std::printf("  curl 'http://127.0.0.1:%u/doc?course=%s'\n", server.port(),
              entries.front().course_number.c_str());
  std::printf("  curl -X POST 'http://127.0.0.1:%u/admin/quit'\n", server.port());
  std::fflush(stdout);

  while (!gateway.quit_requested() && !g_signalled.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.stop();

  if (!metrics_path.empty()) {
    if (obs::write_json_file(metrics_path)) {
      std::printf("metrics snapshot written to %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "warning: could not write metrics to %s\n",
                   metrics_path.c_str());
    }
  }
  std::printf("gateway stopped\n");
  return 0;
}

// Accounts/roles and registrar tests — the paper's Administration
// Criterion: admission records, transcripts, and role-gated access.
#include <gtest/gtest.h>

#include "core/registrar.hpp"

namespace wdoc::core {
namespace {

class AccountsFixture : public ::testing::Test {
 protected:
  AccountsFixture() : registrar_(accounts_) {
    admin_ = accounts_.create_account("registrar-office", Role::administrator, 100)
                 .expect("admin");
    instructor_ = accounts_
                      .create_account("shih", Role::instructor, 200, admin_)
                      .expect("instructor");
    student_ =
        accounts_.create_account("alice", Role::student, 300, admin_).expect("student");
  }
  AccountRegistry accounts_;
  Registrar registrar_;
  UserId admin_, instructor_, student_;
};

// --- roles & privileges ------------------------------------------------------

TEST(RoleGrants, PrivilegeMatrix) {
  EXPECT_TRUE(role_grants(Role::student, Privilege::browse_library));
  EXPECT_TRUE(role_grants(Role::student, Privilege::view_own_transcript));
  EXPECT_FALSE(role_grants(Role::student, Privilege::author_course));
  EXPECT_FALSE(role_grants(Role::student, Privilege::admit_student));
  EXPECT_TRUE(role_grants(Role::instructor, Privilege::manage_library));
  EXPECT_TRUE(role_grants(Role::instructor, Privilege::record_grades));
  EXPECT_FALSE(role_grants(Role::instructor, Privilege::manage_accounts));
  EXPECT_TRUE(role_grants(Role::administrator, Privilege::view_any_transcript));
  EXPECT_TRUE(role_grants(Role::administrator, Privilege::author_course));
}

TEST(AccountRegistry, BootstrapRequiresAdministrator) {
  AccountRegistry reg;
  EXPECT_EQ(reg.create_account("eve", Role::student, 1).code(),
            Errc::invalid_argument);
  EXPECT_TRUE(reg.create_account("root", Role::administrator, 1).is_ok());
}

TEST(AccountRegistry, LaterAccountsNeedManagePrivilege) {
  AccountRegistry reg;
  UserId admin = reg.create_account("root", Role::administrator, 1).expect("root");
  UserId teacher =
      reg.create_account("shih", Role::instructor, 2, admin).expect("shih");
  // The instructor cannot create accounts.
  EXPECT_EQ(reg.create_account("bob", Role::student, 3, teacher).code(),
            Errc::lock_conflict);
  // Missing actor.
  EXPECT_EQ(reg.create_account("bob", Role::student, 3).code(), Errc::lock_conflict);
  EXPECT_TRUE(reg.create_account("bob", Role::student, 3, admin).is_ok());
  EXPECT_EQ(reg.count(), 3u);
}

TEST_F(AccountsFixture, LookupAndListing) {
  EXPECT_EQ(accounts_.find_by_name("shih"), instructor_);
  EXPECT_EQ(accounts_.find_by_name("ghost"), std::nullopt);
  EXPECT_EQ(accounts_.get(student_).value().role, Role::student);
  EXPECT_EQ(accounts_.by_role(Role::instructor).size(), 1u);
  EXPECT_EQ(accounts_.create_account("alice", Role::student, 1, admin_).code(),
            Errc::already_exists);
}

TEST_F(AccountsFixture, DeactivationRevokesEverything) {
  ASSERT_TRUE(accounts_.deactivate(instructor_, admin_).is_ok());
  EXPECT_FALSE(accounts_.allowed(instructor_, Privilege::browse_library));
  EXPECT_EQ(accounts_.require(instructor_, Privilege::author_course).code(),
            Errc::lock_conflict);
  // A student cannot deactivate; an admin cannot deactivate itself.
  EXPECT_EQ(accounts_.deactivate(admin_, student_).code(), Errc::lock_conflict);
  EXPECT_EQ(accounts_.deactivate(admin_, admin_).code(), Errc::conflict);
}

TEST_F(AccountsFixture, UnknownUserHoldsNothing) {
  EXPECT_FALSE(accounts_.allowed(UserId{999}, Privilege::browse_library));
  EXPECT_EQ(accounts_.require(UserId{999}, Privilege::browse_library).code(),
            Errc::not_found);
}

// --- registrar ---------------------------------------------------------------

TEST_F(AccountsFixture, AdmissionRequiresAdministrator) {
  EXPECT_EQ(registrar_.admit(instructor_, student_, "cs", 400).code(),
            Errc::lock_conflict);
  ASSERT_TRUE(registrar_.admit(admin_, student_, "cs", 400).is_ok());
  EXPECT_TRUE(registrar_.is_admitted(student_));
  EXPECT_EQ(registrar_.admit(admin_, student_, "cs", 401).code(),
            Errc::already_exists);
  // Only students can be admitted.
  EXPECT_EQ(registrar_.admit(admin_, instructor_, "cs", 402).code(),
            Errc::invalid_argument);
}

TEST_F(AccountsFixture, AdmissionRecordVisibility) {
  ASSERT_TRUE(registrar_.admit(admin_, student_, "computer science", 400).is_ok());
  // The student sees their own record.
  auto own = registrar_.admission_of(student_, student_);
  ASSERT_TRUE(own.is_ok());
  EXPECT_EQ(own.value().program, "computer science");
  EXPECT_EQ(own.value().admitted_by, "registrar-office");
  // Another student-level user cannot see it.
  UserId bob = accounts_.create_account("bob", Role::student, 1, admin_).expect("bob");
  EXPECT_EQ(registrar_.admission_of(bob, student_).code(), Errc::lock_conflict);
  // The administrator can.
  EXPECT_TRUE(registrar_.admission_of(admin_, student_).is_ok());
}

TEST_F(AccountsFixture, EnrollmentRules) {
  // Not admitted yet.
  EXPECT_EQ(registrar_.enroll(student_, student_, "CS101", 500).code(),
            Errc::conflict);
  ASSERT_TRUE(registrar_.admit(admin_, student_, "cs", 400).is_ok());
  ASSERT_TRUE(registrar_.enroll(student_, student_, "CS101", 500).is_ok());
  EXPECT_EQ(registrar_.enroll(student_, student_, "CS101", 501).code(),
            Errc::already_exists);
  // A student cannot enroll someone else.
  UserId bob = accounts_.create_account("bob", Role::student, 1, admin_).expect("bob");
  ASSERT_TRUE(registrar_.admit(admin_, bob, "cs", 401).is_ok());
  EXPECT_EQ(registrar_.enroll(student_, bob, "CS101", 502).code(),
            Errc::lock_conflict);
  // An instructor can.
  ASSERT_TRUE(registrar_.enroll(instructor_, bob, "CS101", 503).is_ok());
  EXPECT_EQ(registrar_.roster("CS101").size(), 2u);
}

TEST_F(AccountsFixture, GradingAndTranscript) {
  ASSERT_TRUE(registrar_.admit(admin_, student_, "cs", 400).is_ok());
  ASSERT_TRUE(registrar_.enroll(student_, student_, "CS101", 500).is_ok());
  ASSERT_TRUE(registrar_.enroll(student_, student_, "CS102", 510).is_ok());

  // Students cannot grade; grades are range-checked.
  EXPECT_EQ(registrar_.record_grade(student_, student_, "CS101", 4.0).code(),
            Errc::lock_conflict);
  EXPECT_EQ(registrar_.record_grade(instructor_, student_, "CS101", 4.5).code(),
            Errc::invalid_argument);
  EXPECT_EQ(registrar_.record_grade(instructor_, student_, "CS999", 4.0).code(),
            Errc::not_found);
  ASSERT_TRUE(registrar_.record_grade(instructor_, student_, "CS101", 3.5).is_ok());

  auto transcript = registrar_.transcript(student_, student_);
  ASSERT_TRUE(transcript.is_ok());
  EXPECT_EQ(transcript.value().courses.size(), 2u);
  EXPECT_EQ(transcript.value().in_progress, 1u);
  EXPECT_DOUBLE_EQ(transcript.value().gpa, 3.5);
}

TEST_F(AccountsFixture, TranscriptVisibility) {
  ASSERT_TRUE(registrar_.admit(admin_, student_, "cs", 400).is_ok());
  ASSERT_TRUE(registrar_.enroll(student_, student_, "CS101", 500).is_ok());

  // A stranger student can't view it.
  UserId bob = accounts_.create_account("bob", Role::student, 1, admin_).expect("bob");
  EXPECT_EQ(registrar_.transcript(bob, student_).code(), Errc::lock_conflict);
  // An instructor who has not graded this student can't either...
  UserId other =
      accounts_.create_account("ma", Role::instructor, 1, admin_).expect("ma");
  EXPECT_EQ(registrar_.transcript(other, student_).code(), Errc::lock_conflict);
  // ...but one who graded them can; and the administrator always can.
  ASSERT_TRUE(registrar_.record_grade(instructor_, student_, "CS101", 3.0).is_ok());
  EXPECT_TRUE(registrar_.transcript(instructor_, student_).is_ok());
  EXPECT_TRUE(registrar_.transcript(admin_, student_).is_ok());
}

TEST_F(AccountsFixture, EmptyTranscriptHasZeroGpa) {
  auto t = registrar_.transcript(student_, student_);
  ASSERT_TRUE(t.is_ok());
  EXPECT_EQ(t.value().courses.size(), 0u);
  EXPECT_DOUBLE_EQ(t.value().gpa, 0.0);
}

}  // namespace
}  // namespace wdoc::core

// Workload-generator tests: corpus shape, determinism, Zipfian reuse,
// pattern generators.
#include <gtest/gtest.h>

#include <set>

#include "workload/corpus.hpp"
#include "workload/library_corpus.hpp"
#include "workload/patterns.hpp"

namespace wdoc::workload {
namespace {

CorpusConfig small_config() {
  CorpusConfig cfg;
  cfg.courses = 6;
  cfg.impls_per_course = 2;
  cfg.html_per_impl = 3;
  cfg.programs_per_impl = 1;
  cfg.resources_per_impl = 4;
  cfg.unique_resources = 10;
  cfg.seed = 7;
  return cfg;
}

struct RepoHarness {
  RepoHarness() : db(storage::Database::in_memory()), repo(*db, blobs) {
    docmodel::install_schemas(*db).expect("schemas");
  }
  std::unique_ptr<storage::Database> db;
  blob::BlobStore blobs;
  docmodel::Repository repo;
};

TEST(Corpus, GeneratesRequestedShape) {
  RepoHarness h;
  auto corpus = generate_corpus(h.repo, small_config());
  ASSERT_TRUE(corpus.is_ok());
  EXPECT_EQ(corpus.value().courses.size(), 6u);
  for (const GeneratedCourse& c : corpus.value().courses) {
    EXPECT_EQ(c.implementations.size(), 2u);
    auto script = h.repo.get_script(c.script_name);
    ASSERT_TRUE(script.is_ok());
    for (const dist::DocManifest& m : c.implementations) {
      EXPECT_GT(m.structure_bytes, 0u);
      EXPECT_FALSE(m.blobs.empty());
      auto htmls = h.repo.html_files_of(m.doc_key);
      ASSERT_TRUE(htmls.is_ok());
      EXPECT_EQ(htmls.value().size(), 3u);
    }
  }
  EXPECT_EQ(corpus.value().all_manifests().size(), 12u);
}

TEST(Corpus, ResourcePoolBoundsUniqueBlobs) {
  RepoHarness h;
  CorpusConfig cfg = small_config();
  auto corpus = generate_corpus(h.repo, cfg);
  ASSERT_TRUE(corpus.is_ok());
  // Blob store dedups by digest: the number of distinct blobs cannot exceed
  // the pool size.
  EXPECT_LE(h.blobs.blob_count(), cfg.unique_resources);
  EXPECT_GT(h.blobs.blob_count(), 0u);
  // Logical >= stored because popular resources are reused across courses.
  EXPECT_GE(h.blobs.logical_bytes(), h.blobs.stored_bytes());
}

TEST(Corpus, DeterministicForSeed) {
  RepoHarness h1, h2;
  auto c1 = generate_corpus(h1.repo, small_config());
  auto c2 = generate_corpus(h2.repo, small_config());
  ASSERT_TRUE(c1.is_ok());
  ASSERT_TRUE(c2.is_ok());
  auto m1 = c1.value().all_manifests();
  auto m2 = c2.value().all_manifests();
  ASSERT_EQ(m1.size(), m2.size());
  for (std::size_t i = 0; i < m1.size(); ++i) {
    EXPECT_EQ(m1[i], m2[i]);
  }
}

TEST(Corpus, HomeStampedIntoManifests) {
  RepoHarness h;
  auto corpus = generate_corpus(h.repo, small_config(), StationId{77});
  ASSERT_TRUE(corpus.is_ok());
  for (const dist::DocManifest& m : corpus.value().all_manifests()) {
    EXPECT_EQ(m.home, StationId{77});
  }
}

TEST(Corpus, ZipfReuseMakesHotResources) {
  RepoHarness h;
  CorpusConfig cfg = small_config();
  cfg.courses = 30;
  cfg.impls_per_course = 1;
  cfg.zipf_s = 1.2;
  auto corpus = generate_corpus(h.repo, cfg);
  ASSERT_TRUE(corpus.is_ok());
  // Count how often each digest appears across manifests.
  std::map<std::string, int> uses;
  for (const auto& m : corpus.value().all_manifests()) {
    for (const auto& b : m.blobs) uses[b.digest.to_hex()]++;
  }
  int max_use = 0;
  for (const auto& [_, n] : uses) max_use = std::max(max_use, n);
  EXPECT_GT(max_use, 3);  // head of the Zipf is genuinely hot
}

TEST(Corpus, PlayoutScheduleMonotonePerImplementation) {
  RepoHarness h;
  auto corpus = generate_corpus(h.repo, small_config());
  ASSERT_TRUE(corpus.is_ok());
  for (const auto& m : corpus.value().all_manifests()) {
    std::int64_t prev = -1;
    for (const auto& b : m.blobs) {
      ASSERT_TRUE(b.playout_ms.has_value());
      EXPECT_GT(*b.playout_ms, prev);
      prev = *b.playout_ms;
    }
  }
}

TEST(Corpus, ResourcePoolDeterministic) {
  CorpusConfig cfg = small_config();
  auto p1 = resource_pool(cfg);
  auto p2 = resource_pool(cfg);
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) EXPECT_EQ(p1[i], p2[i]);
  cfg.seed = 8;
  auto p3 = resource_pool(cfg);
  EXPECT_NE(p1[0].digest, p3[0].digest);
}

TEST(Patterns, EditingWorkloadRespectsConfig) {
  auto ops = editing_workload(4, 10, 1000, 0.25, 42);
  ASSERT_EQ(ops.size(), 1000u);
  int writes = 0;
  for (const EditOp& op : ops) {
    EXPECT_GE(op.user.value(), 1u);
    EXPECT_LE(op.user.value(), 4u);
    EXPECT_LT(op.node_index, 10u);
    writes += op.write ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(writes) / 1000.0, 0.25, 0.06);
}

TEST(Patterns, ZipfTraceSkewsTowardHotDocs) {
  auto trace = zipf_access_trace(5, 100, 20000, 1.0, 1);
  ASSERT_EQ(trace.size(), 20000u);
  std::map<std::size_t, int> hits;
  for (const AccessOp& op : trace) {
    EXPECT_LT(op.station_index, 5u);
    EXPECT_LT(op.doc_index, 100u);
    hits[op.doc_index]++;
  }
  EXPECT_GT(hits[0], hits[50]);
}

TEST(Patterns, TraversalLogIsWellFormed) {
  auto log = random_traversal("http://x", 5, 40, 9);
  EXPECT_EQ(log.size(), 41u);  // 40 events + close
  EXPECT_EQ(log.events().back().kind, docmodel::TraversalEventKind::close);
  // Timestamps are nondecreasing.
  std::int64_t prev = -1;
  for (const auto& ev : log.events()) {
    EXPECT_GE(ev.at_ms, prev);
    prev = ev.at_ms;
  }
  // Round-trips through its encoding.
  auto decoded = docmodel::TraversalLog::decode(log.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), log);
}

TEST(Patterns, RandomAnnotationRoundTrips) {
  auto doc = random_annotation(25, 3);
  EXPECT_EQ(doc.op_count(), 25u);
  auto decoded = docmodel::AnnotationDoc::decode(doc.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), doc);
}

TEST(HttpTrace, OpenLoopShapeAndDeterminism) {
  HttpTraceConfig cfg;
  cfg.users = 1000;
  cfg.courses = 50;
  cfg.ops = 5000;
  cfg.rate_qps = 10000.0;
  cfg.seed = 11;
  auto t1 = open_loop_http_trace(cfg);
  auto t2 = open_loop_http_trace(cfg);
  ASSERT_EQ(t1.size(), cfg.ops);
  ASSERT_EQ(t2.size(), cfg.ops);
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].at_micros, t2[i].at_micros);
    EXPECT_EQ(t1[i].kind, t2[i].kind);
    EXPECT_EQ(t1[i].user, t2[i].user);
    EXPECT_EQ(t1[i].course_index, t2[i].course_index);
    EXPECT_EQ(t1[i].bogus, t2[i].bogus);
  }
  cfg.seed = 12;
  auto t3 = open_loop_http_trace(cfg);
  bool differs = false;
  for (std::size_t i = 0; i < t1.size() && !differs; ++i) {
    differs = t1[i].at_micros != t3[i].at_micros || t1[i].user != t3[i].user;
  }
  EXPECT_TRUE(differs);
}

TEST(HttpTrace, ArrivalsAreOpenLoopPoisson) {
  HttpTraceConfig cfg;
  cfg.users = 500;
  cfg.courses = 20;
  cfg.ops = 20000;
  cfg.rate_qps = 40000.0;
  cfg.seed = 3;
  auto trace = open_loop_http_trace(cfg);
  // Times nondecreasing; mean inter-arrival ~= 1e6/rate (25us).
  std::int64_t prev = 0;
  for (const HttpOp& op : trace) {
    EXPECT_GE(op.at_micros, prev);
    prev = op.at_micros;
  }
  double mean_gap =
      static_cast<double>(trace.back().at_micros) / static_cast<double>(cfg.ops);
  EXPECT_NEAR(mean_gap, 1e6 / cfg.rate_qps, 0.1 * 1e6 / cfg.rate_qps);
}

TEST(HttpTrace, CoursesAreZipfSkewedAndUsersInRange) {
  HttpTraceConfig cfg;
  cfg.users = 200;
  cfg.courses = 100;
  cfg.ops = 20000;
  cfg.zipf_s = 1.0;
  cfg.seed = 5;
  auto trace = open_loop_http_trace(cfg);
  std::map<std::size_t, int> hits;
  for (const HttpOp& op : trace) {
    EXPECT_GE(op.user, 1u);
    EXPECT_LE(op.user, cfg.users);
    if (!op.bogus) {
      EXPECT_LT(op.course_index, cfg.courses);
      hits[op.course_index]++;
    } else {
      EXPECT_GE(op.course_index, cfg.courses);  // bogus targets miss the catalog
    }
  }
  EXPECT_GT(hits[0], hits[50] * 2);  // hot head
}

TEST(HttpTrace, EveryCheckInHasAMatchingOpenCheckOut) {
  HttpTraceConfig cfg;
  cfg.users = 300;
  cfg.courses = 40;
  cfg.ops = 10000;
  cfg.seed = 9;
  auto trace = open_loop_http_trace(cfg);
  std::map<std::pair<std::uint64_t, std::size_t>, int> open;
  std::size_t check_ins = 0;
  for (const HttpOp& op : trace) {
    auto key = std::make_pair(op.user, op.course_index);
    if (op.kind == HttpOpKind::check_out) {
      // Never re-checks-out a held course (library would answer 409).
      EXPECT_EQ(open[key], 0) << "user " << op.user << " course " << op.course_index;
      open[key]++;
    } else if (op.kind == HttpOpKind::check_in) {
      ++check_ins;
      ASSERT_GT(open[key], 0) << "check-in without open loan";
      open[key]--;
    }
  }
  EXPECT_GT(check_ins, 0u);  // the mix genuinely exercises the ledger
}

TEST(LibraryCorpus, DeterministicShardingAndQueries) {
  LibraryCorpusConfig cfg;
  cfg.courses = 40;
  cfg.shards = 3;
  auto e1 = library_corpus(cfg);
  auto e2 = library_corpus(cfg);
  ASSERT_EQ(e1.size(), 40u);
  for (std::size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].course_number, e2[i].course_number);
    EXPECT_EQ(e1[i].title, e2[i].title);
    EXPECT_EQ(e1[i].keywords, e2[i].keywords);
  }
  std::vector<library::VirtualLibrary> s1(cfg.shards), s2(cfg.shards);
  populate_shards(s1, e1, cfg);
  populate_shards(s2, e2, cfg);
  std::size_t total1 = 0, total2 = 0;
  for (std::size_t i = 0; i < cfg.shards; ++i) {
    EXPECT_EQ(s1[i].entry_count(), s2[i].entry_count());
    total1 += s1[i].entry_count();
    total2 += s2[i].entry_count();
  }
  EXPECT_GE(total1, cfg.courses);  // replicas add extra placements
  EXPECT_EQ(total1, total2);
  EXPECT_EQ(query_pool(cfg, 10), query_pool(cfg, 10));
  EXPECT_FALSE(course_document(e1[0]).empty());
}

TEST(Patterns, GeneratorsDeterministic) {
  EXPECT_EQ(editing_workload(3, 5, 100, 0.5, 1)[7].node_index,
            editing_workload(3, 5, 100, 0.5, 1)[7].node_index);
  EXPECT_EQ(zipf_access_trace(3, 5, 100, 1.0, 1)[7].doc_index,
            zipf_access_trace(3, 5, 100, 1.0, 1)[7].doc_index);
}

}  // namespace
}  // namespace wdoc::workload

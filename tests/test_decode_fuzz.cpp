// Decode-robustness fuzzing: every wire/file decoder must reject arbitrary
// byte soup with a clean error — never crash, hang, or accept garbage that
// round-trips differently.
//
// Strategies per decoder: (a) pure random bytes, (b) a valid encoding with
// one mutated byte, (c) a valid encoding truncated at every length.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dist/doc_object.hpp"
#include "docmodel/annotation_ops.hpp"
#include "docmodel/traversal.hpp"
#include "http/parser.hpp"
#include "net/chunk_wire.hpp"
#include "net/swarm_wire.hpp"
#include "storage/wal.hpp"
#include "workload/patterns.hpp"

namespace wdoc {
namespace {

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform(256));
  return out;
}

template <typename DecodeFn>
void fuzz_decoder(const Bytes& valid, DecodeFn decode, std::uint64_t seed) {
  Rng rng(seed);
  // (a) random soup of assorted sizes.
  for (int i = 0; i < 200; ++i) {
    Bytes soup = random_bytes(rng, rng.uniform(200));
    (void)decode(soup);  // must simply not crash
  }
  // (b) single-byte mutations of a valid encoding.
  for (int i = 0; i < 200 && !valid.empty(); ++i) {
    Bytes mutated = valid;
    std::size_t pos = rng.uniform(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    (void)decode(mutated);
  }
  // (c) every truncation of the valid encoding.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    Bytes truncated(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(len));
    auto result = decode(truncated);
    EXPECT_FALSE(result) << "truncation to " << len << " bytes decoded successfully";
  }
}

TEST(DecodeFuzz, AnnotationDoc) {
  auto doc = workload::random_annotation(12, 5);
  fuzz_decoder(
      doc.encode(),
      [](const Bytes& b) { return docmodel::AnnotationDoc::decode(b).is_ok(); }, 1);
  // Sanity: the valid encoding still decodes to the original.
  EXPECT_EQ(docmodel::AnnotationDoc::decode(doc.encode()).expect("valid"), doc);
}

TEST(DecodeFuzz, TraversalLog) {
  auto log = workload::random_traversal("http://x", 4, 25, 5);
  fuzz_decoder(
      log.encode(),
      [](const Bytes& b) { return docmodel::TraversalLog::decode(b).is_ok(); }, 2);
  EXPECT_EQ(docmodel::TraversalLog::decode(log.encode()).expect("valid"), log);
}

TEST(DecodeFuzz, DocManifest) {
  dist::DocManifest manifest;
  manifest.doc_key = "http://mmu.edu/CS101";
  manifest.structure_bytes = 12345;
  manifest.home = StationId{7};
  for (int i = 0; i < 3; ++i) {
    dist::BlobRef ref;
    ref.digest = digest128("blob " + std::to_string(i));
    ref.size = 1000u * static_cast<std::uint64_t>(i + 1);
    ref.playout_ms = i * 100;
    manifest.blobs.push_back(ref);
  }
  Writer w;
  manifest.serialize(w);
  Bytes valid = w.take();
  fuzz_decoder(
      valid,
      [](const Bytes& b) {
        Reader r(b);
        auto decoded = dist::DocManifest::deserialize(r);
        // A successful decode must also consume sensibly (no trailing junk
        // check here — manifests embed in larger messages).
        return decoded.is_ok();
      },
      3);
  Reader r(valid);
  EXPECT_EQ(dist::DocManifest::deserialize(r).expect("valid"), manifest);
}

TEST(DecodeFuzz, ChunkBegin) {
  net::ChunkBegin begin;
  begin.transfer_id = 0xabcdef01;
  begin.chunk_bytes = 256 * 1024;
  begin.manifest = Bytes{1, 2, 3, 4, 5, 6, 7, 8};
  fuzz_decoder(
      begin.encode(),
      [](const Bytes& b) { return net::ChunkBegin::decode(b).is_ok(); }, 10);
  // Zero and oversized chunk sizes are rejected even when well-formed.
  for (std::uint32_t bad : {0u, net::kMaxWireChunkBytes + 1, 0xffffffffu}) {
    net::ChunkBegin evil = begin;
    evil.chunk_bytes = bad;
    EXPECT_FALSE(net::ChunkBegin::decode(evil.encode()).is_ok()) << bad;
  }
  auto ok = net::ChunkBegin::decode(begin.encode()).expect("valid");
  EXPECT_EQ(ok.transfer_id, begin.transfer_id);
  EXPECT_EQ(ok.manifest, begin.manifest);
}

TEST(DecodeFuzz, ChunkData) {
  net::ChunkData d;
  d.req_id = 77;
  d.transfer_id = 99;
  d.digest = digest128("blob");
  d.index = 3;
  const Bytes chunk{9, 8, 7, 6, 5};
  d.chunk_len = static_cast<std::uint32_t>(chunk.size());
  d.has_payload = true;
  d.chunk_digest = digest128(chunk);
  d.payload = net::Payload::copy_of(chunk);
  // The chunk bytes ride out-of-band; fuzz the header against the real body
  // (a mutated header that survives parsing must still match the body).
  const net::Payload body = d.payload;
  fuzz_decoder(
      d.encode(),
      [&](const Bytes& b) { return net::ChunkData::decode(b, body).is_ok(); }, 11);
  // Synthetic (size-only) variant fuzzes too — with an empty body.
  net::ChunkData synth = d;
  synth.has_payload = false;
  synth.payload = net::Payload{};
  synth.chunk_len = 4096;
  fuzz_decoder(
      synth.encode(),
      [](const Bytes& b) { return net::ChunkData::decode(b, net::Payload{}).is_ok(); },
      12);
  // A declared length that disagrees with the body must not decode.
  net::ChunkData lying = d;
  lying.chunk_len = 4;  // body is 5 bytes
  EXPECT_FALSE(net::ChunkData::decode(lying.encode(), body).is_ok());
  // Body bytes with no header claim are as corrupt as a missing body.
  EXPECT_FALSE(net::ChunkData::decode(synth.encode(), body).is_ok());
  // Oversized declared lengths are rejected before any allocation.
  net::ChunkData huge = synth;
  huge.chunk_len = net::kMaxWireChunkBytes + 1;
  EXPECT_FALSE(net::ChunkData::decode(huge.encode(), net::Payload{}).is_ok());
}

TEST(DecodeFuzz, ChunkAck) {
  net::ChunkAck ack;
  ack.req_id = 55;
  ack.transfer_id = 66;
  ack.digest = digest128("blob");
  ack.index = 12;
  fuzz_decoder(
      ack.encode(), [](const Bytes& b) { return net::ChunkAck::decode(b).is_ok(); },
      13);
  auto ok = net::ChunkAck::decode(ack.encode()).expect("valid");
  EXPECT_EQ(ok.req_id, ack.req_id);
  EXPECT_EQ(ok.index, ack.index);
}

TEST(DecodeFuzz, ChunkReq) {
  net::ChunkReq req;
  req.req_id = 123;
  req.doc_key = "http://mmu.edu/CS101";
  req.digest = digest128("blob");
  req.size = 10 << 20;
  req.media_type = 2;
  req.chunk_bytes = 256 * 1024;
  req.indices = {0, 3, 17, 40};
  fuzz_decoder(
      req.encode(), [](const Bytes& b) { return net::ChunkReq::decode(b).is_ok(); },
      14);
  // A hostile index count larger than the remaining bytes must not drive a
  // reservation (Reader::count guards min element width).
  Writer w;
  w.u64(1);
  w.str("k");
  w.u64(0);
  w.u64(0);
  w.u64(100);
  w.u8(0);
  w.u32(1024);
  w.u32(0xffffffffu);  // claims 4 billion indices, provides none
  EXPECT_FALSE(net::ChunkReq::decode(w.take()).is_ok());
  auto ok = net::ChunkReq::decode(req.encode()).expect("valid");
  EXPECT_EQ(ok.indices, req.indices);
  EXPECT_EQ(ok.doc_key, req.doc_key);
}

TEST(DecodeFuzz, ChunkRsp) {
  net::ChunkRsp rsp;
  rsp.req_id = 9;
  rsp.served = 5;
  rsp.requested = 8;
  fuzz_decoder(
      rsp.encode(), [](const Bytes& b) { return net::ChunkRsp::decode(b).is_ok(); },
      15);
  auto ok = net::ChunkRsp::decode(rsp.encode()).expect("valid");
  EXPECT_EQ(ok.served, rsp.served);
  EXPECT_EQ(ok.requested, rsp.requested);
}

TEST(DecodeFuzz, SwarmBegin) {
  net::SwarmBegin begin;
  begin.transfer_id = 0x5157a2f1;
  begin.chunk_bytes = 256 * 1024;
  begin.trees = 2;
  begin.manifest = Bytes{1, 2, 3, 4, 5, 6, 7, 8};
  fuzz_decoder(
      begin.encode(),
      [](const Bytes& b) { return net::SwarmBegin::decode(b).is_ok(); }, 16);
  // Implausible geometry is rejected even when well-formed.
  for (std::uint32_t bad : {0u, net::kMaxWireChunkBytes + 1}) {
    net::SwarmBegin evil = begin;
    evil.chunk_bytes = bad;
    EXPECT_FALSE(net::SwarmBegin::decode(evil.encode()).is_ok()) << bad;
  }
  for (std::uint32_t bad : {0u, net::kMaxWireTrees + 1}) {
    net::SwarmBegin evil = begin;
    evil.trees = bad;
    EXPECT_FALSE(net::SwarmBegin::decode(evil.encode()).is_ok()) << bad;
  }
  auto ok = net::SwarmBegin::decode(begin.encode()).expect("valid");
  EXPECT_EQ(ok.transfer_id, begin.transfer_id);
  EXPECT_EQ(ok.trees, begin.trees);
  EXPECT_EQ(ok.manifest, begin.manifest);
}

TEST(DecodeFuzz, SwarmHave) {
  net::SwarmHave have;
  have.transfer_id = 42;
  have.position = 9;
  have.backlog = 3;
  have.recovering = 0b10;
  have.total_chunks = 130;  // 3 words, top word mostly padding
  have.words = {0xffffffffffffffffull, 0x00000000000000ffull, 0x3ull};
  have.pending_words = {0ull, 0xff00ull, 0x1ull};
  fuzz_decoder(
      have.encode(), [](const Bytes& b) { return net::SwarmHave::decode(b).is_ok(); },
      17);
  // The word count is implied by total_chunks — a geometry claim the words
  // can't cover must fail, and a huge claim must not drive an allocation.
  for (std::uint32_t bad : {0u, net::kMaxWireChunks + 1, 0xffffffffu}) {
    net::SwarmHave evil = have;
    evil.total_chunks = bad;
    EXPECT_FALSE(net::SwarmHave::decode(evil.encode()).is_ok()) << bad;
  }
  {
    // Have-bitmap present but pending bitmap missing: truncation, not OK.
    net::SwarmHave cut = have;
    cut.pending_words.pop_back();
    EXPECT_FALSE(net::SwarmHave::decode(cut.encode()).is_ok());
  }
  auto ok = net::SwarmHave::decode(have.encode()).expect("valid");
  EXPECT_EQ(ok.position, have.position);
  EXPECT_EQ(ok.backlog, have.backlog);
  EXPECT_EQ(ok.recovering, have.recovering);
  EXPECT_EQ(ok.words, have.words);
  EXPECT_EQ(ok.pending_words, have.pending_words);
}

TEST(DecodeFuzz, SwarmReq) {
  net::SwarmReq req;
  req.transfer_id = 43;
  req.position = 21;
  req.backlog = 1;
  req.indices = {0, 7, 39};
  req.total_chunks = 40;
  req.have_words = {0x00ff00ff00ff00ffull};
  req.pending_words = {0x0000000000000081ull};
  fuzz_decoder(
      req.encode(), [](const Bytes& b) { return net::SwarmReq::decode(b).is_ok(); },
      18);
  // An index outside the declared geometry is corruption.
  net::SwarmReq oob = req;
  oob.indices.push_back(40);
  EXPECT_FALSE(net::SwarmReq::decode(oob.encode()).is_ok());
  // A hostile index count with no payload must not drive a reservation.
  Writer w;
  w.u64(1);
  w.u64(2);
  w.u32(0);
  w.u32(0xffffffffu);  // claims 4 billion indices, provides none
  EXPECT_FALSE(net::SwarmReq::decode(w.take()).is_ok());
  auto ok = net::SwarmReq::decode(req.encode()).expect("valid");
  EXPECT_EQ(ok.indices, req.indices);
  EXPECT_EQ(ok.have_words, req.have_words);
  EXPECT_EQ(ok.pending_words, req.pending_words);
}

TEST(DecodeFuzz, WalRecord) {
  storage::LogRecord rec;
  rec.kind = storage::LogKind::update;
  rec.txn = 9;
  rec.table = "wd_script";
  rec.row = RowId{42};
  rec.before = {storage::Value("old"), storage::Value(1)};
  rec.after = {storage::Value("new"), storage::Value(2)};
  Bytes valid = rec.encode();
  fuzz_decoder(
      valid,
      [](const Bytes& b) { return storage::LogRecord::decode(b).is_ok(); }, 4);
}

TEST(DecodeFuzz, ValueStream) {
  Writer w;
  storage::Value("text").serialize(w);
  storage::Value(std::int64_t{-5}).serialize(w);
  storage::Value(Bytes{1, 2, 3}).serialize(w);
  Bytes valid = w.take();
  Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    Bytes soup = random_bytes(rng, rng.uniform(64));
    Reader r(soup);
    while (true) {
      auto v = storage::Value::deserialize(r);
      if (!v.is_ok()) break;  // error path must terminate the stream cleanly
      if (r.at_end()) break;
    }
  }
  // Truncations of a valid stream fail cleanly on the cut value.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    Bytes truncated(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(len));
    Reader r(truncated);
    while (true) {
      auto v = storage::Value::deserialize(r);
      if (!v.is_ok() || r.at_end()) break;
    }
  }
}

// --- HTTP request parser ----------------------------------------------------
//
// The parser fronts a real network socket, so the bar is higher than the
// wire decoders above: arbitrary soup, mutations, truncations, arbitrary
// read-fragmentation, and pipelined back-to-back requests must never crash,
// over-read (ASan-checked), or accept a request exceeding configured limits.

namespace {

const std::string kValidHttp =
    "POST /check-out?course=CS101&student=42 HTTP/1.1\r\n"
    "Host: wdoc\r\nContent-Length: 4\r\n\r\nbody";

http::ParserLimits tight_limits() {
  http::ParserLimits limits;
  limits.max_request_line = 256;
  limits.max_header_bytes = 512;
  limits.max_headers = 16;
  limits.max_body = 128;
  return limits;
}

// Runs the parser to quiescence over `wire`, counting accepted requests.
std::size_t drain(http::RequestParser& p, std::string_view wire) {
  if (!p.feed(wire)) return 0;
  std::size_t ready = 0;
  for (;;) {
    http::Request req;
    http::ParseStatus st = p.next(req);
    if (st == http::ParseStatus::ready) {
      ++ready;
      continue;
    }
    return ready;
  }
}

}  // namespace

TEST(DecodeFuzz, HttpParserRandomSoup) {
  Rng rng(21);
  for (int i = 0; i < 300; ++i) {
    http::RequestParser p(tight_limits());
    Bytes soup = random_bytes(rng, rng.uniform(600));
    std::size_t ready =
        drain(p, std::string_view(reinterpret_cast<const char*>(soup.data()),
                                  soup.size()));
    // Soup virtually never forms a valid request; if it somehow does, the
    // parser must still respect the body limit.
    EXPECT_LE(ready, 2u);
  }
}

TEST(DecodeFuzz, HttpParserSingleByteMutations) {
  Rng rng(22);
  for (int i = 0; i < 300; ++i) {
    std::string mutated = kValidHttp;
    std::size_t pos = rng.uniform(mutated.size());
    mutated[pos] ^= static_cast<char>(1 + rng.uniform(255));
    http::RequestParser p(tight_limits());
    (void)drain(p, mutated);  // must simply not crash or over-read
  }
}

TEST(DecodeFuzz, HttpParserEveryTruncationIsIncomplete) {
  for (std::size_t len = 0; len < kValidHttp.size(); ++len) {
    http::RequestParser p(tight_limits());
    ASSERT_TRUE(p.feed(std::string_view(kValidHttp).substr(0, len)));
    http::Request req;
    EXPECT_NE(p.next(req), http::ParseStatus::ready) << "truncated to " << len;
  }
}

TEST(DecodeFuzz, HttpParserEverySplitParsesIdentically) {
  for (std::size_t split = 0; split <= kValidHttp.size(); ++split) {
    http::RequestParser p(tight_limits());
    ASSERT_TRUE(p.feed(std::string_view(kValidHttp).substr(0, split)));
    http::Request req;
    http::ParseStatus first = p.next(req);
    EXPECT_NE(first, http::ParseStatus::error) << "split at " << split;
    ASSERT_TRUE(p.feed(std::string_view(kValidHttp).substr(split)));
    if (first != http::ParseStatus::ready) {
      ASSERT_EQ(p.next(req), http::ParseStatus::ready) << "split at " << split;
    }
    EXPECT_EQ(req.path, "/check-out");
    EXPECT_EQ(req.body, "body");
    EXPECT_EQ(req.param("student").value_or(""), "42");
    EXPECT_EQ(p.next(req), http::ParseStatus::need_more);
  }
}

TEST(DecodeFuzz, HttpParserPipelinedCopies) {
  std::string wire;
  for (int i = 0; i < 5; ++i) wire += kValidHttp;
  http::RequestParser p(tight_limits());
  EXPECT_EQ(drain(p, wire), 5u);
  EXPECT_EQ(p.buffered_bytes(), 0u);
}

TEST(DecodeFuzz, HttpParserNeverAcceptsOverLimitRequests) {
  http::ParserLimits limits = tight_limits();
  // Declared body over the cap: rejected before any body bytes arrive.
  {
    http::RequestParser p(limits);
    ASSERT_TRUE(p.feed("POST / HTTP/1.1\r\nContent-Length: 129\r\n\r\n"));
    http::Request req;
    EXPECT_EQ(p.next(req), http::ParseStatus::error);
    EXPECT_EQ(p.error_status(), 413);
  }
  // Unterminated request line past the cap.
  {
    http::RequestParser p(limits);
    ASSERT_TRUE(p.feed("GET /" + std::string(limits.max_request_line + 1, 'a')));
    http::Request req;
    EXPECT_EQ(p.next(req), http::ParseStatus::error);
    EXPECT_EQ(p.error_status(), 414);
  }
  // Header flood past the cap.
  {
    http::RequestParser p(limits);
    std::string wire = "GET / HTTP/1.1\r\n";
    wire += "X: " + std::string(limits.max_header_bytes + 1, 'b') + "\r\n";
    ASSERT_TRUE(p.feed(wire));
    http::Request req;
    EXPECT_EQ(p.next(req), http::ParseStatus::error);
    EXPECT_EQ(p.error_status(), 431);
  }
  // feed() itself refuses once the buffer cap is reached: memory stays
  // bounded no matter how much a peer streams.
  {
    http::RequestParser p(limits);
    std::string chunk(1024, 'c');
    std::size_t accepted = 0;
    while (p.feed(chunk)) {
      accepted += chunk.size();
      ASSERT_LE(accepted, limits.max_buffer() + chunk.size());
    }
    EXPECT_LE(p.buffered_bytes(), limits.max_buffer());
  }
}

}  // namespace
}  // namespace wdoc

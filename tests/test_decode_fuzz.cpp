// Decode-robustness fuzzing: every wire/file decoder must reject arbitrary
// byte soup with a clean error — never crash, hang, or accept garbage that
// round-trips differently.
//
// Strategies per decoder: (a) pure random bytes, (b) a valid encoding with
// one mutated byte, (c) a valid encoding truncated at every length.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "dist/doc_object.hpp"
#include "docmodel/annotation_ops.hpp"
#include "docmodel/traversal.hpp"
#include "storage/wal.hpp"
#include "workload/patterns.hpp"

namespace wdoc {
namespace {

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform(256));
  return out;
}

template <typename DecodeFn>
void fuzz_decoder(const Bytes& valid, DecodeFn decode, std::uint64_t seed) {
  Rng rng(seed);
  // (a) random soup of assorted sizes.
  for (int i = 0; i < 200; ++i) {
    Bytes soup = random_bytes(rng, rng.uniform(200));
    (void)decode(soup);  // must simply not crash
  }
  // (b) single-byte mutations of a valid encoding.
  for (int i = 0; i < 200 && !valid.empty(); ++i) {
    Bytes mutated = valid;
    std::size_t pos = rng.uniform(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    (void)decode(mutated);
  }
  // (c) every truncation of the valid encoding.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    Bytes truncated(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(len));
    auto result = decode(truncated);
    EXPECT_FALSE(result) << "truncation to " << len << " bytes decoded successfully";
  }
}

TEST(DecodeFuzz, AnnotationDoc) {
  auto doc = workload::random_annotation(12, 5);
  fuzz_decoder(
      doc.encode(),
      [](const Bytes& b) { return docmodel::AnnotationDoc::decode(b).is_ok(); }, 1);
  // Sanity: the valid encoding still decodes to the original.
  EXPECT_EQ(docmodel::AnnotationDoc::decode(doc.encode()).expect("valid"), doc);
}

TEST(DecodeFuzz, TraversalLog) {
  auto log = workload::random_traversal("http://x", 4, 25, 5);
  fuzz_decoder(
      log.encode(),
      [](const Bytes& b) { return docmodel::TraversalLog::decode(b).is_ok(); }, 2);
  EXPECT_EQ(docmodel::TraversalLog::decode(log.encode()).expect("valid"), log);
}

TEST(DecodeFuzz, DocManifest) {
  dist::DocManifest manifest;
  manifest.doc_key = "http://mmu.edu/CS101";
  manifest.structure_bytes = 12345;
  manifest.home = StationId{7};
  for (int i = 0; i < 3; ++i) {
    dist::BlobRef ref;
    ref.digest = digest128("blob " + std::to_string(i));
    ref.size = 1000u * static_cast<std::uint64_t>(i + 1);
    ref.playout_ms = i * 100;
    manifest.blobs.push_back(ref);
  }
  Writer w;
  manifest.serialize(w);
  Bytes valid = w.take();
  fuzz_decoder(
      valid,
      [](const Bytes& b) {
        Reader r(b);
        auto decoded = dist::DocManifest::deserialize(r);
        // A successful decode must also consume sensibly (no trailing junk
        // check here — manifests embed in larger messages).
        return decoded.is_ok();
      },
      3);
  Reader r(valid);
  EXPECT_EQ(dist::DocManifest::deserialize(r).expect("valid"), manifest);
}

TEST(DecodeFuzz, WalRecord) {
  storage::LogRecord rec;
  rec.kind = storage::LogKind::update;
  rec.txn = 9;
  rec.table = "wd_script";
  rec.row = RowId{42};
  rec.before = {storage::Value("old"), storage::Value(1)};
  rec.after = {storage::Value("new"), storage::Value(2)};
  Bytes valid = rec.encode();
  fuzz_decoder(
      valid,
      [](const Bytes& b) { return storage::LogRecord::decode(b).is_ok(); }, 4);
}

TEST(DecodeFuzz, ValueStream) {
  Writer w;
  storage::Value("text").serialize(w);
  storage::Value(std::int64_t{-5}).serialize(w);
  storage::Value(Bytes{1, 2, 3}).serialize(w);
  Bytes valid = w.take();
  Rng rng(6);
  for (int i = 0; i < 300; ++i) {
    Bytes soup = random_bytes(rng, rng.uniform(64));
    Reader r(soup);
    while (true) {
      auto v = storage::Value::deserialize(r);
      if (!v.is_ok()) break;  // error path must terminate the stream cleanly
      if (r.at_end()) break;
    }
  }
  // Truncations of a valid stream fail cleanly on the cut value.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    Bytes truncated(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(len));
    Reader r(truncated);
    while (true) {
      auto v = storage::Value::deserialize(r);
      if (!v.is_ok() || r.at_end()) break;
    }
  }
}

}  // namespace
}  // namespace wdoc

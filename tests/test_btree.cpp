// B+-tree index tests: CRUD, duplicates, range scans, and a parameterized
// property sweep that hammers random workloads and checks the structural
// invariants after every phase.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "storage/btree_index.hpp"

namespace wdoc::storage {
namespace {

TEST(BTree, EmptyTree) {
  BTreeIndex t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
  EXPECT_TRUE(t.find(Value(1)).empty());
  EXPECT_FALSE(t.contains(Value(1)));
  EXPECT_EQ(t.validate(), "");
}

TEST(BTree, InsertAndFind) {
  BTreeIndex t;
  t.insert(Value("b"), RowId{2});
  t.insert(Value("a"), RowId{1});
  t.insert(Value("c"), RowId{3});
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.find(Value("a")), std::vector<RowId>{RowId{1}});
  EXPECT_TRUE(t.contains(Value("c")));
  EXPECT_FALSE(t.contains(Value("d")));
  EXPECT_EQ(t.validate(), "");
}

TEST(BTree, DuplicateKeysKeepAllPostings) {
  BTreeIndex t;
  for (std::uint64_t i = 1; i <= 5; ++i) t.insert(Value("dup"), RowId{i});
  auto hits = t.find(Value("dup"));
  EXPECT_EQ(hits.size(), 5u);
  EXPECT_TRUE(t.erase(Value("dup"), RowId{3}));
  hits = t.find(Value("dup"));
  EXPECT_EQ(hits.size(), 4u);
  EXPECT_EQ(std::count(hits.begin(), hits.end(), RowId{3}), 0);
}

TEST(BTree, EraseReturnsFalseForMissing) {
  BTreeIndex t;
  t.insert(Value(1), RowId{1});
  EXPECT_FALSE(t.erase(Value(1), RowId{2}));  // wrong rid
  EXPECT_FALSE(t.erase(Value(2), RowId{1}));  // wrong key
  EXPECT_TRUE(t.erase(Value(1), RowId{1}));
  EXPECT_EQ(t.size(), 0u);
}

TEST(BTree, ScanAllIsSorted) {
  BTreeIndex t;
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    t.insert(Value(static_cast<std::int64_t>(rng.uniform(1000))),
             RowId{static_cast<std::uint64_t>(i + 1)});
  }
  Value prev = Value::null();
  std::size_t count = 0;
  t.scan_all([&](const Value& k, RowId) {
    EXPECT_LE(prev, k);
    prev = k;
    ++count;
    return true;
  });
  EXPECT_EQ(count, 500u);
}

TEST(BTree, RangeScanRespectsBounds) {
  BTreeIndex t;
  for (std::int64_t i = 0; i < 100; ++i) {
    t.insert(Value(i), RowId{static_cast<std::uint64_t>(i + 1)});
  }
  Value lo(10), hi(19);
  std::vector<std::int64_t> keys;
  t.scan_range(&lo, &hi, [&](const Value& k, RowId) {
    keys.push_back(k.as_int());
    return true;
  });
  ASSERT_EQ(keys.size(), 10u);
  EXPECT_EQ(keys.front(), 10);
  EXPECT_EQ(keys.back(), 19);
}

TEST(BTree, RangeScanOpenBounds) {
  BTreeIndex t;
  for (std::int64_t i = 0; i < 20; ++i) {
    t.insert(Value(i), RowId{static_cast<std::uint64_t>(i + 1)});
  }
  Value lo(15);
  std::size_t above = 0;
  t.scan_range(&lo, nullptr, [&](const Value&, RowId) {
    ++above;
    return true;
  });
  EXPECT_EQ(above, 5u);
  Value hi(4);
  std::size_t below = 0;
  t.scan_range(nullptr, &hi, [&](const Value&, RowId) {
    ++below;
    return true;
  });
  EXPECT_EQ(below, 5u);
}

TEST(BTree, EarlyStopFromVisitor) {
  BTreeIndex t;
  for (std::int64_t i = 0; i < 100; ++i) {
    t.insert(Value(i), RowId{static_cast<std::uint64_t>(i + 1)});
  }
  std::size_t seen = 0;
  t.scan_all([&](const Value&, RowId) { return ++seen < 7; });
  EXPECT_EQ(seen, 7u);
}

TEST(BTree, GrowsAndShrinksThroughSplitsAndMerges) {
  BTreeIndex t(8);  // small order to force deep trees
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    t.insert(Value(static_cast<std::int64_t>(i)), RowId{static_cast<std::uint64_t>(i + 1)});
  }
  EXPECT_GT(t.height(), 2u);
  EXPECT_EQ(t.validate(), "");
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(t.erase(Value(static_cast<std::int64_t>(i)),
                        RowId{static_cast<std::uint64_t>(i + 1)}));
  }
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.height(), 1u);
  EXPECT_EQ(t.validate(), "");
}

TEST(BTree, ClearResets) {
  BTreeIndex t;
  for (int i = 0; i < 50; ++i) {
    t.insert(Value(i), RowId{static_cast<std::uint64_t>(i + 1)});
  }
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.validate(), "");
}

TEST(BTree, TextKeysWork) {
  BTreeIndex t;
  t.insert(Value("script-b"), RowId{2});
  t.insert(Value("script-a"), RowId{1});
  t.insert(Value("script-c"), RowId{3});
  Value lo("script-a"), hi("script-b");
  std::vector<std::string> keys;
  t.scan_range(&lo, &hi, [&](const Value& k, RowId) {
    keys.push_back(k.as_text());
    return true;
  });
  EXPECT_EQ(keys, (std::vector<std::string>{"script-a", "script-b"}));
}

// --- property sweep ------------------------------------------------------

struct BTreeSweepParam {
  std::size_t order;
  std::size_t ops;
  std::uint64_t key_space;
  std::uint64_t seed;
};

class BTreeProperty : public ::testing::TestWithParam<BTreeSweepParam> {};

TEST_P(BTreeProperty, MatchesReferenceMultimapUnderRandomOps) {
  const auto p = GetParam();
  BTreeIndex tree(p.order);
  std::multimap<std::int64_t, std::uint64_t> reference;
  Rng rng(p.seed);
  std::uint64_t next_rid = 0;

  for (std::size_t op = 0; op < p.ops; ++op) {
    double u = rng.uniform01();
    if (u < 0.6 || reference.empty()) {
      std::int64_t key = static_cast<std::int64_t>(rng.uniform(p.key_space));
      std::uint64_t rid = ++next_rid;
      tree.insert(Value(key), RowId{rid});
      reference.emplace(key, rid);
    } else {
      // Erase a random existing entry.
      auto it = reference.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(rng.uniform(reference.size())));
      ASSERT_TRUE(tree.erase(Value(it->first), RowId{it->second}));
      reference.erase(it);
    }
    if (op % 250 == 0) {
      ASSERT_EQ(tree.validate(), "") << "after op " << op;
    }
  }

  ASSERT_EQ(tree.validate(), "");
  ASSERT_EQ(tree.size(), reference.size());

  // Full ordered scan must equal the reference ordering by (key, rid).
  std::vector<std::pair<std::int64_t, std::uint64_t>> got;
  tree.scan_all([&](const Value& k, RowId r) {
    got.emplace_back(k.as_int(), r.value());
    return true;
  });
  std::vector<std::pair<std::int64_t, std::uint64_t>> want(reference.begin(),
                                                           reference.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);

  // Point lookups agree for every key in the key space.
  for (std::uint64_t k = 0; k < p.key_space; ++k) {
    auto key = static_cast<std::int64_t>(k);
    auto hits = tree.find(Value(key));
    EXPECT_EQ(hits.size(), reference.count(key)) << "key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BTreeProperty,
    ::testing::Values(BTreeSweepParam{4, 2000, 50, 1},
                      BTreeSweepParam{8, 2000, 500, 2},
                      BTreeSweepParam{16, 3000, 20, 3},   // heavy duplicates
                      BTreeSweepParam{64, 3000, 5000, 4},
                      BTreeSweepParam{5, 1500, 100, 5},   // odd order
                      BTreeSweepParam{32, 4000, 1000, 6}),
    [](const ::testing::TestParamInfo<BTreeSweepParam>& info) {
      return "order" + std::to_string(info.param.order) + "_keys" +
             std::to_string(info.param.key_space) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace wdoc::storage

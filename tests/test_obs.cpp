// wdoc_obs: registry addressing/label semantics, histogram bucket
// boundaries, snapshot/JSON export stability, tracer span trees,
// multi-threaded increments (run under TSan via WDOC_SANITIZE=thread),
// snapshot wire roundtrips/merging, Chrome trace export, and the flight
// recorder ring.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/scrape.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

using namespace wdoc;
using namespace wdoc::obs;

namespace {

// Tests share the global registry with every other linked subsystem, so
// each uses test-local metric names.

TEST(MetricsRegistry, SameNameSameInstrument) {
  auto& reg = MetricsRegistry::global();
  Counter& a = reg.counter("obs_test.hits");
  Counter& b = reg.counter("obs_test.hits");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  b.inc(2);
  EXPECT_EQ(a.value(), 5u);
}

TEST(MetricsRegistry, LabelsAddressDistinctInstruments) {
  auto& reg = MetricsRegistry::global();
  Counter& read = reg.counter("obs_test.ops", {{"mode", "read"}});
  Counter& write = reg.counter("obs_test.ops", {{"mode", "write"}});
  EXPECT_NE(&read, &write);
  // Label order must not matter: std::map keys are sorted.
  Counter& ab = reg.counter("obs_test.multi", {{"a", "1"}, {"b", "2"}});
  Counter& ba = reg.counter("obs_test.multi", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&ab, &ba);
}

TEST(MetricsRegistry, ResetZeroesButKeepsIdentity) {
  auto& reg = MetricsRegistry::global();
  Counter& c = reg.counter("obs_test.reset_me");
  Gauge& g = reg.gauge("obs_test.reset_gauge");
  c.inc(7);
  g.set(-4);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(&c, &reg.counter("obs_test.reset_me"));  // reference survives
}

TEST(Histogram, BucketBoundaries) {
  // upper_bound(i) = 2^i; bucket 0 holds everything <= 1 (and negatives).
  EXPECT_EQ(Histogram::upper_bound(0), 1.0);
  EXPECT_EQ(Histogram::upper_bound(3), 8.0);
  EXPECT_TRUE(std::isinf(Histogram::upper_bound(Histogram::kBuckets - 1)));

  EXPECT_EQ(Histogram::bucket_of(-5.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1.5), 1u);
  EXPECT_EQ(Histogram::bucket_of(2.0), 1u);  // boundaries are inclusive
  EXPECT_EQ(Histogram::bucket_of(2.1), 2u);
  EXPECT_EQ(Histogram::bucket_of(1024.0), 10u);
  EXPECT_EQ(Histogram::bucket_of(1025.0), 11u);
  EXPECT_EQ(Histogram::bucket_of(1e300), Histogram::kBuckets - 1);
}

TEST(Histogram, ObserveAndQuantile) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.observe(3.0);    // bucket 2 (2 < v <= 4)
  for (int i = 0; i < 10; ++i) h.observe(1000.0);  // bucket 10
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 90 * 3.0 + 10 * 1000.0);
  EXPECT_EQ(h.bucket_count(2), 90u);
  EXPECT_EQ(h.bucket_count(10), 10u);
  EXPECT_EQ(h.quantile(0.50), 4.0);     // bucket 2's upper bound
  EXPECT_EQ(h.quantile(0.99), 1024.0);  // bucket 10's upper bound
}

TEST(Snapshot, JsonIsStableAndCompleteAcrossExports) {
  auto& reg = MetricsRegistry::global();
  reg.counter("obs_test.json_counter", {{"k", "v"}}).inc(42);
  reg.gauge("obs_test.json_gauge").set(-3);
  reg.histogram("obs_test.json_hist", {{"unit", "us"}}).observe(100.0);

  Snapshot snap = reg.snapshot();
  std::string a = to_json(snap);
  std::string b = to_json(reg.snapshot());
  EXPECT_EQ(a, b);  // same state -> byte-identical export

  EXPECT_NE(a.find("\"name\":\"obs_test.json_counter\""), std::string::npos);
  EXPECT_NE(a.find("\"k\":\"v\""), std::string::npos);
  EXPECT_NE(a.find("\"value\":42"), std::string::npos);
  EXPECT_NE(a.find("\"value\":-3"), std::string::npos);
  // 100 lands in bucket (64, 128]: le=128.
  EXPECT_NE(a.find("\"le\":128"), std::string::npos);

  // The text table renders one row per instrument, sorted.
  std::string table = to_table(snap);
  EXPECT_NE(table.find("obs_test.json_counter{k=v}"), std::string::npos);

  // Snapshot keys are sorted, so diffs across runs are clean.
  for (std::size_t i = 1; i < snap.samples.size(); ++i) {
    EXPECT_LT(snap.samples[i - 1].key(), snap.samples[i].key());
  }
}

TEST(Metrics, MultiThreadedIncrementsAreExact) {
  auto& reg = MetricsRegistry::global();
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  Counter& c = reg.counter("obs_test.mt_counter");
  Histogram& h = reg.histogram("obs_test.mt_hist");
  Gauge& g = reg.gauge("obs_test.mt_gauge");
  c.reset();
  h.reset();
  g.reset();

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, &c, &h, &g, t] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        g.add(1);
        h.observe(static_cast<double>(i % 1000));
        // Concurrent registration of the same key must be safe too.
        reg.counter("obs_test.mt_shared", {{"t", t % 2 ? "odd" : "even"}}).inc();
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(g.value(), static_cast<std::int64_t>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.counter("obs_test.mt_shared", {{"t", "odd"}}).value() +
                reg.counter("obs_test.mt_shared", {{"t", "even"}}).value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Tracer, SpanParentageAndClear) {
  Tracer& tr = Tracer::global();
  tr.set_enabled(true);
  tr.clear();

  std::uint64_t root = tr.begin("push", 0, SimTime::millis(10));
  ASSERT_NE(root, 0u);
  std::uint64_t child = tr.begin("hop", root, SimTime::millis(12));
  tr.end(child, SimTime::millis(15));
  tr.end(root, SimTime::millis(20));

  auto spans = tr.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_TRUE(spans[0].finished);
  EXPECT_EQ(spans[1].end, SimTime::millis(15));

  std::string json = tr.to_json();
  EXPECT_NE(json.find("\"name\":\"hop\""), std::string::npos);
  EXPECT_NE(json.find("\"start_us\":12000"), std::string::npos);

  // end() on a stale id from before clear() must be a no-op.
  tr.clear();
  std::uint64_t fresh = tr.begin("fresh", 0, SimTime::zero());
  tr.end(root, SimTime::seconds(99));
  auto after = tr.spans();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].id, fresh);
  EXPECT_FALSE(after[0].finished);

  tr.set_enabled(false);
  EXPECT_EQ(tr.begin("disabled", 0, SimTime::zero()), 0u);
  tr.clear();
}

TEST(Tracer, DrainMovesBufferAndInvalidatesOldIds) {
  Tracer& tr = Tracer::global();
  tr.set_enabled(true);
  tr.clear();

  std::uint64_t a = tr.begin("a", 0, SimTime::millis(1), /*station=*/7);
  tr.end(a, SimTime::millis(2));
  std::uint64_t b = tr.begin("b", a, SimTime::millis(3));

  auto drained = tr.drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].station, 7u);
  EXPECT_TRUE(drained[0].finished);
  EXPECT_FALSE(drained[1].finished);
  EXPECT_EQ(tr.span_count(), 0u);

  // Ids from before the drain are stale: ending them must not touch the
  // fresh buffer.
  std::uint64_t c = tr.begin("c", 0, SimTime::millis(4));
  tr.end(b, SimTime::seconds(9));
  auto after = tr.spans();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].id, c);
  EXPECT_FALSE(after[0].finished);

  tr.set_enabled(false);
  tr.clear();
}

TEST(Tracer, AdoptAppendsFinishedRecordsAndIgnoresEnabledGate) {
  Tracer& tr = Tracer::global();
  tr.set_enabled(false);  // adopt must work anyway: promotion already decided
  tr.clear();

  std::vector<SpanRecord> batch(2);
  batch[0].id = Tracer::allocate_id();
  batch[0].trace_id = 77;
  batch[0].name = "root";
  batch[0].finished = true;
  batch[1].id = Tracer::allocate_id();
  batch[1].trace_id = 77;
  batch[1].parent = batch[0].id;
  batch[1].name = "child";
  batch[1].finished = true;
  EXPECT_EQ(tr.adopt(std::move(batch)), 2u);

  auto spans = tr.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].trace_id, 77u);
  EXPECT_EQ(spans[1].parent, spans[0].id);
  tr.clear();
}

TEST(Tracer, CapacityDropsAreCounted) {
  Tracer& tr = Tracer::global();
  tr.set_enabled(true);
  tr.clear();
  auto& dropped_counter = MetricsRegistry::global().counter("obs.trace.dropped");
  const std::uint64_t dropped_before = dropped_counter.value();

  std::vector<SpanRecord> flood(Tracer::kMaxSpans);
  for (auto& s : flood) s.id = Tracer::allocate_id();
  EXPECT_EQ(tr.adopt(std::move(flood)), Tracer::kMaxSpans);

  // The buffer is full: begin() refuses (returns 0) and counts the drop.
  EXPECT_EQ(tr.begin("overflow", 0, SimTime::zero()), 0u);
  EXPECT_EQ(tr.dropped(), 1u);
  std::vector<SpanRecord> more(3);
  for (auto& s : more) s.id = Tracer::allocate_id();
  EXPECT_EQ(tr.adopt(std::move(more)), 0u);
  EXPECT_EQ(tr.dropped(), 4u);
  EXPECT_EQ(dropped_counter.value(), dropped_before + 4);

  tr.set_enabled(false);
  tr.clear();
}

// Workers emit spans while a collector repeatedly drains: every span id must
// end up in exactly one drained batch (run under TSan via WDOC_SANITIZE).
TEST(Tracer, ConcurrentDrainLosesNoSpans) {
  Tracer& tr = Tracer::global();
  tr.set_enabled(true);
  tr.clear();

  constexpr int kWorkers = 4;
  constexpr int kSpansPerWorker = 2000;
  std::atomic<bool> done{false};
  std::vector<std::vector<SpanRecord>> batches;
  std::thread collector([&] {
    while (!done.load(std::memory_order_acquire)) {
      batches.push_back(tr.drain());
    }
    batches.push_back(tr.drain());
  });

  std::vector<std::thread> workers;
  std::array<std::vector<std::uint64_t>, kWorkers> emitted;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kSpansPerWorker; ++i) {
        std::uint64_t id = tr.begin("w", 0, SimTime::micros(i), w);
        if (id != 0) {
          tr.end(id, SimTime::micros(i + 1));
          emitted[w].push_back(id);
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  done.store(true, std::memory_order_release);
  collector.join();

  std::set<std::uint64_t> seen;
  std::size_t total = 0;
  for (const auto& b : batches) {
    for (const SpanRecord& s : b) {
      EXPECT_TRUE(seen.insert(s.id).second) << "span id drained twice";
      ++total;
    }
  }
  std::size_t expected = 0;
  for (const auto& e : emitted) {
    expected += e.size();
    for (std::uint64_t id : e) EXPECT_EQ(seen.count(id), 1u);
  }
  EXPECT_EQ(total, expected);
  tr.set_enabled(false);
  tr.clear();
}

TEST(Histogram, ExemplarRetainsMostRecentSampledTrace) {
  Histogram h;
  h.observe(3.0);                 // no exemplar
  EXPECT_EQ(h.exemplar(Histogram::bucket_of(3.0)), 0u);
  h.observe(3.0, 41);
  h.observe(3.0, 42);             // most recent wins
  h.observe(3.0);                 // unsampled observation must not clear it
  EXPECT_EQ(h.exemplar(Histogram::bucket_of(3.0)), 42u);
  h.reset();
  EXPECT_EQ(h.exemplar(Histogram::bucket_of(3.0)), 0u);
}

TEST(Snapshot, JsonCarriesExemplars) {
  auto& reg = MetricsRegistry::global();
  auto& h = reg.histogram("obs_test.exemplar_hist");
  h.reset();
  h.observe(100.0, 987654321);
  std::string json = to_json(reg.snapshot());
  EXPECT_NE(json.find("\"exemplar\":987654321"), std::string::npos);
}

// --- snapshot wire format / merging ------------------------------------------

MetricSample counter_sample(const std::string& name, const Labels& labels,
                            double v) {
  MetricSample s;
  s.name = name;
  s.labels = labels;
  s.kind = MetricSample::Kind::counter;
  s.value = v;
  return s;
}

TEST(Scrape, SnapshotRoundtripsThroughWireFormat) {
  auto& reg = MetricsRegistry::global();
  reg.counter("obs_test.wire_counter", {{"mode", "x"}}).inc(17);
  reg.gauge("obs_test.wire_gauge").set(-5);
  reg.histogram("obs_test.wire_hist").observe(100.0);
  Snapshot snap = reg.snapshot();

  auto decoded = decode_snapshot(encode_snapshot(snap));
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_EQ(decoded.value().samples.size(), snap.samples.size());
  // Everything the exporters consume survives the roundtrip byte-for-byte.
  EXPECT_EQ(to_json(decoded.value()), to_json(snap));
}

TEST(Scrape, DecodeRejectsTruncatedPayload) {
  Snapshot snap;
  snap.samples.push_back(counter_sample("c", {{"station", "1"}}, 2.0));
  Bytes wire = encode_snapshot(snap);
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(decode_snapshot(wire).is_ok());
}

TEST(Scrape, WithLabelTagsEverySample) {
  Snapshot snap;
  snap.samples.push_back(counter_sample("b", {}, 1.0));
  snap.samples.push_back(counter_sample("a", {{"k", "v"}}, 2.0));
  Snapshot tagged = with_label(snap, "station", "9");
  for (const MetricSample& s : tagged.samples) {
    EXPECT_EQ(s.labels.at("station"), "9");
  }
  // Samples stay sorted by key after tagging.
  for (std::size_t i = 1; i < tagged.samples.size(); ++i) {
    EXPECT_LT(tagged.samples[i - 1].key(), tagged.samples[i].key());
  }
}

TEST(Scrape, MergeAddsSameKeyAndPassesThroughDisjoint) {
  Snapshot a;
  a.samples.push_back(counter_sample("hits", {{"station", "1"}}, 3.0));
  a.samples.push_back(counter_sample("hits", {{"station", "2"}}, 5.0));
  Snapshot b;
  b.samples.push_back(counter_sample("hits", {{"station", "2"}}, 7.0));
  b.samples.push_back(counter_sample("hits", {{"station", "3"}}, 11.0));

  merge_snapshot(a, b);
  ASSERT_EQ(a.samples.size(), 3u);
  EXPECT_EQ(a.samples[0].value, 3.0);   // station 1: only in a
  EXPECT_EQ(a.samples[1].value, 12.0);  // station 2: 5 + 7
  EXPECT_EQ(a.samples[2].value, 11.0);  // station 3: only in b
  EXPECT_EQ(counter_total(a, "hits"), 26.0);

  // Histograms merge their counts, sums, and buckets by bound.
  Histogram h1, h2;
  h1.observe(3.0);
  h2.observe(3.0);
  h2.observe(1000.0);
  auto hist_sample = [](const Histogram& h) {
    MetricSample s;
    s.name = "lat";
    s.kind = MetricSample::Kind::histogram;
    s.hist_count = h.count();
    s.hist_sum = h.sum();
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h.bucket_count(i) > 0) {
        s.hist_buckets.emplace_back(Histogram::upper_bound(i), h.bucket_count(i));
      }
    }
    return s;
  };
  Snapshot ha, hb;
  ha.samples.push_back(hist_sample(h1));
  hb.samples.push_back(hist_sample(h2));
  merge_snapshot(ha, hb);
  ASSERT_EQ(ha.samples.size(), 1u);
  EXPECT_EQ(ha.samples[0].hist_count, 3u);
  EXPECT_DOUBLE_EQ(ha.samples[0].hist_sum, 1006.0);
  ASSERT_EQ(ha.samples[0].hist_buckets.size(), 2u);
  EXPECT_EQ(ha.samples[0].hist_buckets[0].second, 2u);  // bucket le=4: both
  EXPECT_EQ(ha.samples[0].hist_buckets[1].second, 1u);  // bucket le=1024: h2
}

// --- Chrome trace export -----------------------------------------------------

TEST(TraceExport, FinishedAndUnfinishedSpansRenderDistinctly) {
  std::vector<SpanRecord> spans;
  SpanRecord done;
  done.id = 41;
  done.station = 3;
  done.name = "push";
  done.start = SimTime::millis(10);
  done.end = SimTime::millis(25);
  done.finished = true;
  SpanRecord open;
  open.id = 42;
  open.parent = 41;
  open.station = 5;
  open.name = "hop";
  open.start = SimTime::millis(12);
  open.end = SimTime::millis(12);
  open.finished = false;
  spans.push_back(open);
  spans.push_back(done);

  std::string json = to_chrome_trace(spans);
  // Finished span: complete event with measured duration.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":15000"), std::string::npos);
  // Unfinished span: explicit instant flagged unfinished — never a
  // zero-duration "X".
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"finished\":false"), std::string::npos);
  EXPECT_EQ(json.find("\"dur\":0"), std::string::npos);
  // Ids are rebased to the batch: spans 41/42 export as 1/2.
  EXPECT_NE(json.find("\"span\":1,\"parent\":0"), std::string::npos);
  EXPECT_NE(json.find("\"span\":2,\"parent\":1"), std::string::npos);
  // Parent-child linkage renders as a bound flow arrow pair.
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  // One process per station, named.
  EXPECT_NE(json.find("\"name\":\"station 3\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"station 5\""), std::string::npos);
}

TEST(TraceExport, OutputIsIndependentOfPriorTracerHistory) {
  SpanRecord s;
  s.id = 100;
  s.station = 1;
  s.name = "op";
  s.start = SimTime::millis(1);
  s.end = SimTime::millis(2);
  s.finished = true;
  SpanRecord shifted = s;
  shifted.id = 90000;  // same structure, different absolute id
  EXPECT_EQ(to_chrome_trace({s}), to_chrome_trace({shifted}));
}

// --- flight recorder ---------------------------------------------------------

TEST(FlightRecorder, RecordsInGlobalSequenceOrder) {
  auto& fr = FlightRecorder::global();
  fr.clear();
  fr.record(FlightKind::deadlock, "txn 7 vs txn 9", /*station=*/0, /*actor=*/7);
  fr.record(FlightKind::replication, "docA 4/4", /*station=*/3, /*actor=*/0,
            SimTime::millis(12));
  fr.record(FlightKind::migration, "2 instances demoted", /*station=*/3);

  auto events = fr.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  EXPECT_EQ(events[0].kind, FlightKind::deadlock);
  EXPECT_EQ(events[0].actor, 7u);
  EXPECT_EQ(events[1].station, 3u);
  EXPECT_EQ(events[1].at, SimTime::millis(12));
  EXPECT_EQ(fr.recorded(), 3u);

  std::string dump = fr.dump();
  EXPECT_NE(dump.find("deadlock"), std::string::npos);
  EXPECT_NE(dump.find("docA 4/4"), std::string::npos);
  fr.clear();
  EXPECT_TRUE(fr.events().empty());
}

TEST(FlightRecorder, RingBoundsRetentionButCountsEverything) {
  auto& fr = FlightRecorder::global();
  fr.clear();
  const std::size_t total = FlightRecorder::kShards * FlightRecorder::kCapacity;
  for (std::size_t i = 0; i < total + 100; ++i) {
    fr.record(FlightKind::custom, "evt " + std::to_string(i));
  }
  EXPECT_EQ(fr.recorded(), total + 100);
  auto events = fr.events();
  EXPECT_EQ(events.size(), total);  // ring overwrote the oldest 100
  // The newest event is retained; the very first was overwritten.
  EXPECT_EQ(events.back().detail, "evt " + std::to_string(total + 99));
  EXPECT_NE(events.front().detail, "evt 0");
  fr.clear();
}

TEST(FlightRecorder, ConcurrentRecordingIsSafeAndComplete) {
  auto& fr = FlightRecorder::global();
  fr.clear();
  constexpr int kThreads = 8;
  constexpr int kEvents = 100;  // well under capacity: nothing overwritten
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&fr, t] {
      for (int i = 0; i < kEvents; ++i) {
        fr.record(FlightKind::lock_wait, "t" + std::to_string(t),
                  /*station=*/0, /*actor=*/static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& w : workers) w.join();
  auto events = fr.events();
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kThreads) * kEvents);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
  }
  fr.clear();
}

}  // namespace

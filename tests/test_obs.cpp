// wdoc_obs: registry addressing/label semantics, histogram bucket
// boundaries, snapshot/JSON export stability, tracer span trees, and
// multi-threaded increments (run under TSan via WDOC_SANITIZE=thread).
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace wdoc;
using namespace wdoc::obs;

namespace {

// Tests share the global registry with every other linked subsystem, so
// each uses test-local metric names.

TEST(MetricsRegistry, SameNameSameInstrument) {
  auto& reg = MetricsRegistry::global();
  Counter& a = reg.counter("obs_test.hits");
  Counter& b = reg.counter("obs_test.hits");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  b.inc(2);
  EXPECT_EQ(a.value(), 5u);
}

TEST(MetricsRegistry, LabelsAddressDistinctInstruments) {
  auto& reg = MetricsRegistry::global();
  Counter& read = reg.counter("obs_test.ops", {{"mode", "read"}});
  Counter& write = reg.counter("obs_test.ops", {{"mode", "write"}});
  EXPECT_NE(&read, &write);
  // Label order must not matter: std::map keys are sorted.
  Counter& ab = reg.counter("obs_test.multi", {{"a", "1"}, {"b", "2"}});
  Counter& ba = reg.counter("obs_test.multi", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&ab, &ba);
}

TEST(MetricsRegistry, ResetZeroesButKeepsIdentity) {
  auto& reg = MetricsRegistry::global();
  Counter& c = reg.counter("obs_test.reset_me");
  Gauge& g = reg.gauge("obs_test.reset_gauge");
  c.inc(7);
  g.set(-4);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(&c, &reg.counter("obs_test.reset_me"));  // reference survives
}

TEST(Histogram, BucketBoundaries) {
  // upper_bound(i) = 2^i; bucket 0 holds everything <= 1 (and negatives).
  EXPECT_EQ(Histogram::upper_bound(0), 1.0);
  EXPECT_EQ(Histogram::upper_bound(3), 8.0);
  EXPECT_TRUE(std::isinf(Histogram::upper_bound(Histogram::kBuckets - 1)));

  EXPECT_EQ(Histogram::bucket_of(-5.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1.0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1.5), 1u);
  EXPECT_EQ(Histogram::bucket_of(2.0), 1u);  // boundaries are inclusive
  EXPECT_EQ(Histogram::bucket_of(2.1), 2u);
  EXPECT_EQ(Histogram::bucket_of(1024.0), 10u);
  EXPECT_EQ(Histogram::bucket_of(1025.0), 11u);
  EXPECT_EQ(Histogram::bucket_of(1e300), Histogram::kBuckets - 1);
}

TEST(Histogram, ObserveAndQuantile) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.observe(3.0);    // bucket 2 (2 < v <= 4)
  for (int i = 0; i < 10; ++i) h.observe(1000.0);  // bucket 10
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 90 * 3.0 + 10 * 1000.0);
  EXPECT_EQ(h.bucket_count(2), 90u);
  EXPECT_EQ(h.bucket_count(10), 10u);
  EXPECT_EQ(h.quantile(0.50), 4.0);     // bucket 2's upper bound
  EXPECT_EQ(h.quantile(0.99), 1024.0);  // bucket 10's upper bound
}

TEST(Snapshot, JsonIsStableAndCompleteAcrossExports) {
  auto& reg = MetricsRegistry::global();
  reg.counter("obs_test.json_counter", {{"k", "v"}}).inc(42);
  reg.gauge("obs_test.json_gauge").set(-3);
  reg.histogram("obs_test.json_hist", {{"unit", "us"}}).observe(100.0);

  Snapshot snap = reg.snapshot();
  std::string a = to_json(snap);
  std::string b = to_json(reg.snapshot());
  EXPECT_EQ(a, b);  // same state -> byte-identical export

  EXPECT_NE(a.find("\"name\":\"obs_test.json_counter\""), std::string::npos);
  EXPECT_NE(a.find("\"k\":\"v\""), std::string::npos);
  EXPECT_NE(a.find("\"value\":42"), std::string::npos);
  EXPECT_NE(a.find("\"value\":-3"), std::string::npos);
  // 100 lands in bucket (64, 128]: le=128.
  EXPECT_NE(a.find("\"le\":128"), std::string::npos);

  // The text table renders one row per instrument, sorted.
  std::string table = to_table(snap);
  EXPECT_NE(table.find("obs_test.json_counter{k=v}"), std::string::npos);

  // Snapshot keys are sorted, so diffs across runs are clean.
  for (std::size_t i = 1; i < snap.samples.size(); ++i) {
    EXPECT_LT(snap.samples[i - 1].key(), snap.samples[i].key());
  }
}

TEST(Metrics, MultiThreadedIncrementsAreExact) {
  auto& reg = MetricsRegistry::global();
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  Counter& c = reg.counter("obs_test.mt_counter");
  Histogram& h = reg.histogram("obs_test.mt_hist");
  Gauge& g = reg.gauge("obs_test.mt_gauge");
  c.reset();
  h.reset();
  g.reset();

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg, &c, &h, &g, t] {
      for (int i = 0; i < kIters; ++i) {
        c.inc();
        g.add(1);
        h.observe(static_cast<double>(i % 1000));
        // Concurrent registration of the same key must be safe too.
        reg.counter("obs_test.mt_shared", {{"t", t % 2 ? "odd" : "even"}}).inc();
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(g.value(), static_cast<std::int64_t>(kThreads) * kIters);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(reg.counter("obs_test.mt_shared", {{"t", "odd"}}).value() +
                reg.counter("obs_test.mt_shared", {{"t", "even"}}).value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Tracer, SpanParentageAndClear) {
  Tracer& tr = Tracer::global();
  tr.set_enabled(true);
  tr.clear();

  std::uint64_t root = tr.begin("push", 0, SimTime::millis(10));
  ASSERT_NE(root, 0u);
  std::uint64_t child = tr.begin("hop", root, SimTime::millis(12));
  tr.end(child, SimTime::millis(15));
  tr.end(root, SimTime::millis(20));

  auto spans = tr.spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].parent, 0u);
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_TRUE(spans[0].finished);
  EXPECT_EQ(spans[1].end, SimTime::millis(15));

  std::string json = tr.to_json();
  EXPECT_NE(json.find("\"name\":\"hop\""), std::string::npos);
  EXPECT_NE(json.find("\"start_us\":12000"), std::string::npos);

  // end() on a stale id from before clear() must be a no-op.
  tr.clear();
  std::uint64_t fresh = tr.begin("fresh", 0, SimTime::zero());
  tr.end(root, SimTime::seconds(99));
  auto after = tr.spans();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].id, fresh);
  EXPECT_FALSE(after[0].finished);

  tr.set_enabled(false);
  EXPECT_EQ(tr.begin("disabled", 0, SimTime::zero()), 0u);
  tr.clear();
}

}  // namespace

// WAL + snapshot tests: record round-trips, replay semantics (committed vs
// uncommitted transactions), torn-tail tolerance, snapshot round-trips and
// durable Database reopen.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "storage/database.hpp"

namespace wdoc::storage {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("wdoc-test-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
  static inline int counter_ = 0;
};

Schema simple_schema() {
  return Schema("t",
                {Column{"k", ValueType::text, false, false, false},
                 Column{"v", ValueType::integer, true, false, false}},
                "k");
}

TEST(LogRecord, EncodeDecodeRoundTrip) {
  LogRecord rec;
  rec.kind = LogKind::update;
  rec.txn = 42;
  rec.table = "scripts";
  rec.row = RowId{7};
  rec.before = {Value("old"), Value(1)};
  rec.after = {Value("new"), Value(2)};
  auto decoded = LogRecord::decode(rec.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().kind, LogKind::update);
  EXPECT_EQ(decoded.value().txn, 42u);
  EXPECT_EQ(decoded.value().table, "scripts");
  EXPECT_EQ(decoded.value().row, RowId{7});
  EXPECT_EQ(decoded.value().before[0].as_text(), "old");
  EXPECT_EQ(decoded.value().after[1].as_int(), 2);
}

TEST(LogRecord, SchemaPayloadRoundTrip) {
  LogRecord rec;
  rec.kind = LogKind::create_table;
  rec.table = "t";
  rec.schema = simple_schema();
  auto decoded = LogRecord::decode(rec.encode());
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_TRUE(decoded.value().schema.has_value());
  EXPECT_EQ(decoded.value().schema->table_name(), "t");
  EXPECT_EQ(decoded.value().schema->primary_key(), "k");
}

TEST(Wal, AppendAndReadAll) {
  TempDir dir;
  std::string path = dir.str() + "/wal.log";
  {
    Wal wal;
    ASSERT_TRUE(wal.open(path).is_ok());
    for (int i = 0; i < 10; ++i) {
      LogRecord rec;
      rec.kind = LogKind::insert;
      rec.table = "t";
      rec.row = RowId{static_cast<std::uint64_t>(i + 1)};
      rec.after = {Value("k" + std::to_string(i)), Value(i)};
      ASSERT_TRUE(wal.append(rec).is_ok());
    }
    ASSERT_TRUE(wal.sync().is_ok());
  }
  auto records = Wal::read_all(path);
  ASSERT_TRUE(records.is_ok());
  ASSERT_EQ(records.value().size(), 10u);
  EXPECT_EQ(records.value()[3].after[0].as_text(), "k3");
}

TEST(Wal, MissingFileIsEmptyLog) {
  auto records = Wal::read_all("/nonexistent/wal.log");
  ASSERT_TRUE(records.is_ok());
  EXPECT_TRUE(records.value().empty());
}

TEST(Wal, TornTailIsIgnored) {
  TempDir dir;
  std::string path = dir.str() + "/wal.log";
  {
    Wal wal;
    ASSERT_TRUE(wal.open(path).is_ok());
    LogRecord rec;
    rec.kind = LogKind::insert;
    rec.table = "t";
    rec.row = RowId{1};
    rec.after = {Value("x"), Value(1)};
    ASSERT_TRUE(wal.append(rec).is_ok());
    ASSERT_TRUE(wal.sync().is_ok());
  }
  // Simulate a torn write: append garbage half-frame.
  std::FILE* f = std::fopen(path.c_str(), "ab");
  const char garbage[] = {0x20, 0x00, 0x00, 0x00, 0x11, 0x22};
  std::fwrite(garbage, 1, sizeof garbage, f);
  std::fclose(f);

  auto records = Wal::read_all(path);
  ASSERT_TRUE(records.is_ok());
  EXPECT_EQ(records.value().size(), 1u);
}

TEST(Wal, CorruptChecksumStopsScan) {
  TempDir dir;
  std::string path = dir.str() + "/wal.log";
  {
    Wal wal;
    ASSERT_TRUE(wal.open(path).is_ok());
    for (int i = 0; i < 3; ++i) {
      LogRecord rec;
      rec.kind = LogKind::begin;
      rec.txn = static_cast<std::uint64_t>(i + 1);
      ASSERT_TRUE(wal.append(rec).is_ok());
    }
    ASSERT_TRUE(wal.sync().is_ok());
  }
  // Flip a byte in the middle of the file.
  auto size = fs::file_size(path);
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  std::fseek(f, static_cast<long>(size / 2), SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, -1, SEEK_CUR);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);

  auto records = Wal::read_all(path);
  ASSERT_TRUE(records.is_ok());
  EXPECT_LT(records.value().size(), 3u);
}

TEST(Wal, ReplayAppliesOnlyCommittedTxns) {
  Catalog replayed;
  std::vector<LogRecord> log;
  {
    LogRecord rec;
    rec.kind = LogKind::create_table;
    rec.table = "t";
    rec.schema = simple_schema();
    log.push_back(rec);
  }
  auto dml = [&](LogKind kind, std::uint64_t txn, std::uint64_t row,
                 std::vector<Value> after) {
    LogRecord rec;
    rec.kind = kind;
    rec.txn = txn;
    rec.table = "t";
    rec.row = RowId{row};
    rec.after = std::move(after);
    log.push_back(rec);
  };
  // Autocommit insert (txn 0) always applies.
  dml(LogKind::insert, 0, 1, {Value("auto"), Value(1)});
  // Txn 5 commits.
  dml(LogKind::insert, 5, 2, {Value("committed"), Value(2)});
  {
    LogRecord rec;
    rec.kind = LogKind::commit;
    rec.txn = 5;
    log.push_back(rec);
  }
  // Txn 6 never commits.
  dml(LogKind::insert, 6, 3, {Value("lost"), Value(3)});

  ASSERT_TRUE(Wal::replay(log, replayed).is_ok());
  const Table* t = replayed.table("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->row_count(), 2u);
  EXPECT_TRUE(t->find_unique("k", Value("auto")).has_value());
  EXPECT_TRUE(t->find_unique("k", Value("committed")).has_value());
  EXPECT_FALSE(t->find_unique("k", Value("lost")).has_value());
}

TEST(Snapshot, RoundTripPreservesRowsAndIds) {
  TempDir dir;
  std::string path = dir.str() + "/snap.db";
  Catalog original;
  ASSERT_TRUE(original.create_table(simple_schema()).is_ok());
  std::vector<RowId> ids;
  for (int i = 0; i < 25; ++i) {
    ids.push_back(
        original.insert("t", {Value("k" + std::to_string(i)), Value(i)}).value());
  }
  // Punch holes so row ids are non-contiguous.
  ASSERT_TRUE(original.erase("t", ids[5]).is_ok());
  ASSERT_TRUE(original.erase("t", ids[6]).is_ok());
  ASSERT_TRUE(save_snapshot(original, path).is_ok());

  Catalog loaded;
  ASSERT_TRUE(load_snapshot(path, loaded).is_ok());
  const Table* t = loaded.table("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->row_count(), 23u);
  EXPECT_EQ(t->get(ids[5]), nullptr);
  EXPECT_EQ(t->get(ids[7])->at(0).as_text(), "k7");
  // Fresh inserts don't reuse snapshot row ids.
  RowId fresh = loaded.insert("t", {Value("new"), Value(99)}).value();
  EXPECT_GT(fresh, ids.back());
}

TEST(Snapshot, OrdersParentTablesFirst) {
  TempDir dir;
  std::string path = dir.str() + "/snap.db";
  Catalog original;
  // "a_child" sorts before "z_parent" alphabetically; the snapshot must
  // still create z_parent first.
  Schema parent("z_parent", {Column{"name", ValueType::text, false, false, false}},
                "name");
  Schema child("a_child",
               {Column{"id", ValueType::integer, false, true, false},
                Column{"p", ValueType::text, true, false, false}},
               "", {ForeignKey{"p", "z_parent", "name", RefAction::restrict}});
  ASSERT_TRUE(original.create_table(parent).is_ok());
  ASSERT_TRUE(original.create_table(child).is_ok());
  ASSERT_TRUE(original.insert("z_parent", {Value("p1")}).is_ok());
  ASSERT_TRUE(original.insert("a_child", {Value(1), Value("p1")}).is_ok());
  ASSERT_TRUE(save_snapshot(original, path).is_ok());
  Catalog loaded;
  ASSERT_TRUE(load_snapshot(path, loaded).is_ok());
  EXPECT_EQ(loaded.table("a_child")->row_count(), 1u);
}

TEST(Snapshot, DetectsCorruption) {
  TempDir dir;
  std::string path = dir.str() + "/snap.db";
  Catalog original;
  ASSERT_TRUE(original.create_table(simple_schema()).is_ok());
  ASSERT_TRUE(original.insert("t", {Value("x"), Value(1)}).is_ok());
  ASSERT_TRUE(save_snapshot(original, path).is_ok());
  // Corrupt one byte past the checksum header.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  std::fseek(f, 20, SEEK_SET);
  int c = std::fgetc(f);
  std::fseek(f, -1, SEEK_CUR);
  std::fputc(c ^ 0x01, f);
  std::fclose(f);
  Catalog loaded;
  EXPECT_EQ(load_snapshot(path, loaded).code(), Errc::corrupt);
}

TEST(Database, DurableReopenReplaysWal) {
  TempDir dir;
  {
    auto db = Database::open(dir.str());
    ASSERT_TRUE(db.is_ok());
    ASSERT_TRUE(db.value()->create_table(simple_schema()).is_ok());
    ASSERT_TRUE(db.value()->insert("t", {Value("persisted"), Value(1)}).is_ok());
    ASSERT_TRUE(db.value()->flush().is_ok());
  }
  auto reopened = Database::open(dir.str());
  ASSERT_TRUE(reopened.is_ok());
  const Table* t = reopened.value()->catalog().table("t");
  ASSERT_NE(t, nullptr);
  EXPECT_TRUE(t->find_unique("k", Value("persisted")).has_value());
}

TEST(Database, CheckpointCollapsesWalIntoSnapshot) {
  TempDir dir;
  {
    auto db = Database::open(dir.str());
    ASSERT_TRUE(db.is_ok());
    ASSERT_TRUE(db.value()->create_table(simple_schema()).is_ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          db.value()->insert("t", {Value("k" + std::to_string(i)), Value(i)}).is_ok());
    }
    ASSERT_TRUE(db.value()->checkpoint().is_ok());
    // Post-checkpoint mutation lands in the fresh WAL.
    ASSERT_TRUE(db.value()->insert("t", {Value("tail"), Value(99)}).is_ok());
    ASSERT_TRUE(db.value()->flush().is_ok());
  }
  // WAL now only holds the tail record.
  auto records = Wal::read_all(dir.str() + "/wal.log");
  ASSERT_TRUE(records.is_ok());
  EXPECT_EQ(records.value().size(), 1u);

  auto reopened = Database::open(dir.str());
  ASSERT_TRUE(reopened.is_ok());
  EXPECT_EQ(reopened.value()->catalog().table("t")->row_count(), 11u);
}

TEST(Database, EraseAndUpdateSurviveReopen) {
  TempDir dir;
  RowId victim;
  {
    auto db = Database::open(dir.str());
    ASSERT_TRUE(db.is_ok());
    ASSERT_TRUE(db.value()->create_table(simple_schema()).is_ok());
    victim = db.value()->insert("t", {Value("victim"), Value(1)}).value();
    RowId keeper = db.value()->insert("t", {Value("keeper"), Value(2)}).value();
    ASSERT_TRUE(db.value()->erase("t", victim).is_ok());
    ASSERT_TRUE(db.value()->update_column("t", keeper, "v", Value(42)).is_ok());
    ASSERT_TRUE(db.value()->flush().is_ok());
  }
  auto reopened = Database::open(dir.str());
  ASSERT_TRUE(reopened.is_ok());
  const Table* t = reopened.value()->catalog().table("t");
  EXPECT_EQ(t->row_count(), 1u);
  auto keeper = t->find_unique("k", Value("keeper"));
  ASSERT_TRUE(keeper.has_value());
  EXPECT_EQ(t->get(*keeper)->at(1).as_int(), 42);
}

TEST(Database, AutoCheckpointCollapsesWal) {
  TempDir dir;
  auto db = Database::open(dir.str());
  ASSERT_TRUE(db.is_ok());
  ASSERT_TRUE(db.value()->create_table(simple_schema()).is_ok());
  db.value()->set_auto_checkpoint(2048);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        db.value()->insert("t", {Value("k" + std::to_string(i)), Value(i)}).is_ok());
  }
  // The WAL must have been collapsed at least once: far fewer records than
  // inserts remain, and the snapshot exists.
  auto records = Wal::read_all(dir.str() + "/wal.log");
  ASSERT_TRUE(records.is_ok());
  EXPECT_LT(records.value().size(), 200u);
  EXPECT_TRUE(fs::exists(dir.str() + "/snapshot.db"));
  // Reopen sees everything.
  db.value().reset();
  auto reopened = Database::open(dir.str());
  ASSERT_TRUE(reopened.is_ok());
  EXPECT_EQ(reopened.value()->catalog().table("t")->row_count(), 200u);
}

TEST(Database, InMemoryHasNoFiles) {
  auto db = Database::in_memory();
  ASSERT_TRUE(db->create_table(simple_schema()).is_ok());
  ASSERT_TRUE(db->insert("t", {Value("x"), Value(1)}).is_ok());
  EXPECT_FALSE(db->durable());
  EXPECT_TRUE(db->checkpoint().is_ok());  // no-op
}

}  // namespace
}  // namespace wdoc::storage

// Hierarchical lock tests: the paper's compatibility table (container read
// locks leave components readable, parents fully accessible), upgrades,
// writer arbitration, plus a parameterized sweep over every (relation,
// held, requested) combination.
#include <gtest/gtest.h>

#include "locking/hierarchy_lock.hpp"

namespace wdoc::locking {
namespace {

constexpr UserId kShih{1};
constexpr UserId kMa{2};
constexpr UserId kHuang{3};

// Fixture hierarchy:
//   script(1)
//     impl(2)
//       html(3), prog(4)
//     impl2(5)
class LockFixture : public ::testing::Test {
 protected:
  LockFixture() {
    mgr_.add_node(script_, std::nullopt).expect("script");
    mgr_.add_node(impl_, script_).expect("impl");
    mgr_.add_node(html_, impl_).expect("html");
    mgr_.add_node(prog_, impl_).expect("prog");
    mgr_.add_node(impl2_, script_).expect("impl2");
  }
  HierarchyLockManager mgr_;
  LockResourceId script_{1}, impl_{2}, html_{3}, prog_{4}, impl2_{5};
};

TEST_F(LockFixture, HierarchyQueries) {
  EXPECT_EQ(mgr_.parent_of(html_), impl_);
  EXPECT_EQ(mgr_.parent_of(script_), std::nullopt);
  EXPECT_TRUE(mgr_.is_ancestor(script_, html_));
  EXPECT_TRUE(mgr_.is_ancestor(impl_, html_));
  EXPECT_FALSE(mgr_.is_ancestor(html_, script_));
  EXPECT_FALSE(mgr_.is_ancestor(impl2_, html_));
}

TEST_F(LockFixture, ReadLockedContainerComponentsReadableNotWritable) {
  // The paper's rule, verbatim: container read-locked by one user =>
  // components (and the container) readable by others, not writable.
  ASSERT_TRUE(mgr_.lock(kShih, impl_, Access::read).is_ok());
  EXPECT_TRUE(mgr_.can_lock(kMa, impl_, Access::read));
  EXPECT_TRUE(mgr_.can_lock(kMa, html_, Access::read));
  EXPECT_FALSE(mgr_.can_lock(kMa, impl_, Access::write));
  EXPECT_FALSE(mgr_.can_lock(kMa, html_, Access::write));
  EXPECT_EQ(mgr_.lock(kMa, html_, Access::write).code(), Errc::lock_conflict);
}

TEST_F(LockFixture, ParentsOfLockedContainerFullyAccessible) {
  // "the parent objects of the container can have both read and write
  // access by another user."
  ASSERT_TRUE(mgr_.lock(kShih, impl_, Access::read).is_ok());
  EXPECT_TRUE(mgr_.can_lock(kMa, script_, Access::read));
  EXPECT_TRUE(mgr_.can_lock(kMa, script_, Access::write));
  ASSERT_TRUE(mgr_.lock(kMa, script_, Access::write).is_ok());
}

TEST_F(LockFixture, WriteLockExcludesSubtreeEntirely) {
  ASSERT_TRUE(mgr_.lock(kShih, impl_, Access::write).is_ok());
  EXPECT_FALSE(mgr_.can_lock(kMa, impl_, Access::read));
  EXPECT_FALSE(mgr_.can_lock(kMa, html_, Access::read));
  EXPECT_FALSE(mgr_.can_lock(kMa, prog_, Access::write));
  // Sibling subtree and parent remain free.
  EXPECT_TRUE(mgr_.can_lock(kMa, impl2_, Access::write));
  EXPECT_TRUE(mgr_.can_lock(kMa, script_, Access::write));
}

TEST_F(LockFixture, DisjointSubtreesIndependent) {
  ASSERT_TRUE(mgr_.lock(kShih, impl_, Access::write).is_ok());
  ASSERT_TRUE(mgr_.lock(kMa, impl2_, Access::write).is_ok());
  EXPECT_EQ(mgr_.lock_count(), 2u);
}

TEST_F(LockFixture, OwnLocksNeverSelfConflict) {
  ASSERT_TRUE(mgr_.lock(kShih, impl_, Access::write).is_ok());
  EXPECT_TRUE(mgr_.can_lock(kShih, html_, Access::write));
  ASSERT_TRUE(mgr_.lock(kShih, html_, Access::write).is_ok());
}

TEST_F(LockFixture, ReentrantLockAndUpgrade) {
  ASSERT_TRUE(mgr_.lock(kShih, impl_, Access::read).is_ok());
  ASSERT_TRUE(mgr_.lock(kShih, impl_, Access::read).is_ok());  // re-entrant
  // Upgrade succeeds while no other user constrains the node.
  ASSERT_TRUE(mgr_.lock(kShih, impl_, Access::write).is_ok());
  auto locks = mgr_.locks_of(kShih);
  ASSERT_EQ(locks.size(), 1u);
  EXPECT_EQ(locks[0].mode, Access::write);
}

TEST_F(LockFixture, UpgradeBlockedByOtherReader) {
  ASSERT_TRUE(mgr_.lock(kShih, impl_, Access::read).is_ok());
  ASSERT_TRUE(mgr_.lock(kMa, impl_, Access::read).is_ok());
  EXPECT_EQ(mgr_.lock(kShih, impl_, Access::write).code(), Errc::lock_conflict);
  // Shih still holds the read lock.
  ASSERT_EQ(mgr_.locks_of(kShih).size(), 1u);
  EXPECT_EQ(mgr_.locks_of(kShih)[0].mode, Access::read);
}

TEST_F(LockFixture, AncestorReadLockCoversDescendantRequest) {
  ASSERT_TRUE(mgr_.lock(kShih, script_, Access::read).is_ok());
  // html is a component of the read-locked script container.
  EXPECT_TRUE(mgr_.can_lock(kMa, html_, Access::read));
  EXPECT_FALSE(mgr_.can_lock(kMa, html_, Access::write));
}

TEST_F(LockFixture, UnlockRestoresAccess) {
  ASSERT_TRUE(mgr_.lock(kShih, impl_, Access::write).is_ok());
  EXPECT_FALSE(mgr_.can_lock(kMa, html_, Access::read));
  ASSERT_TRUE(mgr_.unlock(kShih, impl_).is_ok());
  EXPECT_TRUE(mgr_.can_lock(kMa, html_, Access::write));
  EXPECT_EQ(mgr_.unlock(kShih, impl_).code(), Errc::not_found);
}

TEST_F(LockFixture, UnlockAllReleasesEverything) {
  ASSERT_TRUE(mgr_.lock(kShih, impl_, Access::read).is_ok());
  ASSERT_TRUE(mgr_.lock(kShih, impl2_, Access::write).is_ok());
  mgr_.unlock_all(kShih);
  EXPECT_EQ(mgr_.lock_count(), 0u);
  EXPECT_TRUE(mgr_.can_lock(kMa, impl_, Access::write));
}

TEST_F(LockFixture, WriterOfIdentifiesChangingInstructor) {
  EXPECT_EQ(mgr_.writer_of(html_), std::nullopt);
  ASSERT_TRUE(mgr_.lock(kMa, impl_, Access::write).is_ok());
  // A write lock on the container covers the component.
  EXPECT_EQ(mgr_.writer_of(html_), kMa);
  EXPECT_EQ(mgr_.writer_of(impl_), kMa);
  EXPECT_EQ(mgr_.writer_of(impl2_), std::nullopt);
}

TEST_F(LockFixture, LocksOnReportsHolders) {
  ASSERT_TRUE(mgr_.lock(kShih, impl_, Access::read).is_ok());
  ASSERT_TRUE(mgr_.lock(kMa, impl_, Access::read).is_ok());
  auto holders = mgr_.locks_on(impl_);
  EXPECT_EQ(holders.size(), 2u);
}

TEST_F(LockFixture, NodeLifecycleGuards) {
  EXPECT_EQ(mgr_.add_node(script_, std::nullopt).code(), Errc::already_exists);
  EXPECT_EQ(mgr_.add_node(LockResourceId{99}, LockResourceId{100}).code(),
            Errc::not_found);
  EXPECT_EQ(mgr_.remove_node(impl_).code(), Errc::conflict);  // has children
  ASSERT_TRUE(mgr_.lock(kShih, html_, Access::read).is_ok());
  EXPECT_EQ(mgr_.remove_node(html_).code(), Errc::conflict);  // locked
  ASSERT_TRUE(mgr_.unlock(kShih, html_).is_ok());
  EXPECT_TRUE(mgr_.remove_node(html_).is_ok());
  EXPECT_FALSE(mgr_.has_node(html_));
}

TEST_F(LockFixture, ThreeInstructorsCollaborate) {
  // Shih edits impl, Ma edits impl2, Huang reads the whole script.
  ASSERT_TRUE(mgr_.lock(kShih, impl_, Access::write).is_ok());
  ASSERT_TRUE(mgr_.lock(kMa, impl2_, Access::write).is_ok());
  // Huang cannot read the script container (its components are being
  // written), but can read nothing-locked leaves of other documents.
  EXPECT_TRUE(mgr_.can_lock(kHuang, script_, Access::read));  // parents stay free
  ASSERT_TRUE(mgr_.lock(kHuang, script_, Access::read).is_ok());
  // With the script read-locked, new writers inside are refused...
  EXPECT_FALSE(mgr_.can_lock(kMa, html_, Access::write));
  // ...but existing write locks persist and re-lock fine (own locks).
  EXPECT_TRUE(mgr_.can_lock(kShih, impl_, Access::write));
}

// --- exhaustive compatibility-table sweep ------------------------------------

struct CompatCase {
  Relation rel;
  Access held;
  Access requested;
  bool expect_granted;
};

class CompatTable : public ::testing::TestWithParam<CompatCase> {};

TEST_P(CompatTable, PaperTable) {
  const CompatCase& c = GetParam();
  EXPECT_EQ(paper_compatible(c.rel, c.held, c.requested), c.expect_granted);
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, CompatTable,
    ::testing::Values(
        // self: R held -> R ok, W no; W held -> nothing.
        CompatCase{Relation::self, Access::read, Access::read, true},
        CompatCase{Relation::self, Access::read, Access::write, false},
        CompatCase{Relation::self, Access::write, Access::read, false},
        CompatCase{Relation::self, Access::write, Access::write, false},
        // component: same as self.
        CompatCase{Relation::component, Access::read, Access::read, true},
        CompatCase{Relation::component, Access::read, Access::write, false},
        CompatCase{Relation::component, Access::write, Access::read, false},
        CompatCase{Relation::component, Access::write, Access::write, false},
        // parent: everything allowed.
        CompatCase{Relation::parent, Access::read, Access::read, true},
        CompatCase{Relation::parent, Access::read, Access::write, true},
        CompatCase{Relation::parent, Access::write, Access::read, true},
        CompatCase{Relation::parent, Access::write, Access::write, true},
        // disjoint: everything allowed.
        CompatCase{Relation::disjoint, Access::read, Access::read, true},
        CompatCase{Relation::disjoint, Access::read, Access::write, true},
        CompatCase{Relation::disjoint, Access::write, Access::read, true},
        CompatCase{Relation::disjoint, Access::write, Access::write, true}),
    [](const ::testing::TestParamInfo<CompatCase>& info) {
      const CompatCase& c = info.param;
      auto rel = [&] {
        switch (c.rel) {
          case Relation::self: return "self";
          case Relation::component: return "component";
          case Relation::parent: return "parent";
          case Relation::disjoint: return "disjoint";
        }
        return "?";
      }();
      return std::string(rel) + "_" + access_name(c.held) + "_then_" +
             access_name(c.requested);
    });

// The manager's behaviour must agree with the table cell-by-cell on a
// concrete two-level hierarchy.
class CompatManagerAgreement : public ::testing::TestWithParam<CompatCase> {};

TEST_P(CompatManagerAgreement, ManagerMatchesTable) {
  const CompatCase& c = GetParam();
  HierarchyLockManager mgr;
  LockResourceId parent{1}, container{2}, component{3}, stranger{4};
  mgr.add_node(parent, std::nullopt).expect("parent");
  mgr.add_node(container, parent).expect("container");
  mgr.add_node(component, container).expect("component");
  mgr.add_node(stranger, std::nullopt).expect("stranger");

  ASSERT_TRUE(mgr.lock(kShih, container, c.held).is_ok());
  LockResourceId target = [&] {
    switch (c.rel) {
      case Relation::self: return container;
      case Relation::component: return component;
      case Relation::parent: return parent;
      case Relation::disjoint: return stranger;
    }
    return stranger;
  }();
  EXPECT_EQ(mgr.can_lock(kMa, target, c.requested), c.expect_granted);
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, CompatManagerAgreement,
    ::testing::Values(
        CompatCase{Relation::self, Access::read, Access::read, true},
        CompatCase{Relation::self, Access::read, Access::write, false},
        CompatCase{Relation::self, Access::write, Access::read, false},
        CompatCase{Relation::self, Access::write, Access::write, false},
        CompatCase{Relation::component, Access::read, Access::read, true},
        CompatCase{Relation::component, Access::read, Access::write, false},
        CompatCase{Relation::component, Access::write, Access::read, false},
        CompatCase{Relation::component, Access::write, Access::write, false},
        CompatCase{Relation::parent, Access::read, Access::read, true},
        CompatCase{Relation::parent, Access::read, Access::write, true},
        CompatCase{Relation::parent, Access::write, Access::read, true},
        CompatCase{Relation::parent, Access::write, Access::write, true},
        CompatCase{Relation::disjoint, Access::read, Access::read, true},
        CompatCase{Relation::disjoint, Access::read, Access::write, true},
        CompatCase{Relation::disjoint, Access::write, Access::read, true},
        CompatCase{Relation::disjoint, Access::write, Access::write, true}),
    [](const ::testing::TestParamInfo<CompatCase>& info) {
      return "case" + std::to_string(info.index);
    });

}  // namespace
}  // namespace wdoc::locking

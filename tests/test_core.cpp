// End-to-end tests of the WebDocDb facade and the instructor/student
// sessions: authoring, annotation, QA, integrity alerts, collaborative
// editing with the paper's lock table, library flows, and a two-station
// distributed lecture over the simulator.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/sessions.hpp"
#include "net/sim_network.hpp"
#include "workload/patterns.hpp"

namespace wdoc::core {
namespace {

CourseSpec demo_course(const std::string& num, std::int64_t now = 1000) {
  CourseSpec spec;
  spec.script_name = "script-" + num;
  spec.course_number = num;
  spec.title = "Introduction to Multimedia Computing";
  spec.keywords = "multimedia, video, computing";
  spec.description = "A virtual course on multimedia systems.";
  spec.starting_url = "http://mmu.edu/" + num + "/index.html";
  spec.html_pages = {
      {"http://mmu.edu/" + num + "/index.html/p0", "<html>intro</html>"},
      {"http://mmu.edu/" + num + "/index.html/p1", "<html>chapter 1</html>"},
  };
  CourseSpec::ResourceSpec video;
  video.digest = digest128(num + " lecture video");
  video.size = 8 << 20;
  video.type = blob::MediaType::video;
  video.playout_ms = 0;
  spec.resources.push_back(video);
  spec.now = now;
  return spec;
}

class CoreFixture : public ::testing::Test {
 protected:
  CoreFixture() {
    auto created = WebDocDb::create();
    WDOC_CHECK(created.is_ok(), "create WebDocDb");
    db_ = std::move(created).value();
    instructor_ = std::make_unique<InstructorSession>(*db_, UserId{1}, "shih");
    student_ = std::make_unique<StudentSession>(*db_, UserId{100}, "alice");
  }
  std::unique_ptr<WebDocDb> db_;
  std::unique_ptr<InstructorSession> instructor_;
  std::unique_ptr<StudentSession> student_;
};

TEST_F(CoreFixture, AuthorCourseCreatesEverything) {
  ASSERT_TRUE(instructor_->author_course(demo_course("CS102")).is_ok());
  // Repository rows.
  EXPECT_TRUE(db_->repository().get_script("script-CS102").is_ok());
  EXPECT_TRUE(db_->repository().get_implementation("http://mmu.edu/CS102/index.html")
                  .is_ok());
  EXPECT_EQ(db_->repository()
                .html_files_of("http://mmu.edu/CS102/index.html")
                .value()
                .size(),
            2u);
  // SCM item + lock tree + library entry.
  EXPECT_TRUE(db_->scm().has_item("script:script-CS102"));
  EXPECT_TRUE(db_->lock_node_of("script:script-CS102").has_value());
  EXPECT_TRUE(db_->library().get("CS102").is_ok());
  // BLOB layer holds the video.
  EXPECT_EQ(db_->blobs().stored_bytes(), 8u << 20);
}

TEST_F(CoreFixture, ManifestBridgesRepositoryToDistribution) {
  ASSERT_TRUE(instructor_->author_course(demo_course("CS102")).is_ok());
  auto manifest = db_->manifest_for("http://mmu.edu/CS102/index.html");
  ASSERT_TRUE(manifest.is_ok());
  EXPECT_EQ(manifest.value().doc_key, "http://mmu.edu/CS102/index.html");
  EXPECT_GT(manifest.value().structure_bytes, 0u);
  ASSERT_EQ(manifest.value().blobs.size(), 1u);
  EXPECT_EQ(manifest.value().blobs[0].size, 8u << 20);
  EXPECT_EQ(manifest.value().blobs[0].playout_ms, 0);
  EXPECT_EQ(db_->manifest_for("http://ghost/").code(), Errc::not_found);
}

TEST_F(CoreFixture, AnnotationAndQaFlows) {
  ASSERT_TRUE(instructor_->author_course(demo_course("CS102")).is_ok());
  const std::string url = "http://mmu.edu/CS102/index.html";

  auto doc = workload::random_annotation(10, 5);
  ASSERT_TRUE(instructor_->annotate(url, doc, "shih-notes-1", 2000).is_ok());
  EXPECT_EQ(db_->repository().get_annotation_doc("shih-notes-1").value(), doc);

  auto log = workload::random_traversal(url, 2, 20, 5);
  ASSERT_TRUE(
      instructor_->record_test(url, log, "qa-run-1", 3000, "missing image on p1")
          .is_ok());
  EXPECT_TRUE(db_->repository().get_test_record("qa-run-1").is_ok());
  EXPECT_EQ(db_->repository().bug_reports_of("qa-run-1").value().size(), 1u);
}

TEST_F(CoreFixture, UpdateAlertsFollowTheDiagram) {
  ASSERT_TRUE(instructor_->author_course(demo_course("CS102")).is_ok());
  auto alerts = instructor_->alerts_for_script("script-CS102");
  ASSERT_TRUE(alerts.is_ok());
  // script -> implementation -> {2 html, 1 resource}.
  EXPECT_GE(alerts.value().size(), 4u);
  EXPECT_EQ(alerts.value()[0].target.kind, integrity::SciKind::implementation);
  // Unknown SCI is reported.
  EXPECT_EQ(db_->update_alerts({integrity::SciKind::script, "ghost"}).code(),
            Errc::not_found);
}

TEST_F(CoreFixture, EditCycleLocksAndVersions) {
  ASSERT_TRUE(instructor_->author_course(demo_course("CS102")).is_ok());
  ASSERT_TRUE(instructor_->begin_edit("script-CS102", 2000).is_ok());

  // A second instructor cannot start a concurrent edit (write lock + SCM).
  InstructorSession rival(*db_, UserId{2}, "ma");
  EXPECT_EQ(rival.begin_edit("script-CS102", 2100).code(), Errc::lock_conflict);

  Bytes v2 = Bytes{'n', 'e', 'w'};
  ASSERT_TRUE(instructor_->finish_edit("script-CS102", v2, "revise intro", 2200)
                  .is_ok());
  EXPECT_EQ(db_->scm().head("script:script-CS102").value().number, 2u);
  // Lock released: rival can edit now.
  EXPECT_TRUE(rival.begin_edit("script-CS102", 2300).is_ok());
  rival.abandon_edit("script-CS102");
  EXPECT_EQ(db_->scm().write_holder("script:script-CS102"), std::nullopt);
}

TEST_F(CoreFixture, LibrarySearchAndAssessment) {
  ASSERT_TRUE(instructor_->author_course(demo_course("CS102")).is_ok());
  ASSERT_TRUE(instructor_->author_course([&] {
                auto c = demo_course("CS103");
                c.title = "Introduction to Engineering Drawing";
                c.keywords = "drawing, engineering";
                return c;
              }())
                  .is_ok());

  auto hits = student_->search("multimedia");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].course_number, "CS102");
  EXPECT_EQ(student_->courses_by_instructor("shih").size(), 2u);

  ASSERT_TRUE(student_->check_out("CS102", 5000).is_ok());
  ASSERT_TRUE(student_->check_in("CS102", 9000).is_ok());
  ASSERT_TRUE(student_->check_out("CS103", 9500).is_ok());
  auto report = student_->assessment();
  EXPECT_EQ(report.total_checkouts, 2u);
  EXPECT_EQ(report.distinct_courses, 2u);
  EXPECT_EQ(report.still_out, 1u);
  EXPECT_EQ(report.total_borrow_micros, 4000);
}

TEST_F(CoreFixture, RegisterLockTreeTwiceRejected) {
  ASSERT_TRUE(instructor_->author_course(demo_course("CS102")).is_ok());
  EXPECT_EQ(db_->register_lock_tree("script-CS102").code(), Errc::already_exists);
  EXPECT_EQ(db_->register_lock_tree("ghost").code(), Errc::not_found);
}

TEST_F(CoreFixture, BroadcastRequiresAttachment) {
  ASSERT_TRUE(instructor_->author_course(demo_course("CS102")).is_ok());
  EXPECT_EQ(instructor_->broadcast_lecture("http://mmu.edu/CS102/index.html").code(),
            Errc::unavailable);
}

TEST_F(CoreFixture, AuthorCourseRejectsDuplicates) {
  ASSERT_TRUE(instructor_->author_course(demo_course("CS102")).is_ok());
  // Same script name again: the repository refuses, nothing half-created
  // downstream is reachable under a second library entry.
  EXPECT_EQ(instructor_->author_course(demo_course("CS102")).code(),
            Errc::constraint_violation);
}

TEST_F(CoreFixture, EditGuardsForUnknownScript) {
  EXPECT_EQ(instructor_->begin_edit("ghost", 1).code(), Errc::not_found);
  EXPECT_EQ(instructor_->finish_edit("ghost", Bytes{1}, "c", 2).code(),
            Errc::not_found);
  instructor_->abandon_edit("ghost");  // must be harmless
}

TEST_F(CoreFixture, AbandonEditWithoutBeginIsHarmless) {
  ASSERT_TRUE(instructor_->author_course(demo_course("CS102")).is_ok());
  instructor_->abandon_edit("script-CS102");
  // The script is still editable afterwards.
  EXPECT_TRUE(instructor_->begin_edit("script-CS102", 10).is_ok());
}

TEST_F(CoreFixture, FetchCourseRequiresAttachment) {
  ASSERT_TRUE(instructor_->author_course(demo_course("CS102")).is_ok());
  EXPECT_EQ(student_
                ->fetch_course("http://mmu.edu/CS102/index.html",
                               [](Result<dist::DocManifest>, SimTime) {})
                .code(),
            Errc::unavailable);
}

TEST_F(CoreFixture, FinishEditWithoutCheckoutFails) {
  ASSERT_TRUE(instructor_->author_course(demo_course("CS102")).is_ok());
  EXPECT_EQ(instructor_->finish_edit("script-CS102", Bytes{1}, "c", 2).code(),
            Errc::lock_conflict);
}

TEST_F(CoreFixture, SqlSurfaceSeesTheDocumentLayer) {
  ASSERT_TRUE(instructor_->author_course(demo_course("CS102")).is_ok());
  auto rs = db_->sql().execute(
      "SELECT name, author FROM wd_script WHERE name = 'script-CS102'");
  ASSERT_TRUE(rs.is_ok());
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][1].as_text(), "shih");

  auto count = db_->sql().execute("SELECT COUNT(*) FROM wd_html_file");
  ASSERT_TRUE(count.is_ok());
  EXPECT_EQ(count.value().rows[0][0].as_int(), 2);

  // SQL DML hits the same FK machinery: deleting the script cascades.
  auto del = db_->sql().execute(
      "DELETE FROM wd_script WHERE name = 'script-CS102'");
  ASSERT_TRUE(del.is_ok());
  EXPECT_EQ(db_->repository().get_implementation("http://mmu.edu/CS102/index.html")
                .code(),
            Errc::not_found);
}

TEST(Core, DistributedLectureAcrossTwoStations) {
  net::SimNetwork net(7);

  auto instructor_db = WebDocDb::create().expect("instructor db");
  auto student_db = WebDocDb::create().expect("student db");
  StationId s1 = net.add_station();
  StationId s2 = net.add_station();
  ASSERT_TRUE(instructor_db->attach(net, s1).is_ok());
  ASSERT_TRUE(student_db->attach(net, s2).is_ok());

  // One broadcast vector shared by both nodes, m = 2.
  std::vector<StationId> vec{s1, s2};
  instructor_db->node()->set_tree(vec, 2);
  student_db->node()->set_tree(vec, 2);

  InstructorSession instructor(*instructor_db, UserId{1}, "shih");
  ASSERT_TRUE(instructor.author_course(demo_course("CS102")).is_ok());
  ASSERT_TRUE(
      instructor.broadcast_lecture("http://mmu.edu/CS102/index.html").is_ok());
  net.run();

  // The student's station received the ephemeral lecture copy.
  EXPECT_TRUE(
      student_db->objects().has_materialized("http://mmu.edu/CS102/index.html"));

  // Student fetch resolves locally now.
  StudentSession student(*student_db, UserId{100}, "alice");
  bool got = false;
  ASSERT_TRUE(student
                  .fetch_course("http://mmu.edu/CS102/index.html",
                                [&](Result<dist::DocManifest> r, SimTime) {
                                  got = r.is_ok();
                                })
                  .is_ok());
  EXPECT_TRUE(got);

  // After the lecture, migration reclaims the student's buffer space.
  std::uint64_t before = student_db->objects().disk_bytes();
  EXPECT_GT(before, 0u);
  (void)student_db->node()->end_lecture();
  EXPECT_EQ(student_db->objects().disk_bytes(), 0u);

  // Double attach is rejected.
  EXPECT_EQ(student_db->attach(net, s2).code(), Errc::already_exists);
}

TEST(Core, DurableLibrarySurvivesRestart) {
  namespace fs = std::filesystem;
  std::string dir = (fs::temp_directory_path() / "wdoc-core-library").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    WebDocDbOptions opts;
    opts.data_dir = dir;
    auto db = WebDocDb::create(opts).expect("create");
    InstructorSession instructor(*db, UserId{1}, "shih");
    ASSERT_TRUE(instructor.author_course(demo_course("CS102")).is_ok());
    ASSERT_TRUE(db->library().check_out("CS102", UserId{100}, 5000).is_ok());
    ASSERT_TRUE(db->persist_library().is_ok());
    ASSERT_TRUE(db->database().flush().is_ok());
  }
  {
    WebDocDbOptions opts;
    opts.data_dir = dir;
    auto db = WebDocDb::create(opts).expect("reopen");
    EXPECT_TRUE(db->library().get("CS102").is_ok());
    EXPECT_EQ(db->library().holders_of("CS102").size(), 1u);
    StudentSession alice(*db, UserId{100}, "alice");
    EXPECT_EQ(alice.search("multimedia").size(), 1u);
  }
  fs::remove_all(dir);
}

TEST(Core, DurableBlobPayloadsSurviveRestart) {
  namespace fs = std::filesystem;
  std::string dir = (fs::temp_directory_path() / "wdoc-core-blobs").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  Bytes audio{5, 6, 7, 8, 9};
  {
    WebDocDbOptions opts;
    opts.data_dir = dir;
    auto db = WebDocDb::create(opts).expect("create");
    InstructorSession instructor(*db, UserId{1}, "shih");
    ASSERT_TRUE(instructor.author_course(demo_course("CS102")).is_ok());
    ASSERT_TRUE(db->repository()
                    .set_verbal_description("script-CS102", audio)
                    .is_ok());
    // A real-bytes resource persists alongside the synthetic one.
    ASSERT_TRUE(db->repository()
                    .attach_resource("script", "script-CS102", Bytes{1, 2, 3},
                                     blob::MediaType::image)
                    .is_ok());
    ASSERT_TRUE(db->database().flush().is_ok());
  }
  {
    WebDocDbOptions opts;
    opts.data_dir = dir;
    auto db = WebDocDb::create(opts).expect("reopen");
    // The verbal description faults back in from disk.
    auto loaded = db->repository().get_verbal_description("script-CS102");
    ASSERT_TRUE(loaded.is_ok());
    EXPECT_EQ(loaded.value(), audio);
    // Rehydrated references keep the payloads across a gc.
    (void)db->blobs().gc();
    EXPECT_TRUE(db->repository().get_verbal_description("script-CS102").is_ok());
  }
  fs::remove_all(dir);
}

TEST(Core, DurableStationSurvivesRestart) {
  namespace fs = std::filesystem;
  std::string dir = (fs::temp_directory_path() / "wdoc-core-durable").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    WebDocDbOptions opts;
    opts.data_dir = dir;
    auto db = WebDocDb::create(opts).expect("create durable");
    InstructorSession instructor(*db, UserId{1}, "shih");
    ASSERT_TRUE(instructor.author_course(demo_course("CS102")).is_ok());
    ASSERT_TRUE(db->database().flush().is_ok());
  }
  {
    WebDocDbOptions opts;
    opts.data_dir = dir;
    auto db = WebDocDb::create(opts).expect("reopen durable");
    EXPECT_TRUE(db->repository().get_script("script-CS102").is_ok());
    EXPECT_EQ(db->repository()
                  .html_files_of("http://mmu.edu/CS102/index.html")
                  .value()
                  .size(),
              2u);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace wdoc::core

// Tests for the paper's m-ary tree equations: exact values from the text,
// an exhaustive parameterized inverse-property sweep ("proved by
// mathematical induction ... also implemented in our system"), and the
// adaptive-m estimator.
#include <gtest/gtest.h>

#include <set>

#include "dist/mtree.hpp"

namespace wdoc::dist {
namespace {

TEST(MTree, ChildEquationMatchesPaperExamples) {
  // m=3, root (n=1): children at 2, 3, 4.
  EXPECT_EQ(child_position(1, 1, 3), 2u);
  EXPECT_EQ(child_position(1, 2, 3), 3u);
  EXPECT_EQ(child_position(1, 3, 3), 4u);
  // m=3, n=2: children at 5, 6, 7.
  EXPECT_EQ(child_position(2, 1, 3), 5u);
  EXPECT_EQ(child_position(2, 3, 3), 7u);
  // Binary tree: standard heap layout 2n, 2n+1.
  EXPECT_EQ(child_position(5, 1, 2), 10u);
  EXPECT_EQ(child_position(5, 2, 2), 11u);
}

TEST(MTree, ParentEquationMatchesPaperExamples) {
  EXPECT_EQ(parent_position(2, 3), 1u);
  EXPECT_EQ(parent_position(4, 3), 1u);
  EXPECT_EQ(parent_position(5, 3), 2u);
  EXPECT_EQ(parent_position(7, 3), 2u);
  EXPECT_EQ(parent_position(8, 3), 3u);
  // Binary heap parent k/2.
  EXPECT_EQ(parent_position(10, 2), 5u);
  EXPECT_EQ(parent_position(11, 2), 5u);
}

TEST(MTree, ChainWhenMIsOne) {
  // m=1 degenerates to a chain: child(n) = n+1, parent(k) = k-1.
  EXPECT_EQ(child_position(1, 1, 1), 2u);
  EXPECT_EQ(child_position(7, 1, 1), 8u);
  EXPECT_EQ(parent_position(8, 1), 7u);
  EXPECT_EQ(tree_depth(10, 1), 9u);
}

TEST(MTree, ChildrenOfClipsAtN) {
  EXPECT_EQ(children_of(1, 3, 10), (std::vector<std::uint64_t>{2, 3, 4}));
  EXPECT_EQ(children_of(3, 3, 10), (std::vector<std::uint64_t>{8, 9, 10}));
  EXPECT_EQ(children_of(4, 3, 10), std::vector<std::uint64_t>{});
  EXPECT_EQ(children_of(3, 3, 9), (std::vector<std::uint64_t>{8, 9}));
}

TEST(MTree, DepthOfFollowsLevels) {
  EXPECT_EQ(depth_of(1, 3), 0u);
  for (std::uint64_t k = 2; k <= 4; ++k) EXPECT_EQ(depth_of(k, 3), 1u);
  for (std::uint64_t k = 5; k <= 13; ++k) EXPECT_EQ(depth_of(k, 3), 2u) << k;
  EXPECT_EQ(depth_of(14, 3), 3u);
}

TEST(MTree, AncestryEndsAtRoot) {
  auto chain = ancestry(14, 3);
  ASSERT_GE(chain.size(), 2u);
  EXPECT_EQ(chain.front(), 14u);
  EXPECT_EQ(chain.back(), 1u);
  // Each consecutive pair is a parent link.
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    EXPECT_EQ(parent_position(chain[i], 3), chain[i + 1]);
  }
}

// --- exhaustive inverse-property sweep -------------------------------------

class MTreeInverse : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MTreeInverse, ParentOfChildIsSelf) {
  const std::uint64_t m = GetParam();
  for (std::uint64_t n = 1; n <= 4096; ++n) {
    for (std::uint64_t i = 1; i <= m; ++i) {
      std::uint64_t c = child_position(n, i, m);
      ASSERT_EQ(parent_position(c, m), n) << "m=" << m << " n=" << n << " i=" << i;
    }
  }
}

TEST_P(MTreeInverse, EveryPositionHasExactlyOneParentSlot) {
  const std::uint64_t m = GetParam();
  for (std::uint64_t k = 2; k <= 4096; ++k) {
    std::uint64_t p = parent_position(k, m);
    ASSERT_GE(p, 1u);
    ASSERT_LT(p, k);  // parents joined earlier (breadth-first order)
    // k must appear among p's children.
    bool found = false;
    for (std::uint64_t i = 1; i <= m; ++i) {
      if (child_position(p, i, m) == k) {
        found = true;
        break;
      }
    }
    ASSERT_TRUE(found) << "m=" << m << " k=" << k;
  }
}

TEST_P(MTreeInverse, ChildPositionsPartitionTheStations) {
  const std::uint64_t m = GetParam();
  const std::uint64_t N = 2000;
  std::set<std::uint64_t> seen;
  for (std::uint64_t n = 1; n <= N; ++n) {
    for (std::uint64_t c : children_of(n, m, N)) {
      ASSERT_TRUE(seen.insert(c).second) << "duplicate child " << c;
    }
  }
  // Every station except the root is someone's child.
  EXPECT_EQ(seen.size(), N - 1);
}

INSTANTIATE_TEST_SUITE_P(FanOuts, MTreeInverse,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 7u, 8u, 16u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "m" + std::to_string(info.param);
                         });

// --- depth and makespan ----------------------------------------------------

TEST(MTree, TreeDepthShrinksWithM) {
  EXPECT_GT(tree_depth(1000, 2), tree_depth(1000, 4));
  EXPECT_GT(tree_depth(1000, 4), tree_depth(1000, 16));
  EXPECT_EQ(tree_depth(1, 3), 0u);
}

TEST(MTree, MakespanZeroForSingleStation) {
  EXPECT_DOUBLE_EQ(estimate_makespan_s(1, 4, 1 << 20, 1e6, 0.02), 0.0);
}

TEST(MTree, MakespanPenalizesExtremes) {
  // For a big lecture over many stations, both the chain (m=1, deep) and
  // the star (m=N-1, root-serialized) lose to a moderate fan-out.
  const std::uint64_t N = 255;
  const std::uint64_t bytes = 10 << 20;
  const double bps = 10e6;
  const double lat = 0.02;
  double chain = estimate_makespan_s(N, 1, bytes, bps, lat);
  double star = estimate_makespan_s(N, N - 1, bytes, bps, lat);
  double mid = estimate_makespan_s(N, 3, bytes, bps, lat);
  EXPECT_LT(mid, chain);
  EXPECT_LT(mid, star);
}

TEST(MTree, ChooseMPicksArgmin) {
  const std::uint64_t N = 255;
  const std::uint64_t bytes = 10 << 20;
  std::uint64_t best = choose_m(N, bytes, 10e6, 0.02);
  double best_t = estimate_makespan_s(N, best, bytes, 10e6, 0.02);
  for (std::uint64_t m = 1; m <= 16; ++m) {
    EXPECT_LE(best_t, estimate_makespan_s(N, m, bytes, 10e6, 0.02) + 1e-12);
  }
}

TEST(MTree, ChooseMAdaptsToLatency) {
  // When latency dominates (tiny payload), fewer, wider levels win: m rises.
  std::uint64_t m_small_payload = choose_m(1000, 1 << 10, 10e6, 0.5);
  // When serialization dominates (huge payload), narrow trees win: m drops.
  std::uint64_t m_large_payload = choose_m(1000, 100 << 20, 10e6, 0.001);
  EXPECT_GT(m_small_payload, m_large_payload);
}

TEST(MTree, ChooseMSingleStation) {
  EXPECT_EQ(choose_m(1, 1 << 20, 1e6, 0.02), 1u);
}

TEST(MTree, GrandparentIsParentAppliedTwice) {
  for (std::uint64_t m = 1; m <= 4; ++m) {
    for (std::uint64_t k = 1; k <= 100; ++k) {
      std::uint64_t expected = k <= 1 ? 1 : parent_position(k, m);
      expected = expected <= 1 ? 1 : parent_position(expected, m);
      EXPECT_EQ(grandparent_position(k, m), expected) << "k=" << k << " m=" << m;
    }
  }
  // The failover route for the paper's worked example: position 5 in an
  // m=3 tree has parent ⌊(5−1−1)/3⌋+1 = 2 and grandparent 1 (the root).
  EXPECT_EQ(parent_position(5, 3), 2u);
  EXPECT_EQ(grandparent_position(5, 3), 1u);
}

TEST(MTree, SubtreeHeightFollowsBreadthFirstFilling) {
  // 13 stations, m=3: root subtree is the whole 3-level tree (height 2);
  // position 2 still has children 5..7 below it (height 1); leaves are 0.
  EXPECT_EQ(subtree_height(1, 3, 13), 2u);
  EXPECT_EQ(subtree_height(2, 3, 13), 1u);
  EXPECT_EQ(subtree_height(4, 3, 13), 1u);  // child 13 exists
  EXPECT_EQ(subtree_height(5, 3, 13), 0u);
  EXPECT_EQ(subtree_height(13, 3, 13), 0u);
  // Degenerate chain (m=1): height is the remaining chain length.
  EXPECT_EQ(subtree_height(1, 1, 5), 4u);
  EXPECT_EQ(subtree_height(4, 1, 5), 1u);
  // A single station has no subtree below it.
  EXPECT_EQ(subtree_height(1, 3, 1), 0u);
}

}  // namespace
}  // namespace wdoc::dist

// Tests for storage::Value: typing, total order, hashing, serialization.
#include <gtest/gtest.h>

#include "storage/value.hpp"

namespace wdoc::storage {
namespace {

TEST(Value, TypesAreTagged) {
  EXPECT_EQ(Value::null().type(), ValueType::null);
  EXPECT_EQ(Value(1).type(), ValueType::integer);
  EXPECT_EQ(Value(std::int64_t{1}).type(), ValueType::integer);
  EXPECT_EQ(Value(1.5).type(), ValueType::real);
  EXPECT_EQ(Value("x").type(), ValueType::text);
  EXPECT_EQ(Value(Bytes{1}).type(), ValueType::blob);
  EXPECT_EQ(Value(true).type(), ValueType::boolean);
}

TEST(Value, AccessorsReturnStoredValues) {
  EXPECT_EQ(Value(42).as_int(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).as_real(), 2.5);
  EXPECT_EQ(Value("abc").as_text(), "abc");
  EXPECT_EQ(Value(Bytes{9, 8}).as_blob(), (Bytes{9, 8}));
  EXPECT_TRUE(Value(true).as_bool());
}

TEST(Value, SameTypeOrdering) {
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value(1.0), Value(1.5));
  EXPECT_LT(Value("a"), Value("b"));
  EXPECT_LT(Value(false), Value(true));
  EXPECT_EQ(Value("same"), Value("same"));
}

TEST(Value, NullComparesBelowEverything) {
  EXPECT_LT(Value::null(), Value(std::int64_t{-100}));
  EXPECT_LT(Value::null(), Value(""));
  EXPECT_EQ(Value::null(), Value::null());
}

TEST(Value, CrossTypeOrderIsTotalAndStable) {
  // Ordered by type tag: null < integer < real < text < blob < boolean.
  EXPECT_LT(Value(99), Value(0.5));
  EXPECT_LT(Value(0.5), Value("a"));
  EXPECT_LT(Value("zzz"), Value(Bytes{0}));
}

TEST(Value, HashConsistentWithEquality) {
  EXPECT_EQ(Value("course").hash(), Value("course").hash());
  EXPECT_EQ(Value(7).hash(), Value(7).hash());
  EXPECT_NE(Value(7).hash(), Value(8).hash());
  // Same payload different types must not collide via trivial hashing.
  EXPECT_NE(Value(1).hash(), Value(true).hash());
}

TEST(Value, ToStringForDebugging) {
  EXPECT_EQ(Value::null().to_string(), "NULL");
  EXPECT_EQ(Value(5).to_string(), "5");
  EXPECT_EQ(Value("t").to_string(), "'t'");
  EXPECT_EQ(Value(Bytes{1, 2}).to_string(), "blob[2]");
  EXPECT_EQ(Value(false).to_string(), "false");
}

TEST(Value, SerializeRoundTripsEveryType) {
  std::vector<Value> values{Value::null(), Value(-7),        Value(3.125),
                            Value("text"), Value(Bytes{0, 255}), Value(true)};
  Writer w;
  for (const Value& v : values) v.serialize(w);
  Reader r(w.data());
  for (const Value& v : values) {
    auto decoded = Value::deserialize(r);
    ASSERT_TRUE(decoded.is_ok());
    EXPECT_EQ(decoded.value(), v);
    EXPECT_EQ(decoded.value().type(), v.type());
  }
  EXPECT_TRUE(r.at_end());
}

TEST(Value, DeserializeRejectsBadTag) {
  Writer w;
  w.u8(99);
  Reader r(w.data());
  EXPECT_EQ(Value::deserialize(r).code(), Errc::corrupt);
}

TEST(Value, ByteSizeTracksPayload) {
  EXPECT_GT(Value(std::string(100, 'x')).byte_size(), Value("x").byte_size());
  EXPECT_EQ(Value::null().byte_size(), 1u);
}

}  // namespace
}  // namespace wdoc::storage

// LectureSession tests: the broadcast/audit/repair/migrate life cycle,
// including failure injection (lossy links dropping pushes) and repeated
// weekly sessions.
#include <gtest/gtest.h>

#include "dist/lecture.hpp"
#include "net/sim_network.hpp"

namespace wdoc::dist {
namespace {

struct Station {
  StationId id;
  std::unique_ptr<blob::BlobStore> blobs;
  std::unique_ptr<ObjectStore> store;
  std::unique_ptr<StationNode> node;
};

class LectureFixture : public ::testing::Test {
 protected:
  void build(std::size_t n, double loss, std::uint64_t m = 2,
             std::uint64_t seed = 11) {
    net_ = std::make_unique<net::SimNetwork>(seed);
    net::StationLink link;
    link.loss_rate = loss;
    std::vector<StationId> vec;
    for (std::size_t i = 0; i < n; ++i) {
      Station s;
      s.id = net_->add_station(link);
      s.blobs = std::make_unique<blob::BlobStore>();
      s.store = std::make_unique<ObjectStore>(*s.blobs);
      s.node = std::make_unique<StationNode>(*net_, s.id, *s.store);
      s.node->bind();
      vec.push_back(s.id);
      stations_.push_back(std::move(s));
    }
    for (auto& s : stations_) s.node->set_tree(vec, m);
  }

  DocManifest lecture_doc() {
    DocManifest doc;
    doc.doc_key = "http://mmu.edu/lecture";
    doc.structure_bytes = 1000;
    doc.home = stations_[0].id;
    BlobRef blob;
    blob.digest = digest128("lecture blob");
    blob.size = 100000;
    blob.type = blob::MediaType::video;
    doc.blobs.push_back(blob);
    return doc;
  }

  std::vector<StationNode*> audience() {
    std::vector<StationNode*> out;
    for (std::size_t i = 1; i < stations_.size(); ++i) {
      out.push_back(stations_[i].node.get());
    }
    return out;
  }

  std::unique_ptr<net::SimNetwork> net_;
  std::vector<Station> stations_;
};

TEST_F(LectureFixture, HappyPathLifeCycle) {
  build(7, /*loss=*/0.0);
  LectureSession session(LectureId{1}, lecture_doc(), *stations_[0].node, audience());
  EXPECT_EQ(session.state(), LectureState::pending);
  EXPECT_EQ(session.missing().size(), 6u);  // nothing distributed yet

  ASSERT_TRUE(session.begin().is_ok());
  EXPECT_EQ(session.state(), LectureState::live);
  net_->run();
  EXPECT_TRUE(session.fully_distributed());

  std::uint64_t reclaimed = session.end();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(session.state(), LectureState::ended);
  for (std::size_t i = 1; i < stations_.size(); ++i) {
    EXPECT_EQ(stations_[i].store->disk_bytes(), 0u) << i;
  }
  // The instructor's persistent copy survives.
  EXPECT_TRUE(stations_[0].store->has_materialized("http://mmu.edu/lecture"));
}

TEST_F(LectureFixture, LossyBroadcastLeavesGaps) {
  build(15, /*loss=*/0.35, 2, /*seed=*/3);
  LectureSession session(LectureId{1}, lecture_doc(), *stations_[0].node, audience());
  ASSERT_TRUE(session.begin().is_ok());
  net_->run();
  // With 35% loss per message and subtree forwarding, gaps are certain at
  // this seed; a dropped push also silences the whole subtree below it.
  EXPECT_FALSE(session.fully_distributed());
}

TEST_F(LectureFixture, RepairFillsGaps) {
  build(15, /*loss=*/0.35, 2, /*seed=*/3);
  LectureSession session(LectureId{1}, lecture_doc(), *stations_[0].node, audience());
  ASSERT_TRUE(session.begin().is_ok());
  net_->run();
  ASSERT_FALSE(session.fully_distributed());

  // Lift the loss (the burst is over) and repair until complete.
  for (auto& s : stations_) {
    auto link = net_->link_of(s.id).expect("link");
    link.loss_rate = 0.0;
    ASSERT_TRUE(net_->set_link(s.id, link).is_ok());
  }
  int rounds = 0;
  while (!session.fully_distributed() && rounds < 10) {
    ASSERT_TRUE(session.repair().is_ok());
    net_->run();
    ++rounds;
  }
  EXPECT_TRUE(session.fully_distributed()) << "after " << rounds << " rounds";
  EXPECT_GT(session.repairs_issued(), 0u);
}

TEST_F(LectureFixture, RepairUnderResidualLossConverges) {
  build(15, /*loss=*/0.2, 2, /*seed=*/7);
  LectureSession session(LectureId{1}, lecture_doc(), *stations_[0].node, audience());
  ASSERT_TRUE(session.begin().is_ok());
  net_->run();
  // Repair keeps retrying over the lossy fabric; each round is independent.
  int rounds = 0;
  while (!session.fully_distributed() && rounds < 50) {
    ASSERT_TRUE(session.repair().is_ok());
    net_->run();
    ++rounds;
  }
  EXPECT_TRUE(session.fully_distributed()) << "rounds: " << rounds;
}

TEST_F(LectureFixture, OfflineStationCatchesUpAfterReconnect) {
  build(7, /*loss=*/0.0);
  // Station 4 (and therefore its subtree) is offline during the broadcast.
  ASSERT_TRUE(net_->set_online(stations_[4].id, false).is_ok());
  LectureSession session(LectureId{1}, lecture_doc(), *stations_[0].node, audience());
  ASSERT_TRUE(session.begin().is_ok());
  net_->run();
  auto missing = session.missing();
  ASSERT_FALSE(missing.empty());
  EXPECT_NE(std::find(missing.begin(), missing.end(), stations_[4].id), missing.end());

  // The station dials back in; repair pulls the lecture up its chain.
  ASSERT_TRUE(net_->set_online(stations_[4].id, true).is_ok());
  int rounds = 0;
  while (!session.fully_distributed() && rounds < 10) {
    ASSERT_TRUE(session.repair().is_ok());
    net_->run();
    ++rounds;
  }
  EXPECT_TRUE(session.fully_distributed());
}

TEST_F(LectureFixture, StateGuards) {
  build(3, 0.0);
  LectureSession session(LectureId{1}, lecture_doc(), *stations_[0].node, audience());
  // repair before begin is a conflict.
  EXPECT_EQ(session.repair().code(), Errc::conflict);
  ASSERT_TRUE(session.begin().is_ok());
  net_->run();
  std::uint64_t first_end = session.end();
  EXPECT_GT(first_end, 0u);
  EXPECT_EQ(session.end(), 0u);                       // idempotent
  EXPECT_EQ(session.begin().code(), Errc::conflict);  // cannot restart
  EXPECT_EQ(session.repair().code(), Errc::conflict);
}

TEST_F(LectureFixture, WeeklySessionsReuseStations) {
  build(7, 0.0);
  for (std::uint64_t week = 1; week <= 4; ++week) {
    DocManifest doc = lecture_doc();
    doc.doc_key = "http://mmu.edu/week" + std::to_string(week);
    LectureSession session(LectureId{week}, doc, *stations_[0].node, audience());
    ASSERT_TRUE(session.begin().is_ok());
    net_->run();
    EXPECT_TRUE(session.fully_distributed()) << "week " << week;
    (void)session.end();
  }
  // After four weeks every student station is back to references only.
  for (std::size_t i = 1; i < stations_.size(); ++i) {
    EXPECT_EQ(stations_[i].store->disk_bytes(), 0u);
    EXPECT_EQ(stations_[i].store->doc_count(), 4u);  // 4 references kept
  }
}

TEST(LectureState, Names) {
  EXPECT_STREQ(lecture_state_name(LectureState::pending), "pending");
  EXPECT_STREQ(lecture_state_name(LectureState::live), "live");
  EXPECT_STREQ(lecture_state_name(LectureState::ended), "ended");
}

}  // namespace
}  // namespace wdoc::dist

// Object-store tests: the class/instance/reference life cycle, BLOB
// sharing across declare/instantiate, demotion (migration) and disk
// accounting.
#include <gtest/gtest.h>

#include "dist/object_store.hpp"

namespace wdoc::dist {
namespace {

DocManifest make_manifest(const std::string& key, std::uint64_t structure,
                          std::initializer_list<std::pair<const char*, std::uint64_t>>
                              blobs) {
  DocManifest m;
  m.doc_key = key;
  m.structure_bytes = structure;
  m.home = StationId{1};
  for (const auto& [name, size] : blobs) {
    BlobRef ref;
    ref.digest = digest128(name);
    ref.size = size;
    ref.type = blob::MediaType::video;
    m.blobs.push_back(ref);
  }
  return m;
}

class ObjectStoreFixture : public ::testing::Test {
 protected:
  blob::BlobStore blobs_;
  ObjectStore store_{blobs_};
};

TEST_F(ObjectStoreFixture, ManifestSerializationRoundTrip) {
  DocManifest m = make_manifest("http://x/1", 5000, {{"v1", 1000}, {"v2", 2000}});
  m.blobs[0].playout_ms = 60000;
  Writer w;
  m.serialize(w);
  Reader r(w.data());
  auto decoded = DocManifest::deserialize(r);
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), m);
  EXPECT_EQ(decoded.value().total_bytes(), 8000u);
}

TEST_F(ObjectStoreFixture, PutInstanceAccountsBytes) {
  auto m = make_manifest("doc", 1000, {{"a", 500}, {"b", 300}});
  ASSERT_TRUE(store_.put_instance(m, false).is_ok());
  EXPECT_EQ(store_.structure_bytes(), 1000u);
  EXPECT_EQ(blobs_.stored_bytes(), 800u);
  EXPECT_EQ(store_.disk_bytes(), 1800u);
  const StoredDoc* d = store_.doc("doc");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->form, ObjectForm::instance);
  EXPECT_FALSE(d->ephemeral);
  EXPECT_TRUE(store_.has_materialized("doc"));
  EXPECT_EQ(store_.put_instance(m, false).code(), Errc::already_exists);
}

TEST_F(ObjectStoreFixture, ReferenceHoldsNoBytes) {
  auto m = make_manifest("doc", 1000, {{"a", 500}});
  ASSERT_TRUE(store_.put_reference(m).is_ok());
  EXPECT_EQ(store_.disk_bytes(), 0u);
  EXPECT_FALSE(store_.has_materialized("doc"));
  EXPECT_EQ(store_.doc("doc")->form, ObjectForm::reference);
}

TEST_F(ObjectStoreFixture, DeclareClassSharesBlobsPhysically) {
  // "This design allows the BLOBs to be stored in a class [and] shared by
  // different instances instantiated from the class."
  auto m = make_manifest("doc", 1000, {{"a", 5000}});
  ASSERT_TRUE(store_.put_instance(m, false).is_ok());
  ASSERT_TRUE(store_.declare_class("doc").is_ok());
  // Structure counted twice (instance + class), blob bytes once.
  EXPECT_EQ(store_.structure_bytes(), 2000u);
  EXPECT_EQ(blobs_.stored_bytes(), 5000u);
  EXPECT_EQ(blobs_.logical_bytes(), 10000u);
  ASSERT_NE(store_.document_class("doc"), nullptr);
  EXPECT_EQ(store_.class_count(), 1u);
  EXPECT_EQ(store_.declare_class("doc").code(), Errc::already_exists);
}

TEST_F(ObjectStoreFixture, DeclareClassRequiresInstance) {
  auto m = make_manifest("doc", 100, {});
  ASSERT_TRUE(store_.put_reference(m).is_ok());
  EXPECT_EQ(store_.declare_class("doc").code(), Errc::conflict);
  EXPECT_EQ(store_.declare_class("ghost").code(), Errc::not_found);
}

TEST_F(ObjectStoreFixture, InstantiateCopiesStructureSharesBlobs) {
  auto m = make_manifest("template", 1000, {{"a", 8000}});
  ASSERT_TRUE(store_.put_instance(m, false).is_ok());
  ASSERT_TRUE(store_.declare_class("template").is_ok());

  std::uint64_t blob_bytes_before = blobs_.stored_bytes();
  auto inst = store_.instantiate("template", "course-copy");
  ASSERT_TRUE(inst.is_ok());
  EXPECT_EQ(inst.value().doc_key, "course-copy");
  // No new blob bytes: pointers only.
  EXPECT_EQ(blobs_.stored_bytes(), blob_bytes_before);
  // Structure copied: instance + class + copy.
  EXPECT_EQ(store_.structure_bytes(), 3000u);
  EXPECT_TRUE(store_.has_materialized("course-copy"));
  EXPECT_EQ(store_.instantiate("template", "course-copy").code(),
            Errc::already_exists);
  EXPECT_EQ(store_.instantiate("ghost", "x").code(), Errc::not_found);
}

TEST_F(ObjectStoreFixture, DemoteReleasesBlobRefsAndGcReclaims) {
  auto m = make_manifest("doc", 1000, {{"a", 5000}});
  ASSERT_TRUE(store_.put_instance(m, true).is_ok());
  ASSERT_TRUE(store_.demote_to_reference("doc").is_ok());
  EXPECT_EQ(store_.doc("doc")->form, ObjectForm::reference);
  EXPECT_EQ(store_.structure_bytes(), 0u);
  // Blob bytes linger as reclaimable buffer until gc.
  EXPECT_EQ(blobs_.stored_bytes(), 5000u);
  EXPECT_EQ(blobs_.gc(), 5000u);
  EXPECT_EQ(store_.disk_bytes(), 0u);
  // Idempotent on references.
  EXPECT_TRUE(store_.demote_to_reference("doc").is_ok());
}

TEST_F(ObjectStoreFixture, DemoteKeepsSharedBlobsAlive) {
  auto m1 = make_manifest("doc1", 100, {{"shared", 5000}});
  auto m2 = make_manifest("doc2", 100, {{"shared", 5000}});
  ASSERT_TRUE(store_.put_instance(m1, true).is_ok());
  ASSERT_TRUE(store_.put_instance(m2, false).is_ok());
  ASSERT_TRUE(store_.demote_to_reference("doc1").is_ok());
  EXPECT_EQ(blobs_.gc(), 0u);  // doc2 still references the blob
  EXPECT_EQ(blobs_.stored_bytes(), 5000u);
}

TEST_F(ObjectStoreFixture, MaterializeReferencenBecomesInstance) {
  auto m = make_manifest("doc", 700, {{"a", 300}});
  ASSERT_TRUE(store_.put_reference(m).is_ok());
  ASSERT_TRUE(store_.materialize("doc", true).is_ok());
  const StoredDoc* d = store_.doc("doc");
  EXPECT_EQ(d->form, ObjectForm::instance);
  EXPECT_TRUE(d->ephemeral);
  EXPECT_EQ(store_.disk_bytes(), 1000u);
  // Idempotent on instances.
  EXPECT_TRUE(store_.materialize("doc", true).is_ok());
  EXPECT_EQ(store_.materialize("ghost", true).code(), Errc::not_found);
}

TEST_F(ObjectStoreFixture, RemoveDropsEverything) {
  auto m = make_manifest("doc", 700, {{"a", 300}});
  ASSERT_TRUE(store_.put_instance(m, false).is_ok());
  ASSERT_TRUE(store_.remove("doc").is_ok());
  EXPECT_EQ(store_.doc("doc"), nullptr);
  EXPECT_EQ(store_.structure_bytes(), 0u);
  EXPECT_EQ(blobs_.gc(), 300u);
  EXPECT_EQ(store_.remove("doc").code(), Errc::not_found);
}

TEST_F(ObjectStoreFixture, RetrievalCounterMonotonic) {
  auto m = make_manifest("doc", 100, {});
  ASSERT_TRUE(store_.put_reference(m).is_ok());
  EXPECT_EQ(store_.note_remote_retrieval("doc"), 1u);
  EXPECT_EQ(store_.note_remote_retrieval("doc"), 2u);
  EXPECT_EQ(store_.note_remote_retrieval("ghost"), 0u);
}

TEST_F(ObjectStoreFixture, KeysListsAllForms) {
  ASSERT_TRUE(store_.put_instance(make_manifest("a", 1, {}), false).is_ok());
  ASSERT_TRUE(store_.put_reference(make_manifest("b", 1, {})).is_ok());
  EXPECT_EQ(store_.keys(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(store_.doc_count(), 2u);
}

TEST(ObjectStoreCapacity, PutInstanceRollsBackOnFullDisk) {
  // Station disk fits one 600-byte blob but not two; a failed put must not
  // leak partial blob references.
  blob::BlobStore blobs(/*capacity_bytes=*/1000);
  ObjectStore store(blobs);
  DocManifest m = make_manifest("big", 10, {{"a", 600}, {"b", 600}});
  auto status = store.put_instance(m, false);
  EXPECT_EQ(status.code(), Errc::out_of_space);
  EXPECT_EQ(store.doc("big"), nullptr);
  EXPECT_EQ(store.structure_bytes(), 0u);
  // The first blob's tentative reference was dropped; gc clears the buffer.
  EXPECT_EQ(blobs.logical_bytes(), 0u);
  (void)blobs.gc();
  EXPECT_EQ(blobs.stored_bytes(), 0u);
  // A smaller doc still fits afterwards.
  EXPECT_TRUE(store.put_instance(make_manifest("small", 10, {{"c", 500}}), false)
                  .is_ok());
}

TEST(ObjectStoreCapacity, MaterializeFailureKeepsReferenceForm) {
  blob::BlobStore blobs(/*capacity_bytes=*/100);
  ObjectStore store(blobs);
  DocManifest m = make_manifest("doc", 10, {{"a", 500}});
  ASSERT_TRUE(store.put_reference(m).is_ok());
  EXPECT_EQ(store.materialize("doc", true).code(), Errc::out_of_space);
  EXPECT_EQ(store.doc("doc")->form, ObjectForm::reference);
  EXPECT_EQ(store.disk_bytes(), 0u);
}

TEST(ObjectForm, Names) {
  EXPECT_STREQ(object_form_name(ObjectForm::document_class), "class");
  EXPECT_STREQ(object_form_name(ObjectForm::instance), "instance");
  EXPECT_STREQ(object_form_name(ObjectForm::reference), "reference");
}

}  // namespace
}  // namespace wdoc::dist

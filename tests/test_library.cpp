// Virtual-library tests: keyword/instructor/course retrieval, ranked
// search, the check-in/out ledger and the assessment report.
#include <gtest/gtest.h>

#include "library/virtual_library.hpp"
#include "storage/database.hpp"

namespace wdoc::library {
namespace {

constexpr UserId kAlice{1};
constexpr UserId kBob{2};

LibraryEntry course(const std::string& number, const std::string& title,
                    const std::string& instructor,
                    std::vector<std::string> keywords = {}) {
  LibraryEntry e;
  e.course_number = number;
  e.title = title;
  e.instructor = instructor;
  e.keywords = std::move(keywords);
  e.script_name = "script-" + number;
  e.starting_url = "http://mmu.edu/" + number;
  e.added_at = 100;
  return e;
}

TEST(Tokenize, LowercasesAndSplits) {
  EXPECT_EQ(tokenize("Introduction to Computer-Engineering!"),
            (std::vector<std::string>{"introduction", "to", "computer",
                                      "engineering"}));
  EXPECT_TRUE(tokenize("  ...  ").empty());
  EXPECT_EQ(tokenize("CS101"), std::vector<std::string>{"cs101"});
}

class LibraryFixture : public ::testing::Test {
 protected:
  LibraryFixture() {
    lib_.add_entry(course("CS101", "Introduction to Computer Engineering", "shih",
                          {"hardware", "logic"}))
        .expect("CS101");
    lib_.add_entry(course("CS102", "Introduction to Multimedia Computing", "ma",
                          {"multimedia", "video"}))
        .expect("CS102");
    lib_.add_entry(course("CS103", "Introduction to Engineering Drawing", "shih",
                          {"drawing", "cad"}))
        .expect("CS103");
  }
  VirtualLibrary lib_;
};

TEST_F(LibraryFixture, AddAndGet) {
  EXPECT_EQ(lib_.entry_count(), 3u);
  auto got = lib_.get("CS102");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().instructor, "ma");
  EXPECT_EQ(lib_.get("CS999").code(), Errc::not_found);
  EXPECT_EQ(lib_.add_entry(course("CS101", "dup", "x")).code(), Errc::already_exists);
  EXPECT_EQ(lib_.add_entry(course("", "empty", "x")).code(), Errc::invalid_argument);
}

TEST_F(LibraryFixture, KeywordSearchRanksByMatches) {
  auto hits = lib_.search_keywords("introduction engineering");
  ASSERT_GE(hits.size(), 3u);
  // CS101 and CS103 match both tokens ("introduction", "engineering");
  // CS102 matches only "introduction".
  EXPECT_GT(hits[0].score, hits.back().score);
  EXPECT_EQ(hits.back().course_number, "CS102");
}

TEST_F(LibraryFixture, KeywordSearchFindsKeywordField) {
  auto hits = lib_.search_keywords("video");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].course_number, "CS102");
}

TEST_F(LibraryFixture, SearchMissesReturnEmpty) {
  EXPECT_TRUE(lib_.search_keywords("quantum").empty());
  EXPECT_TRUE(lib_.search_keywords("").empty());
}

TEST_F(LibraryFixture, ByInstructor) {
  auto shih = lib_.by_instructor("shih");
  ASSERT_EQ(shih.size(), 2u);
  EXPECT_EQ(shih[0].course_number, "CS101");
  EXPECT_EQ(shih[1].course_number, "CS103");
  EXPECT_TRUE(lib_.by_instructor("nobody").empty());
}

TEST_F(LibraryFixture, ByCourseNumber) {
  ASSERT_TRUE(lib_.by_course_number("CS103").has_value());
  EXPECT_FALSE(lib_.by_course_number("CS999").has_value());
}

TEST_F(LibraryFixture, CombinedSearchPrioritizesExactCourse) {
  auto hits = lib_.search("CS102");
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].course_number, "CS102");
  EXPECT_GE(hits[0].score, 100.0);
}

TEST_F(LibraryFixture, CombinedSearchBoostsInstructorName) {
  auto hits = lib_.search("shih");
  ASSERT_EQ(hits.size(), 2u);
  for (const SearchHit& h : hits) {
    EXPECT_GE(h.score, 10.0);
  }
}

TEST_F(LibraryFixture, RemoveEntryCleansIndexes) {
  ASSERT_TRUE(lib_.remove_entry("CS102").is_ok());
  EXPECT_TRUE(lib_.search_keywords("multimedia").empty());
  EXPECT_TRUE(lib_.by_instructor("ma").empty());
  EXPECT_EQ(lib_.remove_entry("CS102").code(), Errc::not_found);
  // Other entries unaffected.
  EXPECT_EQ(lib_.search_keywords("introduction").size(), 2u);
}

TEST_F(LibraryFixture, CheckOutAndIn) {
  ASSERT_TRUE(lib_.check_out("CS101", kAlice, 1000).is_ok());
  EXPECT_EQ(lib_.check_out("CS101", kAlice, 1100).code(), Errc::already_exists);
  EXPECT_EQ(lib_.check_out("CS999", kAlice, 1000).code(), Errc::not_found);
  // Unlimited different courses for one student.
  ASSERT_TRUE(lib_.check_out("CS102", kAlice, 1200).is_ok());
  // Other students can hold the same course simultaneously.
  ASSERT_TRUE(lib_.check_out("CS101", kBob, 1300).is_ok());
  EXPECT_EQ(lib_.holders_of("CS101").size(), 2u);

  ASSERT_TRUE(lib_.check_in("CS101", kAlice, 2000).is_ok());
  EXPECT_EQ(lib_.holders_of("CS101").size(), 1u);
  EXPECT_EQ(lib_.check_in("CS101", kAlice, 2100).code(), Errc::not_found);
  EXPECT_EQ(lib_.check_in("CS101", kBob, 500).code(), Errc::invalid_argument);
}

TEST_F(LibraryFixture, ReCheckoutAfterReturn) {
  ASSERT_TRUE(lib_.check_out("CS101", kAlice, 1000).is_ok());
  ASSERT_TRUE(lib_.check_in("CS101", kAlice, 2000).is_ok());
  ASSERT_TRUE(lib_.check_out("CS101", kAlice, 3000).is_ok());
  EXPECT_EQ(lib_.ledger_of(kAlice).size(), 2u);
}

TEST_F(LibraryFixture, AssessmentAggregatesStudy) {
  // "The check in/out procedure serves as an assessment criteria to the
  // study performance of a student."
  ASSERT_TRUE(lib_.check_out("CS101", kAlice, 1000).is_ok());
  ASSERT_TRUE(lib_.check_in("CS101", kAlice, 5000).is_ok());
  ASSERT_TRUE(lib_.check_out("CS102", kAlice, 6000).is_ok());
  ASSERT_TRUE(lib_.check_in("CS102", kAlice, 7000).is_ok());
  ASSERT_TRUE(lib_.check_out("CS101", kAlice, 8000).is_ok());  // still out

  AssessmentReport report = lib_.assess(kAlice);
  EXPECT_EQ(report.total_checkouts, 3u);
  EXPECT_EQ(report.distinct_courses, 2u);
  EXPECT_EQ(report.still_out, 1u);
  EXPECT_EQ(report.total_borrow_micros, 5000);  // 4000 + 1000

  AssessmentReport empty = lib_.assess(UserId{42});
  EXPECT_EQ(empty.total_checkouts, 0u);
}

TEST_F(LibraryFixture, RemovedCourseKeepsLedgerHistory) {
  ASSERT_TRUE(lib_.check_out("CS101", kAlice, 1000).is_ok());
  ASSERT_TRUE(lib_.remove_entry("CS101").is_ok());
  EXPECT_EQ(lib_.ledger_of(kAlice).size(), 1u);
  // New check-outs of the removed course fail.
  EXPECT_EQ(lib_.check_out("CS101", kBob, 2000).code(), Errc::not_found);
}

TEST_F(LibraryFixture, SaveLoadRoundTrip) {
  ASSERT_TRUE(lib_.check_out("CS101", kAlice, 1000).is_ok());
  ASSERT_TRUE(lib_.check_out("CS102", kBob, 1100).is_ok());
  ASSERT_TRUE(lib_.check_in("CS102", kBob, 2000).is_ok());

  auto db = storage::Database::in_memory();
  ASSERT_TRUE(lib_.save(*db).is_ok());

  VirtualLibrary loaded;
  ASSERT_TRUE(loaded.load(*db).is_ok());
  EXPECT_EQ(loaded.entry_count(), 3u);
  // Indexes rebuilt.
  EXPECT_EQ(loaded.search_keywords("multimedia").size(), 1u);
  EXPECT_EQ(loaded.by_instructor("shih").size(), 2u);
  // Ledger and open loans restored.
  EXPECT_EQ(loaded.holders_of("CS101").size(), 1u);
  EXPECT_TRUE(loaded.holders_of("CS102").empty());
  EXPECT_EQ(loaded.assess(kAlice).still_out, 1u);
  EXPECT_EQ(loaded.assess(kBob).total_borrow_micros, 900);
  // An open loan loaded from disk still blocks a duplicate check-out and
  // can be checked back in.
  EXPECT_EQ(loaded.check_out("CS101", kAlice, 3000).code(), Errc::already_exists);
  EXPECT_TRUE(loaded.check_in("CS101", kAlice, 3000).is_ok());
}

TEST_F(LibraryFixture, SaveIsReplaceAll) {
  auto db = storage::Database::in_memory();
  ASSERT_TRUE(lib_.save(*db).is_ok());
  ASSERT_TRUE(lib_.remove_entry("CS103").is_ok());
  ASSERT_TRUE(lib_.save(*db).is_ok());  // second save replaces
  VirtualLibrary loaded;
  ASSERT_TRUE(loaded.load(*db).is_ok());
  EXPECT_EQ(loaded.entry_count(), 2u);
}

TEST(Library, LoadWithoutSaveFails) {
  auto db = storage::Database::in_memory();
  VirtualLibrary lib;
  EXPECT_EQ(lib.load(*db).code(), Errc::not_found);
}

TEST(Library, TermFrequencyBreaksTies) {
  VirtualLibrary lib;
  lib.add_entry(course("A1", "video", "x", {"video", "video editing"}))
      .expect("A1");
  lib.add_entry(course("A2", "video", "y", {})).expect("A2");
  auto hits = lib.search_keywords("video");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].course_number, "A1");  // higher tf
  EXPECT_GT(hits[0].score, hits[1].score);
}

}  // namespace
}  // namespace wdoc::library

// Unit + property tests for the common substrate: ids, Result/Status,
// serialization, hashing, RNG, Zipf sampling and simulated time.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/hash.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "common/sim_time.hpp"

namespace wdoc {
namespace {

// --- ids ---------------------------------------------------------------------

TEST(Ids, DefaultIsInvalid) {
  ScriptId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), 0u);
}

TEST(Ids, AllocatorIsMonotonic) {
  IdAllocator<ScriptId> alloc;
  ScriptId a = alloc.next();
  ScriptId b = alloc.next();
  EXPECT_TRUE(a.valid());
  EXPECT_LT(a, b);
  EXPECT_EQ(b.value(), a.value() + 1);
}

TEST(Ids, ReserveThroughSkipsUsedRange) {
  IdAllocator<ScriptId> alloc;
  alloc.reserve_through(100);
  EXPECT_EQ(alloc.next().value(), 101u);
  alloc.reserve_through(50);  // no-op: already beyond
  EXPECT_EQ(alloc.next().value(), 102u);
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<ScriptId, StationId>);
  std::set<StationId> set{StationId{3}, StationId{1}, StationId{3}};
  EXPECT_EQ(set.size(), 2u);
}

TEST(Ids, HashableInUnorderedContainers) {
  std::unordered_map<BlobId, int> m;
  m[BlobId{7}] = 1;
  m[BlobId{8}] = 2;
  EXPECT_EQ(m.at(BlobId{7}), 1);
}

// --- Result / Status -----------------------------------------------------------

TEST(Result, OkCarriesValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.code(), Errc::ok);
}

TEST(Result, ErrorCarriesCodeAndMessage) {
  Result<int> r = Error{Errc::not_found, "gone"};
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::not_found);
  EXPECT_EQ(r.message(), "gone");
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ExpectThrowsWithContext) {
  Result<int> r = Error{Errc::timeout, "slow"};
  EXPECT_THROW((void)std::move(r).expect("fetching"), std::runtime_error);
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.is_ok());
}

TEST(Status, TryMacroPropagates) {
  auto inner = []() -> Status { return {Errc::conflict, "busy"}; };
  auto outer = [&]() -> Status {
    WDOC_TRY(inner());
    return Status::ok();
  };
  Status s = outer();
  EXPECT_EQ(s.code(), Errc::conflict);
}

TEST(Status, TryMacroPropagatesIntoResult) {
  auto inner = []() -> Status { return {Errc::io_error, "disk"}; };
  auto outer = [&]() -> Result<int> {
    WDOC_TRY(inner());
    return 1;
  };
  auto r = outer();
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::io_error);
}

TEST(Status, EveryErrcHasAName) {
  for (int c = 0; c <= static_cast<int>(Errc::out_of_space); ++c) {
    EXPECT_STRNE(errc_name(static_cast<Errc>(c)), "unknown");
  }
}

// --- serialization --------------------------------------------------------------

TEST(Serialize, RoundTripScalars) {
  Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-12345);
  w.f64(3.25);
  w.boolean(true);
  Reader r(w.data());
  EXPECT_EQ(r.u8().value(), 0xab);
  EXPECT_EQ(r.u16().value(), 0xbeef);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64().value(), -12345);
  EXPECT_DOUBLE_EQ(r.f64().value(), 3.25);
  EXPECT_TRUE(r.boolean().value());
  EXPECT_TRUE(r.at_end());
}

TEST(Serialize, RoundTripStringsAndBytes) {
  Writer w;
  w.str("hello world");
  w.str("");
  w.bytes(Bytes{1, 2, 3});
  Reader r(w.data());
  EXPECT_EQ(r.str().value(), "hello world");
  EXPECT_EQ(r.str().value(), "");
  EXPECT_EQ(r.bytes().value(), (Bytes{1, 2, 3}));
}

TEST(Serialize, UnderflowIsCorruptNotCrash) {
  Writer w;
  w.u16(7);
  Reader r(w.data());
  auto v = r.u64();
  ASSERT_FALSE(v.is_ok());
  EXPECT_EQ(v.code(), Errc::corrupt);
}

TEST(Serialize, TruncatedStringIsCorrupt) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow
  Reader r(w.data());
  EXPECT_EQ(r.str().code(), Errc::corrupt);
}

// --- hashing ---------------------------------------------------------------------

TEST(Hash, Fnv1a64KnownValue) {
  // FNV-1a of empty input is the offset basis.
  EXPECT_EQ(fnv1a64(std::string_view("")), 1469598103934665603ULL);
  EXPECT_NE(fnv1a64(std::string_view("a")), fnv1a64(std::string_view("b")));
}

TEST(Hash, Digest128DeterministicAndContentSensitive) {
  Digest128 a = digest128("lecture-1 video");
  Digest128 b = digest128("lecture-1 video");
  Digest128 c = digest128("lecture-1 videO");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(Hash, HexRoundTrip) {
  Digest128 d = digest128("round trip me");
  auto parsed = Digest128::from_hex(d.to_hex());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, d);
}

TEST(Hash, FromHexRejectsMalformed) {
  EXPECT_FALSE(Digest128::from_hex("").has_value());
  EXPECT_FALSE(Digest128::from_hex("xyz").has_value());
  EXPECT_FALSE(Digest128::from_hex(std::string(32, 'g')).has_value());
  EXPECT_TRUE(Digest128::from_hex(std::string(32, '0')).has_value());
}

TEST(Hash, NoTrivialCollisionsAcrossSmallCorpus) {
  std::set<Digest128> seen;
  for (int i = 0; i < 10000; ++i) {
    seen.insert(digest128("doc-" + std::to_string(i)));
  }
  EXPECT_EQ(seen.size(), 10000u);
}

// --- RNG -------------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(10), 10u);
    std::int64_t v = rng.uniform_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, Uniform01CoversUnitInterval) {
  Rng rng(99);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Zipf, RankZeroIsMostPopular) {
  Rng rng(3);
  ZipfSampler zipf(100, 1.0);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 50000; ++i) counts[zipf.sample(rng)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
}

TEST(Zipf, UniformWhenExponentZero) {
  Rng rng(3);
  ZipfSampler zipf(10, 0.0);
  std::map<std::size_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[zipf.sample(rng)]++;
  for (const auto& [k, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.02) << "rank " << k;
  }
}

// --- SimTime --------------------------------------------------------------------

TEST(SimTime, ConstructorsAgree) {
  EXPECT_EQ(SimTime::millis(1), SimTime::micros(1000));
  EXPECT_EQ(SimTime::seconds(1.0), SimTime::millis(1000));
  EXPECT_EQ(SimTime::minutes(2.0), SimTime::seconds(120.0));
}

TEST(SimTime, Arithmetic) {
  SimTime t = SimTime::seconds(1.5) + SimTime::millis(500);
  EXPECT_DOUBLE_EQ(t.as_seconds(), 2.0);
  EXPECT_EQ((SimTime::millis(10) * 3), SimTime::millis(30));
  EXPECT_LT(SimTime::millis(1), SimTime::millis(2));
}

TEST(SimTime, FormattingPicksUnit) {
  EXPECT_EQ(SimTime::micros(5).to_string(), "5us");
  EXPECT_NE(SimTime::millis(5).to_string().find("ms"), std::string::npos);
  EXPECT_NE(SimTime::seconds(5).to_string().find("s"), std::string::npos);
}

}  // namespace
}  // namespace wdoc

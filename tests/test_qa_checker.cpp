// QA checker tests: reference extraction, bad-URL / missing / redundant
// detection, traversal replay checks, and automated bug-report filing.
#include <gtest/gtest.h>

#include "docmodel/qa_checker.hpp"
#include "workload/patterns.hpp"

namespace wdoc::docmodel {
namespace {

TEST(ExtractReferences, FindsHrefAndSrc) {
  auto refs = extract_references(
      "<a href=\"page1.html\">one</a> <img src='logo.gif'> "
      "<a href = \"page2.html\">spaced</a>");
  EXPECT_EQ(refs, (std::vector<std::string>{"page1.html", "page2.html", "logo.gif"}));
}

TEST(ExtractReferences, IgnoresMalformedAttributes) {
  EXPECT_TRUE(extract_references("<a href>broken</a>").empty());
  EXPECT_TRUE(extract_references("href=unquoted").empty());
  EXPECT_TRUE(extract_references("src=\"unterminated").empty());
  EXPECT_TRUE(extract_references("").empty());
}

TEST(ExtractReferences, HandlesMixedQuotes) {
  auto refs = extract_references("<a href='a.html'></a><a href=\"b.html\"></a>");
  EXPECT_EQ(refs.size(), 2u);
}

class QaFixture : public ::testing::Test {
 protected:
  QaFixture() : db_(storage::Database::in_memory()), repo_(*db_, blobs_), qa_(repo_) {
    install_schemas(*db_).expect("schemas");
    ScriptInfo script;
    script.name = "s1";
    script.author = "shih";
    repo_.create_script(script).expect("script");
    ImplementationInfo impl;
    impl.starting_url = kUrl;
    impl.script_name = "s1";
    repo_.create_implementation(impl).expect("impl");
  }

  void add_page(const std::string& name, const std::string& body) {
    HtmlFileInfo f;
    f.path = std::string(kUrl) + "/" + name;
    f.starting_url = kUrl;
    f.content.assign(body.begin(), body.end());
    repo_.add_html_file(f).expect("page");
  }

  static constexpr const char* kUrl = "http://mmu.edu/CS1";
  std::unique_ptr<storage::Database> db_;
  blob::BlobStore blobs_;
  Repository repo_;
  QaChecker qa_;
};

TEST_F(QaFixture, CleanImplementationHasNoFindings) {
  add_page("index.html", "<a href=\"page1.html\">next</a>");
  add_page("page1.html", "<a href=\"index.html\">back</a>");
  auto findings = qa_.check(kUrl);
  ASSERT_TRUE(findings.is_ok());
  EXPECT_TRUE(findings.value().clean()) << findings.value().bad_urls.size();
  EXPECT_EQ(findings.value().pages_checked, 2u);
  EXPECT_EQ(findings.value().links_checked, 2u);
}

TEST_F(QaFixture, DetectsBadUrls) {
  add_page("index.html", "<a href=\"ghost.html\">404</a>");
  auto findings = qa_.check(kUrl);
  ASSERT_TRUE(findings.is_ok());
  ASSERT_EQ(findings.value().bad_urls.size(), 1u);
  EXPECT_EQ(findings.value().bad_urls[0], std::string(kUrl) + "/ghost.html");
}

TEST_F(QaFixture, ExternalLinksAreNotOurProblem) {
  add_page("index.html",
           "<a href=\"http://other.host/x.html\">ext</a>"
           "<a href=\"mailto:shih@cs.tku.edu.tw\">mail</a>");
  auto findings = qa_.check(kUrl);
  ASSERT_TRUE(findings.is_ok());
  EXPECT_TRUE(findings.value().bad_urls.empty());
}

TEST_F(QaFixture, DetectsMissingResource) {
  add_page("index.html",
           "<img src=\"res:00000000000000000000000000000000\">");
  auto findings = qa_.check(kUrl);
  ASSERT_TRUE(findings.is_ok());
  ASSERT_EQ(findings.value().missing_objects.size(), 1u);
}

TEST_F(QaFixture, ReferencedResourceIsFine) {
  Bytes clip{1, 2, 3};
  Digest128 d = digest128(std::span<const std::uint8_t>(clip));
  repo_.attach_resource("implementation", kUrl, clip, blob::MediaType::image)
      .expect("resource");
  add_page("index.html", "<img src=\"res:" + d.to_hex() + "\">");
  auto findings = qa_.check(kUrl);
  ASSERT_TRUE(findings.is_ok());
  EXPECT_TRUE(findings.value().missing_objects.empty());
  EXPECT_TRUE(findings.value().redundant_objects.empty());
}

TEST_F(QaFixture, DetectsRedundantPage) {
  add_page("index.html", "<a href=\"page1.html\">next</a>");
  add_page("page1.html", "fin");
  add_page("orphan.html", "nobody links here");
  auto findings = qa_.check(kUrl);
  ASSERT_TRUE(findings.is_ok());
  ASSERT_EQ(findings.value().redundant_objects.size(), 1u);
  EXPECT_NE(findings.value().redundant_objects[0].find("orphan"), std::string::npos);
}

TEST_F(QaFixture, EmptyImplementationIsInconsistent) {
  auto findings = qa_.check(kUrl);
  ASSERT_TRUE(findings.is_ok());
  ASSERT_EQ(findings.value().inconsistencies.size(), 1u);
}

TEST_F(QaFixture, DuplicateReferenceFlagged) {
  add_page("index.html",
           "<a href=\"page1.html\">a</a><a href=\"page1.html\">again</a>");
  add_page("page1.html", "fin");
  auto findings = qa_.check(kUrl);
  ASSERT_TRUE(findings.is_ok());
  ASSERT_EQ(findings.value().inconsistencies.size(), 1u);
  EXPECT_NE(findings.value().inconsistencies[0].find("duplicate"), std::string::npos);
}

TEST_F(QaFixture, UnknownImplementationReported) {
  EXPECT_EQ(qa_.check("http://ghost/").code(), Errc::not_found);
}

TEST_F(QaFixture, TraversalReplayFindsUnreachablePages) {
  add_page("index.html", "ok");
  TraversalLog log;
  log.add({TraversalEventKind::navigate, 0, std::string(kUrl) + "/index.html", 0, 0});
  log.add({TraversalEventKind::navigate, 10, std::string(kUrl) + "/void.html", 0, 0});
  log.add({TraversalEventKind::navigate, 20, "http://other.host/", 0, 0});
  auto findings = qa_.check_traversal(kUrl, log);
  ASSERT_TRUE(findings.is_ok());
  ASSERT_EQ(findings.value().bad_urls.size(), 1u);
  EXPECT_EQ(findings.value().bad_urls[0], std::string(kUrl) + "/void.html");
}

TEST_F(QaFixture, FileReportStoresTestRecordAndBug) {
  add_page("index.html", "<a href=\"ghost.html\">404</a>");
  auto log = workload::random_traversal(kUrl, 1, 5, 3);
  auto findings = qa_.file_report(kUrl, "qa-1", "huang", 5000, &log);
  ASSERT_TRUE(findings.is_ok());
  EXPECT_FALSE(findings.value().clean());

  auto record = repo_.get_test_record("qa-1");
  ASSERT_TRUE(record.is_ok());
  EXPECT_EQ(record.value().starting_url, kUrl);
  EXPECT_FALSE(record.value().traversal_messages.empty());

  auto bug = repo_.get_bug_report("qa-1-findings");
  ASSERT_TRUE(bug.is_ok());
  EXPECT_EQ(bug.value().qa_engineer, "huang");
  EXPECT_NE(bug.value().bad_urls.find("ghost.html"), std::string::npos);
  EXPECT_NE(bug.value().test_procedure.find("traversal replay"), std::string::npos);
}

TEST_F(QaFixture, CleanReportFilesNoBug) {
  add_page("index.html", "fin");
  auto findings = qa_.file_report(kUrl, "qa-clean", "huang", 5000);
  ASSERT_TRUE(findings.is_ok());
  EXPECT_TRUE(findings.value().clean());
  EXPECT_TRUE(repo_.get_test_record("qa-clean").is_ok());
  EXPECT_EQ(repo_.bug_reports_of("qa-clean").value().size(), 0u);
}

}  // namespace
}  // namespace wdoc::docmodel

// Property tests for chunked BLOB reassembly (blob/chunk.hpp + the
// BlobStore's partial-assembly state).
//
// Invariant under test: for ANY delivery schedule — chunks shuffled out of
// order, duplicated, dropped, or corrupted — the store either reassembles
// exactly the original bytes (digest-verified promotion) or reports the
// blob incomplete. It never accepts a wrong-hash blob.
//
// The sweep is seeded and ordered smallest-first (chunk count, then chunk
// size, then payload size), so the first failing configuration printed is
// already the minimal counterexample of the sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "blob/blob_store.hpp"
#include "common/rng.hpp"

namespace wdoc::blob {
namespace {

Bytes deterministic_payload(Rng& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform(256));
  return out;
}

struct Delivery {
  std::uint32_t index;
  bool corrupt_digest = false;  // flip the chunk digest: must be rejected
  bool corrupt_payload = false; // flip a payload byte: must be rejected
};

// One randomized round: build a schedule (shuffle + duplicates + drops +
// corruptions) and feed it to a fresh store.
void run_schedule(std::uint64_t seed, std::size_t payload_size,
                  std::uint32_t chunk_bytes) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               " payload=" + std::to_string(payload_size) +
               " chunk_bytes=" + std::to_string(chunk_bytes));
  Rng rng(seed);
  Bytes payload = deterministic_payload(rng, payload_size);
  const Digest128 digest = digest128(payload);
  const std::uint32_t total = static_cast<std::uint32_t>(
      chunk_count(payload.size(), chunk_bytes));
  ASSERT_GT(total, 0u);

  BlobStore store;
  ASSERT_TRUE(store.begin_partial(digest, payload.size(), MediaType::video,
                                  chunk_bytes)
                  .expect("begin"));

  // Schedule: every index once, shuffled; ~30% duplicated; ~20% dropped;
  // ~15% delivered corrupted (on top of, not instead of, a clean copy).
  std::vector<Delivery> schedule;
  std::vector<std::uint32_t> order(total);
  std::iota(order.begin(), order.end(), 0u);
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform(i)]);
  }
  std::vector<bool> dropped(total, false);
  for (std::uint32_t idx : order) {
    const bool drop = rng.uniform(100) < 20;
    dropped[idx] = drop;
    if (rng.uniform(100) < 15) {
      Delivery evil{idx};
      if (rng.uniform(2) == 0) {
        evil.corrupt_digest = true;
      } else {
        evil.corrupt_payload = true;
      }
      schedule.push_back(evil);
    }
    if (!drop) {
      schedule.push_back({idx});
      if (rng.uniform(100) < 30) schedule.push_back({idx, false, false});
    }
  }

  std::uint64_t rejects = 0;
  for (const Delivery& d : schedule) {
    const std::uint64_t off = chunk_offset(d.index, chunk_bytes);
    const std::uint64_t len = chunk_size_at(payload.size(), d.index, chunk_bytes);
    Bytes piece(payload.begin() + static_cast<std::ptrdiff_t>(off),
                payload.begin() + static_cast<std::ptrdiff_t>(off + len));
    // The digest always describes the sender's (clean) bytes; payload
    // corruption happens in flight, after the digest was computed.
    Digest128 cd = digest128(piece);
    if (d.corrupt_payload) piece[rng.uniform(piece.size())] ^= 0x5a;
    if (d.corrupt_digest) cd.lo ^= 1;
    auto r = store.add_chunk(digest, d.index, cd, piece);
    if (d.corrupt_digest || d.corrupt_payload) {
      // A corrupted delivery may only ever be rejected or (if the clean
      // copy landed first and completed the blob / set the bit) reported
      // as duplicate of verified data. Sneaking bad bytes in is the bug.
      if (r.is_ok()) {
        EXPECT_EQ(r.value(), BlobStore::ChunkAdd::duplicate);
      } else {
        EXPECT_EQ(r.code(), Errc::corrupt);
        ++rejects;
      }
      continue;
    }
    ASSERT_TRUE(r.is_ok()) << r.message();
  }

  const bool all_delivered =
      std::none_of(dropped.begin(), dropped.end(), [](bool d) { return d; });
  auto found = store.find(digest);
  if (all_delivered) {
    // Complete delivery must promote to a real store entry with the
    // original bytes, regardless of order/duplicates/corrupt copies.
    ASSERT_TRUE(found.has_value());
    auto data = store.get(*found);
    ASSERT_TRUE(data.is_ok());
    EXPECT_TRUE(std::equal(data.value().begin(), data.value().end(),
                           payload.begin(), payload.end()));
    EXPECT_EQ(store.partial(digest), nullptr);
  } else {
    // Incomplete must stay incomplete — and say exactly which chunks are
    // missing so repair can request them.
    EXPECT_FALSE(found.has_value());
    auto missing = store.missing_chunks(digest, total);
    std::vector<std::uint32_t> expected;
    for (std::uint32_t i = 0; i < total; ++i) {
      if (dropped[i]) expected.push_back(i);
    }
    EXPECT_EQ(missing, expected);
    // Feeding the missing chunks afterwards completes it (repair path).
    for (std::uint32_t idx : expected) {
      const std::uint64_t off = chunk_offset(idx, chunk_bytes);
      const std::uint64_t len = chunk_size_at(payload.size(), idx, chunk_bytes);
      Bytes piece(payload.begin() + static_cast<std::ptrdiff_t>(off),
                  payload.begin() + static_cast<std::ptrdiff_t>(off + len));
      ASSERT_TRUE(store.add_chunk(digest, idx, digest128(piece), piece).is_ok());
    }
    ASSERT_TRUE(store.find(digest).has_value());
  }
  (void)rejects;
}

TEST(ChunkProperty, GeometryHelpersPartitionTheBlob) {
  for (std::uint64_t size : {1ull, 7ull, 4096ull, 4097ull, 1048576ull}) {
    for (std::uint32_t cb : {1u, 7u, 256u, 4096u}) {
      const std::uint64_t total = chunk_count(size, cb);
      EXPECT_EQ(total, (size + cb - 1) / cb);
      std::uint64_t covered = 0;
      for (std::uint32_t i = 0; i < total; ++i) {
        EXPECT_EQ(chunk_offset(i, cb), static_cast<std::uint64_t>(i) * cb);
        covered += chunk_size_at(size, i, cb);
      }
      EXPECT_EQ(covered, size) << size << "/" << cb;
      EXPECT_EQ(chunk_size_at(size, static_cast<std::uint32_t>(total), cb), 0u);
    }
  }
  EXPECT_EQ(chunk_count(0, 4096), 0u);
  EXPECT_EQ(chunk_count(4096, 0), 0u);
}

// The shrinking sweep: smallest configurations first, many seeds each. A
// regression fails earliest at its minimal (chunk count, chunk size) pair.
TEST(ChunkProperty, RandomSchedulesReassembleOrReportIncomplete) {
  struct Config {
    std::size_t payload;
    std::uint32_t chunk_bytes;
  };
  const Config sweep[] = {
      {1, 1},      {2, 1},     {3, 2},      {7, 3},       {16, 4},
      {65, 16},    {256, 16},  {1000, 64},  {4096, 256},  {4097, 256},
      {10000, 512}, {65536, 4096},
  };
  for (const Config& cfg : sweep) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      run_schedule(seed * 1000003, cfg.payload, cfg.chunk_bytes);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(ChunkProperty, WrongWholeBlobHashNeverPromotes) {
  // Chunks that individually verify but don't hash to the declared blob
  // digest (a malicious sender inventing self-consistent chunks) must be
  // rejected at promotion, resetting the partial instead of accepting.
  Rng rng(99);
  Bytes real = deterministic_payload(rng, 1000);
  Bytes fake = real;
  fake[500] ^= 0xff;
  const Digest128 claimed = digest128(real);
  const std::uint32_t cb = 256;
  BlobStore store;
  ASSERT_TRUE(store.begin_partial(claimed, fake.size(), MediaType::other, cb)
                  .expect("begin"));
  const std::uint32_t total =
      static_cast<std::uint32_t>(chunk_count(fake.size(), cb));
  Result<BlobStore::ChunkAdd> last{BlobStore::ChunkAdd::accepted};
  for (std::uint32_t i = 0; i < total; ++i) {
    const std::uint64_t off = chunk_offset(i, cb);
    const std::uint64_t len = chunk_size_at(fake.size(), i, cb);
    Bytes piece(fake.begin() + static_cast<std::ptrdiff_t>(off),
                fake.begin() + static_cast<std::ptrdiff_t>(off + len));
    last = store.add_chunk(claimed, i, digest128(piece), piece);
  }
  // The final chunk triggers whole-blob verification, which must fail...
  EXPECT_FALSE(last.is_ok());
  EXPECT_EQ(last.code(), Errc::corrupt);
  // ...without registering the forged bytes.
  EXPECT_FALSE(store.find(claimed).has_value());
  // The partial survives (reset), so an honest sender can still complete it.
  ASSERT_NE(store.partial(claimed), nullptr);
  EXPECT_EQ(store.missing_chunks(claimed, total).size(), total);
  for (std::uint32_t i = 0; i < total; ++i) {
    const std::uint64_t off = chunk_offset(i, cb);
    const std::uint64_t len = chunk_size_at(real.size(), i, cb);
    Bytes piece(real.begin() + static_cast<std::ptrdiff_t>(off),
                real.begin() + static_cast<std::ptrdiff_t>(off + len));
    ASSERT_TRUE(store.add_chunk(claimed, i, digest128(piece), piece).is_ok());
  }
  EXPECT_TRUE(store.find(claimed).has_value());
}

TEST(ChunkProperty, SyntheticChunksAssembleSizeOnlyBlobs) {
  // Simulation-scale blobs: no payload bytes, synthetic per-chunk digests.
  const Digest128 digest = digest128("synthetic 10MB video");
  const std::uint64_t size = 10 << 20;
  const std::uint32_t cb = 256 * 1024;
  const std::uint32_t total = static_cast<std::uint32_t>(chunk_count(size, cb));
  BlobStore store;
  ASSERT_TRUE(store.begin_partial(digest, size, MediaType::video, cb).expect("begin"));
  // Wrong synthetic digest rejected.
  auto bad = store.add_chunk(digest, 0, synthetic_chunk_digest(digest, 1), {});
  EXPECT_EQ(bad.code(), Errc::corrupt);
  // Out-of-range index rejected.
  auto oob = store.add_chunk(digest, total, synthetic_chunk_digest(digest, total), {});
  EXPECT_EQ(oob.code(), Errc::corrupt);
  for (std::uint32_t i = 0; i < total; ++i) {
    auto r = store.add_chunk(digest, i, synthetic_chunk_digest(digest, i), {});
    ASSERT_TRUE(r.is_ok()) << i << ": " << r.message();
    EXPECT_EQ(r.value(), i + 1 == total ? BlobStore::ChunkAdd::completed
                                        : BlobStore::ChunkAdd::accepted);
  }
  auto found = store.find(digest);
  ASSERT_TRUE(found.has_value());
  const BlobInfo* info = store.info(*found);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->size, size);
  EXPECT_FALSE(info->resident);
  EXPECT_EQ(info->refs, 0u);  // buffer space until an instance claims it
}

}  // namespace
}  // namespace wdoc::blob

// obs::RequestTracer: deterministic head sampling, tail-based promotion,
// SpanScope parent chains, per-request span caps, and byte-identical
// same-seed Perfetto exports of the promoted trace set.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/request_trace.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

using namespace wdoc;
using namespace wdoc::obs;

namespace {

RequestTraceConfig config_with(double head_rate, std::int64_t tail_micros,
                               std::uint64_t seed = 0x7ace) {
  RequestTraceConfig cfg;
  cfg.head_sample_rate = head_rate;
  cfg.tail_latency_micros = tail_micros;
  cfg.seed = seed;
  return cfg;
}

// Runs `n` fast requests and returns the promoted trace ids, in order.
std::vector<std::uint64_t> promoted_ids(const RequestTraceConfig& cfg, int n) {
  auto& rt = RequestTracer::global();
  rt.configure(cfg);
  Tracer::global().clear();
  std::vector<std::uint64_t> out;
  for (int i = 0; i < n; ++i) {
    TraceContext ctx = rt.start_request("GET /x", SimTime::micros(i * 10));
    if (rt.finish_request(ctx, SimTime::micros(i * 10 + 1), /*error=*/false)) {
      out.push_back(ctx.trace_id);
    }
  }
  Tracer::global().clear();
  return out;
}

TEST(RequestTracer, HeadSamplingIsDeterministicPerSeed) {
  auto a = promoted_ids(config_with(0.25, 1'000'000), 400);
  auto b = promoted_ids(config_with(0.25, 1'000'000), 400);
  EXPECT_EQ(a, b) << "same seed must promote the identical trace set";
  EXPECT_GT(a.size(), 40u);   // ~100 expected at 25%
  EXPECT_LT(a.size(), 180u);

  auto c = promoted_ids(config_with(0.25, 1'000'000, /*seed=*/99), 400);
  EXPECT_NE(a, c) << "a different seed must flip different coins";

  EXPECT_TRUE(promoted_ids(config_with(0.0, 1'000'000), 100).empty());
  EXPECT_EQ(promoted_ids(config_with(1.0, 1'000'000), 100).size(), 100u);
}

TEST(RequestTracer, HeadVerdictIsPureFunctionOfTraceId) {
  auto& rt = RequestTracer::global();
  rt.configure(config_with(0.5, 1'000'000));
  TraceContext ctx = rt.mint();
  // Re-asking later (e.g. a remote station reproducing the coin) agrees.
  EXPECT_EQ(rt.head_sampled(ctx.trace_id), ctx.sampled);
  EXPECT_EQ(rt.head_sampled(ctx.trace_id), rt.head_sampled(ctx.trace_id));
}

TEST(RequestTracer, TailLatencyPromotesSlowRequests) {
  auto& rt = RequestTracer::global();
  rt.configure(config_with(0.0, /*tail_micros=*/5'000));
  Tracer::global().clear();

  TraceContext fast = rt.start_request("GET /fast", SimTime::micros(0));
  EXPECT_FALSE(rt.finish_request(fast, SimTime::micros(4'999), false));
  EXPECT_EQ(Tracer::global().span_count(), 0u);

  TraceContext slow = rt.start_request("GET /slow", SimTime::micros(0));
  EXPECT_TRUE(rt.finish_request(slow, SimTime::micros(5'000), false));
  auto spans = Tracer::global().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].trace_id, slow.trace_id);
  EXPECT_EQ(spans[0].name, "GET /slow");
  EXPECT_TRUE(spans[0].finished);
  Tracer::global().clear();
}

TEST(RequestTracer, ErrorsArePromotedRegardlessOfLatency) {
  auto& rt = RequestTracer::global();
  rt.configure(config_with(0.0, 1'000'000));
  Tracer::global().clear();
  TraceContext ctx = rt.start_request("GET /boom", SimTime::micros(0));
  EXPECT_TRUE(rt.finish_request(ctx, SimTime::micros(1), /*error=*/true));
  EXPECT_EQ(Tracer::global().span_count(), 1u);
  Tracer::global().clear();
}

TEST(RequestTracer, PromotionReasonPrecedenceIsHeadFirst) {
  // A head-sampled slow error counts once, as reason=head — that keeps the
  // head counter an exact function of (seed, request count) for CI.
  auto& rt = RequestTracer::global();
  auto& reg = MetricsRegistry::global();
  auto& head = reg.counter("obs.trace.promoted", {{"reason", "head"}});
  auto& err = reg.counter("obs.trace.promoted", {{"reason", "error"}});
  auto& tail = reg.counter("obs.trace.promoted", {{"reason", "tail_latency"}});
  rt.configure(config_with(1.0, /*tail_micros=*/1));
  Tracer::global().clear();

  const auto head0 = head.value();
  const auto err0 = err.value();
  const auto tail0 = tail.value();
  TraceContext ctx = rt.start_request("GET /slow-error", SimTime::micros(0));
  EXPECT_TRUE(rt.finish_request(ctx, SimTime::micros(100), /*error=*/true));
  EXPECT_EQ(head.value(), head0 + 1);
  EXPECT_EQ(err.value(), err0);
  EXPECT_EQ(tail.value(), tail0);
  Tracer::global().clear();
}

TEST(RequestTracer, SpanScopeNestsUnderAmbientContext) {
  auto& rt = RequestTracer::global();
  rt.configure(config_with(1.0, 1'000'000));
  Tracer::global().clear();

  TraceContext ctx = rt.start_request("GET /nested", SimTime::micros(0));
  std::uint64_t outer_id = 0;
  std::uint64_t inner_id = 0;
  {
    SpanScope outer("outer", SimTime::micros(1));
    outer_id = RequestTracer::current().span_id;
    {
      SpanScope inner("inner", SimTime::micros(2));
      inner_id = RequestTracer::current().span_id;
      inner.end(SimTime::micros(3));
    }
    // Parent chain restored after the inner scope closed.
    EXPECT_EQ(RequestTracer::current().span_id, outer_id);
    outer.end(SimTime::micros(4));
  }
  EXPECT_EQ(RequestTracer::current().span_id, ctx.span_id);
  ASSERT_TRUE(rt.finish_request(ctx, SimTime::micros(5), false));

  auto spans = Tracer::global().spans();
  ASSERT_EQ(spans.size(), 3u);  // root + outer + inner
  EXPECT_EQ(spans[0].name, "GET /nested");
  EXPECT_EQ(spans[1].id, outer_id);
  EXPECT_EQ(spans[1].parent, spans[0].id);
  EXPECT_EQ(spans[2].id, inner_id);
  EXPECT_EQ(spans[2].parent, outer_id);
  for (const auto& s : spans) {
    EXPECT_EQ(s.trace_id, ctx.trace_id);
    EXPECT_TRUE(s.finished);
  }
  Tracer::global().clear();
}

TEST(RequestTracer, SpanScopeIsNoopOutsideARequest) {
  auto& rt = RequestTracer::global();
  rt.configure(config_with(1.0, 1'000'000));
  Tracer::global().clear();
  EXPECT_FALSE(RequestTracer::current().active());
  SpanScope scope("orphan", SimTime::micros(1));
  EXPECT_FALSE(scope.active());
  scope.end(SimTime::micros(2));
  EXPECT_EQ(Tracer::global().span_count(), 0u);
  EXPECT_EQ(rt.begin_span("orphan2", SimTime::micros(3)), 0u);
}

TEST(RequestTracer, PerRequestSpanCapCountsProvisionalDrops) {
  auto& rt = RequestTracer::global();
  RequestTraceConfig cfg = config_with(1.0, 1'000'000);
  cfg.max_spans_per_request = 4;  // root + 3 children
  rt.configure(cfg);
  Tracer::global().clear();
  auto& dropped =
      MetricsRegistry::global().counter("obs.trace.provisional_dropped");
  const auto dropped0 = dropped.value();

  TraceContext ctx = rt.start_request("GET /fanout", SimTime::micros(0));
  int recorded = 0;
  for (int i = 0; i < 10; ++i) {
    std::uint64_t id = rt.begin_span("child", SimTime::micros(i + 1));
    if (id != 0) {
      ++recorded;
      rt.end_span(id, SimTime::micros(i + 2));
    }
  }
  EXPECT_EQ(recorded, 3);
  ASSERT_TRUE(rt.finish_request(ctx, SimTime::micros(50), false));
  EXPECT_EQ(Tracer::global().span_count(), 4u);
  EXPECT_EQ(dropped.value(), dropped0 + 7);
  Tracer::global().clear();
}

TEST(RequestTracer, SameSeedExportsAreByteIdentical) {
  auto run = [](std::uint64_t seed) {
    auto& rt = RequestTracer::global();
    rt.configure(config_with(0.3, /*tail_micros=*/500, seed));
    Tracer::global().clear();
    for (int i = 0; i < 50; ++i) {
      TraceContext ctx =
          rt.start_request("GET /r" + std::to_string(i % 4), SimTime::micros(i * 100));
      SpanScope child("work", SimTime::micros(i * 100 + 10));
      child.end(SimTime::micros(i * 100 + 20));
      // Every 7th request is slow enough for tail promotion.
      const std::int64_t latency = (i % 7 == 0) ? 600 : 90;
      (void)rt.finish_request(ctx, SimTime::micros(i * 100 + latency), false);
    }
    std::string json = to_chrome_trace(Tracer::global().drain());
    return json;
  };
  std::string a = run(0xabc);
  std::string b = run(0xabc);
  EXPECT_EQ(a, b) << "same seed, same explicit clock -> identical export";
  // Promoted trace ids appear in the export (raw, not rebased).
  EXPECT_NE(a.find("\"trace\":"), std::string::npos);
  std::string c = run(0xdef);
  EXPECT_NE(a, c);
}

TEST(RequestTracer, LeakedRequestIsDiscardedByNextStart) {
  auto& rt = RequestTracer::global();
  rt.configure(config_with(1.0, 1'000'000));
  Tracer::global().clear();
  TraceContext leaked = rt.start_request("GET /leaked", SimTime::micros(0));
  ASSERT_TRUE(leaked.active());
  // A new request on the same thread discards the stale buffer wholesale.
  TraceContext fresh = rt.start_request("GET /fresh", SimTime::micros(10));
  EXPECT_TRUE(rt.finish_request(fresh, SimTime::micros(11), false));
  // Only the fresh request's root was promoted.
  auto spans = Tracer::global().spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "GET /fresh");
  // Finishing the leaked context after the fact is a counted no-op.
  EXPECT_FALSE(rt.finish_request(leaked, SimTime::micros(20), false));
  Tracer::global().clear();
}

}  // namespace

// Swarm distribution (DESIGN.md §4f): stripe-tree construction invariants,
// deterministic gossip neighbor selection, rarest-first scheduling rules,
// and end-to-end swarm pushes on the simulator — delivery everywhere,
// makespan against the VoD bandwidth lower bound, zero-copy relay, and
// byte-identical same-seed reruns.
#include <gtest/gtest.h>

#include <set>

#include "dist/station_node.hpp"
#include "net/sim_network.hpp"
#include "swarm/gossip.hpp"
#include "swarm/scheduler.hpp"
#include "swarm/stripe_tree.hpp"

namespace wdoc::swarm {
namespace {

// --- stripe trees ------------------------------------------------------------

TEST(StripeTree, ParentChildInverseHoldsExhaustively) {
  for (std::uint64_t n : {2ull, 3ull, 15ull, 63ull, 64ull}) {
    for (std::uint64_t m : {1ull, 2ull, 3ull}) {
      for (std::uint32_t trees = 1; trees <= 3; ++trees) {
        for (std::uint64_t k = 1; k <= n; ++k) {
          for (std::uint32_t t = 0; t < trees; ++t) {
            for (std::uint64_t c : stripe_children(k, t, trees, m, n)) {
              ASSERT_GE(c, 2u);
              ASSERT_LE(c, n);
              auto p = stripe_parent(c, t, trees, m, n);
              ASSERT_TRUE(p.has_value());
              EXPECT_EQ(*p, k) << "n=" << n << " m=" << m << " trees=" << trees
                               << " tree=" << t << " child=" << c;
            }
          }
        }
      }
    }
  }
}

TEST(StripeTree, RootHasExactlyOneChildPerTree) {
  // The root's uplink must carry each chunk once regardless of the stripe
  // count — one head per tree, all heads distinct (when the ring allows).
  const std::uint64_t n = 63;
  std::set<std::uint64_t> heads;
  for (std::uint32_t t = 0; t < 3; ++t) {
    auto kids = stripe_children(1, t, 3, 2, n);
    ASSERT_EQ(kids.size(), 1u) << "tree " << t;
    heads.insert(kids[0]);
  }
  EXPECT_EQ(heads.size(), 3u);
}

TEST(StripeTree, EveryStationReachesRootInEveryTree) {
  const std::uint64_t n = 63, m = 2;
  const std::uint32_t trees = 2;
  for (std::uint32_t t = 0; t < trees; ++t) {
    for (std::uint64_t k = 2; k <= n; ++k) {
      std::uint64_t cur = k;
      std::uint64_t hops = 0;
      while (cur != 1) {
        auto p = stripe_parent(cur, t, trees, m, n);
        ASSERT_TRUE(p.has_value()) << "tree " << t << " pos " << cur;
        cur = *p;
        ASSERT_LE(++hops, n) << "parent chain cycles in tree " << t;
      }
    }
  }
}

TEST(StripeTree, RotationMakesInteriorSetsDiffer) {
  // The point of striping: a station interior in tree 0 should mostly be a
  // leaf in tree 1, so uplink work spreads. Count positions interior in
  // both trees — with a half-ring rotation that overlap must be small.
  const std::uint64_t n = 63, m = 2;
  std::uint64_t both = 0, interior0 = 0;
  for (std::uint64_t k = 2; k <= n; ++k) {
    const bool i0 = !stripe_children(k, 0, 2, m, n).empty();
    const bool i1 = !stripe_children(k, 1, 2, m, n).empty();
    interior0 += i0;
    both += i0 && i1;
  }
  ASSERT_GT(interior0, 20u);
  EXPECT_LT(both, interior0 / 2) << "stripe trees overlap too much";
}

// --- gossip neighbors --------------------------------------------------------

TEST(Gossip, NeighborsAreDeterministicBoundedAndExcludeSelf) {
  const std::uint64_t n = 63, m = 2, seed = 0xfeed;
  for (std::uint64_t k = 1; k <= n; ++k) {
    auto a = gossip_neighbors(k, m, n, 2, 2, seed);
    auto b = gossip_neighbors(k, m, n, 2, 2, seed);
    EXPECT_EQ(a, b);
    EXPECT_FALSE(a.empty());
    // Tree relations across 2 trees plus extras: parent+siblings+children
    // per tree ~ (1 + m + m) * trees + extras.
    EXPECT_LE(a.size(), (1 + 2 * m) * 2 + 2) << "position " << k;
    for (std::uint64_t nb : a) {
      EXPECT_NE(nb, k);
      EXPECT_GE(nb, 1u);
      EXPECT_LE(nb, n);
    }
    EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  }
}

TEST(Gossip, TreeLinksAreSymmetric) {
  // Stripe-tree relations must appear from both ends (extras are allowed
  // to be one-sided; the receiver adopts on first contact).
  const std::uint64_t n = 31, m = 2, seed = 7;
  for (std::uint64_t k = 2; k <= n; ++k) {
    for (std::uint32_t t = 0; t < 2; ++t) {
      auto p = stripe_parent(k, t, 2, m, n);
      ASSERT_TRUE(p.has_value());
      auto mine = gossip_neighbors(k, m, n, 2, 0, seed);
      auto theirs = gossip_neighbors(*p, m, n, 2, 0, seed);
      EXPECT_TRUE(std::binary_search(mine.begin(), mine.end(), *p));
      EXPECT_TRUE(std::binary_search(theirs.begin(), theirs.end(), k));
    }
  }
}

// --- scheduler ---------------------------------------------------------------

SwarmConfig sched_config() {
  SwarmConfig cfg;
  cfg.enabled = true;
  cfg.trees = 2;
  cfg.link_window = 2;
  cfg.request_batch = 8;
  // Pinned so the timing assertions below don't drift with the defaults.
  cfg.stall_timeout = SimTime::millis(750);
  cfg.startup_grace = SimTime::seconds(3.0);
  return cfg;
}

TEST(Scheduler, RarestFirstPicksTheScarceChunk) {
  auto cfg = sched_config();
  SwarmScheduler s(8, cfg, 42, SimTime::zero());
  // No stripe parents set: every tree counts as stalled, pulls are free.
  s.add_peer(2);
  s.add_peer(3);
  Bitmap common(8);
  for (std::uint32_t g = 0; g < 8; ++g) common.set(g);
  Bitmap rare(8);
  rare.set(5);
  s.peer_update(2, common.words());
  s.peer_update(3, rare.words());
  auto plans = s.plan(SimTime::seconds(10));
  ASSERT_FALSE(plans.empty());
  // Chunk 5 is held by both peers (availability 2), everything else only
  // by peer 2 (availability 1). The availability-1 chunks are planned
  // first and fill peer 2's window; chunk 5 then lands on peer 3, the only
  // chunk it can serve — 3 chunks in flight total.
  std::set<std::uint32_t> planned;
  bool five_on_peer3 = false;
  for (const auto& p : plans) {
    for (std::uint32_t g : p.chunks) {
      planned.insert(g);
      if (p.peer == 3 && g == 5) five_on_peer3 = true;
    }
  }
  EXPECT_EQ(planned.size(), 3u);
  EXPECT_EQ(s.in_flight(), 3u);
  EXPECT_TRUE(planned.contains(5));
  EXPECT_TRUE(five_on_peer3);
}

TEST(Scheduler, InFlightChunksAreNeverReplanned) {
  auto cfg = sched_config();
  SwarmScheduler s(4, cfg, 42, SimTime::zero());
  s.add_peer(2);
  Bitmap all(4);
  for (std::uint32_t g = 0; g < 4; ++g) all.set(g);
  s.peer_update(2, all.words());
  auto first = s.plan(SimTime::seconds(10));
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].chunks.size(), 2u);  // link_window
  // Same instant: everything plannable is in flight, nothing new.
  auto second = s.plan(SimTime::seconds(10));
  EXPECT_TRUE(second.empty());
  // Past the request timeout the requests expire and re-plan.
  auto third = s.plan(SimTime::seconds(10) + cfg.request_timeout + SimTime::millis(1));
  ASSERT_EQ(third.size(), 1u);
  EXPECT_EQ(third[0].chunks.size(), 2u);
}

TEST(Scheduler, StallGatingSuppressesPullsWhileThePipelineFlows) {
  auto cfg = sched_config();
  SwarmScheduler s(8, cfg, 42, SimTime::zero());
  s.set_stripe_parent(0, 5);
  s.set_stripe_parent(1, 9);
  s.add_peer(2);
  Bitmap all(8);
  for (std::uint32_t g = 0; g < 8; ++g) all.set(g);
  s.peer_update(2, all.words());
  // Fresh progress on both trees: nothing is stalled, nothing is pulled.
  s.mark_have(0, SimTime::millis(100));  // tree 0
  s.mark_have(1, SimTime::millis(100));  // tree 1
  EXPECT_TRUE(s.plan(SimTime::millis(200)).empty());
  // Tree 1 goes quiet past the stall timeout; only its chunks (odd g) are
  // pulled, tree 0 keeps riding the pipeline.
  s.mark_have(2, SimTime::seconds(1.2));  // tree 0 still progressing
  auto plans = s.plan(SimTime::seconds(1.9));  // tree 1 quiet for 1.8s
  ASSERT_EQ(plans.size(), 1u);
  for (std::uint32_t g : plans[0].chunks) {
    EXPECT_EQ(stripe_of(g, 2), 1u) << "pulled a chunk of a healthy tree";
  }
  EXPECT_FALSE(plans[0].chunks.empty());
}

TEST(Scheduler, MarkHaveClearsFlightAndTracksCompletion) {
  auto cfg = sched_config();
  SwarmScheduler s(4, cfg, 42, SimTime::zero());
  s.add_peer(2);
  Bitmap all(4);
  for (std::uint32_t g = 0; g < 4; ++g) all.set(g);
  s.peer_update(2, all.words());
  (void)s.plan(SimTime::seconds(10));
  EXPECT_EQ(s.in_flight(), 2u);
  EXPECT_TRUE(s.mark_have(0, SimTime::seconds(11)));
  EXPECT_FALSE(s.mark_have(0, SimTime::seconds(11)));  // duplicate
  for (std::uint32_t g = 1; g < 4; ++g) s.mark_have(g, SimTime::seconds(11));
  EXPECT_EQ(s.in_flight(), 0u);  // arrivals settle every outstanding request
  EXPECT_TRUE(s.complete());
  EXPECT_TRUE(s.peers_complete());
}

}  // namespace
}  // namespace wdoc::swarm

// --- end-to-end swarm pushes -------------------------------------------------

namespace wdoc::dist {
namespace {

constexpr net::StationLink kCampus1999{10e6, 10e6, SimTime::millis(15), 0.0};

class Cluster {
 public:
  Cluster(std::size_t n, std::uint64_t m, StationConfig config, std::uint64_t seed = 4242)
      : net_(seed) {
    net_.reserve_stations(n);
    for (std::size_t i = 0; i < n; ++i) {
      StationId id = net_.add_station(kCampus1999);
      ids_.push_back(id);
      blobs_.push_back(std::make_unique<blob::BlobStore>());
      stores_.push_back(std::make_unique<ObjectStore>(*blobs_.back()));
      nodes_.push_back(std::make_unique<StationNode>(net_, id, *stores_.back(), config));
      nodes_.back()->bind();
    }
    auto shared = std::make_shared<const std::vector<StationId>>(ids_);
    for (auto& node : nodes_) node->set_tree(shared, m);
  }

  [[nodiscard]] StationNode& node(std::size_t i) { return *nodes_[i]; }
  [[nodiscard]] ObjectStore& store(std::size_t i) { return *stores_[i]; }
  [[nodiscard]] net::SimNetwork& net() { return net_; }
  [[nodiscard]] std::size_t size() const { return ids_.size(); }

 private:
  net::SimNetwork net_;
  std::vector<StationId> ids_;
  std::vector<std::unique_ptr<blob::BlobStore>> blobs_;
  std::vector<std::unique_ptr<ObjectStore>> stores_;
  std::vector<std::unique_ptr<StationNode>> nodes_;
};

DocManifest ten_mb_lecture(StationId home) {
  DocManifest m;
  m.doc_key = "http://mmu.edu/cs500/swarm-lecture";
  m.structure_bytes = 64 << 10;
  m.home = home;
  BlobRef video;
  video.digest = digest128("cs500 swarm lecture video");
  video.size = 10 << 20;
  video.type = blob::MediaType::video;
  m.blobs.push_back(video);
  return m;
}

StationConfig swarm_config() {
  StationConfig cfg;
  cfg.swarm.enabled = true;
  cfg.swarm.trees = 2;
  return cfg;
}

TEST(SwarmPush, DeliversEverywhereWithinTheBandwidthBound) {
  StationConfig cfg = swarm_config();
  Cluster c(63, 2, cfg);
  auto doc = ten_mb_lecture(c.node(0).id());
  ASSERT_TRUE(c.node(0).broadcast_push(doc).is_ok());
  c.net().run();

  double makespan = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    ASSERT_TRUE(c.store(i).has_materialized(doc.doc_key)) << "station " << i;
    makespan = std::max(makespan, c.node(i).last_delivery().as_seconds());
    EXPECT_EQ(c.node(i).pending_rpcs(), 0u) << "station " << i;
    EXPECT_EQ(c.node(i).active_transfers(), 0u)
        << "station " << i << ": swarm gossip failed to terminate";
  }
  // The VoD lower bound for homogeneous links: every station's downlink
  // must carry the whole blob once, B * 8 / C = 8.39 s at 10 MB / 10 Mb/s.
  const double bound_s = (10 << 20) * 8.0 / 10e6;
  EXPECT_GE(makespan, bound_s);
  EXPECT_LE(makespan, 1.5 * bound_s)
      << "swarm makespan " << makespan << "s vs bound " << bound_s << "s";
}

TEST(SwarmPush, BeatsSingleTreePipelineAtDepth) {
  // Same cluster and lecture, swarm off vs on: the stripe forest must not
  // be slower than the single-tree pipeline (leaves' uplinks now work).
  auto run = [](bool swarm) {
    StationConfig cfg;
    cfg.swarm.enabled = swarm;
    cfg.swarm.trees = 2;
    Cluster c(63, 2, cfg);
    auto doc = ten_mb_lecture(c.node(0).id());
    EXPECT_TRUE(c.node(0).broadcast_push(doc).is_ok());
    c.net().run();
    double makespan = 0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_TRUE(c.store(i).has_materialized(doc.doc_key)) << "station " << i;
      makespan = std::max(makespan, c.node(i).last_delivery().as_seconds());
    }
    return makespan;
  };
  const double pipelined = run(false);
  const double swarmed = run(true);
  EXPECT_LE(swarmed, pipelined * 1.05)
      << "swarm=" << swarmed << "s pipelined=" << pipelined << "s";
}

TEST(SwarmPush, RealPayloadSwarmRelayIsZeroCopy) {
  StationConfig cfg = swarm_config();
  Cluster c(15, 2, cfg);
  Bytes video(2 << 20);
  for (std::size_t i = 0; i < video.size(); ++i) {
    video[i] = static_cast<std::uint8_t>(i * 2654435761u >> 13);
  }
  DocManifest doc;
  doc.doc_key = "http://mmu.edu/cs500/real-swarm-lecture";
  doc.structure_bytes = 4 << 10;
  doc.home = c.node(0).id();
  BlobRef ref;
  ref.digest = digest128(video);
  ref.size = video.size();
  ref.type = blob::MediaType::video;
  doc.blobs.push_back(ref);
  auto id = c.store(0).blobs().put(video, blob::MediaType::video).expect("put");
  (void)c.store(0).blobs().release(id);

  const std::uint64_t copied_before = net::Payload::bytes_copied_total();
  ASSERT_TRUE(c.node(0).broadcast_push(doc).is_ok());
  c.net().run();
  const std::uint64_t copied = net::Payload::bytes_copied_total() - copied_before;

  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_TRUE(c.store(i).has_materialized(doc.doc_key)) << "station " << i;
    EXPECT_TRUE(c.store(i).blobs().find(ref.digest).has_value()) << "station " << i;
  }
  // Stripe relays, gossip-triggered serves, duplicate receives — none of
  // it may deep-copy payload bytes. Same contract as the single tree.
  EXPECT_EQ(copied, 0u);
}

TEST(SwarmPush, SameSeedSwarmPushIsByteDeterministic) {
  auto journal = [] {
    StationConfig cfg = swarm_config();
    Cluster c(63, 2, cfg);
    auto doc = ten_mb_lecture(c.node(0).id());
    EXPECT_TRUE(c.node(0).broadcast_push(doc).is_ok());
    c.net().run();
    std::string out;
    for (std::size_t i = 0; i < c.size(); ++i) {
      const NodeStats& st = c.node(i).stats();
      out += std::to_string(i) + ":" + std::to_string(st.chunks_sent) + "/" +
             std::to_string(st.chunks_received) + "/" +
             std::to_string(st.chunk_duplicate_rx) + "/" +
             std::to_string(st.swarm_haves_sent) + "/" +
             std::to_string(st.swarm_reqs_sent) + "/" +
             std::to_string(st.swarm_chunks_served) + "/" +
             std::to_string(st.chunk_bytes_sent) + ";";
    }
    out += "t=" + std::to_string(c.net().now().as_micros());
    return out;
  };
  const std::string a = journal();
  const std::string b = journal();
  EXPECT_EQ(a, b);
}

TEST(SwarmPush, DuplicateReceivesAreAccounted) {
  // Whatever duplicates the swarm produces must show up in the new
  // counters, wasted bytes consistent with duplicate count x chunk size.
  StationConfig cfg = swarm_config();
  Cluster c(63, 2, cfg);
  auto doc = ten_mb_lecture(c.node(0).id());
  ASSERT_TRUE(c.node(0).broadcast_push(doc).is_ok());
  c.net().run();
  std::uint64_t dup = 0, wasted = 0, received = 0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    dup += c.node(i).stats().chunk_duplicate_rx;
    wasted += c.node(i).stats().chunk_wasted_bytes;
    received += c.node(i).stats().chunks_received;
  }
  EXPECT_EQ(received, 62u * 40u);  // every station exactly one full blob
  EXPECT_LE(wasted, dup * cfg.chunk.chunk_bytes);
  // Duplicate overhead must stay a small fraction of useful traffic.
  EXPECT_LE(dup, received / 10) << "dup=" << dup << " received=" << received;
}

TEST(SwarmPush, LossyLinksSelfHealAndTerminate) {
  // 10% message loss on every link (the CI chaos-matrix smoke): dropped
  // relays starve stripe trees at random, the stall gate trips, and the
  // pull path must refill every hole — all stations materialized, every
  // transfer retired, no RPC leaked.
  constexpr net::StationLink kLossyCampus{10e6, 10e6, SimTime::millis(15), 0.1};
  StationConfig cfg = swarm_config();
  net::SimNetwork net(4242);
  const std::size_t n = 63;
  net.reserve_stations(n);
  std::vector<StationId> ids;
  std::vector<std::unique_ptr<blob::BlobStore>> blobs;
  std::vector<std::unique_ptr<ObjectStore>> stores;
  std::vector<std::unique_ptr<StationNode>> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(net.add_station(kLossyCampus));
    blobs.push_back(std::make_unique<blob::BlobStore>());
    stores.push_back(std::make_unique<ObjectStore>(*blobs.back()));
    nodes.push_back(std::make_unique<StationNode>(net, ids.back(), *stores.back(), cfg));
    nodes.back()->bind();
  }
  auto shared = std::make_shared<const std::vector<StationId>>(ids);
  for (auto& node : nodes) node->set_tree(shared, 2);
  auto doc = ten_mb_lecture(ids[0]);
  stores[0]->put_instance(doc, /*ephemeral=*/false).expect("instructor copy");
  ASSERT_TRUE(nodes[0]->broadcast_push(doc).is_ok());
  net.run();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(stores[i]->has_materialized(doc.doc_key)) << "station " << i;
    EXPECT_EQ(nodes[i]->active_transfers(), 0u)
        << "station " << i << ": transfer failed to retire under loss";
  }
}

}  // namespace
}  // namespace wdoc::dist

// Model-based property tests for the storage engine:
//   * randomized insert/update/erase streams against a reference map, with
//     FK cascade semantics cross-checked structurally;
//   * WAL corruption fuzzing: flip any byte, recovery must never crash and
//     must yield a prefix of the committed history;
//   * snapshot round-trip equivalence under random content.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <map>

#include "common/rng.hpp"
#include "storage/txn.hpp"
#include "storage/wal.hpp"

namespace wdoc::storage {
namespace {

namespace fs = std::filesystem;

Schema people_schema() {
  return Schema("people",
                {Column{"name", ValueType::text, false, false, false},
                 Column{"age", ValueType::integer, true, false, true},
                 Column{"bio", ValueType::text, true, false, false}},
                "name");
}

Schema pets_schema(RefAction action) {
  return Schema("pets",
                {Column{"pet", ValueType::text, false, false, false},
                 Column{"owner", ValueType::text, true, false, true}},
                "pet", {ForeignKey{"owner", "people", "name", action}});
}

struct SweepParam {
  std::uint64_t seed;
  std::size_t ops;
  RefAction action;
};

class CatalogModel : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CatalogModel, RandomOpsAgreeWithReferenceModel) {
  const SweepParam p = GetParam();
  Catalog catalog;
  ASSERT_TRUE(catalog.create_table(people_schema()).is_ok());
  ASSERT_TRUE(catalog.create_table(pets_schema(p.action)).is_ok());

  // Reference model: person name -> age; pet name -> owner (or nullopt).
  std::map<std::string, std::int64_t> people;
  std::map<std::string, std::optional<std::string>> pets;
  Rng rng(p.seed);
  auto person_name = [&](std::uint64_t i) { return "p" + std::to_string(i); };
  auto pet_name = [&](std::uint64_t i) { return "a" + std::to_string(i); };

  for (std::size_t op = 0; op < p.ops; ++op) {
    double u = rng.uniform01();
    if (u < 0.3) {
      // Insert person.
      std::string name = person_name(rng.uniform(40));
      std::int64_t age = rng.uniform_range(1, 99);
      auto r = catalog.insert("people", {Value(name), Value(age), Value("bio")});
      if (people.contains(name)) {
        EXPECT_EQ(r.code(), Errc::constraint_violation);
      } else {
        ASSERT_TRUE(r.is_ok());
        people[name] = age;
      }
    } else if (u < 0.55) {
      // Insert pet with a random (maybe missing) owner.
      std::string pet = pet_name(rng.uniform(60));
      bool orphan = rng.bernoulli(0.2);
      std::string owner = person_name(rng.uniform(40));
      auto r = catalog.insert(
          "pets", {Value(pet), orphan ? Value::null() : Value(owner)});
      if (pets.contains(pet)) {
        EXPECT_EQ(r.code(), Errc::constraint_violation);
      } else if (!orphan && !people.contains(owner)) {
        EXPECT_EQ(r.code(), Errc::constraint_violation);
      } else {
        ASSERT_TRUE(r.is_ok());
        pets[pet] = orphan ? std::nullopt : std::optional<std::string>(owner);
      }
    } else if (u < 0.75) {
      // Update a person's age.
      std::string name = person_name(rng.uniform(40));
      auto rid = catalog.table("people")->find_unique("name", Value(name));
      if (rid) {
        std::int64_t age = rng.uniform_range(1, 99);
        ASSERT_TRUE(catalog.update_column("people", *rid, "age", Value(age)).is_ok());
        people[name] = age;
      }
    } else {
      // Erase a person; the model applies the FK action.
      std::string name = person_name(rng.uniform(40));
      auto rid = catalog.table("people")->find_unique("name", Value(name));
      if (!rid) continue;
      bool referenced = false;
      for (const auto& [pet, owner] : pets) {
        if (owner == name) referenced = true;
      }
      Status s = catalog.erase("people", *rid);
      switch (p.action) {
        case RefAction::restrict:
          if (referenced) {
            EXPECT_EQ(s.code(), Errc::constraint_violation);
          } else {
            ASSERT_TRUE(s.is_ok());
            people.erase(name);
          }
          break;
        case RefAction::cascade:
          ASSERT_TRUE(s.is_ok());
          people.erase(name);
          for (auto it = pets.begin(); it != pets.end();) {
            it = it->second == name ? pets.erase(it) : std::next(it);
          }
          break;
        case RefAction::set_null:
          ASSERT_TRUE(s.is_ok());
          people.erase(name);
          for (auto& [pet, owner] : pets) {
            if (owner == name) owner = std::nullopt;
          }
          break;
      }
    }
  }

  // Final state equivalence.
  ASSERT_EQ(catalog.table("people")->row_count(), people.size());
  ASSERT_EQ(catalog.table("pets")->row_count(), pets.size());
  for (const auto& [name, age] : people) {
    auto rid = catalog.table("people")->find_unique("name", Value(name));
    ASSERT_TRUE(rid.has_value()) << name;
    EXPECT_EQ(catalog.table("people")->cell(*rid, "age").as_int(), age);
  }
  for (const auto& [pet, owner] : pets) {
    auto rid = catalog.table("pets")->find_unique("pet", Value(pet));
    ASSERT_TRUE(rid.has_value()) << pet;
    Value got = catalog.table("pets")->cell(*rid, "owner");
    if (owner) {
      EXPECT_EQ(got, Value(*owner));
    } else {
      EXPECT_TRUE(got.is_null());
    }
  }
  // Secondary index agrees with a full scan for every age bucket.
  for (std::int64_t age = 1; age < 100; ++age) {
    std::size_t expected = 0;
    for (const auto& [_, a] : people) {
      if (a == age) ++expected;
    }
    EXPECT_EQ(catalog.table("people")->find_equal("age", Value(age)).size(), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CatalogModel,
    ::testing::Values(SweepParam{1, 1500, RefAction::restrict},
                      SweepParam{2, 1500, RefAction::cascade},
                      SweepParam{3, 1500, RefAction::set_null},
                      SweepParam{4, 3000, RefAction::cascade},
                      SweepParam{5, 3000, RefAction::restrict}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "seed" + std::to_string(info.param.seed) + "_" +
             ref_action_name(info.param.action);
    });

// --- WAL corruption fuzzing ---------------------------------------------------

class WalFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WalFuzz, BitFlipsNeverCrashRecovery) {
  const std::uint64_t seed = GetParam();
  fs::path dir = fs::temp_directory_path() /
                 ("wdoc-fuzz-" + std::to_string(::getpid()) + "-" +
                  std::to_string(seed));
  fs::create_directories(dir);
  std::string wal_path = (dir / "wal.log").string();

  // Write a healthy log of 30 autocommit inserts.
  {
    Wal wal;
    ASSERT_TRUE(wal.open(wal_path).is_ok());
    LogRecord create;
    create.kind = LogKind::create_table;
    create.table = "people";
    create.schema = people_schema();
    ASSERT_TRUE(wal.append(create).is_ok());
    for (int i = 0; i < 30; ++i) {
      LogRecord rec;
      rec.kind = LogKind::insert;
      rec.table = "people";
      rec.row = RowId{static_cast<std::uint64_t>(i + 1)};
      rec.after = {Value("p" + std::to_string(i)), Value(i), Value("bio")};
      ASSERT_TRUE(wal.append(rec).is_ok());
    }
    ASSERT_TRUE(wal.sync().is_ok());
  }
  const auto healthy = Wal::read_all(wal_path).expect("healthy read");
  ASSERT_EQ(healthy.size(), 31u);

  // Flip random single bytes at random offsets; recovery must not crash and
  // must replay cleanly into a fresh catalog.
  Rng rng(seed);
  std::uintmax_t size = fs::file_size(wal_path);
  for (int trial = 0; trial < 40; ++trial) {
    fs::path mutated = dir / ("mutated-" + std::to_string(trial));
    fs::copy_file(wal_path, mutated, fs::copy_options::overwrite_existing);
    {
      std::FILE* f = std::fopen(mutated.c_str(), "rb+");
      ASSERT_NE(f, nullptr);
      long offset = static_cast<long>(rng.uniform(size));
      std::fseek(f, offset, SEEK_SET);
      int c = std::fgetc(f);
      std::fseek(f, -1, SEEK_CUR);
      std::fputc(c ^ static_cast<int>(1 + rng.uniform(255)), f);
      std::fclose(f);
    }
    auto records = Wal::read_all(mutated.string());
    ASSERT_TRUE(records.is_ok());  // torn/corrupt tails end the scan, never throw
    ASSERT_LE(records.value().size(), healthy.size());
    // What survives must be a prefix of the healthy history.
    for (std::size_t i = 0; i < records.value().size(); ++i) {
      EXPECT_EQ(records.value()[i].encode(), healthy[i].encode()) << "record " << i;
    }
    // Replay of any prefix must succeed into an empty catalog (the table
    // create is record 0; if it was clobbered the prefix is empty).
    Catalog catalog;
    Status replayed = Wal::replay(records.value(), catalog);
    EXPECT_TRUE(replayed.is_ok()) << replayed.message();
  }
  fs::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalFuzz, ::testing::Values(11u, 22u, 33u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// --- snapshot equivalence under random content ---------------------------------

TEST(SnapshotProperty, RandomCatalogRoundTripsExactly) {
  fs::path dir = fs::temp_directory_path() /
                 ("wdoc-snapprop-" + std::to_string(::getpid()));
  fs::create_directories(dir);
  std::string path = (dir / "snap.db").string();

  Rng rng(99);
  Catalog original;
  ASSERT_TRUE(original.create_table(people_schema()).is_ok());
  ASSERT_TRUE(original.create_table(pets_schema(RefAction::set_null)).is_ok());
  for (int i = 0; i < 300; ++i) {
    std::string name = "p" + std::to_string(i);
    ASSERT_TRUE(original
                    .insert("people",
                            {Value(name), Value(rng.uniform_range(0, 100)),
                             rng.bernoulli(0.2)
                                 ? Value::null()
                                 : Value(std::string(rng.uniform(50), 'x'))})
                    .is_ok());
    if (rng.bernoulli(0.5)) {
      ASSERT_TRUE(original
                      .insert("pets", {Value("a" + std::to_string(i)), Value(name)})
                      .is_ok());
    }
  }
  // Random deletions to fragment row ids.
  for (int i = 0; i < 80; ++i) {
    auto rid = original.table("people")->find_unique(
        "name", Value("p" + std::to_string(rng.uniform(300))));
    if (rid) (void)original.erase("people", *rid);
  }

  ASSERT_TRUE(save_snapshot(original, path).is_ok());
  Catalog loaded;
  ASSERT_TRUE(load_snapshot(path, loaded).is_ok());

  for (const char* table : {"people", "pets"}) {
    ASSERT_EQ(loaded.table(table)->row_count(), original.table(table)->row_count());
    original.table(table)->scan([&](RowId id, const std::vector<Value>& row) {
      const auto* other = loaded.table(table)->get(id);
      EXPECT_NE(other, nullptr);
      if (other != nullptr) {
        EXPECT_EQ(*other, row);
      }
      return true;
    });
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace wdoc::storage

// AdminNode/AdminClient tests: join protocol, vector propagation, live tree
// reconfiguration, and an end-to-end broadcast through an admin-built tree.
#include <gtest/gtest.h>

#include "dist/admin_node.hpp"
#include "net/sim_network.hpp"

namespace wdoc::dist {
namespace {

struct Member {
  StationId id;
  std::unique_ptr<blob::BlobStore> blobs;
  std::unique_ptr<ObjectStore> store;
  std::unique_ptr<StationNode> node;
  std::unique_ptr<AdminClient> client;
};

class AdminFixture : public ::testing::Test {
 protected:
  AdminFixture() : net_(5) {
    admin_id_ = net_.add_station();
    admin_ = std::make_unique<AdminNode>(net_, admin_id_, coordinator_, /*m=*/3);
    admin_->bind();
  }

  Member& add_member() {
    auto m = std::make_unique<Member>();
    m->id = net_.add_station();
    m->blobs = std::make_unique<blob::BlobStore>();
    m->store = std::make_unique<ObjectStore>(*m->blobs);
    m->node = std::make_unique<StationNode>(net_, m->id, *m->store);
    m->client = std::make_unique<AdminClient>(net_, *m->node, admin_id_);
    m->client->bind();
    members_.push_back(std::move(m));
    return *members_.back();
  }

  net::SimNetwork net_;
  Coordinator coordinator_;
  StationId admin_id_;
  std::unique_ptr<AdminNode> admin_;
  std::vector<std::unique_ptr<Member>> members_;
};

TEST_F(AdminFixture, JoinAssignsPositionsInArrivalOrder) {
  std::vector<std::uint64_t> positions;
  for (int i = 0; i < 5; ++i) {
    Member& m = add_member();
    ASSERT_TRUE(m.client
                    ->request_join([&](std::uint64_t pos) { positions.push_back(pos); })
                    .is_ok());
    net_.run();
  }
  EXPECT_EQ(positions, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(admin_->joins_served(), 5u);
  for (auto& m : members_) {
    EXPECT_TRUE(m->client->joined());
  }
}

TEST_F(AdminFixture, VectorPropagatesToEveryMember) {
  for (int i = 0; i < 7; ++i) {
    Member& m = add_member();
    ASSERT_TRUE(m.client->request_join(nullptr).is_ok());
    net_.run();
  }
  // Every node knows its position and its parent (m=3).
  EXPECT_EQ(members_[0]->node->position(), 1u);
  EXPECT_EQ(members_[6]->node->position(), 7u);
  EXPECT_EQ(members_[6]->node->parent_station(), members_[1]->id);  // pos 7 -> parent 2
}

TEST_F(AdminFixture, LateJoinReconfiguresExistingMembers) {
  for (int i = 0; i < 3; ++i) {
    Member& m = add_member();
    ASSERT_TRUE(m.client->request_join(nullptr).is_ok());
  }
  net_.run();
  // With 3 members, m=3: all children of the root.
  EXPECT_EQ(members_[2]->node->parent_station(), members_[0]->id);

  // Member 4 joins; everyone's vector refreshes automatically.
  Member& late = add_member();
  ASSERT_TRUE(late.client->request_join(nullptr).is_ok());
  net_.run();
  EXPECT_EQ(late.node->position(), 4u);
  EXPECT_EQ(late.node->parent_station(), members_[0]->id);
  // Existing members saw the new vector too (position unchanged, vector longer).
  EXPECT_EQ(members_[1]->node->position(), 2u);
}

TEST_F(AdminFixture, SetMRebroadcastsAndReshapesTree) {
  for (int i = 0; i < 7; ++i) {
    Member& m = add_member();
    ASSERT_TRUE(m.client->request_join(nullptr).is_ok());
  }
  net_.run();
  EXPECT_EQ(members_[6]->node->parent_station(), members_[1]->id);  // m=3
  ASSERT_TRUE(admin_->set_m(2).is_ok());
  net_.run();
  EXPECT_EQ(members_[6]->node->parent_station(), members_[2]->id);  // m=2: 7 -> 3
  EXPECT_EQ(admin_->set_m(0).code(), Errc::invalid_argument);
}

TEST_F(AdminFixture, BroadcastWorksThroughAdminBuiltTree) {
  for (int i = 0; i < 13; ++i) {
    Member& m = add_member();
    ASSERT_TRUE(m.client->request_join(nullptr).is_ok());
  }
  net_.run();

  DocManifest doc;
  doc.doc_key = "http://mmu.edu/lecture";
  doc.structure_bytes = 5000;
  doc.home = members_[0]->id;
  ASSERT_TRUE(members_[0]->node->broadcast_push(doc).is_ok());
  net_.run();
  for (std::size_t i = 0; i < members_.size(); ++i) {
    EXPECT_TRUE(members_[i]->store->has_materialized(doc.doc_key)) << i;
  }
  // Distribution messages flowed through the AdminClient demultiplexer.
  EXPECT_GT(members_[1]->node->stats().pushes_received, 0u);
}

TEST_F(AdminFixture, DuplicateJoinKeepsPosition) {
  Member& m = add_member();
  ASSERT_TRUE(m.client->request_join(nullptr).is_ok());
  net_.run();
  ASSERT_TRUE(m.client->request_join(nullptr).is_ok());
  net_.run();
  EXPECT_EQ(coordinator_.station_count(), 1u);
  EXPECT_EQ(m.node->position(), 1u);
  EXPECT_EQ(admin_->joins_served(), 2u);
}

}  // namespace
}  // namespace wdoc::dist

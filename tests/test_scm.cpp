// SCM tests: version chains, exclusive write check-outs, diff summaries.
#include <gtest/gtest.h>

#include "scm/scm_store.hpp"

namespace wdoc::scm {
namespace {

constexpr UserId kShih{1};
constexpr UserId kMa{2};

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }
std::string string_of(const Bytes& b) { return std::string(b.begin(), b.end()); }

TEST(Scm, AddItemCreatesVersionOne) {
  ScmStore scm;
  ASSERT_TRUE(scm.add_item("script:intro", bytes_of("v1 text"), "shih", 100).is_ok());
  EXPECT_TRUE(scm.has_item("script:intro"));
  auto head = scm.head("script:intro");
  ASSERT_TRUE(head.is_ok());
  EXPECT_EQ(head.value().number, 1u);
  EXPECT_EQ(head.value().author, "shih");
  EXPECT_EQ(string_of(scm.content("script:intro").value()), "v1 text");
  EXPECT_EQ(scm.add_item("script:intro", {}, "x", 0).code(), Errc::already_exists);
}

TEST(Scm, CheckOutCheckInBumpsVersion) {
  ScmStore scm;
  ASSERT_TRUE(scm.add_item("s", bytes_of("one"), "shih", 100).is_ok());
  ASSERT_TRUE(scm.check_out("s", kShih, /*write=*/true, 200).is_ok());
  auto meta = scm.check_in("s", kShih, bytes_of("two"), "edit", 300);
  ASSERT_TRUE(meta.is_ok());
  EXPECT_EQ(meta.value().number, 2u);
  EXPECT_EQ(string_of(scm.content("s").value()), "two");
  EXPECT_EQ(string_of(scm.content("s", 1).value()), "one");
  auto history = scm.history("s");
  ASSERT_TRUE(history.is_ok());
  EXPECT_EQ(history.value().size(), 2u);
}

TEST(Scm, CheckInWithoutWriteCheckoutRefused) {
  ScmStore scm;
  ASSERT_TRUE(scm.add_item("s", bytes_of("one"), "shih", 100).is_ok());
  EXPECT_EQ(scm.check_in("s", kShih, bytes_of("x"), "c", 200).code(),
            Errc::lock_conflict);
  // Read checkout is not enough either.
  ASSERT_TRUE(scm.check_out("s", kShih, /*write=*/false, 150).is_ok());
  EXPECT_EQ(scm.check_in("s", kShih, bytes_of("x"), "c", 200).code(),
            Errc::lock_conflict);
}

TEST(Scm, WriteCheckoutIsExclusive) {
  ScmStore scm;
  ASSERT_TRUE(scm.add_item("s", bytes_of("one"), "shih", 100).is_ok());
  ASSERT_TRUE(scm.check_out("s", kShih, true, 200).is_ok());
  EXPECT_EQ(scm.check_out("s", kMa, true, 210).code(), Errc::lock_conflict);
  EXPECT_EQ(scm.write_holder("s"), kShih);
  // Readers can coexist with a writer.
  EXPECT_TRUE(scm.check_out("s", kMa, false, 220).is_ok());
}

TEST(Scm, SameUserCannotDoubleCheckout) {
  ScmStore scm;
  ASSERT_TRUE(scm.add_item("s", bytes_of("one"), "shih", 100).is_ok());
  ASSERT_TRUE(scm.check_out("s", kShih, false, 200).is_ok());
  EXPECT_EQ(scm.check_out("s", kShih, false, 210).code(), Errc::already_exists);
}

TEST(Scm, CancelCheckoutFreesWriteLock) {
  ScmStore scm;
  ASSERT_TRUE(scm.add_item("s", bytes_of("one"), "shih", 100).is_ok());
  ASSERT_TRUE(scm.check_out("s", kShih, true, 200).is_ok());
  ASSERT_TRUE(scm.cancel_checkout("s", kShih).is_ok());
  EXPECT_EQ(scm.write_holder("s"), std::nullopt);
  EXPECT_TRUE(scm.check_out("s", kMa, true, 300).is_ok());
  EXPECT_EQ(scm.cancel_checkout("s", kShih).code(), Errc::not_found);
}

TEST(Scm, IdenticalCheckInRejected) {
  ScmStore scm;
  ASSERT_TRUE(scm.add_item("s", bytes_of("same"), "shih", 100).is_ok());
  ASSERT_TRUE(scm.check_out("s", kShih, true, 200).is_ok());
  EXPECT_EQ(scm.check_in("s", kShih, bytes_of("same"), "noop", 300).code(),
            Errc::conflict);
  // The write checkout survives the failed check-in.
  EXPECT_EQ(scm.write_holder("s"), kShih);
}

TEST(Scm, CheckInReleasesWriteCheckout) {
  ScmStore scm;
  ASSERT_TRUE(scm.add_item("s", bytes_of("one"), "shih", 100).is_ok());
  ASSERT_TRUE(scm.check_out("s", kShih, true, 200).is_ok());
  ASSERT_TRUE(scm.check_in("s", kShih, bytes_of("two"), "c", 300).is_ok());
  EXPECT_EQ(scm.write_holder("s"), std::nullopt);
  EXPECT_TRUE(scm.check_out("s", kMa, true, 400).is_ok());
}

TEST(Scm, CheckoutCountsFeedAssessment) {
  ScmStore scm;
  ASSERT_TRUE(scm.add_item("a", bytes_of("1"), "x", 0).is_ok());
  ASSERT_TRUE(scm.add_item("b", bytes_of("2"), "x", 0).is_ok());
  ASSERT_TRUE(scm.check_out("a", kMa, false, 1).is_ok());
  ASSERT_TRUE(scm.check_out("b", kMa, false, 2).is_ok());
  ASSERT_TRUE(scm.cancel_checkout("a", kMa).is_ok());
  ASSERT_TRUE(scm.check_out("a", kMa, false, 3).is_ok());
  EXPECT_EQ(scm.checkout_count(kMa), 3u);
  EXPECT_EQ(scm.checkout_count(kShih), 0u);
}

TEST(Scm, VersionLookupGuards) {
  ScmStore scm;
  ASSERT_TRUE(scm.add_item("s", bytes_of("one"), "x", 0).is_ok());
  EXPECT_EQ(scm.content("ghost").code(), Errc::not_found);
  EXPECT_EQ(scm.content("s", 0).code(), Errc::not_found);
  EXPECT_EQ(scm.content("s", 2).code(), Errc::not_found);
  EXPECT_EQ(scm.head("ghost").code(), Errc::not_found);
}

TEST(Scm, ListItems) {
  ScmStore scm;
  ASSERT_TRUE(scm.add_item("b", {}, "x", 0).is_ok());
  ASSERT_TRUE(scm.add_item("a", {}, "x", 0).is_ok());
  EXPECT_EQ(scm.list_items(), (std::vector<std::string>{"a", "b"}));
}

// --- diff ---------------------------------------------------------------------

TEST(Diff, IdenticalTexts) {
  DiffSummary d = diff_lines("a\nb\nc\n", "a\nb\nc\n");
  EXPECT_TRUE(d.identical);
  EXPECT_EQ(d.lines_common, 3u);
  EXPECT_EQ(d.lines_added, 0u);
  EXPECT_EQ(d.lines_removed, 0u);
}

TEST(Diff, AddedAndRemovedLines) {
  DiffSummary d = diff_lines("a\nb\nc\n", "a\nx\nb\n");
  // LCS of {a,b,c} and {a,x,b} is {a,b}.
  EXPECT_EQ(d.lines_common, 2u);
  EXPECT_EQ(d.lines_removed, 1u);  // c
  EXPECT_EQ(d.lines_added, 1u);    // x
  EXPECT_FALSE(d.identical);
}

TEST(Diff, EmptySides) {
  DiffSummary d = diff_lines("", "a\nb\n");
  EXPECT_EQ(d.lines_added, 2u);
  EXPECT_EQ(d.lines_removed, 0u);
  d = diff_lines("a\n", "");
  EXPECT_EQ(d.lines_removed, 1u);
  EXPECT_EQ(d.lines_added, 0u);
}

TEST(Diff, StoreDiffBetweenVersions) {
  ScmStore scm;
  ASSERT_TRUE(scm.add_item("s", bytes_of("line1\nline2\n"), "x", 0).is_ok());
  ASSERT_TRUE(scm.check_out("s", kShih, true, 1).is_ok());
  ASSERT_TRUE(scm.check_in("s", kShih, bytes_of("line1\nline2 edited\nline3\n"),
                           "edit", 2)
                  .is_ok());
  auto d = scm.diff("s", 1, 2);
  ASSERT_TRUE(d.is_ok());
  EXPECT_EQ(d.value().lines_common, 1u);
  EXPECT_EQ(d.value().lines_removed, 1u);
  EXPECT_EQ(d.value().lines_added, 2u);
  EXPECT_EQ(scm.diff("s", 1, 9).code(), Errc::not_found);
}

TEST(Diff, BinaryContentComparedByDigest) {
  ScmStore scm;
  Bytes binary{0x00, 0x01, 0x02};
  ASSERT_TRUE(scm.add_item("s", binary, "x", 0).is_ok());
  ASSERT_TRUE(scm.check_out("s", kShih, true, 1).is_ok());
  Bytes binary2{0x00, 0x01, 0x03};
  ASSERT_TRUE(scm.check_in("s", kShih, binary2, "c", 2).is_ok());
  auto d = scm.diff("s", 1, 2);
  ASSERT_TRUE(d.is_ok());
  EXPECT_TRUE(d.value().binary);
  EXPECT_FALSE(d.value().identical);
}

}  // namespace
}  // namespace wdoc::scm

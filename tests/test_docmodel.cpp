// Document-model tests: the paper-faithful schemas, repository CRUD with
// cascade semantics across the hierarchy, annotation draw-ops and traversal
// logs.
#include <gtest/gtest.h>

#include "docmodel/repository.hpp"
#include "docmodel/traversal.hpp"

namespace wdoc::docmodel {
namespace {

class RepoFixture : public ::testing::Test {
 protected:
  RepoFixture() : db_(storage::Database::in_memory()), blobs_(), repo_(*db_, blobs_) {
    install_schemas(*db_).expect("install schemas");
  }

  ScriptInfo make_script(const std::string& name) {
    ScriptInfo s;
    s.name = name;
    s.keywords = "multimedia, database";
    s.author = "shih";
    s.version = "1.0";
    s.created_at = 1000;
    s.description = "intro course";
    s.expected_completion = 2000;
    s.pct_complete = 40.0;
    return s;
  }

  ImplementationInfo make_impl(const std::string& url, const std::string& script) {
    ImplementationInfo i;
    i.starting_url = url;
    i.script_name = script;
    i.author = "shih";
    i.created_at = 1100;
    i.try_number = 1;
    return i;
  }

  std::unique_ptr<storage::Database> db_;
  blob::BlobStore blobs_;
  Repository repo_;
};

TEST_F(RepoFixture, SchemasInstallAllTables) {
  for (const std::string& name : all_table_names()) {
    EXPECT_TRUE(db_->catalog().has_table(name)) << name;
  }
}

TEST_F(RepoFixture, ScriptRoundTrip) {
  ASSERT_TRUE(repo_.create_script(make_script("s1")).is_ok());
  auto got = repo_.get_script("s1");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().name, "s1");
  EXPECT_EQ(got.value().author, "shih");
  EXPECT_DOUBLE_EQ(got.value().pct_complete, 40.0);
  EXPECT_FALSE(got.value().verbal_description_digest.has_value());
  EXPECT_EQ(repo_.get_script("ghost").code(), Errc::not_found);
}

TEST_F(RepoFixture, DuplicateScriptNameRejected) {
  ASSERT_TRUE(repo_.create_script(make_script("s1")).is_ok());
  EXPECT_EQ(repo_.create_script(make_script("s1")).code(), Errc::constraint_violation);
}

TEST_F(RepoFixture, ProgressUpdateValidated) {
  ASSERT_TRUE(repo_.create_script(make_script("s1")).is_ok());
  ASSERT_TRUE(repo_.set_script_progress("s1", 80.0).is_ok());
  EXPECT_DOUBLE_EQ(repo_.get_script("s1").value().pct_complete, 80.0);
  EXPECT_EQ(repo_.set_script_progress("s1", 150.0).code(), Errc::invalid_argument);
  EXPECT_EQ(repo_.set_script_progress("ghost", 10.0).code(), Errc::not_found);
}

TEST_F(RepoFixture, ImplementationRequiresScript) {
  EXPECT_EQ(repo_.create_implementation(make_impl("http://x/1", "ghost")).code(),
            Errc::constraint_violation);
  ASSERT_TRUE(repo_.create_script(make_script("s1")).is_ok());
  ASSERT_TRUE(repo_.create_implementation(make_impl("http://x/1", "s1")).is_ok());
  auto got = repo_.get_implementation("http://x/1");
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value().script_name, "s1");
}

TEST_F(RepoFixture, MultipleTriesPerScriptOrdered) {
  ASSERT_TRUE(repo_.create_script(make_script("s1")).is_ok());
  for (int t = 3; t >= 1; --t) {
    auto impl = make_impl("http://x/" + std::to_string(t), "s1");
    impl.try_number = t;
    ASSERT_TRUE(repo_.create_implementation(impl).is_ok());
  }
  auto impls = repo_.implementations_of("s1");
  ASSERT_TRUE(impls.is_ok());
  ASSERT_EQ(impls.value().size(), 3u);
  EXPECT_EQ(impls.value()[0].try_number, 1);
  EXPECT_EQ(impls.value()[2].try_number, 3);
}

TEST_F(RepoFixture, FilesBelongToImplementations) {
  ASSERT_TRUE(repo_.create_script(make_script("s1")).is_ok());
  ASSERT_TRUE(repo_.create_implementation(make_impl("http://x/1", "s1")).is_ok());
  HtmlFileInfo page;
  page.path = "http://x/1/index.html";
  page.starting_url = "http://x/1";
  std::string body = "<html>hello</html>";
  page.content.assign(body.begin(), body.end());
  ASSERT_TRUE(repo_.add_html_file(page).is_ok());

  ProgramFileInfo prog;
  prog.path = "http://x/1/applet.class";
  prog.starting_url = "http://x/1";
  prog.language = "java";
  prog.content = {0xca, 0xfe, 0xba, 0xbe};
  ASSERT_TRUE(repo_.add_program_file(prog).is_ok());

  auto htmls = repo_.html_files_of("http://x/1");
  ASSERT_TRUE(htmls.is_ok());
  ASSERT_EQ(htmls.value().size(), 1u);
  EXPECT_EQ(htmls.value()[0].content.size(), body.size());
  auto progs = repo_.program_files_of("http://x/1");
  ASSERT_EQ(progs.value().size(), 1u);
  EXPECT_EQ(progs.value()[0].language, "java");

  // File under an unknown implementation is an FK violation.
  page.path = "http://ghost/index.html";
  page.starting_url = "http://ghost";
  EXPECT_EQ(repo_.add_html_file(page).code(), Errc::constraint_violation);
}

TEST_F(RepoFixture, ResourcesGoThroughBlobStore) {
  ASSERT_TRUE(repo_.create_script(make_script("s1")).is_ok());
  ASSERT_TRUE(repo_.create_implementation(make_impl("http://x/1", "s1")).is_ok());
  Bytes clip{1, 2, 3, 4, 5};
  auto id = repo_.attach_resource("implementation", "http://x/1", clip,
                                  blob::MediaType::audio, 30000);
  ASSERT_TRUE(id.is_ok());
  EXPECT_EQ(blobs_.blob_count(), 1u);

  auto resources = repo_.resources_of("implementation", "http://x/1");
  ASSERT_TRUE(resources.is_ok());
  ASSERT_EQ(resources.value().size(), 1u);
  EXPECT_EQ(resources.value()[0].size, 5u);
  EXPECT_EQ(resources.value()[0].media_type, blob::MediaType::audio);
  EXPECT_EQ(resources.value()[0].playout_ms, 30000);

  // Same bytes attached to another owner share the blob.
  ASSERT_TRUE(repo_.create_script(make_script("s2")).is_ok());
  ASSERT_TRUE(
      repo_.attach_resource("script", "s2", clip, blob::MediaType::audio).is_ok());
  EXPECT_EQ(blobs_.blob_count(), 1u);
  EXPECT_EQ(blobs_.info(id.value())->refs, 2u);
}

TEST_F(RepoFixture, SyntheticResourcesForSimulation) {
  ASSERT_TRUE(repo_.create_script(make_script("s1")).is_ok());
  ASSERT_TRUE(repo_.create_implementation(make_impl("http://x/1", "s1")).is_ok());
  Digest128 d = digest128("big video");
  ASSERT_TRUE(repo_
                  .attach_synthetic_resource("implementation", "http://x/1", d,
                                             10u << 20, blob::MediaType::video)
                  .is_ok());
  auto bytes = repo_.presentation_bytes("http://x/1");
  ASSERT_TRUE(bytes.is_ok());
  EXPECT_EQ(bytes.value(), 10u << 20);
}

TEST_F(RepoFixture, PresentationBytesSumsImplAndScriptResources) {
  ASSERT_TRUE(repo_.create_script(make_script("s1")).is_ok());
  ASSERT_TRUE(repo_.create_implementation(make_impl("http://x/1", "s1")).is_ok());
  ASSERT_TRUE(repo_
                  .attach_synthetic_resource("implementation", "http://x/1",
                                             digest128("a"), 100, blob::MediaType::image)
                  .is_ok());
  ASSERT_TRUE(repo_
                  .attach_synthetic_resource("script", "s1", digest128("b"), 50,
                                             blob::MediaType::midi)
                  .is_ok());
  EXPECT_EQ(repo_.presentation_bytes("http://x/1").value(), 150u);
}

TEST_F(RepoFixture, TestRecordAndBugReportChain) {
  ASSERT_TRUE(repo_.create_script(make_script("s1")).is_ok());
  ASSERT_TRUE(repo_.create_implementation(make_impl("http://x/1", "s1")).is_ok());

  TestRecordInfo tr;
  tr.name = "t1";
  tr.global_scope = true;
  tr.script_name = "s1";
  tr.starting_url = "http://x/1";
  tr.created_at = 1200;
  ASSERT_TRUE(repo_.create_test_record(tr).is_ok());

  BugReportInfo bug;
  bug.name = "b1";
  bug.qa_engineer = "huang";
  bug.test_procedure = "replay";
  bug.bug_description = "broken link";
  bug.bad_urls = "http://x/1/missing.html";
  bug.test_record_name = "t1";
  bug.created_at = 1300;
  ASSERT_TRUE(repo_.create_bug_report(bug).is_ok());

  EXPECT_EQ(repo_.test_records_of_script("s1").value(),
            std::vector<std::string>{"t1"});
  EXPECT_EQ(repo_.bug_reports_of("t1").value(), std::vector<std::string>{"b1"});
  auto fetched = repo_.get_bug_report("b1");
  ASSERT_TRUE(fetched.is_ok());
  EXPECT_EQ(fetched.value().qa_engineer, "huang");
  EXPECT_EQ(fetched.value().bad_urls, "http://x/1/missing.html");
}

TEST_F(RepoFixture, AnnotationsStoreDrawOps) {
  ASSERT_TRUE(repo_.create_script(make_script("s1")).is_ok());
  ASSERT_TRUE(repo_.create_implementation(make_impl("http://x/1", "s1")).is_ok());

  AnnotationDoc doc;
  DrawOp line;
  line.kind = DrawOpKind::line;
  line.a = {10, 20};
  line.b = {100, 200};
  doc.add(line);
  DrawOp text;
  text.kind = DrawOpKind::text;
  text.a = {50, 60};
  text.text = "see chapter 3";
  doc.add(text);

  AnnotationInfo info;
  info.name = "ann1";
  info.author = "ma";
  info.version = "1.0";
  info.created_at = 1400;
  info.script_name = "s1";
  info.starting_url = "http://x/1";
  ASSERT_TRUE(repo_.create_annotation(info, doc).is_ok());

  auto loaded = repo_.get_annotation_doc("ann1");
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value(), doc);
  EXPECT_EQ(repo_.annotations_of("http://x/1").value(),
            std::vector<std::string>{"ann1"});
  EXPECT_EQ(repo_.annotations_by_author("ma").value(),
            std::vector<std::string>{"ann1"});
}

TEST_F(RepoFixture, DifferentInstructorsAnnotateSameImplementation) {
  ASSERT_TRUE(repo_.create_script(make_script("s1")).is_ok());
  ASSERT_TRUE(repo_.create_implementation(make_impl("http://x/1", "s1")).is_ok());
  for (const char* author : {"shih", "ma", "huang"}) {
    AnnotationInfo info;
    info.name = std::string("ann-") + author;
    info.author = author;
    info.script_name = "s1";
    info.starting_url = "http://x/1";
    ASSERT_TRUE(repo_.create_annotation(info, AnnotationDoc{}).is_ok());
  }
  EXPECT_EQ(repo_.annotations_of("http://x/1").value().size(), 3u);
}

TEST_F(RepoFixture, DeleteScriptCascadesWholeSubtree) {
  ASSERT_TRUE(repo_.create_script(make_script("s1")).is_ok());
  ASSERT_TRUE(repo_.create_implementation(make_impl("http://x/1", "s1")).is_ok());
  HtmlFileInfo page;
  page.path = "http://x/1/index.html";
  page.starting_url = "http://x/1";
  ASSERT_TRUE(repo_.add_html_file(page).is_ok());
  TestRecordInfo tr;
  tr.name = "t1";
  tr.script_name = "s1";
  tr.starting_url = "http://x/1";
  ASSERT_TRUE(repo_.create_test_record(tr).is_ok());
  BugReportInfo bug;
  bug.name = "b1";
  bug.test_record_name = "t1";
  ASSERT_TRUE(repo_.create_bug_report(bug).is_ok());
  ASSERT_TRUE(repo_
                  .attach_resource("implementation", "http://x/1", Bytes{1, 2, 3},
                                   blob::MediaType::image)
                  .is_ok());

  ASSERT_TRUE(repo_.delete_script("s1").is_ok());
  EXPECT_EQ(repo_.get_script("s1").code(), Errc::not_found);
  EXPECT_EQ(repo_.get_implementation("http://x/1").code(), Errc::not_found);
  EXPECT_EQ(repo_.get_test_record("t1").code(), Errc::not_found);
  EXPECT_EQ(repo_.get_bug_report("b1").code(), Errc::not_found);
  EXPECT_TRUE(repo_.html_files_of("http://x/1").value().empty());
  // Blob reference released.
  EXPECT_EQ(blobs_.logical_bytes(), 0u);
}

TEST_F(RepoFixture, DatabaseLayerMembership) {
  DatabaseInfo db;
  db.name = "course-db";
  db.keywords = "virtual university";
  db.author = "mmu";
  db.version = "1";
  db.created_at = 10;
  ASSERT_TRUE(repo_.create_database(db).is_ok());
  ASSERT_TRUE(repo_.create_script(make_script("s1")).is_ok());
  ASSERT_TRUE(repo_.create_script(make_script("s2")).is_ok());
  ASSERT_TRUE(repo_.add_script_to_database("course-db", "s1").is_ok());
  ASSERT_TRUE(repo_.add_script_to_database("course-db", "s2").is_ok());
  EXPECT_EQ(repo_.add_script_to_database("course-db", "s1").code(),
            Errc::already_exists);
  auto scripts = repo_.scripts_of_database("course-db");
  ASSERT_TRUE(scripts.is_ok());
  EXPECT_EQ(scripts.value().size(), 2u);
  EXPECT_EQ(repo_.list_databases(), std::vector<std::string>{"course-db"});
}

TEST_F(RepoFixture, VerbalDescriptionStoredInBlobLayer) {
  ASSERT_TRUE(repo_.create_script(make_script("s1")).is_ok());
  EXPECT_EQ(repo_.get_verbal_description("s1").code(), Errc::not_found);

  Bytes audio{10, 20, 30, 40};
  ASSERT_TRUE(repo_.set_verbal_description("s1", audio).is_ok());
  auto script = repo_.get_script("s1");
  ASSERT_TRUE(script.is_ok());
  ASSERT_TRUE(script.value().verbal_description_digest.has_value());

  auto loaded = repo_.get_verbal_description("s1");
  ASSERT_TRUE(loaded.is_ok());
  EXPECT_EQ(loaded.value(), audio);
  EXPECT_EQ(repo_.set_verbal_description("ghost", audio).code(), Errc::not_found);
}

TEST_F(RepoFixture, UpdateAnnotationReplacesOpsAndVersion) {
  ASSERT_TRUE(repo_.create_script(make_script("s1")).is_ok());
  ASSERT_TRUE(repo_.create_implementation(make_impl("http://x/1", "s1")).is_ok());
  AnnotationInfo info;
  info.name = "ann1";
  info.author = "ma";
  info.version = "1.0";
  info.script_name = "s1";
  info.starting_url = "http://x/1";
  AnnotationDoc v1;
  DrawOp line;
  line.kind = DrawOpKind::line;
  v1.add(line);
  ASSERT_TRUE(repo_.create_annotation(info, v1).is_ok());

  AnnotationDoc v2 = v1;
  DrawOp text;
  text.kind = DrawOpKind::text;
  text.text = "revised";
  v2.add(text);
  ASSERT_TRUE(repo_.update_annotation("ann1", v2, "2.0", 9999).is_ok());

  EXPECT_EQ(repo_.get_annotation_doc("ann1").value(), v2);
  auto updated = repo_.get_annotation("ann1");
  ASSERT_TRUE(updated.is_ok());
  EXPECT_EQ(updated.value().version, "2.0");
  EXPECT_EQ(updated.value().created_at, 9999);
  EXPECT_EQ(repo_.update_annotation("ghost", v2, "2.0", 1).code(), Errc::not_found);
}

// --- annotation ops standalone --------------------------------------------

TEST(AnnotationOps, EncodeDecodeAllKinds) {
  AnnotationDoc doc;
  DrawOp freehand;
  freehand.kind = DrawOpKind::freehand;
  freehand.points = {{1, 2}, {3, 4}, {5, 6}};
  freehand.color = 0x11223344;
  freehand.stroke_width = 3;
  doc.add(freehand);
  DrawOp ellipse;
  ellipse.kind = DrawOpKind::ellipse;
  ellipse.a = {-10, -20};
  ellipse.b = {30, 40};
  doc.add(ellipse);
  auto decoded = AnnotationDoc::decode(doc.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), doc);
}

TEST(AnnotationOps, DecodeRejectsGarbage) {
  EXPECT_FALSE(AnnotationDoc::decode(Bytes{1, 2, 3}).is_ok());
  Writer w;
  w.str("WDANN1");
  w.u32(1);
  w.u8(250);  // invalid kind
  EXPECT_EQ(AnnotationDoc::decode(w.take()).code(), Errc::corrupt);
}

TEST(AnnotationOps, BoundingBoxCoversAllOps) {
  AnnotationDoc doc;
  DrawOp line;
  line.a = {-5, 10};
  line.b = {100, 2};
  doc.add(line);
  DrawOp text;
  text.kind = DrawOpKind::text;
  text.a = {200, -50};
  text.b = {999, 999};  // ignored for text
  doc.add(text);
  BoundingBox box = doc.bounding_box();
  EXPECT_EQ(box.min_x, -5);
  EXPECT_EQ(box.min_y, -50);
  EXPECT_EQ(box.max_x, 200);
  EXPECT_EQ(box.max_y, 10);
  EXPECT_EQ(AnnotationDoc{}.bounding_box(), BoundingBox{});
}

TEST(AnnotationOps, LegacyUntimedFormatStillDecodes) {
  // Hand-build a WDANN1 (v1) payload: one line op without a timestamp.
  Writer w;
  w.str("WDANN1");
  w.u32(1);
  w.u8(static_cast<std::uint8_t>(DrawOpKind::line));
  w.u32(5);   // a.x
  w.u32(6);   // a.y
  w.u32(7);   // b.x
  w.u32(8);   // b.y
  w.u32(0xff00ff00);
  w.u16(2);
  w.str("");
  w.u32(0);  // no freehand points
  auto decoded = AnnotationDoc::decode(w.take());
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_EQ(decoded.value().op_count(), 1u);
  EXPECT_EQ(decoded.value().ops()[0].a, (Point{5, 6}));
  EXPECT_EQ(decoded.value().ops()[0].at_ms, 0);
}

TEST(AnnotationPlayer, ReplaysInTimeOrder) {
  AnnotationDoc doc;
  for (std::int64_t t : {3000, 1000, 2000}) {  // out of order on purpose
    DrawOp op;
    op.kind = DrawOpKind::line;
    op.at_ms = t;
    op.a = {static_cast<std::int32_t>(t), 0};
    doc.add(op);
  }
  AnnotationPlayer player(doc);
  EXPECT_EQ(player.duration_ms(), 3000);
  EXPECT_EQ(player.visible_at(0).size(), 0u);
  EXPECT_EQ(player.visible_at(1500).size(), 1u);
  EXPECT_EQ(player.visible_at(99999).size(), 3u);

  auto first = player.advance_to(1000);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0]->at_ms, 1000);
  auto rest = player.advance_to(5000);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0]->at_ms, 2000);
  EXPECT_TRUE(player.finished());
  EXPECT_TRUE(player.advance_to(99999).empty());
  player.reset();
  EXPECT_FALSE(player.finished());
}

TEST(AnnotationPlayer, SpeedScalesPlayback) {
  AnnotationDoc doc;
  DrawOp op;
  op.at_ms = 2000;
  doc.add(op);
  AnnotationPlayer fast(doc, /*speed=*/2.0);
  // At 2x, the 2000 ms op appears at 1000 ms of wall playback.
  EXPECT_EQ(fast.visible_at(999).size(), 0u);
  EXPECT_EQ(fast.visible_at(1000).size(), 1u);
  EXPECT_EQ(fast.duration_ms(), 1000);
}

// --- traversal logs ----------------------------------------------------------

TEST(Traversal, EncodeDecodeRoundTrip) {
  TraversalLog log;
  log.add({TraversalEventKind::navigate, 0, "http://x/1", 0, 0});
  log.add({TraversalEventKind::click, 1500, "", 10, 20});
  log.add({TraversalEventKind::play_media, 3000, "clip-1", 0, 0});
  log.add({TraversalEventKind::close, 9000, "", 0, 0});
  auto decoded = TraversalLog::decode(log.encode());
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value(), log);
}

TEST(Traversal, VisitedUrlsDedupedInOrder) {
  TraversalLog log;
  log.add({TraversalEventKind::navigate, 0, "a", 0, 0});
  log.add({TraversalEventKind::navigate, 1, "b", 0, 0});
  log.add({TraversalEventKind::navigate, 2, "a", 0, 0});
  EXPECT_EQ(log.visited_urls(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(log.duration_ms(), 2);
}

TEST(Traversal, DecodeRejectsBadKind) {
  Writer w;
  w.str("WDTRV1");
  w.u32(1);
  w.u8(99);
  EXPECT_EQ(TraversalLog::decode(w.take()).code(), Errc::corrupt);
}

}  // namespace
}  // namespace wdoc::docmodel

// SQL front-end tests: tokenizer, every statement kind, predicates,
// errors, and an end-to-end scenario over the paper's schema shapes.
#include <gtest/gtest.h>

#include "storage/sql.hpp"

namespace wdoc::storage::sql {
namespace {

class SqlFixture : public ::testing::Test {
 protected:
  SqlFixture() : db_(Database::in_memory()), engine_(*db_) {}

  ResultSet exec(const std::string& stmt) {
    return engine_.execute(stmt).expect(stmt.c_str());
  }
  Errc exec_err(const std::string& stmt) { return engine_.execute(stmt).code(); }

  std::unique_ptr<Database> db_;
  Engine engine_;
};

// --- tokenizer ---------------------------------------------------------------

TEST(SqlTokenize, BasicKindsRecognized) {
  auto tokens = tokenize("SELECT x, 42 -7 3.5 'it''s' X'0aFF' != <> <= (").expect("ok");
  ASSERT_EQ(tokens.size(), 13u);  // incl. end
  EXPECT_EQ(tokens[0].kind, TokenKind::identifier);
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[2].text, ",");
  EXPECT_EQ(tokens[3].int_value, 42);
  EXPECT_EQ(tokens[4].int_value, -7);
  EXPECT_DOUBLE_EQ(tokens[5].real_value, 3.5);
  EXPECT_EQ(tokens[6].kind, TokenKind::text);
  EXPECT_EQ(tokens[6].text, "it's");
  EXPECT_EQ(tokens[7].kind, TokenKind::blob);
  EXPECT_EQ(tokens[7].blob_value, (Bytes{0x0a, 0xff}));
  EXPECT_EQ(tokens[8].text, "!=");
  EXPECT_EQ(tokens[9].text, "<>");
  EXPECT_EQ(tokens[10].text, "<=");
  EXPECT_EQ(tokens[12].kind, TokenKind::end);
}

TEST(SqlTokenize, Errors) {
  EXPECT_EQ(tokenize("'unterminated").code(), Errc::invalid_argument);
  EXPECT_EQ(tokenize("X'abc'").code(), Errc::invalid_argument);  // odd hex
  EXPECT_EQ(tokenize("X'zz'").code(), Errc::invalid_argument);
  EXPECT_EQ(tokenize("@").code(), Errc::invalid_argument);
}

// --- DDL ----------------------------------------------------------------------

TEST_F(SqlFixture, CreateAndDropTable) {
  exec("CREATE TABLE scripts (name TEXT PRIMARY KEY, author TEXT INDEXED, "
       "pct REAL, done BOOLEAN NOT NULL)");
  EXPECT_TRUE(db_->catalog().has_table("scripts"));
  const Schema& s = db_->catalog().table("scripts")->schema();
  EXPECT_EQ(s.primary_key(), "name");
  EXPECT_TRUE(s.column(1).indexed);
  EXPECT_FALSE(s.column(3).nullable);
  exec("DROP TABLE scripts");
  EXPECT_FALSE(db_->catalog().has_table("scripts"));
}

TEST_F(SqlFixture, CreateWithForeignKey) {
  exec("CREATE TABLE parent (name TEXT PRIMARY KEY)");
  exec("CREATE TABLE child (id INTEGER UNIQUE, p TEXT INDEXED, "
       "FOREIGN KEY (p) REFERENCES parent(name) ON DELETE CASCADE)");
  exec("INSERT INTO parent VALUES ('a')");
  exec("INSERT INTO child VALUES (1, 'a')");
  EXPECT_EQ(exec_err("INSERT INTO child VALUES (2, 'ghost')"),
            Errc::constraint_violation);
  exec("DELETE FROM parent WHERE name = 'a'");
  EXPECT_EQ(db_->catalog().table("child")->row_count(), 0u);  // cascaded
}

// --- DML + queries ---------------------------------------------------------

class SeededSql : public SqlFixture {
 protected:
  SeededSql() {
    exec("CREATE TABLE courses (name TEXT PRIMARY KEY, instructor TEXT INDEXED, "
         "credits INTEGER, rating REAL, active BOOLEAN)");
    const char* instructors[] = {"shih", "ma", "huang"};
    for (int i = 0; i < 12; ++i) {
      std::string stmt = "INSERT INTO courses VALUES ('c" + std::to_string(i) +
                         "', '" + instructors[i % 3] + "', " + std::to_string(i % 4) +
                         ", " + std::to_string(i) + ".5, " +
                         (i % 2 == 0 ? "TRUE" : "FALSE") + ")";
      exec(stmt);
    }
  }
};

TEST_F(SeededSql, SelectStar) {
  ResultSet rs = exec("SELECT * FROM courses");
  EXPECT_EQ(rs.columns.size(), 5u);
  EXPECT_EQ(rs.rows.size(), 12u);
}

TEST_F(SeededSql, SelectProjectionWhere) {
  ResultSet rs = exec(
      "SELECT name, credits FROM courses WHERE instructor = 'ma' AND credits >= 2");
  EXPECT_EQ(rs.columns, (std::vector<std::string>{"name", "credits"}));
  for (const auto& row : rs.rows) {
    EXPECT_GE(row[1].as_int(), 2);
  }
  EXPECT_EQ(rs.rows.size(), 2u);  // i in {7, 10}: i%3==1 and i%4>=2
}

TEST_F(SeededSql, CountStar) {
  ResultSet rs = exec("SELECT COUNT(*) FROM courses WHERE active = TRUE");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_int(), 6);
}

TEST_F(SeededSql, OrderByAndLimit) {
  ResultSet rs = exec("SELECT name FROM courses ORDER BY rating DESC LIMIT 3");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0].as_text(), "c11");
  EXPECT_EQ(rs.rows[2][0].as_text(), "c9");
}

TEST_F(SeededSql, LikeIsContains) {
  ResultSet rs = exec("SELECT name FROM courses WHERE name LIKE 'c1'");
  // c1, c10, c11.
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(SeededSql, IsNullPredicates) {
  exec("CREATE TABLE t (k INTEGER, v TEXT)");
  exec("INSERT INTO t VALUES (1, NULL)");
  exec("INSERT INTO t VALUES (2, 'x')");
  EXPECT_EQ(exec("SELECT * FROM t WHERE v IS NULL").rows.size(), 1u);
  EXPECT_EQ(exec("SELECT * FROM t WHERE v IS NOT NULL").rows.size(), 1u);
}

TEST_F(SeededSql, UpdateWithWhere) {
  ResultSet rs = exec("UPDATE courses SET credits = 9, active = FALSE "
                      "WHERE instructor = 'shih'");
  EXPECT_EQ(rs.affected, 4u);
  EXPECT_EQ(exec("SELECT COUNT(*) FROM courses WHERE credits = 9").rows[0][0].as_int(),
            4);
}

TEST_F(SeededSql, UpdateWithoutWhereTouchesAll) {
  ResultSet rs = exec("UPDATE courses SET rating = 0.0");
  EXPECT_EQ(rs.affected, 12u);
}

TEST_F(SeededSql, DeleteWithWhere) {
  ResultSet rs = exec("DELETE FROM courses WHERE credits < 2");
  EXPECT_EQ(rs.affected, 6u);
  EXPECT_EQ(exec("SELECT COUNT(*) FROM courses").rows[0][0].as_int(), 6);
}

TEST_F(SeededSql, InsertReportsRowId) {
  ResultSet rs = exec("INSERT INTO courses VALUES ('cz', 'shih', 1, 0.1, TRUE)");
  EXPECT_EQ(rs.affected, 1u);
  EXPECT_TRUE(rs.last_insert_row.has_value());
}

TEST_F(SeededSql, BlobLiteralRoundTrip) {
  exec("CREATE TABLE files (path TEXT PRIMARY KEY, data BLOB)");
  exec("INSERT INTO files VALUES ('a.bin', X'cafebabe')");
  ResultSet rs = exec("SELECT data FROM files WHERE path = 'a.bin'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_blob(), (Bytes{0xca, 0xfe, 0xba, 0xbe}));
}

TEST_F(SeededSql, EscapedQuoteInText) {
  exec("INSERT INTO courses VALUES ('it''s', 'shih', 0, 0.0, TRUE)");
  ResultSet rs = exec("SELECT name FROM courses WHERE name = 'it''s'");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_text(), "it's");
}

TEST_F(SeededSql, TrailingSemicolonAccepted) {
  EXPECT_EQ(exec("SELECT COUNT(*) FROM courses;").rows[0][0].as_int(), 12);
}

TEST_F(SeededSql, CaseInsensitiveKeywords) {
  ResultSet rs = exec("select name from courses where instructor = 'ma' "
                      "order by name limit 2");
  EXPECT_EQ(rs.rows.size(), 2u);
}

// --- aggregates + GROUP BY ---------------------------------------------------

TEST_F(SeededSql, AggregatesWholeTable) {
  ResultSet rs = exec("SELECT COUNT(*), SUM(credits), AVG(rating), MIN(name), "
                      "MAX(name) FROM courses");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.columns[1], "sum_credits");
  EXPECT_EQ(rs.rows[0][0].as_int(), 12);
  EXPECT_DOUBLE_EQ(rs.rows[0][1].as_real(), 18.0);  // 3*(0+1+2+3)
  EXPECT_DOUBLE_EQ(rs.rows[0][2].as_real(), 6.0);   // mean of 0.5..11.5
  EXPECT_EQ(rs.rows[0][3].as_text(), "c0");
  EXPECT_EQ(rs.rows[0][4].as_text(), "c9");
}

TEST_F(SeededSql, GroupByWithAggregates) {
  ResultSet rs = exec("SELECT instructor, COUNT(*), SUM(credits) FROM courses "
                      "GROUP BY instructor ORDER BY instructor");
  ASSERT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.rows[0][0].as_text(), "huang");
  EXPECT_EQ(rs.rows[0][1].as_int(), 4);
  EXPECT_EQ(rs.rows[1][0].as_text(), "ma");
  EXPECT_EQ(rs.rows[2][0].as_text(), "shih");
}

TEST_F(SeededSql, GroupByWithWhereAndOrderByAggregate) {
  ResultSet rs = exec("SELECT instructor, COUNT(*) FROM courses "
                      "WHERE credits >= 1 GROUP BY instructor "
                      "ORDER BY count DESC LIMIT 1");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_GE(rs.rows[0][1].as_int(), 3);
}

TEST_F(SeededSql, AggregateOverEmptySelection) {
  ResultSet rs = exec("SELECT COUNT(*), AVG(rating) FROM courses WHERE credits > 99");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_int(), 0);
  EXPECT_TRUE(rs.rows[0][1].is_null());
}

TEST_F(SeededSql, AvgIgnoresNulls) {
  exec("CREATE TABLE t (k INTEGER, v REAL)");
  exec("INSERT INTO t VALUES (1, 10.0)");
  exec("INSERT INTO t VALUES (2, NULL)");
  exec("INSERT INTO t VALUES (3, 20.0)");
  ResultSet rs = exec("SELECT AVG(v), COUNT(*) FROM t");
  EXPECT_DOUBLE_EQ(rs.rows[0][0].as_real(), 15.0);
  EXPECT_EQ(rs.rows[0][1].as_int(), 3);
}

TEST_F(SeededSql, NonAggregatedColumnRequiresGroupBy) {
  EXPECT_EQ(exec_err("SELECT instructor, COUNT(*) FROM courses"),
            Errc::invalid_argument);
  EXPECT_EQ(exec_err("SELECT name, COUNT(*) FROM courses GROUP BY instructor"),
            Errc::invalid_argument);
}

TEST_F(SeededSql, GroupByWithoutAggregatesListsGroups) {
  ResultSet rs = exec("SELECT instructor FROM courses GROUP BY instructor");
  EXPECT_EQ(rs.rows.size(), 3u);
}

// --- JOIN ------------------------------------------------------------------

class JoinSql : public SqlFixture {
 protected:
  JoinSql() {
    exec("CREATE TABLE script (name TEXT PRIMARY KEY, author TEXT)");
    exec("CREATE TABLE impl (url TEXT PRIMARY KEY, script TEXT INDEXED, "
         "try INTEGER, FOREIGN KEY (script) REFERENCES script(name))");
    exec("INSERT INTO script VALUES ('s1', 'shih')");
    exec("INSERT INTO script VALUES ('s2', 'ma')");
    exec("INSERT INTO script VALUES ('s3', 'huang')");  // no implementations
    exec("INSERT INTO impl VALUES ('http://x/1', 's1', 1)");
    exec("INSERT INTO impl VALUES ('http://x/2', 's1', 2)");
    exec("INSERT INTO impl VALUES ('http://y/1', 's2', 1)");
  }
};

TEST_F(JoinSql, InnerJoinMatchesPairs) {
  ResultSet rs = exec("SELECT script.author, impl.url FROM script "
                      "JOIN impl ON script.name = impl.script "
                      "ORDER BY impl.url");
  EXPECT_EQ(rs.columns, (std::vector<std::string>{"script.author", "impl.url"}));
  ASSERT_EQ(rs.rows.size(), 3u);  // s3 has no implementations
  EXPECT_EQ(rs.rows[0][0].as_text(), "shih");
  EXPECT_EQ(rs.rows[0][1].as_text(), "http://x/1");
  EXPECT_EQ(rs.rows[2][0].as_text(), "ma");
}

TEST_F(JoinSql, JoinStarExpandsBothTables) {
  ResultSet rs = exec("SELECT * FROM script JOIN impl ON script.name = impl.script");
  EXPECT_EQ(rs.columns.size(), 5u);  // 2 + 3
  EXPECT_EQ(rs.columns[0], "script.name");
  EXPECT_EQ(rs.columns[4], "impl.try");
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(JoinSql, JoinWithWhereOnEitherSide) {
  ResultSet rs = exec("SELECT impl.url FROM script JOIN impl "
                      "ON script.name = impl.script "
                      "WHERE script.author = 'shih' AND impl.try = 2");
  ASSERT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(rs.rows[0][0].as_text(), "http://x/2");
}

TEST_F(JoinSql, UnqualifiedColumnsResolveWhenUnambiguous) {
  ResultSet rs = exec("SELECT author, url FROM script JOIN impl "
                      "ON name = script ORDER BY url LIMIT 2");
  ASSERT_EQ(rs.rows.size(), 2u);
  EXPECT_EQ(rs.columns[0], "script.author");
}

TEST_F(JoinSql, JoinReversedConditionWorks) {
  ResultSet rs = exec("SELECT impl.url FROM script JOIN impl "
                      "ON impl.script = script.name");
  EXPECT_EQ(rs.rows.size(), 3u);
}

TEST_F(JoinSql, NullKeysJoinNothing) {
  exec("CREATE TABLE a (k TEXT)");
  exec("CREATE TABLE b (k TEXT)");
  exec("INSERT INTO a VALUES (NULL)");
  exec("INSERT INTO b VALUES (NULL)");
  exec("INSERT INTO a VALUES ('x')");
  exec("INSERT INTO b VALUES ('x')");
  ResultSet rs = exec("SELECT * FROM a JOIN b ON a.k = b.k");
  EXPECT_EQ(rs.rows.size(), 1u);
}

TEST_F(JoinSql, JoinErrors) {
  EXPECT_EQ(exec_err("SELECT * FROM script JOIN ghost ON a = b"), Errc::not_found);
  EXPECT_EQ(exec_err("SELECT * FROM script JOIN impl ON script.name = script.author"),
            Errc::invalid_argument);  // same-table condition
  EXPECT_EQ(exec_err("SELECT COUNT(*) FROM script JOIN impl ON name = script"),
            Errc::unsupported);
  EXPECT_EQ(exec_err("SELECT ghost FROM script JOIN impl ON name = script"),
            Errc::invalid_argument);
  // 'try' exists only in impl, but 'name'... both? name only in script,
  // script column only in impl. An ambiguous example: add same-named cols.
  exec("CREATE TABLE c1 (x TEXT)");
  exec("CREATE TABLE c2 (x TEXT, y TEXT)");
  EXPECT_EQ(exec_err("SELECT x FROM c1 JOIN c2 ON c1.x = c2.y"),
            Errc::invalid_argument);  // ambiguous x
}

// --- errors ----------------------------------------------------------------

TEST_F(SeededSql, SyntaxErrors) {
  EXPECT_EQ(exec_err("SELEC * FROM courses"), Errc::invalid_argument);
  EXPECT_EQ(exec_err("SELECT * courses"), Errc::invalid_argument);
  EXPECT_EQ(exec_err("SELECT * FROM courses WHERE"), Errc::invalid_argument);
  EXPECT_EQ(exec_err("SELECT * FROM courses LIMIT -1"), Errc::invalid_argument);
  EXPECT_EQ(exec_err("INSERT INTO courses VALUES (1"), Errc::invalid_argument);
  EXPECT_EQ(exec_err("SELECT * FROM courses extra garbage"), Errc::invalid_argument);
}

TEST_F(SeededSql, SemanticErrors) {
  EXPECT_EQ(exec_err("SELECT * FROM ghost"), Errc::not_found);
  EXPECT_EQ(exec_err("SELECT ghost FROM courses"), Errc::invalid_argument);
  EXPECT_EQ(exec_err("INSERT INTO courses VALUES ('x', 'y')"),
            Errc::invalid_argument);  // arity
  EXPECT_EQ(exec_err("INSERT INTO courses VALUES "
                     "('c0', 'dup', 0, 0.0, TRUE)"),
            Errc::constraint_violation);  // duplicate PK
  EXPECT_EQ(exec_err("CREATE TABLE courses (x INTEGER)"), Errc::already_exists);
}

TEST_F(SeededSql, ResultSetToString) {
  ResultSet rs = exec("SELECT name, credits FROM courses WHERE name = 'c1'");
  std::string text = rs.to_string();
  EXPECT_NE(text.find("name | credits"), std::string::npos);
  EXPECT_NE(text.find("'c1' | 1"), std::string::npos);
  ResultSet dml = exec("UPDATE courses SET credits = 1 WHERE name = 'c1'");
  EXPECT_NE(dml.to_string().find("affected: 1"), std::string::npos);
}

// --- end-to-end over paper-shaped tables -------------------------------------

TEST_F(SqlFixture, PaperSchemaScenario) {
  exec("CREATE TABLE script (name TEXT PRIMARY KEY, author TEXT INDEXED, "
       "pct REAL)");
  exec("CREATE TABLE implementation (url TEXT PRIMARY KEY, script TEXT INDEXED, "
       "try INTEGER, FOREIGN KEY (script) REFERENCES script(name) "
       "ON DELETE CASCADE)");
  exec("INSERT INTO script VALUES ('intro-ce', 'shih', 10.0)");
  exec("INSERT INTO implementation VALUES ('http://x/1', 'intro-ce', 1)");
  exec("INSERT INTO implementation VALUES ('http://x/2', 'intro-ce', 2)");

  EXPECT_EQ(exec("SELECT COUNT(*) FROM implementation WHERE script = 'intro-ce'")
                .rows[0][0]
                .as_int(),
            2);
  exec("UPDATE script SET pct = 60.0 WHERE name = 'intro-ce'");
  EXPECT_DOUBLE_EQ(
      exec("SELECT pct FROM script WHERE name = 'intro-ce'").rows[0][0].as_real(),
      60.0);
  exec("DELETE FROM script WHERE name = 'intro-ce'");
  EXPECT_EQ(exec("SELECT COUNT(*) FROM implementation").rows[0][0].as_int(), 0);
}

}  // namespace
}  // namespace wdoc::storage::sql

// Network tests: simulator timing model (serialization + propagation +
// FIFO queueing), determinism, loss, stats, scheduling; and the threaded
// transport delivering the same Message types for real.
#include <gtest/gtest.h>

#include <atomic>

#include "net/sim_network.hpp"
#include "net/thread_transport.hpp"

namespace wdoc::net {
namespace {

Message make_msg(StationId from, StationId to, std::uint64_t size) {
  Message m;
  m.from = from;
  m.to = to;
  m.type = "test";
  m.wire_size = size;
  return m;
}

TEST(SimNetwork, DeliversWithSerializationAndLatency) {
  SimNetwork net;
  StationLink link;
  link.up_bps = 8e6;               // 1 MB/s
  link.down_bps = 8e6;
  link.latency = SimTime::millis(10);
  StationId a = net.add_station(link);
  StationId b = net.add_station(link);

  SimTime delivered = SimTime::zero();
  net.set_handler(b, [&](const Message&) { delivered = net.now(); });
  // 1 MB at 1 MB/s: 1 s up + 1 s down + 20 ms propagation (both ends).
  ASSERT_TRUE(net.send(make_msg(a, b, 1000000)).is_ok());
  net.run();
  EXPECT_NEAR(delivered.as_seconds(), 2.02, 1e-6);
}

TEST(SimNetwork, UplinkSerializesSequentialSends) {
  SimNetwork net;
  StationLink link;
  link.up_bps = 8e6;
  link.down_bps = 8e9;  // downlink effectively free
  link.latency = SimTime::zero();
  StationId a = net.add_station(link);
  StationId b = net.add_station(link);
  StationId c = net.add_station(link);

  SimTime t_b, t_c;
  net.set_handler(b, [&](const Message&) { t_b = net.now(); });
  net.set_handler(c, [&](const Message&) { t_c = net.now(); });
  // Two 1 MB messages from the same sender: the second waits for the first
  // to clear the uplink (the star-broadcast penalty).
  ASSERT_TRUE(net.send(make_msg(a, b, 1000000)).is_ok());
  ASSERT_TRUE(net.send(make_msg(a, c, 1000000)).is_ok());
  net.run();
  EXPECT_NEAR(t_b.as_seconds(), 1.0, 0.01);
  EXPECT_NEAR(t_c.as_seconds(), 2.0, 0.01);
}

TEST(SimNetwork, DownlinkQueuesConcurrentArrivals) {
  SimNetwork net;
  StationLink fast;
  fast.up_bps = 8e9;
  fast.down_bps = 8e9;
  fast.latency = SimTime::zero();
  StationLink slow = fast;
  slow.down_bps = 8e6;  // 1 MB/s downlink
  StationId a = net.add_station(fast);
  StationId b = net.add_station(fast);
  StationId sink = net.add_station(slow);

  int received = 0;
  SimTime last;
  net.set_handler(sink, [&](const Message&) {
    ++received;
    last = net.now();
  });
  ASSERT_TRUE(net.send(make_msg(a, sink, 1000000)).is_ok());
  ASSERT_TRUE(net.send(make_msg(b, sink, 1000000)).is_ok());
  net.run();
  EXPECT_EQ(received, 2);
  EXPECT_NEAR(last.as_seconds(), 2.0, 0.01);  // second message queued behind first
}

TEST(SimNetwork, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    SimNetwork net(seed);
    StationLink link;
    link.loss_rate = 0.3;
    StationId a = net.add_station(link);
    std::vector<StationId> receivers;
    for (int i = 0; i < 10; ++i) receivers.push_back(net.add_station(link));
    std::vector<std::uint64_t> order;
    for (StationId r : receivers) {
      net.set_handler(r, [&, r](const Message&) { order.push_back(r.value()); });
    }
    for (int round = 0; round < 5; ++round) {
      for (StationId r : receivers) {
        (void)net.send(make_msg(a, r, 1000 + static_cast<std::uint64_t>(round)));
      }
    }
    net.run();
    return order;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(SimNetwork, LossDropsMessages) {
  SimNetwork net(1);
  StationLink lossy;
  lossy.loss_rate = 1.0;
  StationId a = net.add_station(lossy);
  StationId b = net.add_station(lossy);
  int received = 0;
  net.set_handler(b, [&](const Message&) { ++received; });
  ASSERT_TRUE(net.send(make_msg(a, b, 100)).is_ok());
  net.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.stats(a).messages_dropped, 1u);
}

TEST(SimNetwork, OfflineStationsDropTraffic) {
  SimNetwork net;
  StationId a = net.add_station();
  StationId b = net.add_station();
  int received = 0;
  net.set_handler(b, [&](const Message&) { ++received; });
  ASSERT_TRUE(net.set_online(b, false).is_ok());
  ASSERT_TRUE(net.send(make_msg(a, b, 100)).is_ok());
  net.run();
  EXPECT_EQ(received, 0);
  ASSERT_TRUE(net.set_online(b, true).is_ok());
  ASSERT_TRUE(net.send(make_msg(a, b, 100)).is_ok());
  net.run();
  EXPECT_EQ(received, 1);
}

TEST(SimNetwork, UnknownStationsRejected) {
  SimNetwork net;
  StationId a = net.add_station();
  EXPECT_EQ(net.send(make_msg(a, StationId{99}, 1)).code(), Errc::not_found);
  EXPECT_EQ(net.send(make_msg(StationId{99}, a, 1)).code(), Errc::not_found);
}

TEST(SimNetwork, StatsAccounting) {
  SimNetwork net;
  StationId a = net.add_station();
  StationId b = net.add_station();
  net.set_handler(b, [](const Message&) {});
  ASSERT_TRUE(net.send(make_msg(a, b, 500)).is_ok());
  ASSERT_TRUE(net.send(make_msg(a, b, 300)).is_ok());
  net.run();
  EXPECT_EQ(net.stats(a).messages_sent, 2u);
  EXPECT_EQ(net.stats(a).bytes_sent, 800u);
  EXPECT_EQ(net.stats(b).messages_received, 2u);
  EXPECT_EQ(net.stats(b).bytes_received, 800u);
  EXPECT_EQ(net.total_bytes_on_wire(), 800u);
  net.reset_stats();
  EXPECT_EQ(net.stats(a).messages_sent, 0u);
  EXPECT_EQ(net.total_messages(), 0u);
}

TEST(SimNetwork, PayloadSizeUsedWhenNoWireSize) {
  SimNetwork net;
  StationId a = net.add_station();
  StationId b = net.add_station();
  net.set_handler(b, [](const Message&) {});
  Message m;
  m.from = a;
  m.to = b;
  m.type = "x";
  m.payload = Bytes(100, 0);
  ASSERT_TRUE(net.send(std::move(m)).is_ok());
  net.run();
  EXPECT_EQ(net.stats(a).bytes_sent, 164u);  // payload + 64B header
}

// Two timers at the SAME SimTime must fire in schedule order: the event
// queue breaks at-ties by seq, and the explicit-heap rewrite must preserve
// that strict (at, seq) total order.
TEST(SimNetwork, SameTimeEventsRunInScheduleOrder) {
  SimNetwork net;
  std::vector<int> order;
  net.schedule_at(SimTime::millis(10), [&] { order.push_back(1); });
  net.schedule_at(SimTime::millis(10), [&] { order.push_back(2); });
  net.schedule_at(SimTime::millis(5), [&] { order.push_back(0); });
  net.schedule_at(SimTime::millis(10), [&] { order.push_back(3); });
  net.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// Two messages arriving at the same instant (identical links, identical
// size, sent back to back at t=0) deliver in send order.
TEST(SimNetwork, SameArrivalTimeDeliversInSendOrder) {
  SimNetwork net;
  StationId a = net.add_station();
  StationId b = net.add_station();
  StationId c = net.add_station();
  std::vector<std::string> order;
  net.set_handler(c, [&](const Message& m) { order.push_back(m.type); });
  Message first;
  first.from = a;
  first.to = c;
  first.type = "first";
  Message second;
  second.from = b;
  second.to = c;
  second.type = "second";
  ASSERT_TRUE(net.send(std::move(first)).is_ok());
  ASSERT_TRUE(net.send(std::move(second)).is_ok());
  net.run();
  EXPECT_EQ(order, (std::vector<std::string>{"first", "second"}));
}

TEST(SimNetwork, ScheduledWorkRunsInTimeOrder) {
  SimNetwork net;
  std::vector<int> order;
  net.schedule_at(SimTime::millis(30), [&] { order.push_back(3); });
  net.schedule_at(SimTime::millis(10), [&] { order.push_back(1); });
  net.schedule_at(SimTime::millis(20), [&] { order.push_back(2); });
  net.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(net.now(), SimTime::millis(30));
}

TEST(SimNetwork, RunUntilStopsAtBoundary) {
  SimNetwork net;
  int fired = 0;
  net.schedule_at(SimTime::millis(10), [&] { ++fired; });
  net.schedule_at(SimTime::millis(50), [&] { ++fired; });
  net.run_until(SimTime::millis(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(net.now(), SimTime::millis(20));
  net.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimNetwork, MidRunLinkChange) {
  SimNetwork net;
  StationLink link;
  link.up_bps = 8e6;
  link.down_bps = 8e9;
  link.latency = SimTime::zero();
  StationId a = net.add_station(link);
  StationId b = net.add_station(link);
  SimTime t1, t2;
  net.set_handler(b, [&](const Message& m) {
    if (m.seq == 1) {
      t1 = net.now();
    } else {
      t2 = net.now();
    }
  });
  ASSERT_TRUE(net.send(make_msg(a, b, 1000000)).is_ok());
  net.run();
  // Degrade the uplink 10x; same transfer now takes 10x longer.
  StationLink degraded = link;
  degraded.up_bps = 8e5;
  ASSERT_TRUE(net.set_link(a, degraded).is_ok());
  ASSERT_TRUE(net.send(make_msg(a, b, 1000000)).is_ok());
  net.run();
  EXPECT_NEAR((t2 - t1).as_seconds(), 10.0, 0.1);
}

TEST(SimNetwork, PairLatencyOverride) {
  SimNetwork net;
  StationLink link;
  link.up_bps = 8e9;
  link.down_bps = 8e9;
  link.latency = SimTime::millis(100);  // default: 200 ms end to end
  StationId a = net.add_station(link);
  StationId b = net.add_station(link);
  SimTime t;
  net.set_handler(b, [&](const Message&) { t = net.now(); });

  ASSERT_TRUE(net.send(make_msg(a, b, 1000)).is_ok());
  net.run();
  EXPECT_NEAR(t.as_millis(), 200.0, 1.0);

  // Same LAN: 1 ms, symmetric regardless of direction argument order.
  ASSERT_TRUE(net.set_pair_latency(b, a, SimTime::millis(1)).is_ok());
  SimTime before = net.now();
  ASSERT_TRUE(net.send(make_msg(a, b, 1000)).is_ok());
  net.run();
  EXPECT_NEAR((t - before).as_millis(), 1.0, 0.5);
  EXPECT_EQ(net.set_pair_latency(a, StationId{99}, SimTime::zero()).code(),
            Errc::not_found);
}

TEST(SimNetwork, JitterSpreadsDeliveries) {
  SimNetwork net(3);
  StationLink link;
  link.up_bps = 8e9;
  link.down_bps = 8e9;
  link.latency = SimTime::millis(10);
  link.jitter_max = SimTime::millis(50);
  StationId a = net.add_station(link);
  StationId b = net.add_station(link);
  std::vector<double> arrivals;
  net.set_handler(b, [&](const Message&) { arrivals.push_back(net.now().as_millis()); });
  // Independent sends from time 0 (uplink is effectively free).
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(net.send(make_msg(a, b, 10)).is_ok());
  }
  net.run();
  ASSERT_EQ(arrivals.size(), 50u);
  auto [lo, hi] = std::minmax_element(arrivals.begin(), arrivals.end());
  // Two jitter draws of up to 50 ms each on a 20 ms base: spread must be
  // well over the deterministic case (0) and below the 100 ms bound.
  EXPECT_GT(*hi - *lo, 10.0);
  EXPECT_LE(*hi, 20.0 + 100.0 + 1.0);
  EXPECT_GE(*lo, 20.0 - 0.5);
}

// --- ThreadTransport ------------------------------------------------------

TEST(ThreadTransport, DeliversToHandlerThread) {
  ThreadTransport transport;
  std::atomic<int> received{0};
  StationId b = transport.add_station([&](const Message&) { received++; });
  StationId a = transport.add_station([](const Message&) {});
  ASSERT_TRUE(transport.send(make_msg(a, b, 100)).is_ok());
  ASSERT_TRUE(transport.send(make_msg(a, b, 100)).is_ok());
  ASSERT_TRUE(transport.quiesce());
  EXPECT_EQ(received.load(), 2);
  EXPECT_EQ(transport.messages_delivered(), 2u);
  transport.shutdown();
}

TEST(ThreadTransport, PreservesFifoPerReceiver) {
  ThreadTransport transport;
  std::vector<std::uint64_t> seqs;
  std::mutex mu;
  StationId b = transport.add_station([&](const Message& m) {
    std::lock_guard<std::mutex> g(mu);
    seqs.push_back(m.seq);
  });
  StationId a = transport.add_station([](const Message&) {});
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(transport.send(make_msg(a, b, 10)).is_ok());
  }
  ASSERT_TRUE(transport.quiesce());
  ASSERT_EQ(seqs.size(), 50u);
  EXPECT_TRUE(std::is_sorted(seqs.begin(), seqs.end()));
  transport.shutdown();
}

TEST(ThreadTransport, UnknownReceiverRejected) {
  ThreadTransport transport;
  StationId a = transport.add_station([](const Message&) {});
  EXPECT_EQ(transport.send(make_msg(a, StationId{42}, 1)).code(), Errc::not_found);
  transport.shutdown();
}

TEST(ThreadTransport, NowAdvances) {
  ThreadTransport transport;
  SimTime t0 = transport.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GT(transport.now(), t0);
  transport.shutdown();
}

TEST(ThreadTransport, ShutdownIsIdempotent) {
  ThreadTransport transport;
  (void)transport.add_station([](const Message&) {});
  transport.shutdown();
  transport.shutdown();
}

}  // namespace
}  // namespace wdoc::net

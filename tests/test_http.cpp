// HTTP gateway subsystem: incremental parser (split reads, pipelining,
// limits), federated TF-IDF search (merge, dedup, determinism), gateway
// endpoints over VirtualLibrary + storage, and the real socket server.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "http/client.hpp"
#include "http/gateway.hpp"
#include "http/parser.hpp"
#include "http/search.hpp"
#include "http/server.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "storage/database.hpp"
#include "workload/library_corpus.hpp"

namespace wdoc::http {
namespace {

// --- parser -----------------------------------------------------------------

Request parse_one(const std::string& wire) {
  RequestParser p;
  EXPECT_TRUE(p.feed(wire));
  Request req;
  EXPECT_EQ(p.next(req), ParseStatus::ready);
  return req;
}

TEST(Parser, SimpleGet) {
  Request req = parse_one("GET /search?q=btree+index&limit=5 HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(req.method, Method::get);
  EXPECT_EQ(req.path, "/search");
  EXPECT_EQ(req.param("q").value_or(""), "btree index");
  EXPECT_EQ(req.param("limit").value_or(""), "5");
  EXPECT_TRUE(req.keep_alive);
  ASSERT_NE(req.header("host"), nullptr);
  EXPECT_EQ(*req.header("Host"), "x");
}

TEST(Parser, PercentDecodingAndNoHeaders) {
  Request req = parse_one("GET /doc?course=CS%31%30%31&x=a%2Bb HTTP/1.1\r\n\r\n");
  EXPECT_EQ(req.param("course").value_or(""), "CS101");
  EXPECT_EQ(req.param("x").value_or(""), "a+b");
  // Malformed escapes pass through verbatim.
  Request req2 = parse_one("GET /doc?course=%ZZ%4 HTTP/1.1\r\n\r\n");
  EXPECT_EQ(req2.param("course").value_or(""), "%ZZ%4");
}

TEST(Parser, SplitAcrossReadsByteByByte) {
  const std::string wire =
      "POST /check-out?course=CS101&student=7 HTTP/1.1\r\n"
      "Host: wdoc\r\nContent-Length: 5\r\n\r\nhello";
  RequestParser p;
  Request req;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    ASSERT_TRUE(p.feed(std::string_view(&wire[i], 1)));
    ParseStatus st = p.next(req);
    if (i + 1 < wire.size()) {
      ASSERT_EQ(st, ParseStatus::need_more) << "at byte " << i;
    } else {
      ASSERT_EQ(st, ParseStatus::ready);
    }
  }
  EXPECT_EQ(req.method, Method::post);
  EXPECT_EQ(req.body, "hello");
  EXPECT_EQ(req.param("student").value_or(""), "7");
}

TEST(Parser, PipelinedRequestsDrainInOrder) {
  RequestParser p;
  ASSERT_TRUE(p.feed("GET /a HTTP/1.1\r\n\r\n"
                     "POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
                     "GET /c HTTP/1.1\r\nConnection: close\r\n\r\n"));
  Request req;
  ASSERT_EQ(p.next(req), ParseStatus::ready);
  EXPECT_EQ(req.path, "/a");
  ASSERT_EQ(p.next(req), ParseStatus::ready);
  EXPECT_EQ(req.path, "/b");
  EXPECT_EQ(req.body, "hi");
  ASSERT_EQ(p.next(req), ParseStatus::ready);
  EXPECT_EQ(req.path, "/c");
  EXPECT_FALSE(req.keep_alive);
  EXPECT_EQ(p.next(req), ParseStatus::need_more);
  EXPECT_EQ(p.buffered_bytes(), 0u);
}

TEST(Parser, Http10DefaultsToClose) {
  Request req = parse_one("GET / HTTP/1.0\r\n\r\n");
  EXPECT_FALSE(req.keep_alive);
  Request req2 = parse_one("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
  EXPECT_TRUE(req2.keep_alive);
}

TEST(Parser, RejectsOversizedBodyDeclaration) {
  ParserLimits limits;
  limits.max_body = 64;
  RequestParser p(limits);
  ASSERT_TRUE(p.feed("POST /x HTTP/1.1\r\nContent-Length: 65\r\n\r\n"));
  Request req;
  EXPECT_EQ(p.next(req), ParseStatus::error);
  EXPECT_EQ(p.error_status(), 413);
  // Poisoned: stays in error.
  EXPECT_EQ(p.next(req), ParseStatus::error);
}

TEST(Parser, RejectsOverlongRequestLine) {
  ParserLimits limits;
  limits.max_request_line = 128;
  RequestParser p(limits);
  std::string wire = "GET /" + std::string(200, 'a');
  ASSERT_TRUE(p.feed(wire));  // no CRLF yet: length check still trips
  Request req;
  EXPECT_EQ(p.next(req), ParseStatus::error);
  EXPECT_EQ(p.error_status(), 414);
}

TEST(Parser, RejectsTooManyHeaders) {
  ParserLimits limits;
  limits.max_headers = 4;
  RequestParser p(limits);
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 6; ++i) wire += "h" + std::to_string(i) + ": v\r\n";
  wire += "\r\n";
  ASSERT_TRUE(p.feed(wire));
  Request req;
  EXPECT_EQ(p.next(req), ParseStatus::error);
  EXPECT_EQ(p.error_status(), 431);
}

TEST(Parser, RejectsGarbageAndUnsupported) {
  for (const char* wire : {
           "FLUB\r\n\r\n",                                // no spaces
           "GET  / HTTP/1.1\r\n\r\n",                     // double space
           "GET / HTTP/2.0\r\n\r\n",                      // bad version
           "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",       // bad header
           "GET / HTTP/1.1\r\nBad Name: v\r\n\r\n",       // ws in name
           "GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",  // bad length
           "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
       }) {
    RequestParser p;
    ASSERT_TRUE(p.feed(wire));
    Request req;
    EXPECT_EQ(p.next(req), ParseStatus::error) << wire;
  }
}

TEST(Parser, FeedRefusesBeyondBufferCap) {
  ParserLimits limits;
  limits.max_request_line = 64;
  limits.max_header_bytes = 64;
  limits.max_body = 64;
  RequestParser p(limits);
  std::string blob(limits.max_buffer() + 1, 'x');
  EXPECT_FALSE(p.feed(blob));
}

// --- federated search -------------------------------------------------------

library::LibraryEntry make_entry(const std::string& course, const std::string& title,
                                 const std::string& instructor,
                                 std::vector<std::string> keywords) {
  library::LibraryEntry e;
  e.course_number = course;
  e.title = title;
  e.instructor = instructor;
  e.keywords = std::move(keywords);
  e.script_name = "script-" + course;
  e.starting_url = "http://mmu.edu/" + course;
  return e;
}

struct Shards {
  Shards() : libs(2) {
    libs[0].add_entry(make_entry("CS101", "btree indexing", "knuth", {"btree", "storage"}))
        .expect("add");
    libs[0].add_entry(make_entry("CS201", "web documents", "codd", {"web", "hypertext"}))
        .expect("add");
    libs[1].add_entry(make_entry("CS301", "distributed systems", "gray", {"storage"}))
        .expect("add");
    // CS101 replicated on both shards: must merge to one hit.
    libs[1].add_entry(make_entry("CS101", "btree indexing", "knuth", {"btree", "storage"}))
        .expect("add");
  }
  [[nodiscard]] FederatedSearch search() const {
    return FederatedSearch({&libs[0], &libs[1]});
  }
  std::vector<library::VirtualLibrary> libs;
};

TEST(FederatedSearch, MergesAndDeduplicatesReplicas) {
  Shards s;
  auto hits = s.search().search("btree");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].course_number, "CS101");
  EXPECT_EQ(hits[0].instances, 2u);  // held by both shards, scored once
}

TEST(FederatedSearch, GlobalDfRanksRareTokensHigher) {
  Shards s;
  // "storage" appears in 2 courses, "hypertext" in 1: a hypertext hit must
  // outscore a storage hit (equal tf=1).
  auto storage_hits = s.search().search("storage");
  auto hyper_hits = s.search().search("hypertext");
  ASSERT_EQ(storage_hits.size(), 2u);
  ASSERT_EQ(hyper_hits.size(), 1u);
  EXPECT_GT(hyper_hits[0].score, storage_hits[0].score);
}

TEST(FederatedSearch, TieBreaksByCourseAscending) {
  Shards s;
  auto hits = s.search().search("storage");
  ASSERT_EQ(hits.size(), 2u);
  // CS101 has tf("storage")=1 same as CS301; tie resolves by course id.
  EXPECT_LT(hits[0].score - hits[1].score, 1e-12);
  EXPECT_EQ(hits[0].course_number, "CS101");
  EXPECT_EQ(hits[1].course_number, "CS301");
}

TEST(FederatedSearch, CourseNumberAndInstructorBoosts) {
  Shards s;
  auto by_course = s.search().search("CS301");
  ASSERT_FALSE(by_course.empty());
  EXPECT_EQ(by_course[0].course_number, "CS301");
  EXPECT_GE(by_course[0].score, 100.0);

  auto by_instructor = s.search().search("knuth");
  ASSERT_EQ(by_instructor.size(), 1u);
  EXPECT_EQ(by_instructor[0].course_number, "CS101");
  // Replica on both shards must be boosted exactly once.
  EXPECT_GE(by_instructor[0].score, 10.0);
  EXPECT_LT(by_instructor[0].score, 20.0);
}

TEST(FederatedSearch, RepeatedQueryTokensScoreOnce) {
  Shards s;
  auto once = s.search().search("btree");
  auto twice = s.search().search("btree btree");
  ASSERT_EQ(once.size(), twice.size());
  EXPECT_DOUBLE_EQ(once[0].score, twice[0].score);
}

TEST(FederatedSearch, DeterministicAcrossRebuilds) {
  workload::LibraryCorpusConfig cfg;
  cfg.courses = 60;
  cfg.shards = 3;
  auto entries = workload::library_corpus(cfg);
  auto queries = workload::query_pool(cfg, 20);

  auto run = [&] {
    std::vector<library::VirtualLibrary> libs(cfg.shards);
    workload::populate_shards(libs, entries, cfg);
    FederatedSearch fs({&libs[0], &libs[1], &libs[2]});
    std::string rendered;
    for (const auto& q : queries) {
      for (const auto& h : fs.search(q, 10)) {
        rendered += h.course_number + ":" + std::to_string(h.score) + ":" +
                    std::to_string(h.instances) + ";";
      }
      rendered += "|";
    }
    return rendered;
  };
  EXPECT_EQ(run(), run());  // byte-identical result lists
}

// --- gateway ----------------------------------------------------------------

Request make_request(Method m, const std::string& target) {
  Request req;
  req.method = m;
  req.target = target;
  split_target(target, req.path, req.query);
  return req;
}

struct GatewayHarness {
  explicit GatewayHarness(const GatewayConfig& gw_cfg = GatewayConfig{})
      : db(storage::Database::in_memory()), docs(*db) {
    workload::LibraryCorpusConfig cfg;
    cfg.courses = 30;
    cfg.shards = 2;
    auto entries = workload::library_corpus(cfg);
    libs.resize(cfg.shards);
    workload::populate_shards(libs, entries, cfg);
    for (const auto& e : entries) {
      docs.put(e.course_number, workload::course_document(e)).expect("put doc");
    }
    gateway = std::make_unique<Gateway>(gw_cfg,
                                        std::vector<library::VirtualLibrary*>{
                                            &libs[0], &libs[1]},
                                        &docs);
    first_course = entries[0].course_number;
  }
  std::unique_ptr<storage::Database> db;
  StorageDocumentSource docs;
  std::vector<library::VirtualLibrary> libs;
  std::unique_ptr<Gateway> gateway;
  std::string first_course;
};

TEST(Gateway, SearchReturnsRankedJson) {
  GatewayHarness h;
  Response rsp = h.gateway->handle(make_request(Method::get, "/search?q=storage"));
  EXPECT_EQ(rsp.status, 200);
  EXPECT_NE(rsp.body.text().find("\"hits\":["), std::string::npos);
  EXPECT_NE(rsp.body.text().find("\"corpus\":30"), std::string::npos);

  Response bad = h.gateway->handle(make_request(Method::get, "/search"));
  EXPECT_EQ(bad.status, 400);
  Response bad_limit =
      h.gateway->handle(make_request(Method::get, "/search?q=x&limit=zero"));
  EXPECT_EQ(bad_limit.status, 400);
}

TEST(Gateway, SearchResponsesByteIdenticalAcrossInstances) {
  GatewayHarness h1, h2;
  for (const char* target :
       {"/search?q=storage+indexing", "/search?q=web&limit=3", "/search?q=CS101"}) {
    Response r1 = h1.gateway->handle(make_request(Method::get, target));
    Response r2 = h2.gateway->handle(make_request(Method::get, target));
    EXPECT_EQ(serialize(r1), serialize(r2)) << target;
  }
}

TEST(Gateway, LedgerFlowAndConflicts) {
  GatewayHarness h;
  const std::string co = "/check-out?course=" + h.first_course + "&student=7";
  const std::string ci = "/check-in?course=" + h.first_course + "&student=7";
  EXPECT_EQ(h.gateway->handle(make_request(Method::post, co)).status, 200);
  // Double check-out conflicts; replicas answered consistently.
  EXPECT_EQ(h.gateway->handle(make_request(Method::post, co)).status, 409);
  EXPECT_EQ(h.gateway->handle(make_request(Method::post, ci)).status, 200);
  // Check-in with nothing out: not found.
  EXPECT_EQ(h.gateway->handle(make_request(Method::post, ci)).status, 404);
  // Unknown course / bad student / wrong verb.
  EXPECT_EQ(h.gateway->handle(make_request(Method::post, "/check-out?course=NOPE&student=7"))
                .status,
            404);
  EXPECT_EQ(h.gateway->handle(make_request(Method::post,
                                           "/check-out?course=CS100&student=abc"))
                .status,
            400);
  EXPECT_EQ(h.gateway->handle(make_request(Method::get, co)).status, 405);
  // Logical clock ticked once per accepted mutation attempt.
  EXPECT_GT(h.gateway->logical_now(), 0);
}

TEST(Gateway, LedgerAppliesToEveryReplica) {
  GatewayHarness h;
  // Find a course present on both shards.
  std::string replicated;
  for (const auto& [course, _] : h.libs[0].entries()) {
    if (h.libs[1].entries().contains(course)) {
      replicated = course;
      break;
    }
  }
  ASSERT_FALSE(replicated.empty()) << "corpus must replicate something";
  Response rsp = h.gateway->handle(
      make_request(Method::post, "/check-out?course=" + replicated + "&student=9"));
  EXPECT_EQ(rsp.status, 200);
  EXPECT_EQ(h.libs[0].holders_of(replicated).size(), 1u);
  EXPECT_EQ(h.libs[1].holders_of(replicated).size(), 1u);
}

TEST(Gateway, DocumentFetchServesStorageBackedBody) {
  GatewayHarness h;
  Response rsp =
      h.gateway->handle(make_request(Method::get, "/doc?course=" + h.first_course));
  EXPECT_EQ(rsp.status, 200);
  EXPECT_NE(rsp.body.text().find("<html>"), std::string::npos);
  EXPECT_NE(rsp.body.text().find(h.first_course), std::string::npos);
  EXPECT_EQ(h.gateway->handle(make_request(Method::get, "/doc?course=GHOST")).status, 404);
}

TEST(Gateway, HealthMetricsAndQuit) {
  GatewayHarness h;
  EXPECT_EQ(h.gateway->handle(make_request(Method::get, "/healthz")).status, 200);
  Response metrics = h.gateway->handle(make_request(Method::get, "/metrics"));
  EXPECT_EQ(metrics.status, 200);
  EXPECT_FALSE(h.gateway->quit_requested());
  Response quit = h.gateway->handle(make_request(Method::post, "/admin/quit"));
  EXPECT_EQ(quit.status, 200);
  EXPECT_FALSE(quit.keep_alive);
  EXPECT_TRUE(h.gateway->quit_requested());
  EXPECT_EQ(h.gateway->handle(make_request(Method::get, "/nope")).status, 404);
}

TEST(Gateway, MetricsIsJsonWithBucketBounds) {
  GatewayHarness h;
  (void)h.gateway->handle(make_request(Method::get, "/search?q=storage"));
  Response metrics = h.gateway->handle(make_request(Method::get, "/metrics"));
  EXPECT_EQ(metrics.status, 200);
  ASSERT_TRUE(metrics.headers.count("Content-Type"));
  EXPECT_EQ(metrics.headers.at("Content-Type"), "application/json");
  // Histograms expose their bucket boundaries, not just aggregates.
  EXPECT_NE(metrics.body.text().find("http.request_micros"), std::string::npos);
  EXPECT_NE(metrics.body.text().find("\"buckets\":["), std::string::npos);
  EXPECT_NE(metrics.body.text().find("\"le\":"), std::string::npos);
}

TEST(Gateway, DebugSloSnapshotAndGating) {
  GatewayHarness h;
  (void)h.gateway->handle(make_request(Method::get, "/doc?course=" + h.first_course));
  Response slo = h.gateway->handle(make_request(Method::get, "/debug/slo"));
  EXPECT_EQ(slo.status, 200);
  EXPECT_EQ(slo.headers.at("Content-Type"), "application/json");
  for (const char* needle : {"http.search.latency", "http.doc.latency",
                             "http.availability", "\"windows\"", "\"fast_alert\""}) {
    EXPECT_NE(slo.body.text().find(needle), std::string::npos) << needle;
  }
  EXPECT_EQ(h.gateway->handle(make_request(Method::post, "/debug/slo")).status, 405);

  GatewayConfig off;
  off.enable_debug = false;
  GatewayHarness h2(off);
  EXPECT_EQ(h2.gateway->handle(make_request(Method::get, "/debug/slo")).status, 404);
}

TEST(Gateway, SlowDocRequestIsTailPromotedWithExemplar) {
  GatewayConfig cfg;
  cfg.trace.head_sample_rate = 0.0;  // only the tail path may promote
  cfg.trace.tail_latency_micros = 0;  // every request counts as slow
  GatewayHarness h(cfg);
  obs::Tracer::global().clear();
  auto& doc_hist = obs::MetricsRegistry::global().histogram(
      "http.request_micros", {{"endpoint", "doc"}});
  doc_hist.reset();  // drop exemplars left by earlier tests

  Response rsp =
      h.gateway->handle(make_request(Method::get, "/doc?course=" + h.first_course));
  EXPECT_EQ(rsp.status, 200);

  // The whole request tree was promoted: edge root, handler, storage fetch.
  auto spans = obs::Tracer::global().spans();
  std::uint64_t trace = 0;
  for (const auto& s : spans) {
    if (s.name == "GET /doc") trace = s.trace_id;
  }
  ASSERT_NE(trace, 0u) << "tail sampling must promote the slow request";
  std::set<std::string> names;
  for (const auto& s : spans) {
    if (s.trace_id == trace) names.insert(s.name);
  }
  EXPECT_TRUE(names.count("gateway.doc"));
  EXPECT_TRUE(names.count("storage.doc.fetch"));

  // The latency histogram's exemplar points back at that same trace.
  bool exemplar_found = false;
  for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
    if (doc_hist.exemplar(i) == trace) exemplar_found = true;
  }
  EXPECT_TRUE(exemplar_found) << "p-bucket exemplar must resolve to the trace";
  obs::Tracer::global().clear();
}

// --- server round trip ------------------------------------------------------

struct ServerHarness {
  ServerHarness() {
    ServerConfig cfg;
    cfg.workers = 4;
    cfg.idle_timeout_ms = 2000;
    server = std::make_unique<HttpServer>(
        cfg, [this](const Request& req) { return harness.gateway->handle(req); });
    server->start().expect("server start");
  }
  ~ServerHarness() { server->stop(); }
  GatewayHarness harness;
  std::unique_ptr<HttpServer> server;
};

TEST(Server, RoundTripSearchLedgerAndDoc) {
  ServerHarness s;
  HttpClient client;
  client.connect("127.0.0.1", s.server->port()).expect("connect");

  auto health = client.get("/healthz").expect("healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(health.body, "ok\n");

  auto search = client.get("/search?q=storage&limit=5").expect("search");
  EXPECT_EQ(search.status, 200);
  EXPECT_EQ(search.headers.at("content-type"), "application/json");

  const std::string course = s.harness.first_course;
  auto co = client.post("/check-out?course=" + course + "&student=11").expect("co");
  EXPECT_EQ(co.status, 200);
  auto ci = client.post("/check-in?course=" + course + "&student=11").expect("ci");
  EXPECT_EQ(ci.status, 200);

  auto doc = client.get("/doc?course=" + course).expect("doc");
  EXPECT_EQ(doc.status, 200);
  EXPECT_NE(doc.body.find("<html>"), std::string::npos);
}

TEST(Server, PipelinedBatchAnsweredInOrder) {
  ServerHarness s;
  HttpClient client;
  client.connect("127.0.0.1", s.server->port()).expect("connect");
  // Send 20 requests before reading a single response.
  for (int i = 0; i < 20; ++i) {
    std::string target = (i % 2 == 0) ? "/healthz" : "/search?q=web";
    client.send_request("GET", target).expect("send");
  }
  for (int i = 0; i < 20; ++i) {
    auto rsp = client.read_response().expect("read");
    EXPECT_EQ(rsp.status, 200);
    if (i % 2 == 0) {
      EXPECT_EQ(rsp.body, "ok\n");
    } else {
      EXPECT_NE(rsp.body.find("\"hits\""), std::string::npos);
    }
  }
}

TEST(Server, ParseErrorAnswersAndCloses) {
  ServerHarness s;
  HttpClient client;
  client.connect("127.0.0.1", s.server->port()).expect("connect");
  client.send_raw("GET / HTTP/9.9\r\n\r\n").expect("send");
  auto rsp = client.read_response().expect("read");
  EXPECT_EQ(rsp.status, 400);
  EXPECT_FALSE(rsp.keep_alive);
}

TEST(Server, ConcurrentClientsStayConsistent) {
  ServerHarness s;
  constexpr int kClients = 4;
  constexpr int kRequests = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      HttpClient client;
      if (!client.connect("127.0.0.1", s.server->port()).is_ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        // Distinct students per thread: ledger ops never conflict.
        std::string student = std::to_string(100 + c);
        auto co = client.post("/check-out?course=" + s.harness.first_course +
                              "&student=" + student);
        auto ci = client.post("/check-in?course=" + s.harness.first_course +
                              "&student=" + student);
        auto se = client.get("/search?q=distributed+storage");
        if (!co.is_ok() || co.value().status != 200 || !ci.is_ok() ||
            ci.value().status != 200 || !se.is_ok() || se.value().status != 200) {
          ++failures;
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Server, StopIsGracefulAndIdempotent) {
  auto s = std::make_unique<ServerHarness>();
  HttpClient client;
  client.connect("127.0.0.1", s->server->port()).expect("connect");
  EXPECT_EQ(client.get("/healthz").expect("get").status, 200);
  s->server->stop();
  s->server->stop();  // idempotent
  EXPECT_FALSE(s->server->running());
}

}  // namespace
}  // namespace wdoc::http

// RpcTracker lifecycle tests: deadlines, capped backoff with deterministic
// jitter, retry budgets, terminal errors, duplicate suppression, and the
// attempt-timeout observer that feeds the failure detector.
#include <gtest/gtest.h>

#include "net/rpc.hpp"
#include "net/sim_network.hpp"

namespace wdoc::net {
namespace {

TEST(BackoffPolicy, GrowsExponentiallyAndCaps) {
  BackoffPolicy p;
  p.initial = SimTime::millis(250);
  p.multiplier = 2.0;
  p.cap = SimTime::seconds(4);
  p.jitter = 0.0;
  Rng rng(1);
  EXPECT_EQ(p.delay(1, rng), SimTime::millis(250));
  EXPECT_EQ(p.delay(2, rng), SimTime::millis(500));
  EXPECT_EQ(p.delay(3, rng), SimTime::millis(1000));
  EXPECT_EQ(p.delay(4, rng), SimTime::millis(2000));
  EXPECT_EQ(p.delay(5, rng), SimTime::seconds(4));
  EXPECT_EQ(p.delay(50, rng), SimTime::seconds(4));  // capped forever
}

TEST(BackoffPolicy, JitterStaysWithinBoundsAndIsSeedDeterministic) {
  BackoffPolicy p;
  p.jitter = 0.25;
  std::vector<std::int64_t> a, b;
  {
    Rng rng(99);
    for (std::uint32_t r = 1; r <= 8; ++r) a.push_back(p.delay(r, rng).as_micros());
  }
  {
    Rng rng(99);
    for (std::uint32_t r = 1; r <= 8; ++r) b.push_back(p.delay(r, rng).as_micros());
  }
  EXPECT_EQ(a, b);  // same seed, same delays, bit-for-bit
  Rng rng(7);
  for (std::uint32_t r = 1; r <= 8; ++r) {
    BackoffPolicy flat = p;
    flat.jitter = 0.0;
    Rng dummy(0);
    const double base = static_cast<double>(flat.delay(r, dummy).as_micros());
    const double got = static_cast<double>(p.delay(r, rng).as_micros());
    EXPECT_GE(got, base * 0.75 - 1.0) << "retry " << r;
    EXPECT_LE(got, base * 1.25 + 1.0) << "retry " << r;
  }
}

TEST(RpcOptions, ValidateRejectsNonsense) {
  RpcOptions opts;
  EXPECT_TRUE(opts.validate().is_ok());  // documented defaults are valid

  RpcOptions zero_deadline;
  zero_deadline.deadline = SimTime::zero();
  EXPECT_EQ(zero_deadline.validate().code(), Errc::invalid_argument);

  RpcOptions shrinking;
  shrinking.backoff.multiplier = 0.5;
  EXPECT_EQ(shrinking.validate().code(), Errc::invalid_argument);

  RpcOptions inverted_cap;
  inverted_cap.backoff.cap = SimTime::millis(1);
  EXPECT_EQ(inverted_cap.validate().code(), Errc::invalid_argument);

  RpcOptions wild_jitter;
  wild_jitter.backoff.jitter = 1.5;
  EXPECT_EQ(wild_jitter.validate().code(), Errc::invalid_argument);

  RpcOptions zero_initial;
  zero_initial.backoff.initial = SimTime::zero();
  EXPECT_EQ(zero_initial.validate().code(), Errc::invalid_argument);
}

struct TrackerFixture : ::testing::Test {
  TrackerFixture() : net(42), self(net.add_station()), rpc(net, self) {}

  SimNetwork net;
  StationId self;
  RpcTracker rpc;
};

TEST_F(TrackerFixture, CompletesOnceAndCancelledDeadlineDoesNotAdvanceTime) {
  RpcOptions opts;
  opts.deadline = SimTime::seconds(60);
  int fired = 0;
  Result<int> got = 0;
  rpc.track<int>(
      1, opts,
      [&](Result<int> r, SimTime) {
        ++fired;
        got = std::move(r);
      },
      [](std::uint32_t) { return Status::ok(); });
  EXPECT_TRUE(rpc.in_flight(1));
  net.schedule_after(SimTime::millis(100), [&] { EXPECT_TRUE(rpc.complete<int>(1, 7)); });
  net.run();
  EXPECT_EQ(fired, 1);
  ASSERT_TRUE(got.is_ok());
  EXPECT_EQ(got.value(), 7);
  EXPECT_FALSE(rpc.in_flight(1));
  EXPECT_EQ(rpc.pending(), 0u);
  EXPECT_EQ(rpc.stats().started, 1u);
  EXPECT_EQ(rpc.stats().completed, 1u);
  EXPECT_EQ(rpc.stats().attempt_timeouts, 0u);
  // The 60 s deadline timer was cancelled: it must not have dragged the
  // simulation clock forward (benches read now() after run()).
  EXPECT_EQ(net.now(), SimTime::millis(100));
}

TEST_F(TrackerFixture, RetriesAfterAttemptTimeoutThenCompletes) {
  RpcOptions opts;
  opts.deadline = SimTime::seconds(1);
  opts.max_retries = 3;
  int resends = 0;
  int fired = 0;
  rpc.track<int>(
      9, opts, [&](Result<int> r, SimTime) { ++fired; EXPECT_TRUE(r.is_ok()); },
      [&](std::uint32_t attempt) {
        ++resends;
        EXPECT_EQ(attempt, static_cast<std::uint32_t>(resends));
        if (resends == 2) {
          // The second resend finally "reaches" the server.
          net.schedule_after(SimTime::millis(10),
                             [&] { EXPECT_TRUE(rpc.complete<int>(9, 1)); });
        }
        return Status::ok();
      });
  net.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(resends, 2);
  const RpcStats st = rpc.stats();
  EXPECT_EQ(st.completed, 1u);
  EXPECT_EQ(st.retries, 2u);
  EXPECT_EQ(st.attempt_timeouts, 2u);
  EXPECT_EQ(st.exhausted, 0u);
}

TEST_F(TrackerFixture, ExhaustionDeliversTimeoutExactlyOnce) {
  RpcOptions opts;
  opts.deadline = SimTime::seconds(1);
  opts.max_retries = 2;  // 3 attempts total
  std::vector<std::pair<std::uint64_t, std::uint32_t>> observed;
  rpc.set_timeout_observer([&](std::uint64_t req, std::uint32_t attempt) {
    observed.emplace_back(req, attempt);
  });
  int fired = 0;
  Errc code = Errc::ok;
  rpc.track<int>(
      5, opts,
      [&](Result<int> r, SimTime) {
        ++fired;
        ASSERT_FALSE(r.is_ok());
        code = r.status().code();
      },
      [](std::uint32_t) { return Status::ok(); });
  net.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(code, Errc::timeout);
  const RpcStats st = rpc.stats();
  EXPECT_EQ(st.attempt_timeouts, 3u);
  EXPECT_EQ(st.retries, 2u);
  EXPECT_EQ(st.exhausted, 1u);
  EXPECT_EQ(st.completed, 0u);
  EXPECT_EQ(rpc.pending(), 0u);
  // The observer saw every attempt timeout, in order.
  ASSERT_EQ(observed.size(), 3u);
  EXPECT_EQ(observed[0], (std::pair<std::uint64_t, std::uint32_t>{5, 0}));
  EXPECT_EQ(observed[1], (std::pair<std::uint64_t, std::uint32_t>{5, 1}));
  EXPECT_EQ(observed[2], (std::pair<std::uint64_t, std::uint32_t>{5, 2}));
}

TEST_F(TrackerFixture, ResendRefusalDeliversUnreachable) {
  RpcOptions opts;
  opts.deadline = SimTime::seconds(1);
  opts.max_retries = 3;
  int fired = 0;
  Errc code = Errc::ok;
  rpc.track<int>(
      6, opts,
      [&](Result<int> r, SimTime) {
        ++fired;
        ASSERT_FALSE(r.is_ok());
        code = r.status().code();
      },
      [](std::uint32_t) -> Status { return {Errc::not_found, "no route"}; });
  net.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(code, Errc::unreachable);
  EXPECT_EQ(rpc.stats().exhausted, 1u);
}

TEST_F(TrackerFixture, DuplicateCompletionIsCountedAndIgnored) {
  RpcOptions opts;
  int fired = 0;
  rpc.track<int>(
      3, opts, [&](Result<int>, SimTime) { ++fired; },
      [](std::uint32_t) { return Status::ok(); });
  EXPECT_TRUE(rpc.complete<int>(3, 1));
  EXPECT_FALSE(rpc.complete<int>(3, 2));  // late duplicate: counted, dropped
  EXPECT_FALSE(rpc.complete<int>(777, 2));  // never tracked: same treatment
  net.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(rpc.stats().duplicates, 2u);
}

TEST_F(TrackerFixture, CancelUnwindsWithoutCallback) {
  RpcOptions opts;
  int fired = 0;
  rpc.track<int>(
      4, opts, [&](Result<int>, SimTime) { ++fired; },
      [](std::uint32_t) { return Status::ok(); });
  rpc.cancel(4);
  net.run();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(rpc.pending(), 0u);
  // A cancelled request never left the station: not counted as started.
  EXPECT_EQ(rpc.stats().started, 0u);
}

TEST_F(TrackerFixture, FailDeliversTerminalErrorOnce) {
  RpcOptions opts;
  int fired = 0;
  Errc code = Errc::ok;
  rpc.track<int>(
      8, opts,
      [&](Result<int> r, SimTime) {
        ++fired;
        code = r.status().code();
      },
      [](std::uint32_t) { return Status::ok(); });
  rpc.fail(8, Error{Errc::not_found, "the root does not have it"});
  rpc.fail(8, Error{Errc::not_found, "again"});  // duplicate: counted
  net.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(code, Errc::not_found);
  EXPECT_EQ(rpc.stats().duplicates, 1u);
}

// Same seed, same scenario: the retry/backoff schedule is bit-identical, so
// the terminal failure lands at exactly the same simulated instant.
TEST_F(TrackerFixture, LifecycleSpanJoinsCallerTrace) {
  auto& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  RpcOptions opts;
  opts.deadline = SimTime::seconds(1);
  opts.trace = obs::TraceContext{/*trace_id=*/0xabcd, /*span_id=*/77, true};
  opts.trace_name = "rpc.unit";
  rpc.track<int>(
      5, opts, [](Result<int>, SimTime) {},
      [](std::uint32_t) { return Status::ok(); });
  net.schedule_after(SimTime::millis(10), [&] { EXPECT_TRUE(rpc.complete<int>(5, 1)); });
  net.run();

  // One durable span covering the whole rpc, parented on the caller's span
  // and stamped with the caller's trace id and this station.
  auto spans = tracer.spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "rpc.unit");
  EXPECT_EQ(spans[0].trace_id, 0xabcdu);
  EXPECT_EQ(spans[0].parent, 77u);
  EXPECT_EQ(spans[0].station, self.value());
  EXPECT_TRUE(spans[0].finished);
  EXPECT_EQ(spans[0].end, SimTime::millis(10));
  tracer.set_enabled(false);
  tracer.clear();
}

TEST(RpcDeterminism, SameSeedExhaustsAtTheSameInstant) {
  auto run_once = [] {
    net::SimNetwork net(1234);
    StationId self = net.add_station();
    RpcTracker rpc(net, self, /*seed=*/0xfeed);
    RpcOptions opts;
    opts.deadline = SimTime::seconds(1);
    opts.max_retries = 4;
    SimTime terminal = SimTime::zero();
    rpc.track<int>(
        1, opts, [&](Result<int>, SimTime t) { terminal = t; },
        [](std::uint32_t) { return Status::ok(); });
    net.run();
    return terminal.as_micros();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_GT(a, 0);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace wdoc::net

// Referential-integrity diagram tests: link management, BFS alert
// propagation (the paper's script -> implementation -> files chain),
// multiplicity checks, and building the diagram from a repository.
#include <gtest/gtest.h>

#include "integrity/build.hpp"
#include "integrity/diagram.hpp"

namespace wdoc::integrity {
namespace {

SciRef script(const std::string& n) { return {SciKind::script, n}; }
SciRef impl(const std::string& n) { return {SciKind::implementation, n}; }
SciRef html(const std::string& n) { return {SciKind::html_file, n}; }
SciRef resource(const std::string& n) { return {SciKind::resource, n}; }

LinkLabel plus(const char* label) {
  return LinkLabel{label, Multiplicity::one_or_more, {}};
}
LinkLabel star(const char* label) {
  return LinkLabel{label, Multiplicity::zero_or_more, {}};
}

TEST(Diagram, ObjectsAndLinks) {
  IntegrityDiagram d;
  d.add_object(script("s"));
  d.add_object(impl("i"));
  EXPECT_TRUE(d.has_object(script("s")));
  EXPECT_FALSE(d.has_object(script("ghost")));
  ASSERT_TRUE(d.add_link(script("s"), impl("i"), plus("implements")).is_ok());
  EXPECT_TRUE(d.has_link(script("s"), impl("i")));
  EXPECT_FALSE(d.has_link(impl("i"), script("s")));
  EXPECT_EQ(d.link_count(), 1u);
  EXPECT_EQ(d.add_link(script("s"), impl("i"), plus("implements")).code(),
            Errc::already_exists);
  EXPECT_EQ(d.add_link(script("s"), impl("ghost"), plus("x")).code(), Errc::not_found);
}

TEST(Diagram, RemoveLinkAndObject) {
  IntegrityDiagram d;
  d.add_object(script("s"));
  d.add_object(impl("i"));
  ASSERT_TRUE(d.add_link(script("s"), impl("i"), plus("implements")).is_ok());
  ASSERT_TRUE(d.remove_link(script("s"), impl("i")).is_ok());
  EXPECT_EQ(d.link_count(), 0u);
  EXPECT_EQ(d.remove_link(script("s"), impl("i")).code(), Errc::not_found);

  ASSERT_TRUE(d.add_link(script("s"), impl("i"), plus("implements")).is_ok());
  d.remove_object(impl("i"));
  EXPECT_FALSE(d.has_object(impl("i")));
  EXPECT_EQ(d.link_count(), 0u);
  EXPECT_TRUE(d.successors(script("s")).empty());
}

TEST(Diagram, PaperChainPropagation) {
  // "if a script SCI is updated, its corresponding implementations should be
  // updated, which further triggers the changes of one or more HTML
  // programs, zero or more multimedia resources, and some control programs."
  IntegrityDiagram d;
  d.add_object(script("s"));
  d.add_object(impl("i1"));
  d.add_object(impl("i2"));
  d.add_object(html("h1"));
  d.add_object(html("h2"));
  d.add_object(resource("r1"));
  ASSERT_TRUE(d.add_link(script("s"), impl("i1"), plus("implements")).is_ok());
  ASSERT_TRUE(d.add_link(script("s"), impl("i2"), plus("implements")).is_ok());
  ASSERT_TRUE(d.add_link(impl("i1"), html("h1"), plus("html")).is_ok());
  ASSERT_TRUE(d.add_link(impl("i1"), resource("r1"), star("uses")).is_ok());
  ASSERT_TRUE(d.add_link(impl("i2"), html("h2"), plus("html")).is_ok());

  auto alerts = d.on_update(script("s"));
  ASSERT_EQ(alerts.size(), 5u);
  // Direct dependents first (BFS).
  EXPECT_EQ(alerts[0].depth, 1u);
  EXPECT_EQ(alerts[1].depth, 1u);
  EXPECT_EQ(alerts[0].target.kind, SciKind::implementation);
  EXPECT_EQ(alerts[4].depth, 2u);
  for (const Alert& a : alerts) {
    EXPECT_FALSE(a.message.empty());
  }
}

TEST(Diagram, UpdateOfLeafAlertsNothing) {
  IntegrityDiagram d;
  d.add_object(script("s"));
  d.add_object(html("h"));
  ASSERT_TRUE(d.add_link(script("s"), html("h"), plus("html")).is_ok());
  EXPECT_TRUE(d.on_update(html("h")).empty());
}

TEST(Diagram, DiamondAlertsOnce) {
  IntegrityDiagram d;
  d.add_object(script("s"));
  d.add_object(impl("i1"));
  d.add_object(impl("i2"));
  d.add_object(resource("shared"));
  ASSERT_TRUE(d.add_link(script("s"), impl("i1"), plus("implements")).is_ok());
  ASSERT_TRUE(d.add_link(script("s"), impl("i2"), plus("implements")).is_ok());
  ASSERT_TRUE(d.add_link(impl("i1"), resource("shared"), star("uses")).is_ok());
  ASSERT_TRUE(d.add_link(impl("i2"), resource("shared"), star("uses")).is_ok());
  auto alerts = d.on_update(script("s"));
  std::size_t shared_alerts = 0;
  for (const Alert& a : alerts) {
    if (a.target == resource("shared")) ++shared_alerts;
  }
  EXPECT_EQ(shared_alerts, 1u);
}

TEST(Diagram, CycleTerminates) {
  IntegrityDiagram d;
  d.add_object(script("a"));
  d.add_object(script("b"));
  ASSERT_TRUE(d.add_link(script("a"), script("b"), star("ref")).is_ok());
  ASSERT_TRUE(d.add_link(script("b"), script("a"), star("ref")).is_ok());
  auto alerts = d.on_update(script("a"));
  EXPECT_EQ(alerts.size(), 1u);  // b alerted once; a itself not re-alerted
}

TEST(Diagram, CustomAlertMessagePreferred) {
  IntegrityDiagram d;
  d.add_object(script("s"));
  d.add_object(impl("i"));
  LinkLabel label{"implements", Multiplicity::one_or_more, {"re-run the build"}};
  ASSERT_TRUE(d.add_link(script("s"), impl("i"), label).is_ok());
  auto alerts = d.on_update(script("s"));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].message, "re-run the build");
}

TEST(Diagram, PredecessorsTracked) {
  IntegrityDiagram d;
  d.add_object(script("s"));
  d.add_object(impl("i"));
  ASSERT_TRUE(d.add_link(script("s"), impl("i"), plus("implements")).is_ok());
  auto preds = d.predecessors(impl("i"));
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0], script("s"));
}

TEST(Diagram, MultiplicityViolationDetected) {
  IntegrityDiagram d;
  d.add_object(script("s"));
  d.add_object(impl("i"));
  ASSERT_TRUE(d.add_link(script("s"), impl("i"), plus("implements")).is_ok());
  // Live target: no violation.
  EXPECT_TRUE(d.check_multiplicities(nullptr).empty());
  // Remove the only implementation: '+' violated.
  d.remove_object(impl("i"));
  d.add_object(impl("ghost"));  // unrelated
  // Re-add the dangling link via a fresh object then remove to simulate.
  // (removing the object removed the link; rebuild the scenario)
  IntegrityDiagram d2;
  d2.add_object(script("s"));
  d2.add_object(impl("i"));
  ASSERT_TRUE(d2.add_link(script("s"), impl("i"), plus("implements")).is_ok());
  auto violations =
      d2.check_multiplicities([](const SciRef&, const std::string&) { return 0u; });
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("implements"), std::string::npos);
}

TEST(BuildDiagram, MirrorsRepositoryStructure) {
  auto db = storage::Database::in_memory();
  blob::BlobStore blobs;
  docmodel::Repository repo(*db, blobs);
  docmodel::install_schemas(*db).expect("schemas");

  docmodel::ScriptInfo s;
  s.name = "s1";
  s.author = "shih";
  repo.create_script(s).expect("script");
  docmodel::ImplementationInfo i;
  i.starting_url = "http://x/1";
  i.script_name = "s1";
  repo.create_implementation(i).expect("impl");
  docmodel::HtmlFileInfo h;
  h.path = "http://x/1/index.html";
  h.starting_url = "http://x/1";
  repo.add_html_file(h).expect("html");
  repo.attach_resource("implementation", "http://x/1", Bytes{1, 2},
                       blob::MediaType::image)
      .expect("resource");
  docmodel::TestRecordInfo tr;
  tr.name = "t1";
  tr.script_name = "s1";
  tr.starting_url = "http://x/1";
  repo.create_test_record(tr).expect("test record");
  docmodel::BugReportInfo bug;
  bug.name = "b1";
  bug.test_record_name = "t1";
  repo.create_bug_report(bug).expect("bug");

  auto diagram = build_diagram(repo);
  ASSERT_TRUE(diagram.is_ok());
  const IntegrityDiagram& d = diagram.value();
  EXPECT_TRUE(d.has_object(script("s1")));
  EXPECT_TRUE(d.has_object(impl("http://x/1")));
  EXPECT_TRUE(d.has_object(html("http://x/1/index.html")));
  EXPECT_TRUE(d.has_object({SciKind::test_record, "t1"}));
  EXPECT_TRUE(d.has_object({SciKind::bug_report, "b1"}));

  // Script update reaches the whole implementation subtree + test chain.
  auto alerts = d.on_update(script("s1"));
  EXPECT_GE(alerts.size(), 5u);
}

TEST(BuildDiagram, EmptyRepositoryGivesEmptyDiagram) {
  auto db = storage::Database::in_memory();
  blob::BlobStore blobs;
  docmodel::Repository repo(*db, blobs);
  docmodel::install_schemas(*db).expect("schemas");
  auto diagram = build_diagram(repo);
  ASSERT_TRUE(diagram.is_ok());
  EXPECT_EQ(diagram.value().object_count(), 0u);
  EXPECT_EQ(diagram.value().link_count(), 0u);
}

}  // namespace
}  // namespace wdoc::integrity

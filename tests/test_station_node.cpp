// StationNode protocol tests over the simulator: tree multicast push,
// parent-chain pull with store-and-forward relay, watermark replication,
// post-lecture migration, and failure paths.
#include <gtest/gtest.h>

#include "dist/station_node.hpp"
#include "net/sim_network.hpp"

namespace wdoc::dist {
namespace {

DocManifest lecture_manifest(StationId home) {
  DocManifest m;
  m.doc_key = "http://mmu.edu/cs101/index.html";
  m.structure_bytes = 40 << 10;
  m.home = home;
  BlobRef video;
  video.digest = digest128("cs101 intro video");
  video.size = 10 << 20;
  video.type = blob::MediaType::video;
  m.blobs.push_back(video);
  return m;
}

// A cluster of N stations on one simulator, wired into an m-ary tree.
class Cluster {
 public:
  Cluster(std::size_t n, std::uint64_t m, NodeConfig config = {}) : net_(42) {
    for (std::size_t i = 0; i < n; ++i) {
      StationId id = net_.add_station();
      ids_.push_back(id);
      blobs_.push_back(std::make_unique<blob::BlobStore>());
      stores_.push_back(std::make_unique<ObjectStore>(*blobs_.back()));
      nodes_.push_back(std::make_unique<StationNode>(net_, id, *stores_.back(), config));
      nodes_.back()->bind();
    }
    for (auto& node : nodes_) node->set_tree(ids_, m);
  }

  [[nodiscard]] StationNode& node(std::size_t i) { return *nodes_[i]; }
  [[nodiscard]] ObjectStore& store(std::size_t i) { return *stores_[i]; }
  [[nodiscard]] net::SimNetwork& net() { return net_; }
  [[nodiscard]] StationId id(std::size_t i) const { return ids_[i]; }
  [[nodiscard]] std::size_t size() const { return ids_.size(); }

 private:
  net::SimNetwork net_;
  std::vector<StationId> ids_;
  std::vector<std::unique_ptr<blob::BlobStore>> blobs_;
  std::vector<std::unique_ptr<ObjectStore>> stores_;
  std::vector<std::unique_ptr<StationNode>> nodes_;
};

TEST(StationNode, TreePositionsDerivedFromBroadcastVector) {
  Cluster c(7, 2);
  EXPECT_EQ(c.node(0).position(), 1u);
  EXPECT_EQ(c.node(6).position(), 7u);
  EXPECT_EQ(c.node(0).parent_station(), std::nullopt);
  EXPECT_EQ(c.node(2).parent_station(), c.id(0));  // position 3 -> parent 1
  EXPECT_EQ(c.node(5).parent_station(), c.id(2));  // position 6 -> parent 3
}

TEST(StationNode, BroadcastPushReachesEveryStation) {
  Cluster c(13, 3);
  auto manifest = lecture_manifest(c.id(0));
  ASSERT_TRUE(c.node(0).broadcast_push(manifest).is_ok());
  c.net().run();
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_TRUE(c.store(i).has_materialized(manifest.doc_key)) << "station " << i;
  }
  // Root copy is persistent, others ephemeral.
  EXPECT_FALSE(c.store(0).doc(manifest.doc_key)->ephemeral);
  EXPECT_TRUE(c.store(5).doc(manifest.doc_key)->ephemeral);
}

TEST(StationNode, PushForwardingFollowsTreeFanout) {
  Cluster c(13, 3);
  auto manifest = lecture_manifest(c.id(0));
  ASSERT_TRUE(c.node(0).broadcast_push(manifest).is_ok());
  c.net().run();
  // Root pushed to its 3 children; station at position 2 to 3 children...
  EXPECT_EQ(c.node(0).stats().pushes_forwarded, 3u);
  EXPECT_EQ(c.node(1).stats().pushes_forwarded, 3u);
  // Leaves forwarded nothing.
  EXPECT_EQ(c.node(12).stats().pushes_forwarded, 0u);
  // Each non-root station received exactly one push.
  for (std::size_t i = 1; i < c.size(); ++i) {
    EXPECT_EQ(c.node(i).stats().pushes_received, 1u) << i;
  }
}

TEST(StationNode, FetchResolvesLocallyWhenMaterialized) {
  Cluster c(3, 2);
  auto manifest = lecture_manifest(c.id(0));
  ASSERT_TRUE(c.node(0).broadcast_push(manifest).is_ok());
  c.net().run();
  bool fetched = false;
  ASSERT_TRUE(c.node(2)
                  .fetch(manifest.doc_key,
                         [&](Result<DocManifest> r, SimTime) {
                           ASSERT_TRUE(r.is_ok());
                           fetched = true;
                         })
                  .is_ok());
  EXPECT_TRUE(fetched);  // synchronous local hit
  EXPECT_EQ(c.node(2).stats().fetches_local, 1u);
}

TEST(StationNode, FetchPullsUpParentChain) {
  Cluster c(13, 3);
  auto manifest = lecture_manifest(c.id(0));
  // Only the root holds the lecture.
  ASSERT_TRUE(c.store(0).put_instance(manifest, false).is_ok());

  // Station 12 (position 13, depth 2) pulls: request goes 13 -> 4 -> 1,
  // data relays back 1 -> 4 -> 13.
  bool fetched = false;
  ASSERT_TRUE(c.node(12)
                  .fetch(manifest.doc_key,
                         [&](Result<DocManifest> r, SimTime) {
                           ASSERT_TRUE(r.is_ok());
                           EXPECT_EQ(r.value().doc_key, manifest.doc_key);
                           fetched = true;
                         })
                  .is_ok());
  c.net().run();
  EXPECT_TRUE(fetched);
  EXPECT_EQ(c.node(12).stats().fetches_remote, 1u);
  EXPECT_EQ(c.node(3).stats().forwards_up, 1u);  // position 4 forwarded
  EXPECT_EQ(c.node(0).stats().serves, 1u);
  EXPECT_EQ(c.node(3).stats().relays, 1u);
  // By default intermediates do not retain the data.
  EXPECT_FALSE(c.store(3).has_materialized(manifest.doc_key));
}

TEST(StationNode, RelayCacheRetainsAtIntermediates) {
  NodeConfig config;
  config.relay_cache = true;
  config.watermark = 1000;  // disable requester replication
  Cluster c(13, 3, config);
  auto manifest = lecture_manifest(c.id(0));
  ASSERT_TRUE(c.store(0).put_instance(manifest, false).is_ok());
  ASSERT_TRUE(c.node(12).fetch(manifest.doc_key, [](Result<DocManifest>, SimTime) {})
                  .is_ok());
  c.net().run();
  EXPECT_TRUE(c.store(3).has_materialized(manifest.doc_key));
}

TEST(StationNode, WatermarkTriggersReplication) {
  NodeConfig config;
  config.watermark = 3;
  Cluster c(4, 3, config);
  auto manifest = lecture_manifest(c.id(0));
  ASSERT_TRUE(c.store(0).put_instance(manifest, false).is_ok());

  for (int round = 1; round <= 3; ++round) {
    ASSERT_TRUE(
        c.node(3).fetch(manifest.doc_key, [](Result<DocManifest>, SimTime) {}).is_ok());
    c.net().run();
    if (round < 3) {
      EXPECT_FALSE(c.store(3).has_materialized(manifest.doc_key))
          << "replicated too early, round " << round;
    }
  }
  // Third retrieval hit the watermark: physical data copied locally.
  EXPECT_TRUE(c.store(3).has_materialized(manifest.doc_key));
  EXPECT_EQ(c.node(3).stats().replications, 1u);
  // Subsequent fetches are local.
  ASSERT_TRUE(
      c.node(3).fetch(manifest.doc_key, [](Result<DocManifest>, SimTime) {}).is_ok());
  EXPECT_EQ(c.node(3).stats().fetches_local, 1u);
}

TEST(StationNode, EndLectureMigratesEphemeralCopies) {
  Cluster c(7, 2);
  auto manifest = lecture_manifest(c.id(0));
  ASSERT_TRUE(c.node(0).broadcast_push(manifest).is_ok());
  c.net().run();
  std::uint64_t disk_during = c.store(4).disk_bytes();
  EXPECT_GT(disk_during, 0u);

  std::uint64_t reclaimed = c.node(4).end_lecture();
  EXPECT_GT(reclaimed, 0u);
  EXPECT_EQ(c.store(4).disk_bytes(), 0u);
  EXPECT_EQ(c.store(4).doc(manifest.doc_key)->form, ObjectForm::reference);
  EXPECT_EQ(c.node(4).stats().demotions, 1u);
  // The root's persistent instance is untouched by its own end_lecture.
  (void)c.node(0).end_lecture();
  EXPECT_TRUE(c.store(0).has_materialized(manifest.doc_key));
}

TEST(StationNode, RefetchAfterMigrationWorks) {
  Cluster c(7, 2);
  auto manifest = lecture_manifest(c.id(0));
  ASSERT_TRUE(c.node(0).broadcast_push(manifest).is_ok());
  c.net().run();
  (void)c.node(4).end_lecture();
  bool fetched = false;
  ASSERT_TRUE(c.node(4)
                  .fetch(manifest.doc_key,
                         [&](Result<DocManifest> r, SimTime) { fetched = r.is_ok(); })
                  .is_ok());
  c.net().run();
  EXPECT_TRUE(fetched);
}

TEST(StationNode, FetchUnknownDocReportsNotFound) {
  Cluster c(7, 2);
  // Give the requester a reference so the fetch has a home, but nobody has
  // the actual document.
  DocManifest ghost;
  ghost.doc_key = "http://ghost/";
  ghost.structure_bytes = 1;
  ghost.home = c.id(0);
  ASSERT_TRUE(c.store(4).put_reference(ghost).is_ok());
  Errc seen = Errc::ok;
  ASSERT_TRUE(c.node(4)
                  .fetch(ghost.doc_key,
                         [&](Result<DocManifest> r, SimTime) { seen = r.code(); })
                  .is_ok());
  c.net().run();
  EXPECT_EQ(seen, Errc::not_found);
  EXPECT_GE(c.node(4).stats().failed_fetches, 1u);
}

TEST(StationNode, FetchWithoutTreeGoesToHome) {
  net::SimNetwork net;
  StationId home_id = net.add_station();
  StationId student_id = net.add_station();
  blob::BlobStore home_blobs, student_blobs;
  ObjectStore home_store(home_blobs), student_store(student_blobs);
  StationNode home(net, home_id, home_store);
  StationNode student(net, student_id, student_store);
  home.bind();
  student.bind();
  // No set_tree: direct-to-home fetching via the local reference.
  auto manifest = lecture_manifest(home_id);
  ASSERT_TRUE(home_store.put_instance(manifest, false).is_ok());
  ASSERT_TRUE(student_store.put_reference(manifest).is_ok());

  bool fetched = false;
  ASSERT_TRUE(student
                  .fetch(manifest.doc_key,
                         [&](Result<DocManifest> r, SimTime) { fetched = r.is_ok(); })
                  .is_ok());
  net.run();
  EXPECT_TRUE(fetched);
  // Without a tree and without a reference, fetch fails fast.
  auto status = student.fetch("http://unknown/", [](Result<DocManifest>, SimTime) {});
  EXPECT_EQ(status.code(), Errc::unavailable);
}

TEST(StationNode, BlobFetchChargesBlobSize) {
  Cluster c(2, 2);
  auto manifest = lecture_manifest(c.id(0));
  ASSERT_TRUE(c.store(0).put_instance(manifest, false).is_ok());
  bool done = false;
  SimTime arrival;
  ASSERT_TRUE(c.node(1)
                  .fetch_blob(c.id(0), manifest.doc_key, manifest.blobs[0],
                              [&](Status s, SimTime t) {
                                ASSERT_TRUE(s.is_ok());
                                done = true;
                                arrival = t;
                              })
                  .is_ok());
  c.net().run();
  EXPECT_TRUE(done);
  EXPECT_GT(arrival, SimTime::zero());
  // A blob larger than one chunk streams at chunk granularity.
  const std::uint64_t chunks =
      blob::chunk_count(manifest.blobs[0].size, c.node(0).config().chunk.chunk_bytes);
  EXPECT_EQ(c.node(0).stats().chunk_repair_served, chunks);
  EXPECT_EQ(c.node(1).stats().chunks_received, chunks);
  // 10 MB crossed the wire.
  EXPECT_GE(c.net().stats(c.id(0)).bytes_sent, manifest.blobs[0].size);
}

TEST(StationNode, BlobFetchLegacyPathChargesBlobSize) {
  StationConfig cfg;
  cfg.chunk.enabled = false;
  Cluster c(2, 2, cfg);
  auto manifest = lecture_manifest(c.id(0));
  ASSERT_TRUE(c.store(0).put_instance(manifest, false).is_ok());
  bool done = false;
  ASSERT_TRUE(c.node(1)
                  .fetch_blob(c.id(0), manifest.doc_key, manifest.blobs[0],
                              [&](Status s, SimTime) {
                                ASSERT_TRUE(s.is_ok());
                                done = true;
                              })
                  .is_ok());
  c.net().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(c.node(0).stats().blob_serves, 1u);
  EXPECT_GE(c.net().stats(c.id(0)).bytes_sent, manifest.blobs[0].size);
}

TEST(StationNode, ReferenceAnnouncementReachesEveryStation) {
  Cluster c(13, 3);
  auto manifest = lecture_manifest(c.id(0));
  ASSERT_TRUE(c.store(0).put_instance(manifest, false).is_ok());
  ASSERT_TRUE(c.node(0).announce_reference(manifest).is_ok());
  c.net().run();
  for (std::size_t i = 1; i < c.size(); ++i) {
    const StoredDoc* d = c.store(i).doc(manifest.doc_key);
    ASSERT_NE(d, nullptr) << i;
    EXPECT_EQ(d->form, ObjectForm::reference) << i;
    EXPECT_EQ(c.store(i).disk_bytes(), 0u) << i;  // references are free
  }
  // Announcements are tiny: total wire bytes far below one document copy.
  EXPECT_LT(c.net().total_bytes_on_wire(), manifest.total_bytes());
}

TEST(StationNode, AnnouncedReferenceEnablesDirectHomeFetch) {
  // Two stations without a tree: the announcement is what gives the student
  // routing information (the home id) for a later on-demand pull.
  net::SimNetwork net;
  StationId home_id = net.add_station();
  StationId student_id = net.add_station();
  blob::BlobStore hb, sb;
  ObjectStore hs(hb), ss(sb);
  StationNode home(net, home_id, hs);
  StationNode student(net, student_id, ss);
  home.bind();
  student.bind();
  std::vector<StationId> vec{home_id, student_id};
  home.set_tree(vec, 1);
  student.set_tree(vec, 1);

  auto manifest = lecture_manifest(home_id);
  ASSERT_TRUE(hs.put_instance(manifest, false).is_ok());
  ASSERT_TRUE(home.announce_reference(manifest).is_ok());
  net.run();
  ASSERT_NE(ss.doc(manifest.doc_key), nullptr);

  bool fetched = false;
  ASSERT_TRUE(student
                  .fetch(manifest.doc_key,
                         [&](Result<DocManifest> r, SimTime) { fetched = r.is_ok(); })
                  .is_ok());
  net.run();
  EXPECT_TRUE(fetched);
}

TEST(StationNode, RepeatBlobFetchIsLocal) {
  Cluster c(2, 2);
  auto manifest = lecture_manifest(c.id(0));
  ASSERT_TRUE(c.store(0).put_instance(manifest, false).is_ok());

  int completions = 0;
  ASSERT_TRUE(c.node(1)
                  .fetch_blob(c.id(0), manifest.doc_key, manifest.blobs[0],
                              [&](Status s, SimTime) {
                                ASSERT_TRUE(s.is_ok());
                                ++completions;
                              })
                  .is_ok());
  c.net().run();
  ASSERT_EQ(completions, 1);
  std::uint64_t wire_after_first = c.net().total_bytes_on_wire();

  // Second fetch of the same content: resolved from the local buffer,
  // synchronously, with zero new wire traffic.
  ASSERT_TRUE(c.node(1)
                  .fetch_blob(c.id(0), manifest.doc_key, manifest.blobs[0],
                              [&](Status s, SimTime) {
                                ASSERT_TRUE(s.is_ok());
                                ++completions;
                              })
                  .is_ok());
  EXPECT_EQ(completions, 2);
  EXPECT_EQ(c.net().total_bytes_on_wire(), wire_after_first);
  // The buffered payload is reclaimable (zero refs until a doc claims it).
  EXPECT_EQ(c.store(1).blobs().gc(), manifest.blobs[0].size);
}

TEST(StationNode, DuplicateFetchResponseIsCountedAndIgnored) {
  Cluster c(13, 3);
  auto manifest = lecture_manifest(c.id(0));
  ASSERT_TRUE(c.store(0).put_instance(manifest, false).is_ok());

  int completions = 0;
  ASSERT_TRUE(c.node(12)
                  .fetch(manifest.doc_key,
                         [&](Result<DocManifest> r, SimTime) {
                           ASSERT_TRUE(r.is_ok());
                           ++completions;
                         })
                  .is_ok());
  c.net().run();
  ASSERT_EQ(completions, 1);
  ASSERT_EQ(c.node(12).pending_rpcs(), 0u);

  // Replay the response for the (already resolved) first request, as a
  // retry racing the original answer would: same req_id, empty relay path.
  const std::uint64_t stale_req_id = (c.id(12).value() << 24) | 1;
  Writer w;
  w.u64(stale_req_id);
  manifest.serialize(w);
  w.u32(0);  // empty path: final delivery
  net::Message dup;
  dup.from = c.id(0);
  dup.to = c.id(12);
  dup.type = StationNode::kFetchRsp;
  dup.payload = w.take();
  ASSERT_TRUE(c.net().send(std::move(dup)).is_ok());
  c.net().run();

  // The callback did not fire again; the duplicate was counted.
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(c.node(12).rpc_stats().duplicates, 1u);
  EXPECT_EQ(c.node(12).rpc_stats().completed, 1u);
}

TEST(StationNode, ConfigValidationRejectsNonsense) {
  StationConfig zero_watermark;
  zero_watermark.watermark = 0;
  EXPECT_EQ(zero_watermark.validate().code(), Errc::invalid_argument);

  StationConfig zero_deadline;
  zero_deadline.rpc.deadline = SimTime::zero();
  EXPECT_EQ(zero_deadline.validate().code(), Errc::invalid_argument);

  StationConfig zero_threshold;
  zero_threshold.failover_threshold = 0;
  EXPECT_EQ(zero_threshold.validate().code(), Errc::invalid_argument);

  StationConfig no_bandwidth;
  no_bandwidth.min_bandwidth_bps = 0.0;
  EXPECT_EQ(no_bandwidth.validate().code(), Errc::invalid_argument);

  EXPECT_TRUE(StationConfig{}.validate().is_ok());
}

TEST(StationNode, PushedBytesScaleWithTreeEdges) {
  Cluster c(7, 2);
  auto manifest = lecture_manifest(c.id(0));
  ASSERT_TRUE(c.node(0).broadcast_push(manifest).is_ok());
  c.net().run();
  // 6 push edges, each charged the full document size.
  EXPECT_GE(c.net().total_bytes_on_wire(), 6 * manifest.total_bytes());
  // Root only sent to its two children (the tree advantage); chunk framing
  // adds ~64 B per chunk on top of the document bytes.
  EXPECT_LE(c.net().stats(c.id(0)).bytes_sent, 2 * manifest.total_bytes() + 16 * 1024);
}

}  // namespace
}  // namespace wdoc::dist

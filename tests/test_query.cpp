// Query-layer tests: predicates, index-driven execution, ordering,
// projection, limits and aggregates.
#include <gtest/gtest.h>

#include "storage/query.hpp"

namespace wdoc::storage {
namespace {

class QueryFixture : public ::testing::Test {
 protected:
  QueryFixture()
      : table_(Schema("courses",
                      {Column{"name", ValueType::text, false, false, false},
                       Column{"instructor", ValueType::text, true, false, true},
                       Column{"credits", ValueType::integer, true, false, false},
                       Column{"rating", ValueType::real, true, false, false}},
                      "name")) {
    const char* instructors[] = {"shih", "ma", "huang"};
    for (int i = 0; i < 30; ++i) {
      auto r = table_.insert({Value("c" + std::to_string(i)),
                              Value(instructors[i % 3]), Value(i % 5),
                              Value(static_cast<double>(i) / 10.0)});
      WDOC_CHECK(r.is_ok(), "fixture insert failed");
    }
  }
  Table table_;
};

TEST_F(QueryFixture, WhereEqOnIndexedColumn) {
  auto rows = Query(table_).where_eq("instructor", Value("ma")).run();
  ASSERT_TRUE(rows.is_ok());
  EXPECT_EQ(rows.value().size(), 10u);
  for (const QueryRow& r : rows.value()) {
    EXPECT_EQ(r.values[1].as_text(), "ma");
  }
}

TEST_F(QueryFixture, ConjunctionOfPredicates) {
  auto rows = Query(table_)
                  .where_eq("instructor", Value("shih"))
                  .where("credits", CmpOp::ge, Value(3))
                  .run();
  ASSERT_TRUE(rows.is_ok());
  for (const QueryRow& r : rows.value()) {
    EXPECT_EQ(r.values[1].as_text(), "shih");
    EXPECT_GE(r.values[2].as_int(), 3);
  }
  EXPECT_FALSE(rows.value().empty());
}

TEST_F(QueryFixture, RangeOperators) {
  auto count = Query(table_).where("credits", CmpOp::lt, Value(2)).count();
  ASSERT_TRUE(count.is_ok());
  EXPECT_EQ(count.value(), 12u);  // credits 0 and 1: 6 each
  auto ne = Query(table_).where("credits", CmpOp::ne, Value(0)).count();
  EXPECT_EQ(ne.value(), 24u);
}

TEST_F(QueryFixture, ContainsOnText) {
  auto rows = Query(table_).where("name", CmpOp::contains, Value("c1")).run();
  ASSERT_TRUE(rows.is_ok());
  // c1, c10..c19 = 11 matches.
  EXPECT_EQ(rows.value().size(), 11u);
}

TEST_F(QueryFixture, OrderByAscendingAndDescending) {
  auto asc = Query(table_).order_by("rating").limit(3).run();
  ASSERT_TRUE(asc.is_ok());
  ASSERT_EQ(asc.value().size(), 3u);
  EXPECT_DOUBLE_EQ(asc.value()[0].values[3].as_real(), 0.0);
  auto desc = Query(table_).order_by("rating", /*ascending=*/false).limit(1).run();
  EXPECT_DOUBLE_EQ(desc.value()[0].values[3].as_real(), 2.9);
}

TEST_F(QueryFixture, ProjectionSelectsColumns) {
  auto rows = Query(table_)
                  .where_eq("instructor", Value("huang"))
                  .select({"name", "credits"})
                  .run();
  ASSERT_TRUE(rows.is_ok());
  ASSERT_FALSE(rows.value().empty());
  EXPECT_EQ(rows.value()[0].values.size(), 2u);
  EXPECT_EQ(rows.value()[0].values[0].type(), ValueType::text);
  EXPECT_EQ(rows.value()[0].values[1].type(), ValueType::integer);
}

TEST_F(QueryFixture, LimitTruncates) {
  auto rows = Query(table_).limit(7).run();
  ASSERT_TRUE(rows.is_ok());
  EXPECT_EQ(rows.value().size(), 7u);
}

TEST_F(QueryFixture, FirstReturnsOptionals) {
  auto hit = Query(table_).where_eq("name", Value("c5")).first();
  ASSERT_TRUE(hit.is_ok());
  ASSERT_TRUE(hit.value().has_value());
  EXPECT_EQ(hit.value()->values[0].as_text(), "c5");
  auto miss = Query(table_).where_eq("name", Value("ghost")).first();
  ASSERT_TRUE(miss.is_ok());
  EXPECT_FALSE(miss.value().has_value());
}

TEST_F(QueryFixture, UnknownColumnIsError) {
  EXPECT_EQ(Query(table_).where_eq("ghost", Value(1)).run().code(),
            Errc::invalid_argument);
  EXPECT_EQ(Query(table_).order_by("ghost").run().code(), Errc::invalid_argument);
  EXPECT_EQ(Query(table_).select({"ghost"}).run().code(), Errc::invalid_argument);
}

TEST_F(QueryFixture, NullCellsMatchNothing) {
  Table t(Schema("n", {Column{"k", ValueType::integer, true, false, false}}));
  ASSERT_TRUE(t.insert({Value::null()}).is_ok());
  ASSERT_TRUE(t.insert({Value(1)}).is_ok());
  EXPECT_EQ(Query(t).where("k", CmpOp::ne, Value(99)).count().value(), 1u);
  EXPECT_EQ(Query(t).where("k", CmpOp::lt, Value(99)).count().value(), 1u);
}

TEST_F(QueryFixture, CountWithoutPredicates) {
  EXPECT_EQ(Query(table_).count().value(), 30u);
}

TEST_F(QueryFixture, EvalCmpTable) {
  EXPECT_TRUE(eval_cmp(CmpOp::eq, Value(3), Value(3)));
  EXPECT_TRUE(eval_cmp(CmpOp::le, Value(3), Value(3)));
  EXPECT_FALSE(eval_cmp(CmpOp::lt, Value(3), Value(3)));
  EXPECT_TRUE(eval_cmp(CmpOp::contains, Value("hello world"), Value("lo w")));
  EXPECT_FALSE(eval_cmp(CmpOp::contains, Value(3), Value("3")));
  EXPECT_FALSE(eval_cmp(CmpOp::eq, Value::null(), Value::null()));
}

}  // namespace
}  // namespace wdoc::storage

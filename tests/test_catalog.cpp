// Catalog tests: table namespace, FK validation, referential actions
// (restrict / cascade / set_null), and the mutation-observer hook.
#include <gtest/gtest.h>

#include "storage/catalog.hpp"

namespace wdoc::storage {
namespace {

Schema parents_schema() {
  return Schema("parents",
                {Column{"name", ValueType::text, false, false, false},
                 Column{"payload", ValueType::integer, true, false, false}},
                "name");
}

Schema children_schema(RefAction action) {
  return Schema("children",
                {Column{"id", ValueType::integer, false, true, false},
                 Column{"parent", ValueType::text, true, false, true}},
                "",
                {ForeignKey{"parent", "parents", "name", action}});
}

TEST(Catalog, CreateAndDropTables) {
  Catalog c;
  ASSERT_TRUE(c.create_table(parents_schema()).is_ok());
  EXPECT_TRUE(c.has_table("parents"));
  EXPECT_EQ(c.create_table(parents_schema()).code(), Errc::already_exists);
  ASSERT_TRUE(c.drop_table("parents").is_ok());
  EXPECT_FALSE(c.has_table("parents"));
  EXPECT_EQ(c.drop_table("parents").code(), Errc::not_found);
}

TEST(Catalog, FkRequiresExistingUniqueParentColumn) {
  Catalog c;
  // Parent table missing.
  EXPECT_EQ(c.create_table(children_schema(RefAction::restrict)).code(),
            Errc::invalid_argument);
  ASSERT_TRUE(c.create_table(parents_schema()).is_ok());
  ASSERT_TRUE(c.create_table(children_schema(RefAction::restrict)).is_ok());
  // Parent column not unique.
  Schema bad("bad", {Column{"x", ValueType::integer, false, false, false}}, "",
             {ForeignKey{"x", "parents", "payload", RefAction::restrict}});
  EXPECT_EQ(c.create_table(bad).code(), Errc::invalid_argument);
}

TEST(Catalog, InsertChecksForeignKey) {
  Catalog c;
  ASSERT_TRUE(c.create_table(parents_schema()).is_ok());
  ASSERT_TRUE(c.create_table(children_schema(RefAction::restrict)).is_ok());
  EXPECT_EQ(c.insert("children", {Value(1), Value("nobody")}).code(),
            Errc::constraint_violation);
  ASSERT_TRUE(c.insert("parents", {Value("p1"), Value(0)}).is_ok());
  EXPECT_TRUE(c.insert("children", {Value(1), Value("p1")}).is_ok());
  // NULL FK is allowed (orphan rows permitted when nullable).
  EXPECT_TRUE(c.insert("children", {Value(2), Value::null()}).is_ok());
}

TEST(Catalog, DeleteRestrict) {
  Catalog c;
  ASSERT_TRUE(c.create_table(parents_schema()).is_ok());
  ASSERT_TRUE(c.create_table(children_schema(RefAction::restrict)).is_ok());
  RowId p = c.insert("parents", {Value("p1"), Value(0)}).value();
  ASSERT_TRUE(c.insert("children", {Value(1), Value("p1")}).is_ok());
  EXPECT_EQ(c.erase("parents", p).code(), Errc::constraint_violation);
  // Remove the child; now the parent can go.
  RowId child = c.table("children")->find_equal("id", Value(1)).front();
  ASSERT_TRUE(c.erase("children", child).is_ok());
  EXPECT_TRUE(c.erase("parents", p).is_ok());
}

TEST(Catalog, DeleteCascade) {
  Catalog c;
  ASSERT_TRUE(c.create_table(parents_schema()).is_ok());
  ASSERT_TRUE(c.create_table(children_schema(RefAction::cascade)).is_ok());
  RowId p = c.insert("parents", {Value("p1"), Value(0)}).value();
  ASSERT_TRUE(c.insert("children", {Value(1), Value("p1")}).is_ok());
  ASSERT_TRUE(c.insert("children", {Value(2), Value("p1")}).is_ok());
  ASSERT_TRUE(c.insert("children", {Value(3), Value::null()}).is_ok());
  ASSERT_TRUE(c.erase("parents", p).is_ok());
  EXPECT_EQ(c.table("children")->row_count(), 1u);  // only the orphan remains
}

TEST(Catalog, DeleteSetNull) {
  Catalog c;
  ASSERT_TRUE(c.create_table(parents_schema()).is_ok());
  ASSERT_TRUE(c.create_table(children_schema(RefAction::set_null)).is_ok());
  RowId p = c.insert("parents", {Value("p1"), Value(0)}).value();
  ASSERT_TRUE(c.insert("children", {Value(1), Value("p1")}).is_ok());
  ASSERT_TRUE(c.erase("parents", p).is_ok());
  RowId child = c.table("children")->find_equal("id", Value(1)).front();
  EXPECT_TRUE(c.table("children")->get(child)->at(1).is_null());
}

TEST(Catalog, TransitiveCascade) {
  Catalog c;
  ASSERT_TRUE(c.create_table(parents_schema()).is_ok());
  Schema mid("mid",
             {Column{"name", ValueType::text, false, false, false},
              Column{"parent", ValueType::text, false, false, true}},
             "name", {ForeignKey{"parent", "parents", "name", RefAction::cascade}});
  ASSERT_TRUE(c.create_table(mid).is_ok());
  Schema leaf("leaf",
              {Column{"id", ValueType::integer, false, true, false},
               Column{"mid", ValueType::text, false, false, true}},
              "", {ForeignKey{"mid", "mid", "name", RefAction::cascade}});
  ASSERT_TRUE(c.create_table(leaf).is_ok());

  RowId p = c.insert("parents", {Value("root"), Value(0)}).value();
  ASSERT_TRUE(c.insert("mid", {Value("m1"), Value("root")}).is_ok());
  ASSERT_TRUE(c.insert("leaf", {Value(1), Value("m1")}).is_ok());
  ASSERT_TRUE(c.insert("leaf", {Value(2), Value("m1")}).is_ok());
  ASSERT_TRUE(c.erase("parents", p).is_ok());
  EXPECT_EQ(c.table("mid")->row_count(), 0u);
  EXPECT_EQ(c.table("leaf")->row_count(), 0u);
}

TEST(Catalog, DropTableRefusedWhileReferenced) {
  Catalog c;
  ASSERT_TRUE(c.create_table(parents_schema()).is_ok());
  ASSERT_TRUE(c.create_table(children_schema(RefAction::restrict)).is_ok());
  EXPECT_EQ(c.drop_table("parents").code(), Errc::constraint_violation);
  ASSERT_TRUE(c.drop_table("children").is_ok());
  EXPECT_TRUE(c.drop_table("parents").is_ok());
}

TEST(Catalog, UpdateKeepsReferencedKeyStable) {
  Catalog c;
  ASSERT_TRUE(c.create_table(parents_schema()).is_ok());
  ASSERT_TRUE(c.create_table(children_schema(RefAction::restrict)).is_ok());
  RowId p = c.insert("parents", {Value("p1"), Value(0)}).value();
  ASSERT_TRUE(c.insert("children", {Value(1), Value("p1")}).is_ok());
  // Changing a referenced key is refused.
  EXPECT_EQ(c.update("parents", p, {Value("renamed"), Value(0)}).code(),
            Errc::constraint_violation);
  // Updating a non-key column is fine.
  EXPECT_TRUE(c.update("parents", p, {Value("p1"), Value(9)}).is_ok());
}

TEST(Catalog, UpdateChildValidatesNewForeignKey) {
  Catalog c;
  ASSERT_TRUE(c.create_table(parents_schema()).is_ok());
  ASSERT_TRUE(c.create_table(children_schema(RefAction::restrict)).is_ok());
  ASSERT_TRUE(c.insert("parents", {Value("p1"), Value(0)}).is_ok());
  RowId child = c.insert("children", {Value(1), Value("p1")}).value();
  EXPECT_EQ(c.update("children", child, {Value(1), Value("ghost")}).code(),
            Errc::constraint_violation);
  ASSERT_TRUE(c.insert("parents", {Value("p2"), Value(0)}).is_ok());
  EXPECT_TRUE(c.update("children", child, {Value(1), Value("p2")}).is_ok());
}

TEST(Catalog, SelfReferentialTable) {
  Catalog c;
  Schema tree("tree",
              {Column{"name", ValueType::text, false, false, false},
               Column{"parent", ValueType::text, true, false, true}},
              "name", {ForeignKey{"parent", "tree", "name", RefAction::cascade}});
  ASSERT_TRUE(c.create_table(tree).is_ok());
  RowId root = c.insert("tree", {Value("root"), Value::null()}).value();
  ASSERT_TRUE(c.insert("tree", {Value("a"), Value("root")}).is_ok());
  ASSERT_TRUE(c.insert("tree", {Value("b"), Value("a")}).is_ok());
  ASSERT_TRUE(c.erase("tree", root).is_ok());
  EXPECT_EQ(c.table("tree")->row_count(), 0u);
}

struct RecordingSink : MutationSink {
  std::vector<Mutation> mutations;
  void on_mutation(const Mutation& m) override { mutations.push_back(m); }
};

TEST(Catalog, SinkObservesDirectAndCascadedMutations) {
  Catalog c;
  ASSERT_TRUE(c.create_table(parents_schema()).is_ok());
  ASSERT_TRUE(c.create_table(children_schema(RefAction::cascade)).is_ok());
  RowId p = c.insert("parents", {Value("p1"), Value(0)}).value();
  ASSERT_TRUE(c.insert("children", {Value(1), Value("p1")}).is_ok());

  RecordingSink sink;
  ASSERT_TRUE(c.erase("parents", p, &sink).is_ok());
  ASSERT_EQ(sink.mutations.size(), 2u);
  EXPECT_EQ(sink.mutations[0].kind, MutationKind::erase);
  EXPECT_EQ(sink.mutations[0].table, "children");
  EXPECT_EQ(sink.mutations[1].table, "parents");
}

TEST(Catalog, DefaultSinkUsedWhenNoExplicitSink) {
  Catalog c;
  RecordingSink sink;
  c.set_default_sink(&sink);
  ASSERT_TRUE(c.create_table(parents_schema()).is_ok());
  ASSERT_TRUE(c.insert("parents", {Value("p"), Value(1)}).is_ok());
  ASSERT_EQ(sink.mutations.size(), 1u);
  EXPECT_EQ(sink.mutations[0].kind, MutationKind::insert);
  EXPECT_EQ(sink.mutations[0].after[0].as_text(), "p");
}

TEST(Catalog, TotalsAggregateAcrossTables) {
  Catalog c;
  ASSERT_TRUE(c.create_table(parents_schema()).is_ok());
  ASSERT_TRUE(c.create_table(children_schema(RefAction::restrict)).is_ok());
  ASSERT_TRUE(c.insert("parents", {Value("p1"), Value(0)}).is_ok());
  ASSERT_TRUE(c.insert("children", {Value(1), Value("p1")}).is_ok());
  EXPECT_EQ(c.total_rows(), 2u);
  EXPECT_GT(c.total_payload_bytes(), 0u);
  EXPECT_EQ(c.table_names(), (std::vector<std::string>{"children", "parents"}));
}

}  // namespace
}  // namespace wdoc::storage

// BlobStore tests: content-address dedup, ref counting, synthetic blobs,
// capacity enforcement, buffer-space gc semantics.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "blob/blob_store.hpp"

namespace wdoc::blob {
namespace {

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(MediaType, NamesAndLayerSplit) {
  EXPECT_STREQ(media_type_name(MediaType::video), "video");
  EXPECT_TRUE(is_blob_layer(MediaType::video));
  EXPECT_TRUE(is_blob_layer(MediaType::midi));
  EXPECT_FALSE(is_blob_layer(MediaType::html));
  EXPECT_FALSE(is_blob_layer(MediaType::annotation));
}

TEST(MediaType, TypicalSizesOrderSensibly) {
  EXPECT_GT(typical_media_bytes(MediaType::video), typical_media_bytes(MediaType::audio));
  EXPECT_GT(typical_media_bytes(MediaType::audio), typical_media_bytes(MediaType::midi));
}

TEST(BlobStore, PutAndGetRoundTrip) {
  BlobStore store;
  auto id = store.put(bytes_of("lecture video bytes"), MediaType::video);
  ASSERT_TRUE(id.is_ok());
  auto data = store.get(id.value());
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(data.value().size(), 19u);
  const BlobInfo* info = store.info(id.value());
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->type, MediaType::video);
  EXPECT_EQ(info->refs, 1u);
  EXPECT_TRUE(info->resident);
}

TEST(BlobStore, IdenticalContentDedups) {
  BlobStore store;
  auto a = store.put(bytes_of("same clip"), MediaType::audio);
  auto b = store.put(bytes_of("same clip"), MediaType::audio);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(store.blob_count(), 1u);
  EXPECT_EQ(store.info(a.value())->refs, 2u);
  // Unique bytes counted once; logical twice.
  EXPECT_EQ(store.stored_bytes(), 9u);
  EXPECT_EQ(store.logical_bytes(), 18u);
}

TEST(BlobStore, DifferentContentDistinct) {
  BlobStore store;
  auto a = store.put(bytes_of("clip A"), MediaType::audio);
  auto b = store.put(bytes_of("clip B"), MediaType::audio);
  EXPECT_NE(a.value(), b.value());
  EXPECT_EQ(store.blob_count(), 2u);
}

TEST(BlobStore, SyntheticBlobsAccountSizeWithoutPayload) {
  BlobStore store;
  Digest128 d = digest128("ten megabyte video");
  auto id = store.put_synthetic(d, 10u << 20, MediaType::video);
  ASSERT_TRUE(id.is_ok());
  EXPECT_EQ(store.stored_bytes(), 10u << 20);
  EXPECT_FALSE(store.info(id.value())->resident);
  EXPECT_EQ(store.get(id.value()).code(), Errc::unavailable);
}

TEST(BlobStore, SyntheticDedupsByDigest) {
  BlobStore store;
  Digest128 d = digest128("shared");
  auto a = store.put_synthetic(d, 100, MediaType::image);
  auto b = store.put_synthetic(d, 100, MediaType::image);
  EXPECT_EQ(a.value(), b.value());
  EXPECT_EQ(store.stored_bytes(), 100u);
  EXPECT_EQ(store.logical_bytes(), 200u);
}

TEST(BlobStore, SyntheticUpgradedByRealPut) {
  BlobStore store;
  Bytes payload = bytes_of("real payload");
  Digest128 d = digest128(std::span<const std::uint8_t>(payload));
  auto synth = store.put_synthetic(d, payload.size(), MediaType::image);
  ASSERT_TRUE(synth.is_ok());
  auto real = store.put(payload, MediaType::image);
  ASSERT_TRUE(real.is_ok());
  EXPECT_EQ(synth.value(), real.value());
  EXPECT_TRUE(store.info(real.value())->resident);
  EXPECT_TRUE(store.get(real.value()).is_ok());
}

TEST(BlobStore, AddRefAndRelease) {
  BlobStore store;
  auto id = store.put(bytes_of("x"), MediaType::other).value();
  ASSERT_TRUE(store.add_ref(id).is_ok());
  EXPECT_EQ(store.info(id)->refs, 2u);
  ASSERT_TRUE(store.release(id).is_ok());
  ASSERT_TRUE(store.release(id).is_ok());
  EXPECT_EQ(store.info(id)->refs, 0u);
  EXPECT_EQ(store.release(id).code(), Errc::conflict);  // double release
  EXPECT_EQ(store.add_ref(BlobId{999}).code(), Errc::not_found);
}

TEST(BlobStore, ZeroRefBlobsLingerUntilGc) {
  BlobStore store;
  auto id = store.put(bytes_of("ephemeral lecture"), MediaType::video).value();
  ASSERT_TRUE(store.release(id).is_ok());
  // Buffer space still occupied (paper: duplicated instances live on as
  // buffers after a lecture).
  EXPECT_EQ(store.blob_count(), 1u);
  EXPECT_GT(store.stored_bytes(), 0u);
  std::uint64_t reclaimed = store.gc();
  EXPECT_EQ(reclaimed, 17u);
  EXPECT_EQ(store.blob_count(), 0u);
  EXPECT_EQ(store.stored_bytes(), 0u);
}

TEST(BlobStore, EvictNowFreesImmediately) {
  BlobStore store;
  auto id = store.put(bytes_of("gone"), MediaType::other).value();
  ASSERT_TRUE(store.release(id, /*evict_now=*/true).is_ok());
  EXPECT_EQ(store.blob_count(), 0u);
  EXPECT_EQ(store.info(id), nullptr);
}

TEST(BlobStore, GcKeepsReferencedBlobs) {
  BlobStore store;
  auto keep = store.put(bytes_of("keep"), MediaType::other).value();
  auto drop = store.put(bytes_of("drop"), MediaType::other).value();
  ASSERT_TRUE(store.release(drop).is_ok());
  (void)store.gc();
  EXPECT_NE(store.info(keep), nullptr);
  EXPECT_EQ(store.info(drop), nullptr);
}

TEST(BlobStore, CapacityEnforced) {
  BlobStore store(/*capacity_bytes=*/10);
  EXPECT_TRUE(store.put(bytes_of("12345"), MediaType::other).is_ok());
  auto full = store.put(bytes_of("123456789"), MediaType::other);
  EXPECT_EQ(full.code(), Errc::out_of_space);
  // Dedup hit does not consume capacity.
  EXPECT_TRUE(store.put(bytes_of("12345"), MediaType::other).is_ok());
}

TEST(BlobStore, FindByDigest) {
  BlobStore store;
  Bytes payload = bytes_of("locatable");
  Digest128 d = digest128(std::span<const std::uint8_t>(payload));
  auto id = store.put(payload, MediaType::other).value();
  auto found = store.find(d);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, id);
  EXPECT_FALSE(store.find(digest128("missing")).has_value());
}

TEST(BlobStore, ReleaseAfterGcReportsNotFound) {
  BlobStore store;
  auto id = store.put(bytes_of("x"), MediaType::other).value();
  ASSERT_TRUE(store.release(id, true).is_ok());
  EXPECT_EQ(store.release(id).code(), Errc::not_found);
}

// --- disk persistence -------------------------------------------------------

class DiskBlobStore : public ::testing::Test {
 protected:
  DiskBlobStore() {
    dir_ = (std::filesystem::temp_directory_path() /
            ("wdoc-blobtest-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter_++)))
               .string();
  }
  ~DiskBlobStore() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
  static inline int counter_ = 0;
};

TEST_F(DiskBlobStore, PayloadsSurviveReopen) {
  Digest128 digest;
  {
    auto store = BlobStore::open(dir_).expect("open");
    auto id = store->put(bytes_of("persistent video frames"), MediaType::video)
                  .expect("put");
    digest = store->info(id)->digest;
  }
  auto reopened = BlobStore::open(dir_).expect("reopen");
  auto id = reopened->find(digest);
  ASSERT_TRUE(id.has_value());
  const BlobInfo* info = reopened->info(*id);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->size, 23u);
  EXPECT_EQ(info->refs, 0u);  // owners re-reference during recovery
  EXPECT_TRUE(info->resident);
  // Lazy fault-in returns the original bytes.
  auto data = reopened->get(*id);
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(Bytes(data.value().begin(), data.value().end()),
            bytes_of("persistent video frames"));
}

TEST_F(DiskBlobStore, SyntheticBlobsAreNotPersisted) {
  {
    auto store = BlobStore::open(dir_).expect("open");
    ASSERT_TRUE(
        store->put_synthetic(digest128("sim-only"), 1 << 20, MediaType::video)
            .is_ok());
  }
  auto reopened = BlobStore::open(dir_).expect("reopen");
  EXPECT_EQ(reopened->blob_count(), 0u);
}

TEST_F(DiskBlobStore, GcDeletesFiles) {
  auto store = BlobStore::open(dir_).expect("open");
  auto id = store->put(bytes_of("doomed"), MediaType::other).expect("put");
  ASSERT_EQ(std::distance(std::filesystem::directory_iterator(dir_),
                          std::filesystem::directory_iterator{}),
            1);
  ASSERT_TRUE(store->release(id).is_ok());
  EXPECT_GT(store->gc(), 0u);
  EXPECT_EQ(std::distance(std::filesystem::directory_iterator(dir_),
                          std::filesystem::directory_iterator{}),
            0);
}

TEST_F(DiskBlobStore, DedupAcrossReopen) {
  {
    auto store = BlobStore::open(dir_).expect("open");
    ASSERT_TRUE(store->put(bytes_of("shared clip"), MediaType::audio).is_ok());
  }
  auto reopened = BlobStore::open(dir_).expect("reopen");
  std::uint64_t before = reopened->stored_bytes();
  // Re-putting identical bytes hits the reloaded index: no new file.
  ASSERT_TRUE(reopened->put(bytes_of("shared clip"), MediaType::audio).is_ok());
  EXPECT_EQ(reopened->stored_bytes(), before);
  EXPECT_EQ(reopened->blob_count(), 1u);
}

TEST_F(DiskBlobStore, ForeignFilesIgnored) {
  std::filesystem::create_directories(dir_);
  std::FILE* f = std::fopen((dir_ + "/readme.txt").c_str(), "wb");
  std::fputs("not a blob", f);
  std::fclose(f);
  auto store = BlobStore::open(dir_).expect("open");
  EXPECT_EQ(store->blob_count(), 0u);
}

}  // namespace
}  // namespace wdoc::blob

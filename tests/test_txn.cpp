// Transaction tests: lock compatibility matrix, commit/abort semantics,
// undo of cascades, deadlock detection, and multi-threaded isolation.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.hpp"
#include "storage/txn.hpp"

namespace wdoc::storage {
namespace {

Schema accounts_schema() {
  return Schema("accounts",
                {Column{"name", ValueType::text, false, false, false},
                 Column{"balance", ValueType::integer, false, false, false}},
                "name");
}

class TxnFixture : public ::testing::Test {
 protected:
  TxnFixture() : db_(Database::in_memory()), mgr_(*db_, std::chrono::milliseconds(200)) {
    db_->create_table(accounts_schema()).expect("create accounts");
    a_ = db_->insert("accounts", {Value("alice"), Value(100)}).expect("seed a");
    b_ = db_->insert("accounts", {Value("bob"), Value(50)}).expect("seed b");
  }
  std::unique_ptr<Database> db_;
  TransactionManager mgr_;
  RowId a_, b_;
};

TEST(TxnLockMode, CompatibilityMatrix) {
  using M = TxnLockMode;
  EXPECT_TRUE(txn_lock_compatible(M::IS, M::IS));
  EXPECT_TRUE(txn_lock_compatible(M::IS, M::IX));
  EXPECT_TRUE(txn_lock_compatible(M::IS, M::S));
  EXPECT_FALSE(txn_lock_compatible(M::IS, M::X));
  EXPECT_TRUE(txn_lock_compatible(M::IX, M::IX));
  EXPECT_FALSE(txn_lock_compatible(M::IX, M::S));
  EXPECT_TRUE(txn_lock_compatible(M::S, M::S));
  EXPECT_FALSE(txn_lock_compatible(M::S, M::X));
  EXPECT_FALSE(txn_lock_compatible(M::X, M::IS));
  EXPECT_FALSE(txn_lock_compatible(M::X, M::X));
}

TEST_F(TxnFixture, CommitMakesChangesVisible) {
  auto txn = mgr_.begin();
  ASSERT_TRUE(txn->update_column("accounts", a_, "balance", Value(90)).is_ok());
  ASSERT_TRUE(txn->commit().is_ok());
  EXPECT_EQ(db_->catalog().table("accounts")->cell(a_, "balance").as_int(), 90);
}

TEST_F(TxnFixture, AbortRollsBackUpdates) {
  auto txn = mgr_.begin();
  ASSERT_TRUE(txn->update_column("accounts", a_, "balance", Value(0)).is_ok());
  txn->abort();
  EXPECT_EQ(db_->catalog().table("accounts")->cell(a_, "balance").as_int(), 100);
}

TEST_F(TxnFixture, AbortRollsBackInsertsAndErases) {
  auto txn = mgr_.begin();
  auto id = txn->insert("accounts", {Value("carol"), Value(10)});
  ASSERT_TRUE(id.is_ok());
  ASSERT_TRUE(txn->erase("accounts", b_).is_ok());
  txn->abort();
  EXPECT_EQ(db_->catalog().table("accounts")->row_count(), 2u);
  EXPECT_TRUE(db_->catalog().table("accounts")->exists(b_));
  EXPECT_FALSE(
      db_->catalog().table("accounts")->find_unique("name", Value("carol")).has_value());
}

TEST_F(TxnFixture, DestructorAbortsOpenTxn) {
  {
    auto txn = mgr_.begin();
    ASSERT_TRUE(txn->update_column("accounts", a_, "balance", Value(0)).is_ok());
    // dropped without commit
  }
  EXPECT_EQ(db_->catalog().table("accounts")->cell(a_, "balance").as_int(), 100);
}

TEST_F(TxnFixture, AbortUndoesCascadedDeletes) {
  Schema loans("loans",
               {Column{"id", ValueType::integer, false, true, false},
                Column{"owner", ValueType::text, false, false, true}},
               "", {ForeignKey{"owner", "accounts", "name", RefAction::cascade}});
  ASSERT_TRUE(db_->create_table(loans).is_ok());
  ASSERT_TRUE(db_->insert("loans", {Value(1), Value("alice")}).is_ok());
  ASSERT_TRUE(db_->insert("loans", {Value(2), Value("alice")}).is_ok());

  auto txn = mgr_.begin();
  ASSERT_TRUE(txn->erase("accounts", a_).is_ok());
  EXPECT_EQ(db_->catalog().table("loans")->row_count(), 0u);
  txn->abort();
  EXPECT_EQ(db_->catalog().table("loans")->row_count(), 2u);
  EXPECT_TRUE(db_->catalog().table("accounts")->exists(a_));
}

TEST_F(TxnFixture, ReadersShareRowLocks) {
  auto t1 = mgr_.begin();
  auto t2 = mgr_.begin();
  ASSERT_TRUE(t1->get("accounts", a_).is_ok());
  ASSERT_TRUE(t2->get("accounts", a_).is_ok());
  ASSERT_TRUE(t1->commit().is_ok());
  ASSERT_TRUE(t2->commit().is_ok());
}

TEST_F(TxnFixture, WriterBlocksReaderUntilTimeout) {
  auto writer = mgr_.begin();
  ASSERT_TRUE(writer->update_column("accounts", a_, "balance", Value(1)).is_ok());
  auto reader = mgr_.begin();
  auto r = reader->get("accounts", a_);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::timeout);
  ASSERT_TRUE(writer->commit().is_ok());
  // After commit the row is readable again.
  auto reader2 = mgr_.begin();
  EXPECT_TRUE(reader2->get("accounts", a_).is_ok());
  EXPECT_EQ(reader2->get("accounts", a_).value()[1].as_int(), 1);
}

TEST_F(TxnFixture, DisjointRowsDoNotConflict) {
  auto t1 = mgr_.begin();
  auto t2 = mgr_.begin();
  ASSERT_TRUE(t1->update_column("accounts", a_, "balance", Value(1)).is_ok());
  ASSERT_TRUE(t2->update_column("accounts", b_, "balance", Value(2)).is_ok());
  ASSERT_TRUE(t1->commit().is_ok());
  ASSERT_TRUE(t2->commit().is_ok());
}

TEST_F(TxnFixture, TableScanBlocksWriters) {
  auto scanner = mgr_.begin();
  ASSERT_TRUE(scanner->find_equal("accounts", "name", Value("alice")).is_ok());
  auto writer = mgr_.begin();
  auto r = writer->update_column("accounts", a_, "balance", Value(5));
  EXPECT_FALSE(r.is_ok());  // S table lock vs IX: incompatible
  ASSERT_TRUE(scanner->commit().is_ok());
}

TEST_F(TxnFixture, DeadlockDetectedAndVictimized) {
  std::atomic<int> deadlocks{0};
  std::atomic<int> committed{0};

  // t1 locks a then b; t2 locks b then a. One of them must be the victim.
  auto worker = [&](RowId first, RowId second) {
    auto txn = mgr_.begin();
    if (!txn->update_column("accounts", first, "balance", Value(1)).is_ok()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Status s = txn->update_column("accounts", second, "balance", Value(2));
    if (s.code() == Errc::deadlock || s.code() == Errc::timeout) {
      ++deadlocks;
      txn->abort();
      return;
    }
    if (txn->commit().is_ok()) ++committed;
  };
  std::thread th1(worker, a_, b_);
  std::thread th2(worker, b_, a_);
  th1.join();
  th2.join();
  EXPECT_GE(deadlocks.load(), 1);
  EXPECT_GE(committed.load(), 1);
  EXPECT_GE(mgr_.deadlocks_detected(), 1u);
}

TEST_F(TxnFixture, ConcurrentTransfersPreserveTotalBalance) {
  const int kThreads = 4;
  const int kOpsPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        auto txn = mgr_.begin();
        RowId from = (t + i) % 2 == 0 ? a_ : b_;
        RowId to = from == a_ ? b_ : a_;
        auto from_row = txn->get("accounts", from);
        if (!from_row.is_ok()) {
          txn->abort();
          continue;
        }
        auto to_row = txn->get("accounts", to);
        if (!to_row.is_ok()) {
          txn->abort();
          continue;
        }
        std::int64_t amount = 1;
        if (!txn->update_column("accounts", from, "balance",
                                Value(from_row.value()[1].as_int() - amount))
                 .is_ok() ||
            !txn->update_column("accounts", to, "balance",
                                Value(to_row.value()[1].as_int() + amount))
                 .is_ok()) {
          txn->abort();
          continue;
        }
        (void)txn->commit();
      }
    });
  }
  for (auto& th : threads) th.join();
  std::int64_t total =
      db_->catalog().table("accounts")->cell(a_, "balance").as_int() +
      db_->catalog().table("accounts")->cell(b_, "balance").as_int();
  EXPECT_EQ(total, 150);
}

TEST_F(TxnFixture, SoakRandomOpsKeepInvariants) {
  // Seed a wider table so threads mostly work on disjoint rows.
  std::vector<RowId> rows{a_, b_};
  for (int i = 0; i < 18; ++i) {
    rows.push_back(
        db_->insert("accounts", {Value("acct-" + std::to_string(i)), Value(100)})
            .expect("seed"));
  }
  const std::int64_t initial_total = 100 * 18 + 150;

  std::atomic<int> commits{0}, aborts{0};
  auto worker = [&](std::uint64_t seed) {
    Rng rng(seed);
    for (int op = 0; op < 120; ++op) {
      auto txn = mgr_.begin();
      RowId from = rows[rng.uniform(rows.size())];
      RowId to = rows[rng.uniform(rows.size())];
      if (from == to) {
        txn->abort();
        continue;
      }
      auto fr = txn->get("accounts", from);
      auto tr = txn->get("accounts", to);
      if (!fr.is_ok() || !tr.is_ok()) {
        txn->abort();
        ++aborts;
        continue;
      }
      std::int64_t amount = rng.uniform_range(1, 5);
      bool ok =
          txn->update_column("accounts", from, "balance",
                             Value(fr.value()[1].as_int() - amount))
              .is_ok() &&
          txn->update_column("accounts", to, "balance",
                             Value(tr.value()[1].as_int() + amount))
              .is_ok();
      // Randomly abort some otherwise-good transactions too.
      if (!ok || rng.bernoulli(0.2)) {
        txn->abort();
        ++aborts;
      } else if (txn->commit().is_ok()) {
        ++commits;
      }
    }
  };
  std::vector<std::thread> threads;
  for (std::uint64_t t = 0; t < 4; ++t) threads.emplace_back(worker, t + 1);
  for (auto& th : threads) th.join();

  // Conservation: every committed transfer is balance-neutral; every abort
  // rolled back completely.
  std::int64_t total = 0;
  db_->catalog().table("accounts")->scan(
      [&](RowId, const std::vector<Value>& row) {
        total += row[1].as_int();
        return true;
      });
  EXPECT_EQ(total, initial_total);
  EXPECT_GT(commits.load(), 0);
  EXPECT_GT(aborts.load(), 0);
  EXPECT_EQ(mgr_.active_txns(), 0u);
}

TEST_F(TxnFixture, LocksReleasedAfterCommit) {
  auto txn = mgr_.begin();
  ASSERT_TRUE(txn->get("accounts", a_).is_ok());
  TxnId id = txn->id();
  EXPECT_GT(mgr_.held_locks(id), 0u);
  ASSERT_TRUE(txn->commit().is_ok());
  EXPECT_EQ(mgr_.held_locks(id), 0u);
}

TEST_F(TxnFixture, UniqueViolationInsideTxnSurfacesCleanly) {
  auto txn = mgr_.begin();
  auto dup = txn->insert("accounts", {Value("alice"), Value(1)});
  EXPECT_EQ(dup.code(), Errc::constraint_violation);
  // The txn is still usable and abortable.
  ASSERT_TRUE(txn->update_column("accounts", b_, "balance", Value(60)).is_ok());
  ASSERT_TRUE(txn->commit().is_ok());
  EXPECT_EQ(db_->catalog().table("accounts")->cell(b_, "balance").as_int(), 60);
}

}  // namespace
}  // namespace wdoc::storage

// Observability-plane tests: hierarchical metrics scrape over the m-ary
// broadcast tree (StationNode::scrape_tree, AdminNode::scrape_cluster) and
// deterministic Perfetto export of a lecture-push trace.
#include <gtest/gtest.h>

#include "dist/admin_node.hpp"
#include "net/sim_network.hpp"
#include "obs/trace_export.hpp"

namespace wdoc::dist {
namespace {

// Value of `name{station=<id>}` in `snap`, or -1 when absent.
double station_sample(const obs::Snapshot& snap, const std::string& name,
                      StationId station) {
  for (const obs::MetricSample& s : snap.samples) {
    auto it = s.labels.find("station");
    if (s.name == name && it != s.labels.end() &&
        it->second == std::to_string(station.value())) {
      return s.value;
    }
  }
  return -1.0;
}

constexpr const char* kCounters[] = {
    "station.blob_serves",        "station.chunk_duplicates",
    "station.chunk_rejects",      "station.chunk_repair_served",
    "station.chunk_retransmits",  "station.chunks_received",
    "station.chunks_sent",        "station.demotions",
    "station.failed_fetches",     "station.failovers",
    "station.fetches_local",      "station.fetches_remote",
    "station.forwards_up",        "station.pushes_forwarded",
    "station.pushes_received",    "station.relays",
    "station.replications",       "station.resurrections",
    "station.rpc_exhausted",      "station.rpc_retries",
    "station.rpc_timeouts",       "station.serves",
};

// Samples per station in local_snapshot(): the 22 counters above + 2 gauges.
constexpr std::size_t kSamplesPerStation = 26;

std::uint64_t stat_by_name(const StationNode& node, std::string_view name) {
  const NodeStats& st = node.stats();
  const net::RpcStats rpc = node.rpc_stats();
  if (name == "station.blob_serves") return st.blob_serves;
  if (name == "station.chunk_duplicates") return st.chunk_duplicates;
  if (name == "station.chunk_rejects") return st.chunk_rejects;
  if (name == "station.chunk_repair_served") return st.chunk_repair_served;
  if (name == "station.chunk_retransmits") return st.chunk_retransmits;
  if (name == "station.chunks_received") return st.chunks_received;
  if (name == "station.chunks_sent") return st.chunks_sent;
  if (name == "station.demotions") return st.demotions;
  if (name == "station.failed_fetches") return st.failed_fetches;
  if (name == "station.failovers") return st.failovers;
  if (name == "station.fetches_local") return st.fetches_local;
  if (name == "station.fetches_remote") return st.fetches_remote;
  if (name == "station.forwards_up") return st.forwards_up;
  if (name == "station.pushes_forwarded") return st.pushes_forwarded;
  if (name == "station.pushes_received") return st.pushes_received;
  if (name == "station.relays") return st.relays;
  if (name == "station.replications") return st.replications;
  if (name == "station.resurrections") return st.resurrections;
  if (name == "station.rpc_exhausted") return rpc.exhausted;
  if (name == "station.rpc_retries") return rpc.retries;
  if (name == "station.rpc_timeouts") return rpc.attempt_timeouts;
  if (name == "station.serves") return st.serves;
  ADD_FAILURE() << "unknown counter " << name;
  return 0;
}

struct Cluster {
  explicit Cluster(std::size_t n, std::uint64_t m, std::uint64_t seed = 7)
      : net(seed) {
    std::vector<StationId> vec;
    for (std::size_t i = 0; i < n; ++i) {
      auto id = net.add_station();
      vec.push_back(id);
      blobs.push_back(std::make_unique<blob::BlobStore>());
      stores.push_back(std::make_unique<ObjectStore>(*blobs.back()));
      nodes.push_back(std::make_unique<StationNode>(net, id, *stores.back()));
      nodes.back()->bind();
    }
    for (auto& node : nodes) node->set_tree(vec, m);
  }

  void push_lecture(const std::string& key) {
    DocManifest doc;
    doc.doc_key = key;
    doc.structure_bytes = 5000;
    doc.home = nodes[0]->id();
    ASSERT_TRUE(nodes[0]->broadcast_push(doc).is_ok());
    net.run();
  }

  net::SimNetwork net;
  std::vector<std::unique_ptr<blob::BlobStore>> blobs;
  std::vector<std::unique_ptr<ObjectStore>> stores;
  std::vector<std::unique_ptr<StationNode>> nodes;
};

TEST(ScrapeTree, MergedSnapshotMatchesEveryStationsLocalCounters) {
  Cluster c(13, 3);
  c.push_lecture("http://mmu.edu/CS102/lecture1");

  obs::Snapshot merged;
  bool done = false;
  ASSERT_TRUE(c.nodes[0]
                  ->scrape_tree([&](obs::Snapshot snap, SimTime) {
                    merged = std::move(snap);
                    done = true;
                  })
                  .is_ok());
  c.net.run();
  ASSERT_TRUE(done);

  // One sample per (counter+gauge, station).
  EXPECT_EQ(merged.samples.size(), kSamplesPerStation * 13u);
  for (const auto& node : c.nodes) {
    for (const char* name : kCounters) {
      EXPECT_EQ(station_sample(merged, name, node->id()),
                static_cast<double>(stat_by_name(*node, name)))
          << name << " station " << node->id().value();
    }
  }
  // And the cluster totals are plain sums of the per-station samples.
  std::uint64_t pushes = 0;
  for (const auto& node : c.nodes) pushes += node->stats().pushes_received;
  EXPECT_GT(pushes, 0u);
  EXPECT_EQ(obs::counter_total(merged, "station.pushes_received"),
            static_cast<double>(pushes));
}

TEST(ScrapeTree, LeafScrapeReturnsOnlyItself) {
  Cluster c(5, 2);
  obs::Snapshot merged;
  // Node 4 (position 5) is a leaf: its subtree is itself.
  ASSERT_TRUE(c.nodes[4]
                  ->scrape_tree([&](obs::Snapshot snap, SimTime) {
                    merged = std::move(snap);
                  })
                  .is_ok());
  c.net.run();
  EXPECT_EQ(merged.samples.size(), kSamplesPerStation);
  for (const obs::MetricSample& s : merged.samples) {
    EXPECT_EQ(s.labels.at("station"), std::to_string(c.nodes[4]->id().value()));
  }
}

TEST(ScrapeTree, SnapshotRendersWithExistingExporters) {
  Cluster c(4, 2);
  c.push_lecture("http://mmu.edu/CS101/lecture1");
  obs::Snapshot merged;
  ASSERT_TRUE(c.nodes[0]
                  ->scrape_tree([&](obs::Snapshot snap, SimTime) {
                    merged = std::move(snap);
                  })
                  .is_ok());
  c.net.run();
  std::string table = obs::to_table(merged);
  EXPECT_NE(table.find("station.pushes_received"), std::string::npos);
  std::string json = obs::to_json(merged);
  EXPECT_NE(json.find("\"station.pushes_received"), std::string::npos);
}

// --- AdminNode::scrape_cluster ----------------------------------------------

struct Member {
  StationId id;
  std::unique_ptr<blob::BlobStore> blobs;
  std::unique_ptr<ObjectStore> store;
  std::unique_ptr<StationNode> node;
  std::unique_ptr<AdminClient> client;
};

class ScrapeClusterFixture : public ::testing::Test {
 protected:
  ScrapeClusterFixture() : net_(11) {
    admin_id_ = net_.add_station();
    admin_ = std::make_unique<AdminNode>(net_, admin_id_, coordinator_, /*m=*/3);
    admin_->bind();
  }

  void join_members(int n) {
    for (int i = 0; i < n; ++i) {
      auto m = std::make_unique<Member>();
      m->id = net_.add_station();
      m->blobs = std::make_unique<blob::BlobStore>();
      m->store = std::make_unique<ObjectStore>(*m->blobs);
      m->node = std::make_unique<StationNode>(net_, m->id, *m->store);
      m->client = std::make_unique<AdminClient>(net_, *m->node, admin_id_);
      m->client->bind();
      ASSERT_TRUE(m->client->request_join(nullptr).is_ok());
      members_.push_back(std::move(m));
    }
    net_.run();
  }

  net::SimNetwork net_;
  Coordinator coordinator_;
  StationId admin_id_;
  std::unique_ptr<AdminNode> admin_;
  std::vector<std::unique_ptr<Member>> members_;
};

TEST_F(ScrapeClusterFixture, MergesThirteenStationTree) {
  join_members(13);
  DocManifest doc;
  doc.doc_key = "http://mmu.edu/CS102/lecture2";
  doc.structure_bytes = 5000;
  doc.home = members_[0]->id;
  ASSERT_TRUE(members_[0]->node->broadcast_push(doc).is_ok());
  net_.run();

  obs::Snapshot merged;
  bool done = false;
  ASSERT_TRUE(admin_
                  ->scrape_cluster([&](obs::Snapshot snap, SimTime) {
                    merged = std::move(snap);
                    done = true;
                  })
                  .is_ok());
  net_.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(admin_->scrapes_completed(), 1u);

  EXPECT_EQ(merged.samples.size(), kSamplesPerStation * 13u);
  for (const auto& m : members_) {
    for (const char* name : kCounters) {
      EXPECT_EQ(station_sample(merged, name, m->id),
                static_cast<double>(stat_by_name(*m->node, name)))
          << name << " station " << m->id.value();
    }
  }
  // Tree push accounting: 12 non-root stations received the push, and
  // forward counts sum to the edges the push travelled.
  EXPECT_EQ(obs::counter_total(merged, "station.pushes_received"), 12.0);
}

TEST_F(ScrapeClusterFixture, EmptyClusterCompletesImmediately) {
  bool done = false;
  obs::Snapshot merged;
  ASSERT_TRUE(admin_
                  ->scrape_cluster([&](obs::Snapshot snap, SimTime) {
                    merged = std::move(snap);
                    done = true;
                  })
                  .is_ok());
  EXPECT_TRUE(done);  // no fabric round-trip needed
  EXPECT_TRUE(merged.samples.empty());
  EXPECT_EQ(admin_->scrapes_completed(), 1u);
}

TEST_F(ScrapeClusterFixture, BackToBackScrapesUseDistinctRequestIds) {
  join_members(5);
  int fired = 0;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(admin_->scrape_cluster([&](obs::Snapshot, SimTime) { ++fired; })
                    .is_ok());
    net_.run();
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(admin_->scrapes_completed(), 3u);
}

// --- Perfetto export determinism ---------------------------------------------

std::string traced_lecture_run() {
  auto& tracer = obs::Tracer::global();
  tracer.set_enabled(true);
  (void)tracer.drain();  // forget spans from earlier tests
  Cluster c(13, 3, /*seed=*/1999);
  c.push_lecture("http://mmu.edu/CS102/lecture3");
  std::string json = obs::to_chrome_trace(tracer.drain());
  tracer.set_enabled(false);
  return json;
}

TEST(TraceExport, SameSeedRunsExportByteIdenticalJson) {
  std::string a = traced_lecture_run();
  std::string b = traced_lecture_run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(TraceExport, LecturePushTraceCoversEveryTreeHop) {
  std::string json = traced_lecture_run();
  // Valid trace-event envelope.
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0), 0u);
  // One pid metadata row per station in the 13-node tree.
  std::size_t processes = 0, pos = 0;
  while ((pos = json.find("\"process_name\"", pos)) != std::string::npos) {
    ++processes;
    pos += 1;
  }
  EXPECT_EQ(processes, 13u);
  // The push span chain reaches down the tree: flow arrows bind the hops.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
}

}  // namespace
}  // namespace wdoc::dist

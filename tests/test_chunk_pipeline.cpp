// Pipelining regression: on a depth-3 tree at the paper's campus profile
// (10 Mb/s links, 15 ms latency), the chunked cut-through push must beat
// whole-manifest store-and-forward by a wide margin.
//
// Store-and-forward makespan grows as depth × blob_time (each hop waits for
// the whole document before forwarding). Cut-through relays each verified
// chunk immediately, so makespan approaches blob_time + depth × chunk_time.
// The locked-in bound: chunked ≤ 0.6 × store-and-forward for a 10 MB
// lecture — a ≥ 1.67× improvement that catches any regression to
// store-and-forward behavior (e.g. a window stall or a relay that waits for
// blob completion).
#include <gtest/gtest.h>

#include "dist/station_node.hpp"
#include "net/sim_network.hpp"

namespace wdoc::dist {
namespace {

constexpr net::StationLink kCampus1999{10e6, 10e6, SimTime::millis(15), 0.0};

class Cluster {
 public:
  Cluster(std::size_t n, std::uint64_t m, StationConfig config) : net_(4242) {
    for (std::size_t i = 0; i < n; ++i) {
      StationId id = net_.add_station(kCampus1999);
      ids_.push_back(id);
      blobs_.push_back(std::make_unique<blob::BlobStore>());
      stores_.push_back(std::make_unique<ObjectStore>(*blobs_.back()));
      nodes_.push_back(std::make_unique<StationNode>(net_, id, *stores_.back(), config));
      nodes_.back()->bind();
    }
    for (auto& node : nodes_) node->set_tree(ids_, m);
  }

  [[nodiscard]] StationNode& node(std::size_t i) { return *nodes_[i]; }
  [[nodiscard]] ObjectStore& store(std::size_t i) { return *stores_[i]; }
  [[nodiscard]] net::SimNetwork& net() { return net_; }
  [[nodiscard]] std::size_t size() const { return ids_.size(); }

 private:
  net::SimNetwork net_;
  std::vector<StationId> ids_;
  std::vector<std::unique_ptr<blob::BlobStore>> blobs_;
  std::vector<std::unique_ptr<ObjectStore>> stores_;
  std::vector<std::unique_ptr<StationNode>> nodes_;
};

DocManifest ten_mb_lecture(StationId home) {
  DocManifest m;
  m.doc_key = "http://mmu.edu/cs500/lecture";
  m.structure_bytes = 64 << 10;
  m.home = home;
  BlobRef video;
  video.digest = digest128("cs500 lecture video");
  video.size = 10 << 20;
  video.type = blob::MediaType::video;
  m.blobs.push_back(video);
  return m;
}

// Runs one push strategy to completion on a fresh 15-station binary tree
// (depth 3: positions 8..15) and returns (makespan, all delivered).
struct PushRun {
  double makespan_s = 0;
  bool all_delivered = false;
};

PushRun run_push(bool chunked) {
  StationConfig cfg;
  cfg.chunk.enabled = chunked;
  Cluster c(15, 2, cfg);
  auto doc = ten_mb_lecture(c.node(0).id());
  Status s = chunked ? c.node(0).broadcast_push(doc)
                     : c.node(0).broadcast_push_store_forward(doc);
  EXPECT_TRUE(s.is_ok()) << s.message();
  c.net().run();
  PushRun out;
  out.makespan_s = c.net().now().as_seconds();
  out.all_delivered = true;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (!c.store(i).has_materialized(doc.doc_key)) out.all_delivered = false;
  }
  // Nothing may stay in flight after the fabric drains.
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(c.node(i).pending_rpcs(), 0u) << "station " << i;
    EXPECT_EQ(c.node(i).active_transfers(), 0u) << "station " << i;
  }
  return out;
}

TEST(ChunkPipeline, CutThroughBeatsStoreAndForwardOnDepth3Tree) {
  PushRun store_forward = run_push(/*chunked=*/false);
  PushRun chunked = run_push(/*chunked=*/true);

  ASSERT_TRUE(store_forward.all_delivered);
  ASSERT_TRUE(chunked.all_delivered);
  ASSERT_GT(store_forward.makespan_s, 0.0);
  ASSERT_GT(chunked.makespan_s, 0.0);

  // The locked-in regression bound (≥ 1.67× speedup).
  EXPECT_LE(chunked.makespan_s, 0.6 * store_forward.makespan_s)
      << "chunked=" << chunked.makespan_s
      << "s store-and-forward=" << store_forward.makespan_s << "s";

  // Sanity on the model itself: store-and-forward pays depth × blob_time
  // (≥ 3 × 8.4 s for 10 MB at 10 Mb/s); cut-through stays within a few
  // chunk-times of the root's own uplink serialization (2 copies ≈ 16.8 s).
  EXPECT_GE(store_forward.makespan_s, 3 * 8.0);
  EXPECT_LE(chunked.makespan_s, 25.0);
}

// The zero-copy contract of the payload refactor: pushing REAL bytes down
// the tree, the only per-station byte movement is the single reassembly
// memcpy into the lecture buffer. Every send — the root's first push, every
// interior relay, every retransmit — is a refcounted slice, so the
// net.payload.bytes_copied counter must not move at all during the push.
TEST(ChunkPipeline, RealPayloadRelayIsZeroCopy) {
  StationConfig cfg;
  Cluster c(15, 2, cfg);
  // 2 MiB of real lecture bytes at the root (8 chunks of 256 KiB).
  Bytes video(2 << 20);
  for (std::size_t i = 0; i < video.size(); ++i) {
    video[i] = static_cast<std::uint8_t>(i * 1315423911u >> 16);
  }
  DocManifest doc;
  doc.doc_key = "http://mmu.edu/cs500/real-lecture";
  doc.structure_bytes = 4 << 10;
  doc.home = c.node(0).id();
  BlobRef ref;
  ref.digest = digest128(video);
  ref.size = video.size();
  ref.type = blob::MediaType::video;
  doc.blobs.push_back(ref);
  auto id = c.store(0).blobs().put(video, blob::MediaType::video).expect("put");
  (void)c.store(0).blobs().release(id);

  const std::uint64_t copied_before = net::Payload::bytes_copied_total();
  ASSERT_TRUE(c.node(0).broadcast_push(doc).is_ok());
  c.net().run();
  const std::uint64_t copied = net::Payload::bytes_copied_total() - copied_before;

  // Every station holds the real, digest-verified bytes...
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_TRUE(c.store(i).has_materialized(doc.doc_key)) << "station " << i;
    EXPECT_TRUE(c.store(i).blobs().find(ref.digest).has_value()) << "station " << i;
  }
  // ...yet no payload bytes were copied anywhere on the push/relay path.
  // (Pre-refactor, each of the 14 receiving stations re-encoded ~2 MiB per
  // downstream child — gigabytes of memcpy for a wide tree.)
  EXPECT_EQ(copied, 0u);
}

TEST(ChunkPipeline, SameSeedChunkedPushIsByteDeterministic) {
  auto journal = [] {
    StationConfig cfg;
    Cluster c(15, 2, cfg);
    auto doc = ten_mb_lecture(c.node(0).id());
    EXPECT_TRUE(c.node(0).broadcast_push(doc).is_ok());
    c.net().run();
    std::string out;
    for (std::size_t i = 0; i < c.size(); ++i) {
      const NodeStats& st = c.node(i).stats();
      out += std::to_string(i) + ":" + std::to_string(st.chunks_sent) + "/" +
             std::to_string(st.chunks_received) + "/" +
             std::to_string(st.chunk_retransmits) + "/" +
             std::to_string(st.chunk_bytes_sent) + ";";
    }
    out += "t=" + std::to_string(c.net().now().as_micros());
    return out;
  };
  const std::string a = journal();
  const std::string b = journal();
  EXPECT_EQ(a, b);
}

// Scale determinism: the O(log n) event fabric must stay byte-identical
// across same-seed runs even at populations where the heap sees thousands
// of same-SimTime events (every depth of a 1023-station binary tree relays
// in lock-step). Any unstable tie-break — e.g. a heap comparator ignoring
// sequence numbers, or iteration over an unordered container feeding
// schedule order — shows up here as a diverging journal.
TEST(ChunkPipeline, N1023SameSeedPushIsByteDeterministic) {
  auto journal = [] {
    StationConfig cfg;
    Cluster c(1023, 2, cfg);
    DocManifest doc;
    doc.doc_key = "http://mmu.edu/cs500/scale-lecture";
    doc.structure_bytes = 4 << 10;
    doc.home = c.node(0).id();
    BlobRef ref;
    ref.digest = digest128("scale lecture video");
    ref.size = 1 << 20;
    ref.type = blob::MediaType::video;
    doc.blobs.push_back(ref);
    EXPECT_TRUE(c.node(0).broadcast_push(doc).is_ok());
    c.net().run();
    std::string out;
    std::size_t materialized = 0;
    for (std::size_t i = 0; i < c.size(); ++i) {
      const NodeStats& st = c.node(i).stats();
      out += std::to_string(st.chunks_sent) + "/" +
             std::to_string(st.chunks_received) + "/" +
             std::to_string(st.chunk_bytes_sent) + ";";
      if (c.store(i).has_materialized(doc.doc_key)) ++materialized;
    }
    out += "n=" + std::to_string(materialized);
    out += ",t=" + std::to_string(c.net().now().as_micros());
    EXPECT_EQ(materialized, c.size());
    return out;
  };
  const std::string a = journal();
  const std::string b = journal();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace wdoc::dist

// net::Payload — the refcounted immutable buffer every wire payload rides
// in. The contract under test: construction from owned buffers is
// zero-copy, slices alias the parent buffer (refcount bump, no bytes
// moved), explicit copies are counted by the net.payload.* metrics, and
// cow() steals the allocation only when this Payload is the sole owner of
// a whole minted buffer.
#include <gtest/gtest.h>

#include "net/payload.hpp"

namespace wdoc::net {
namespace {

Bytes pattern(std::size_t n) {
  Bytes out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(i * 7 + 1);
  return out;
}

TEST(Payload, DefaultIsEmpty) {
  Payload p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
}

TEST(Payload, MintFromBytesIsZeroCopy) {
  Bytes b = pattern(1000);
  const std::uint8_t* data = b.data();
  const std::uint64_t copied_before = Payload::bytes_copied_total();
  Payload p{std::move(b)};
  EXPECT_EQ(p.size(), 1000u);
  EXPECT_EQ(p.data(), data);  // the very same allocation
  EXPECT_EQ(Payload::bytes_copied_total(), copied_before);
}

TEST(Payload, MintFromStringIsZeroCopy) {
  std::string s(500, 'x');
  const std::uint64_t copied_before = Payload::bytes_copied_total();
  Payload p{std::move(s)};
  EXPECT_EQ(p.size(), 500u);
  EXPECT_EQ(p.text(), std::string(500, 'x'));
  EXPECT_EQ(Payload::bytes_copied_total(), copied_before);
}

TEST(Payload, CopyAndSliceShareTheBuffer) {
  Payload p{pattern(1000)};
  const std::uint64_t copied_before = Payload::bytes_copied_total();
  Payload q = p;              // refcount bump
  Payload s = p.slice(100, 200);
  EXPECT_EQ(q.data(), p.data());
  EXPECT_EQ(s.data(), p.data() + 100);
  EXPECT_EQ(s.size(), 200u);
  EXPECT_EQ(Payload::bytes_copied_total(), copied_before);
  // The slice keeps the buffer alive past the original.
  p = Payload{};
  q = Payload{};
  EXPECT_EQ(s.size(), 200u);
  EXPECT_EQ(s.data()[0], pattern(1000)[100]);
}

TEST(Payload, SliceClampsToBounds) {
  Payload p{pattern(100)};
  EXPECT_EQ(p.slice(90, 50).size(), 10u);
  EXPECT_EQ(p.slice(200, 10).size(), 0u);
}

TEST(Payload, WrapAliasesSharedBytes) {
  auto buf = std::make_shared<const Bytes>(pattern(4096));
  Payload whole = Payload::wrap(buf);
  Payload part = Payload::wrap(buf, 1024, 256);
  EXPECT_EQ(whole.size(), 4096u);
  EXPECT_EQ(part.data(), buf->data() + 1024);
  EXPECT_EQ(part.size(), 256u);
  // The wrap holds the buffer even after the caller's shared_ptr drops.
  const std::uint8_t expect_byte = (*buf)[1024];
  buf.reset();
  EXPECT_EQ(part.data()[0], expect_byte);
}

TEST(Payload, CopyOfCountsTheCopy) {
  Bytes b = pattern(777);
  const std::uint64_t copies_before = Payload::copies_total();
  const std::uint64_t copied_before = Payload::bytes_copied_total();
  Payload p = Payload::copy_of(b);
  EXPECT_EQ(p.size(), 777u);
  EXPECT_NE(p.data(), b.data());
  EXPECT_EQ(Payload::copies_total(), copies_before + 1);
  EXPECT_EQ(Payload::bytes_copied_total(), copied_before + 777);
}

TEST(Payload, ToBytesCountsTheCopy) {
  Payload p{pattern(333)};
  const std::uint64_t copied_before = Payload::bytes_copied_total();
  Bytes out = p.to_bytes();
  EXPECT_EQ(out, pattern(333));
  EXPECT_EQ(Payload::bytes_copied_total(), copied_before + 333);
  EXPECT_EQ(p.size(), 333u);  // the payload is unchanged
}

TEST(Payload, CowStealsWhenSoleOwnerOfWholeMintedBuffer) {
  Bytes b = pattern(2048);
  const std::uint8_t* data = b.data();
  Payload p{std::move(b)};
  const std::uint64_t copied_before = Payload::bytes_copied_total();
  Bytes out = p.cow();
  EXPECT_EQ(out.data(), data);  // stolen, not copied
  EXPECT_EQ(Payload::bytes_copied_total(), copied_before);
  EXPECT_TRUE(p.empty());  // the payload gave up its buffer
}

TEST(Payload, CowCopiesWhenShared) {
  Payload p{pattern(2048)};
  Payload keep = p;  // second owner: stealing would mutate shared bytes
  const std::uint64_t copied_before = Payload::bytes_copied_total();
  Bytes out = p.cow();
  EXPECT_EQ(out, pattern(2048));
  EXPECT_NE(out.data(), keep.data());
  EXPECT_EQ(Payload::bytes_copied_total(), copied_before + 2048);
  EXPECT_EQ(keep.size(), 2048u);  // the other owner is untouched
}

TEST(Payload, CowCopiesWhenSliced) {
  Payload p{pattern(2048)};
  Payload s = p.slice(0, 100);
  p = Payload{};
  const std::uint64_t copied_before = Payload::bytes_copied_total();
  Bytes out = s.cow();  // sole owner, but not the WHOLE buffer: must copy
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(Payload::bytes_copied_total(), copied_before + 100);
}

TEST(Payload, EqualityComparesContents) {
  Payload a{pattern(64)};
  Payload b = Payload::copy_of(pattern(64));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, Payload{pattern(63)});
  EXPECT_EQ(Payload{}, Payload{});
}

}  // namespace
}  // namespace wdoc::net

// Fault-matrix test: a 13-station m=3 broadcast tree driven through loss
// bursts, partitions, and station crashes. The invariant under every fault
// is *termination*: each fetch resolves exactly once — with a manifest, a
// terminal Errc::timeout, or Errc::unreachable — never a stranded callback.
// Same-seed runs must produce byte-identical outcome journals, faults and
// all.
#include <gtest/gtest.h>

#include <sstream>

#include "common/hash.hpp"
#include "dist/lecture.hpp"
#include "net/sim_network.hpp"

namespace wdoc::dist {
namespace {

// Tight lifecycle knobs so a whole exhaustion (4 attempts + backoff) fits
// in a few simulated seconds.
StationConfig tight_config() {
  StationConfig cfg;
  cfg.rpc.deadline = SimTime::millis(500);
  cfg.rpc.max_retries = 3;
  cfg.rpc.backoff.initial = SimTime::millis(100);
  cfg.rpc.backoff.cap = SimTime::seconds(1);
  return cfg;
}

struct Cluster {
  explicit Cluster(std::uint64_t seed, std::size_t n = 13, std::uint64_t m = 3,
                   StationConfig cfg = tight_config())
      : net(seed) {
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(net.add_station());
      blobs.push_back(std::make_unique<blob::BlobStore>());
      stores.push_back(std::make_unique<ObjectStore>(*blobs.back()));
      nodes.push_back(std::make_unique<StationNode>(net, ids.back(), *stores.back(), cfg));
      nodes.back()->bind();
    }
    for (auto& node : nodes) node->set_tree(ids, m);
  }

  // A document materialized only at the root; every other station holds a
  // reference, so a fetch anywhere else walks up the tree.
  void seed_document(const std::string& key) {
    DocManifest doc;
    doc.doc_key = key;
    doc.structure_bytes = 2000;
    doc.home = ids[0];
    stores[0]->put_instance(doc, /*ephemeral=*/false).expect("root instance");
    for (std::size_t i = 1; i < stores.size(); ++i) {
      stores[i]->put_reference(doc).expect("reference");
    }
  }

  net::SimNetwork net;
  std::vector<StationId> ids;
  std::vector<std::unique_ptr<blob::BlobStore>> blobs;
  std::vector<std::unique_ptr<ObjectStore>> stores;
  std::vector<std::unique_ptr<StationNode>> nodes;
};

enum class Fault { none, loss_burst, partition, crash, crash_restart };

net::FaultPlan plan_for(Fault f, const Cluster& c) {
  net::FaultPlan plan;
  switch (f) {
    case Fault::none:
      break;
    case Fault::loss_burst:
      // Heavy burst on the root's links while the fetches fly.
      plan.loss_bursts.push_back({c.ids[0], 0.5, SimTime::millis(1), SimTime::seconds(3)});
      break;
    case Fault::partition:
      // Isolate position 2's subtree: positions 2 and its children 5, 6, 7
      // (child(2, i, 3) = 3·1 + i + 1) from everything else.
      plan.partitions.push_back(
          {{c.ids[1], c.ids[4], c.ids[5], c.ids[6]}, SimTime::millis(1), SimTime::seconds(2)});
      break;
    case Fault::crash:
      plan.crashes.push_back({c.ids[1], SimTime::millis(1), SimTime::zero()});
      break;
    case Fault::crash_restart:
      plan.crashes.push_back({c.ids[1], SimTime::millis(1), SimTime::seconds(2)});
      break;
  }
  return plan;
}

// Runs one scenario: every non-root station fetches the root-held document
// while the fault is active. Returns a deterministic outcome journal. With
// `late_fault`, a loss burst is injected whose window opens only long after
// the traffic resolves — it must not perturb the run at all.
std::string run_scenario(Fault f, std::uint64_t seed, bool late_fault = false) {
  Cluster c(seed);
  const std::string key = "http://mmu.edu/CS500/fault-drill";
  c.seed_document(key);
  net::FaultPlan plan = plan_for(f, c);
  if (late_fault) {
    plan.loss_bursts.push_back(
        {c.ids[0], 0.9, SimTime::seconds(1000), SimTime::seconds(2000)});
  }
  if (!plan.empty()) {
    c.net.inject(plan).expect("inject");
  }

  std::ostringstream journal;
  std::size_t issued = 0;
  std::size_t resolved = 0;
  for (std::size_t i = 1; i < c.nodes.size(); ++i) {
    StationNode* node = c.nodes[i].get();
    c.net.schedule_after(SimTime::millis(10 + static_cast<std::int64_t>(i)), [&, i, node] {
      Status s = node->fetch(key, [&, i](Result<DocManifest> r, SimTime t) {
        ++resolved;
        journal << "station=" << i << " code=" << errc_name(r.status().code())
                << " t=" << t.as_micros() << "\n";
      });
      ASSERT_TRUE(s.is_ok()) << "station " << i;
      ++issued;
    });
  }
  c.net.run();

  // Termination: every issued fetch resolved exactly once, nothing pending.
  EXPECT_EQ(issued, c.nodes.size() - 1);
  EXPECT_EQ(resolved, issued);
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    const net::RpcStats st = c.nodes[i]->rpc_stats();
    EXPECT_EQ(c.nodes[i]->pending_rpcs(), 0u) << "station " << i;
    EXPECT_EQ(st.started, st.completed + st.exhausted) << "station " << i;
  }
  return journal.str();
}

class FaultMatrix : public ::testing::TestWithParam<Fault> {};

TEST_P(FaultMatrix, EveryFetchTerminatesAndRunsAreDeterministic) {
  const std::string a = run_scenario(GetParam(), /*seed=*/2024);
  const std::string b = run_scenario(GetParam(), /*seed=*/2024);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // byte-identical journal, faults and all
}

INSTANTIATE_TEST_SUITE_P(Matrix, FaultMatrix,
                         ::testing::Values(Fault::none, Fault::loss_burst,
                                           Fault::partition, Fault::crash,
                                           Fault::crash_restart),
                         [](const ::testing::TestParamInfo<Fault>& info) {
                           switch (info.param) {
                             case Fault::none: return "none";
                             case Fault::loss_burst: return "loss_burst";
                             case Fault::partition: return "partition";
                             case Fault::crash: return "crash";
                             case Fault::crash_restart: return "crash_restart";
                           }
                           return "unknown";
                         });

TEST(FaultMatrix, ClosedFaultWindowLeavesTheRunByteIdentical) {
  // Injected-fault checks draw from the rng only while a window is open: a
  // plan whose burst starts long after the traffic drains must leave the
  // outcome journal byte-identical to no plan at all.
  const std::string baseline = run_scenario(Fault::none, 7);
  const std::string with_latent_fault = run_scenario(Fault::none, 7, /*late_fault=*/true);
  EXPECT_FALSE(baseline.empty());
  EXPECT_EQ(baseline, with_latent_fault);
}

TEST(FaultPlanValidate, RejectsNonsense) {
  net::SimNetwork net(1);
  StationId a = net.add_station();

  net::FaultPlan bad_rate;
  bad_rate.loss_bursts.push_back({a, 1.5, SimTime::millis(1), SimTime::millis(2)});
  EXPECT_EQ(net.inject(bad_rate).code(), Errc::invalid_argument);

  net::FaultPlan inverted_window;
  inverted_window.loss_bursts.push_back({a, 0.5, SimTime::millis(5), SimTime::millis(2)});
  EXPECT_EQ(net.inject(inverted_window).code(), Errc::invalid_argument);

  net::FaultPlan empty_island;
  empty_island.partitions.push_back({{}, SimTime::millis(1), SimTime::millis(2)});
  EXPECT_EQ(net.inject(empty_island).code(), Errc::invalid_argument);

  net::FaultPlan unknown_station;
  unknown_station.crashes.push_back({StationId{999}, SimTime::millis(1), SimTime::zero()});
  EXPECT_FALSE(net.inject(unknown_station).is_ok());

  net::FaultPlan in_the_past;
  in_the_past.crashes.push_back({a, SimTime::millis(1), SimTime::zero()});
  net.schedule_after(SimTime::millis(10), [] {});
  (void)net.run();
  EXPECT_FALSE(net.inject(in_the_past).is_ok());
}

// The acceptance scenario from the redesign: 20% loss on the root plus an
// interior crash mid-lecture. The orphaned subtree declares its parent dead
// and reparents to the grandparent (the root, by ⌊(k−i−1)/m⌋+1 applied
// twice); the repair loop converges for every station that is still online;
// the lifecycle counters account for every retry and failover.
TEST(FaultAcceptance, OrphansReparentAndRepairConvergesUnderLossAndCrash) {
  Cluster c(/*seed=*/99);
  DocManifest doc;
  doc.doc_key = "http://mmu.edu/CS501/lecture1";
  doc.structure_bytes = 5000;
  doc.home = c.ids[0];
  c.stores[0]->put_instance(doc, /*ephemeral=*/false).expect("instructor copy");

  std::vector<StationNode*> audience;
  for (std::size_t i = 1; i < c.nodes.size(); ++i) audience.push_back(c.nodes[i].get());
  LectureSession lecture(LectureId{1}, doc, *c.nodes[0], audience);

  net::FaultPlan plan;
  plan.loss_bursts.push_back({c.ids[0], 0.2, SimTime::millis(1), SimTime::seconds(20)});
  // Station index 1 holds tree position 2 — an interior node whose children
  // sit at positions 5, 6, 7 (station indices 4, 5, 6). It dies mid-push
  // and never comes back.
  plan.crashes.push_back({c.ids[1], SimTime::millis(2), SimTime::zero()});
  c.net.inject(plan).expect("inject");

  ASSERT_TRUE(lecture.begin().is_ok());
  c.net.run();

  // Repair until every *online* audience member holds the lecture.
  auto online_converged = [&] {
    for (std::size_t i = 1; i < c.nodes.size(); ++i) {
      if (!c.nodes[i]->online()) continue;
      if (!c.stores[i]->has_materialized(doc.doc_key)) return false;
    }
    return true;
  };
  int rounds = 0;
  while (!online_converged() && rounds < 60) {
    ASSERT_TRUE(lecture.repair().is_ok());
    c.net.run();
    ++rounds;
  }
  EXPECT_TRUE(online_converged()) << "repair did not converge in " << rounds << " rounds";

  // The crashed interior node is offline; its children noticed and
  // reparented to the grandparent — the root.
  EXPECT_FALSE(c.nodes[1]->online());
  std::uint64_t failovers = 0;
  std::uint64_t orphans_reparented = 0;
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    failovers += c.nodes[i]->stats().failovers;
    if (i >= 4 && i <= 6 && c.nodes[i]->is_declared_dead(c.ids[1])) {
      ++orphans_reparented;
      EXPECT_EQ(c.nodes[i]->live_parent_station(), c.ids[0]) << "station " << i;
    }
  }
  EXPECT_GE(failovers, 1u);
  EXPECT_GE(orphans_reparented, 1u);

  // Lifecycle accounting: every rpc either completed or exhausted; every
  // retry was counted; nothing is still pending after the queue drained.
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    const net::RpcStats st = c.nodes[i]->rpc_stats();
    EXPECT_EQ(c.nodes[i]->pending_rpcs(), 0u) << "station " << i;
    EXPECT_EQ(st.started, st.completed + st.exhausted) << "station " << i;
    EXPECT_GE(st.attempt_timeouts, st.retries) << "station " << i;
  }
}

// --- chunked push under faults ----------------------------------------------
//
// The chunked acceptance drill: a lecture WITH blob payload pushed down the
// 13-station m=3 tree under 20% loss on the root plus an interior crash.
// Lost chunks must converge through chunk-level repair (stations resume
// from their partial-assembly bitmaps, re-pulling only missing indices),
// same-seed runs must be byte-identical, and the total chunk bytes on the
// wire must stay within two extra lecture copies of the ideal.

StationConfig chunk_drill_config() {
  StationConfig cfg = tight_config();
  cfg.chunk.chunk_bytes = 64 * 1024;
  cfg.chunk.window = 8;
  cfg.chunk.repair_batch = 16;
  return cfg;
}

DocManifest chunk_drill_lecture(StationId home) {
  DocManifest doc;
  doc.doc_key = "http://mmu.edu/CS502/chunked-lecture";
  doc.structure_bytes = 5000;
  doc.home = home;
  for (int i = 0; i < 2; ++i) {
    BlobRef b;
    b.digest = digest128("chunk drill blob " + std::to_string(i));
    b.size = 1 << 20;  // 16 chunks each at 64 KB
    b.type = blob::MediaType::video;
    doc.blobs.push_back(b);
  }
  return doc;
}

struct ChunkDrillResult {
  std::string journal;
  int rounds = 0;
  bool converged = false;
  std::uint64_t chunk_bytes_total = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t repair_served = 0;
};

ChunkDrillResult run_chunk_drill(std::uint64_t seed) {
  Cluster c(seed, 13, 3, chunk_drill_config());
  DocManifest doc = chunk_drill_lecture(c.ids[0]);
  c.stores[0]->put_instance(doc, /*ephemeral=*/false).expect("instructor copy");

  std::vector<StationNode*> audience;
  for (std::size_t i = 1; i < c.nodes.size(); ++i) audience.push_back(c.nodes[i].get());
  LectureSession lecture(LectureId{1}, doc, *c.nodes[0], audience);

  net::FaultPlan plan;
  plan.loss_bursts.push_back({c.ids[0], 0.2, SimTime::millis(1), SimTime::seconds(20)});
  plan.crashes.push_back({c.ids[1], SimTime::millis(2), SimTime::zero()});
  c.net.inject(plan).expect("inject");

  EXPECT_TRUE(lecture.begin().is_ok());
  c.net.run();

  auto online_converged = [&] {
    for (std::size_t i = 1; i < c.nodes.size(); ++i) {
      if (!c.nodes[i]->online()) continue;
      if (!c.stores[i]->has_materialized(doc.doc_key)) return false;
    }
    return true;
  };
  ChunkDrillResult out;
  while (!online_converged() && out.rounds < 60) {
    EXPECT_TRUE(lecture.repair().is_ok());
    c.net.run();
    ++out.rounds;
  }
  out.converged = online_converged();

  std::ostringstream journal;
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    const NodeStats& st = c.nodes[i]->stats();
    out.chunk_bytes_total += st.chunk_bytes_sent;
    out.retransmits += st.chunk_retransmits;
    out.repair_served += st.chunk_repair_served;
    journal << "station=" << i << " sent=" << st.chunks_sent
            << " recv=" << st.chunks_received << " dup=" << st.chunk_duplicates
            << " rej=" << st.chunk_rejects << " rtx=" << st.chunk_retransmits
            << " repair=" << st.chunk_repair_served
            << " bytes=" << st.chunk_bytes_sent
            << " mat=" << c.stores[i]->has_materialized(doc.doc_key) << "\n";
  }
  journal << "rounds=" << out.rounds << " t=" << c.net.now().as_micros() << "\n";
  out.journal = journal.str();

  // Lifecycle accounting still holds under the chunked protocol.
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    const net::RpcStats st = c.nodes[i]->rpc_stats();
    EXPECT_EQ(c.nodes[i]->pending_rpcs(), 0u) << "station " << i;
    EXPECT_EQ(st.started, st.completed + st.exhausted) << "station " << i;
  }
  return out;
}

TEST(FaultAcceptance, ChunkedPushConvergesViaChunkRepairUnderLossAndCrash) {
  ChunkDrillResult r = run_chunk_drill(/*seed=*/2025);
  EXPECT_TRUE(r.converged) << "chunk repair did not converge in " << r.rounds
                           << " rounds";
  // The faults actually bit: chunks were retransmitted and chunk-level
  // repair served missing indices (not whole blobs).
  EXPECT_GE(r.retransmits, 1u);
  EXPECT_GE(r.repair_served, 1u);
  // Waste bound: 11 live receivers each need one lecture's blob bytes; the
  // crashed station plus all loss/retransmit/repair overhead must cost less
  // than two additional copies.
  const DocManifest doc = chunk_drill_lecture(StationId{1});
  const std::uint64_t ideal = 11 * doc.blob_bytes();
  EXPECT_LT(r.chunk_bytes_total, ideal + 2 * doc.blob_bytes())
      << "total=" << r.chunk_bytes_total << " ideal=" << ideal;
}

TEST(FaultAcceptance, ChunkedDrillSameSeedRunsAreByteIdentical) {
  ChunkDrillResult a = run_chunk_drill(/*seed=*/77);
  ChunkDrillResult b = run_chunk_drill(/*seed=*/77);
  EXPECT_TRUE(a.converged);
  EXPECT_FALSE(a.journal.empty());
  EXPECT_EQ(a.journal, b.journal);
}

// --- swarm push under faults -------------------------------------------------
//
// The swarm acceptance drill: a 10 MB lecture striped over two rotated
// trees across 63 campus stations, with an interior station crashing
// mid-push. The orphaned subtree loses one stripe's feed; gossip exposes
// the hole and the rarest-first pull path must refill it from peers with
// spare uplink, costing less than 10% extra makespan over a clean run.

constexpr net::StationLink kSwarmCampus{10e6, 10e6, SimTime::millis(15), 0.0};

struct SwarmDrillCluster {
  SwarmDrillCluster(std::size_t n, std::uint64_t seed) : net(seed) {
    StationConfig cfg;
    cfg.swarm.enabled = true;
    cfg.swarm.trees = 2;
    net.reserve_stations(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(net.add_station(kSwarmCampus));
      blobs.push_back(std::make_unique<blob::BlobStore>());
      stores.push_back(std::make_unique<ObjectStore>(*blobs.back()));
      nodes.push_back(std::make_unique<StationNode>(net, ids.back(), *stores.back(), cfg));
      nodes.back()->bind();
    }
    auto shared = std::make_shared<const std::vector<StationId>>(ids);
    for (auto& node : nodes) node->set_tree(shared, 2);
  }

  net::SimNetwork net;
  std::vector<StationId> ids;
  std::vector<std::unique_ptr<blob::BlobStore>> blobs;
  std::vector<std::unique_ptr<ObjectStore>> stores;
  std::vector<std::unique_ptr<StationNode>> nodes;
};

struct SwarmDrillResult {
  double makespan = 0;  // max last_delivery over online stations
  std::string journal;
  std::uint64_t served = 0;      // swarm chunks served to pull requests
  std::uint64_t duplicates = 0;  // duplicate chunk receives
  bool all_online_materialized = true;
};

SwarmDrillResult run_swarm_drill(std::uint64_t seed, bool crash_interior) {
  SwarmDrillCluster c(63, seed);
  DocManifest doc;
  doc.doc_key = "http://mmu.edu/CS503/swarm-fault-drill";
  doc.structure_bytes = 5000;
  doc.home = c.ids[0];
  BlobRef video;
  video.digest = digest128("swarm fault drill video");
  video.size = 10 << 20;
  video.type = blob::MediaType::video;
  doc.blobs.push_back(video);
  c.stores[0]->put_instance(doc, /*ephemeral=*/false).expect("instructor copy");

  if (crash_interior) {
    // Station index 8 holds tree position 9 — interior in stripe tree 0
    // with a multi-station subtree below it. It dies two seconds into the
    // push (roughly a quarter of the stripe delivered) and never returns.
    net::FaultPlan plan;
    plan.crashes.push_back({c.ids[8], SimTime::seconds(2), SimTime::zero()});
    c.net.inject(plan).expect("inject");
  }

  EXPECT_TRUE(c.nodes[0]->broadcast_push(doc).is_ok());
  c.net.run();

  SwarmDrillResult out;
  std::ostringstream journal;
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    const NodeStats& st = c.nodes[i]->stats();
    out.served += st.swarm_chunks_served;
    out.duplicates += st.chunk_duplicate_rx;
    if (!c.nodes[i]->online()) continue;
    if (!c.stores[i]->has_materialized(doc.doc_key)) {
      out.all_online_materialized = false;
    }
    out.makespan = std::max(out.makespan, c.nodes[i]->last_delivery().as_seconds());
    journal << "station=" << i << " recv=" << st.chunks_received
            << " sent=" << st.chunks_sent << " dup=" << st.chunk_duplicate_rx
            << " served=" << st.swarm_chunks_served
            << " reqs=" << st.swarm_reqs_sent
            << " t=" << c.nodes[i]->last_delivery().as_micros() << "\n";
  }
  journal << "end=" << c.net.now().as_micros() << "\n";
  out.journal = journal.str();
  return out;
}

TEST(SwarmFaultDrill, InteriorCrashCostsUnderTenPercentExtraMakespan) {
  SwarmDrillResult clean = run_swarm_drill(/*seed=*/31415, /*crash_interior=*/false);
  SwarmDrillResult crashed = run_swarm_drill(/*seed=*/31415, /*crash_interior=*/true);

  ASSERT_TRUE(clean.all_online_materialized);
  ASSERT_TRUE(crashed.all_online_materialized)
      << "orphaned subtree failed to refill via pulls";
  // A clean run never needs the pull path; the crashed run must have used
  // it (the orphaned stripe subtree refills from gossip peers).
  EXPECT_EQ(clean.served, 0u);
  EXPECT_GT(crashed.served, 0u);
  EXPECT_LE(crashed.makespan, clean.makespan * 1.10)
      << "crash makespan " << crashed.makespan << "s vs clean "
      << clean.makespan << "s";
}

TEST(SwarmFaultDrill, CrashRunsWithTheSameSeedAreByteIdentical) {
  SwarmDrillResult a = run_swarm_drill(/*seed=*/2718, /*crash_interior=*/true);
  SwarmDrillResult b = run_swarm_drill(/*seed=*/2718, /*crash_interior=*/true);
  EXPECT_FALSE(a.journal.empty());
  EXPECT_EQ(a.journal, b.journal);
}

}  // namespace
}  // namespace wdoc::dist

// obs::SloEngine: window algebra over cumulative rings, burn-rate math,
// multi-window alert transitions (fire + clear), latency-threshold
// bucket rounding, availability objectives, and JSON rendering.
#include <gtest/gtest.h>

#include <string>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"

using namespace wdoc;
using namespace wdoc::obs;

namespace {

SloWindows tight_windows() {
  SloWindows w;
  w.eval_period_micros = 1'000;
  w.short_evals = 2;
  w.long_evals = 6;
  return w;
}

// Each test uses its own instrument names: the registry is process-global.
Histogram& fresh_hist(const std::string& name) {
  Histogram& h = MetricsRegistry::global().histogram(name);
  h.reset();
  return h;
}

TEST(SloEngine, LatencyObjectiveRoundsThresholdDownToBucketBoundary) {
  Histogram& h = fresh_hist("slo_test.round_hist");
  SloEngine eng(tight_windows());
  SloObjective o;
  o.name = "slo_test.round";
  o.target = 0.5;
  o.kind = SloObjective::Kind::latency;
  o.histogram = &h;
  o.threshold_micros = 5'000;  // between bucket bounds 4096 and 8192
  eng.add(std::move(o));

  // 4000us is within the rounded-down boundary (<= 4096): good.
  // 5000us would satisfy the declared threshold but not the conservative
  // rounded one (it lands in the 8192 bucket): bad.
  h.observe(4'000);
  h.observe(5'000);
  auto st = eng.evaluate(SimTime::micros(1'000));
  ASSERT_EQ(st.size(), 1u);
  EXPECT_DOUBLE_EQ(st[0].long_ratio, 0.5);
  EXPECT_EQ(st[0].window_total, 2u);
}

TEST(SloEngine, FastBurnAlertFiresOncePerEpisodeAndClears) {
  Histogram& h = fresh_hist("slo_test.burn_hist");
  auto& fast_counter = MetricsRegistry::global().counter(
      "obs.slo.alerts", {{"slo", "slo_test.burn"}, {"severity", "fast"}});
  const auto fast0 = fast_counter.value();
  SloEngine eng(tight_windows());
  SloObjective o;
  o.name = "slo_test.burn";
  o.target = 0.99;  // error budget 1%; fast-burn needs bad fraction >= 14.4%
  o.kind = SloObjective::Kind::latency;
  o.histogram = &h;
  o.threshold_micros = 1'000;
  eng.add(std::move(o));

  // Period 1: 50% bad -> burn 50 in every window.
  for (int i = 0; i < 10; ++i) h.observe(100);
  for (int i = 0; i < 10; ++i) h.observe(100'000);
  auto st = eng.evaluate(SimTime::micros(1'000));
  EXPECT_TRUE(st[0].fast_alert);
  EXPECT_GE(st[0].short_burn, 14.4);
  EXPECT_EQ(fast_counter.value(), fast0 + 1);

  // Period 2: still burning -> latched, no second count.
  for (int i = 0; i < 10; ++i) h.observe(100'000);
  st = eng.evaluate(SimTime::micros(2'000));
  EXPECT_TRUE(st[0].fast_alert);
  EXPECT_EQ(fast_counter.value(), fast0 + 1);

  // Healthy traffic long enough to flush every window: alert clears.
  for (int p = 3; p <= 12; ++p) {
    for (int i = 0; i < 100; ++i) h.observe(100);
    st = eng.evaluate(SimTime::micros(p * 1'000));
  }
  EXPECT_FALSE(st[0].fast_alert);
  EXPECT_EQ(fast_counter.value(), fast0 + 1);  // clear does not re-count

  // A fresh episode fires again.
  for (int i = 0; i < 500; ++i) h.observe(100'000);
  st = eng.evaluate(SimTime::micros(13'000));
  EXPECT_TRUE(st[0].fast_alert);
  EXPECT_EQ(fast_counter.value(), fast0 + 2);
}

TEST(SloEngine, AlertTransitionsLeaveFlightEvents) {
  Histogram& h = fresh_hist("slo_test.flight_hist");
  auto& rec = FlightRecorder::global();
  const std::uint64_t recorded0 = rec.recorded();
  SloEngine eng(tight_windows());
  SloObjective o;
  o.name = "slo_test.flight";
  o.target = 0.99;
  o.kind = SloObjective::Kind::latency;
  o.histogram = &h;
  o.threshold_micros = 1'000;
  eng.add(std::move(o));

  for (int i = 0; i < 10; ++i) h.observe(100'000);
  (void)eng.evaluate(SimTime::micros(1'000));

  bool found = false;
  for (const FlightEvent& ev : rec.events()) {
    if (ev.seq >= recorded0 && ev.kind == FlightKind::slo_burn &&
        ev.detail.find("slo_test.flight FIRING") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "expected a slo_burn flight event for the alert";
  EXPECT_STREQ(flight_kind_name(FlightKind::slo_burn), "slo_burn");
}

TEST(SloEngine, AvailabilityObjectiveUsesCounterRatio) {
  auto& reg = MetricsRegistry::global();
  auto& total = reg.counter("slo_test.avail_total");
  auto& bad = reg.counter("slo_test.avail_bad");
  total.reset();
  bad.reset();
  SloEngine eng(tight_windows());
  SloObjective o;
  o.name = "slo_test.avail";
  o.target = 0.999;
  o.kind = SloObjective::Kind::availability;
  o.total = &total;
  o.bad = &bad;
  eng.add(std::move(o));

  total.inc(1000);
  bad.inc(2);  // 0.2% bad -> burn 2, below both thresholds
  auto st = eng.evaluate(SimTime::micros(1'000));
  EXPECT_FALSE(st[0].fast_alert);
  EXPECT_FALSE(st[0].slow_alert);
  EXPECT_NEAR(st[0].long_burn, 2.0, 0.01);

  total.inc(1000);
  bad.inc(200);  // 20% bad this window -> fast burn
  st = eng.evaluate(SimTime::micros(2'000));
  EXPECT_TRUE(st[0].fast_alert);
}

TEST(SloEngine, EmptyWindowCountsAsMeetingTheObjective) {
  Histogram& h = fresh_hist("slo_test.idle_hist");
  SloEngine eng(tight_windows());
  SloObjective o;
  o.name = "slo_test.idle";
  o.target = 0.99;
  o.kind = SloObjective::Kind::latency;
  o.histogram = &h;
  o.threshold_micros = 1'000;
  eng.add(std::move(o));
  auto st = eng.evaluate(SimTime::micros(1'000));
  EXPECT_DOUBLE_EQ(st[0].short_ratio, 1.0);
  EXPECT_DOUBLE_EQ(st[0].long_ratio, 1.0);
  EXPECT_FALSE(st[0].fast_alert);
}

TEST(SloEngine, JsonIsStableAndListedInDumpAll) {
  Histogram& h = fresh_hist("slo_test.json_hist");
  SloEngine eng(tight_windows());
  SloObjective o;
  o.name = "slo_test.json";
  o.target = 0.99;
  o.kind = SloObjective::Kind::latency;
  o.histogram = &h;
  o.threshold_micros = 1'000;
  eng.add(std::move(o));
  (void)eng.evaluate(SimTime::micros(1'000));

  std::string a = eng.to_json();
  std::string b = eng.to_json();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"name\":\"slo_test.json\""), std::string::npos);
  EXPECT_NE(a.find("\"fast_burn\":14.4"), std::string::npos);
  EXPECT_NE(SloEngine::dump_all().find("slo_test.json"), std::string::npos);
}

}  // namespace
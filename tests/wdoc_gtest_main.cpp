// Shared gtest main for every wdoc test binary.
//
// Identical to GTest::gtest_main except that a failing test dumps the
// obs flight recorder to stderr, so the structured incident log (deadlocks,
// lock waits, watermark replications, migrations, repairs) from the failing
// run is part of its output. The recorder is cleared between tests so a
// dump only shows events from the test that failed.
#include <gtest/gtest.h>

#include "obs/flight_recorder.hpp"

namespace {

class FlightRecorderOnFailure : public testing::EmptyTestEventListener {
 public:
  void OnTestStart(const testing::TestInfo&) override {
    wdoc::obs::FlightRecorder::global().clear();
  }
  void OnTestEnd(const testing::TestInfo& info) override {
    if (info.result() != nullptr && info.result()->Failed()) {
      std::string banner = std::string("flight recorder — ") +
                           info.test_suite_name() + "." + info.name();
      wdoc::obs::FlightRecorder::global().dump_to_stderr(banner.c_str());
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  testing::InitGoogleTest(&argc, argv);
  testing::UnitTest::GetInstance()->listeners().Append(
      new FlightRecorderOnFailure);
  return RUN_ALL_TESTS();
}

// Shared gtest main for every wdoc test binary.
//
// Identical to GTest::gtest_main except that a failing test dumps the
// obs flight recorder to stderr, so the structured incident log (deadlocks,
// lock waits, watermark replications, migrations, repairs) from the failing
// run is part of its output. The recorder is cleared between tests so a
// dump only shows events from the test that failed.
//
// When WDOC_FAIL_ARTIFACT_DIR is set (CI does this), a failing test also
// writes durable failure artifacts there: a Perfetto trace of whatever the
// span tracer holds, and a /debug/slo-equivalent snapshot of every live
// SloEngine — so a red run can be debugged from the uploaded artifacts
// without reproducing it locally.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/flight_recorder.hpp"
#include "obs/slo.hpp"
#include "obs/trace_export.hpp"

namespace {

void write_text_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return;
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

class FlightRecorderOnFailure : public testing::EmptyTestEventListener {
 public:
  void OnTestStart(const testing::TestInfo&) override {
    wdoc::obs::FlightRecorder::global().clear();
  }
  void OnTestEnd(const testing::TestInfo& info) override {
    if (info.result() == nullptr || !info.result()->Failed()) return;
    const std::string name =
        std::string(info.test_suite_name()) + "." + info.name();
    wdoc::obs::FlightRecorder::global().dump_to_stderr(
        ("flight recorder — " + name).c_str());

    const char* dir = std::getenv("WDOC_FAIL_ARTIFACT_DIR");
    if (dir == nullptr || *dir == '\0') return;
    const std::string base = std::string(dir) + "/" + name;
    write_text_file(base + ".trace.json",
                    wdoc::obs::to_chrome_trace(
                        wdoc::obs::Tracer::global().spans(),
                        wdoc::obs::MetricsRegistry::global().snapshot()));
    write_text_file(base + ".slo.json", wdoc::obs::SloEngine::dump_all());
  }
};

}  // namespace

int main(int argc, char** argv) {
  testing::InitGoogleTest(&argc, argv);
  testing::UnitTest::GetInstance()->listeners().Append(
      new FlightRecorderOnFailure);
  return RUN_ALL_TESTS();
}

// Awareness tests: room membership, roster propagation, chat relay,
// heartbeat expiry — over the simulator and over real threads.
#include <gtest/gtest.h>

#include <atomic>

#include "core/awareness.hpp"
#include "net/sim_network.hpp"
#include "net/thread_transport.hpp"

namespace wdoc::core {
namespace {

class AwarenessFixture : public ::testing::Test {
 protected:
  AwarenessFixture() : net_(9) {
    host_id_ = net_.add_station();
    host_ = std::make_unique<AwarenessHost>(net_, host_id_);
    host_->bind();
  }

  AwarenessClient& add_client(const std::string& name, std::uint64_t user) {
    StationId id = net_.add_station();
    clients_.push_back(std::make_unique<AwarenessClient>(net_, id, host_id_,
                                                         UserId{user}, name));
    clients_.back()->bind();
    return *clients_.back();
  }

  net::SimNetwork net_;
  StationId host_id_;
  std::unique_ptr<AwarenessHost> host_;
  std::vector<std::unique_ptr<AwarenessClient>> clients_;
};

TEST_F(AwarenessFixture, JoinBuildsRosterEveryoneSees) {
  auto& shih = add_client("shih", 1);
  auto& alice = add_client("alice", 100);
  ASSERT_TRUE(shih.join("cs101").is_ok());
  net_.run();
  ASSERT_TRUE(alice.join("cs101").is_ok());
  net_.run();

  EXPECT_EQ(host_->roster("cs101").size(), 2u);
  EXPECT_EQ(shih.known_roster("cs101"),
            (std::vector<std::string>{"shih", "alice"}));
  EXPECT_EQ(alice.known_roster("cs101"), shih.known_roster("cs101"));
  EXPECT_EQ(host_->room_count(), 1u);
}

TEST_F(AwarenessFixture, DuplicateJoinIsRefreshNotDuplicate) {
  auto& shih = add_client("shih", 1);
  ASSERT_TRUE(shih.join("cs101").is_ok());
  ASSERT_TRUE(shih.join("cs101").is_ok());
  net_.run();
  EXPECT_EQ(host_->roster("cs101").size(), 1u);
}

TEST_F(AwarenessFixture, ChatRelaysToOthersOnly) {
  auto& shih = add_client("shih", 1);
  auto& alice = add_client("alice", 100);
  auto& bob = add_client("bob", 101);
  for (auto* c : {&shih, &alice, &bob}) {
    ASSERT_TRUE(c->join("cs101").is_ok());
  }
  net_.run();

  std::vector<std::string> alice_saw, shih_saw;
  alice.set_chat_handler([&](const std::string&, const std::string& from,
                             const std::string& text) {
    alice_saw.push_back(from + ": " + text);
  });
  shih.set_chat_handler([&](const std::string&, const std::string& from,
                            const std::string& text) {
    shih_saw.push_back(from + ": " + text);
  });

  ASSERT_TRUE(shih.chat("cs101", "does everyone see lecture 3?").is_ok());
  net_.run();
  EXPECT_EQ(alice_saw, std::vector<std::string>{"shih: does everyone see lecture 3?"});
  EXPECT_TRUE(shih_saw.empty());  // no echo to the sender
  EXPECT_EQ(host_->chats_relayed(), 1u);
}

TEST_F(AwarenessFixture, NonMemberChatIgnored) {
  auto& shih = add_client("shih", 1);
  ASSERT_TRUE(shih.join("cs101").is_ok());
  net_.run();
  auto& lurker = add_client("lurker", 999);
  ASSERT_TRUE(lurker.chat("cs101", "hello?").is_ok());
  net_.run();
  EXPECT_EQ(host_->chats_relayed(), 0u);
}

TEST_F(AwarenessFixture, LeaveUpdatesRoster) {
  auto& shih = add_client("shih", 1);
  auto& alice = add_client("alice", 100);
  ASSERT_TRUE(shih.join("cs101").is_ok());
  ASSERT_TRUE(alice.join("cs101").is_ok());
  net_.run();
  ASSERT_TRUE(alice.leave("cs101").is_ok());
  net_.run();
  EXPECT_EQ(host_->roster("cs101").size(), 1u);
  EXPECT_EQ(shih.known_roster("cs101"), std::vector<std::string>{"shih"});
  // Last member leaving dissolves the room.
  ASSERT_TRUE(shih.leave("cs101").is_ok());
  net_.run();
  EXPECT_EQ(host_->room_count(), 0u);
}

TEST_F(AwarenessFixture, SweepExpiresSilentMembers) {
  auto& shih = add_client("shih", 1);
  auto& alice = add_client("alice", 100);
  ASSERT_TRUE(shih.join("cs101").is_ok());
  ASSERT_TRUE(alice.join("cs101").is_ok());
  net_.run();

  // Time passes; only shih heartbeats.
  net_.schedule_after(SimTime::seconds(30), [&] {
    (void)shih.heartbeat("cs101");
  });
  net_.run();
  net_.run_until(net_.now() + SimTime::seconds(40));

  std::size_t expired = host_->sweep(SimTime::seconds(45));
  EXPECT_EQ(expired, 1u);
  auto roster = host_->roster("cs101");
  ASSERT_EQ(roster.size(), 1u);
  EXPECT_EQ(roster[0].name, "shih");
}

TEST_F(AwarenessFixture, SweepWithFreshMembersExpiresNobody) {
  auto& shih = add_client("shih", 1);
  ASSERT_TRUE(shih.join("cs101").is_ok());
  net_.run();
  EXPECT_EQ(host_->sweep(SimTime::seconds(60)), 0u);
  EXPECT_EQ(host_->roster("cs101").size(), 1u);
}

TEST_F(AwarenessFixture, RoomsAreIndependent) {
  auto& shih = add_client("shih", 1);
  auto& alice = add_client("alice", 100);
  ASSERT_TRUE(shih.join("cs101").is_ok());
  ASSERT_TRUE(alice.join("cs102").is_ok());
  net_.run();
  EXPECT_EQ(host_->room_count(), 2u);
  int alice_msgs = 0;
  alice.set_chat_handler(
      [&](const std::string&, const std::string&, const std::string&) {
        ++alice_msgs;
      });
  ASSERT_TRUE(shih.chat("cs101", "cs101 only").is_ok());
  net_.run();
  EXPECT_EQ(alice_msgs, 0);
}

TEST(AwarenessLive, RunsOverRealThreads) {
  net::ThreadTransport transport;
  StationId host_id = transport.add_station([](const net::Message&) {});
  AwarenessHost host(transport, host_id);
  host.bind();

  StationId a_id = transport.add_station([](const net::Message&) {});
  StationId b_id = transport.add_station([](const net::Message&) {});
  AwarenessClient a(transport, a_id, host_id, UserId{1}, "shih");
  AwarenessClient b(transport, b_id, host_id, UserId{2}, "alice");
  a.bind();
  b.bind();

  std::atomic<int> b_received{0};
  b.set_chat_handler(
      [&](const std::string&, const std::string&, const std::string&) {
        b_received++;
      });
  ASSERT_TRUE(a.join("room").is_ok());
  ASSERT_TRUE(b.join("room").is_ok());
  ASSERT_TRUE(transport.quiesce());
  ASSERT_TRUE(a.chat("room", "live message").is_ok());
  ASSERT_TRUE(transport.quiesce());
  EXPECT_EQ(b_received.load(), 1);
  EXPECT_EQ(host.roster("room").size(), 2u);
  transport.shutdown();
}

}  // namespace
}  // namespace wdoc::core

// Heap table tests: CRUD, constraint enforcement, index maintenance, scans.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "storage/table.hpp"

namespace wdoc::storage {
namespace {

Schema script_like_schema() {
  Column name{"name", ValueType::text, false, false, false};
  Column author{"author", ValueType::text, true, false, true};
  Column version{"version", ValueType::integer, true, false, false};
  Column pct{"pct", ValueType::real, true, false, false};
  return Schema("scripts", {name, author, version, pct}, /*primary_key=*/"name");
}

TEST(Table, InsertAssignsMonotonicRowIds) {
  Table t(script_like_schema());
  auto a = t.insert({Value("s1"), Value("shih"), Value(1), Value(0.5)});
  auto b = t.insert({Value("s2"), Value("ma"), Value(1), Value(0.7)});
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_LT(a.value(), b.value());
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, GetReturnsRow) {
  Table t(script_like_schema());
  RowId id = t.insert({Value("s1"), Value("shih"), Value(3), Value(1.0)}).value();
  const auto* row = t.get(id);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[0].as_text(), "s1");
  EXPECT_EQ((*row)[2].as_int(), 3);
  EXPECT_EQ(t.get(RowId{999}), nullptr);
}

TEST(Table, RejectsArityMismatch) {
  Table t(script_like_schema());
  auto r = t.insert({Value("s1"), Value("shih")});
  EXPECT_EQ(r.code(), Errc::invalid_argument);
}

TEST(Table, RejectsTypeMismatch) {
  Table t(script_like_schema());
  auto r = t.insert({Value("s1"), Value("shih"), Value("not-an-int"), Value(0.0)});
  EXPECT_EQ(r.code(), Errc::invalid_argument);
}

TEST(Table, RejectsNullInNonNullableColumn) {
  Table t(script_like_schema());
  auto r = t.insert({Value::null(), Value("shih"), Value(1), Value(0.0)});
  EXPECT_EQ(r.code(), Errc::constraint_violation);
}

TEST(Table, AllowsNullInNullableColumn) {
  Table t(script_like_schema());
  auto r = t.insert({Value("s1"), Value::null(), Value::null(), Value::null()});
  EXPECT_TRUE(r.is_ok());
}

TEST(Table, EnforcesUniquePrimaryKey) {
  Table t(script_like_schema());
  ASSERT_TRUE(t.insert({Value("s1"), Value("a"), Value(1), Value(0.0)}).is_ok());
  auto dup = t.insert({Value("s1"), Value("b"), Value(2), Value(0.0)});
  EXPECT_EQ(dup.code(), Errc::constraint_violation);
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, NullsDoNotCollideOnUnique) {
  Schema s("t", {Column{"k", ValueType::text, true, true, false},
                 Column{"v", ValueType::integer, true, false, false}});
  Table t(s);
  EXPECT_TRUE(t.insert({Value::null(), Value(1)}).is_ok());
  EXPECT_TRUE(t.insert({Value::null(), Value(2)}).is_ok());
}

TEST(Table, UpdateRevalidatesAndReindexes) {
  Table t(script_like_schema());
  RowId id = t.insert({Value("s1"), Value("shih"), Value(1), Value(0.0)}).value();
  ASSERT_TRUE(t.insert({Value("s2"), Value("ma"), Value(1), Value(0.0)}).is_ok());
  // Renaming to an existing key must fail.
  EXPECT_EQ(t.update(id, {Value("s2"), Value("x"), Value(1), Value(0.0)}).code(),
            Errc::constraint_violation);
  // Legit update succeeds and the old key disappears from the index.
  ASSERT_TRUE(t.update(id, {Value("s9"), Value("x"), Value(2), Value(0.5)}).is_ok());
  EXPECT_FALSE(t.find_unique("name", Value("s1")).has_value());
  EXPECT_TRUE(t.find_unique("name", Value("s9")).has_value());
}

TEST(Table, UpdateSameKeyOnSameRowIsAllowed) {
  Table t(script_like_schema());
  RowId id = t.insert({Value("s1"), Value("shih"), Value(1), Value(0.0)}).value();
  EXPECT_TRUE(t.update(id, {Value("s1"), Value("shih"), Value(2), Value(0.9)}).is_ok());
}

TEST(Table, UpdateColumn) {
  Table t(script_like_schema());
  RowId id = t.insert({Value("s1"), Value("shih"), Value(1), Value(0.0)}).value();
  ASSERT_TRUE(t.update_column(id, "pct", Value(55.0)).is_ok());
  EXPECT_DOUBLE_EQ(t.cell(id, "pct").as_real(), 55.0);
  EXPECT_EQ(t.update_column(id, "nope", Value(1)).code(), Errc::invalid_argument);
}

TEST(Table, EraseRemovesRowAndIndexEntries) {
  Table t(script_like_schema());
  RowId id = t.insert({Value("s1"), Value("shih"), Value(1), Value(0.0)}).value();
  ASSERT_TRUE(t.erase(id).is_ok());
  EXPECT_EQ(t.row_count(), 0u);
  EXPECT_EQ(t.get(id), nullptr);
  EXPECT_TRUE(t.find_equal("name", Value("s1")).empty());
  EXPECT_EQ(t.erase(id).code(), Errc::not_found);
}

TEST(Table, FindEqualUsesSecondaryIndex) {
  Table t(script_like_schema());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(t.insert({Value("s" + std::to_string(i)),
                          Value(i % 2 == 0 ? "shih" : "ma"), Value(1), Value(0.0)})
                    .is_ok());
  }
  EXPECT_TRUE(t.has_index("author"));
  EXPECT_EQ(t.find_equal("author", Value("shih")).size(), 10u);
  EXPECT_EQ(t.find_equal("author", Value("nobody")).size(), 0u);
}

TEST(Table, FindEqualFallsBackToScanForUnindexedColumn) {
  Table t(script_like_schema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.insert({Value("s" + std::to_string(i)), Value("a"),
                          Value(i % 3), Value(0.0)})
                    .is_ok());
  }
  EXPECT_FALSE(t.has_index("version"));
  EXPECT_EQ(t.find_equal("version", Value(0)).size(), 4u);
}

TEST(Table, ScanRangeOrderedOnIndexedColumn) {
  Table t(script_like_schema());
  for (int i = 9; i >= 0; --i) {
    ASSERT_TRUE(t.insert({Value("s" + std::to_string(i)),
                          Value("auth" + std::to_string(i)), Value(1), Value(0.0)})
                    .is_ok());
  }
  Value lo("auth3"), hi("auth6");
  std::vector<std::string> seen;
  t.scan_range("author", &lo, &hi, [&](RowId, const std::vector<Value>& row) {
    seen.push_back(row[1].as_text());
    return true;
  });
  EXPECT_EQ(seen, (std::vector<std::string>{"auth3", "auth4", "auth5", "auth6"}));
}

TEST(Table, ScanRangeOnUnindexedColumnStillSorted) {
  Table t(script_like_schema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.insert({Value("s" + std::to_string(i)), Value("a"),
                          Value(9 - i), Value(0.0)})
                    .is_ok());
  }
  Value lo(2), hi(5);
  std::vector<std::int64_t> versions;
  t.scan_range("version", &lo, &hi, [&](RowId, const std::vector<Value>& row) {
    versions.push_back(row[2].as_int());
    return true;
  });
  EXPECT_EQ(versions, (std::vector<std::int64_t>{2, 3, 4, 5}));
}

TEST(Table, CreateIndexBackfills) {
  Table t(script_like_schema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.insert({Value("s" + std::to_string(i)), Value("a"),
                          Value(i % 2), Value(0.0)})
                    .is_ok());
  }
  ASSERT_TRUE(t.create_index("version").is_ok());
  EXPECT_TRUE(t.has_index("version"));
  EXPECT_EQ(t.find_equal("version", Value(1)).size(), 5u);
  EXPECT_EQ(t.create_index("version").code(), Errc::already_exists);
}

TEST(Table, RestoreBringsBackRowUnderOldId) {
  Table t(script_like_schema());
  RowId id = t.insert({Value("s1"), Value("a"), Value(1), Value(0.0)}).value();
  std::vector<Value> saved = *t.get(id);
  ASSERT_TRUE(t.erase(id).is_ok());
  ASSERT_TRUE(t.restore(id, saved).is_ok());
  EXPECT_EQ(t.get(id)->at(0).as_text(), "s1");
  // Fresh inserts never collide with restored ids.
  RowId next = t.insert({Value("s2"), Value("a"), Value(1), Value(0.0)}).value();
  EXPECT_GT(next, id);
  // Restoring over a live row fails.
  EXPECT_EQ(t.restore(id, saved).code(), Errc::already_exists);
}

TEST(Table, PayloadBytesTracksContent) {
  Table t(script_like_schema());
  EXPECT_EQ(t.payload_bytes(), 0u);
  RowId id =
      t.insert({Value("s1"), Value(std::string(1000, 'x')), Value(1), Value(0.0)})
          .value();
  std::size_t with_row = t.payload_bytes();
  EXPECT_GT(with_row, 1000u);
  ASSERT_TRUE(t.erase(id).is_ok());
  EXPECT_EQ(t.payload_bytes(), 0u);
}

TEST(Table, DeterministicScanOrderByRowId) {
  Table t(script_like_schema());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(t.insert({Value("s" + std::to_string(i)), Value("a"), Value(i),
                          Value(0.0)})
                    .is_ok());
  }
  RowId prev{0};
  t.scan([&](RowId id, const std::vector<Value>&) {
    EXPECT_GT(id, prev);
    prev = id;
    return true;
  });
}

}  // namespace
}  // namespace wdoc::storage

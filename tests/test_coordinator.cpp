// Coordinator (class administrator) tests: broadcast vector bookkeeping,
// per-media adaptive m, tree configuration, course registration.
#include <gtest/gtest.h>

#include "dist/coordinator.hpp"
#include "net/sim_network.hpp"

namespace wdoc::dist {
namespace {

TEST(Coordinator, JoinOrderDefinesPositions) {
  Coordinator coord;
  coord.register_station(StationId{10});
  coord.register_station(StationId{20});
  coord.register_station(StationId{30});
  coord.register_station(StationId{20});  // duplicate join ignored
  EXPECT_EQ(coord.station_count(), 3u);
  EXPECT_EQ(coord.position_of(StationId{10}), 1u);
  EXPECT_EQ(coord.position_of(StationId{30}), 3u);
  EXPECT_EQ(coord.position_of(StationId{99}), std::nullopt);
  EXPECT_EQ(coord.broadcast_vector(),
            (std::vector<StationId>{StationId{10}, StationId{20}, StationId{30}}));
}

TEST(Coordinator, DefaultMIsConservative) {
  Coordinator coord;
  EXPECT_EQ(coord.m_for(blob::MediaType::video), 2u);
}

TEST(Coordinator, SetMOverrides) {
  Coordinator coord;
  coord.set_m(blob::MediaType::midi, 8);
  EXPECT_EQ(coord.m_for(blob::MediaType::midi), 8u);
  EXPECT_EQ(coord.m_for(blob::MediaType::video), 2u);
}

TEST(Coordinator, AdaptPicksSmallerFanoutForHeavierMedia) {
  Coordinator coord;
  for (std::uint64_t i = 1; i <= 500; ++i) coord.register_station(StationId{i});
  coord.adapt(/*uplink_bps=*/10e6, /*latency_s=*/0.05);
  // Video (10 MB) should broadcast through a narrower tree than MIDI (12 KB).
  EXPECT_LE(coord.m_for(blob::MediaType::video), coord.m_for(blob::MediaType::midi));
  EXPECT_GE(coord.m_for(blob::MediaType::midi), 2u);
}

TEST(Coordinator, ConfigureTreePropagatesToNodes) {
  net::SimNetwork net;
  Coordinator coord;
  std::vector<std::unique_ptr<blob::BlobStore>> blobs;
  std::vector<std::unique_ptr<ObjectStore>> stores;
  std::vector<std::unique_ptr<StationNode>> nodes;
  std::vector<StationNode*> node_ptrs;
  for (int i = 0; i < 5; ++i) {
    StationId id = net.add_station();
    coord.register_station(id);
    blobs.push_back(std::make_unique<blob::BlobStore>());
    stores.push_back(std::make_unique<ObjectStore>(*blobs.back()));
    nodes.push_back(std::make_unique<StationNode>(net, id, *stores.back()));
    nodes.back()->bind();
    node_ptrs.push_back(nodes.back().get());
  }
  coord.set_m(blob::MediaType::video, 4);
  coord.configure_tree(node_ptrs, blob::MediaType::video);
  EXPECT_EQ(nodes[0]->position(), 1u);
  EXPECT_EQ(nodes[4]->position(), 5u);
  // With m=4, station at position 5 is a child of the root.
  EXPECT_EQ(nodes[4]->parent_station(), coord.broadcast_vector()[0]);
}

TEST(Coordinator, CourseRegistrationBookkeeping) {
  Coordinator coord;
  coord.register_station(StationId{1});
  coord.register_station(StationId{2});

  CourseRegistration reg;
  reg.course = "CS101";
  reg.station = StationId{1};
  reg.student = UserId{7};
  ASSERT_TRUE(coord.register_course(reg).is_ok());
  EXPECT_EQ(coord.register_course(reg).code(), Errc::already_exists);

  CourseRegistration reg2 = reg;
  reg2.student = UserId{8};
  reg2.station = StationId{2};
  ASSERT_TRUE(coord.register_course(reg2).is_ok());

  CourseRegistration unknown_station = reg;
  unknown_station.student = UserId{9};
  unknown_station.station = StationId{99};
  EXPECT_EQ(coord.register_course(unknown_station).code(), Errc::not_found);

  EXPECT_EQ(coord.registrations_of("CS101").size(), 2u);
  EXPECT_TRUE(coord.registrations_of("CS999").empty());
  auto stations = coord.stations_of_course("CS101");
  EXPECT_EQ(stations.size(), 2u);

  // Same student, different course is fine.
  CourseRegistration other = reg;
  other.course = "CS102";
  EXPECT_TRUE(coord.register_course(other).is_ok());
}

TEST(Coordinator, StationsOfCourseDeduplicates) {
  Coordinator coord;
  coord.register_station(StationId{1});
  for (std::uint64_t s = 1; s <= 3; ++s) {
    CourseRegistration reg;
    reg.course = "CS101";
    reg.station = StationId{1};
    reg.student = UserId{s};
    ASSERT_TRUE(coord.register_course(reg).is_ok());
  }
  EXPECT_EQ(coord.stations_of_course("CS101").size(), 1u);
}

}  // namespace
}  // namespace wdoc::dist

// Randomized end-to-end property test: a whole simulated semester with a
// random course corpus, random lecture schedule, lossy links, pulls, and
// library traffic — checking cross-cutting invariants after every phase:
//
//   I1  every lecture ends fully distributed (push + repair converge);
//   I2  after migration, student disk returns to zero while reference
//       records persist;
//   I3  BlobStore accounting is consistent at every station
//       (logical >= stored, stored == sum of live entry sizes);
//   I4  the library ledger balances (open loans == check-outs - check-ins);
//   I5  the instructor's persistent data is never disturbed;
//   I6  fetches of distributed documents never fail.
#include <gtest/gtest.h>

#include "dist/lecture.hpp"
#include "library/virtual_library.hpp"
#include "net/sim_network.hpp"
#include "workload/corpus.hpp"

namespace wdoc {
namespace {

struct E2eParam {
  std::uint64_t seed;
  std::size_t stations;
  std::size_t courses;
  double loss;
  std::uint64_t m;
};

class SemesterProperty : public ::testing::TestWithParam<E2eParam> {};

TEST_P(SemesterProperty, InvariantsHoldThroughTheSemester) {
  const E2eParam p = GetParam();
  Rng rng(p.seed);

  net::SimNetwork net(p.seed);
  net::StationLink link;
  link.loss_rate = p.loss;

  struct Station {
    StationId id;
    std::unique_ptr<blob::BlobStore> blobs;
    std::unique_ptr<dist::ObjectStore> store;
    std::unique_ptr<dist::StationNode> node;
  };
  std::vector<Station> stations;
  std::vector<StationId> vec;
  for (std::size_t i = 0; i < p.stations; ++i) {
    Station s;
    s.id = net.add_station(link);
    s.blobs = std::make_unique<blob::BlobStore>();
    s.store = std::make_unique<dist::ObjectStore>(*s.blobs);
    s.node = std::make_unique<dist::StationNode>(net, s.id, *s.store);
    s.node->bind();
    vec.push_back(s.id);
    stations.push_back(std::move(s));
  }
  for (auto& s : stations) s.node->set_tree(vec, p.m);

  // Instructor-side corpus (repository on station 0's conceptual database).
  auto db = storage::Database::in_memory();
  blob::BlobStore instructor_blobs;
  docmodel::Repository repo(*db, instructor_blobs);
  docmodel::install_schemas(*db).expect("schemas");
  workload::CorpusConfig cfg;
  cfg.courses = p.courses;
  cfg.impls_per_course = 1;
  cfg.seed = p.seed;
  auto corpus = workload::generate_corpus(repo, cfg, stations[0].id).expect("corpus");
  auto manifests = corpus.all_manifests();

  wdoc::library::VirtualLibrary lib;
  for (const auto& course : corpus.courses) {
    wdoc::library::LibraryEntry entry;
    entry.course_number = course.course_number;
    entry.title = course.script_name;
    entry.instructor = course.instructor;
    entry.script_name = course.script_name;
    entry.starting_url = course.implementations[0].doc_key;
    lib.add_entry(entry).expect("entry");
  }

  std::vector<dist::StationNode*> audience;
  for (std::size_t i = 1; i < stations.size(); ++i) {
    audience.push_back(stations[i].node.get());
  }

  std::int64_t clock = 0;
  std::size_t open_loans = 0;
  std::size_t checkouts_total = 0;

  for (std::size_t week = 0; week < manifests.size(); ++week) {
    const auto& manifest = manifests[week % manifests.size()];
    ASSERT_TRUE(stations[0].store->doc(manifest.doc_key) != nullptr ||
                stations[0].store->put_instance(manifest, false).is_ok());

    // Some students check the course out before class.
    const auto& course = corpus.courses[week % corpus.courses.size()];
    for (std::size_t s = 0; s < 3; ++s) {
      UserId student{100 + rng.uniform(50)};
      clock += 10;
      Status st = lib.check_out(course.course_number, student, clock);
      if (st.is_ok()) {
        ++open_loans;
        ++checkouts_total;
      } else {
        ASSERT_EQ(st.code(), Errc::already_exists);
      }
    }

    // I1: lecture distributes fully, even over loss.
    dist::LectureSession lecture(LectureId{week + 1}, manifest, *stations[0].node,
                                 audience);
    ASSERT_TRUE(lecture.begin().is_ok());
    net.run();
    int rounds = 0;
    while (!lecture.fully_distributed() && rounds < 60) {
      ASSERT_TRUE(lecture.repair().is_ok());
      net.run();
      ++rounds;
    }
    ASSERT_TRUE(lecture.fully_distributed())
        << "week " << week << " never converged (seed " << p.seed << ")";

    // I6: a random student's fetch of the live lecture resolves locally.
    std::size_t reader = 1 + rng.uniform(stations.size() - 1);
    bool fetched = false;
    ASSERT_TRUE(stations[reader]
                    .node
                    ->fetch(manifest.doc_key,
                            [&](Result<dist::DocManifest> r, SimTime) {
                              fetched = r.is_ok();
                            })
                    .is_ok());
    net.run();
    ASSERT_TRUE(fetched);

    (void)lecture.end();

    // I2: student disk empty, references retained.
    for (std::size_t i = 1; i < stations.size(); ++i) {
      ASSERT_EQ(stations[i].store->disk_bytes(), 0u)
          << "station " << i << " week " << week;
      const dist::StoredDoc* d = stations[i].store->doc(manifest.doc_key);
      ASSERT_NE(d, nullptr);
      EXPECT_EQ(d->form, dist::ObjectForm::reference);
    }
    // I3: blob accounting — after migration every student reference was
    // released (logical bytes zero; stored bytes linger only as
    // gc-reclaimable buffers), while the instructor's logical bytes cover
    // its persistent instances.
    for (std::size_t i = 1; i < stations.size(); ++i) {
      EXPECT_EQ(stations[i].blobs->logical_bytes(), 0u) << "station " << i;
    }
    EXPECT_GE(stations[0].blobs->logical_bytes(),
              stations[0].blobs->stored_bytes());
    // I5: instructor keeps every lecture so far.
    for (std::size_t w = 0; w <= week; ++w) {
      EXPECT_TRUE(stations[0].store->has_materialized(manifests[w].doc_key));
    }

    // Some students return the course.
    for (UserId holder : lib.holders_of(course.course_number)) {
      if (rng.bernoulli(0.5)) {
        clock += 10;
        ASSERT_TRUE(lib.check_in(course.course_number, holder, clock).is_ok());
        --open_loans;
      }
    }
    // I4: ledger balances.
    std::size_t open_now = 0;
    for (const auto& c : corpus.courses) {
      open_now += lib.holders_of(c.course_number).size();
    }
    ASSERT_EQ(open_now, open_loans);
  }

  // Semester-end: every station's buffer space is reclaimable to zero.
  for (std::size_t i = 1; i < stations.size(); ++i) {
    (void)stations[i].blobs->gc();
    EXPECT_EQ(stations[i].blobs->stored_bytes(), 0u);
  }
  EXPECT_GT(checkouts_total, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SemesterProperty,
    ::testing::Values(E2eParam{1, 10, 4, 0.0, 2}, E2eParam{2, 16, 6, 0.15, 3},
                      E2eParam{3, 25, 5, 0.30, 2}, E2eParam{4, 8, 3, 0.10, 4},
                      E2eParam{5, 31, 8, 0.20, 3}),
    [](const ::testing::TestParamInfo<E2eParam>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.stations) + "_loss" +
             std::to_string(static_cast<int>(info.param.loss * 100));
    });

}  // namespace
}  // namespace wdoc

// Tests for the statistics helpers and the query planner's explain().
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "storage/query.hpp"

namespace wdoc {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-9);  // classic textbook set
}

TEST(Summary, SingleSample) {
  Summary s;
  s.add(-3.5);
  EXPECT_DOUBLE_EQ(s.mean(), -3.5);
  EXPECT_DOUBLE_EQ(s.min(), -3.5);
  EXPECT_DOUBLE_EQ(s.max(), -3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Percentiles, NearestRank) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(p.p50(), 50.0);
  EXPECT_DOUBLE_EQ(p.p90(), 90.0);
  EXPECT_DOUBLE_EQ(p.p99(), 99.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
}

TEST(Percentiles, UnsortedInsertions) {
  Percentiles p;
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(rng.uniform01());
  for (double v : values) p.add(v);
  std::sort(values.begin(), values.end());
  EXPECT_DOUBLE_EQ(p.p50(), values[499]);
  // Adding after a quantile query re-sorts transparently.
  p.add(2.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 2.0);
}

TEST(Percentiles, EmptyIsZero) {
  Percentiles p;
  EXPECT_DOUBLE_EQ(p.p99(), 0.0);
}

TEST(Percentiles, ExactBelowReservoirCap) {
  // Below the cap the reservoir never kicks in: behaviour is identical to
  // the old exact sampler.
  Percentiles p(/*max_samples=*/1000);
  for (int i = 1000; i >= 1; --i) p.add(static_cast<double>(i));
  EXPECT_EQ(p.count(), 1000u);
  EXPECT_EQ(p.retained(), 1000u);
  EXPECT_DOUBLE_EQ(p.p50(), 500.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 1000.0);
}

TEST(Percentiles, ReservoirCapsMemoryAndStaysRepresentative) {
  constexpr std::size_t kCap = 512;
  Percentiles p(kCap);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) p.add(static_cast<double>(i));
  // Memory is bounded by the cap while count() tracks everything seen.
  EXPECT_EQ(p.retained(), kCap);
  EXPECT_EQ(p.count(), static_cast<std::size_t>(kN));
  EXPECT_EQ(p.max_samples(), kCap);
  // A uniform subsample of U[0, kN) keeps quantiles roughly in place:
  // with 512 samples the p50 standard error is ~2.2% of the range.
  EXPECT_NEAR(p.p50(), kN / 2.0, 0.15 * kN);
  EXPECT_NEAR(p.p90(), 0.9 * kN, 0.15 * kN);
  // Every retained value really was an input.
  EXPECT_GE(p.quantile(0.0), 0.0);
  EXPECT_LT(p.quantile(1.0), static_cast<double>(kN));
}

TEST(Percentiles, ReservoirIsDeterministic) {
  Percentiles a(64), b(64);
  for (int i = 0; i < 10000; ++i) {
    a.add(static_cast<double>(i % 997));
    b.add(static_cast<double>(i % 997));
  }
  EXPECT_DOUBLE_EQ(a.p50(), b.p50());
  EXPECT_DOUBLE_EQ(a.p99(), b.p99());
}

TEST(Percentiles, DefaultCapIsLarge) {
  Percentiles p;
  EXPECT_EQ(p.max_samples(), Percentiles::kDefaultMaxSamples);
}

// --- Query::explain ----------------------------------------------------------

TEST(Explain, ReportsAccessPath) {
  using namespace storage;
  Table t(Schema("t",
                 {Column{"k", ValueType::text, false, false, false},
                  Column{"a", ValueType::integer, true, false, true},
                  Column{"b", ValueType::integer, true, false, false}},
                 "k"));
  // Unpredicated: full scan.
  EXPECT_FALSE(Query(t).explain().index_driven);
  EXPECT_EQ(Query(t).explain().to_string(), "full scan");

  // Indexed equality drives.
  QueryPlan plan = Query(t).where_eq("a", Value(1)).where("b", CmpOp::gt, Value(0))
                       .explain();
  EXPECT_TRUE(plan.index_driven);
  EXPECT_EQ(plan.driver_column, "a");
  EXPECT_EQ(plan.residual_predicates, 1u);

  // Unindexed-only predicates: full scan with filters.
  plan = Query(t).where("b", CmpOp::le, Value(5)).explain();
  EXPECT_FALSE(plan.index_driven);
  EXPECT_EQ(plan.residual_predicates, 1u);

  // Indexed range drives when no indexed equality exists; PK counts too.
  plan = Query(t).where("k", CmpOp::ge, Value("m")).explain();
  EXPECT_TRUE(plan.index_driven);
  EXPECT_EQ(plan.driver_op, CmpOp::ge);

  // ORDER BY shows up as a sort stage.
  plan = Query(t).order_by("b").explain();
  EXPECT_TRUE(plan.sorted_output);
  EXPECT_NE(plan.to_string().find("sort"), std::string::npos);
}

}  // namespace
}  // namespace wdoc

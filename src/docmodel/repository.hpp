// Typed repository over the relational mapping of the Web document
// hierarchy. This is the API the paper's tools (script editor, annotation
// daemon, QA tool, class administrator) program against.
//
// BLOB-layer payloads go to the station's BlobStore; the relational rows
// hold content digests only ("file descriptors point to multimedia files").
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "blob/blob_store.hpp"
#include "docmodel/annotation_ops.hpp"
#include "docmodel/schema_defs.hpp"

namespace wdoc::docmodel {

struct DatabaseInfo {
  std::string name;
  std::string keywords;
  std::string author;
  std::string version;
  std::int64_t created_at = 0;
};

struct ScriptInfo {
  std::string name;
  std::string keywords;
  std::string author;
  std::string version;
  std::int64_t created_at = 0;
  std::string description;
  // Digest of a verbal (multimedia) description, if the author recorded one.
  std::optional<std::string> verbal_description_digest;
  std::int64_t expected_completion = 0;
  double pct_complete = 0.0;
};

struct ImplementationInfo {
  std::string starting_url;
  std::string script_name;
  std::string author;
  std::int64_t created_at = 0;
  std::int64_t try_number = 1;
};

struct TestRecordInfo {
  std::string name;
  bool global_scope = false;
  Bytes traversal_messages;
  std::string script_name;
  std::string starting_url;
  std::int64_t created_at = 0;
};

struct BugReportInfo {
  std::string name;
  std::string qa_engineer;
  std::string test_procedure;
  std::string bug_description;
  std::string bad_urls;
  std::string missing_objects;
  std::string inconsistency;
  std::string redundant_objects;
  std::string test_record_name;
  std::int64_t created_at = 0;
};

struct AnnotationInfo {
  std::string name;
  std::string author;
  std::string version;
  std::int64_t created_at = 0;
  std::string script_name;
  std::string starting_url;
};

struct HtmlFileInfo {
  std::string path;
  std::string starting_url;
  Bytes content;
};

struct ProgramFileInfo {
  std::string path;
  std::string starting_url;
  std::string language;
  Bytes content;
};

struct ResourceInfo {
  std::string owner_kind;  // "script" | "implementation"
  std::string owner_name;
  std::string digest_hex;
  blob::MediaType media_type = blob::MediaType::other;
  std::uint64_t size = 0;
  std::optional<std::int64_t> playout_ms;
};

class Repository {
 public:
  Repository(storage::Database& db, blob::BlobStore& blobs) : db_(&db), blobs_(&blobs) {}

  [[nodiscard]] storage::Database& db() { return *db_; }
  [[nodiscard]] blob::BlobStore& blobs() { return *blobs_; }

  // --- database layer ----------------------------------------------------
  [[nodiscard]] Status create_database(const DatabaseInfo& info);
  [[nodiscard]] Result<DatabaseInfo> get_database(const std::string& name) const;
  [[nodiscard]] Status add_script_to_database(const std::string& database_name,
                                              const std::string& script_name);
  [[nodiscard]] Result<std::vector<std::string>> scripts_of_database(
      const std::string& database_name) const;
  [[nodiscard]] std::vector<std::string> list_databases() const;

  // --- scripts -------------------------------------------------------------
  [[nodiscard]] Status create_script(const ScriptInfo& info);
  [[nodiscard]] Result<ScriptInfo> get_script(const std::string& name) const;
  [[nodiscard]] Status set_script_progress(const std::string& name, double pct_complete);
  // "The author may have a verbal description which is stored in a
  // multimedia resource file" (§3): stores the recording in the BLOB layer
  // and links its digest into the script row.
  [[nodiscard]] Status set_verbal_description(const std::string& name, Bytes audio,
                                              blob::MediaType type =
                                                  blob::MediaType::audio);
  [[nodiscard]] Result<Bytes> get_verbal_description(const std::string& name) const;
  [[nodiscard]] Status delete_script(const std::string& name);  // cascades everywhere
  [[nodiscard]] std::vector<std::string> list_scripts() const;

  // --- implementations -----------------------------------------------------
  [[nodiscard]] Status create_implementation(const ImplementationInfo& info);
  [[nodiscard]] Result<ImplementationInfo> get_implementation(
      const std::string& starting_url) const;
  [[nodiscard]] Result<std::vector<ImplementationInfo>> implementations_of(
      const std::string& script_name) const;

  // --- files -----------------------------------------------------------
  [[nodiscard]] Status add_html_file(const HtmlFileInfo& file);
  [[nodiscard]] Status add_program_file(const ProgramFileInfo& file);
  [[nodiscard]] Result<std::vector<HtmlFileInfo>> html_files_of(
      const std::string& starting_url) const;
  [[nodiscard]] Result<std::vector<ProgramFileInfo>> program_files_of(
      const std::string& starting_url) const;

  // --- BLOB-layer resources ---------------------------------------------
  // Stores real bytes in the BlobStore and links them to the owner.
  [[nodiscard]] Result<BlobId> attach_resource(const std::string& owner_kind,
                                               const std::string& owner_name, Bytes data,
                                               blob::MediaType type,
                                               std::optional<std::int64_t> playout_ms = {});
  // Size-only resource for simulations.
  [[nodiscard]] Result<BlobId> attach_synthetic_resource(
      const std::string& owner_kind, const std::string& owner_name,
      const Digest128& digest, std::uint64_t size, blob::MediaType type,
      std::optional<std::int64_t> playout_ms = {});
  [[nodiscard]] Result<std::vector<ResourceInfo>> resources_of(
      const std::string& owner_kind, const std::string& owner_name) const;
  // Total BLOB bytes a presentation needs (sum of resource sizes of the
  // implementation and its script).
  [[nodiscard]] Result<std::uint64_t> presentation_bytes(
      const std::string& starting_url) const;

  // --- testing / QA ------------------------------------------------------
  [[nodiscard]] Status create_test_record(const TestRecordInfo& info);
  [[nodiscard]] Result<TestRecordInfo> get_test_record(const std::string& name) const;
  [[nodiscard]] Result<std::vector<std::string>> test_records_of_script(
      const std::string& script_name) const;
  [[nodiscard]] Status create_bug_report(const BugReportInfo& info);
  [[nodiscard]] Result<BugReportInfo> get_bug_report(const std::string& name) const;
  [[nodiscard]] Result<std::vector<std::string>> bug_reports_of(
      const std::string& test_record_name) const;

  // --- annotations ---------------------------------------------------------
  // Creates the annotation row plus its annotation file holding `doc`.
  [[nodiscard]] Status create_annotation(const AnnotationInfo& info,
                                         const AnnotationDoc& doc);
  [[nodiscard]] Result<AnnotationInfo> get_annotation(const std::string& name) const;
  [[nodiscard]] Result<AnnotationDoc> get_annotation_doc(const std::string& name) const;
  // Replaces an annotation's draw-ops and records the new version string.
  [[nodiscard]] Status update_annotation(const std::string& name,
                                         const AnnotationDoc& doc,
                                         const std::string& new_version,
                                         std::int64_t now);
  [[nodiscard]] Result<std::vector<std::string>> annotations_of(
      const std::string& starting_url) const;
  [[nodiscard]] Result<std::vector<std::string>> annotations_by_author(
      const std::string& author) const;

 private:
  storage::Database* db_;
  blob::BlobStore* blobs_;
};

}  // namespace wdoc::docmodel

// Annotation draw-ops — the stand-in for the Java annotation daemon's
// output ("draw lines, text, and simple graphic objects on the top of a Web
// page", §1). An AnnotationDoc is the decoded form of an annotation file's
// byte payload.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/serialize.hpp"

namespace wdoc::docmodel {

enum class DrawOpKind : std::uint8_t {
  line = 0,
  rect = 1,
  ellipse = 2,
  text = 3,
  freehand = 4,
};

[[nodiscard]] const char* draw_op_kind_name(DrawOpKind k);

struct Point {
  std::int32_t x = 0;
  std::int32_t y = 0;
  friend bool operator==(const Point&, const Point&) = default;
};

struct DrawOp {
  DrawOpKind kind = DrawOpKind::line;
  Point a;                     // anchor (line start / box corner / text origin)
  Point b;                     // line end / opposite corner; unused for text
  std::uint32_t color = 0xff000000;  // ARGB
  std::uint16_t stroke_width = 1;
  std::string text;            // text ops only
  std::vector<Point> points;   // freehand only
  // When the op was drawn, relative to the start of the annotation session
  // (drives the student-side "annotation playback" daemon, paper §1).
  std::int64_t at_ms = 0;

  friend bool operator==(const DrawOp&, const DrawOp&) = default;
};

struct BoundingBox {
  std::int32_t min_x = 0, min_y = 0, max_x = 0, max_y = 0;
  friend bool operator==(const BoundingBox&, const BoundingBox&) = default;
};

class AnnotationDoc {
 public:
  void add(DrawOp op) { ops_.push_back(std::move(op)); }
  [[nodiscard]] const std::vector<DrawOp>& ops() const { return ops_; }
  [[nodiscard]] std::size_t op_count() const { return ops_.size(); }
  [[nodiscard]] bool empty() const { return ops_.empty(); }

  // Smallest box covering every op; nullopt-equivalent {0,0,0,0} when empty.
  [[nodiscard]] BoundingBox bounding_box() const;

  // Total duration of the drawing session (max op timestamp).
  [[nodiscard]] std::int64_t duration_ms() const;

  [[nodiscard]] Bytes encode() const;  // writes the current (v2, timed) format
  // Reads v2, and the untimed v1 format (ops get at_ms = 0).
  [[nodiscard]] static Result<AnnotationDoc> decode(const Bytes& data);

  friend bool operator==(const AnnotationDoc&, const AnnotationDoc&) = default;

 private:
  std::vector<DrawOp> ops_;
};

// Replays an annotation in drawing order at a chosen speed — the student
// workstation daemon that plays an instructor's notes back over a lecture.
class AnnotationPlayer {
 public:
  explicit AnnotationPlayer(const AnnotationDoc& doc, double speed = 1.0);

  // Ops that become visible at or before `t_ms` of playback (cumulative).
  [[nodiscard]] std::vector<const DrawOp*> visible_at(std::int64_t t_ms) const;
  // Advances playback and returns only the newly visible ops.
  [[nodiscard]] std::vector<const DrawOp*> advance_to(std::int64_t t_ms);
  [[nodiscard]] bool finished() const { return cursor_ == timeline_.size(); }
  [[nodiscard]] std::int64_t duration_ms() const;
  void reset() { cursor_ = 0; }

 private:
  std::vector<const DrawOp*> timeline_;  // sorted by at_ms (stable)
  double speed_;
  std::size_t cursor_ = 0;
};

}  // namespace wdoc::docmodel

#include "docmodel/schema_defs.hpp"

namespace wdoc::docmodel {

using storage::Column;
using storage::ForeignKey;
using storage::RefAction;
using storage::Schema;
using storage::ValueType;

namespace {

Column col(const char* name, ValueType type, bool nullable = true) {
  Column c;
  c.name = name;
  c.type = type;
  c.nullable = nullable;
  return c;
}

Column indexed(const char* name, ValueType type, bool nullable = true) {
  Column c = col(name, type, nullable);
  c.indexed = true;
  return c;
}

}  // namespace

Schema database_schema() {
  // Database layer: "Database name, Keywords, Author, Version, Date/time,
  // Script names" — the script membership lives in wd_db_script.
  return Schema(kDatabaseTable,
                {
                    col("name", ValueType::text, false),
                    col("keywords", ValueType::text),
                    col("author", ValueType::text),
                    col("version", ValueType::text),
                    col("created_at", ValueType::integer),
                },
                /*primary_key=*/"name");
}

Schema db_script_schema() {
  return Schema(kDbScriptTable,
                {
                    indexed("database_name", ValueType::text, false),
                    indexed("script_name", ValueType::text, false),
                },
                /*primary_key=*/"",
                {
                    ForeignKey{"database_name", kDatabaseTable, "name", RefAction::cascade},
                    ForeignKey{"script_name", kScriptTable, "name", RefAction::cascade},
                });
}

Schema script_schema() {
  // "Script name, Keywords, Author, Version, Date/time, Description,
  //  Expected date/time of completion, Percentage of completion,
  //  Multimedia resources, Starting URLs, Test record names,
  //  Bug report names, Annotation names" — the last four are realized as
  // foreign keys *from* the child tables, per relational practice.
  return Schema(kScriptTable,
                {
                    col("name", ValueType::text, false),
                    indexed("keywords", ValueType::text),
                    indexed("author", ValueType::text),
                    col("version", ValueType::text),
                    col("created_at", ValueType::integer),
                    col("description", ValueType::text),
                    // Verbal descriptions may live in a multimedia resource
                    // file (paper §3); NULL when the description is textual.
                    col("verbal_description_digest", ValueType::text),
                    col("expected_completion", ValueType::integer),
                    col("pct_complete", ValueType::real),
                },
                /*primary_key=*/"name");
}

Schema implementation_schema() {
  return Schema(kImplementationTable,
                {
                    col("starting_url", ValueType::text, false),
                    indexed("script_name", ValueType::text, false),
                    col("author", ValueType::text),
                    col("created_at", ValueType::integer),
                    col("try_number", ValueType::integer),
                },
                /*primary_key=*/"starting_url",
                {
                    ForeignKey{"script_name", kScriptTable, "name", RefAction::cascade},
                });
}

Schema test_record_schema() {
  return Schema(kTestRecordTable,
                {
                    col("name", ValueType::text, false),
                    col("global_scope", ValueType::boolean, false),
                    // "Web traversal messages: windowing messages which
                    // control a Web document traversal" — an encoded event
                    // stream (qa::TraversalLog).
                    col("traversal_messages", ValueType::blob),
                    indexed("script_name", ValueType::text, false),
                    indexed("starting_url", ValueType::text, false),
                    col("created_at", ValueType::integer),
                },
                /*primary_key=*/"name",
                {
                    ForeignKey{"script_name", kScriptTable, "name", RefAction::cascade},
                    ForeignKey{"starting_url", kImplementationTable, "starting_url",
                               RefAction::cascade},
                });
}

Schema bug_report_schema() {
  return Schema(kBugReportTable,
                {
                    col("name", ValueType::text, false),
                    col("qa_engineer", ValueType::text),
                    col("test_procedure", ValueType::text),
                    col("bug_description", ValueType::text),
                    col("bad_urls", ValueType::text),
                    col("missing_objects", ValueType::text),
                    col("inconsistency", ValueType::text),
                    col("redundant_objects", ValueType::text),
                    indexed("test_record_name", ValueType::text, false),
                    col("created_at", ValueType::integer),
                },
                /*primary_key=*/"name",
                {
                    ForeignKey{"test_record_name", kTestRecordTable, "name",
                               RefAction::cascade},
                });
}

Schema annotation_schema() {
  return Schema(kAnnotationTable,
                {
                    col("name", ValueType::text, false),
                    indexed("author", ValueType::text),
                    col("version", ValueType::text),
                    col("created_at", ValueType::integer),
                    indexed("script_name", ValueType::text, false),
                    indexed("starting_url", ValueType::text, false),
                },
                /*primary_key=*/"name",
                {
                    ForeignKey{"script_name", kScriptTable, "name", RefAction::cascade},
                    ForeignKey{"starting_url", kImplementationTable, "starting_url",
                               RefAction::cascade},
                });
}

Schema html_file_schema() {
  return Schema(kHtmlFileTable,
                {
                    col("path", ValueType::text, false),
                    indexed("starting_url", ValueType::text, false),
                    col("content", ValueType::blob),
                    col("size", ValueType::integer),
                },
                /*primary_key=*/"path",
                {
                    ForeignKey{"starting_url", kImplementationTable, "starting_url",
                               RefAction::cascade},
                });
}

Schema program_file_schema() {
  return Schema(kProgramFileTable,
                {
                    col("path", ValueType::text, false),
                    indexed("starting_url", ValueType::text, false),
                    col("language", ValueType::text),  // "Java applets or ASP programs"
                    col("content", ValueType::blob),
                    col("size", ValueType::integer),
                },
                /*primary_key=*/"path",
                {
                    ForeignKey{"starting_url", kImplementationTable, "starting_url",
                               RefAction::cascade},
                });
}

Schema annotation_file_schema() {
  return Schema(kAnnotationFileTable,
                {
                    col("path", ValueType::text, false),
                    indexed("annotation_name", ValueType::text, false),
                    col("ops", ValueType::blob),  // serialized draw-op stream
                    col("size", ValueType::integer),
                },
                /*primary_key=*/"path",
                {
                    ForeignKey{"annotation_name", kAnnotationTable, "name",
                               RefAction::cascade},
                });
}

Schema resource_schema() {
  // BLOB-layer link: owner (script or implementation, by its unique name/URL)
  // -> content digest in the station BlobStore. "Multimedia resources: file
  // descriptors point to multimedia files" (§3).
  return Schema(kResourceTable,
                {
                    indexed("owner_kind", ValueType::text, false),  // script|implementation
                    indexed("owner_name", ValueType::text, false),
                    indexed("digest", ValueType::text, false),
                    col("media_type", ValueType::integer, false),
                    col("size", ValueType::integer, false),
                    // Playout offset within the lecture (used by E3's
                    // deadline schedule); NULL for non-timed resources.
                    col("playout_ms", ValueType::integer),
                });
}

Status install_schemas(storage::Database& db) {
  WDOC_TRY(db.create_table(database_schema()));
  WDOC_TRY(db.create_table(script_schema()));
  WDOC_TRY(db.create_table(db_script_schema()));
  WDOC_TRY(db.create_table(implementation_schema()));
  WDOC_TRY(db.create_table(test_record_schema()));
  WDOC_TRY(db.create_table(bug_report_schema()));
  WDOC_TRY(db.create_table(annotation_schema()));
  WDOC_TRY(db.create_table(html_file_schema()));
  WDOC_TRY(db.create_table(program_file_schema()));
  WDOC_TRY(db.create_table(annotation_file_schema()));
  WDOC_TRY(db.create_table(resource_schema()));
  return Status::ok();
}

std::vector<std::string> all_table_names() {
  return {kDatabaseTable, kScriptTable,     kDbScriptTable,
          kImplementationTable, kTestRecordTable, kBugReportTable,
          kAnnotationTable,     kHtmlFileTable,   kProgramFileTable,
          kAnnotationFileTable, kResourceTable};
}

}  // namespace wdoc::docmodel

#include "docmodel/qa_checker.hpp"

#include <algorithm>
#include <set>

namespace wdoc::docmodel {

std::vector<std::string> extract_references(std::string_view html) {
  std::vector<std::string> refs;
  auto scan_attr = [&](std::string_view attr) {
    std::size_t pos = 0;
    while ((pos = html.find(attr, pos)) != std::string_view::npos) {
      std::size_t eq = pos + attr.size();
      // Skip whitespace around '='.
      while (eq < html.size() && (html[eq] == ' ' || html[eq] == '\t')) ++eq;
      if (eq >= html.size() || html[eq] != '=') {
        pos = eq;
        continue;
      }
      ++eq;
      while (eq < html.size() && (html[eq] == ' ' || html[eq] == '\t')) ++eq;
      if (eq >= html.size() || (html[eq] != '"' && html[eq] != '\'')) {
        pos = eq;
        continue;
      }
      char quote = html[eq];
      std::size_t end = html.find(quote, eq + 1);
      if (end == std::string_view::npos) break;
      std::string target(html.substr(eq + 1, end - eq - 1));
      if (!target.empty()) refs.push_back(std::move(target));
      pos = end + 1;
    }
  };
  scan_attr("href");
  scan_attr("src");
  return refs;
}

namespace {

bool is_internal(const std::string& url, const std::string& starting_url) {
  // Internal targets either share the implementation's URL prefix or are
  // site-relative paths; external http(s) links to other hosts are not this
  // implementation's responsibility.
  if (url.rfind(starting_url, 0) == 0) return true;
  if (url.rfind("http://", 0) == 0 || url.rfind("https://", 0) == 0) return false;
  if (url.rfind("mailto:", 0) == 0) return false;
  return true;  // relative link
}

std::string resolve(const std::string& url, const std::string& starting_url) {
  if (url.rfind("http://", 0) == 0 || url.rfind("https://", 0) == 0) return url;
  return starting_url + "/" + url;
}

}  // namespace

Result<QaFindings> QaChecker::check(const std::string& starting_url) const {
  auto impl = repo_->get_implementation(starting_url);
  if (!impl) return impl.error();

  QaFindings findings;
  findings.starting_url = starting_url;

  auto htmls = repo_->html_files_of(starting_url);
  if (!htmls) return htmls.error();
  auto resources = repo_->resources_of("implementation", starting_url);
  if (!resources) return resources.error();

  if (htmls.value().empty()) {
    findings.inconsistencies.push_back(
        "implementation has no HTML files (schema requires at least one)");
  }

  std::set<std::string> stored_pages;
  for (const HtmlFileInfo& f : htmls.value()) stored_pages.insert(f.path);
  // Resources are addressable by digest hex and, for convenience, by a
  // res:<digest> pseudo-URL.
  std::set<std::string> stored_resources;
  for (const ResourceInfo& r : resources.value()) {
    stored_resources.insert(r.digest_hex);
    stored_resources.insert("res:" + r.digest_hex);
  }

  std::set<std::string> referenced;
  std::set<std::string> seen_links;
  for (const HtmlFileInfo& f : htmls.value()) {
    ++findings.pages_checked;
    std::string_view body(reinterpret_cast<const char*>(f.content.data()),
                          f.content.size());
    for (const std::string& raw : extract_references(body)) {
      ++findings.links_checked;
      if (!is_internal(raw, starting_url)) continue;
      std::string target = resolve(raw, starting_url);
      if (!seen_links.insert(f.path + " -> " + target).second) {
        findings.inconsistencies.push_back("duplicate reference in " + f.path +
                                           ": " + raw);
        continue;
      }
      if (raw.rfind("res:", 0) == 0) {
        if (!stored_resources.contains(raw)) {
          findings.missing_objects.push_back(raw);
        } else {
          referenced.insert(raw.substr(4));
        }
        continue;
      }
      if (stored_pages.contains(target) || target == starting_url) {
        referenced.insert(target);
      } else {
        findings.bad_urls.push_back(target);
      }
    }
  }

  // Redundant objects: stored but referenced by nothing. The starting page
  // itself is the entry point and never redundant.
  for (const HtmlFileInfo& f : htmls.value()) {
    bool is_entry = f.path == starting_url ||
                    f.path.find("index") != std::string::npos;
    if (!is_entry && !referenced.contains(f.path)) {
      findings.redundant_objects.push_back(f.path);
    }
  }
  for (const ResourceInfo& r : resources.value()) {
    if (!referenced.contains(r.digest_hex)) {
      // Resources may legitimately be played by programs rather than pages;
      // only flag when the implementation has pages that reference nothing.
      if (findings.links_checked > 0 && !stored_resources.empty() &&
          referenced.empty()) {
        findings.redundant_objects.push_back("res:" + r.digest_hex);
      }
    }
  }
  std::sort(findings.bad_urls.begin(), findings.bad_urls.end());
  std::sort(findings.redundant_objects.begin(), findings.redundant_objects.end());
  return findings;
}

Result<QaFindings> QaChecker::check_traversal(const std::string& starting_url,
                                              const TraversalLog& log) const {
  auto impl = repo_->get_implementation(starting_url);
  if (!impl) return impl.error();
  auto htmls = repo_->html_files_of(starting_url);
  if (!htmls) return htmls.error();

  std::set<std::string> stored_pages{starting_url};
  for (const HtmlFileInfo& f : htmls.value()) stored_pages.insert(f.path);

  QaFindings findings;
  findings.starting_url = starting_url;
  findings.pages_checked = stored_pages.size();
  for (const TraversalEvent& ev : log.events()) {
    if (ev.kind != TraversalEventKind::navigate || ev.target.empty()) continue;
    ++findings.links_checked;
    if (!is_internal(ev.target, starting_url)) continue;
    std::string target = resolve(ev.target, starting_url);
    if (!stored_pages.contains(target)) findings.bad_urls.push_back(target);
  }
  std::sort(findings.bad_urls.begin(), findings.bad_urls.end());
  findings.bad_urls.erase(
      std::unique(findings.bad_urls.begin(), findings.bad_urls.end()),
      findings.bad_urls.end());
  return findings;
}

namespace {

std::string join(const std::vector<std::string>& items) {
  std::string out;
  for (const std::string& item : items) {
    if (!out.empty()) out += ", ";
    out += item;
  }
  return out;
}

}  // namespace

Result<QaFindings> QaChecker::file_report(const std::string& starting_url,
                                          const std::string& test_name,
                                          const std::string& qa_engineer,
                                          std::int64_t now, const TraversalLog* log) {
  auto findings = check(starting_url);
  if (!findings) return findings;
  if (log != nullptr) {
    auto traversal = check_traversal(starting_url, *log);
    if (!traversal) return traversal;
    for (const std::string& url : traversal.value().bad_urls) {
      if (std::find(findings.value().bad_urls.begin(), findings.value().bad_urls.end(),
                    url) == findings.value().bad_urls.end()) {
        findings.value().bad_urls.push_back(url);
      }
    }
  }

  auto impl = repo_->get_implementation(starting_url);
  if (!impl) return impl.error();

  TestRecordInfo record;
  record.name = test_name;
  record.global_scope = false;
  if (log != nullptr) record.traversal_messages = log->encode();
  record.script_name = impl.value().script_name;
  record.starting_url = starting_url;
  record.created_at = now;
  WDOC_TRY(repo_->create_test_record(record));

  const QaFindings& f = findings.value();
  if (!f.clean()) {
    BugReportInfo bug;
    bug.name = test_name + "-findings";
    bug.qa_engineer = qa_engineer;
    bug.test_procedure =
        "static reference check over " + std::to_string(f.pages_checked) +
        " page(s), " + std::to_string(f.links_checked) + " link(s)" +
        (log != nullptr ? " + traversal replay" : "");
    bug.bug_description = std::to_string(f.bad_urls.size()) + " bad URL(s), " +
                          std::to_string(f.missing_objects.size()) +
                          " missing object(s), " +
                          std::to_string(f.redundant_objects.size()) +
                          " redundant object(s)";
    bug.bad_urls = join(f.bad_urls);
    bug.missing_objects = join(f.missing_objects);
    bug.redundant_objects = join(f.redundant_objects);
    bug.inconsistency = join(f.inconsistencies);
    bug.test_record_name = test_name;
    bug.created_at = now;
    WDOC_TRY(repo_->create_bug_report(bug));
  }
  return findings;
}

}  // namespace wdoc::docmodel

#include "docmodel/traversal.hpp"

#include <algorithm>

namespace wdoc::docmodel {

const char* traversal_event_kind_name(TraversalEventKind k) {
  switch (k) {
    case TraversalEventKind::navigate: return "navigate";
    case TraversalEventKind::click: return "click";
    case TraversalEventKind::scroll: return "scroll";
    case TraversalEventKind::back: return "back";
    case TraversalEventKind::forward: return "forward";
    case TraversalEventKind::play_media: return "play_media";
    case TraversalEventKind::close: return "close";
  }
  return "?";
}

std::vector<std::string> TraversalLog::visited_urls() const {
  std::vector<std::string> out;
  for (const TraversalEvent& ev : events_) {
    if (ev.kind == TraversalEventKind::navigate && !ev.target.empty() &&
        std::find(out.begin(), out.end(), ev.target) == out.end()) {
      out.push_back(ev.target);
    }
  }
  return out;
}

std::int64_t TraversalLog::duration_ms() const {
  std::int64_t max_ms = 0;
  for (const TraversalEvent& ev : events_) max_ms = std::max(max_ms, ev.at_ms);
  return max_ms;
}

Bytes TraversalLog::encode() const {
  Writer w;
  w.str("WDTRV1");
  w.u32(static_cast<std::uint32_t>(events_.size()));
  for (const TraversalEvent& ev : events_) {
    w.u8(static_cast<std::uint8_t>(ev.kind));
    w.i64(ev.at_ms);
    w.str(ev.target);
    w.u32(static_cast<std::uint32_t>(ev.x));
    w.u32(static_cast<std::uint32_t>(ev.y));
  }
  return w.take();
}

Result<TraversalLog> TraversalLog::decode(const Bytes& data) {
  Reader r(data);
  auto magic = r.str();
  if (!magic) return magic.error();
  if (magic.value() != "WDTRV1") return Error{Errc::corrupt, "bad traversal magic"};
  auto n = r.count();
  if (!n) return n.error();
  TraversalLog log;
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    TraversalEvent ev;
    auto kind = r.u8();
    if (!kind) return kind.error();
    if (kind.value() > static_cast<std::uint8_t>(TraversalEventKind::close)) {
      return Error{Errc::corrupt, "bad traversal event kind"};
    }
    ev.kind = static_cast<TraversalEventKind>(kind.value());
    auto at = r.i64();
    if (!at) return at.error();
    ev.at_ms = at.value();
    auto target = r.str();
    if (!target) return target.error();
    ev.target = std::move(target).value();
    auto x = r.u32();
    auto y = r.u32();
    if (!x || !y) return Error{Errc::corrupt, "truncated traversal event"};
    ev.x = static_cast<std::int32_t>(x.value());
    ev.y = static_cast<std::int32_t>(y.value());
    log.add(std::move(ev));
  }
  return log;
}

}  // namespace wdoc::docmodel

// QA checker — automated white/black-box testing of a Web document
// implementation (paper §1: "how do we perform a white box or black box
// testing of a multimedia presentation are research issues that we have
// solved partially"; §3 BugReport: "Bad URLs ... Missing objects ...
// Redundant objects ... Inconsistency").
//
// The checker parses href/src references out of the implementation's HTML
// files and cross-checks them against the stored pages and attached
// resources:
//   bad URLs          — internal links that resolve to no stored page;
//   missing objects   — referenced resources absent from the BLOB store;
//   redundant objects — stored pages/resources referenced by nothing;
//   inconsistency     — structural findings (e.g. empty implementation,
//                       duplicate references to the same target).
// `file_report` turns the findings into a stored TestRecord + BugReport.
#pragma once

#include <string>
#include <vector>

#include "docmodel/repository.hpp"
#include "docmodel/traversal.hpp"

namespace wdoc::docmodel {

struct QaFindings {
  std::string starting_url;
  std::vector<std::string> bad_urls;
  std::vector<std::string> missing_objects;
  std::vector<std::string> redundant_objects;
  std::vector<std::string> inconsistencies;
  std::size_t pages_checked = 0;
  std::size_t links_checked = 0;

  [[nodiscard]] bool clean() const {
    return bad_urls.empty() && missing_objects.empty() &&
           redundant_objects.empty() && inconsistencies.empty();
  }
};

// Extracts href="..." / src="..." targets from an HTML body. Exposed for
// tests; tolerant of single/double quotes and arbitrary attribute order.
[[nodiscard]] std::vector<std::string> extract_references(std::string_view html);

class QaChecker {
 public:
  explicit QaChecker(Repository& repo) : repo_(&repo) {}

  // Full static check of one implementation.
  [[nodiscard]] Result<QaFindings> check(const std::string& starting_url) const;

  // Black-box replay check: every URL a traversal log visited must resolve
  // to a stored page; unreachable ones land in bad_urls.
  [[nodiscard]] Result<QaFindings> check_traversal(const std::string& starting_url,
                                                   const TraversalLog& log) const;

  // Runs check(), stores a TestRecord (with the provided traversal log, if
  // any) and — when findings exist — a BugReport whose columns carry the
  // findings. Returns the findings.
  [[nodiscard]] Result<QaFindings> file_report(const std::string& starting_url,
                                               const std::string& test_name,
                                               const std::string& qa_engineer,
                                               std::int64_t now,
                                               const TraversalLog* log = nullptr);

 private:
  Repository* repo_;
};

}  // namespace wdoc::docmodel

#include "docmodel/repository.hpp"

#include "storage/query.hpp"

namespace wdoc::docmodel {

using storage::CmpOp;
using storage::Query;
using storage::Value;

namespace {

Value opt_text(const std::optional<std::string>& s) {
  return s ? Value(*s) : Value::null();
}

Value opt_int(const std::optional<std::int64_t>& v) {
  return v ? Value(*v) : Value::null();
}

}  // namespace

// --- database layer --------------------------------------------------------

Status Repository::create_database(const DatabaseInfo& info) {
  return db_->insert(kDatabaseTable, {Value(info.name), Value(info.keywords),
                                      Value(info.author), Value(info.version),
                                      Value(info.created_at)})
      .status();
}

Result<DatabaseInfo> Repository::get_database(const std::string& name) const {
  const storage::Table* t = db_->catalog().table(kDatabaseTable);
  auto rid = t->find_unique("name", Value(name));
  if (!rid) return Error{Errc::not_found, "no database: " + name};
  const auto& row = *t->get(*rid);
  DatabaseInfo info;
  info.name = row[0].as_text();
  info.keywords = row[1].is_null() ? "" : row[1].as_text();
  info.author = row[2].is_null() ? "" : row[2].as_text();
  info.version = row[3].is_null() ? "" : row[3].as_text();
  info.created_at = row[4].is_null() ? 0 : row[4].as_int();
  return info;
}

Status Repository::add_script_to_database(const std::string& database_name,
                                          const std::string& script_name) {
  // Reject duplicate membership rows.
  auto existing = db_->query(kDbScriptTable)
                      .where_eq("database_name", Value(database_name))
                      .where_eq("script_name", Value(script_name))
                      .count();
  if (!existing) return existing.status();
  if (existing.value() > 0) {
    return {Errc::already_exists, script_name + " already in " + database_name};
  }
  return db_->insert(kDbScriptTable, {Value(database_name), Value(script_name)}).status();
}

Result<std::vector<std::string>> Repository::scripts_of_database(
    const std::string& database_name) const {
  auto rows = db_->query(kDbScriptTable)
                  .where_eq("database_name", Value(database_name))
                  .select({"script_name"})
                  .run();
  if (!rows) return rows.error();
  std::vector<std::string> out;
  out.reserve(rows.value().size());
  for (const auto& r : rows.value()) out.push_back(r.values[0].as_text());
  return out;
}

std::vector<std::string> Repository::list_databases() const {
  std::vector<std::string> out;
  db_->catalog().table(kDatabaseTable)->scan([&](RowId, const std::vector<Value>& row) {
    out.push_back(row[0].as_text());
    return true;
  });
  return out;
}

// --- scripts ------------------------------------------------------------------

Status Repository::create_script(const ScriptInfo& info) {
  return db_->insert(kScriptTable,
                     {Value(info.name), Value(info.keywords), Value(info.author),
                      Value(info.version), Value(info.created_at),
                      Value(info.description), opt_text(info.verbal_description_digest),
                      Value(info.expected_completion), Value(info.pct_complete)})
      .status();
}

Result<ScriptInfo> Repository::get_script(const std::string& name) const {
  const storage::Table* t = db_->catalog().table(kScriptTable);
  auto rid = t->find_unique("name", Value(name));
  if (!rid) return Error{Errc::not_found, "no script: " + name};
  const auto& row = *t->get(*rid);
  ScriptInfo info;
  info.name = row[0].as_text();
  info.keywords = row[1].is_null() ? "" : row[1].as_text();
  info.author = row[2].is_null() ? "" : row[2].as_text();
  info.version = row[3].is_null() ? "" : row[3].as_text();
  info.created_at = row[4].is_null() ? 0 : row[4].as_int();
  info.description = row[5].is_null() ? "" : row[5].as_text();
  if (!row[6].is_null()) info.verbal_description_digest = row[6].as_text();
  info.expected_completion = row[7].is_null() ? 0 : row[7].as_int();
  info.pct_complete = row[8].is_null() ? 0.0 : row[8].as_real();
  return info;
}

Status Repository::set_script_progress(const std::string& name, double pct_complete) {
  if (pct_complete < 0.0 || pct_complete > 100.0) {
    return {Errc::invalid_argument, "pct_complete out of [0,100]"};
  }
  storage::Table* t = db_->catalog().table(kScriptTable);
  auto rid = t->find_unique("name", Value(name));
  if (!rid) return {Errc::not_found, "no script: " + name};
  return db_->update_column(kScriptTable, *rid, "pct_complete", Value(pct_complete));
}

Status Repository::set_verbal_description(const std::string& name, Bytes audio,
                                          blob::MediaType type) {
  storage::Table* t = db_->catalog().table(kScriptTable);
  auto rid = t->find_unique("name", Value(name));
  if (!rid) return {Errc::not_found, "no script: " + name};
  Digest128 digest = digest128(std::span<const std::uint8_t>(audio));
  auto blob_id = blobs_->put(std::move(audio), type);
  if (!blob_id) return blob_id.status();
  Status s = db_->update_column(kScriptTable, *rid, "verbal_description_digest",
                                Value(digest.to_hex()));
  if (!s.is_ok()) {
    (void)blobs_->release(blob_id.value(), /*evict_now=*/true);
  }
  return s;
}

Result<Bytes> Repository::get_verbal_description(const std::string& name) const {
  auto script = get_script(name);
  if (!script) return script.error();
  if (!script.value().verbal_description_digest) {
    return Error{Errc::not_found, name + " has no verbal description"};
  }
  auto digest = Digest128::from_hex(*script.value().verbal_description_digest);
  if (!digest) return Error{Errc::corrupt, "bad verbal description digest"};
  auto blob_id = blobs_->find(*digest);
  if (!blob_id) return Error{Errc::not_found, "verbal description blob missing"};
  auto data = blobs_->get(*blob_id);
  if (!data) return data.error();
  return Bytes(data.value().begin(), data.value().end());
}

Status Repository::delete_script(const std::string& name) {
  storage::Table* t = db_->catalog().table(kScriptTable);
  auto rid = t->find_unique("name", Value(name));
  if (!rid) return {Errc::not_found, "no script: " + name};
  // Resource rows don't FK the script (owners are polymorphic), so remove
  // them by hand — the script's own and those of each implementation. Blob
  // refs are dropped alongside.
  storage::Table* rt = db_->catalog().table(kResourceTable);
  auto drop_resources = [&](const std::string& owner) {
    for (RowId rrid : rt->find_equal("owner_name", Value(owner))) {
      const auto& row = *rt->get(rrid);
      if (auto digest = Digest128::from_hex(row[2].as_text())) {
        if (auto blob_id = blobs_->find(*digest)) {
          (void)blobs_->release(*blob_id);
        }
      }
      (void)db_->erase(kResourceTable, rrid);
    }
  };
  drop_resources(name);
  auto impls = implementations_of(name);
  if (impls) {
    for (const ImplementationInfo& impl : impls.value()) {
      drop_resources(impl.starting_url);
    }
  }
  return db_->erase(kScriptTable, *rid);
}

std::vector<std::string> Repository::list_scripts() const {
  std::vector<std::string> out;
  db_->catalog().table(kScriptTable)->scan([&](RowId, const std::vector<Value>& row) {
    out.push_back(row[0].as_text());
    return true;
  });
  return out;
}

// --- implementations ------------------------------------------------------------

Status Repository::create_implementation(const ImplementationInfo& info) {
  return db_->insert(kImplementationTable,
                     {Value(info.starting_url), Value(info.script_name),
                      Value(info.author), Value(info.created_at), Value(info.try_number)})
      .status();
}

namespace {

ImplementationInfo impl_from_row(const std::vector<Value>& row) {
  ImplementationInfo info;
  info.starting_url = row[0].as_text();
  info.script_name = row[1].as_text();
  info.author = row[2].is_null() ? "" : row[2].as_text();
  info.created_at = row[3].is_null() ? 0 : row[3].as_int();
  info.try_number = row[4].is_null() ? 1 : row[4].as_int();
  return info;
}

}  // namespace

Result<ImplementationInfo> Repository::get_implementation(
    const std::string& starting_url) const {
  const storage::Table* t = db_->catalog().table(kImplementationTable);
  auto rid = t->find_unique("starting_url", Value(starting_url));
  if (!rid) return Error{Errc::not_found, "no implementation: " + starting_url};
  return impl_from_row(*t->get(*rid));
}

Result<std::vector<ImplementationInfo>> Repository::implementations_of(
    const std::string& script_name) const {
  auto rows = db_->query(kImplementationTable)
                  .where_eq("script_name", Value(script_name))
                  .order_by("try_number")
                  .run();
  if (!rows) return rows.error();
  std::vector<ImplementationInfo> out;
  out.reserve(rows.value().size());
  for (const auto& r : rows.value()) out.push_back(impl_from_row(r.values));
  return out;
}

// --- files -----------------------------------------------------------------

Status Repository::add_html_file(const HtmlFileInfo& file) {
  return db_->insert(kHtmlFileTable,
                     {Value(file.path), Value(file.starting_url), Value(file.content),
                      Value(static_cast<std::int64_t>(file.content.size()))})
      .status();
}

Status Repository::add_program_file(const ProgramFileInfo& file) {
  return db_->insert(kProgramFileTable,
                     {Value(file.path), Value(file.starting_url), Value(file.language),
                      Value(file.content),
                      Value(static_cast<std::int64_t>(file.content.size()))})
      .status();
}

Result<std::vector<HtmlFileInfo>> Repository::html_files_of(
    const std::string& starting_url) const {
  auto rows = db_->query(kHtmlFileTable)
                  .where_eq("starting_url", Value(starting_url))
                  .order_by("path")
                  .run();
  if (!rows) return rows.error();
  std::vector<HtmlFileInfo> out;
  for (const auto& r : rows.value()) {
    HtmlFileInfo f;
    f.path = r.values[0].as_text();
    f.starting_url = r.values[1].as_text();
    if (!r.values[2].is_null()) f.content = r.values[2].as_blob();
    out.push_back(std::move(f));
  }
  return out;
}

Result<std::vector<ProgramFileInfo>> Repository::program_files_of(
    const std::string& starting_url) const {
  auto rows = db_->query(kProgramFileTable)
                  .where_eq("starting_url", Value(starting_url))
                  .order_by("path")
                  .run();
  if (!rows) return rows.error();
  std::vector<ProgramFileInfo> out;
  for (const auto& r : rows.value()) {
    ProgramFileInfo f;
    f.path = r.values[0].as_text();
    f.starting_url = r.values[1].as_text();
    f.language = r.values[2].is_null() ? "" : r.values[2].as_text();
    if (!r.values[3].is_null()) f.content = r.values[3].as_blob();
    out.push_back(std::move(f));
  }
  return out;
}

// --- BLOB-layer resources ----------------------------------------------------

Result<BlobId> Repository::attach_resource(const std::string& owner_kind,
                                           const std::string& owner_name, Bytes data,
                                           blob::MediaType type,
                                           std::optional<std::int64_t> playout_ms) {
  std::uint64_t size = data.size();
  Digest128 digest = digest128(std::span<const std::uint8_t>(data));
  auto blob_id = blobs_->put(std::move(data), type);
  if (!blob_id) return blob_id.error();
  auto row = db_->insert(
      kResourceTable,
      {Value(owner_kind), Value(owner_name), Value(digest.to_hex()),
       Value(static_cast<std::int64_t>(type)), Value(static_cast<std::int64_t>(size)),
       opt_int(playout_ms)});
  if (!row) {
    (void)blobs_->release(blob_id.value(), /*evict_now=*/true);
    return row.error();
  }
  return blob_id.value();
}

Result<BlobId> Repository::attach_synthetic_resource(
    const std::string& owner_kind, const std::string& owner_name, const Digest128& digest,
    std::uint64_t size, blob::MediaType type, std::optional<std::int64_t> playout_ms) {
  auto blob_id = blobs_->put_synthetic(digest, size, type);
  if (!blob_id) return blob_id.error();
  auto row = db_->insert(
      kResourceTable,
      {Value(owner_kind), Value(owner_name), Value(digest.to_hex()),
       Value(static_cast<std::int64_t>(type)), Value(static_cast<std::int64_t>(size)),
       opt_int(playout_ms)});
  if (!row) {
    (void)blobs_->release(blob_id.value(), /*evict_now=*/true);
    return row.error();
  }
  return blob_id.value();
}

Result<std::vector<ResourceInfo>> Repository::resources_of(
    const std::string& owner_kind, const std::string& owner_name) const {
  auto rows = db_->query(kResourceTable)
                  .where_eq("owner_name", Value(owner_name))
                  .where_eq("owner_kind", Value(owner_kind))
                  .run();
  if (!rows) return rows.error();
  std::vector<ResourceInfo> out;
  for (const auto& r : rows.value()) {
    ResourceInfo info;
    info.owner_kind = r.values[0].as_text();
    info.owner_name = r.values[1].as_text();
    info.digest_hex = r.values[2].as_text();
    info.media_type = static_cast<blob::MediaType>(r.values[3].as_int());
    info.size = static_cast<std::uint64_t>(r.values[4].as_int());
    if (!r.values[5].is_null()) info.playout_ms = r.values[5].as_int();
    out.push_back(std::move(info));
  }
  return out;
}

Result<std::uint64_t> Repository::presentation_bytes(
    const std::string& starting_url) const {
  auto impl = get_implementation(starting_url);
  if (!impl) return impl.error();
  std::uint64_t total = 0;
  auto own = resources_of("implementation", starting_url);
  if (!own) return own.error();
  for (const ResourceInfo& r : own.value()) total += r.size;
  auto script_res = resources_of("script", impl.value().script_name);
  if (!script_res) return script_res.error();
  for (const ResourceInfo& r : script_res.value()) total += r.size;
  return total;
}

// --- testing / QA --------------------------------------------------------------

Status Repository::create_test_record(const TestRecordInfo& info) {
  return db_->insert(kTestRecordTable,
                     {Value(info.name), Value(info.global_scope),
                      Value(info.traversal_messages), Value(info.script_name),
                      Value(info.starting_url), Value(info.created_at)})
      .status();
}

Result<TestRecordInfo> Repository::get_test_record(const std::string& name) const {
  const storage::Table* t = db_->catalog().table(kTestRecordTable);
  auto rid = t->find_unique("name", Value(name));
  if (!rid) return Error{Errc::not_found, "no test record: " + name};
  const auto& row = *t->get(*rid);
  TestRecordInfo info;
  info.name = row[0].as_text();
  info.global_scope = row[1].as_bool();
  if (!row[2].is_null()) info.traversal_messages = row[2].as_blob();
  info.script_name = row[3].as_text();
  info.starting_url = row[4].as_text();
  info.created_at = row[5].is_null() ? 0 : row[5].as_int();
  return info;
}

Result<std::vector<std::string>> Repository::test_records_of_script(
    const std::string& script_name) const {
  auto rows = db_->query(kTestRecordTable)
                  .where_eq("script_name", Value(script_name))
                  .select({"name"})
                  .run();
  if (!rows) return rows.error();
  std::vector<std::string> out;
  for (const auto& r : rows.value()) out.push_back(r.values[0].as_text());
  return out;
}

Status Repository::create_bug_report(const BugReportInfo& info) {
  return db_->insert(kBugReportTable,
                     {Value(info.name), Value(info.qa_engineer),
                      Value(info.test_procedure), Value(info.bug_description),
                      Value(info.bad_urls), Value(info.missing_objects),
                      Value(info.inconsistency), Value(info.redundant_objects),
                      Value(info.test_record_name), Value(info.created_at)})
      .status();
}

Result<BugReportInfo> Repository::get_bug_report(const std::string& name) const {
  const storage::Table* t = db_->catalog().table(kBugReportTable);
  auto rid = t->find_unique("name", Value(name));
  if (!rid) return Error{Errc::not_found, "no bug report: " + name};
  const auto& row = *t->get(*rid);
  BugReportInfo info;
  auto text_or_empty = [&](std::size_t i) {
    return row[i].is_null() ? std::string{} : row[i].as_text();
  };
  info.name = row[0].as_text();
  info.qa_engineer = text_or_empty(1);
  info.test_procedure = text_or_empty(2);
  info.bug_description = text_or_empty(3);
  info.bad_urls = text_or_empty(4);
  info.missing_objects = text_or_empty(5);
  info.inconsistency = text_or_empty(6);
  info.redundant_objects = text_or_empty(7);
  info.test_record_name = row[8].as_text();
  info.created_at = row[9].is_null() ? 0 : row[9].as_int();
  return info;
}

Result<std::vector<std::string>> Repository::bug_reports_of(
    const std::string& test_record_name) const {
  auto rows = db_->query(kBugReportTable)
                  .where_eq("test_record_name", Value(test_record_name))
                  .select({"name"})
                  .run();
  if (!rows) return rows.error();
  std::vector<std::string> out;
  for (const auto& r : rows.value()) out.push_back(r.values[0].as_text());
  return out;
}

// --- annotations ----------------------------------------------------------------

Status Repository::create_annotation(const AnnotationInfo& info, const AnnotationDoc& doc) {
  WDOC_TRY(db_->insert(kAnnotationTable,
                       {Value(info.name), Value(info.author), Value(info.version),
                        Value(info.created_at), Value(info.script_name),
                        Value(info.starting_url)})
               .status());
  Bytes encoded = doc.encode();
  auto size = static_cast<std::int64_t>(encoded.size());
  return db_->insert(kAnnotationFileTable,
                     {Value(info.name + ".ann"), Value(info.name), Value(std::move(encoded)),
                      Value(size)})
      .status();
}

Result<AnnotationInfo> Repository::get_annotation(const std::string& name) const {
  const storage::Table* t = db_->catalog().table(kAnnotationTable);
  auto rid = t->find_unique("name", Value(name));
  if (!rid) return Error{Errc::not_found, "no annotation: " + name};
  const auto& row = *t->get(*rid);
  AnnotationInfo info;
  info.name = row[0].as_text();
  info.author = row[1].is_null() ? "" : row[1].as_text();
  info.version = row[2].is_null() ? "" : row[2].as_text();
  info.created_at = row[3].is_null() ? 0 : row[3].as_int();
  info.script_name = row[4].as_text();
  info.starting_url = row[5].as_text();
  return info;
}

Result<AnnotationDoc> Repository::get_annotation_doc(const std::string& name) const {
  auto rows = db_->query(kAnnotationFileTable)
                  .where_eq("annotation_name", Value(name))
                  .select({"ops"})
                  .run();
  if (!rows) return rows.error();
  if (rows.value().empty()) return Error{Errc::not_found, "no annotation file: " + name};
  const Value& ops = rows.value().front().values[0];
  if (ops.is_null()) return AnnotationDoc{};
  return AnnotationDoc::decode(ops.as_blob());
}

Status Repository::update_annotation(const std::string& name, const AnnotationDoc& doc,
                                     const std::string& new_version, std::int64_t now) {
  storage::Table* at = db_->catalog().table(kAnnotationTable);
  auto arid = at->find_unique("name", Value(name));
  if (!arid) return {Errc::not_found, "no annotation: " + name};
  WDOC_TRY(db_->update_column(kAnnotationTable, *arid, "version", Value(new_version)));
  WDOC_TRY(db_->update_column(kAnnotationTable, *arid, "created_at", Value(now)));

  storage::Table* ft = db_->catalog().table(kAnnotationFileTable);
  auto frid = ft->find_unique("path", Value(name + ".ann"));
  if (!frid) return {Errc::corrupt, "annotation row without file: " + name};
  Bytes encoded = doc.encode();
  auto size = static_cast<std::int64_t>(encoded.size());
  WDOC_TRY(db_->update_column(kAnnotationFileTable, *frid, "ops", Value(std::move(encoded))));
  return db_->update_column(kAnnotationFileTable, *frid, "size", Value(size));
}

Result<std::vector<std::string>> Repository::annotations_of(
    const std::string& starting_url) const {
  auto rows = db_->query(kAnnotationTable)
                  .where_eq("starting_url", Value(starting_url))
                  .select({"name"})
                  .run();
  if (!rows) return rows.error();
  std::vector<std::string> out;
  for (const auto& r : rows.value()) out.push_back(r.values[0].as_text());
  return out;
}

Result<std::vector<std::string>> Repository::annotations_by_author(
    const std::string& author) const {
  auto rows = db_->query(kAnnotationTable)
                  .where_eq("author", Value(author))
                  .select({"name"})
                  .run();
  if (!rows) return rows.error();
  std::vector<std::string> out;
  for (const auto& r : rows.value()) out.push_back(r.values[0].as_text());
  return out;
}

}  // namespace wdoc::docmodel

#include "docmodel/annotation_ops.hpp"

#include <algorithm>

namespace wdoc::docmodel {

const char* draw_op_kind_name(DrawOpKind k) {
  switch (k) {
    case DrawOpKind::line: return "line";
    case DrawOpKind::rect: return "rect";
    case DrawOpKind::ellipse: return "ellipse";
    case DrawOpKind::text: return "text";
    case DrawOpKind::freehand: return "freehand";
  }
  return "?";
}

BoundingBox AnnotationDoc::bounding_box() const {
  if (ops_.empty()) return {};
  BoundingBox box{INT32_MAX, INT32_MAX, INT32_MIN, INT32_MIN};
  auto extend = [&](Point p) {
    box.min_x = std::min(box.min_x, p.x);
    box.min_y = std::min(box.min_y, p.y);
    box.max_x = std::max(box.max_x, p.x);
    box.max_y = std::max(box.max_y, p.y);
  };
  for (const DrawOp& op : ops_) {
    extend(op.a);
    if (op.kind != DrawOpKind::text) extend(op.b);
    for (Point p : op.points) extend(p);
  }
  return box;
}

std::int64_t AnnotationDoc::duration_ms() const {
  std::int64_t max_ms = 0;
  for (const DrawOp& op : ops_) max_ms = std::max(max_ms, op.at_ms);
  return max_ms;
}

Bytes AnnotationDoc::encode() const {
  Writer w;
  w.str("WDANN2");
  w.u32(static_cast<std::uint32_t>(ops_.size()));
  for (const DrawOp& op : ops_) {
    w.u8(static_cast<std::uint8_t>(op.kind));
    w.i64(op.at_ms);
    w.u32(static_cast<std::uint32_t>(op.a.x));
    w.u32(static_cast<std::uint32_t>(op.a.y));
    w.u32(static_cast<std::uint32_t>(op.b.x));
    w.u32(static_cast<std::uint32_t>(op.b.y));
    w.u32(op.color);
    w.u16(op.stroke_width);
    w.str(op.text);
    w.u32(static_cast<std::uint32_t>(op.points.size()));
    for (Point p : op.points) {
      w.u32(static_cast<std::uint32_t>(p.x));
      w.u32(static_cast<std::uint32_t>(p.y));
    }
  }
  return w.take();
}

Result<AnnotationDoc> AnnotationDoc::decode(const Bytes& data) {
  Reader r(data);
  auto magic = r.str();
  if (!magic) return magic.error();
  bool timed;
  if (magic.value() == "WDANN2") {
    timed = true;
  } else if (magic.value() == "WDANN1") {
    timed = false;  // legacy, untimed ops
  } else {
    return Error{Errc::corrupt, "bad annotation magic"};
  }
  auto n = r.count();
  if (!n) return n.error();
  AnnotationDoc doc;
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    DrawOp op;
    auto kind = r.u8();
    if (!kind) return kind.error();
    if (kind.value() > static_cast<std::uint8_t>(DrawOpKind::freehand)) {
      return Error{Errc::corrupt, "bad draw-op kind"};
    }
    op.kind = static_cast<DrawOpKind>(kind.value());
    if (timed) {
      auto at = r.i64();
      if (!at) return at.error();
      op.at_ms = at.value();
    }
    auto ax = r.u32();
    auto ay = r.u32();
    auto bx = r.u32();
    auto by = r.u32();
    auto color = r.u32();
    auto stroke = r.u16();
    if (!ax || !ay || !bx || !by || !color || !stroke) {
      return Error{Errc::corrupt, "truncated draw-op"};
    }
    op.a = {static_cast<std::int32_t>(ax.value()), static_cast<std::int32_t>(ay.value())};
    op.b = {static_cast<std::int32_t>(bx.value()), static_cast<std::int32_t>(by.value())};
    op.color = color.value();
    op.stroke_width = stroke.value();
    auto text = r.str();
    if (!text) return text.error();
    op.text = std::move(text).value();
    auto npts = r.count(8);  // 8 bytes per point
    if (!npts) return npts.error();
    op.points.reserve(npts.value());
    for (std::uint32_t j = 0; j < npts.value(); ++j) {
      auto px = r.u32();
      auto py = r.u32();
      if (!px || !py) return Error{Errc::corrupt, "truncated freehand points"};
      op.points.push_back(
          {static_cast<std::int32_t>(px.value()), static_cast<std::int32_t>(py.value())});
    }
    doc.add(std::move(op));
  }
  return doc;
}

AnnotationPlayer::AnnotationPlayer(const AnnotationDoc& doc, double speed)
    : speed_(speed > 0 ? speed : 1.0) {
  timeline_.reserve(doc.ops().size());
  for (const DrawOp& op : doc.ops()) timeline_.push_back(&op);
  std::stable_sort(timeline_.begin(), timeline_.end(),
                   [](const DrawOp* a, const DrawOp* b) { return a->at_ms < b->at_ms; });
}

std::vector<const DrawOp*> AnnotationPlayer::visible_at(std::int64_t t_ms) const {
  std::vector<const DrawOp*> out;
  auto threshold = static_cast<std::int64_t>(static_cast<double>(t_ms) * speed_);
  for (const DrawOp* op : timeline_) {
    if (op->at_ms > threshold) break;
    out.push_back(op);
  }
  return out;
}

std::vector<const DrawOp*> AnnotationPlayer::advance_to(std::int64_t t_ms) {
  std::vector<const DrawOp*> out;
  auto threshold = static_cast<std::int64_t>(static_cast<double>(t_ms) * speed_);
  while (cursor_ < timeline_.size() && timeline_[cursor_]->at_ms <= threshold) {
    out.push_back(timeline_[cursor_++]);
  }
  return out;
}

std::int64_t AnnotationPlayer::duration_ms() const {
  if (timeline_.empty()) return 0;
  return static_cast<std::int64_t>(
      static_cast<double>(timeline_.back()->at_ms) / speed_);
}

}  // namespace wdoc::docmodel

// Web-traversal message logs ("windowing messages which control a Web
// document traversal", §3). The QA tool records a stream of UI events while
// exercising an implementation; the stream is stored in the test-record row
// and replayed to reproduce bugs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/serialize.hpp"

namespace wdoc::docmodel {

enum class TraversalEventKind : std::uint8_t {
  navigate = 0,   // follow a link to a URL
  click = 1,      // mouse click at (x, y)
  scroll = 2,     // scroll by dy
  back = 3,
  forward = 4,
  play_media = 5, // start a multimedia resource
  close = 6,
};

[[nodiscard]] const char* traversal_event_kind_name(TraversalEventKind k);

struct TraversalEvent {
  TraversalEventKind kind = TraversalEventKind::navigate;
  std::int64_t at_ms = 0;   // offset from session start
  std::string target;       // URL / resource digest, when applicable
  std::int32_t x = 0, y = 0;

  friend bool operator==(const TraversalEvent&, const TraversalEvent&) = default;
};

class TraversalLog {
 public:
  void add(TraversalEvent ev) { events_.push_back(std::move(ev)); }
  [[nodiscard]] const std::vector<TraversalEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  // URLs visited, in order, without duplicates.
  [[nodiscard]] std::vector<std::string> visited_urls() const;
  [[nodiscard]] std::int64_t duration_ms() const;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<TraversalLog> decode(const Bytes& data);

  friend bool operator==(const TraversalLog&, const TraversalLog&) = default;

 private:
  std::vector<TraversalEvent> events_;
};

}  // namespace wdoc::docmodel

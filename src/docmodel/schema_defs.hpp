// Relational mapping of the paper's three-layer Web document hierarchy (§3).
//
// Layer 1 (Database layer): wd_database + wd_db_script membership.
// Layer 2 (Document layer): wd_script, wd_implementation, wd_test_record,
//   wd_bug_report, wd_annotation, and the file tables wd_html_file,
//   wd_program_file, wd_annotation_file.
// Layer 3 (BLOB layer): wd_resource rows point into a BlobStore by content
//   digest; the bytes themselves never enter the relational engine.
//
// Foreign keys follow the paper's attribute lists: implementations carry the
// script name; test records carry script + starting URL; bug reports carry
// the test record name; annotations carry script + starting URL.
#pragma once

#include <string>
#include <vector>

#include "storage/database.hpp"

namespace wdoc::docmodel {

// Table names.
inline constexpr const char* kDatabaseTable = "wd_database";
inline constexpr const char* kDbScriptTable = "wd_db_script";
inline constexpr const char* kScriptTable = "wd_script";
inline constexpr const char* kImplementationTable = "wd_implementation";
inline constexpr const char* kTestRecordTable = "wd_test_record";
inline constexpr const char* kBugReportTable = "wd_bug_report";
inline constexpr const char* kAnnotationTable = "wd_annotation";
inline constexpr const char* kHtmlFileTable = "wd_html_file";
inline constexpr const char* kProgramFileTable = "wd_program_file";
inline constexpr const char* kAnnotationFileTable = "wd_annotation_file";
inline constexpr const char* kResourceTable = "wd_resource";

[[nodiscard]] storage::Schema database_schema();
[[nodiscard]] storage::Schema db_script_schema();
[[nodiscard]] storage::Schema script_schema();
[[nodiscard]] storage::Schema implementation_schema();
[[nodiscard]] storage::Schema test_record_schema();
[[nodiscard]] storage::Schema bug_report_schema();
[[nodiscard]] storage::Schema annotation_schema();
[[nodiscard]] storage::Schema html_file_schema();
[[nodiscard]] storage::Schema program_file_schema();
[[nodiscard]] storage::Schema annotation_file_schema();
[[nodiscard]] storage::Schema resource_schema();

// Creates all eleven tables (parents before children).
[[nodiscard]] Status install_schemas(storage::Database& db);

[[nodiscard]] std::vector<std::string> all_table_names();

}  // namespace wdoc::docmodel

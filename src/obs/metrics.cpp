#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <sstream>

#include "common/log.hpp"
#include "common/result.hpp"

namespace wdoc::obs {

// --- Histogram --------------------------------------------------------------

double Histogram::upper_bound(std::size_t i) {
  WDOC_CHECK(i < kBuckets, "histogram bucket out of range");
  if (i == kBuckets - 1) return std::numeric_limits<double>::infinity();
  return std::ldexp(1.0, static_cast<int>(i));  // 2^i
}

std::size_t Histogram::bucket_of(double v) {
  if (!(v > 1.0)) return 0;  // v <= 1, NaN, negatives
  int exp = 0;
  // frexp: v = frac * 2^exp with frac in [0.5, 1). v <= 2^i iff i >= exp,
  // except exact powers of two (frac == 0.5) which belong one bucket lower.
  double frac = std::frexp(v, &exp);
  std::size_t b = frac == 0.5 ? static_cast<std::size_t>(exp - 1)
                              : static_cast<std::size_t>(exp);
  return std::min(b, kBuckets - 1);
}

void Histogram::observe(double v, std::uint64_t exemplar_trace_id) {
  const std::size_t b = bucket_of(v);
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  if (exemplar_trace_id != 0) {
    exemplars_[b].store(exemplar_trace_id, std::memory_order_relaxed);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(std::isfinite(v) ? v : 0.0, std::memory_order_relaxed);
}

double Histogram::mean() const {
  std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double q) const {
  WDOC_CHECK(q >= 0.0 && q <= 1.0, "quantile out of range");
  std::uint64_t n = count();
  if (n == 0) return 0.0;
  auto rank = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += bucket_count(i);
    if (seen >= rank) {
      // Report the bucket's upper bound; the last bucket has no finite
      // bound, so fall back to its lower edge.
      return i == kBuckets - 1 ? upper_bound(kBuckets - 2) : upper_bound(i);
    }
  }
  return upper_bound(kBuckets - 2);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  for (auto& e : exemplars_) e.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

// --- keys -------------------------------------------------------------------

namespace {

std::string make_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  if (!labels.empty()) {
    key += '{';
    bool first = true;
    for (const auto& [k, v] : labels) {  // std::map: already sorted
      if (!first) key += ',';
      first = false;
      key += k;
      key += '=';
      key += v;
    }
    key += '}';
  }
  return key;
}

}  // namespace

std::string MetricSample::key() const { return make_key(name, labels); }

// --- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // never destroyed
  return *reg;
}

MetricsRegistry::Shard& MetricsRegistry::shard_for(const std::string& key) {
  return shards_[std::hash<std::string>{}(key) % kShards];
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(std::string_view name,
                                                        const Labels& labels,
                                                        MetricSample::Kind kind) {
  std::string key = make_key(name, labels);
  Shard& sh = shard_for(key);
  std::lock_guard<std::mutex> g(sh.mu);
  auto it = sh.entries.find(key);
  if (it == sh.entries.end()) {
    Entry e;
    e.kind = kind;
    switch (kind) {
      case MetricSample::Kind::counter: e.counter = std::make_unique<Counter>(); break;
      case MetricSample::Kind::gauge: e.gauge = std::make_unique<Gauge>(); break;
      case MetricSample::Kind::histogram:
        e.histogram = std::make_unique<Histogram>();
        break;
    }
    it = sh.entries.emplace(std::move(key), std::move(e)).first;
  }
  WDOC_CHECK(it->second.kind == kind, "metric re-registered with different kind: " +
                                          it->first);
  return it->second;
}

Counter& MetricsRegistry::counter(std::string_view name, const Labels& labels) {
  return *find_or_create(name, labels, MetricSample::Kind::counter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, const Labels& labels) {
  return *find_or_create(name, labels, MetricSample::Kind::gauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name, const Labels& labels) {
  return *find_or_create(name, labels, MetricSample::Kind::histogram).histogram;
}

namespace {

// Splits "name{k=v,...}" back into (name, labels) for the snapshot.
std::pair<std::string, Labels> parse_key(const std::string& key) {
  auto brace = key.find('{');
  if (brace == std::string::npos) return {key, {}};
  std::string name = key.substr(0, brace);
  Labels labels;
  std::string body = key.substr(brace + 1, key.size() - brace - 2);
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    std::string item = body.substr(pos, comma - pos);
    auto eq = item.find('=');
    if (eq != std::string::npos) labels[item.substr(0, eq)] = item.substr(eq + 1);
    pos = comma + 1;
  }
  return {std::move(name), std::move(labels)};
}

}  // namespace

Snapshot MetricsRegistry::snapshot() const {
  Snapshot out;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> g(sh.mu);
    for (const auto& [key, entry] : sh.entries) {
      MetricSample s;
      auto [name, labels] = parse_key(key);
      s.name = std::move(name);
      s.labels = std::move(labels);
      s.kind = entry.kind;
      switch (entry.kind) {
        case MetricSample::Kind::counter:
          s.value = static_cast<double>(entry.counter->value());
          break;
        case MetricSample::Kind::gauge:
          s.value = static_cast<double>(entry.gauge->value());
          break;
        case MetricSample::Kind::histogram: {
          const Histogram& h = *entry.histogram;
          s.hist_count = h.count();
          s.hist_sum = h.sum();
          for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
            std::uint64_t c = h.bucket_count(i);
            if (c != 0) {
              s.hist_buckets.emplace_back(Histogram::upper_bound(i), c);
              s.hist_exemplars.push_back(h.exemplar(i));
            }
          }
          break;
        }
      }
      out.samples.push_back(std::move(s));
    }
  }
  std::sort(out.samples.begin(), out.samples.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.key() < b.key(); });
  return out;
}

void MetricsRegistry::reset() {
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> g(sh.mu);
    for (auto& [_, entry] : sh.entries) {
      switch (entry.kind) {
        case MetricSample::Kind::counter: entry.counter->reset(); break;
        case MetricSample::Kind::gauge: entry.gauge->reset(); break;
        case MetricSample::Kind::histogram: entry.histogram->reset(); break;
      }
    }
  }
}

std::size_t MetricsRegistry::instrument_count() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> g(sh.mu);
    n += sh.entries.size();
  }
  return n;
}

// --- exporters --------------------------------------------------------------

namespace {

// Fixed-notation formatting without trailing zeros; integers print bare.
std::string fmt_num(double v) {
  if (std::isinf(v)) return v > 0 ? "\"+inf\"" : "\"-inf\"";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

void json_escape(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

void append_name_labels(std::string& out, const MetricSample& s) {
  out += "\"name\":\"";
  json_escape(out, s.name);
  out += "\",\"labels\":{";
  bool first = true;
  for (const auto& [k, v] : s.labels) {
    if (!first) out += ',';
    first = false;
    out += '"';
    json_escape(out, k);
    out += "\":\"";
    json_escape(out, v);
    out += '"';
  }
  out += '}';
}

}  // namespace

std::string to_table(const Snapshot& snap) {
  std::size_t width = 4;
  for (const MetricSample& s : snap.samples) width = std::max(width, s.key().size());
  std::ostringstream os;
  char line[256];
  for (const MetricSample& s : snap.samples) {
    switch (s.kind) {
      case MetricSample::Kind::counter:
      case MetricSample::Kind::gauge:
        std::snprintf(line, sizeof line, "  %-*s %16.0f\n", static_cast<int>(width),
                      s.key().c_str(), s.value);
        break;
      case MetricSample::Kind::histogram:
        std::snprintf(line, sizeof line,
                      "  %-*s count=%llu mean=%.1f sum=%.0f buckets=%zu\n",
                      static_cast<int>(width), s.key().c_str(),
                      static_cast<unsigned long long>(s.hist_count),
                      s.hist_count ? s.hist_sum / static_cast<double>(s.hist_count) : 0.0,
                      s.hist_sum, s.hist_buckets.size());
        break;
    }
    os << line;
  }
  return os.str();
}

std::string to_json(const Snapshot& snap) {
  std::string out = "{\n\"counters\":[";
  bool first = true;
  for (const MetricSample& s : snap.samples) {
    if (s.kind != MetricSample::Kind::counter) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += '{';
    append_name_labels(out, s);
    out += ",\"value\":" + fmt_num(s.value) + '}';
  }
  out += "\n],\n\"gauges\":[";
  first = true;
  for (const MetricSample& s : snap.samples) {
    if (s.kind != MetricSample::Kind::gauge) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += '{';
    append_name_labels(out, s);
    out += ",\"value\":" + fmt_num(s.value) + '}';
  }
  out += "\n],\n\"histograms\":[";
  first = true;
  for (const MetricSample& s : snap.samples) {
    if (s.kind != MetricSample::Kind::histogram) continue;
    out += first ? "\n" : ",\n";
    first = false;
    out += '{';
    append_name_labels(out, s);
    out += ",\"count\":" + fmt_num(static_cast<double>(s.hist_count));
    out += ",\"sum\":" + fmt_num(s.hist_sum);
    out += ",\"buckets\":[";
    for (std::size_t i = 0; i < s.hist_buckets.size(); ++i) {
      const auto& [le, c] = s.hist_buckets[i];
      if (i != 0) out += ',';
      out += "{\"le\":" + fmt_num(le) + ",\"count\":" + fmt_num(static_cast<double>(c));
      if (i < s.hist_exemplars.size() && s.hist_exemplars[i] != 0) {
        out += ",\"exemplar\":" + std::to_string(s.hist_exemplars[i]);
      }
      out += '}';
    }
    out += "]}";
  }
  out += "\n]\n}\n";
  return out;
}

bool write_json_file(const std::string& path) {
  std::string body = to_json(MetricsRegistry::global().snapshot());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    WDOC_ERROR("metrics: cannot open %s", path.c_str());
    return false;
  }
  bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) WDOC_ERROR("metrics: short write to %s", path.c_str());
  return ok;
}

std::string metrics_json_arg(int& argc, char** argv, bool strip) {
  constexpr std::string_view kFlag = "--metrics-json=";
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind(kFlag, 0) == 0) {
      path = std::string(arg.substr(kFlag.size()));
      if (strip) continue;
    }
    argv[out++] = argv[i];
  }
  if (strip) argc = out;
  return path;
}

}  // namespace wdoc::obs

#include "obs/request_trace.hpp"

#include <chrono>

#include "obs/metrics.hpp"

namespace wdoc::obs {

namespace {

struct TraceMetrics {
  Counter& requests;
  Counter& promoted_head;
  Counter& promoted_error;
  Counter& promoted_tail;
  Counter& discarded;
  Counter& provisional_dropped;

  static TraceMetrics& get() {
    static TraceMetrics* m = [] {
      auto& reg = MetricsRegistry::global();
      return new TraceMetrics{
          reg.counter("obs.trace.requests"),
          reg.counter("obs.trace.promoted", {{"reason", "head"}}),
          reg.counter("obs.trace.promoted", {{"reason", "error"}}),
          reg.counter("obs.trace.promoted", {{"reason", "tail_latency"}}),
          reg.counter("obs.trace.discarded"),
          reg.counter("obs.trace.provisional_dropped"),
      };
    }();
    return *m;
  }
};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// The provisional buffer for the request currently open on this thread.
struct ThreadState {
  TraceContext ctx;             // ambient; ctx.span_id is the current parent
  std::uint64_t root_span = 0;  // buffer index 0 when active
  std::vector<SpanRecord> spans;
  std::uint64_t overflow = 0;

  void reset() {
    ctx = {};
    root_span = 0;
    spans.clear();
    overflow = 0;
  }
};

thread_local ThreadState t_state;

SpanRecord* find_span(std::vector<SpanRecord>& spans, std::uint64_t id) {
  for (auto it = spans.rbegin(); it != spans.rend(); ++it) {
    if (it->id == id) return &*it;
  }
  return nullptr;
}

}  // namespace

RequestTracer& RequestTracer::global() {
  static RequestTracer* t = new RequestTracer();  // never destroyed
  return *t;
}

void RequestTracer::configure(const RequestTraceConfig& cfg) {
  std::lock_guard<std::mutex> g(mu_);
  cfg_ = cfg;
  next_trace_.store(0, std::memory_order_relaxed);
}

RequestTraceConfig RequestTracer::config() const {
  std::lock_guard<std::mutex> g(mu_);
  return cfg_;
}

TraceContext RequestTracer::mint() {
  RequestTraceConfig cfg = config();
  if (!cfg.enabled) return {};
  const std::uint64_t n = next_trace_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::uint64_t id = splitmix64(cfg.seed * 0x2545f4914f6cdd1dULL + n);
  if (id == 0) id = 1;
  return TraceContext{id, 0, head_sampled(id)};
}

bool RequestTracer::head_sampled(std::uint64_t trace_id) const {
  RequestTraceConfig cfg = config();
  double rate = cfg.head_sample_rate;
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  const auto threshold =
      static_cast<std::uint64_t>(rate * 4294967296.0);  // rate * 2^32
  const std::uint64_t coin =
      splitmix64(trace_id ^ cfg.seed ^ 0x5a17b3c9d02e8f4bULL) & 0xffffffffULL;
  return coin < threshold;
}

TraceContext RequestTracer::start_request(std::string name, SimTime at,
                                          std::uint64_t station) {
  ThreadState& t = t_state;
  t.reset();  // a leaked previous request is discarded wholesale
  TraceContext ctx = mint();
  if (!ctx.active()) return ctx;
  SpanRecord root;
  root.id = Tracer::allocate_id();
  root.trace_id = ctx.trace_id;
  root.parent = 0;
  root.station = station;
  root.name = std::move(name);
  root.start = at;
  root.end = at;
  t.spans.push_back(std::move(root));
  ctx.span_id = t.spans.front().id;
  t.ctx = ctx;
  t.root_span = ctx.span_id;
  return ctx;
}

bool RequestTracer::finish_request(const TraceContext& ctx, SimTime at, bool error) {
  ThreadState& t = t_state;
  if (!ctx.active() || t.ctx.trace_id != ctx.trace_id || t.spans.empty()) {
    t.reset();
    return false;
  }
  SpanRecord& root = t.spans.front();
  root.end = at;
  root.finished = true;
  const std::int64_t latency = (at - root.start).as_micros();

  RequestTraceConfig cfg = config();
  auto& m = TraceMetrics::get();
  m.requests.inc();
  if (t.overflow != 0) m.provisional_dropped.inc(t.overflow);

  // Head wins the tie so the head-sampled count is a pure function of the
  // request count and seed — CI holds it to an exact baseline value even
  // though tail promotions vary with machine timing.
  Counter* reason = nullptr;
  if (ctx.sampled) {
    reason = &m.promoted_head;
  } else if (error) {
    reason = &m.promoted_error;
  } else if (latency >= cfg.tail_latency_micros) {
    reason = &m.promoted_tail;
  }
  bool promoted = reason != nullptr;
  if (promoted) {
    reason->inc();
    Tracer::global().adopt(std::move(t.spans));
  } else {
    m.discarded.inc();
  }
  t.reset();
  return promoted;
}

TraceContext RequestTracer::current() { return t_state.ctx; }

std::uint64_t RequestTracer::begin_span(std::string name, SimTime at) {
  ThreadState& t = t_state;
  if (!t.ctx.active()) return 0;
  if (t.spans.size() >= config().max_spans_per_request) {
    ++t.overflow;
    return 0;
  }
  SpanRecord rec;
  rec.id = Tracer::allocate_id();
  rec.trace_id = t.ctx.trace_id;
  rec.parent = t.ctx.span_id;
  rec.station = t.spans.front().station;
  rec.name = std::move(name);
  rec.start = at;
  rec.end = at;
  t.spans.push_back(std::move(rec));
  return t.spans.back().id;
}

void RequestTracer::end_span(std::uint64_t span_id, SimTime at) {
  if (span_id == 0) return;
  ThreadState& t = t_state;
  SpanRecord* rec = find_span(t.spans, span_id);
  if (rec == nullptr) return;
  rec->end = at;
  rec->finished = true;
}

// --- SpanScope ---------------------------------------------------------------

SimTime SpanScope::wall_now() {
  static const auto t0 = std::chrono::steady_clock::now();
  return SimTime::micros(std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - t0)
                             .count());
}

SpanScope::SpanScope(std::string name) : SpanScope(std::move(name), wall_now()) {}

SpanScope::SpanScope(std::string name, SimTime start) {
  span_id_ = RequestTracer::global().begin_span(std::move(name), start);
  // Children opened while this scope lives nest under it.
  if (span_id_ != 0) t_state.ctx.span_id = span_id_;
}

void SpanScope::end(SimTime at) {
  if (span_id_ == 0) return;
  ThreadState& t = t_state;
  RequestTracer::global().end_span(span_id_, at);
  // Restore the parent chain if this scope is still the current parent.
  if (t.ctx.span_id == span_id_) {
    SpanRecord* rec = find_span(t.spans, span_id_);
    t.ctx.span_id = rec != nullptr ? rec->parent : t.root_span;
  }
  span_id_ = 0;
}

SpanScope::~SpanScope() { end(wall_now()); }

}  // namespace wdoc::obs

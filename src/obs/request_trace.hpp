// wdoc_obs — per-request tracing with head sampling and tail-based capture.
//
// The edge (the HTTP gateway) mints one TraceContext per request. The
// request's spans are provisionally buffered in a bounded per-thread ring —
// never in the durable Tracer — and the whole buffer is promoted at request
// end only if the request
//   * won the deterministic head-sampling coin (a seed-stable function of
//     the trace id, so same-seed runs promote the same trace set),
//   * errored (5xx at the edge), or
//   * exceeded the tail-latency threshold.
// Everything else is discarded wholesale. Slow and failed requests are
// therefore ALWAYS fully traced, at any request rate, while the steady
// state pays only the head-sample rate in durable-buffer space.
//
// Sampling state machine per request:
//
//   start_request ──▶ buffering (thread-local ring, real span ids)
//        │ finish_request(at, error)
//        ▼
//   promote?  head-sampled ──────────────▶ adopt() into Tracer  [reason=head]
//             error ─────────────────────▶ adopt()              [reason=error]
//             latency >= tail threshold ─▶ adopt()              [reason=tail_latency]
//             otherwise ─────────────────▶ discard (counted)
//
// A request is handled start-to-finish by one thread (the HTTP server's
// worker-owns-connection model), so the ambient context is thread-local:
// deep layers (federated search, the storage/txn path) attach spans with a
// SpanScope and never thread a context through their signatures. Remote
// stations join a trace via the wire fields on net::Message instead.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/sim_time.hpp"
#include "obs/trace.hpp"

namespace wdoc::obs {

struct RequestTraceConfig {
  bool enabled = true;
  // Probability a request is head-sampled. The coin is a pure function of
  // (trace_id, seed), so the promoted set is deterministic per seed.
  double head_sample_rate = 0.01;
  // Requests at least this slow are promoted even when not head-sampled.
  std::int64_t tail_latency_micros = 20'000;
  std::uint64_t seed = 0x7ace;
  // Bound on the provisional per-request buffer; spans past it are counted
  // in obs.trace.provisional_dropped and not recorded.
  std::size_t max_spans_per_request = 128;
};

class RequestTracer {
 public:
  [[nodiscard]] static RequestTracer& global();

  // Replaces the configuration and restarts trace-id minting from zero so
  // same-seed runs reproduce the same trace ids. Call at startup (the
  // gateway constructor does), not mid-traffic.
  void configure(const RequestTraceConfig& cfg);
  [[nodiscard]] RequestTraceConfig config() const;

  // Mints a context (deterministic trace id + head-sample verdict) without
  // opening a request on this thread. For initiators whose spans go
  // straight to the durable Tracer (the dist layer's pushes).
  [[nodiscard]] TraceContext mint();

  // Head-sample verdict for a given trace id under the current config —
  // exposed so tests and remote joiners can reproduce the coin.
  [[nodiscard]] bool head_sampled(std::uint64_t trace_id) const;

  // Opens a request on this thread: mints a context, begins the root span
  // in the provisional buffer, and installs the context as this thread's
  // ambient context. Returns an inactive context when disabled.
  [[nodiscard]] TraceContext start_request(std::string name, SimTime at,
                                           std::uint64_t station = 0);

  // Ends the root span and applies the promotion decision. Returns true if
  // the request's spans were adopted into the durable Tracer. Clears the
  // thread's ambient context either way.
  bool finish_request(const TraceContext& ctx, SimTime at, bool error);

  // This thread's ambient context: trace id + current parent span. Inactive
  // (trace_id 0) outside a start_request/finish_request window.
  [[nodiscard]] static TraceContext current();

  // Explicit span control under the ambient context, for call sites whose
  // lifetime does not nest lexically. Returns 0 when no request is active.
  [[nodiscard]] std::uint64_t begin_span(std::string name, SimTime at);
  void end_span(std::uint64_t span_id, SimTime at);

 private:
  friend class SpanScope;

  mutable std::mutex mu_;  // guards cfg_ swaps only; hot paths read a copy
  RequestTraceConfig cfg_;
  std::atomic<std::uint64_t> next_trace_{0};
};

// RAII provisional span under this thread's ambient request context. A
// no-op when no request is active, so deep layers can use it
// unconditionally. Times default to a monotonic wall clock (micros since
// the first use in the process); pass explicit SimTimes for deterministic
// tests.
class SpanScope {
 public:
  explicit SpanScope(std::string name);
  SpanScope(std::string name, SimTime start);
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  // Ends the span early at `at`; the destructor then does nothing.
  void end(SimTime at);

  [[nodiscard]] bool active() const { return span_id_ != 0; }

  // Monotonic wall clock: microseconds since first call in this process.
  [[nodiscard]] static SimTime wall_now();

 private:
  std::uint64_t span_id_ = 0;
};

}  // namespace wdoc::obs

#include "obs/slo.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "obs/flight_recorder.hpp"

namespace wdoc::obs {

namespace {

// Live-engine registry backing dump_all(). Engines register for their
// lifetime; dump_all snapshots whatever exists when a failure artifact is
// being written.
std::mutex g_engines_mu;
std::set<const SloEngine*>& engines() {
  static auto* s = new std::set<const SloEngine*>();
  return *s;
}

double burn_rate(double bad_fraction, double target) {
  const double budget = std::max(1e-9, 1.0 - target);
  return bad_fraction / budget;
}

}  // namespace

struct SloEngine::Tracked {
  SloObjective o;
  Counter* fast_alerts = nullptr;  // obs.slo.alerts{slo=,severity=fast}
  Counter* slow_alerts = nullptr;
  bool fast_active = false;  // latch: fire only on rising edge
  bool slow_active = false;

  struct Point {
    std::uint64_t good = 0;
    std::uint64_t total = 0;
  };
  // Ring of cumulative points, capacity long_evals + 1 so a delta over the
  // full long window needs exactly the oldest retained point.
  std::vector<Point> ring;
  std::size_t next = 0;   // write position
  std::size_t count = 0;  // points retained (saturates at ring.size())

  // Cumulative point `back` evaluations before the most recent one. A
  // window reaching past recorded history resolves to the implicit zero
  // origin, i.e. "everything since the engine started" — so the very first
  // evaluation already sees a meaningful window instead of an empty delta.
  [[nodiscard]] Point at(std::size_t back) const {
    if (count == 0 || back >= count) return {};
    const std::size_t latest = (next + ring.size() - 1) % ring.size();
    return ring[(latest + ring.size() - back) % ring.size()];
  }
};

SloEngine::SloEngine(SloWindows windows) : windows_(windows) {
  windows_.short_evals = std::max<std::size_t>(1, windows_.short_evals);
  windows_.long_evals = std::max(windows_.short_evals, windows_.long_evals);
  std::lock_guard<std::mutex> g(g_engines_mu);
  engines().insert(this);
}

SloEngine::~SloEngine() {
  std::lock_guard<std::mutex> g(g_engines_mu);
  engines().erase(this);
}

void SloEngine::add(SloObjective objective) {
  auto t = std::make_unique<Tracked>();
  auto& reg = MetricsRegistry::global();
  t->fast_alerts = &reg.counter(
      "obs.slo.alerts", {{"slo", objective.name}, {"severity", "fast"}});
  t->slow_alerts = &reg.counter(
      "obs.slo.alerts", {{"slo", objective.name}, {"severity", "slow"}});
  t->o = std::move(objective);
  t->ring.resize(windows_.long_evals + 1);
  std::lock_guard<std::mutex> g(mu_);
  tracked_.push_back(std::move(t));
}

std::uint64_t SloEngine::good_count(const SloObjective& o) {
  switch (o.kind) {
    case SloObjective::Kind::latency: {
      if (o.histogram == nullptr) return 0;
      std::uint64_t good = 0;
      for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
        if (Histogram::upper_bound(i) > static_cast<double>(o.threshold_micros))
          break;
        good += o.histogram->bucket_count(i);
      }
      return good;
    }
    case SloObjective::Kind::availability: {
      const std::uint64_t total = o.total != nullptr ? o.total->value() : 0;
      const std::uint64_t bad = o.bad != nullptr ? o.bad->value() : 0;
      return total > bad ? total - bad : 0;
    }
  }
  return 0;
}

std::uint64_t SloEngine::total_count(const SloObjective& o) {
  switch (o.kind) {
    case SloObjective::Kind::latency:
      return o.histogram != nullptr ? o.histogram->count() : 0;
    case SloObjective::Kind::availability:
      return o.total != nullptr ? o.total->value() : 0;
  }
  return 0;
}

std::vector<SloStatus> SloEngine::evaluate(SimTime now) {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<SloStatus> out;
  out.reserve(tracked_.size());
  for (auto& tp : tracked_) {
    Tracked& t = *tp;

    Tracked::Point p;
    p.total = total_count(t.o);
    // The instruments are independent atomics, so a sample taken
    // mid-observation can transiently show good > total; clamp rather than
    // report a >100% ratio.
    p.good = std::min(good_count(t.o), p.total);
    t.ring[t.next] = p;
    t.next = (t.next + 1) % t.ring.size();
    t.count = std::min(t.count + 1, t.ring.size());

    auto window_ratio = [&](std::size_t evals, std::uint64_t* events) -> double {
      const Tracked::Point then = t.at(evals);
      const std::uint64_t total = p.total - then.total;
      const std::uint64_t good = p.good - then.good;
      if (events != nullptr) *events = total;
      return total == 0 ? 1.0 : static_cast<double>(good) / static_cast<double>(total);
    };

    SloStatus s;
    s.name = t.o.name;
    s.target = t.o.target;
    s.short_ratio = window_ratio(windows_.short_evals, nullptr);
    s.long_ratio = window_ratio(windows_.long_evals, &s.window_total);
    s.short_burn = burn_rate(1.0 - s.short_ratio, t.o.target);
    s.long_burn = burn_rate(1.0 - s.long_ratio, t.o.target);

    // Slow severity confirms over half the long window; see slo.hpp.
    const std::size_t slow_short =
        std::max<std::size_t>(windows_.short_evals, windows_.long_evals / 2);
    const double slow_short_burn =
        burn_rate(1.0 - window_ratio(slow_short, nullptr), t.o.target);

    s.fast_alert =
        s.short_burn >= windows_.fast_burn && s.long_burn >= windows_.fast_burn;
    s.slow_alert =
        slow_short_burn >= windows_.slow_burn && s.long_burn >= windows_.slow_burn;

    auto transition = [&](bool active, bool& latch, Counter* counter,
                          const char* severity, double burn) {
      if (active == latch) return;
      latch = active;
      if (active) counter->inc();
      char buf[160];
      std::snprintf(buf, sizeof buf, "%s %s severity=%s burn=%.2f target=%g",
                    t.o.name.c_str(), active ? "FIRING" : "cleared", severity,
                    burn, t.o.target);
      FlightRecorder::global().record(FlightKind::slo_burn, buf, 0, 0, now);
    };
    transition(s.fast_alert, t.fast_active, t.fast_alerts, "fast", s.short_burn);
    transition(s.slow_alert, t.slow_active, t.slow_alerts, "slow", s.long_burn);

    out.push_back(std::move(s));
  }
  last_ = out;
  return out;
}

std::vector<SloStatus> SloEngine::status() const {
  std::lock_guard<std::mutex> g(mu_);
  return last_;
}

std::string SloEngine::to_json() const {
  std::lock_guard<std::mutex> g(mu_);
  char buf[256];
  std::string out = "{\"windows\":{";
  std::snprintf(buf, sizeof buf,
                "\"eval_period_micros\":%lld,\"short_evals\":%zu,"
                "\"long_evals\":%zu,\"fast_burn\":%g,\"slow_burn\":%g},",
                static_cast<long long>(windows_.eval_period_micros),
                windows_.short_evals, windows_.long_evals, windows_.fast_burn,
                windows_.slow_burn);
  out += buf;
  out += "\"objectives\":[";
  for (std::size_t i = 0; i < last_.size(); ++i) {
    const SloStatus& s = last_[i];
    if (i != 0) out += ',';
    out += "{\"name\":\"";
    out += s.name;
    std::snprintf(buf, sizeof buf,
                  "\",\"target\":%g,\"short_ratio\":%.6f,\"long_ratio\":%.6f,"
                  "\"short_burn\":%.3f,\"long_burn\":%.3f,\"window_total\":%llu,"
                  "\"fast_alert\":%s,\"slow_alert\":%s}",
                  s.target, s.short_ratio, s.long_ratio, s.short_burn,
                  s.long_burn, static_cast<unsigned long long>(s.window_total),
                  s.fast_alert ? "true" : "false",
                  s.slow_alert ? "true" : "false");
    out += buf;
  }
  out += "]}";
  return out;
}

std::string SloEngine::dump_all() {
  std::lock_guard<std::mutex> g(g_engines_mu);
  std::string out;
  for (const SloEngine* e : engines()) {
    out += e->to_json();
    out += '\n';
  }
  return out;
}

}  // namespace wdoc::obs

#include "obs/trace.hpp"

#include <cstdio>

#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace wdoc::obs {

namespace {

// Shared by every begin() and by provisional request buffers, so a span id
// is unique process-wide no matter which path recorded it.
std::atomic<std::uint64_t> g_next_span_id{0};

}  // namespace

std::uint64_t derive_trace_id(std::uint64_t key) {
  // splitmix64 finalizer.
  std::uint64_t x = key + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

Tracer& Tracer::global() {
  static Tracer* t = new Tracer();  // never destroyed
  return *t;
}

std::uint64_t Tracer::allocate_id() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed) + 1;
}

void Tracer::note_drop_locked(std::size_t n) {
  const bool first = dropped_ == 0;
  dropped_ += n;
  MetricsRegistry::global().counter("obs.trace.dropped").inc(n);
  if (first) {
    WDOC_WARN("tracer: span buffer full (%zu spans); dropping new spans "
              "(counted in obs.trace.dropped) until drain()/clear()",
              kMaxSpans);
  }
}

std::uint64_t Tracer::begin(std::string name, std::uint64_t parent, SimTime at,
                            std::uint64_t station, std::uint64_t trace_id) {
  if (!enabled()) return 0;
  std::uint64_t id = allocate_id();
  std::lock_guard<std::mutex> g(mu_);
  if (spans_.size() >= kMaxSpans) {
    note_drop_locked(1);
    return 0;
  }
  SpanRecord rec;
  rec.id = id;
  rec.trace_id = trace_id;
  rec.parent = parent;
  rec.station = station;
  rec.name = std::move(name);
  rec.start = at;
  rec.end = at;
  index_.emplace(id, spans_.size());
  spans_.push_back(std::move(rec));
  return id;
}

void Tracer::end(std::uint64_t id, SimTime at) {
  if (id == 0) return;
  std::lock_guard<std::mutex> g(mu_);
  // Ids drained or cleared away are no longer in the index and are ignored.
  auto it = index_.find(id);
  if (it == index_.end()) return;
  SpanRecord& rec = spans_[it->second];
  rec.end = at;
  rec.finished = true;
}

std::size_t Tracer::adopt(std::vector<SpanRecord> records) {
  std::lock_guard<std::mutex> g(mu_);
  std::size_t kept = 0;
  for (SpanRecord& rec : records) {
    if (spans_.size() >= kMaxSpans) {
      note_drop_locked(records.size() - kept);
      break;
    }
    index_.emplace(rec.id, spans_.size());
    spans_.push_back(std::move(rec));
    ++kept;
  }
  return kept;
}

std::vector<SpanRecord> Tracer::spans() const {
  std::lock_guard<std::mutex> g(mu_);
  return spans_;
}

std::vector<SpanRecord> Tracer::drain() {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<SpanRecord> out = std::move(spans_);
  spans_ = {};
  index_.clear();
  dropped_ = 0;
  return out;
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return spans_.size();
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> g(mu_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> g(mu_);
  spans_.clear();
  index_.clear();
  dropped_ = 0;
}

std::string Tracer::to_json() const {
  std::vector<SpanRecord> snap = spans();
  std::string out = "[";
  char buf[192];
  for (std::size_t i = 0; i < snap.size(); ++i) {
    const SpanRecord& s = snap[i];
    std::string name;
    for (char c : s.name) {
      if (c == '"' || c == '\\') name += '\\';
      name += c;
    }
    std::snprintf(buf, sizeof buf,
                  "%s\n{\"id\":%llu,\"trace\":%llu,\"parent\":%llu,\"station\":%llu,"
                  "\"name\":\"%s\",\"start_us\":%lld,\"end_us\":%lld,\"finished\":%s}",
                  i == 0 ? "" : ",", static_cast<unsigned long long>(s.id),
                  static_cast<unsigned long long>(s.trace_id),
                  static_cast<unsigned long long>(s.parent),
                  static_cast<unsigned long long>(s.station), name.c_str(),
                  static_cast<long long>(s.start.as_micros()),
                  static_cast<long long>(s.end.as_micros()),
                  s.finished ? "true" : "false");
    out += buf;
  }
  out += "\n]\n";
  return out;
}

}  // namespace wdoc::obs

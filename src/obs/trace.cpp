#include "obs/trace.hpp"

#include <cstdio>

namespace wdoc::obs {

Tracer& Tracer::global() {
  static Tracer* t = new Tracer();  // never destroyed
  return *t;
}

std::uint64_t Tracer::begin(std::string name, std::uint64_t parent, SimTime at,
                            std::uint64_t station) {
  if (!enabled_) return 0;
  std::lock_guard<std::mutex> g(mu_);
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return 0;
  }
  SpanRecord rec;
  rec.id = ++next_id_;
  rec.parent = parent;
  rec.station = station;
  rec.name = std::move(name);
  rec.start = at;
  rec.end = at;
  spans_.push_back(std::move(rec));
  return spans_.back().id;
}

void Tracer::end(std::uint64_t id, SimTime at) {
  if (id == 0) return;
  std::lock_guard<std::mutex> g(mu_);
  // Ids are dense and assigned in record order: span `id` lives at index
  // id - (next_id_ - spans_.size()) - 1. Ids from before a clear() fall
  // outside the window and are ignored.
  std::uint64_t base = next_id_ - spans_.size();
  if (id <= base || id > next_id_) return;
  SpanRecord& rec = spans_[id - base - 1];
  rec.end = at;
  rec.finished = true;
}

std::vector<SpanRecord> Tracer::spans() const {
  std::lock_guard<std::mutex> g(mu_);
  return spans_;
}

std::vector<SpanRecord> Tracer::drain() {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<SpanRecord> out = std::move(spans_);
  spans_ = {};
  // next_id_ keeps counting: the id-window arithmetic in end() then treats
  // drained ids like pre-clear() ids and ignores them.
  dropped_ = 0;
  return out;
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return spans_.size();
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> g(mu_);
  return dropped_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> g(mu_);
  spans_.clear();
  dropped_ = 0;
}

std::string Tracer::to_json() const {
  std::vector<SpanRecord> snap = spans();
  std::string out = "[";
  char buf[160];
  for (std::size_t i = 0; i < snap.size(); ++i) {
    const SpanRecord& s = snap[i];
    std::string name;
    for (char c : s.name) {
      if (c == '"' || c == '\\') name += '\\';
      name += c;
    }
    std::snprintf(buf, sizeof buf,
                  "%s\n{\"id\":%llu,\"parent\":%llu,\"station\":%llu,\"name\":\"%s\","
                  "\"start_us\":%lld,\"end_us\":%lld,\"finished\":%s}",
                  i == 0 ? "" : ",", static_cast<unsigned long long>(s.id),
                  static_cast<unsigned long long>(s.parent),
                  static_cast<unsigned long long>(s.station), name.c_str(),
                  static_cast<long long>(s.start.as_micros()),
                  static_cast<long long>(s.end.as_micros()),
                  s.finished ? "true" : "false");
    out += buf;
  }
  out += "\n]\n";
  return out;
}

}  // namespace wdoc::obs

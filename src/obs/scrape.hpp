// wdoc_obs — cluster scrape support: snapshot wire format and merging.
//
// A metrics Snapshot travels the fabric as a length-prefixed sample list
// (obs.scrape_rsp payload). Stations tag their samples with a `station`
// label before replying, and intermediate tree nodes merge child responses
// into their own on the way back up, so the root (or the class
// administrator) ends up holding one cluster-wide snapshot whose shape is
// identical to a local MetricsRegistry::snapshot() — the existing text
// table / stable JSON exporters apply unchanged.
#pragma once

#include "common/serialize.hpp"
#include "obs/metrics.hpp"

namespace wdoc::obs {

// Appends every sample to `w`. Inverse of decode_snapshot.
void encode_snapshot(Writer& w, const Snapshot& snap);
[[nodiscard]] Bytes encode_snapshot(const Snapshot& snap);
[[nodiscard]] Result<Snapshot> decode_snapshot(Reader& r);
[[nodiscard]] Result<Snapshot> decode_snapshot(const Bytes& b);

// Returns a copy of `snap` with `key=value` added to every sample's label
// set (existing values for `key` are overwritten). Samples stay sorted.
[[nodiscard]] Snapshot with_label(const Snapshot& snap, const std::string& key,
                                  const std::string& value);

// Hierarchical aggregation: folds `src` into `dst`. Samples with the same
// (name, labels) key combine — counters and gauges add, histograms add
// their counts/sums/buckets; samples unique to either side pass through.
// Keys keep their sorted order, so merged snapshots export byte-stably.
void merge_snapshot(Snapshot& dst, const Snapshot& src);

// Sum of `name` counter values across all label sets in `snap` (0 when
// absent). Convenience for tests and summaries over per-station samples.
[[nodiscard]] double counter_total(const Snapshot& snap, std::string_view name);

}  // namespace wdoc::obs

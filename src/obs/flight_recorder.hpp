// wdoc_obs — flight recorder: a bounded, mutex-sharded ring buffer of
// structured incident events.
//
// Where metrics answer "how many" and spans answer "how long", the flight
// recorder answers "what exactly happened just before things went wrong":
// deadlock victims, lock waits over threshold, watermark replication
// decisions, post-lecture migration, anti-entropy repair. Recording is a
// short critical section on one of kShards mutexes (sharded by a global
// sequence counter, so concurrent writers rarely contend); the buffer is
// bounded at kCapacity events per shard and overwrites the oldest, so it
// can stay on in month-long benches.
//
// dump() renders the merged, sequence-ordered event log as text. Tests dump
// it automatically on failure (see tests/wdoc_gtest_main.cpp) and benches
// on unhandled exceptions, so a C4–C6 incident is reconstructible from the
// failing run's output alone.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/sim_time.hpp"

namespace wdoc::obs {

enum class FlightKind : std::uint8_t {
  deadlock = 0,        // txn chosen as deadlock victim
  lock_wait,           // lock wait past threshold / timeout
  lock_conflict,       // hierarchy-lock refusal (paper's table said no)
  replication,         // watermark hit: document materialized locally
  migration,           // ephemeral instance demoted back to a reference
  repair,              // anti-entropy pull for a station the push missed
  scrape,              // cluster scrape fan-out/merge activity
  fault,               // injected fault transition (crash, partition, burst)
  rpc_exhausted,       // rpc delivered a terminal error (timeout/unreachable)
  failover,            // peer declared dead / subtree reparented / resurrected
  slo_burn,            // SLO burn-rate alert fired or cleared
  custom,              // anything else worth a post-mortem line
};

[[nodiscard]] const char* flight_kind_name(FlightKind k);

struct FlightEvent {
  std::uint64_t seq = 0;     // global order across shards
  SimTime at;                // fabric time when known, zero otherwise
  FlightKind kind = FlightKind::custom;
  std::uint64_t station = 0;  // recording station (0 = process-level event)
  std::uint64_t actor = 0;    // txn / user id when applicable
  std::string detail;         // human-readable specifics ("doc X, count 4/4")
};

class FlightRecorder {
 public:
  static constexpr std::size_t kShards = 8;
  static constexpr std::size_t kCapacity = 512;  // events per shard

  [[nodiscard]] static FlightRecorder& global();

  void record(FlightKind kind, std::string detail, std::uint64_t station = 0,
              std::uint64_t actor = 0, SimTime at = SimTime::zero());

  // All retained events, oldest first (global sequence order).
  [[nodiscard]] std::vector<FlightEvent> events() const;
  // Total events ever recorded (including ones the ring overwrote).
  [[nodiscard]] std::uint64_t recorded() const {
    return next_seq_.load(std::memory_order_relaxed);
  }
  void clear();

  // Text rendering of events(), one line per event:
  //   [seq] t=<time> <kind> station=<id> actor=<id> <detail>
  [[nodiscard]] std::string dump() const;
  // dump() to stderr with a banner; no-op when empty. Wired into test and
  // bench failure paths.
  void dump_to_stderr(const char* banner) const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::vector<FlightEvent> ring;  // capacity kCapacity, wrap by write_pos
    std::size_t write_pos = 0;
  };

  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> next_seq_{0};
};

}  // namespace wdoc::obs

// wdoc_obs — Chrome trace-event ("Perfetto") export of Tracer spans.
//
// Emits the JSON object format understood by ui.perfetto.dev and
// chrome://tracing: {"traceEvents":[...], "displayTimeUnit":"ms"}. Each
// finished span becomes one complete event (ph "X") with pid mapped to the
// recording station id and tid to the span's root id, so a lecture push
// renders as one track per station with the hop chain nested under the
// instructor's root span. Unfinished spans are exported explicitly as
// instant events (ph "i") carrying "finished":false — never as a zero-width
// "X" that would masquerade as an instantaneous completed span.
//
// Output is a pure function of the span list (sorted by id, fixed field
// order), so a deterministic SimNetwork run exports byte-identical JSON.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace wdoc::obs {

// Chrome trace-event JSON for the given spans. Spans belonging to an
// end-to-end trace carry a "trace" arg (the trace id), so one slow request
// is recoverable by searching the export for its id.
[[nodiscard]] std::string to_chrome_trace(const std::vector<SpanRecord>& spans);

// Same, plus one instant event per histogram-bucket exemplar in `snap`
// (name "exemplar:<metric key>", args: le / count / trace id) — the link
// from a fat latency bucket to the concrete promoted trace behind it.
[[nodiscard]] std::string to_chrome_trace(const std::vector<SpanRecord>& spans,
                                          const Snapshot& snap);

// Drains the global tracer, snapshots the global registry for exemplars,
// and writes to_chrome_trace() to `path`. Returns false (and logs) on I/O
// failure.
bool write_trace_file(const std::string& path);

// Scans argv for "--trace-json=<path>" and returns the path (empty if
// absent), stripping the flag like metrics_json_arg does. When the flag is
// present the global tracer is enabled as a side effect, so callers need no
// separate set_enabled() dance.
[[nodiscard]] std::string trace_json_arg(int& argc, char** argv, bool strip = true);

}  // namespace wdoc::obs

// wdoc_obs — lightweight span tracer and trace identity.
//
// Spans are (id, trace, parent, name, start, end) records stamped with
// SimTime, so a trace is deterministic when the clock is SimNetwork::now()
// and wall-clock-since-start when it is ThreadTransport::now(). Parent ids
// may come from another station's span (they travel in net::Message::
// trace_parent, next to the trace id in net::Message::trace_id), which lets
// a trace follow one lecture push — or one HTTP request — across every
// station inside a single process, simulator or threads alike.
//
// A TraceContext names one end-to-end request: the trace id minted at the
// edge, the span currently acting as parent, and the head-sampling verdict.
// It is the unit that crosses layer and wire boundaries; see
// obs/request_trace.hpp for how contexts are minted and tail-sampled.
//
// The record buffer is bounded (kMaxSpans); past the cap new spans are
// counted as dropped (obs.trace.dropped, plus a one-shot warning log)
// rather than recorded, so long benches cannot grow memory without bound.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sim_time.hpp"

namespace wdoc::obs {

// Identity of one end-to-end request, minted at the edge and propagated
// through every layer it touches (gateway handlers, federated search, the
// storage/txn path) and across the wire (net::Message, RpcOptions).
struct TraceContext {
  std::uint64_t trace_id = 0;  // 0 = not part of any trace
  std::uint64_t span_id = 0;   // current parent span within the trace
  bool sampled = false;        // head-sampling verdict (travels on the wire)

  [[nodiscard]] bool active() const { return trace_id != 0; }
};

// Derives a trace id from an already-unique key (e.g. a dist-layer
// transfer id) via the splitmix64 finalizer. Deterministic and never 0, so
// same-seed simulator runs mint identical trace ids without any shared
// counter — the property test_scrape's byte-identical-export check relies
// on.
[[nodiscard]] std::uint64_t derive_trace_id(std::uint64_t key);

struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t trace_id = 0;  // 0 = legacy span outside any trace
  std::uint64_t parent = 0;   // 0 = root
  std::uint64_t station = 0;  // StationId of the recording node (0 = none)
  std::string name;
  SimTime start;
  SimTime end;
  bool finished = false;
};

class Tracer {
 public:
  static constexpr std::size_t kMaxSpans = 64 * 1024;

  [[nodiscard]] static Tracer& global();

  // Allocates a process-unique span id without recording anything. Used by
  // the request tracer's provisional buffers, so a provisionally-buffered
  // span keeps its id when it is later promoted via adopt() — remote spans
  // that parented on it over the wire still join up.
  [[nodiscard]] static std::uint64_t allocate_id();

  // Starts a span at `at`; returns its id (0 when tracing is disabled or
  // the buffer is full — end() on id 0 is a no-op). `station` stamps the
  // recording node so exporters can group spans per station; `trace_id`
  // ties the span to an end-to-end trace (0 = none).
  [[nodiscard]] std::uint64_t begin(std::string name, std::uint64_t parent, SimTime at,
                                    std::uint64_t station = 0, std::uint64_t trace_id = 0);
  void end(std::uint64_t id, SimTime at);

  // Appends already-finished records (ids pre-allocated via allocate_id())
  // — the promotion path of tail sampling. Ignores the enabled() gate: the
  // promotion decision was already made upstream. Records past kMaxSpans
  // are dropped and counted. Returns how many records were retained.
  std::size_t adopt(std::vector<SpanRecord> records);

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  [[nodiscard]] std::vector<SpanRecord> spans() const;
  // Moves the record buffer out (O(1), no copy under the mutex) and leaves
  // the tracer recording into a fresh buffer. Span ids keep counting up, so
  // end() on an id drained away is a no-op, like ids from before clear().
  [[nodiscard]] std::vector<SpanRecord> drain();
  [[nodiscard]] std::size_t span_count() const;
  [[nodiscard]] std::uint64_t dropped() const;
  void clear();

  // Stable JSON array of spans in id order.
  [[nodiscard]] std::string to_json() const;

 private:
  // Counts a capacity drop: bumps dropped_, the obs.trace.dropped counter,
  // and logs a one-shot warning. Caller holds mu_.
  void note_drop_locked(std::size_t n);

  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::unordered_map<std::uint64_t, std::size_t> index_;  // id -> spans_ index
  std::uint64_t dropped_ = 0;
  std::atomic<bool> enabled_{false};
};

}  // namespace wdoc::obs

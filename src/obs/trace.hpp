// wdoc_obs — lightweight span tracer.
//
// Spans are (id, parent, name, start, end) records stamped with SimTime, so
// a trace is deterministic when the clock is SimNetwork::now() and
// wall-clock-since-start when it is ThreadTransport::now(). Parent ids may
// come from another station's span (they travel in net::Message::
// trace_parent), which lets a trace follow one lecture push down the whole
// m-ary tree inside a single process — simulator or threads alike.
//
// The record buffer is bounded (kMaxSpans); past the cap new spans are
// counted as dropped rather than recorded, so long benches cannot grow
// memory without bound.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/sim_time.hpp"

namespace wdoc::obs {

struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root
  std::uint64_t station = 0;  // StationId of the recording node (0 = none)
  std::string name;
  SimTime start;
  SimTime end;
  bool finished = false;
};

class Tracer {
 public:
  static constexpr std::size_t kMaxSpans = 64 * 1024;

  [[nodiscard]] static Tracer& global();

  // Starts a span at `at`; returns its id (0 when tracing is disabled or
  // the buffer is full — end() on id 0 is a no-op). `station` stamps the
  // recording node so exporters can group spans per station.
  [[nodiscard]] std::uint64_t begin(std::string name, std::uint64_t parent, SimTime at,
                                    std::uint64_t station = 0);
  void end(std::uint64_t id, SimTime at);

  void set_enabled(bool on) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  [[nodiscard]] std::vector<SpanRecord> spans() const;
  // Moves the record buffer out (O(1), no copy under the mutex) and leaves
  // the tracer recording into a fresh buffer. Span ids keep counting up, so
  // end() on an id drained away is a no-op, like ids from before clear().
  [[nodiscard]] std::vector<SpanRecord> drain();
  [[nodiscard]] std::size_t span_count() const;
  [[nodiscard]] std::uint64_t dropped() const;
  void clear();

  // Stable JSON array of spans in id order.
  [[nodiscard]] std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::uint64_t next_id_ = 0;
  std::uint64_t dropped_ = 0;
  bool enabled_ = false;
};

}  // namespace wdoc::obs

#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "common/log.hpp"

namespace wdoc::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

void append_event_head(std::string& out, const char* ph, const std::string& name,
                       std::uint64_t pid, std::int64_t ts) {
  char buf[96];
  out += "{\"ph\":\"";
  out += ph;
  out += "\",\"name\":\"";
  append_escaped(out, name);
  // tid == pid: one timeline row per station; the simulator is single
  // threaded, so stations are the only concurrency axis worth a track.
  std::snprintf(buf, sizeof buf, "\",\"pid\":%llu,\"tid\":%llu,\"ts\":%lld",
                static_cast<unsigned long long>(pid),
                static_cast<unsigned long long>(pid), static_cast<long long>(ts));
  out += buf;
}

}  // namespace

std::string to_chrome_trace(const std::vector<SpanRecord>& spans) {
  std::vector<SpanRecord> sorted = spans;
  std::sort(sorted.begin(), sorted.end(),
            [](const SpanRecord& a, const SpanRecord& b) { return a.id < b.id; });
  std::map<std::uint64_t, const SpanRecord*> by_id;
  std::set<std::uint64_t> stations;
  for (const SpanRecord& s : sorted) {
    by_id[s.id] = &s;
    stations.insert(s.station);
  }
  // Ids are rebased so the first exported span is 1: the output depends
  // only on the drained spans themselves, never on how many spans the
  // global tracer recorded before them — identical runs export
  // byte-identical JSON. Parents outside this batch (drained earlier)
  // rebase to 0, i.e. root.
  const std::uint64_t base = sorted.empty() ? 0 : sorted.front().id - 1;
  auto rebase = [&](std::uint64_t id) -> std::uint64_t {
    return by_id.count(id) != 0 ? id - base : 0;
  };

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    out += first ? "\n" : ",\n";
    first = false;
  };

  // Process metadata: name each pid row after its station.
  for (std::uint64_t st : stations) {
    sep();
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%llu,\"tid\":%llu,"
                  "\"args\":{\"name\":\"station %llu\"}}",
                  static_cast<unsigned long long>(st),
                  static_cast<unsigned long long>(st),
                  static_cast<unsigned long long>(st));
    out += buf;
  }

  char buf[160];
  for (const SpanRecord& s : sorted) {
    sep();
    if (s.finished) {
      append_event_head(out, "X", s.name, s.station, s.start.as_micros());
      std::snprintf(buf, sizeof buf,
                    ",\"dur\":%lld,\"args\":{\"span\":%llu,\"parent\":%llu}}",
                    static_cast<long long>((s.end - s.start).as_micros()),
                    static_cast<unsigned long long>(s.id - base),
                    static_cast<unsigned long long>(rebase(s.parent)));
    } else {
      // Explicitly an instant: the span never ended (still open at export,
      // or its station died mid-operation) — flag it rather than faking a
      // zero-duration completed slice.
      append_event_head(out, "i", s.name, s.station, s.start.as_micros());
      std::snprintf(buf, sizeof buf,
                    ",\"s\":\"p\",\"args\":{\"span\":%llu,\"parent\":%llu,"
                    "\"finished\":false}}",
                    static_cast<unsigned long long>(s.id - base),
                    static_cast<unsigned long long>(rebase(s.parent)));
    }
    out += buf;

    // Cross-station parentage renders as a flow arrow from the parent's
    // slice to this one (one flow id per child span).
    auto pit = s.parent == 0 ? by_id.end() : by_id.find(s.parent);
    if (pit != by_id.end()) {
      const SpanRecord& p = *pit->second;
      sep();
      // The flow start must land inside the parent slice to bind to it, so
      // it is stamped at the parent's own start time.
      append_event_head(out, "s", "hop", p.station, p.start.as_micros());
      std::snprintf(buf, sizeof buf, ",\"id\":%llu,\"cat\":\"dist\"}",
                    static_cast<unsigned long long>(s.id - base));
      out += buf;
      sep();
      append_event_head(out, "f", "hop", s.station, s.start.as_micros());
      std::snprintf(buf, sizeof buf, ",\"id\":%llu,\"cat\":\"dist\",\"bp\":\"e\"}",
                    static_cast<unsigned long long>(s.id - base));
      out += buf;
    }
  }
  out += "\n]}\n";
  return out;
}

bool write_trace_file(const std::string& path) {
  std::string body = to_chrome_trace(Tracer::global().drain());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    WDOC_ERROR("trace: cannot open %s", path.c_str());
    return false;
  }
  bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) WDOC_ERROR("trace: short write to %s", path.c_str());
  return ok;
}

std::string trace_json_arg(int& argc, char** argv, bool strip) {
  constexpr std::string_view kFlag = "--trace-json=";
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind(kFlag, 0) == 0) {
      path = std::string(arg.substr(kFlag.size()));
      if (strip) continue;
    }
    argv[out++] = argv[i];
  }
  if (strip) argc = out;
  if (!path.empty()) Tracer::global().set_enabled(true);
  return path;
}

}  // namespace wdoc::obs

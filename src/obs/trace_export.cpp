#include "obs/trace_export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "common/log.hpp"

namespace wdoc::obs {

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

void append_event_head(std::string& out, const char* ph, const std::string& name,
                       std::uint64_t pid, std::int64_t ts) {
  char buf[96];
  out += "{\"ph\":\"";
  out += ph;
  out += "\",\"name\":\"";
  append_escaped(out, name);
  // tid == pid: one timeline row per station; the simulator is single
  // threaded, so stations are the only concurrency axis worth a track.
  std::snprintf(buf, sizeof buf, "\",\"pid\":%llu,\"tid\":%llu,\"ts\":%lld",
                static_cast<unsigned long long>(pid),
                static_cast<unsigned long long>(pid), static_cast<long long>(ts));
  out += buf;
}

}  // namespace

namespace {

// Span args: "span"/"parent" (rebased), plus "trace" when the span belongs
// to an end-to-end trace. Trace ids are NOT rebased: they are minted
// deterministically (per-seed at the HTTP edge, from transfer ids in the
// dist layer), so exports stay byte-identical for same-seed runs while the
// raw id still matches histogram-bucket exemplars and /debug/slo output.
void append_span_args(std::string& out, std::uint64_t span, std::uint64_t parent,
                      std::uint64_t trace_id) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "\"span\":%llu,\"parent\":%llu",
                static_cast<unsigned long long>(span),
                static_cast<unsigned long long>(parent));
  out += buf;
  if (trace_id != 0) {
    std::snprintf(buf, sizeof buf, ",\"trace\":%llu",
                  static_cast<unsigned long long>(trace_id));
    out += buf;
  }
}

}  // namespace

std::string to_chrome_trace(const std::vector<SpanRecord>& spans) {
  std::vector<SpanRecord> sorted = spans;
  std::sort(sorted.begin(), sorted.end(),
            [](const SpanRecord& a, const SpanRecord& b) { return a.id < b.id; });
  std::map<std::uint64_t, const SpanRecord*> by_id;
  std::set<std::uint64_t> stations;
  for (const SpanRecord& s : sorted) {
    by_id[s.id] = &s;
    stations.insert(s.station);
  }
  // Ids are rebased so the first exported span is 1: the output depends
  // only on the drained spans themselves, never on how many spans the
  // global tracer recorded before them — identical runs export
  // byte-identical JSON. Parents outside this batch (drained earlier)
  // rebase to 0, i.e. root.
  const std::uint64_t base = sorted.empty() ? 0 : sorted.front().id - 1;
  auto rebase = [&](std::uint64_t id) -> std::uint64_t {
    return by_id.count(id) != 0 ? id - base : 0;
  };

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    out += first ? "\n" : ",\n";
    first = false;
  };

  // Process metadata: name each pid row after its station.
  for (std::uint64_t st : stations) {
    sep();
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%llu,\"tid\":%llu,"
                  "\"args\":{\"name\":\"station %llu\"}}",
                  static_cast<unsigned long long>(st),
                  static_cast<unsigned long long>(st),
                  static_cast<unsigned long long>(st));
    out += buf;
  }

  char buf[160];
  for (const SpanRecord& s : sorted) {
    sep();
    if (s.finished) {
      append_event_head(out, "X", s.name, s.station, s.start.as_micros());
      std::snprintf(buf, sizeof buf, ",\"dur\":%lld,\"args\":{",
                    static_cast<long long>((s.end - s.start).as_micros()));
      out += buf;
      append_span_args(out, s.id - base, rebase(s.parent), s.trace_id);
      out += "}}";
    } else {
      // Explicitly an instant: the span never ended (still open at export,
      // or its station died mid-operation) — flag it rather than faking a
      // zero-duration completed slice.
      append_event_head(out, "i", s.name, s.station, s.start.as_micros());
      out += ",\"s\":\"p\",\"args\":{";
      append_span_args(out, s.id - base, rebase(s.parent), s.trace_id);
      out += ",\"finished\":false}}";
    }

    // Cross-station parentage renders as a flow arrow from the parent's
    // slice to this one (one flow id per child span).
    auto pit = s.parent == 0 ? by_id.end() : by_id.find(s.parent);
    if (pit != by_id.end()) {
      const SpanRecord& p = *pit->second;
      sep();
      // The flow start must land inside the parent slice to bind to it, so
      // it is stamped at the parent's own start time.
      append_event_head(out, "s", "hop", p.station, p.start.as_micros());
      std::snprintf(buf, sizeof buf, ",\"id\":%llu,\"cat\":\"dist\"}",
                    static_cast<unsigned long long>(s.id - base));
      out += buf;
      sep();
      append_event_head(out, "f", "hop", s.station, s.start.as_micros());
      std::snprintf(buf, sizeof buf, ",\"id\":%llu,\"cat\":\"dist\",\"bp\":\"e\"}",
                    static_cast<unsigned long long>(s.id - base));
      out += buf;
    }
  }
  out += "\n]}\n";
  return out;
}

std::string to_chrome_trace(const std::vector<SpanRecord>& spans, const Snapshot& snap) {
  std::string out = to_chrome_trace(spans);
  // Splice exemplar instants in before the closing "]}\n". Each is the
  // bridge from a histogram bucket to the promoted trace behind it: a
  // Perfetto search for the "trace" value lands on the request's spans.
  std::string events;
  char buf[128];
  for (const MetricSample& s : snap.samples) {
    if (s.kind != MetricSample::Kind::histogram) continue;
    for (std::size_t i = 0; i < s.hist_buckets.size() && i < s.hist_exemplars.size();
         ++i) {
      if (s.hist_exemplars[i] == 0) continue;
      events += ",\n";
      append_event_head(events, "i", "exemplar:" + s.key(), 0, 0);
      const double le = s.hist_buckets[i].first;
      if (std::isinf(le)) {
        std::snprintf(buf, sizeof buf,
                      ",\"s\":\"g\",\"args\":{\"le\":\"+inf\",\"count\":%llu,"
                      "\"trace\":%llu}}",
                      static_cast<unsigned long long>(s.hist_buckets[i].second),
                      static_cast<unsigned long long>(s.hist_exemplars[i]));
      } else {
        std::snprintf(buf, sizeof buf,
                      ",\"s\":\"g\",\"args\":{\"le\":%.0f,\"count\":%llu,\"trace\":%llu}}",
                      le, static_cast<unsigned long long>(s.hist_buckets[i].second),
                      static_cast<unsigned long long>(s.hist_exemplars[i]));
      }
      events += buf;
    }
  }
  if (!events.empty()) {
    const std::string tail = "\n]}\n";
    out.replace(out.size() - tail.size(), tail.size(), events + tail);
  }
  return out;
}

bool write_trace_file(const std::string& path) {
  std::string body = to_chrome_trace(Tracer::global().drain(),
                                     MetricsRegistry::global().snapshot());
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    WDOC_ERROR("trace: cannot open %s", path.c_str());
    return false;
  }
  bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (!ok) WDOC_ERROR("trace: short write to %s", path.c_str());
  return ok;
}

std::string trace_json_arg(int& argc, char** argv, bool strip) {
  constexpr std::string_view kFlag = "--trace-json=";
  std::string path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind(kFlag, 0) == 0) {
      path = std::string(arg.substr(kFlag.size()));
      if (strip) continue;
    }
    argv[out++] = argv[i];
  }
  if (strip) argc = out;
  if (!path.empty()) Tracer::global().set_enabled(true);
  return path;
}

}  // namespace wdoc::obs

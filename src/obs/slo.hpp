// wdoc_obs — declarative service-level objectives with multi-window
// burn-rate alerts.
//
// Every objective is a good/total ratio that must stay at or above a
// target. Two shapes plug into that frame:
//   * latency:       good = histogram observations at or under a threshold
//                    (rounded down to the histogram's power-of-two bucket
//                    boundary, so the measured objective is never laxer
//                    than the declared one);
//   * availability:  good = total − bad, from two counters.
//
// The engine keeps a ring of cumulative (good, total) points, one per
// evaluation period, and derives windowed ratios by subtracting ring
// entries — no per-request work at all; the hot path touches only the
// instruments it already touches. The burn rate of a window is
//
//     burn = bad_fraction(window) / (1 − target)
//
// i.e. how many times faster than "exactly on target" the error budget is
// being spent. An alert fires only when BOTH a short and a long window
// exceed a burn threshold (the multi-window AND of Google's SRE workbook):
// the long window proves the problem is sustained, the short window makes
// the alert reset quickly once the problem stops.
//
//   severity  short window          long window      burn threshold
//   fast      short_evals periods   long_evals       fast_burn (14.4)
//   slow      long_evals/2          long_evals       slow_burn (6.0)
//
// Alert transitions increment obs.slo.alerts{slo=,severity=} and record a
// FlightKind::slo_burn event, so a failing CI run's artifacts show exactly
// when the budget started burning.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/sim_time.hpp"
#include "obs/metrics.hpp"

namespace wdoc::obs {

struct SloObjective {
  std::string name;     // e.g. "http.search.latency"
  double target = 0.999;  // required good/total ratio

  enum class Kind { latency, availability } kind = Kind::latency;

  // kind == latency: histogram + upper threshold (micros). Good counts are
  // observations in buckets whose upper bound is <= the largest power of
  // two not exceeding `threshold_micros`.
  Histogram* histogram = nullptr;
  std::int64_t threshold_micros = 0;

  // kind == availability: total and bad counters; good = total − bad.
  Counter* total = nullptr;
  Counter* bad = nullptr;
};

struct SloWindows {
  std::int64_t eval_period_micros = 1'000'000;  // ring granularity
  std::size_t short_evals = 5;    // fast short window, in periods
  std::size_t long_evals = 60;    // fast long window, in periods (= ring size)
  double fast_burn = 14.4;        // page-now threshold
  double slow_burn = 6.0;         // ticket threshold
};

// Point-in-time view of one objective, produced by evaluate().
struct SloStatus {
  std::string name;
  double target = 0;
  // Ratios over the fast-alert windows; 1.0 when the window saw no events.
  double short_ratio = 1.0;
  double long_ratio = 1.0;
  double short_burn = 0.0;
  double long_burn = 0.0;
  std::uint64_t window_total = 0;  // events in the long window
  bool fast_alert = false;
  bool slow_alert = false;
};

class SloEngine {
 public:
  explicit SloEngine(SloWindows windows = {});
  ~SloEngine();
  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  void add(SloObjective objective);

  [[nodiscard]] const SloWindows& windows() const { return windows_; }

  // Samples every objective's instruments into the ring and recomputes
  // alert state. `now` stamps flight-recorder events; pass the caller's
  // clock (the gateway passes its request clock, tests pass SimTimes).
  // Safe to call from any thread; cheap enough to call per second.
  std::vector<SloStatus> evaluate(SimTime now);

  // Most recent evaluate() result without re-sampling.
  [[nodiscard]] std::vector<SloStatus> status() const;

  // {"windows":{...},"objectives":[...]} — stable field order.
  [[nodiscard]] std::string to_json() const;

  // Every live engine's to_json(), newline-separated — wired into failure
  // artifact dumps so a red CI run includes the SLO state at death.
  [[nodiscard]] static std::string dump_all();

 private:
  struct Tracked;  // objective + cumulative ring + alert latches

  [[nodiscard]] static std::uint64_t good_count(const SloObjective& o);
  [[nodiscard]] static std::uint64_t total_count(const SloObjective& o);

  SloWindows windows_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Tracked>> tracked_;
  std::vector<SloStatus> last_;
};

}  // namespace wdoc::obs

// wdoc_obs — process-wide metrics registry.
//
// Counters, gauges, and fixed-bucket log-scale histograms, addressed by
// (name, label set). Registration/lookup takes a sharded mutex; the
// instruments themselves are plain atomics, so increments on hot paths are
// lock-free and safe under ThreadTransport worker threads. Instrument
// references stay valid for the life of the registry — reset() zeroes
// values but never invalidates a reference, so call sites may cache them.
//
// Two exporters: an aligned text table (examples) and a stable JSON
// snapshot (benches / CI trajectory files, see obs::to_json). Both emit
// entries in sorted key order so repeated exports of the same state are
// byte-identical.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace wdoc::obs {

using Labels = std::map<std::string, std::string>;

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  void sub(std::int64_t delta) { v_.fetch_sub(delta, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Log-scale histogram with fixed power-of-two bucket boundaries: bucket i
// counts observations v with upper_bound(i-1) < v <= upper_bound(i), where
// upper_bound(i) = 2^i (bucket 0 covers v <= 1, the last bucket covers
// everything above 2^(kBuckets-2), i.e. +inf). Negative observations clamp
// to bucket 0. The unit is whatever the call site observes (we use
// microseconds for latencies); boundaries are deterministic, so snapshots
// diff cleanly across runs.
//
// Each bucket additionally retains an *exemplar*: the trace id of the most
// recent sampled observation that landed in it (see obs/request_trace.hpp).
// A fat p99 bucket in an exported snapshot thereby links to one concrete
// promoted trace instead of an anonymous count. Exemplars are
// station-local: the scrape wire format and hierarchical merge carry only
// counts (a merged exemplar would name a trace the admin cannot resolve).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  // Upper bound of bucket i; +inf for the last bucket.
  [[nodiscard]] static double upper_bound(std::size_t i);
  // Bucket index an observation lands in.
  [[nodiscard]] static std::size_t bucket_of(double v);

  // `exemplar_trace_id`, when nonzero, is retained as the bucket's exemplar
  // (callers pass the trace id only for requests actually promoted to the
  // durable tracer, so exemplars always point at resolvable traces).
  void observe(double v, std::uint64_t exemplar_trace_id = 0);

  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Nearest-bucket-upper-bound quantile estimate, q in [0, 1].
  [[nodiscard]] double quantile(double q) const;
  // Most recent sampled trace id observed into bucket i (0 = none yet).
  [[nodiscard]] std::uint64_t exemplar(std::size_t i) const {
    return exemplars_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::array<std::atomic<std::uint64_t>, kBuckets> exemplars_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

// One instrument's exported state.
struct MetricSample {
  std::string name;
  Labels labels;
  enum class Kind { counter, gauge, histogram } kind = Kind::counter;
  double value = 0;               // counter / gauge
  std::uint64_t hist_count = 0;   // histogram
  double hist_sum = 0;
  std::vector<std::pair<double, std::uint64_t>> hist_buckets;  // (upper bound, count), nonzero only
  std::vector<std::uint64_t> hist_exemplars;  // aligned with hist_buckets; 0 = none

  // "name{k=v,k=v}" — the stable sort key used by every exporter.
  [[nodiscard]] std::string key() const;
};

struct Snapshot {
  std::vector<MetricSample> samples;  // sorted by key()
};

class MetricsRegistry {
 public:
  // The process-wide registry every subsystem records into.
  [[nodiscard]] static MetricsRegistry& global();

  [[nodiscard]] Counter& counter(std::string_view name, const Labels& labels = {});
  [[nodiscard]] Gauge& gauge(std::string_view name, const Labels& labels = {});
  [[nodiscard]] Histogram& histogram(std::string_view name, const Labels& labels = {});

  [[nodiscard]] Snapshot snapshot() const;
  // Zeroes every instrument. References handed out earlier stay valid.
  void reset();

  [[nodiscard]] std::size_t instrument_count() const;

 private:
  struct Entry {
    MetricSample::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, Entry> entries;  // key -> instrument
  };
  static constexpr std::size_t kShards = 16;

  [[nodiscard]] Shard& shard_for(const std::string& key);
  [[nodiscard]] Entry& find_or_create(std::string_view name, const Labels& labels,
                                      MetricSample::Kind kind);

  std::array<Shard, kShards> shards_;
};

// --- exporters -------------------------------------------------------------

// Aligned text table, one instrument per row, sorted by key.
[[nodiscard]] std::string to_table(const Snapshot& snap);

// Stable JSON: {"counters":[...],"gauges":[...],"histograms":[...]},
// entries sorted by key; byte-identical for identical snapshots.
[[nodiscard]] std::string to_json(const Snapshot& snap);

// Snapshots the global registry and writes to_json() to `path`.
// Returns false (and logs) on I/O failure.
bool write_json_file(const std::string& path);

// Scans argv for "--metrics-json=<path>" and returns the path (empty if
// absent). If `strip` is set, the flag is removed from argv/argc so that
// downstream parsers (e.g. google-benchmark) never see it.
[[nodiscard]] std::string metrics_json_arg(int& argc, char** argv, bool strip = true);

}  // namespace wdoc::obs

#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>

namespace wdoc::obs {

const char* flight_kind_name(FlightKind k) {
  switch (k) {
    case FlightKind::deadlock: return "deadlock";
    case FlightKind::lock_wait: return "lock_wait";
    case FlightKind::lock_conflict: return "lock_conflict";
    case FlightKind::replication: return "replication";
    case FlightKind::migration: return "migration";
    case FlightKind::repair: return "repair";
    case FlightKind::scrape: return "scrape";
    case FlightKind::fault: return "fault";
    case FlightKind::rpc_exhausted: return "rpc_exhausted";
    case FlightKind::failover: return "failover";
    case FlightKind::slo_burn: return "slo_burn";
    case FlightKind::custom: return "custom";
  }
  return "?";
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* r = new FlightRecorder();  // never destroyed
  return *r;
}

void FlightRecorder::record(FlightKind kind, std::string detail, std::uint64_t station,
                            std::uint64_t actor, SimTime at) {
  std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  FlightEvent ev;
  ev.seq = seq;
  ev.at = at;
  ev.kind = kind;
  ev.station = station;
  ev.actor = actor;
  ev.detail = std::move(detail);

  Shard& sh = shards_[seq % kShards];
  std::lock_guard<std::mutex> g(sh.mu);
  if (sh.ring.size() < kCapacity) {
    sh.ring.push_back(std::move(ev));
  } else {
    sh.ring[sh.write_pos] = std::move(ev);
    sh.write_pos = (sh.write_pos + 1) % kCapacity;
  }
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::vector<FlightEvent> out;
  for (const Shard& sh : shards_) {
    std::lock_guard<std::mutex> g(sh.mu);
    out.insert(out.end(), sh.ring.begin(), sh.ring.end());
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) { return a.seq < b.seq; });
  return out;
}

void FlightRecorder::clear() {
  for (Shard& sh : shards_) {
    std::lock_guard<std::mutex> g(sh.mu);
    sh.ring.clear();
    sh.write_pos = 0;
  }
  next_seq_.store(0, std::memory_order_relaxed);
}

std::string FlightRecorder::dump() const {
  std::string out;
  char buf[128];
  for (const FlightEvent& ev : events()) {
    std::snprintf(buf, sizeof buf, "[%6llu] t=%-12s %-13s station=%-4llu actor=%-4llu ",
                  static_cast<unsigned long long>(ev.seq), ev.at.to_string().c_str(),
                  flight_kind_name(ev.kind),
                  static_cast<unsigned long long>(ev.station),
                  static_cast<unsigned long long>(ev.actor));
    out += buf;
    out += ev.detail;
    out += '\n';
  }
  return out;
}

void FlightRecorder::dump_to_stderr(const char* banner) const {
  std::string body = dump();
  if (body.empty()) return;
  std::fprintf(stderr, "\n=== flight recorder: %s (%llu event(s) recorded) ===\n%s",
               banner, static_cast<unsigned long long>(recorded()), body.c_str());
}

}  // namespace wdoc::obs

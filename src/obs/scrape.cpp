#include "obs/scrape.hpp"

#include <algorithm>
#include <cmath>

namespace wdoc::obs {

namespace {

void encode_sample(Writer& w, const MetricSample& s) {
  w.str(s.name);
  w.u32(static_cast<std::uint32_t>(s.labels.size()));
  for (const auto& [k, v] : s.labels) {
    w.str(k);
    w.str(v);
  }
  w.u8(static_cast<std::uint8_t>(s.kind));
  w.f64(s.value);
  w.u64(s.hist_count);
  w.f64(s.hist_sum);
  w.u32(static_cast<std::uint32_t>(s.hist_buckets.size()));
  for (std::size_t i = 0; i < s.hist_buckets.size(); ++i) {
    const auto& [le, c] = s.hist_buckets[i];
    // +inf has no finite encoding on the wire; the last bucket's bound is
    // reconstructed from the sentinel.
    w.boolean(std::isinf(le));
    w.f64(std::isinf(le) ? 0.0 : le);
    w.u64(c);
    // Bucket exemplar trace id (0 = none) rides along so a scraped
    // single-station snapshot renders the same JSON as a local one.
    w.u64(i < s.hist_exemplars.size() ? s.hist_exemplars[i] : 0);
  }
}

Result<MetricSample> decode_sample(Reader& r) {
  MetricSample s;
  auto name = r.str();
  if (!name) return name.error();
  s.name = std::move(name).value();
  auto nlabels = r.count(8);
  if (!nlabels) return nlabels.error();
  for (std::uint32_t i = 0; i < nlabels.value(); ++i) {
    auto k = r.str();
    if (!k) return k.error();
    auto v = r.str();
    if (!v) return v.error();
    s.labels.emplace(std::move(k).value(), std::move(v).value());
  }
  auto kind = r.u8();
  if (!kind) return kind.error();
  if (kind.value() > static_cast<std::uint8_t>(MetricSample::Kind::histogram)) {
    return Error{Errc::corrupt, "bad metric kind"};
  }
  s.kind = static_cast<MetricSample::Kind>(kind.value());
  auto value = r.f64();
  auto hcount = r.u64();
  auto hsum = r.f64();
  if (!value || !hcount || !hsum) return Error{Errc::corrupt, "bad metric sample"};
  s.value = value.value();
  s.hist_count = hcount.value();
  s.hist_sum = hsum.value();
  auto nbuckets = r.count(17);
  if (!nbuckets) return nbuckets.error();
  s.hist_buckets.reserve(nbuckets.value());
  s.hist_exemplars.reserve(nbuckets.value());
  for (std::uint32_t i = 0; i < nbuckets.value(); ++i) {
    auto inf = r.boolean();
    if (!inf) return inf.error();
    auto le = r.f64();
    if (!le) return le.error();
    auto c = r.u64();
    if (!c) return c.error();
    auto ex = r.u64();
    if (!ex) return ex.error();
    s.hist_buckets.emplace_back(
        inf.value() ? std::numeric_limits<double>::infinity() : le.value(), c.value());
    s.hist_exemplars.push_back(ex.value());
  }
  return s;
}

}  // namespace

void encode_snapshot(Writer& w, const Snapshot& snap) {
  w.u32(static_cast<std::uint32_t>(snap.samples.size()));
  for (const MetricSample& s : snap.samples) encode_sample(w, s);
}

Bytes encode_snapshot(const Snapshot& snap) {
  Writer w;
  encode_snapshot(w, snap);
  return w.take();
}

Result<Snapshot> decode_snapshot(Reader& r) {
  Snapshot out;
  auto n = r.count(30);  // a sample is at least ~30 bytes on the wire
  if (!n) return n.error();
  out.samples.reserve(n.value());
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    auto s = decode_sample(r);
    if (!s) return s.error();
    out.samples.push_back(std::move(s).value());
  }
  return out;
}

Result<Snapshot> decode_snapshot(const Bytes& b) {
  Reader r(b);
  return decode_snapshot(r);
}

Snapshot with_label(const Snapshot& snap, const std::string& key,
                    const std::string& value) {
  Snapshot out = snap;
  for (MetricSample& s : out.samples) s.labels[key] = value;
  std::sort(out.samples.begin(), out.samples.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.key() < b.key(); });
  return out;
}

void merge_snapshot(Snapshot& dst, const Snapshot& src) {
  Snapshot out;
  out.samples.reserve(dst.samples.size() + src.samples.size());
  std::size_t i = 0, j = 0;
  while (i < dst.samples.size() || j < src.samples.size()) {
    if (j >= src.samples.size() ||
        (i < dst.samples.size() && dst.samples[i].key() < src.samples[j].key())) {
      out.samples.push_back(std::move(dst.samples[i++]));
      continue;
    }
    if (i >= dst.samples.size() || src.samples[j].key() < dst.samples[i].key()) {
      out.samples.push_back(src.samples[j++]);
      continue;
    }
    // Same key: combine. Kind mismatches keep dst's kind — they can only
    // come from a misbehaving peer, and the merge must stay total.
    MetricSample merged = std::move(dst.samples[i++]);
    const MetricSample& other = src.samples[j++];
    // Exemplars are dropped on merge: a cross-station sum has no single
    // trace that explains the bucket, so naming one would mislead.
    merged.hist_exemplars.clear();
    merged.value += other.value;
    merged.hist_count += other.hist_count;
    merged.hist_sum += other.hist_sum;
    // Buckets are (upper bound, count) pairs sorted by bound; merge-add.
    std::vector<std::pair<double, std::uint64_t>> buckets;
    buckets.reserve(merged.hist_buckets.size() + other.hist_buckets.size());
    std::size_t a = 0, b = 0;
    while (a < merged.hist_buckets.size() || b < other.hist_buckets.size()) {
      if (b >= other.hist_buckets.size() ||
          (a < merged.hist_buckets.size() &&
           merged.hist_buckets[a].first < other.hist_buckets[b].first)) {
        buckets.push_back(merged.hist_buckets[a++]);
      } else if (a >= merged.hist_buckets.size() ||
                 other.hist_buckets[b].first < merged.hist_buckets[a].first) {
        buckets.push_back(other.hist_buckets[b++]);
      } else {
        buckets.emplace_back(merged.hist_buckets[a].first,
                             merged.hist_buckets[a].second + other.hist_buckets[b].second);
        ++a;
        ++b;
      }
    }
    merged.hist_buckets = std::move(buckets);
    out.samples.push_back(std::move(merged));
  }
  dst = std::move(out);
}

double counter_total(const Snapshot& snap, std::string_view name) {
  double total = 0;
  for (const MetricSample& s : snap.samples) {
    if (s.kind == MetricSample::Kind::counter && s.name == name) total += s.value;
  }
  return total;
}

}  // namespace wdoc::obs

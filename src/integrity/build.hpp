// Builds the standard referential-integrity diagram for everything stored in
// a Repository, using the link structure of paper §3: a script update alerts
// its implementations, which further alert "one or more HTML programs, zero
// or more multimedia resources, and some control programs".
#pragma once

#include "docmodel/repository.hpp"
#include "integrity/diagram.hpp"

namespace wdoc::integrity {

[[nodiscard]] Result<IntegrityDiagram> build_diagram(const docmodel::Repository& repo);

}  // namespace wdoc::integrity

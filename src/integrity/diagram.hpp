// Referential-integrity diagram (paper §3).
//
// "Each link in the diagram connects two objects. If the source object is
// updated, the system will trigger a message which alerts the user to update
// the destination object. Each link is associated with a label [and] a
// reference multiplicity indicated in its superscript: '+' means one or
// more, '*' means zero or more."
//
// The diagram is a labelled digraph over SCI references; on_update performs
// a cycle-safe BFS and emits one alert per reachable object, closest first.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace wdoc::integrity {

enum class SciKind : std::uint8_t {
  database = 0,
  script = 1,
  implementation = 2,
  html_file = 3,
  program_file = 4,
  resource = 5,
  test_record = 6,
  bug_report = 7,
  annotation = 8,
};

[[nodiscard]] const char* sci_kind_name(SciKind k);

struct SciRef {
  SciKind kind = SciKind::script;
  std::string name;

  auto operator<=>(const SciRef&) const = default;
  [[nodiscard]] std::string to_string() const;
};

enum class Multiplicity : std::uint8_t {
  one_or_more = 0,  // "+"
  zero_or_more = 1, // "*"
};

struct LinkLabel {
  std::string label;                      // e.g. "implements", "uses"
  Multiplicity multiplicity = Multiplicity::zero_or_more;
  std::vector<std::string> alert_messages;  // templates; %s = target name
};

struct Alert {
  SciRef source;   // the object whose update triggered this alert
  SciRef target;   // the object the user should revisit
  std::string message;
  std::string via_label;
  std::size_t depth = 1;  // 1 = direct dependent
};

class IntegrityDiagram {
 public:
  void add_object(const SciRef& ref);
  [[nodiscard]] bool has_object(const SciRef& ref) const;
  // Removes the object and every link touching it.
  void remove_object(const SciRef& ref);

  [[nodiscard]] Status add_link(const SciRef& src, const SciRef& dst, LinkLabel label);
  [[nodiscard]] Status remove_link(const SciRef& src, const SciRef& dst);
  [[nodiscard]] bool has_link(const SciRef& src, const SciRef& dst) const;

  // All alerts triggered by updating `src`, breadth-first (direct dependents
  // first). Each reachable object is alerted exactly once even through
  // diamonds or cycles.
  [[nodiscard]] std::vector<Alert> on_update(const SciRef& src) const;

  // Direct successors with their labels.
  [[nodiscard]] std::vector<std::pair<SciRef, const LinkLabel*>> successors(
      const SciRef& src) const;
  [[nodiscard]] std::vector<SciRef> predecessors(const SciRef& dst) const;

  // Checks every '+' link's source has >=1 outgoing link with that label to
  // a live object; `counter(src, label)` supplies the actual child count
  // when objects live outside the diagram. Returns violation descriptions.
  [[nodiscard]] std::vector<std::string> check_multiplicities(
      const std::function<std::size_t(const SciRef&, const std::string&)>& counter) const;

  [[nodiscard]] std::size_t object_count() const { return objects_.size(); }
  [[nodiscard]] std::size_t link_count() const;

 private:
  struct Edge {
    SciRef dst;
    LinkLabel label;
  };

  std::set<SciRef> objects_;
  std::map<SciRef, std::vector<Edge>> out_;
  std::map<SciRef, std::vector<SciRef>> in_;
};

// Default alert message: "<label>: please revisit <target>".
[[nodiscard]] std::string default_alert_message(const LinkLabel& label, const SciRef& target);

}  // namespace wdoc::integrity

#include "integrity/diagram.hpp"

#include <algorithm>
#include <deque>

namespace wdoc::integrity {

const char* sci_kind_name(SciKind k) {
  switch (k) {
    case SciKind::database: return "database";
    case SciKind::script: return "script";
    case SciKind::implementation: return "implementation";
    case SciKind::html_file: return "html_file";
    case SciKind::program_file: return "program_file";
    case SciKind::resource: return "resource";
    case SciKind::test_record: return "test_record";
    case SciKind::bug_report: return "bug_report";
    case SciKind::annotation: return "annotation";
  }
  return "?";
}

std::string SciRef::to_string() const {
  return std::string(sci_kind_name(kind)) + ":" + name;
}

std::string default_alert_message(const LinkLabel& label, const SciRef& target) {
  return label.label + ": please revisit " + target.to_string();
}

void IntegrityDiagram::add_object(const SciRef& ref) { objects_.insert(ref); }

bool IntegrityDiagram::has_object(const SciRef& ref) const { return objects_.contains(ref); }

void IntegrityDiagram::remove_object(const SciRef& ref) {
  objects_.erase(ref);
  // Outgoing edges.
  if (auto it = out_.find(ref); it != out_.end()) {
    for (const Edge& e : it->second) {
      auto& preds = in_[e.dst];
      preds.erase(std::remove(preds.begin(), preds.end(), ref), preds.end());
    }
    out_.erase(it);
  }
  // Incoming edges.
  if (auto it = in_.find(ref); it != in_.end()) {
    for (const SciRef& src : it->second) {
      auto& edges = out_[src];
      edges.erase(std::remove_if(edges.begin(), edges.end(),
                                 [&](const Edge& e) { return e.dst == ref; }),
                  edges.end());
    }
    in_.erase(it);
  }
}

Status IntegrityDiagram::add_link(const SciRef& src, const SciRef& dst, LinkLabel label) {
  if (!objects_.contains(src)) {
    return {Errc::not_found, "no such object: " + src.to_string()};
  }
  if (!objects_.contains(dst)) {
    return {Errc::not_found, "no such object: " + dst.to_string()};
  }
  if (has_link(src, dst)) {
    return {Errc::already_exists, src.to_string() + " -> " + dst.to_string()};
  }
  out_[src].push_back(Edge{dst, std::move(label)});
  in_[dst].push_back(src);
  return Status::ok();
}

Status IntegrityDiagram::remove_link(const SciRef& src, const SciRef& dst) {
  auto it = out_.find(src);
  if (it == out_.end()) return {Errc::not_found, "no link"};
  auto& edges = it->second;
  auto eit = std::find_if(edges.begin(), edges.end(),
                          [&](const Edge& e) { return e.dst == dst; });
  if (eit == edges.end()) return {Errc::not_found, "no link"};
  edges.erase(eit);
  auto& preds = in_[dst];
  preds.erase(std::remove(preds.begin(), preds.end(), src), preds.end());
  return Status::ok();
}

bool IntegrityDiagram::has_link(const SciRef& src, const SciRef& dst) const {
  auto it = out_.find(src);
  if (it == out_.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(),
                     [&](const Edge& e) { return e.dst == dst; });
}

std::vector<Alert> IntegrityDiagram::on_update(const SciRef& src) const {
  std::vector<Alert> alerts;
  std::set<SciRef> visited{src};
  std::deque<std::pair<SciRef, std::size_t>> frontier{{src, 0}};
  while (!frontier.empty()) {
    auto [cur, depth] = frontier.front();
    frontier.pop_front();
    auto it = out_.find(cur);
    if (it == out_.end()) continue;
    for (const Edge& e : it->second) {
      if (!visited.insert(e.dst).second) continue;
      Alert a;
      a.source = cur;
      a.target = e.dst;
      a.via_label = e.label.label;
      a.depth = depth + 1;
      a.message = e.label.alert_messages.empty()
                      ? default_alert_message(e.label, e.dst)
                      : e.label.alert_messages.front();
      alerts.push_back(std::move(a));
      frontier.emplace_back(e.dst, depth + 1);
    }
  }
  return alerts;
}

std::vector<std::pair<SciRef, const LinkLabel*>> IntegrityDiagram::successors(
    const SciRef& src) const {
  std::vector<std::pair<SciRef, const LinkLabel*>> out;
  auto it = out_.find(src);
  if (it == out_.end()) return out;
  out.reserve(it->second.size());
  for (const Edge& e : it->second) out.emplace_back(e.dst, &e.label);
  return out;
}

std::vector<SciRef> IntegrityDiagram::predecessors(const SciRef& dst) const {
  auto it = in_.find(dst);
  return it == in_.end() ? std::vector<SciRef>{} : it->second;
}

std::vector<std::string> IntegrityDiagram::check_multiplicities(
    const std::function<std::size_t(const SciRef&, const std::string&)>& counter) const {
  std::vector<std::string> violations;
  for (const auto& [src, edges] : out_) {
    // Group '+' labels and count live targets per label.
    std::map<std::string, std::size_t> live;
    std::set<std::string> plus_labels;
    for (const Edge& e : edges) {
      if (e.label.multiplicity == Multiplicity::one_or_more) {
        plus_labels.insert(e.label.label);
      }
      if (objects_.contains(e.dst)) ++live[e.label.label];
    }
    for (const std::string& label : plus_labels) {
      std::size_t n = counter ? counter(src, label) : live[label];
      if (n == 0) {
        violations.push_back(src.to_string() + " -[" + label +
                             "]+ : requires at least one target, found none");
      }
    }
  }
  return violations;
}

std::size_t IntegrityDiagram::link_count() const {
  std::size_t n = 0;
  for (const auto& [_, edges] : out_) n += edges.size();
  return n;
}

}  // namespace wdoc::integrity

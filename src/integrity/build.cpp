#include "integrity/build.hpp"

namespace wdoc::integrity {

namespace {

LinkLabel link(const char* label, Multiplicity m) {
  LinkLabel l;
  l.label = label;
  l.multiplicity = m;
  return l;
}

}  // namespace

Result<IntegrityDiagram> build_diagram(const docmodel::Repository& repo) {
  const docmodel::Repository& r = repo;
  IntegrityDiagram d;

  for (const std::string& dbname : r.list_databases()) {
    SciRef db{SciKind::database, dbname};
    d.add_object(db);
  }

  for (const std::string& script_name : r.list_scripts()) {
    SciRef script{SciKind::script, script_name};
    d.add_object(script);

    auto impls = r.implementations_of(script_name);
    if (!impls) return impls.error();
    for (const auto& impl : impls.value()) {
      SciRef iref{SciKind::implementation, impl.starting_url};
      d.add_object(iref);
      // "+": a script has one or more implementations (each impl has >=1
      // HTML file per §3).
      WDOC_TRY(d.add_link(script, iref, link("implements", Multiplicity::one_or_more)));

      auto htmls = r.html_files_of(impl.starting_url);
      if (!htmls) return htmls.error();
      for (const auto& h : htmls.value()) {
        SciRef href{SciKind::html_file, h.path};
        d.add_object(href);
        WDOC_TRY(d.add_link(iref, href, link("html", Multiplicity::one_or_more)));
      }

      auto progs = r.program_files_of(impl.starting_url);
      if (!progs) return progs.error();
      for (const auto& p : progs.value()) {
        SciRef pref{SciKind::program_file, p.path};
        d.add_object(pref);
        WDOC_TRY(d.add_link(iref, pref, link("program", Multiplicity::zero_or_more)));
      }

      auto res = r.resources_of("implementation", impl.starting_url);
      if (!res) return res.error();
      for (const auto& rr : res.value()) {
        SciRef rref{SciKind::resource, rr.digest_hex};
        d.add_object(rref);
        if (!d.has_link(iref, rref)) {
          WDOC_TRY(d.add_link(iref, rref, link("uses", Multiplicity::zero_or_more)));
        }
      }

      auto anns = r.annotations_of(impl.starting_url);
      if (!anns) return anns.error();
      for (const std::string& aname : anns.value()) {
        SciRef aref{SciKind::annotation, aname};
        d.add_object(aref);
        WDOC_TRY(d.add_link(iref, aref, link("annotates", Multiplicity::zero_or_more)));
      }
    }

    auto script_res = r.resources_of("script", script_name);
    if (!script_res) return script_res.error();
    for (const auto& rr : script_res.value()) {
      SciRef rref{SciKind::resource, rr.digest_hex};
      d.add_object(rref);
      if (!d.has_link(script, rref)) {
        WDOC_TRY(d.add_link(script, rref, link("uses", Multiplicity::zero_or_more)));
      }
    }

    auto trs = r.test_records_of_script(script_name);
    if (!trs) return trs.error();
    for (const std::string& tname : trs.value()) {
      SciRef tref{SciKind::test_record, tname};
      d.add_object(tref);
      WDOC_TRY(d.add_link(script, tref, link("tested_by", Multiplicity::zero_or_more)));

      auto bugs = r.bug_reports_of(tname);
      if (!bugs) return bugs.error();
      for (const std::string& bname : bugs.value()) {
        SciRef bref{SciKind::bug_report, bname};
        d.add_object(bref);
        WDOC_TRY(d.add_link(tref, bref, link("reported", Multiplicity::zero_or_more)));
      }
    }
  }

  // Database -> script membership links.
  for (const std::string& dbname : r.list_databases()) {
    auto scripts = r.scripts_of_database(dbname);
    if (!scripts) return scripts.error();
    SciRef db{SciKind::database, dbname};
    for (const std::string& sname : scripts.value()) {
      SciRef script{SciKind::script, sname};
      if (d.has_object(script)) {
        WDOC_TRY(d.add_link(db, script, link("contains", Multiplicity::zero_or_more)));
      }
    }
  }

  return d;
}

}  // namespace wdoc::integrity

// The paper's object-locking compatibility table (§3):
//
//   "If a container has a read lock by a user, its components (and itself)
//    can have the read access by another user, but not the write access.
//    However, the parent objects of the container can have both read and
//    write access by another user."
//
// Semantics implemented here:
//   - A lock on node N constrains N and N's whole subtree for OTHER users:
//     a read lock leaves the subtree readable but not writable; a write
//     lock makes it inaccessible.
//   - Ancestors of N stay fully accessible to other users (this is the
//     paper's deliberate departure from classic intention locking, where an
//     IX on every ancestor would block a sibling's S at the root).
//   - A user's own locks never conflict with that user's requests; a read
//     lock can be upgraded to write when no other user constrains the node.
//
// Locks are granted try-lock style (Errc::lock_conflict on refusal), which
// matches the paper's interactive check-out workflow; callers poll/retry.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"

namespace wdoc::locking {

enum class Access : std::uint8_t { read = 0, write = 1 };

[[nodiscard]] constexpr const char* access_name(Access a) {
  return a == Access::read ? "read" : "write";
}

// Relation of a request target to a held lock's container.
enum class Relation : std::uint8_t {
  self = 0,        // request target == locked container
  component = 1,   // target inside the locked container's subtree
  parent = 2,      // target is an ancestor of the locked container
  disjoint = 3,    // unrelated subtrees
};

// The compatibility table itself, exposed for tests and the E7 bench:
// may OTHER users get `requested` on a node in relation `rel` to a container
// locked with `held`?
[[nodiscard]] constexpr bool paper_compatible(Relation rel, Access held, Access requested) {
  switch (rel) {
    case Relation::self:
    case Relation::component:
      if (held == Access::write) return false;
      return requested == Access::read;
    case Relation::parent:
    case Relation::disjoint:
      return true;
  }
  return false;
}

struct HeldLock {
  UserId user;
  LockResourceId node;
  Access mode = Access::read;
};

class HierarchyLockManager {
 public:
  // --- hierarchy -------------------------------------------------------
  // parent == nullopt makes a root. Nodes form a forest.
  [[nodiscard]] Status add_node(LockResourceId id, std::optional<LockResourceId> parent);
  // Node must have no children and no locks.
  [[nodiscard]] Status remove_node(LockResourceId id);
  [[nodiscard]] bool has_node(LockResourceId id) const { return nodes_.contains(id); }
  [[nodiscard]] std::optional<LockResourceId> parent_of(LockResourceId id) const;
  [[nodiscard]] bool is_ancestor(LockResourceId maybe_ancestor, LockResourceId node) const;

  // --- locking ----------------------------------------------------------
  [[nodiscard]] Status lock(UserId user, LockResourceId node, Access mode);
  [[nodiscard]] Status unlock(UserId user, LockResourceId node);
  void unlock_all(UserId user);

  // Would `lock` succeed right now?
  [[nodiscard]] bool can_lock(UserId user, LockResourceId node, Access mode) const;
  // May `user` perform `mode` access on `node` given current locks (without
  // taking a lock)? Used by read paths that trust short operations.
  [[nodiscard]] bool can_access(UserId user, LockResourceId node, Access mode) const;

  [[nodiscard]] std::vector<HeldLock> locks_of(UserId user) const;
  [[nodiscard]] std::vector<HeldLock> locks_on(LockResourceId node) const;
  [[nodiscard]] std::size_t lock_count() const;

  // Which single user, if any, is currently allowed to change `node`
  // (holds a write lock covering it)? The paper: "With the table, the
  // system can control which instructor is changing a Web document."
  [[nodiscard]] std::optional<UserId> writer_of(LockResourceId node) const;

 private:
  struct Node {
    std::optional<LockResourceId> parent;
    std::set<LockResourceId> children;
    // mode per holder on this node.
    std::map<UserId, Access> holders;
  };

  // Does any lock held by someone other than `user` forbid `mode` on `node`?
  [[nodiscard]] bool blocked(UserId user, LockResourceId node, Access mode) const;

  std::map<LockResourceId, Node> nodes_;
};

}  // namespace wdoc::locking

#include "locking/hierarchy_lock.hpp"

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace wdoc::locking {

namespace {

// Grants and refusals of the paper's compatibility table, by mode.
obs::Counter& lock_counter(const char* what, Access mode) {
  static obs::Counter& grant_r = obs::MetricsRegistry::global().counter(
      "locking.locks_granted", {{"mode", "read"}});
  static obs::Counter& grant_w = obs::MetricsRegistry::global().counter(
      "locking.locks_granted", {{"mode", "write"}});
  static obs::Counter& conflict_r = obs::MetricsRegistry::global().counter(
      "locking.conflicts", {{"mode", "read"}});
  static obs::Counter& conflict_w = obs::MetricsRegistry::global().counter(
      "locking.conflicts", {{"mode", "write"}});
  if (what[0] == 'g') return mode == Access::read ? grant_r : grant_w;
  return mode == Access::read ? conflict_r : conflict_w;
}

}  // namespace

Status HierarchyLockManager::add_node(LockResourceId id,
                                      std::optional<LockResourceId> parent) {
  if (!id.valid()) return {Errc::invalid_argument, "invalid node id"};
  if (nodes_.contains(id)) return {Errc::already_exists, "node exists"};
  if (parent) {
    auto pit = nodes_.find(*parent);
    if (pit == nodes_.end()) return {Errc::not_found, "no such parent"};
    pit->second.children.insert(id);
  }
  Node n;
  n.parent = parent;
  nodes_.emplace(id, std::move(n));
  return Status::ok();
}

Status HierarchyLockManager::remove_node(LockResourceId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return {Errc::not_found, "no such node"};
  if (!it->second.children.empty()) return {Errc::conflict, "node has children"};
  if (!it->second.holders.empty()) return {Errc::conflict, "node is locked"};
  if (it->second.parent) {
    nodes_.at(*it->second.parent).children.erase(id);
  }
  nodes_.erase(it);
  return Status::ok();
}

std::optional<LockResourceId> HierarchyLockManager::parent_of(LockResourceId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) return std::nullopt;
  return it->second.parent;
}

bool HierarchyLockManager::is_ancestor(LockResourceId maybe_ancestor,
                                       LockResourceId node) const {
  auto it = nodes_.find(node);
  while (it != nodes_.end() && it->second.parent) {
    if (*it->second.parent == maybe_ancestor) return true;
    it = nodes_.find(*it->second.parent);
  }
  return false;
}

bool HierarchyLockManager::blocked(UserId user, LockResourceId node, Access mode) const {
  // A lock on `node` itself or on any ancestor of `node` covers `node`
  // (node is then the container itself or a component of the container).
  // Locks strictly below `node`, or in disjoint subtrees, never block —
  // that is the paper's "parent objects … can have both read and write
  // access" rule.
  auto it = nodes_.find(node);
  WDOC_CHECK(it != nodes_.end(), "blocked() on unknown node");
  for (const Node* n = &it->second;;) {
    for (const auto& [holder, held] : n->holders) {
      if (holder == user) continue;
      Relation rel = (n == &it->second) ? Relation::self : Relation::component;
      if (!paper_compatible(rel, held, mode)) return true;
    }
    if (!n->parent) break;
    n = &nodes_.at(*n->parent);
  }
  return false;
}

Status HierarchyLockManager::lock(UserId user, LockResourceId node, Access mode) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return {Errc::not_found, "no such node"};
  auto hit = it->second.holders.find(user);
  // Re-entrant request covered by the held mode: always granted, even if
  // new locks would currently be refused (e.g. a reader arrived above).
  if (hit != it->second.holders.end() &&
      (hit->second == Access::write || mode == Access::read)) {
    return Status::ok();
  }
  if (blocked(user, node, mode)) {
    lock_counter("conflict", mode).inc();
    obs::FlightRecorder::global().record(
        obs::FlightKind::lock_conflict,
        std::string(access_name(mode)) + " refused on node " +
            std::to_string(node.value()),
        /*station=*/0, /*actor=*/user.value());
    return {Errc::lock_conflict,
            std::string("lock refused: ") + access_name(mode) + " on node " +
                std::to_string(node.value())};
  }
  if (hit != it->second.holders.end()) {
    hit->second = Access::write;  // read -> write upgrade
  } else {
    it->second.holders.emplace(user, mode);
  }
  lock_counter("grant", mode).inc();
  return Status::ok();
}

Status HierarchyLockManager::unlock(UserId user, LockResourceId node) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return {Errc::not_found, "no such node"};
  if (it->second.holders.erase(user) == 0) {
    return {Errc::not_found, "user holds no lock on node"};
  }
  return Status::ok();
}

void HierarchyLockManager::unlock_all(UserId user) {
  for (auto& [_, node] : nodes_) node.holders.erase(user);
}

bool HierarchyLockManager::can_lock(UserId user, LockResourceId node, Access mode) const {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return false;
  auto hit = it->second.holders.find(user);
  if (hit != it->second.holders.end() &&
      (hit->second == Access::write || mode == Access::read)) {
    return true;  // already held at sufficient strength
  }
  return !blocked(user, node, mode);
}

bool HierarchyLockManager::can_access(UserId user, LockResourceId node, Access mode) const {
  return can_lock(user, node, mode);
}

std::vector<HeldLock> HierarchyLockManager::locks_of(UserId user) const {
  std::vector<HeldLock> out;
  for (const auto& [id, node] : nodes_) {
    auto hit = node.holders.find(user);
    if (hit != node.holders.end()) out.push_back(HeldLock{user, id, hit->second});
  }
  return out;
}

std::vector<HeldLock> HierarchyLockManager::locks_on(LockResourceId node) const {
  std::vector<HeldLock> out;
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return out;
  for (const auto& [user, mode] : it->second.holders) {
    out.push_back(HeldLock{user, node, mode});
  }
  return out;
}

std::size_t HierarchyLockManager::lock_count() const {
  std::size_t n = 0;
  for (const auto& [_, node] : nodes_) n += node.holders.size();
  return n;
}

std::optional<UserId> HierarchyLockManager::writer_of(LockResourceId node) const {
  auto it = nodes_.find(node);
  while (it != nodes_.end()) {
    for (const auto& [user, mode] : it->second.holders) {
      if (mode == Access::write) return user;
    }
    if (!it->second.parent) break;
    it = nodes_.find(*it->second.parent);
  }
  return std::nullopt;
}

}  // namespace wdoc::locking

// Accounts and roles — the paper's user taxonomy ("types of users include
// students, instructors, and administrators", §1) with the privilege rules
// it states (e.g. §5: "An instructor has a privilege to add or delete
// document instances").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"

namespace wdoc::core {

enum class Role : std::uint8_t {
  student = 0,
  instructor = 1,
  administrator = 2,
};

[[nodiscard]] const char* role_name(Role r);

// Privileged operations gated by role.
enum class Privilege : std::uint8_t {
  browse_library = 0,        // everyone
  check_out_course = 1,      // everyone
  view_own_transcript = 2,   // everyone
  author_course = 3,         // instructor+
  manage_library = 4,        // instructor+: add/delete document instances
  broadcast_lecture = 5,     // instructor+
  record_grades = 6,         // instructor+
  admit_student = 7,         // administrator
  view_any_transcript = 8,   // administrator (instructors see their courses')
  manage_accounts = 9,       // administrator
};

[[nodiscard]] bool role_grants(Role role, Privilege p);

struct Account {
  UserId id;
  std::string name;
  Role role = Role::student;
  std::int64_t created_at = 0;
  bool active = true;
};

class AccountRegistry {
 public:
  // The registry boots with no accounts; the first administrator is created
  // unchecked (the bootstrap account), later ones need manage_accounts.
  [[nodiscard]] Result<UserId> create_account(const std::string& name, Role role,
                                              std::int64_t now,
                                              std::optional<UserId> actor = {});
  [[nodiscard]] Status deactivate(UserId id, UserId actor);
  [[nodiscard]] Result<Account> get(UserId id) const;
  [[nodiscard]] std::optional<UserId> find_by_name(const std::string& name) const;
  [[nodiscard]] std::vector<Account> by_role(Role role) const;
  [[nodiscard]] std::size_t count() const { return accounts_.size(); }

  // Central permission check: unknown or deactivated users hold nothing.
  [[nodiscard]] bool allowed(UserId id, Privilege p) const;
  [[nodiscard]] Status require(UserId id, Privilege p) const;

 private:
  std::map<UserId, Account> accounts_;
  std::map<std::string, UserId> by_name_;
  IdAllocator<UserId> ids_;
};

}  // namespace wdoc::core

// WebDocDb — the paper's contribution assembled: one station of the
// three-tier distributed Web document database.
//
// A WebDocDb bundles, for one station:
//   * the relational document store (storage::Database + docmodel
//     Repository, the "MS SQL server behind ODBC" tier);
//   * the content-addressed BLOB layer (blob::BlobStore);
//   * the distribution-layer object store and protocol node (dist);
//   * the SCM check-in/out store (scm);
//   * the hierarchical lock manager (locking);
//   * the virtual library front end (library).
//
// Sessions (InstructorSession / StudentSession, sessions.hpp) provide the
// role-specific APIs the paper's tools expose.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "blob/blob_store.hpp"
#include "dist/coordinator.hpp"
#include "dist/station_node.hpp"
#include "docmodel/repository.hpp"
#include "integrity/build.hpp"
#include "library/virtual_library.hpp"
#include "locking/hierarchy_lock.hpp"
#include "scm/scm_store.hpp"
#include "storage/sql.hpp"

namespace wdoc::core {

struct WebDocDbOptions {
  // Directory for the durable WAL/snapshot; empty = in-memory.
  std::string data_dir;
  // Per-station BLOB disk budget.
  std::uint64_t blob_capacity = blob::BlobStore::kUnlimited;
  dist::NodeConfig node;
};

class WebDocDb {
 public:
  [[nodiscard]] static Result<std::unique_ptr<WebDocDb>> create(
      const WebDocDbOptions& options = {});

  ~WebDocDb();
  WebDocDb(const WebDocDb&) = delete;
  WebDocDb& operator=(const WebDocDb&) = delete;

  // --- subsystem access ----------------------------------------------------
  [[nodiscard]] storage::Database& database() { return *db_; }
  [[nodiscard]] docmodel::Repository& repository() { return *repo_; }
  [[nodiscard]] blob::BlobStore& blobs() { return *blobs_; }
  [[nodiscard]] dist::ObjectStore& objects() { return *objects_; }
  [[nodiscard]] scm::ScmStore& scm() { return scm_; }
  [[nodiscard]] locking::HierarchyLockManager& locks() { return locks_; }
  [[nodiscard]] library::VirtualLibrary& library() { return library_; }
  // SQL access to the station's relational tier (the paper's "database
  // standard" compatibility surface).
  [[nodiscard]] storage::sql::Engine& sql() { return *sql_; }

  // Mirrors the virtual library into the relational tier so it survives a
  // durable restart (create() reloads it automatically).
  [[nodiscard]] Status persist_library() { return library_.save(*db_); }

  // --- distribution ---------------------------------------------------------
  // Joins a fabric as `self`; afterwards node() is live.
  [[nodiscard]] Status attach(net::Fabric& fabric, StationId self);
  [[nodiscard]] dist::StationNode* node() { return node_.get(); }
  [[nodiscard]] StationId station() const { return self_; }

  // Builds a distribution manifest for a stored implementation: structure
  // bytes from its HTML/program files, BLOB refs from its resources.
  [[nodiscard]] Result<dist::DocManifest> manifest_for(const std::string& starting_url);

  // --- referential integrity ------------------------------------------------
  // Alerts the user must act on after updating `ref`, computed over the
  // current repository contents.
  [[nodiscard]] Result<std::vector<integrity::Alert>> update_alerts(
      const integrity::SciRef& ref);

  // Registers the lockable hierarchy for a script: script -> implementations
  // -> files, so the paper's compatibility table can arbitrate collaborative
  // editing. Returns the script's lock node.
  [[nodiscard]] Result<LockResourceId> register_lock_tree(const std::string& script_name);
  [[nodiscard]] std::optional<LockResourceId> lock_node_of(const std::string& key) const;

 private:
  WebDocDb() = default;
  // After a durable reopen, re-takes the blob references that the resource
  // rows and verbal-description columns logically hold.
  void rehydrate_blob_refs();

  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<blob::BlobStore> blobs_;
  std::unique_ptr<docmodel::Repository> repo_;
  std::unique_ptr<dist::ObjectStore> objects_;
  std::unique_ptr<storage::sql::Engine> sql_;
  std::unique_ptr<dist::StationNode> node_;
  scm::ScmStore scm_;
  locking::HierarchyLockManager locks_;
  library::VirtualLibrary library_;
  StationId self_;
  std::map<std::string, LockResourceId> lock_nodes_;
  IdAllocator<LockResourceId> lock_ids_;
};

}  // namespace wdoc::core

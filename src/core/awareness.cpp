#include "core/awareness.hpp"

#include <algorithm>
#include <span>

#include "common/log.hpp"
#include "common/serialize.hpp"

namespace wdoc::core {

namespace {

Bytes encode_member_msg(UserId user, const std::string& name, const std::string& room,
                        const std::string& text) {
  Writer w;
  w.u64(user.value());
  w.str(name);
  w.str(room);
  w.str(text);
  return w.take();
}

struct MemberMsg {
  UserId user;
  std::string name;
  std::string room;
  std::string text;
};

Result<MemberMsg> decode_member_msg(std::span<const std::uint8_t> b) {
  Reader r(b);
  MemberMsg out;
  auto user = r.u64();
  if (!user) return user.error();
  out.user = UserId{user.value()};
  auto name = r.str();
  if (!name) return name.error();
  out.name = std::move(name).value();
  auto room = r.str();
  if (!room) return room.error();
  out.room = std::move(room).value();
  auto text = r.str();
  if (!text) return text.error();
  out.text = std::move(text).value();
  return out;
}

}  // namespace

// --- host ---------------------------------------------------------------------

AwarenessHost::AwarenessHost(net::Fabric& fabric, StationId self)
    : fabric_(&fabric), self_(self) {}

void AwarenessHost::bind() {
  fabric_->set_handler(self_, [this](const net::Message& msg) { on_message(msg); });
}

void AwarenessHost::on_message(const net::Message& msg) {
  auto decoded = decode_member_msg(msg.payload);
  if (!decoded) return;
  MemberMsg& m = decoded.value();
  auto& members = rooms_[m.room];
  auto it = std::find_if(members.begin(), members.end(),
                         [&](const RoomMember& r) { return r.user == m.user; });

  if (msg.type == kJoin) {
    if (it == members.end()) {
      members.push_back(RoomMember{m.user, m.name, msg.from, fabric_->now()});
      broadcast_roster(m.room);
    } else {
      it->last_seen = fabric_->now();
      it->station = msg.from;
    }
    return;
  }
  if (it == members.end()) return;  // everything else requires membership

  if (msg.type == kLeave) {
    members.erase(it);
    if (members.empty()) {
      rooms_.erase(m.room);
    } else {
      broadcast_roster(m.room);
    }
    return;
  }
  if (msg.type == kHeartbeat) {
    it->last_seen = fabric_->now();
    return;
  }
  if (msg.type == kChat) {
    it->last_seen = fabric_->now();
    ++chats_relayed_;
    for (const RoomMember& member : members) {
      if (member.user == m.user) continue;
      net::Message out;
      out.from = self_;
      out.to = member.station;
      out.type = kChatFwd;
      out.payload = encode_member_msg(m.user, it->name, m.room, m.text);
      (void)fabric_->send(std::move(out));
    }
    return;
  }
  WDOC_WARN("awareness host: unknown message type %s", msg.type.c_str());
}

void AwarenessHost::broadcast_roster(const std::string& room) {
  auto it = rooms_.find(room);
  if (it == rooms_.end()) return;
  Writer w;
  w.str(room);
  w.u32(static_cast<std::uint32_t>(it->second.size()));
  for (const RoomMember& m : it->second) w.str(m.name);
  // One refcounted roster buffer shared across the room fan-out.
  const net::Payload payload{w.take()};
  for (const RoomMember& m : it->second) {
    net::Message out;
    out.from = self_;
    out.to = m.station;
    out.type = kRoster;
    out.payload = payload;
    (void)fabric_->send(std::move(out));
  }
}

std::size_t AwarenessHost::sweep(SimTime timeout) {
  std::size_t expired = 0;
  SimTime now = fabric_->now();
  std::vector<std::string> changed;
  for (auto& [room, members] : rooms_) {
    auto stale = std::remove_if(members.begin(), members.end(),
                                [&](const RoomMember& m) {
                                  return now - m.last_seen > timeout;
                                });
    if (stale != members.end()) {
      expired += static_cast<std::size_t>(members.end() - stale);
      members.erase(stale, members.end());
      changed.push_back(room);
    }
  }
  for (const std::string& room : changed) {
    if (rooms_[room].empty()) {
      rooms_.erase(room);
    } else {
      broadcast_roster(room);
    }
  }
  return expired;
}

std::vector<RoomMember> AwarenessHost::roster(const std::string& room) const {
  auto it = rooms_.find(room);
  return it == rooms_.end() ? std::vector<RoomMember>{} : it->second;
}

// --- client ---------------------------------------------------------------------

AwarenessClient::AwarenessClient(net::Fabric& fabric, StationId self, StationId host,
                                 UserId user, std::string name)
    : fabric_(&fabric), self_(self), host_(host), user_(user), name_(std::move(name)) {}

void AwarenessClient::bind() {
  fabric_->set_handler(self_, [this](const net::Message& msg) { on_message(msg); });
}

Status AwarenessClient::send_simple(const char* type, const std::string& room) {
  net::Message msg;
  msg.from = self_;
  msg.to = host_;
  msg.type = type;
  msg.payload = encode_member_msg(user_, name_, room, "");
  return fabric_->send(std::move(msg));
}

Status AwarenessClient::join(const std::string& room) {
  return send_simple(AwarenessHost::kJoin, room);
}
Status AwarenessClient::leave(const std::string& room) {
  return send_simple(AwarenessHost::kLeave, room);
}
Status AwarenessClient::heartbeat(const std::string& room) {
  return send_simple(AwarenessHost::kHeartbeat, room);
}

Status AwarenessClient::chat(const std::string& room, const std::string& text) {
  net::Message msg;
  msg.from = self_;
  msg.to = host_;
  msg.type = AwarenessHost::kChat;
  msg.payload = encode_member_msg(user_, name_, room, text);
  return fabric_->send(std::move(msg));
}

void AwarenessClient::on_message(const net::Message& msg) {
  if (msg.type == AwarenessHost::kChatFwd) {
    auto decoded = decode_member_msg(msg.payload);
    if (!decoded) return;
    if (on_chat_) {
      on_chat_(decoded.value().room, decoded.value().name, decoded.value().text);
    }
    return;
  }
  if (msg.type == AwarenessHost::kRoster) {
    Reader r(msg.payload);
    auto room = r.str();
    if (!room) return;
    auto n = r.count(4);
    if (!n) return;
    std::vector<std::string> names;
    names.reserve(n.value());
    for (std::uint32_t i = 0; i < n.value(); ++i) {
      auto name = r.str();
      if (!name) return;
      names.push_back(std::move(name).value());
    }
    rosters_[room.value()] = names;
    if (on_roster_) on_roster_(room.value(), names);
    return;
  }
}

std::vector<std::string> AwarenessClient::known_roster(const std::string& room) const {
  auto it = rosters_.find(room);
  return it == rosters_.end() ? std::vector<std::string>{} : it->second;
}

}  // namespace wdoc::core

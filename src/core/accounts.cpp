#include "core/accounts.hpp"

namespace wdoc::core {

const char* role_name(Role r) {
  switch (r) {
    case Role::student: return "student";
    case Role::instructor: return "instructor";
    case Role::administrator: return "administrator";
  }
  return "?";
}

bool role_grants(Role role, Privilege p) {
  switch (p) {
    case Privilege::browse_library:
    case Privilege::check_out_course:
    case Privilege::view_own_transcript:
      return true;
    case Privilege::author_course:
    case Privilege::manage_library:
    case Privilege::broadcast_lecture:
    case Privilege::record_grades:
      return role == Role::instructor || role == Role::administrator;
    case Privilege::admit_student:
    case Privilege::view_any_transcript:
    case Privilege::manage_accounts:
      return role == Role::administrator;
  }
  return false;
}

Result<UserId> AccountRegistry::create_account(const std::string& name, Role role,
                                               std::int64_t now,
                                               std::optional<UserId> actor) {
  if (name.empty()) return Error{Errc::invalid_argument, "empty account name"};
  if (by_name_.contains(name)) {
    return Error{Errc::already_exists, "account exists: " + name};
  }
  if (accounts_.empty()) {
    // Bootstrap: the first account must be the administrator installing the
    // system; no actor check possible yet.
    if (role != Role::administrator) {
      return Error{Errc::invalid_argument,
                   "the first account must be an administrator"};
    }
  } else {
    if (!actor) return Error{Errc::lock_conflict, "account creation needs an actor"};
    WDOC_TRY(require(*actor, Privilege::manage_accounts));
  }
  UserId id = ids_.next();
  Account account{id, name, role, now, true};
  accounts_.emplace(id, account);
  by_name_.emplace(name, id);
  return id;
}

Status AccountRegistry::deactivate(UserId id, UserId actor) {
  WDOC_TRY(require(actor, Privilege::manage_accounts));
  auto it = accounts_.find(id);
  if (it == accounts_.end()) return {Errc::not_found, "no such account"};
  if (id == actor) return {Errc::conflict, "cannot deactivate yourself"};
  it->second.active = false;
  return Status::ok();
}

Result<Account> AccountRegistry::get(UserId id) const {
  auto it = accounts_.find(id);
  if (it == accounts_.end()) return Error{Errc::not_found, "no such account"};
  return it->second;
}

std::optional<UserId> AccountRegistry::find_by_name(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::vector<Account> AccountRegistry::by_role(Role role) const {
  std::vector<Account> out;
  for (const auto& [_, account] : accounts_) {
    if (account.role == role && account.active) out.push_back(account);
  }
  return out;
}

bool AccountRegistry::allowed(UserId id, Privilege p) const {
  auto it = accounts_.find(id);
  if (it == accounts_.end() || !it->second.active) return false;
  return role_grants(it->second.role, p);
}

Status AccountRegistry::require(UserId id, Privilege p) const {
  if (allowed(id, p)) return Status::ok();
  auto it = accounts_.find(id);
  if (it == accounts_.end()) {
    return {Errc::not_found, "unknown user " + std::to_string(id.value())};
  }
  if (!it->second.active) {
    return {Errc::lock_conflict, it->second.name + " is deactivated"};
  }
  return {Errc::lock_conflict,
          it->second.name + " (" + role_name(it->second.role) +
              ") lacks the required privilege"};
}

}  // namespace wdoc::core

// Registrar — the paper's Administration Criterion: "a virtual university
// environment needs to have administration facilities to keep admission
// records, transcripts, and so on. These administration tools should be
// available to administrators, instructors, and students (e.g., checking
// transcript information)."
//
// Admission records, per-course enrollment, grade recording, transcripts
// with GPA, and role-gated access: students see their own transcript,
// instructors the grades of courses they teach, administrators everything.
#pragma once

#include "core/accounts.hpp"

namespace wdoc::core {

struct AdmissionRecord {
  UserId student;
  std::string program;     // e.g. "computer science"
  std::int64_t admitted_at = 0;
  std::string admitted_by;  // administrator name
};

struct Enrollment {
  UserId student;
  std::string course_number;
  std::int64_t enrolled_at = 0;
  // Grade on a 0..4.0 scale; unset while the course is in progress.
  std::optional<double> grade;
  std::string graded_by;
};

struct Transcript {
  UserId student;
  std::vector<Enrollment> courses;
  double gpa = 0.0;          // over graded courses
  std::size_t in_progress = 0;
};

class Registrar {
 public:
  explicit Registrar(AccountRegistry& accounts) : accounts_(&accounts) {}

  // --- admission (administrator) ---------------------------------------
  [[nodiscard]] Status admit(UserId actor, UserId student, const std::string& program,
                             std::int64_t now);
  [[nodiscard]] Result<AdmissionRecord> admission_of(UserId actor, UserId student) const;
  [[nodiscard]] bool is_admitted(UserId student) const;

  // --- enrollment --------------------------------------------------------
  // Students enroll themselves (must be admitted); instructors/admins may
  // enroll anyone.
  [[nodiscard]] Status enroll(UserId actor, UserId student,
                              const std::string& course_number, std::int64_t now);
  [[nodiscard]] std::vector<UserId> roster(const std::string& course_number) const;

  // --- grading (instructor+) ---------------------------------------------
  [[nodiscard]] Status record_grade(UserId actor, UserId student,
                                    const std::string& course_number, double grade);

  // --- transcripts ---------------------------------------------------------
  // Students may fetch their own; administrators anyone's; instructors
  // anyone's they have graded (simplification of "their courses").
  [[nodiscard]] Result<Transcript> transcript(UserId actor, UserId student) const;

  [[nodiscard]] std::size_t admission_count() const { return admissions_.size(); }
  [[nodiscard]] std::size_t enrollment_count() const { return enrollments_.size(); }

 private:
  [[nodiscard]] const Enrollment* find_enrollment(UserId student,
                                                  const std::string& course) const;

  AccountRegistry* accounts_;
  std::map<UserId, AdmissionRecord> admissions_;
  std::vector<Enrollment> enrollments_;
};

}  // namespace wdoc::core

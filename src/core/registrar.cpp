#include "core/registrar.hpp"

#include <algorithm>

namespace wdoc::core {

Status Registrar::admit(UserId actor, UserId student, const std::string& program,
                        std::int64_t now) {
  WDOC_TRY(accounts_->require(actor, Privilege::admit_student));
  auto account = accounts_->get(student);
  if (!account) return account.status();
  if (account.value().role != Role::student) {
    return {Errc::invalid_argument, account.value().name + " is not a student"};
  }
  if (admissions_.contains(student)) {
    return {Errc::already_exists, account.value().name + " is already admitted"};
  }
  auto actor_account = accounts_->get(actor);
  AdmissionRecord record{student, program, now,
                         actor_account ? actor_account.value().name : "?"};
  admissions_.emplace(student, std::move(record));
  return Status::ok();
}

Result<AdmissionRecord> Registrar::admission_of(UserId actor, UserId student) const {
  if (actor != student) {
    WDOC_TRY(accounts_->require(actor, Privilege::view_any_transcript));
  }
  auto it = admissions_.find(student);
  if (it == admissions_.end()) {
    return Error{Errc::not_found, "no admission record"};
  }
  return it->second;
}

bool Registrar::is_admitted(UserId student) const {
  return admissions_.contains(student);
}

Status Registrar::enroll(UserId actor, UserId student, const std::string& course_number,
                         std::int64_t now) {
  if (actor != student) {
    // Enrolling someone else is an instructor/administrator action.
    WDOC_TRY(accounts_->require(actor, Privilege::record_grades));
  }
  if (!is_admitted(student)) {
    return {Errc::conflict, "student is not admitted"};
  }
  if (find_enrollment(student, course_number) != nullptr) {
    return {Errc::already_exists, "already enrolled in " + course_number};
  }
  enrollments_.push_back(Enrollment{student, course_number, now, std::nullopt, ""});
  return Status::ok();
}

std::vector<UserId> Registrar::roster(const std::string& course_number) const {
  std::vector<UserId> out;
  for (const Enrollment& e : enrollments_) {
    if (e.course_number == course_number) out.push_back(e.student);
  }
  return out;
}

Status Registrar::record_grade(UserId actor, UserId student,
                               const std::string& course_number, double grade) {
  WDOC_TRY(accounts_->require(actor, Privilege::record_grades));
  if (grade < 0.0 || grade > 4.0) {
    return {Errc::invalid_argument, "grade out of [0, 4.0]"};
  }
  for (Enrollment& e : enrollments_) {
    if (e.student == student && e.course_number == course_number) {
      auto actor_account = accounts_->get(actor);
      e.grade = grade;
      e.graded_by = actor_account ? actor_account.value().name : "?";
      return Status::ok();
    }
  }
  return {Errc::not_found, "no such enrollment"};
}

Result<Transcript> Registrar::transcript(UserId actor, UserId student) const {
  if (actor != student) {
    // "Checking transcript information" of others needs administrator
    // rights, or instructor rights for courses the actor graded.
    if (!accounts_->allowed(actor, Privilege::view_any_transcript)) {
      auto actor_account = accounts_->get(actor);
      if (!actor_account) return actor_account.error();
      bool graded_one = std::any_of(
          enrollments_.begin(), enrollments_.end(), [&](const Enrollment& e) {
            return e.student == student && e.graded_by == actor_account.value().name;
          });
      if (!graded_one) {
        return Error{Errc::lock_conflict,
                     "not allowed to view this student's transcript"};
      }
    }
  }
  Transcript t;
  t.student = student;
  double points = 0.0;
  std::size_t graded = 0;
  for (const Enrollment& e : enrollments_) {
    if (e.student != student) continue;
    t.courses.push_back(e);
    if (e.grade) {
      points += *e.grade;
      ++graded;
    } else {
      ++t.in_progress;
    }
  }
  t.gpa = graded == 0 ? 0.0 : points / static_cast<double>(graded);
  return t;
}

const Enrollment* Registrar::find_enrollment(UserId student,
                                             const std::string& course) const {
  for (const Enrollment& e : enrollments_) {
    if (e.student == student && e.course_number == course) return &e;
  }
  return nullptr;
}

}  // namespace wdoc::core

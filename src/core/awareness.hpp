// Awareness — the paper's second criterion: "since instructors and students
// are separated spatially, they are sometimes hard to 'feel' the existence
// of each other. A virtual university supporting environment needs to
// provide reasonable communication tools such that awareness is realized."
// (§1; the student workstation receives daemons for "group discussions").
//
// A host station (typically the instructor's) keeps per-room rosters;
// member daemons join, heartbeat, and chat. The host relays chat to every
// other member and pushes roster updates on membership changes; a sweep
// expires members whose heartbeats stopped (the 1999 equivalent of a
// dropped modem connection).
//
// Wire protocol (all via net::Fabric, so it runs on the simulator and on
// real threads alike):
//   aw.join       member -> host    {user, name, room}
//   aw.leave      member -> host    {user, room}
//   aw.heartbeat  member -> host    {user, room}
//   aw.chat       member -> host    {user, room, text}
//   aw.chat_fwd   host -> member    {room, from_name, text}
//   aw.roster     host -> member    {room, names...}
#pragma once

#include <functional>
#include <map>

#include "common/ids.hpp"
#include "net/fabric.hpp"

namespace wdoc::core {

struct RoomMember {
  UserId user;
  std::string name;
  StationId station;
  SimTime last_seen;
};

class AwarenessHost {
 public:
  AwarenessHost(net::Fabric& fabric, StationId self);

  void bind();
  [[nodiscard]] StationId id() const { return self_; }

  // Members not heard from within `timeout` are dropped; returns how many
  // were expired (each expiry triggers a roster update).
  std::size_t sweep(SimTime timeout);

  [[nodiscard]] std::vector<RoomMember> roster(const std::string& room) const;
  [[nodiscard]] std::size_t room_count() const { return rooms_.size(); }
  [[nodiscard]] std::uint64_t chats_relayed() const { return chats_relayed_; }

  static constexpr const char* kJoin = "aw.join";
  static constexpr const char* kLeave = "aw.leave";
  static constexpr const char* kHeartbeat = "aw.heartbeat";
  static constexpr const char* kChat = "aw.chat";
  static constexpr const char* kChatFwd = "aw.chat_fwd";
  static constexpr const char* kRoster = "aw.roster";

 private:
  void on_message(const net::Message& msg);
  void broadcast_roster(const std::string& room);

  net::Fabric* fabric_;
  StationId self_;
  std::map<std::string, std::vector<RoomMember>> rooms_;
  std::uint64_t chats_relayed_ = 0;
};

class AwarenessClient {
 public:
  using ChatHandler =
      std::function<void(const std::string& room, const std::string& from,
                         const std::string& text)>;
  using RosterHandler =
      std::function<void(const std::string& room, const std::vector<std::string>&)>;

  AwarenessClient(net::Fabric& fabric, StationId self, StationId host, UserId user,
                  std::string name);

  void bind();
  [[nodiscard]] StationId id() const { return self_; }

  [[nodiscard]] Status join(const std::string& room);
  [[nodiscard]] Status leave(const std::string& room);
  [[nodiscard]] Status heartbeat(const std::string& room);
  [[nodiscard]] Status chat(const std::string& room, const std::string& text);

  void set_chat_handler(ChatHandler handler) { on_chat_ = std::move(handler); }
  void set_roster_handler(RosterHandler handler) { on_roster_ = std::move(handler); }

  // Last roster received per room.
  [[nodiscard]] std::vector<std::string> known_roster(const std::string& room) const;

 private:
  void on_message(const net::Message& msg);
  [[nodiscard]] Status send_simple(const char* type, const std::string& room);

  net::Fabric* fabric_;
  StationId self_;
  StationId host_;
  UserId user_;
  std::string name_;
  ChatHandler on_chat_;
  RosterHandler on_roster_;
  std::map<std::string, std::vector<std::string>> rosters_;
};

}  // namespace wdoc::core

#include "core/sessions.hpp"

namespace wdoc::core {

Status InstructorSession::author_course(const CourseSpec& spec) {
  docmodel::Repository& repo = db_->repository();

  docmodel::ScriptInfo script;
  script.name = spec.script_name;
  script.keywords = spec.keywords;
  script.author = name_;
  script.version = "1.0";
  script.created_at = spec.now;
  script.description = spec.description;
  script.expected_completion = spec.now;
  script.pct_complete = 100.0;
  WDOC_TRY(repo.create_script(script));

  docmodel::ImplementationInfo impl;
  impl.starting_url = spec.starting_url;
  impl.script_name = spec.script_name;
  impl.author = name_;
  impl.created_at = spec.now;
  impl.try_number = 1;
  WDOC_TRY(repo.create_implementation(impl));

  for (const auto& [path, body] : spec.html_pages) {
    docmodel::HtmlFileInfo file;
    file.path = path;
    file.starting_url = spec.starting_url;
    file.content.assign(body.begin(), body.end());
    WDOC_TRY(repo.add_html_file(file));
  }
  for (const CourseSpec::ResourceSpec& r : spec.resources) {
    WDOC_TRY(repo.attach_synthetic_resource("implementation", spec.starting_url,
                                            r.digest, r.size, r.type, r.playout_ms)
                 .status());
  }

  // SCM: the script text is the versioned artifact.
  Bytes script_body(spec.description.begin(), spec.description.end());
  WDOC_TRY(db_->scm().add_item("script:" + spec.script_name, std::move(script_body),
                               name_, spec.now));
  WDOC_TRY(db_->register_lock_tree(spec.script_name).status());

  library::LibraryEntry entry;
  entry.course_number = spec.course_number;
  entry.title = spec.title;
  entry.instructor = name_;
  for (const std::string& kw : library::tokenize(spec.keywords)) {
    entry.keywords.push_back(kw);
  }
  entry.script_name = spec.script_name;
  entry.starting_url = spec.starting_url;
  entry.added_at = spec.now;
  WDOC_TRY(db_->library().add_entry(entry));
  return Status::ok();
}

Status InstructorSession::annotate(const std::string& starting_url,
                                   const docmodel::AnnotationDoc& doc,
                                   const std::string& annotation_name, std::int64_t now) {
  auto impl = db_->repository().get_implementation(starting_url);
  if (!impl) return impl.status();
  docmodel::AnnotationInfo info;
  info.name = annotation_name;
  info.author = name_;
  info.version = "1.0";
  info.created_at = now;
  info.script_name = impl.value().script_name;
  info.starting_url = starting_url;
  return db_->repository().create_annotation(info, doc);
}

Status InstructorSession::record_test(const std::string& starting_url,
                                      const docmodel::TraversalLog& log,
                                      const std::string& test_name, std::int64_t now,
                                      const std::string& bug_description) {
  auto impl = db_->repository().get_implementation(starting_url);
  if (!impl) return impl.status();
  docmodel::TestRecordInfo record;
  record.name = test_name;
  record.global_scope = false;
  record.traversal_messages = log.encode();
  record.script_name = impl.value().script_name;
  record.starting_url = starting_url;
  record.created_at = now;
  WDOC_TRY(db_->repository().create_test_record(record));

  if (!bug_description.empty()) {
    docmodel::BugReportInfo bug;
    bug.name = test_name + "-bug1";
    bug.qa_engineer = name_;
    bug.test_procedure = "traversal replay of " + test_name;
    bug.bug_description = bug_description;
    bug.test_record_name = test_name;
    bug.created_at = now;
    WDOC_TRY(db_->repository().create_bug_report(bug));
  }
  return Status::ok();
}

Status InstructorSession::begin_edit(const std::string& script_name, std::int64_t now) {
  auto node = db_->lock_node_of("script:" + script_name);
  if (!node) return {Errc::not_found, "no lock tree for " + script_name};
  WDOC_TRY(db_->locks().lock(user_, *node, locking::Access::write));
  Status s = db_->scm().check_out("script:" + script_name, user_, /*write=*/true, now);
  if (!s.is_ok()) {
    (void)db_->locks().unlock(user_, *node);
    return s;
  }
  return Status::ok();
}

Status InstructorSession::finish_edit(const std::string& script_name, Bytes new_content,
                                      const std::string& comment, std::int64_t now) {
  auto node = db_->lock_node_of("script:" + script_name);
  if (!node) return {Errc::not_found, "no lock tree for " + script_name};
  auto meta = db_->scm().check_in("script:" + script_name, user_, std::move(new_content),
                                  comment, now);
  if (!meta) return meta.status();
  return db_->locks().unlock(user_, *node);
}

void InstructorSession::abandon_edit(const std::string& script_name) {
  (void)db_->scm().cancel_checkout("script:" + script_name, user_);
  if (auto node = db_->lock_node_of("script:" + script_name)) {
    (void)db_->locks().unlock(user_, *node);
  }
}

Status InstructorSession::broadcast_lecture(const std::string& starting_url) {
  if (db_->node() == nullptr) return {Errc::unavailable, "station not attached"};
  auto manifest = db_->manifest_for(starting_url);
  if (!manifest) return manifest.status();
  return db_->node()->broadcast_push(manifest.value());
}

Result<std::vector<integrity::Alert>> InstructorSession::alerts_for_script(
    const std::string& script_name) {
  return db_->update_alerts(integrity::SciRef{integrity::SciKind::script, script_name});
}

// --- StudentSession ----------------------------------------------------------

std::vector<library::SearchHit> StudentSession::search(const std::string& query) const {
  return db_->library().search(query);
}

std::vector<library::LibraryEntry> StudentSession::courses_by_instructor(
    const std::string& instructor) const {
  return db_->library().by_instructor(instructor);
}

Status StudentSession::check_out(const std::string& course_number, std::int64_t now) {
  return db_->library().check_out(course_number, user_, now);
}

Status StudentSession::check_in(const std::string& course_number, std::int64_t now) {
  return db_->library().check_in(course_number, user_, now);
}

library::AssessmentReport StudentSession::assessment() const {
  return db_->library().assess(user_);
}

Status StudentSession::fetch_course(const std::string& starting_url,
                                    dist::StationNode::FetchCallback cb) {
  if (db_->node() == nullptr) return {Errc::unavailable, "station not attached"};
  return db_->node()->fetch(starting_url, std::move(cb));
}

}  // namespace wdoc::core

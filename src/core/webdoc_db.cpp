#include "core/webdoc_db.hpp"

namespace wdoc::core {

Result<std::unique_ptr<WebDocDb>> WebDocDb::create(const WebDocDbOptions& options) {
  WDOC_TRY(options.node.validate());
  auto db = std::unique_ptr<WebDocDb>(new WebDocDb());
  if (options.data_dir.empty()) {
    db->db_ = storage::Database::in_memory();
  } else {
    auto opened = storage::Database::open(options.data_dir);
    if (!opened) return opened.error();
    db->db_ = std::move(opened).value();
  }
  // Install the document schema unless a durable reopen already has it.
  if (!db->db_->catalog().has_table(docmodel::kScriptTable)) {
    WDOC_TRY(docmodel::install_schemas(*db->db_));
  }
  if (options.data_dir.empty()) {
    db->blobs_ = std::make_unique<blob::BlobStore>(options.blob_capacity);
  } else {
    auto opened =
        blob::BlobStore::open(options.data_dir + "/blobs", options.blob_capacity);
    if (!opened) return opened.error();
    db->blobs_ = std::move(opened).value();
  }
  db->repo_ = std::make_unique<docmodel::Repository>(*db->db_, *db->blobs_);
  db->objects_ = std::make_unique<dist::ObjectStore>(*db->blobs_);
  db->sql_ = std::make_unique<storage::sql::Engine>(*db->db_);
  if (!options.data_dir.empty()) {
    db->rehydrate_blob_refs();
    if (db->db_->catalog().has_table("wd_library_entry")) {
      WDOC_TRY(db->library_.load(*db->db_));
    }
  }
  return db;
}

void WebDocDb::rehydrate_blob_refs() {
  // Blob files reopen with zero references; every row-level pointer into
  // the BLOB layer re-takes its reference so gc() keeps the right payloads.
  auto reref = [&](const std::string& hex) {
    auto digest = Digest128::from_hex(hex);
    if (!digest) return;
    if (auto id = blobs_->find(*digest)) {
      (void)blobs_->add_ref(*id);
    }
  };
  if (const storage::Table* resources = db_->catalog().table(docmodel::kResourceTable)) {
    auto ci = resources->schema().column_index("digest");
    resources->scan([&](RowId, const std::vector<storage::Value>& row) {
      if (!row[*ci].is_null()) reref(row[*ci].as_text());
      return true;
    });
  }
  if (const storage::Table* scripts = db_->catalog().table(docmodel::kScriptTable)) {
    auto ci = scripts->schema().column_index("verbal_description_digest");
    scripts->scan([&](RowId, const std::vector<storage::Value>& row) {
      if (!row[*ci].is_null()) reref(row[*ci].as_text());
      return true;
    });
  }
}

WebDocDb::~WebDocDb() = default;

Status WebDocDb::attach(net::Fabric& fabric, StationId self) {
  if (node_ != nullptr) return {Errc::already_exists, "already attached"};
  self_ = self;
  node_ = std::make_unique<dist::StationNode>(fabric, self, *objects_);
  node_->bind();
  return Status::ok();
}

Result<dist::DocManifest> WebDocDb::manifest_for(const std::string& starting_url) {
  auto impl = repo_->get_implementation(starting_url);
  if (!impl) return impl.error();

  dist::DocManifest manifest;
  manifest.doc_key = starting_url;
  manifest.home = self_;

  auto htmls = repo_->html_files_of(starting_url);
  if (!htmls) return htmls.error();
  for (const auto& f : htmls.value()) manifest.structure_bytes += f.content.size();
  auto progs = repo_->program_files_of(starting_url);
  if (!progs) return progs.error();
  for (const auto& f : progs.value()) manifest.structure_bytes += f.content.size();

  auto resources = repo_->resources_of("implementation", starting_url);
  if (!resources) return resources.error();
  auto script_resources = repo_->resources_of("script", impl.value().script_name);
  if (!script_resources) return script_resources.error();

  auto append = [&](const std::vector<docmodel::ResourceInfo>& rs) -> Status {
    for (const docmodel::ResourceInfo& r : rs) {
      auto digest = Digest128::from_hex(r.digest_hex);
      if (!digest) return {Errc::corrupt, "bad resource digest: " + r.digest_hex};
      dist::BlobRef ref;
      ref.digest = *digest;
      ref.size = r.size;
      ref.type = r.media_type;
      ref.playout_ms = r.playout_ms;
      manifest.blobs.push_back(ref);
    }
    return Status::ok();
  };
  WDOC_TRY(append(resources.value()));
  WDOC_TRY(append(script_resources.value()));
  return manifest;
}

Result<std::vector<integrity::Alert>> WebDocDb::update_alerts(
    const integrity::SciRef& ref) {
  auto diagram = integrity::build_diagram(*repo_);
  if (!diagram) return diagram.error();
  if (!diagram.value().has_object(ref)) {
    return Error{Errc::not_found, "unknown SCI: " + ref.to_string()};
  }
  return diagram.value().on_update(ref);
}

Result<LockResourceId> WebDocDb::register_lock_tree(const std::string& script_name) {
  auto script = repo_->get_script(script_name);
  if (!script) return script.error();
  std::string script_key = "script:" + script_name;
  if (lock_nodes_.contains(script_key)) {
    return Error{Errc::already_exists, "lock tree exists for " + script_name};
  }

  LockResourceId root = lock_ids_.next();
  WDOC_TRY(locks_.add_node(root, std::nullopt));
  lock_nodes_.emplace(script_key, root);

  auto impls = repo_->implementations_of(script_name);
  if (!impls) return impls.error();
  for (const auto& impl : impls.value()) {
    LockResourceId impl_node = lock_ids_.next();
    WDOC_TRY(locks_.add_node(impl_node, root));
    lock_nodes_.emplace("implementation:" + impl.starting_url, impl_node);

    auto htmls = repo_->html_files_of(impl.starting_url);
    if (!htmls) return htmls.error();
    for (const auto& f : htmls.value()) {
      LockResourceId file_node = lock_ids_.next();
      WDOC_TRY(locks_.add_node(file_node, impl_node));
      lock_nodes_.emplace("html:" + f.path, file_node);
    }
    auto progs = repo_->program_files_of(impl.starting_url);
    if (!progs) return progs.error();
    for (const auto& f : progs.value()) {
      LockResourceId file_node = lock_ids_.next();
      WDOC_TRY(locks_.add_node(file_node, impl_node));
      lock_nodes_.emplace("program:" + f.path, file_node);
    }
  }
  return root;
}

std::optional<LockResourceId> WebDocDb::lock_node_of(const std::string& key) const {
  auto it = lock_nodes_.find(key);
  if (it == lock_nodes_.end()) return std::nullopt;
  return it->second;
}

}  // namespace wdoc::core

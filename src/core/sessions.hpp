// Role-specific session APIs over a WebDocDb station — the programmatic
// equivalents of the paper's instructor tools (FrontPage-authored courses,
// the annotation daemon, the QA tool) and the student's Web-browser-side
// daemons (library search, course check-out, lecture fetch).
#pragma once

#include "core/webdoc_db.hpp"
#include "docmodel/traversal.hpp"

namespace wdoc::core {

// Everything needed to author one course in one call.
struct CourseSpec {
  std::string script_name;
  std::string course_number;
  std::string title;
  std::string keywords;
  std::string description;
  std::string starting_url;
  std::vector<std::pair<std::string, std::string>> html_pages;  // path, body
  struct ResourceSpec {
    Digest128 digest;
    std::uint64_t size = 0;
    blob::MediaType type = blob::MediaType::other;
    std::optional<std::int64_t> playout_ms;
  };
  std::vector<ResourceSpec> resources;
  std::int64_t now = 0;
};

class InstructorSession {
 public:
  InstructorSession(WebDocDb& db, UserId user, std::string name)
      : db_(&db), user_(user), name_(std::move(name)) {}

  [[nodiscard]] UserId user() const { return user_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  // Creates script + implementation + pages + resources, registers the SCM
  // item and lock tree, and lists the course in the virtual library.
  [[nodiscard]] Status author_course(const CourseSpec& spec);

  // Adds an annotation (different instructors annotate the same
  // implementation independently).
  [[nodiscard]] Status annotate(const std::string& starting_url,
                                const docmodel::AnnotationDoc& doc,
                                const std::string& annotation_name, std::int64_t now);

  // Records a QA session and an optional bug report against it.
  [[nodiscard]] Status record_test(const std::string& starting_url,
                                   const docmodel::TraversalLog& log,
                                   const std::string& test_name, std::int64_t now,
                                   const std::string& bug_description = "");

  // Collaborative editing: lock + SCM check-out, edit, check-in + unlock.
  [[nodiscard]] Status begin_edit(const std::string& script_name, std::int64_t now);
  [[nodiscard]] Status finish_edit(const std::string& script_name, Bytes new_content,
                                   const std::string& comment, std::int64_t now);
  void abandon_edit(const std::string& script_name);

  // Pre-broadcasts a lecture down the configured distribution tree.
  [[nodiscard]] Status broadcast_lecture(const std::string& starting_url);

  // Alerts produced by an update to this script.
  [[nodiscard]] Result<std::vector<integrity::Alert>> alerts_for_script(
      const std::string& script_name);

 private:
  WebDocDb* db_;
  UserId user_;
  std::string name_;
};

class StudentSession {
 public:
  StudentSession(WebDocDb& db, UserId user, std::string name)
      : db_(&db), user_(user), name_(std::move(name)) {}

  [[nodiscard]] UserId user() const { return user_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  // --- virtual library ------------------------------------------------------
  [[nodiscard]] std::vector<library::SearchHit> search(const std::string& query) const;
  [[nodiscard]] std::vector<library::LibraryEntry> courses_by_instructor(
      const std::string& instructor) const;
  [[nodiscard]] Status check_out(const std::string& course_number, std::int64_t now);
  [[nodiscard]] Status check_in(const std::string& course_number, std::int64_t now);
  [[nodiscard]] library::AssessmentReport assessment() const;

  // --- lecture access -------------------------------------------------------
  // Resolves a course's document through the distribution layer; local hits
  // complete synchronously, remote ones via the tree.
  [[nodiscard]] Status fetch_course(const std::string& starting_url,
                                    dist::StationNode::FetchCallback cb);

 private:
  WebDocDb* db_;
  UserId user_;
  std::string name_;
};

}  // namespace wdoc::core

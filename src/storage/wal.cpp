#include "storage/wal.hpp"

#include "obs/metrics.hpp"

#include <set>

#include "common/hash.hpp"

namespace wdoc::storage {

namespace {

void encode_row(Writer& w, const std::vector<Value>& row) {
  w.u32(static_cast<std::uint32_t>(row.size()));
  for (const Value& v : row) v.serialize(w);
}

Result<std::vector<Value>> decode_row(Reader& r) {
  auto n = r.count();
  if (!n) return n.error();
  std::vector<Value> row;
  row.reserve(n.value());
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    auto v = Value::deserialize(r);
    if (!v) return v.error();
    row.push_back(std::move(v).value());
  }
  return row;
}

}  // namespace

Bytes LogRecord::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(txn);
  w.str(table);
  w.u64(row.value());
  encode_row(w, before);
  encode_row(w, after);
  w.boolean(schema.has_value());
  if (schema) schema->serialize(w);
  return w.take();
}

Result<LogRecord> LogRecord::decode(const Bytes& frame) {
  Reader r(frame);
  LogRecord rec;
  auto kind = r.u8();
  if (!kind) return kind.error();
  rec.kind = static_cast<LogKind>(kind.value());
  auto txn = r.u64();
  if (!txn) return txn.error();
  rec.txn = txn.value();
  auto table = r.str();
  if (!table) return table.error();
  rec.table = std::move(table).value();
  auto row = r.u64();
  if (!row) return row.error();
  rec.row = RowId{row.value()};
  auto before = decode_row(r);
  if (!before) return before.error();
  rec.before = std::move(before).value();
  auto after = decode_row(r);
  if (!after) return after.error();
  rec.after = std::move(after).value();
  auto has_schema = r.boolean();
  if (!has_schema) return has_schema.error();
  if (has_schema.value()) {
    auto s = Schema::deserialize(r);
    if (!s) return s.error();
    rec.schema = std::move(s).value();
  }
  return rec;
}

Wal::~Wal() { close(); }

Status Wal::open(const std::string& path, bool truncate) {
  close();
  file_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file_ == nullptr) return {Errc::io_error, "cannot open WAL: " + path};
  path_ = path;
  bytes_appended_ = 0;
  return Status::ok();
}

void Wal::close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status Wal::append(const LogRecord& record) {
  if (file_ == nullptr) return {Errc::io_error, "WAL not open"};
  Bytes payload = record.encode();
  Writer frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u64(fnv1a64(std::span<const std::uint8_t>(payload)));
  frame.raw(payload);
  const Bytes& buf = frame.data();
  if (std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size()) {
    return {Errc::io_error, "WAL write failed"};
  }
  bytes_appended_ += buf.size();
  static obs::Counter& c_appends =
      obs::MetricsRegistry::global().counter("storage.wal_appends");
  static obs::Counter& c_bytes =
      obs::MetricsRegistry::global().counter("storage.wal_bytes");
  c_appends.inc();
  c_bytes.inc(buf.size());
  return Status::ok();
}

Status Wal::sync() {
  if (file_ == nullptr) return {Errc::io_error, "WAL not open"};
  if (std::fflush(file_) != 0) return {Errc::io_error, "WAL flush failed"};
  static obs::Counter& c_fsyncs =
      obs::MetricsRegistry::global().counter("storage.wal_fsyncs");
  c_fsyncs.inc();
  return Status::ok();
}

Result<std::vector<LogRecord>> Wal::read_all(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::vector<LogRecord>{};  // no log yet
  std::vector<LogRecord> out;
  for (;;) {
    std::uint8_t header[12];
    if (std::fread(header, 1, sizeof header, f) != sizeof header) break;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
    std::uint64_t checksum = 0;
    for (int i = 0; i < 8; ++i)
      checksum |= static_cast<std::uint64_t>(header[4 + i]) << (8 * i);
    if (len > (64u << 20)) break;  // implausible frame; treat as torn tail
    Bytes payload(len);
    if (len > 0 && std::fread(payload.data(), 1, len, f) != len) break;
    if (fnv1a64(std::span<const std::uint8_t>(payload)) != checksum) break;
    auto rec = LogRecord::decode(payload);
    if (!rec) break;
    out.push_back(std::move(rec).value());
  }
  std::fclose(f);
  return out;
}

Status Wal::replay(const std::vector<LogRecord>& records, Catalog& catalog) {
  std::set<std::uint64_t> committed{0};  // autocommit pseudo-txn
  for (const LogRecord& rec : records) {
    if (rec.kind == LogKind::commit) committed.insert(rec.txn);
  }
  for (const LogRecord& rec : records) {
    if (!committed.contains(rec.txn)) continue;
    switch (rec.kind) {
      case LogKind::begin:
      case LogKind::commit:
      case LogKind::abort:
        break;
      case LogKind::create_table: {
        if (!rec.schema) return {Errc::corrupt, "create_table without schema"};
        WDOC_TRY(catalog.create_table(*rec.schema));
        break;
      }
      case LogKind::drop_table:
        WDOC_TRY(catalog.drop_table(rec.table));
        break;
      case LogKind::insert: {
        Table* t = catalog.table(rec.table);
        if (t == nullptr) return {Errc::corrupt, "replay insert into missing table"};
        WDOC_TRY(t->restore(rec.row, rec.after));
        break;
      }
      case LogKind::update: {
        Table* t = catalog.table(rec.table);
        if (t == nullptr) return {Errc::corrupt, "replay update of missing table"};
        WDOC_TRY(t->update(rec.row, rec.after));
        break;
      }
      case LogKind::erase: {
        Table* t = catalog.table(rec.table);
        if (t == nullptr) return {Errc::corrupt, "replay erase of missing table"};
        WDOC_TRY(t->erase(rec.row));
        break;
      }
    }
  }
  return Status::ok();
}

Status save_snapshot(const Catalog& catalog, const std::string& path) {
  Writer w;
  w.str("WDOCSNAP1");
  // Parents-first order so load_snapshot can re-create tables with their FK
  // targets already present. Cross-table FK cycles are not supported.
  auto names = catalog.table_names();
  std::vector<std::string> ordered;
  std::set<std::string> placed;
  while (ordered.size() < names.size()) {
    bool progressed = false;
    for (const std::string& name : names) {
      if (placed.contains(name)) continue;
      const Table* t = catalog.table(name);
      bool ready = true;
      for (const ForeignKey& fk : t->schema().foreign_keys()) {
        if (fk.parent_table != name && !placed.contains(fk.parent_table)) {
          ready = false;
          break;
        }
      }
      if (ready) {
        ordered.push_back(name);
        placed.insert(name);
        progressed = true;
      }
    }
    if (!progressed) {
      return {Errc::unsupported, "snapshot: cyclic cross-table foreign keys"};
    }
  }
  names = std::move(ordered);
  w.u32(static_cast<std::uint32_t>(names.size()));
  for (const std::string& name : names) {
    const Table* t = catalog.table(name);
    t->schema().serialize(w);
    w.u64(t->row_count());
    t->scan([&](RowId id, const std::vector<Value>& row) {
      w.u64(id.value());
      encode_row(w, row);
      return true;
    });
  }
  Bytes body = w.take();
  Writer framed;
  framed.u64(fnv1a64(std::span<const std::uint8_t>(body)));
  framed.raw(body);

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return {Errc::io_error, "cannot write snapshot: " + path};
  const Bytes& buf = framed.data();
  bool ok = std::fwrite(buf.data(), 1, buf.size(), f) == buf.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return {Errc::io_error, "snapshot write failed"};
  return Status::ok();
}

Status load_snapshot(const std::string& path, Catalog& catalog) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {Errc::not_found, "no snapshot: " + path};
  Bytes buf;
  std::uint8_t chunk[65536];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
    buf.insert(buf.end(), chunk, chunk + n);
  }
  std::fclose(f);

  Reader framed(buf);
  auto checksum = framed.u64();
  if (!checksum) return checksum.status();
  std::span<const std::uint8_t> body(buf.data() + framed.position(),
                                     buf.size() - framed.position());
  if (fnv1a64(body) != checksum.value()) {
    return {Errc::corrupt, "snapshot checksum mismatch"};
  }
  Reader r(body);
  auto magic = r.str();
  if (!magic) return magic.status();
  if (magic.value() != "WDOCSNAP1") return {Errc::corrupt, "bad snapshot magic"};
  auto ntables = r.u32();
  if (!ntables) return ntables.status();
  for (std::uint32_t ti = 0; ti < ntables.value(); ++ti) {
    auto schema = Schema::deserialize(r);
    if (!schema) return schema.status();
    WDOC_TRY(catalog.create_table(schema.value()));
    Table* t = catalog.table(schema.value().table_name());
    auto nrows = r.u64();
    if (!nrows) return nrows.status();
    for (std::uint64_t i = 0; i < nrows.value(); ++i) {
      auto rid = r.u64();
      if (!rid) return rid.status();
      auto row = decode_row(r);
      if (!row) return row.status();
      WDOC_TRY(t->restore(RowId{rid.value()}, std::move(row).value()));
    }
  }
  return Status::ok();
}

}  // namespace wdoc::storage

// Unordered secondary index: Value key -> RowId postings. O(1) point lookup,
// no range scans. Used for the unique-name lookups that dominate the paper's
// workload (script names, starting URLs, test-record names).
#pragma once

#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "storage/value.hpp"

namespace wdoc::storage {

class HashIndex {
 public:
  void insert(const Value& key, RowId rid) { map_.emplace(key, rid); }

  bool erase(const Value& key, RowId rid) {
    auto [lo, hi] = map_.equal_range(key);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == rid) {
        map_.erase(it);
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::vector<RowId> find(const Value& key) const {
    std::vector<RowId> out;
    auto [lo, hi] = map_.equal_range(key);
    for (auto it = lo; it != hi; ++it) out.push_back(it->second);
    return out;
  }

  [[nodiscard]] bool contains(const Value& key) const { return map_.contains(key); }
  [[nodiscard]] std::size_t count(const Value& key) const { return map_.count(key); }
  [[nodiscard]] std::size_t size() const { return map_.size(); }
  void clear() { map_.clear(); }

 private:
  struct ValueEq {
    bool operator()(const Value& a, const Value& b) const { return a.compare(b) == 0; }
  };
  std::unordered_multimap<Value, RowId, ValueHash, ValueEq> map_;
};

}  // namespace wdoc::storage

// Transactions: strict two-phase locking over the Database with
// multigranularity (table IS/IX/S/X, row S/X) locks, waits-for deadlock
// detection, and before-image undo.
//
// The requester of the lock that would close a cycle in the waits-for graph
// is aborted (Errc::deadlock). Commit releases locks after logging a commit
// marker; abort rolls back via the undo log in reverse order.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "storage/database.hpp"

namespace wdoc::storage {

enum class TxnLockMode : std::uint8_t { IS = 0, IX = 1, S = 2, X = 3 };

[[nodiscard]] const char* txn_lock_mode_name(TxnLockMode m);
[[nodiscard]] bool txn_lock_compatible(TxnLockMode held, TxnLockMode wanted);

class TransactionManager;

class Txn {
 public:
  ~Txn();
  Txn(const Txn&) = delete;
  Txn& operator=(const Txn&) = delete;

  [[nodiscard]] TxnId id() const { return id_; }
  [[nodiscard]] bool active() const { return active_; }

  // DML under locks. Insert takes table IX; update/erase take table IX plus
  // row X; reads take table IS plus row S; scans take table S.
  [[nodiscard]] Result<RowId> insert(const std::string& table, std::vector<Value> row);
  [[nodiscard]] Status update(const std::string& table, RowId id, std::vector<Value> row);
  [[nodiscard]] Status update_column(const std::string& table, RowId id,
                                     std::string_view column, Value v);
  [[nodiscard]] Status erase(const std::string& table, RowId id);
  [[nodiscard]] Result<std::vector<Value>> get(const std::string& table, RowId id);
  [[nodiscard]] Result<std::vector<RowId>> find_equal(const std::string& table,
                                                      std::string_view column,
                                                      const Value& v);

  [[nodiscard]] Status commit();
  void abort();

 private:
  friend class TransactionManager;
  Txn(TransactionManager* mgr, TxnId id) : mgr_(mgr), id_(id) {}

  TransactionManager* mgr_;
  TxnId id_;
  bool active_ = true;
};

class TransactionManager {
 public:
  explicit TransactionManager(Database& db,
                              std::chrono::milliseconds lock_timeout =
                                  std::chrono::milliseconds(5000));
  ~TransactionManager();
  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  [[nodiscard]] std::unique_ptr<Txn> begin();

  // Introspection for tests.
  [[nodiscard]] std::size_t active_txns() const;
  [[nodiscard]] std::size_t held_locks(TxnId id) const;
  [[nodiscard]] std::uint64_t deadlocks_detected() const { return deadlocks_; }

 private:
  friend class Txn;

  struct ResourceKey {
    std::string table;
    std::uint64_t row = 0;  // 0 = table-level
    auto operator<=>(const ResourceKey&) const = default;
  };

  struct LockState {
    std::map<std::uint64_t, TxnLockMode> holders;  // txn id -> strongest mode
  };

  struct TxnState {
    std::set<ResourceKey> held;
    std::vector<Mutation> undo;
    bool active = true;
  };

  class UndoSink;

  [[nodiscard]] Status acquire(TxnId txn, const ResourceKey& key, TxnLockMode mode);
  void release_all(TxnId txn);
  [[nodiscard]] bool would_deadlock(std::uint64_t waiter, const ResourceKey& key,
                                    TxnLockMode mode);
  [[nodiscard]] Status lock_table(TxnId txn, const std::string& table, TxnLockMode mode);
  [[nodiscard]] Status lock_row(TxnId txn, const std::string& table, RowId row,
                                TxnLockMode mode);

  [[nodiscard]] Status finish_commit(Txn& txn);
  void finish_abort(Txn& txn);

  Database& db_;
  std::chrono::milliseconds lock_timeout_;

  // Physical latch: serializes access to Catalog/Table internals, which are
  // not thread-safe. Logical 2PL locks provide isolation; this provides
  // memory safety. Held only for the duration of one engine call.
  std::mutex physical_mu_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<ResourceKey, LockState> locks_;
  std::map<std::uint64_t, TxnState> txns_;
  // waiter txn -> resource it is blocked on (single outstanding wait each)
  std::map<std::uint64_t, std::pair<ResourceKey, TxnLockMode>> waiting_;
  IdAllocator<TxnId> ids_;
  std::uint64_t deadlocks_ = 0;
};

}  // namespace wdoc::storage

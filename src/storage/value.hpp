// Typed cell values for the relational engine.
//
// The engine supports the column types the paper's schema needs: integers
// (ids, timestamps, percentages), reals, text (names, keywords,
// descriptions), blobs (file descriptors / inline payloads) and booleans.
// NULL is represented by std::monostate.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.hpp"
#include "common/serialize.hpp"

namespace wdoc::storage {

enum class ValueType : std::uint8_t {
  null = 0,
  integer = 1,
  real = 2,
  text = 3,
  blob = 4,
  boolean = 5,
};

[[nodiscard]] const char* value_type_name(ValueType t);

class Value {
 public:
  Value() = default;  // NULL
  Value(std::int64_t v) : v_(v) {}                 // NOLINT: implicit by design
  Value(int v) : v_(static_cast<std::int64_t>(v)) {}  // NOLINT
  Value(double v) : v_(v) {}                       // NOLINT
  Value(std::string v) : v_(std::move(v)) {}       // NOLINT
  Value(const char* v) : v_(std::string(v)) {}     // NOLINT
  Value(Bytes v) : v_(std::move(v)) {}             // NOLINT
  Value(bool v) : v_(v) {}                         // NOLINT

  [[nodiscard]] static Value null() { return Value{}; }

  [[nodiscard]] ValueType type() const {
    return static_cast<ValueType>(v_.index());
  }
  [[nodiscard]] bool is_null() const { return type() == ValueType::null; }

  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  [[nodiscard]] double as_real() const { return std::get<double>(v_); }
  [[nodiscard]] const std::string& as_text() const { return std::get<std::string>(v_); }
  [[nodiscard]] const Bytes& as_blob() const { return std::get<Bytes>(v_); }
  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }

  // Total order: NULL < everything; cross-type compares order by type tag
  // (only same-type comparisons occur for well-typed columns).
  [[nodiscard]] int compare(const Value& other) const;

  friend bool operator==(const Value& a, const Value& b) { return a.compare(b) == 0; }
  friend bool operator!=(const Value& a, const Value& b) { return a.compare(b) != 0; }
  friend bool operator<(const Value& a, const Value& b) { return a.compare(b) < 0; }
  friend bool operator<=(const Value& a, const Value& b) { return a.compare(b) <= 0; }
  friend bool operator>(const Value& a, const Value& b) { return a.compare(b) > 0; }
  friend bool operator>=(const Value& a, const Value& b) { return a.compare(b) >= 0; }

  [[nodiscard]] std::uint64_t hash() const;
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t byte_size() const;

  void serialize(Writer& w) const;
  [[nodiscard]] static Result<Value> deserialize(Reader& r);

 private:
  std::variant<std::monostate, std::int64_t, double, std::string, Bytes, bool> v_;
};

struct ValueHash {
  std::size_t operator()(const Value& v) const noexcept {
    return static_cast<std::size_t>(v.hash());
  }
};

}  // namespace wdoc::storage

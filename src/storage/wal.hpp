// Write-ahead log and snapshot persistence for the storage engine.
//
// The WAL stores logical records (insert/update/erase + txn markers) with
// per-record checksums; recovery tolerates a torn tail by stopping at the
// first bad frame. A snapshot serializes the full catalog; `Database`
// (database.hpp) combines the two with checkpointing.
#pragma once

#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/serialize.hpp"
#include "storage/catalog.hpp"

namespace wdoc::storage {

enum class LogKind : std::uint8_t {
  begin = 1,
  commit = 2,
  abort = 3,
  insert = 4,
  update = 5,
  erase = 6,
  create_table = 7,
  drop_table = 8,
};

struct LogRecord {
  LogKind kind = LogKind::begin;
  std::uint64_t txn = 0;  // 0 = autocommit (always applied)
  std::string table;
  RowId row;
  std::vector<Value> before;  // update/erase
  std::vector<Value> after;   // insert/update
  std::optional<Schema> schema;  // create_table

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<LogRecord> decode(const Bytes& frame);
};

class Wal {
 public:
  Wal() = default;
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  [[nodiscard]] Status open(const std::string& path, bool truncate = false);
  void close();
  [[nodiscard]] bool is_open() const { return file_ != nullptr; }

  [[nodiscard]] Status append(const LogRecord& record);
  [[nodiscard]] Status sync();

  // Bytes appended since open(); resets when the log is truncated.
  [[nodiscard]] std::uint64_t bytes_appended() const { return bytes_appended_; }

  // Reads every intact frame; a torn/corrupt tail ends the scan cleanly.
  [[nodiscard]] static Result<std::vector<LogRecord>> read_all(const std::string& path);

  // Replays a log into a catalog: ops from committed transactions (and
  // autocommit ops) are applied in log order.
  [[nodiscard]] static Status replay(const std::vector<LogRecord>& records, Catalog& catalog);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint64_t bytes_appended_ = 0;
};

// Snapshot of a full catalog (schemas + rows with their ids).
[[nodiscard]] Status save_snapshot(const Catalog& catalog, const std::string& path);
[[nodiscard]] Status load_snapshot(const std::string& path, Catalog& catalog);

}  // namespace wdoc::storage

// Heap table with slot reuse and auto-maintained secondary indexes.
//
// Rows are addressed by RowId (never reused, monotonically allocated).
// Unique columns are enforced through their index. FK enforcement lives in
// Catalog, which sees all tables.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "storage/btree_index.hpp"
#include "storage/hash_index.hpp"
#include "storage/schema.hpp"

namespace wdoc::storage {

struct RowRef {
  RowId id;
  const std::vector<Value>* row = nullptr;  // borrowed; invalidated by writes
};

class Table {
 public:
  explicit Table(Schema schema);

  [[nodiscard]] const Schema& schema() const { return schema_; }
  [[nodiscard]] const std::string& name() const { return schema_.table_name(); }

  // Insert a full row; validates arity/types/NOT NULL/unique. Returns the
  // new RowId.
  [[nodiscard]] Result<RowId> insert(std::vector<Value> row);

  // Point read. The returned pointer stays valid until the next write to
  // this table.
  [[nodiscard]] const std::vector<Value>* get(RowId id) const;

  // Full replacement of one row; re-validates and re-indexes.
  [[nodiscard]] Status update(RowId id, std::vector<Value> row);
  // Update a single column.
  [[nodiscard]] Status update_column(RowId id, std::string_view column, Value v);

  [[nodiscard]] Status erase(RowId id);

  [[nodiscard]] bool exists(RowId id) const { return get(id) != nullptr; }
  [[nodiscard]] std::size_t row_count() const { return live_rows_; }

  // --- lookups ---------------------------------------------------------
  // Equality lookup; uses an index when one exists for the column, falls
  // back to a full scan otherwise.
  [[nodiscard]] std::vector<RowId> find_equal(std::string_view column, const Value& v) const;
  // First match or nothing (for unique columns).
  [[nodiscard]] std::optional<RowId> find_unique(std::string_view column, const Value& v) const;
  // Ordered range scan over an indexed column (B-tree only).
  void scan_range(std::string_view column, const Value* lo, const Value* hi,
                  const std::function<bool(RowId, const std::vector<Value>&)>& visit) const;
  // Visit every live row (arbitrary order).
  void scan(const std::function<bool(RowId, const std::vector<Value>&)>& visit) const;

  [[nodiscard]] bool has_index(std::string_view column) const;
  // Adds a B-tree index over an existing column, back-filling it.
  [[nodiscard]] Status create_index(std::string_view column);

  [[nodiscard]] Value cell(RowId id, std::string_view column) const;

  // Approximate resident bytes (row payloads only).
  [[nodiscard]] std::size_t payload_bytes() const { return payload_bytes_; }

  // Restore a row under a specific id (WAL recovery / txn undo). Bypasses
  // unique checks only for the id allocation; value constraints still apply.
  [[nodiscard]] Status restore(RowId id, std::vector<Value> row);

 private:
  void index_row(RowId id, const std::vector<Value>& row);
  void unindex_row(RowId id, const std::vector<Value>& row);
  [[nodiscard]] Status check_unique(const std::vector<Value>& row,
                                    std::optional<RowId> ignore) const;

  Schema schema_;
  // Live rows keyed by id. std::map keeps ids ordered so scan() is
  // deterministic, which matters for reproducible simulations.
  std::map<RowId, std::vector<Value>> rows_;
  IdAllocator<RowId> ids_;
  std::size_t live_rows_ = 0;
  std::size_t payload_bytes_ = 0;

  struct ColumnIndex {
    std::size_t column = 0;
    std::unique_ptr<BTreeIndex> btree;  // ordered; used when present
    std::unique_ptr<HashIndex> hash;    // fallback for unique-only columns
  };
  std::vector<ColumnIndex> indexes_;
};

}  // namespace wdoc::storage

#include "storage/catalog.hpp"

#include <algorithm>

namespace wdoc::storage {

Status Catalog::create_table(Schema schema) {
  // Copy, not reference: `schema` is moved below and argument evaluation
  // order in emplace() is unspecified.
  const std::string name = schema.table_name();
  if (name.empty()) return {Errc::invalid_argument, "empty table name"};
  if (tables_.contains(name)) return {Errc::already_exists, "table exists: " + name};
  // Validate FK targets.
  for (const ForeignKey& fk : schema.foreign_keys()) {
    if (schema.column_index(fk.column) == std::nullopt) {
      return {Errc::invalid_argument, name + ": FK column missing: " + fk.column};
    }
    const Table* parent = table(fk.parent_table);
    // Self-references are allowed (parent == this table, not yet created).
    const Schema* pschema = parent != nullptr ? &parent->schema()
                            : (fk.parent_table == name ? &schema : nullptr);
    if (pschema == nullptr) {
      return {Errc::invalid_argument, name + ": FK parent table missing: " + fk.parent_table};
    }
    auto pc = pschema->column_index(fk.parent_column);
    if (!pc) {
      return {Errc::invalid_argument,
              name + ": FK parent column missing: " + fk.parent_column};
    }
    if (!pschema->column(*pc).unique) {
      return {Errc::invalid_argument,
              name + ": FK parent column not unique: " + fk.parent_column};
    }
  }
  for (const ForeignKey& fk : schema.foreign_keys()) {
    incoming_[fk.parent_table].push_back(
        IncomingRef{name, fk.column, fk.parent_column, fk.on_delete});
  }
  tables_.emplace(name, std::make_unique<Table>(std::move(schema)));
  return Status::ok();
}

Status Catalog::drop_table(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) return {Errc::not_found, "no table: " + name};
  if (const auto* refs = incoming(name); refs != nullptr && !refs->empty()) {
    for (const IncomingRef& r : *refs) {
      if (r.child_table != name) {
        return {Errc::constraint_violation,
                name + ": referenced by " + r.child_table + "." + r.child_column};
      }
    }
  }
  // Remove FK edges this table contributed.
  for (auto& [parent, refs] : incoming_) {
    refs.erase(std::remove_if(refs.begin(), refs.end(),
                              [&](const IncomingRef& r) { return r.child_table == name; }),
               refs.end());
  }
  incoming_.erase(name);
  tables_.erase(it);
  return Status::ok();
}

Table* Catalog::table(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Catalog::table(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

bool Catalog::has_table(const std::string& name) const { return tables_.contains(name); }

std::vector<std::string> Catalog::table_names() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

Status Catalog::check_outgoing_fks(const Table& t, const std::vector<Value>& row) const {
  for (const ForeignKey& fk : t.schema().foreign_keys()) {
    auto ci = t.schema().column_index(fk.column);
    const Value& v = row[*ci];
    if (v.is_null()) continue;
    const Table* parent = table(fk.parent_table);
    WDOC_CHECK(parent != nullptr, "FK parent vanished: " + fk.parent_table);
    if (!parent->find_unique(fk.parent_column, v)) {
      return {Errc::constraint_violation,
              t.name() + "." + fk.column + " -> " + fk.parent_table + "." +
                  fk.parent_column + ": no parent row " + v.to_string()};
    }
  }
  return Status::ok();
}

void Catalog::notify(MutationSink* sink, Mutation m) const {
  MutationSink* effective = sink != nullptr ? sink : default_sink_;
  if (effective != nullptr) effective->on_mutation(m);
}

Result<RowId> Catalog::insert(const std::string& tname, std::vector<Value> row,
                              MutationSink* sink) {
  Table* t = table(tname);
  if (t == nullptr) return Error{Errc::not_found, "no table: " + tname};
  WDOC_TRY(t->schema().validate_row(row));
  WDOC_TRY(check_outgoing_fks(*t, row));
  std::vector<Value> copy = row;
  auto id = t->insert(std::move(row));
  if (id) {
    notify(sink, Mutation{MutationKind::insert, tname, id.value(), {}, std::move(copy)});
  }
  return id;
}

Status Catalog::check_not_referenced_changed(const Table& t, RowId id,
                                             const std::vector<Value>& next) const {
  const auto* refs = incoming(t.name());
  if (refs == nullptr) return Status::ok();
  const auto* cur = t.get(id);
  WDOC_CHECK(cur != nullptr, "update of dead row");
  for (const IncomingRef& r : *refs) {
    auto pc = t.schema().column_index(r.parent_column);
    if ((*cur)[*pc] == next[*pc]) continue;  // key unchanged
    const Table* child = table(r.child_table);
    WDOC_CHECK(child != nullptr, "FK child vanished");
    if (!child->find_equal(r.child_column, (*cur)[*pc]).empty()) {
      return {Errc::constraint_violation,
              t.name() + "." + r.parent_column + ": key change breaks " +
                  r.child_table + "." + r.child_column};
    }
  }
  return Status::ok();
}

Status Catalog::update(const std::string& tname, RowId id, std::vector<Value> row,
                       MutationSink* sink) {
  Table* t = table(tname);
  if (t == nullptr) return {Errc::not_found, "no table: " + tname};
  const auto* cur = t->get(id);
  if (cur == nullptr) return {Errc::not_found, tname + ": no such row"};
  WDOC_TRY(t->schema().validate_row(row));
  WDOC_TRY(check_outgoing_fks(*t, row));
  WDOC_TRY(check_not_referenced_changed(*t, id, row));
  std::vector<Value> before = *cur;
  std::vector<Value> after = row;
  WDOC_TRY(t->update(id, std::move(row)));
  notify(sink, Mutation{MutationKind::update, tname, id, std::move(before), std::move(after)});
  return Status::ok();
}

Status Catalog::update_column(const std::string& tname, RowId id,
                              std::string_view column, Value v, MutationSink* sink) {
  Table* t = table(tname);
  if (t == nullptr) return {Errc::not_found, "no table: " + tname};
  const auto* cur = t->get(id);
  if (cur == nullptr) return {Errc::not_found, tname + ": no such row"};
  auto ci = t->schema().column_index(column);
  if (!ci) return {Errc::invalid_argument, tname + ": no column " + std::string(column)};
  std::vector<Value> next = *cur;
  next[*ci] = std::move(v);
  return update(tname, id, std::move(next), sink);
}

Status Catalog::erase(const std::string& tname, RowId id, MutationSink* sink) {
  Table* t = table(tname);
  if (t == nullptr) return {Errc::not_found, "no table: " + tname};
  const auto* row = t->get(id);
  if (row == nullptr) return {Errc::not_found, tname + ": no such row"};

  if (const auto* refs = incoming(tname); refs != nullptr) {
    for (const IncomingRef& r : *refs) {
      auto pc = t->schema().column_index(r.parent_column);
      const Value key = (*row)[*pc];
      if (key.is_null()) continue;
      Table* child = table(r.child_table);
      WDOC_CHECK(child != nullptr, "FK child vanished");
      std::vector<RowId> children = child->find_equal(r.child_column, key);
      if (children.empty()) continue;
      switch (r.on_delete) {
        case RefAction::restrict:
          return {Errc::constraint_violation,
                  tname + ": row referenced by " + r.child_table + "." + r.child_column};
        case RefAction::cascade:
          for (RowId cid : children) {
            // Self-referential cascades may have already removed the row.
            if (child->exists(cid)) WDOC_TRY(erase(r.child_table, cid, sink));
          }
          break;
        case RefAction::set_null:
          for (RowId cid : children) {
            auto cci = child->schema().column_index(r.child_column);
            std::vector<Value> before = *child->get(cid);
            std::vector<Value> after = before;
            after[*cci] = Value::null();
            WDOC_TRY(child->update_column(cid, r.child_column, Value::null()));
            notify(sink, Mutation{MutationKind::update, r.child_table, cid,
                                  std::move(before), std::move(after)});
          }
          break;
      }
      // Re-read: cascade may have mutated this table (self-reference).
      row = t->get(id);
      if (row == nullptr) return Status::ok();
    }
  }
  std::vector<Value> before = *row;
  WDOC_TRY(t->erase(id));
  notify(sink, Mutation{MutationKind::erase, tname, id, std::move(before), {}});
  return Status::ok();
}

std::size_t Catalog::total_rows() const {
  std::size_t n = 0;
  for (const auto& [_, t] : tables_) n += t->row_count();
  return n;
}

std::size_t Catalog::total_payload_bytes() const {
  std::size_t n = 0;
  for (const auto& [_, t] : tables_) n += t->payload_bytes();
  return n;
}

const std::vector<Catalog::IncomingRef>* Catalog::incoming(const std::string& parent) const {
  auto it = incoming_.find(parent);
  return it == incoming_.end() ? nullptr : &it->second;
}

}  // namespace wdoc::storage

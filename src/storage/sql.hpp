// A small SQL front end over the storage engine — the "open database
// connection" surface of the paper's architecture ("compatibility
// requirements include ... database standard", §1). The instructor-side
// tools spoke ODBC/JDBC to an SQL server; this module gives the embedded
// engine the same statement-level interface.
//
// Supported statements:
//   CREATE TABLE t (col TYPE [PRIMARY KEY|NOT NULL|UNIQUE|INDEXED]... ,
//                   FOREIGN KEY (col) REFERENCES t2(col)
//                     [ON DELETE CASCADE|RESTRICT|SET NULL], ...)
//   DROP TABLE t
//   INSERT INTO t VALUES (lit, ...)
//   SELECT *|COUNT(*)|aggregates|col,... FROM t [WHERE pred AND ...]
//          [GROUP BY col] [ORDER BY col [ASC|DESC]] [LIMIT n]
//   SELECT cols FROM t1 JOIN t2 ON t1.a = t2.b [WHERE ...] [ORDER BY out]
//          [LIMIT n]            (inner join; columns may be qualified)
//   UPDATE t SET col = lit, ... [WHERE ...]
//   DELETE FROM t [WHERE ...]
// Predicates: col {=|!=|<>|<|<=|>|>=} lit, col LIKE 'substring',
//             col IS [NOT] NULL.
// Literals: NULL, TRUE/FALSE, integers, reals, 'text' ('' escapes a quote),
//           X'hex' blobs.
// Types: INTEGER, REAL, TEXT, BLOB, BOOLEAN.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "storage/database.hpp"

namespace wdoc::storage::sql {

struct ResultSet {
  std::vector<std::string> columns;           // empty for DML/DDL
  std::vector<std::vector<Value>> rows;       // SELECT results
  std::uint64_t affected = 0;                 // rows touched by DML
  std::optional<RowId> last_insert_row;

  [[nodiscard]] std::string to_string() const;  // ascii table, for tools
};

class Engine {
 public:
  explicit Engine(Database& db) : db_(&db) {}

  [[nodiscard]] Result<ResultSet> execute(std::string_view statement);

 private:
  Database* db_;
};

// --- tokenizer, exposed for tests -------------------------------------------

enum class TokenKind : std::uint8_t {
  identifier,  // also keywords; matching is case-insensitive
  integer,
  real,
  text,      // 'string' with '' escape
  blob,      // X'hex'
  symbol,    // ( ) , = != <> < <= > >= *
  end,
};

struct Token {
  TokenKind kind = TokenKind::end;
  std::string text;       // raw (identifiers upper-cased separately)
  std::int64_t int_value = 0;
  double real_value = 0;
  Bytes blob_value;
};

[[nodiscard]] Result<std::vector<Token>> tokenize(std::string_view input);

}  // namespace wdoc::storage::sql

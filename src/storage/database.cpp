#include "storage/database.hpp"

namespace wdoc::storage {

namespace {

std::string snapshot_path(const std::string& dir) { return dir + "/snapshot.db"; }
std::string wal_path(const std::string& dir) { return dir + "/wal.log"; }

}  // namespace

std::unique_ptr<Database> Database::in_memory() {
  auto db = std::unique_ptr<Database>(new Database());
  db->catalog_.set_default_sink(db.get());
  return db;
}

Result<std::unique_ptr<Database>> Database::open(const std::string& dir) {
  auto db = std::unique_ptr<Database>(new Database());
  db->dir_ = dir;
  db->durable_ = true;

  Status snap = load_snapshot(snapshot_path(dir), db->catalog_);
  if (!snap.is_ok() && snap.code() != Errc::not_found) return Error(snap.error());

  auto records = Wal::read_all(wal_path(dir));
  if (!records) return records.error();
  WDOC_TRY(Wal::replay(records.value(), db->catalog_));

  WDOC_TRY(db->wal_.open(wal_path(dir)));
  db->catalog_.set_default_sink(db.get());
  return db;
}

Database::~Database() {
  if (durable_) (void)wal_.sync();
}

void Database::on_mutation(const Mutation& m) {
  if (!durable_) return;
  LogRecord rec;
  switch (m.kind) {
    case MutationKind::insert: rec.kind = LogKind::insert; break;
    case MutationKind::update: rec.kind = LogKind::update; break;
    case MutationKind::erase: rec.kind = LogKind::erase; break;
  }
  rec.txn = 0;
  rec.table = m.table;
  rec.row = m.row;
  rec.before = m.before;
  rec.after = m.after;
  // WAL write failure inside an observer cannot abort the already-applied
  // mutation; surface it loudly instead.
  Status s = wal_.append(rec);
  if (!s.is_ok()) WDOC_CHECK(false, "WAL append failed: " + s.message());
}

Status Database::create_table(Schema schema) {
  Schema copy = schema;
  WDOC_TRY(catalog_.create_table(std::move(schema)));
  if (durable_) {
    LogRecord rec;
    rec.kind = LogKind::create_table;
    rec.table = copy.table_name();
    rec.schema = std::move(copy);
    WDOC_TRY(wal_.append(rec));
  }
  return Status::ok();
}

Status Database::drop_table(const std::string& name) {
  WDOC_TRY(catalog_.drop_table(name));
  if (durable_) {
    LogRecord rec;
    rec.kind = LogKind::drop_table;
    rec.table = name;
    WDOC_TRY(wal_.append(rec));
  }
  return Status::ok();
}

Result<RowId> Database::insert(const std::string& table, std::vector<Value> row) {
  auto r = catalog_.insert(table, std::move(row));
  if (r) WDOC_TRY(maybe_checkpoint());
  return r;
}

Status Database::update(const std::string& table, RowId id, std::vector<Value> row) {
  WDOC_TRY(catalog_.update(table, id, std::move(row)));
  return maybe_checkpoint();
}

Status Database::update_column(const std::string& table, RowId id,
                               std::string_view column, Value v) {
  WDOC_TRY(catalog_.update_column(table, id, column, std::move(v)));
  return maybe_checkpoint();
}

Status Database::erase(const std::string& table, RowId id) {
  WDOC_TRY(catalog_.erase(table, id));
  return maybe_checkpoint();
}

Status Database::maybe_checkpoint() {
  if (!durable_ || auto_checkpoint_bytes_ == 0) return Status::ok();
  if (wal_.bytes_appended() < auto_checkpoint_bytes_) return Status::ok();
  return checkpoint();
}

Query Database::query(const std::string& table) const {
  const Table* t = catalog_.table(table);
  WDOC_CHECK(t != nullptr, "query() on missing table: " + table);
  return Query(*t);
}

Status Database::checkpoint() {
  if (!durable_) return Status::ok();
  WDOC_TRY(wal_.sync());
  WDOC_TRY(save_snapshot(catalog_, snapshot_path(dir_)));
  WDOC_TRY(wal_.open(wal_path(dir_), /*truncate=*/true));
  return Status::ok();
}

Status Database::flush() {
  if (!durable_) return Status::ok();
  return wal_.sync();
}

Status Database::log(const LogRecord& rec) {
  if (!durable_) return Status::ok();
  return wal_.append(rec);
}

}  // namespace wdoc::storage

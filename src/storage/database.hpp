// Database: a catalog with optional durability (WAL + snapshot checkpoint).
//
// Open modes:
//   - in_memory(): no files, no logging.
//   - open(dir): loads <dir>/snapshot.db if present, replays <dir>/wal.log,
//     then appends new mutations to the WAL. checkpoint() collapses the WAL
//     into a fresh snapshot.
//
// Thread safety: Database itself is not synchronized; concurrent access is
// mediated by TransactionManager (txn.hpp).
#pragma once

#include <memory>
#include <string>

#include "storage/catalog.hpp"
#include "storage/query.hpp"
#include "storage/wal.hpp"

namespace wdoc::storage {

class Database : private MutationSink {
 public:
  [[nodiscard]] static std::unique_ptr<Database> in_memory();
  [[nodiscard]] static Result<std::unique_ptr<Database>> open(const std::string& dir);

  ~Database() override;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  [[nodiscard]] Catalog& catalog() { return catalog_; }
  [[nodiscard]] const Catalog& catalog() const { return catalog_; }

  // Logged DDL.
  [[nodiscard]] Status create_table(Schema schema);
  [[nodiscard]] Status drop_table(const std::string& name);

  // Autocommit DML (logged with txn id 0). For transactional DML use
  // TransactionManager.
  [[nodiscard]] Result<RowId> insert(const std::string& table, std::vector<Value> row);
  [[nodiscard]] Status update(const std::string& table, RowId id, std::vector<Value> row);
  [[nodiscard]] Status update_column(const std::string& table, RowId id,
                                     std::string_view column, Value v);
  [[nodiscard]] Status erase(const std::string& table, RowId id);

  [[nodiscard]] Query query(const std::string& table) const;

  // Writes a snapshot and truncates the WAL.
  [[nodiscard]] Status checkpoint();
  [[nodiscard]] Status flush();

  // Auto-checkpoint once the WAL exceeds `bytes` (0 disables, the default).
  // Checked after each autocommit mutation and each transaction commit.
  void set_auto_checkpoint(std::uint64_t bytes) { auto_checkpoint_bytes_ = bytes; }
  // Runs a checkpoint if the policy says so. Called internally; exposed for
  // TransactionManager.
  [[nodiscard]] Status maybe_checkpoint();

  [[nodiscard]] bool durable() const { return durable_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }

  // Used by TransactionManager to log txn-scoped records.
  [[nodiscard]] Status log(const LogRecord& rec);

 private:
  Database() = default;
  void on_mutation(const Mutation& m) override;

  Catalog catalog_;
  Wal wal_;
  std::string dir_;
  bool durable_ = false;
  std::uint64_t auto_checkpoint_bytes_ = 0;
};

}  // namespace wdoc::storage

#include "storage/sql.hpp"

#include <algorithm>
#include <array>
#include <cctype>

#include "storage/query.hpp"

namespace wdoc::storage::sql {

namespace {

bool ieq(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<std::vector<Token>> tokenize(std::string_view input) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  auto peek = [&](std::size_t off = 0) -> char {
    return i + off < input.size() ? input[i + off] : '\0';
  };
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // X'hex' blob literal.
    if ((c == 'x' || c == 'X') && peek(1) == '\'') {
      i += 2;
      Token t;
      t.kind = TokenKind::blob;
      std::string hex;
      while (i < input.size() && input[i] != '\'') hex.push_back(input[i++]);
      if (i >= input.size()) return Error{Errc::invalid_argument, "unterminated blob"};
      ++i;
      if (hex.size() % 2 != 0) return Error{Errc::invalid_argument, "odd blob hex"};
      for (std::size_t h = 0; h < hex.size(); h += 2) {
        auto nibble = [&](char n) -> int {
          if (n >= '0' && n <= '9') return n - '0';
          if (n >= 'a' && n <= 'f') return n - 'a' + 10;
          if (n >= 'A' && n <= 'F') return n - 'A' + 10;
          return -1;
        };
        int hi = nibble(hex[h]), lo = nibble(hex[h + 1]);
        if (hi < 0 || lo < 0) return Error{Errc::invalid_argument, "bad blob hex"};
        t.blob_value.push_back(static_cast<std::uint8_t>(hi * 16 + lo));
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      Token t;
      t.kind = TokenKind::identifier;
      while (i < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[i])) || input[i] == '_' ||
              input[i] == '.')) {
        t.text.push_back(input[i++]);
      }
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      Token t;
      std::string num;
      if (c == '-') {
        num.push_back(c);
        ++i;
      }
      bool is_real = false;
      while (i < input.size() &&
             (std::isdigit(static_cast<unsigned char>(input[i])) || input[i] == '.')) {
        if (input[i] == '.') is_real = true;
        num.push_back(input[i++]);
      }
      if (is_real) {
        t.kind = TokenKind::real;
        t.real_value = std::stod(num);
      } else {
        t.kind = TokenKind::integer;
        t.int_value = std::stoll(num);
      }
      t.text = std::move(num);
      tokens.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      Token t;
      t.kind = TokenKind::text;
      for (;;) {
        if (i >= input.size()) return Error{Errc::invalid_argument, "unterminated string"};
        if (input[i] == '\'') {
          if (peek(1) == '\'') {  // escaped quote
            t.text.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          break;
        }
        t.text.push_back(input[i++]);
      }
      tokens.push_back(std::move(t));
      continue;
    }
    // Symbols, longest first.
    Token t;
    t.kind = TokenKind::symbol;
    if ((c == '!' && peek(1) == '=') || (c == '<' && peek(1) == '>') ||
        (c == '<' && peek(1) == '=') || (c == '>' && peek(1) == '=')) {
      t.text = std::string{c, peek(1)};
      i += 2;
    } else if (std::string_view("(),=<>*;").find(c) != std::string_view::npos) {
      t.text = std::string(1, c);
      ++i;
    } else {
      return Error{Errc::invalid_argument,
                   std::string("unexpected character '") + c + "'"};
    }
    tokens.push_back(std::move(t));
  }
  Token end;
  end.kind = TokenKind::end;
  tokens.push_back(std::move(end));
  return tokens;
}

namespace {

// --- parser ------------------------------------------------------------------

class Parser {
 public:
  Parser(std::vector<Token> tokens, Database& db)
      : tokens_(std::move(tokens)), db_(&db) {}

  Result<ResultSet> run() {
    if (match_kw("CREATE")) return create_table();
    if (match_kw("DROP")) return drop_table();
    if (match_kw("INSERT")) return insert();
    if (match_kw("SELECT")) return select();
    if (match_kw("UPDATE")) return update();
    if (match_kw("DELETE")) return del();
    return err("expected CREATE/DROP/INSERT/SELECT/UPDATE/DELETE");
  }

 private:
  const Token& cur() const { return tokens_[pos_]; }
  void advance() {
    if (cur().kind != TokenKind::end) ++pos_;
  }
  bool match_kw(std::string_view kw) {
    if (cur().kind == TokenKind::identifier && ieq(cur().text, kw)) {
      advance();
      return true;
    }
    return false;
  }
  bool match_sym(std::string_view sym) {
    if (cur().kind == TokenKind::symbol && cur().text == sym) {
      advance();
      return true;
    }
    return false;
  }
  [[nodiscard]] Error err(const std::string& what) const {
    return Error{Errc::invalid_argument,
                 "SQL: " + what + " near '" + cur().text + "'"};
  }

  Result<std::string> identifier(const char* what) {
    if (cur().kind != TokenKind::identifier) return err(std::string("expected ") + what);
    std::string name = cur().text;
    advance();
    return name;
  }

  Result<Value> literal() {
    switch (cur().kind) {
      case TokenKind::integer: {
        Value v(cur().int_value);
        advance();
        return v;
      }
      case TokenKind::real: {
        Value v(cur().real_value);
        advance();
        return v;
      }
      case TokenKind::text: {
        Value v(cur().text);
        advance();
        return v;
      }
      case TokenKind::blob: {
        Value v(cur().blob_value);
        advance();
        return v;
      }
      case TokenKind::identifier:
        if (match_kw("NULL")) return Value::null();
        if (match_kw("TRUE")) return Value(true);
        if (match_kw("FALSE")) return Value(false);
        return err("expected literal");
      default:
        return err("expected literal");
    }
  }

  // --- statements -------------------------------------------------------

  Result<ResultSet> create_table() {
    if (!match_kw("TABLE")) return err("expected TABLE");
    auto name = identifier("table name");
    if (!name) return name.error();
    if (!match_sym("(")) return err("expected (");

    std::vector<Column> columns;
    std::vector<ForeignKey> fks;
    std::string primary_key;
    for (;;) {
      if (match_kw("FOREIGN")) {
        if (!match_kw("KEY") || !match_sym("(")) return err("expected KEY (");
        auto col = identifier("FK column");
        if (!col) return col.error();
        if (!match_sym(")") || !match_kw("REFERENCES")) {
          return err("expected ) REFERENCES");
        }
        auto parent = identifier("parent table");
        if (!parent) return parent.error();
        if (!match_sym("(")) return err("expected (");
        auto pcol = identifier("parent column");
        if (!pcol) return pcol.error();
        if (!match_sym(")")) return err("expected )");
        RefAction action = RefAction::restrict;
        if (match_kw("ON")) {
          if (!match_kw("DELETE")) return err("expected DELETE");
          if (match_kw("CASCADE")) {
            action = RefAction::cascade;
          } else if (match_kw("RESTRICT")) {
            action = RefAction::restrict;
          } else if (match_kw("SET")) {
            if (!match_kw("NULL")) return err("expected NULL");
            action = RefAction::set_null;
          } else {
            return err("expected CASCADE/RESTRICT/SET NULL");
          }
        }
        fks.push_back(ForeignKey{col.value(), parent.value(), pcol.value(), action});
      } else {
        auto col_name = identifier("column name");
        if (!col_name) return col_name.error();
        Column col;
        col.name = col_name.value();
        if (match_kw("INTEGER") || match_kw("INT")) {
          col.type = ValueType::integer;
        } else if (match_kw("REAL") || match_kw("DOUBLE") || match_kw("FLOAT")) {
          col.type = ValueType::real;
        } else if (match_kw("TEXT") || match_kw("VARCHAR")) {
          col.type = ValueType::text;
        } else if (match_kw("BLOB")) {
          col.type = ValueType::blob;
        } else if (match_kw("BOOLEAN") || match_kw("BOOL")) {
          col.type = ValueType::boolean;
        } else {
          return err("expected column type");
        }
        for (;;) {
          if (match_kw("PRIMARY")) {
            if (!match_kw("KEY")) return err("expected KEY");
            primary_key = col.name;
          } else if (match_kw("NOT")) {
            if (!match_kw("NULL")) return err("expected NULL");
            col.nullable = false;
          } else if (match_kw("UNIQUE")) {
            col.unique = true;
          } else if (match_kw("INDEXED")) {
            col.indexed = true;
          } else {
            break;
          }
        }
        columns.push_back(std::move(col));
      }
      if (match_sym(",")) continue;
      if (match_sym(")")) break;
      return err("expected , or )");
    }
    WDOC_TRY(expect_end());
    WDOC_TRY(db_->create_table(
        Schema(name.value(), std::move(columns), primary_key, std::move(fks))));
    return ResultSet{};
  }

  Result<ResultSet> drop_table() {
    if (!match_kw("TABLE")) return err("expected TABLE");
    auto name = identifier("table name");
    if (!name) return name.error();
    WDOC_TRY(expect_end());
    WDOC_TRY(db_->drop_table(name.value()));
    return ResultSet{};
  }

  Result<ResultSet> insert() {
    if (!match_kw("INTO")) return err("expected INTO");
    auto name = identifier("table name");
    if (!name) return name.error();
    if (!match_kw("VALUES") || !match_sym("(")) return err("expected VALUES (");
    std::vector<Value> row;
    for (;;) {
      auto v = literal();
      if (!v) return v.error();
      row.push_back(std::move(v).value());
      if (match_sym(",")) continue;
      if (match_sym(")")) break;
      return err("expected , or )");
    }
    WDOC_TRY(expect_end());
    auto id = db_->insert(name.value(), std::move(row));
    if (!id) return id.error();
    ResultSet rs;
    rs.affected = 1;
    rs.last_insert_row = id.value();
    return rs;
  }

  struct Pred {
    std::string column;
    CmpOp op;
    Value probe;
  };

  Result<std::vector<Pred>> where_clause() {
    std::vector<Pred> preds;
    if (!match_kw("WHERE")) return preds;
    for (;;) {
      auto col = identifier("column");
      if (!col) return col.error();
      Pred p;
      p.column = std::move(col).value();
      if (match_kw("IS")) {
        bool negated = match_kw("NOT");
        if (!match_kw("NULL")) return err("expected NULL");
        p.op = negated ? CmpOp::not_null : CmpOp::is_null;
      } else if (match_kw("LIKE")) {
        if (cur().kind != TokenKind::text) return err("expected string after LIKE");
        p.op = CmpOp::contains;
        p.probe = Value(cur().text);
        advance();
      } else if (cur().kind == TokenKind::symbol) {
        const std::string& sym = cur().text;
        if (sym == "=") {
          p.op = CmpOp::eq;
        } else if (sym == "!=" || sym == "<>") {
          p.op = CmpOp::ne;
        } else if (sym == "<") {
          p.op = CmpOp::lt;
        } else if (sym == "<=") {
          p.op = CmpOp::le;
        } else if (sym == ">") {
          p.op = CmpOp::gt;
        } else if (sym == ">=") {
          p.op = CmpOp::ge;
        } else {
          return err("expected comparison operator");
        }
        advance();
        auto v = literal();
        if (!v) return v.error();
        p.probe = std::move(v).value();
      } else {
        return err("expected comparison");
      }
      preds.push_back(std::move(p));
      if (!match_kw("AND")) break;
    }
    return preds;
  }

  enum class AggKind : std::uint8_t { column, count_star, sum, avg, min_of, max_of };

  struct SelectItem {
    AggKind kind = AggKind::column;
    std::string column;  // source column (empty for COUNT(*))

    [[nodiscard]] std::string output_name() const {
      switch (kind) {
        case AggKind::column: return column;
        case AggKind::count_star: return "count";
        case AggKind::sum: return "sum_" + column;
        case AggKind::avg: return "avg_" + column;
        case AggKind::min_of: return "min_" + column;
        case AggKind::max_of: return "max_" + column;
      }
      return column;
    }
  };

  Result<std::vector<SelectItem>> select_list() {
    std::vector<SelectItem> items;
    if (match_sym("*")) return items;  // empty = all columns
    for (;;) {
      SelectItem item;
      if (match_kw("COUNT")) {
        if (!match_sym("(") || !match_sym("*") || !match_sym(")")) {
          return err("expected COUNT(*)");
        }
        item.kind = AggKind::count_star;
      } else if (match_kw("SUM") || match_kw("AVG") || match_kw("MIN") ||
                 match_kw("MAX")) {
        const std::string fn = tokens_[pos_ - 1].text;
        if (!match_sym("(")) return err("expected (");
        auto col = identifier("aggregate column");
        if (!col) return col.error();
        if (!match_sym(")")) return err("expected )");
        item.column = std::move(col).value();
        if (ieq(fn, "SUM")) {
          item.kind = AggKind::sum;
        } else if (ieq(fn, "AVG")) {
          item.kind = AggKind::avg;
        } else if (ieq(fn, "MIN")) {
          item.kind = AggKind::min_of;
        } else {
          item.kind = AggKind::max_of;
        }
      } else {
        auto col = identifier("column");
        if (!col) return col.error();
        item.column = std::move(col).value();
      }
      items.push_back(std::move(item));
      if (!match_sym(",")) break;
    }
    return items;
  }

  Result<ResultSet> select() {
    auto items = select_list();
    if (!items) return items.error();
    if (!match_kw("FROM")) return err("expected FROM");
    auto name = identifier("table name");
    if (!name) return name.error();
    const Table* table = db_->catalog().table(name.value());
    if (table == nullptr) return Error{Errc::not_found, "no table: " + name.value()};

    if (match_kw("JOIN")) {
      return join_select(name.value(), *table, items.value());
    }

    auto preds = where_clause();
    if (!preds) return preds.error();

    std::optional<std::string> group_by;
    if (match_kw("GROUP")) {
      if (!match_kw("BY")) return err("expected BY");
      auto col = identifier("group column");
      if (!col) return col.error();
      group_by = std::move(col).value();
    }
    std::optional<std::string> order_col;
    bool ascending = true;
    if (match_kw("ORDER")) {
      if (!match_kw("BY")) return err("expected BY");
      auto col = identifier("order column");
      if (!col) return col.error();
      order_col = std::move(col).value();
      if (match_kw("DESC")) {
        ascending = false;
      } else {
        (void)match_kw("ASC");
      }
    }
    std::optional<std::size_t> limit;
    if (match_kw("LIMIT")) {
      if (cur().kind != TokenKind::integer || cur().int_value < 0) {
        return err("expected non-negative LIMIT");
      }
      limit = static_cast<std::size_t>(cur().int_value);
      advance();
    }
    WDOC_TRY(expect_end());

    const bool has_aggregate = std::any_of(
        items.value().begin(), items.value().end(),
        [](const SelectItem& it) { return it.kind != AggKind::column; });

    if (!has_aggregate && !group_by) {
      return plain_select(*table, items.value(), preds.value(), order_col, ascending,
                          limit);
    }
    return aggregate_select(*table, items.value(), preds.value(), group_by, order_col,
                            ascending, limit);
  }

  Result<ResultSet> plain_select(const Table& table, std::vector<SelectItem>& items,
                                 std::vector<Pred>& preds,
                                 const std::optional<std::string>& order_col,
                                 bool ascending, std::optional<std::size_t> limit) {
    Query q(table);
    for (Pred& p : preds) q.where(p.column, p.op, std::move(p.probe));
    if (order_col) q.order_by(*order_col, ascending);
    if (limit) q.limit(*limit);

    ResultSet rs;
    if (!items.empty()) {
      std::vector<std::string> projection;
      for (const SelectItem& it : items) projection.push_back(it.column);
      q.select(projection);
      rs.columns = std::move(projection);
    } else {
      for (std::size_t c = 0; c < table.schema().column_count(); ++c) {
        rs.columns.push_back(table.schema().column(c).name);
      }
    }
    auto rows = q.run();
    if (!rows) return rows.error();
    rs.rows.reserve(rows.value().size());
    for (QueryRow& row : rows.value()) rs.rows.push_back(std::move(row.values));
    return rs;
  }

  Result<ResultSet> aggregate_select(const Table& table,
                                     const std::vector<SelectItem>& items,
                                     std::vector<Pred>& preds,
                                     const std::optional<std::string>& group_by,
                                     const std::optional<std::string>& order_col,
                                     bool ascending, std::optional<std::size_t> limit) {
    if (items.empty()) {
      return Error{Errc::invalid_argument, "SQL: aggregate query needs a select list"};
    }
    // Validate items: plain columns must be the GROUP BY column.
    for (const SelectItem& it : items) {
      if (it.kind == AggKind::column &&
          (!group_by.has_value() || it.column != *group_by)) {
        return Error{Errc::invalid_argument,
                     "SQL: non-aggregated column '" + it.column +
                         "' requires GROUP BY " + it.column};
      }
    }
    std::optional<std::size_t> group_ci;
    if (group_by) {
      auto ci = table.schema().column_index(*group_by);
      if (!ci) return Error{Errc::invalid_argument, "no column: " + *group_by};
      group_ci = *ci;
    }
    std::vector<std::size_t> agg_ci(items.size(), SIZE_MAX);
    for (std::size_t i = 0; i < items.size(); ++i) {
      if (items[i].kind == AggKind::column || items[i].kind == AggKind::count_star) {
        continue;
      }
      auto ci = table.schema().column_index(items[i].column);
      if (!ci) return Error{Errc::invalid_argument, "no column: " + items[i].column};
      agg_ci[i] = *ci;
    }

    Query q(table);
    for (Pred& p : preds) q.where(p.column, p.op, std::move(p.probe));
    auto rows = q.run();
    if (!rows) return rows.error();

    struct Acc {
      std::uint64_t count = 0;
      double sum = 0;
      std::uint64_t non_null = 0;
      std::optional<Value> min_v, max_v;
    };
    // One accumulator row per group, per item.
    std::map<Value, std::vector<Acc>> groups;
    for (const QueryRow& row : rows.value()) {
      Value key = group_ci ? row.values[*group_ci] : Value(std::int64_t{0});
      auto [it, inserted] = groups.try_emplace(key, items.size());
      std::vector<Acc>& accs = it->second;
      for (std::size_t i = 0; i < items.size(); ++i) {
        Acc& acc = accs[i];
        ++acc.count;
        if (agg_ci[i] == SIZE_MAX) continue;
        const Value& cell = row.values[agg_ci[i]];
        if (cell.is_null()) continue;
        ++acc.non_null;
        double numeric = cell.type() == ValueType::integer
                             ? static_cast<double>(cell.as_int())
                             : (cell.type() == ValueType::real ? cell.as_real() : 0.0);
        acc.sum += numeric;
        if (!acc.min_v || cell < *acc.min_v) acc.min_v = cell;
        if (!acc.max_v || cell > *acc.max_v) acc.max_v = cell;
      }
    }

    ResultSet rs;
    for (const SelectItem& it : items) rs.columns.push_back(it.output_name());
    for (const auto& [key, accs] : groups) {
      std::vector<Value> out;
      out.reserve(items.size());
      for (std::size_t i = 0; i < items.size(); ++i) {
        const Acc& acc = accs[i];
        switch (items[i].kind) {
          case AggKind::column:
            out.push_back(key);
            break;
          case AggKind::count_star:
            out.push_back(Value(static_cast<std::int64_t>(acc.count)));
            break;
          case AggKind::sum:
            out.push_back(Value(acc.sum));
            break;
          case AggKind::avg:
            out.push_back(acc.non_null == 0
                              ? Value::null()
                              : Value(acc.sum / static_cast<double>(acc.non_null)));
            break;
          case AggKind::min_of:
            out.push_back(acc.min_v.value_or(Value::null()));
            break;
          case AggKind::max_of:
            out.push_back(acc.max_v.value_or(Value::null()));
            break;
        }
      }
      rs.rows.push_back(std::move(out));
    }
    // Empty input with no GROUP BY still yields one row of aggregates.
    if (rs.rows.empty() && !group_by) {
      std::vector<Value> out;
      for (const SelectItem& it : items) {
        out.push_back(it.kind == AggKind::count_star ? Value(std::int64_t{0})
                                                     : Value::null());
      }
      rs.rows.push_back(std::move(out));
    }

    if (order_col) {
      auto pos = std::find(rs.columns.begin(), rs.columns.end(), *order_col);
      if (pos == rs.columns.end()) {
        return Error{Errc::invalid_argument,
                     "SQL: ORDER BY must name an output column, got " + *order_col};
      }
      std::size_t ci = static_cast<std::size_t>(pos - rs.columns.begin());
      std::stable_sort(rs.rows.begin(), rs.rows.end(),
                       [&](const std::vector<Value>& a, const std::vector<Value>& b) {
                         int c = a[ci].compare(b[ci]);
                         return ascending ? c < 0 : c > 0;
                       });
    }
    if (limit && rs.rows.size() > *limit) rs.rows.resize(*limit);
    return rs;
  }

  Result<ResultSet> update() {
    auto name = identifier("table name");
    if (!name) return name.error();
    if (!match_kw("SET")) return err("expected SET");
    std::vector<std::pair<std::string, Value>> sets;
    for (;;) {
      auto col = identifier("column");
      if (!col) return col.error();
      if (!match_sym("=")) return err("expected =");
      auto v = literal();
      if (!v) return v.error();
      sets.emplace_back(std::move(col).value(), std::move(v).value());
      if (!match_sym(",")) break;
    }
    auto preds = where_clause();
    if (!preds) return preds.error();
    WDOC_TRY(expect_end());

    const Table* table = db_->catalog().table(name.value());
    if (table == nullptr) return Error{Errc::not_found, "no table: " + name.value()};
    auto ids = matching_ids(*table, preds.value());
    if (!ids) return ids.error();

    ResultSet rs;
    for (RowId id : ids.value()) {
      for (const auto& [col, v] : sets) {
        WDOC_TRY(db_->update_column(name.value(), id, col, v));
      }
      ++rs.affected;
    }
    return rs;
  }

  Result<ResultSet> del() {
    if (!match_kw("FROM")) return err("expected FROM");
    auto name = identifier("table name");
    if (!name) return name.error();
    auto preds = where_clause();
    if (!preds) return preds.error();
    WDOC_TRY(expect_end());

    const Table* table = db_->catalog().table(name.value());
    if (table == nullptr) return Error{Errc::not_found, "no table: " + name.value()};
    auto ids = matching_ids(*table, preds.value());
    if (!ids) return ids.error();

    ResultSet rs;
    for (RowId id : ids.value()) {
      // Cascades may have removed the row already.
      if (!table->exists(id)) continue;
      WDOC_TRY(db_->erase(name.value(), id));
      ++rs.affected;
    }
    return rs;
  }

  // --- INNER JOIN -----------------------------------------------------------
  // SELECT items FROM t1 JOIN t2 ON t1.a = t2.b [WHERE ...] [ORDER BY out]
  // [LIMIT n]. Columns may be qualified (t.col) or unqualified when
  // unambiguous; output columns are qualified. Aggregates are not supported
  // in joined selects.
  struct QualifiedColumn {
    std::size_t table = 0;  // 0 = left, 1 = right
    std::size_t column = 0;
  };

  static Result<QualifiedColumn> resolve_column(
      const std::string& ref, const std::array<const Table*, 2>& tables,
      const std::array<std::string, 2>& names) {
    auto dot = ref.find('.');
    if (dot != std::string::npos) {
      std::string tname = ref.substr(0, dot);
      std::string cname = ref.substr(dot + 1);
      for (std::size_t t = 0; t < 2; ++t) {
        if (names[t] == tname) {
          auto ci = tables[t]->schema().column_index(cname);
          if (!ci) {
            return Error{Errc::invalid_argument, "no column: " + ref};
          }
          return QualifiedColumn{t, *ci};
        }
      }
      return Error{Errc::invalid_argument, "unknown table in reference: " + ref};
    }
    std::optional<QualifiedColumn> found;
    for (std::size_t t = 0; t < 2; ++t) {
      if (auto ci = tables[t]->schema().column_index(ref)) {
        if (found) {
          return Error{Errc::invalid_argument, "ambiguous column: " + ref};
        }
        found = QualifiedColumn{t, *ci};
      }
    }
    if (!found) return Error{Errc::invalid_argument, "no column: " + ref};
    return *found;
  }

  Result<ResultSet> join_select(const std::string& left_name, const Table& left,
                                const std::vector<SelectItem>& items) {
    auto right_name = identifier("joined table");
    if (!right_name) return right_name.error();
    const Table* right = db_->catalog().table(right_name.value());
    if (right == nullptr) {
      return Error{Errc::not_found, "no table: " + right_name.value()};
    }
    if (!match_kw("ON")) return err("expected ON");
    auto lhs = identifier("join column");
    if (!lhs) return lhs.error();
    if (!match_sym("=")) return err("expected =");
    auto rhs = identifier("join column");
    if (!rhs) return rhs.error();

    const std::array<const Table*, 2> tables{&left, right};
    const std::array<std::string, 2> names{left_name, right_name.value()};

    auto lcol = resolve_column(lhs.value(), tables, names);
    if (!lcol) return lcol.error();
    auto rcol = resolve_column(rhs.value(), tables, names);
    if (!rcol) return rcol.error();
    if (lcol.value().table == rcol.value().table) {
      return Error{Errc::invalid_argument, "join condition must span both tables"};
    }
    // Normalize: key0 on the left table, key1 on the right.
    std::size_t key0 = lcol.value().table == 0 ? lcol.value().column : rcol.value().column;
    std::size_t key1 = lcol.value().table == 1 ? lcol.value().column : rcol.value().column;

    for (const SelectItem& it : items) {
      if (it.kind != AggKind::column) {
        return Error{Errc::unsupported, "aggregates are not supported with JOIN"};
      }
    }

    auto preds = where_clause();
    if (!preds) return preds.error();
    struct ResolvedPred {
      QualifiedColumn column;
      CmpOp op;
      Value probe;
    };
    std::vector<ResolvedPred> resolved;
    for (Pred& p : preds.value()) {
      auto qc = resolve_column(p.column, tables, names);
      if (!qc) return qc.error();
      resolved.push_back(ResolvedPred{qc.value(), p.op, std::move(p.probe)});
    }

    std::optional<std::string> order_col;
    bool ascending = true;
    if (match_kw("ORDER")) {
      if (!match_kw("BY")) return err("expected BY");
      auto col = identifier("order column");
      if (!col) return col.error();
      order_col = std::move(col).value();
      if (match_kw("DESC")) {
        ascending = false;
      } else {
        (void)match_kw("ASC");
      }
    }
    std::optional<std::size_t> limit;
    if (match_kw("LIMIT")) {
      if (cur().kind != TokenKind::integer || cur().int_value < 0) {
        return err("expected non-negative LIMIT");
      }
      limit = static_cast<std::size_t>(cur().int_value);
      advance();
    }
    WDOC_TRY(expect_end());

    // Projection: explicit items or every column of both tables.
    std::vector<QualifiedColumn> projection;
    ResultSet rs;
    if (items.empty()) {
      for (std::size_t t = 0; t < 2; ++t) {
        for (std::size_t c = 0; c < tables[t]->schema().column_count(); ++c) {
          projection.push_back(QualifiedColumn{t, c});
          rs.columns.push_back(names[t] + "." + tables[t]->schema().column(c).name);
        }
      }
    } else {
      for (const SelectItem& it : items) {
        auto qc = resolve_column(it.column, tables, names);
        if (!qc) return qc.error();
        projection.push_back(qc.value());
        rs.columns.push_back(names[qc.value().table] + "." +
                             tables[qc.value().table]->schema().column(qc.value().column).name);
      }
    }

    // Nested-loop join with index probe on the right key when available.
    const std::string& right_key_name = right->schema().column(key1).name;
    const bool right_indexed = right->has_index(right_key_name);

    auto emit = [&](const std::vector<Value>& lrow, const std::vector<Value>& rrow) {
      for (const ResolvedPred& p : resolved) {
        const Value& cell =
            p.column.table == 0 ? lrow[p.column.column] : rrow[p.column.column];
        if (!eval_cmp(p.op, cell, p.probe)) return;
      }
      std::vector<Value> out;
      out.reserve(projection.size());
      for (const QualifiedColumn& qc : projection) {
        out.push_back(qc.table == 0 ? lrow[qc.column] : rrow[qc.column]);
      }
      rs.rows.push_back(std::move(out));
    };

    left.scan([&](RowId, const std::vector<Value>& lrow) {
      const Value& key = lrow[key0];
      if (key.is_null()) return true;  // NULL joins nothing
      if (right_indexed) {
        for (RowId rid : right->find_equal(right_key_name, key)) {
          emit(lrow, *right->get(rid));
        }
      } else {
        right->scan([&](RowId, const std::vector<Value>& rrow) {
          if (rrow[key1] == key) emit(lrow, rrow);
          return true;
        });
      }
      return true;
    });

    if (order_col) {
      // Exact qualified match first, then a unique ".col" suffix match.
      auto pos = std::find(rs.columns.begin(), rs.columns.end(), *order_col);
      if (pos == rs.columns.end()) {
        std::string suffix = "." + *order_col;
        for (auto it = rs.columns.begin(); it != rs.columns.end(); ++it) {
          if (it->size() > suffix.size() &&
              it->compare(it->size() - suffix.size(), suffix.size(), suffix) == 0) {
            if (pos != rs.columns.end()) {
              return Error{Errc::invalid_argument,
                           "ambiguous ORDER BY column: " + *order_col};
            }
            pos = it;
          }
        }
      }
      if (pos == rs.columns.end()) {
        return Error{Errc::invalid_argument,
                     "ORDER BY must name an output column, got " + *order_col};
      }
      std::size_t ci = static_cast<std::size_t>(pos - rs.columns.begin());
      std::stable_sort(rs.rows.begin(), rs.rows.end(),
                       [&](const std::vector<Value>& a, const std::vector<Value>& b) {
                         int c = a[ci].compare(b[ci]);
                         return ascending ? c < 0 : c > 0;
                       });
    }
    if (limit && rs.rows.size() > *limit) rs.rows.resize(*limit);
    return rs;
  }

  Result<std::vector<RowId>> matching_ids(const Table& table,
                                          std::vector<Pred>& preds) {
    Query q(table);
    for (Pred& p : preds) q.where(p.column, p.op, p.probe);
    auto rows = q.run();
    if (!rows) return rows.error();
    std::vector<RowId> ids;
    ids.reserve(rows.value().size());
    for (const QueryRow& row : rows.value()) ids.push_back(row.id);
    return ids;
  }

  Status expect_end() {
    (void)match_sym(";");
    if (cur().kind != TokenKind::end) {
      return Status(err("trailing tokens"));
    }
    return Status::ok();
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Database* db_;
};

}  // namespace

Result<ResultSet> Engine::execute(std::string_view statement) {
  auto tokens = tokenize(statement);
  if (!tokens) return tokens.error();
  Parser parser(std::move(tokens).value(), *db_);
  return parser.run();
}

std::string ResultSet::to_string() const {
  if (columns.empty()) {
    return "affected: " + std::to_string(affected) + "\n";
  }
  std::string out;
  for (std::size_t c = 0; c < columns.size(); ++c) {
    out += (c > 0 ? " | " : "") + columns[c];
  }
  out += "\n";
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += (c > 0 ? " | " : "") + row[c].to_string();
    }
    out += "\n";
  }
  return out;
}

}  // namespace wdoc::storage::sql

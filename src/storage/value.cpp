#include "storage/value.hpp"

#include <cstdio>

#include "common/hash.hpp"

namespace wdoc::storage {

const char* value_type_name(ValueType t) {
  switch (t) {
    case ValueType::null: return "null";
    case ValueType::integer: return "integer";
    case ValueType::real: return "real";
    case ValueType::text: return "text";
    case ValueType::blob: return "blob";
    case ValueType::boolean: return "boolean";
  }
  return "?";
}

int Value::compare(const Value& other) const {
  if (type() != other.type()) {
    return static_cast<int>(type()) < static_cast<int>(other.type()) ? -1 : 1;
  }
  switch (type()) {
    case ValueType::null:
      return 0;
    case ValueType::integer: {
      auto a = as_int(), b = other.as_int();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::real: {
      auto a = as_real(), b = other.as_real();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::text: {
      int c = as_text().compare(other.as_text());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueType::blob: {
      const auto& a = as_blob();
      const auto& b = other.as_blob();
      if (a < b) return -1;
      if (b < a) return 1;
      return 0;
    }
    case ValueType::boolean:
      return static_cast<int>(as_bool()) - static_cast<int>(other.as_bool());
  }
  return 0;
}

std::uint64_t Value::hash() const {
  switch (type()) {
    case ValueType::null:
      return 0xdeadULL;
    case ValueType::integer:
      return hash_combine(1, static_cast<std::uint64_t>(as_int()));
    case ValueType::real: {
      double d = as_real();
      std::uint64_t bits;
      std::memcpy(&bits, &d, sizeof bits);
      return hash_combine(2, bits);
    }
    case ValueType::text:
      return hash_combine(3, fnv1a64(as_text()));
    case ValueType::blob:
      return hash_combine(4, fnv1a64(std::span<const std::uint8_t>(as_blob())));
    case ValueType::boolean:
      return hash_combine(5, as_bool() ? 1u : 0u);
  }
  return 0;
}

std::string Value::to_string() const {
  switch (type()) {
    case ValueType::null:
      return "NULL";
    case ValueType::integer:
      return std::to_string(as_int());
    case ValueType::real: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%g", as_real());
      return buf;
    }
    case ValueType::text:
      return "'" + as_text() + "'";
    case ValueType::blob:
      return "blob[" + std::to_string(as_blob().size()) + "]";
    case ValueType::boolean:
      return as_bool() ? "true" : "false";
  }
  return "?";
}

std::size_t Value::byte_size() const {
  switch (type()) {
    case ValueType::null: return 1;
    case ValueType::integer: return 9;
    case ValueType::real: return 9;
    case ValueType::text: return 5 + as_text().size();
    case ValueType::blob: return 5 + as_blob().size();
    case ValueType::boolean: return 2;
  }
  return 1;
}

void Value::serialize(Writer& w) const {
  w.u8(static_cast<std::uint8_t>(type()));
  switch (type()) {
    case ValueType::null:
      break;
    case ValueType::integer:
      w.i64(as_int());
      break;
    case ValueType::real:
      w.f64(as_real());
      break;
    case ValueType::text:
      w.str(as_text());
      break;
    case ValueType::blob:
      w.bytes(as_blob());
      break;
    case ValueType::boolean:
      w.boolean(as_bool());
      break;
  }
}

Result<Value> Value::deserialize(Reader& r) {
  auto tag = r.u8();
  if (!tag) return tag.error();
  switch (static_cast<ValueType>(tag.value())) {
    case ValueType::null:
      return Value::null();
    case ValueType::integer: {
      auto v = r.i64();
      if (!v) return v.error();
      return Value{v.value()};
    }
    case ValueType::real: {
      auto v = r.f64();
      if (!v) return v.error();
      return Value{v.value()};
    }
    case ValueType::text: {
      auto v = r.str();
      if (!v) return v.error();
      return Value{std::move(v).value()};
    }
    case ValueType::blob: {
      auto v = r.bytes();
      if (!v) return v.error();
      return Value{std::move(v).value()};
    }
    case ValueType::boolean: {
      auto v = r.boolean();
      if (!v) return v.error();
      return Value{v.value()};
    }
  }
  return Error{Errc::corrupt, "bad value tag"};
}

}  // namespace wdoc::storage

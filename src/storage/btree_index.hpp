// In-memory B+-tree secondary index: Value key -> RowId postings.
//
// Duplicates are supported by treating (key, row_id) as the composite sort
// key. Leaves are chained for ordered range scans. `validate()` checks the
// structural invariants (sortedness, fill factors, separator correctness,
// uniform leaf depth) and is exercised by property tests.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/ids.hpp"
#include "storage/value.hpp"

namespace wdoc::storage {

class BTreeIndex {
 public:
  // `order` = max children of an internal node (= max entries of a leaf).
  explicit BTreeIndex(std::size_t order = 64);
  ~BTreeIndex();

  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;
  BTreeIndex(BTreeIndex&&) noexcept;
  BTreeIndex& operator=(BTreeIndex&&) noexcept;

  void insert(const Value& key, RowId rid);
  // Returns true if the (key, rid) entry existed and was removed.
  bool erase(const Value& key, RowId rid);

  [[nodiscard]] std::vector<RowId> find(const Value& key) const;
  [[nodiscard]] bool contains(const Value& key) const;

  // Visit entries with lo <= key <= hi in key order; nullptr bound = open.
  // Visitor returns false to stop early.
  void scan_range(const Value* lo, const Value* hi,
                  const std::function<bool(const Value&, RowId)>& visit) const;
  // Visit all entries in key order.
  void scan_all(const std::function<bool(const Value&, RowId)>& visit) const;

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t height() const;

  void clear();

  // Structural invariant check; returns a human-readable violation or ""
  [[nodiscard]] std::string validate() const;

 private:
  struct Entry {
    Value key;
    RowId rid;
  };
  struct Node;  // defined in .cpp

  std::unique_ptr<Node> root_;
  std::size_t order_;
  std::size_t size_ = 0;
};

}  // namespace wdoc::storage

#include "storage/txn.hpp"

#include <algorithm>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/request_trace.hpp"

namespace wdoc::storage {

const char* txn_lock_mode_name(TxnLockMode m) {
  switch (m) {
    case TxnLockMode::IS: return "IS";
    case TxnLockMode::IX: return "IX";
    case TxnLockMode::S: return "S";
    case TxnLockMode::X: return "X";
  }
  return "?";
}

bool txn_lock_compatible(TxnLockMode held, TxnLockMode wanted) {
  // Standard multigranularity compatibility matrix.
  static constexpr bool kCompat[4][4] = {
      // held:      IS     IX     S      X       wanted v
      /* IS */ {true, true, true, false},
      /* IX */ {true, true, false, false},
      /* S  */ {true, false, true, false},
      /* X  */ {false, false, false, false},
  };
  return kCompat[static_cast<int>(held)][static_cast<int>(wanted)];
}

namespace {

// Process-wide transaction/lock-wait metrics shared by every manager.
struct TxnMetrics {
  obs::Counter& begins;
  obs::Counter& commits;
  obs::Counter& aborts;
  obs::Counter& deadlocks;
  obs::Counter& lock_timeouts;

  static TxnMetrics& get() {
    static TxnMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::global();
      return new TxnMetrics{
          reg.counter("storage.txn_begin"),     reg.counter("storage.txn_commit"),
          reg.counter("storage.txn_abort"),     reg.counter("storage.txn_deadlocks"),
          reg.counter("storage.lock_timeouts"),
      };
    }();
    return *m;
  }
};

obs::Counter& lock_wait_counter(TxnLockMode mode) {
  // Magic statics: thread-safe one-time registration per mode.
  static obs::Counter& is =
      obs::MetricsRegistry::global().counter("storage.lock_waits", {{"mode", "IS"}});
  static obs::Counter& ix =
      obs::MetricsRegistry::global().counter("storage.lock_waits", {{"mode", "IX"}});
  static obs::Counter& sh =
      obs::MetricsRegistry::global().counter("storage.lock_waits", {{"mode", "S"}});
  static obs::Counter& ex =
      obs::MetricsRegistry::global().counter("storage.lock_waits", {{"mode", "X"}});
  switch (mode) {
    case TxnLockMode::IS: return is;
    case TxnLockMode::IX: return ix;
    case TxnLockMode::S: return sh;
    case TxnLockMode::X: return ex;
  }
  return ex;
}

// Upgrade lattice: result of holding `a` and additionally needing `b`.
TxnLockMode combine(TxnLockMode a, TxnLockMode b) {
  if (a == b) return a;
  auto is = [](TxnLockMode m, TxnLockMode probe) { return m == probe; };
  if (is(a, TxnLockMode::X) || is(b, TxnLockMode::X)) return TxnLockMode::X;
  // S + IX = SIX, which we conservatively round up to X (rare in our
  // workloads: a scan followed by writes to the same table).
  if ((a == TxnLockMode::S && b == TxnLockMode::IX) ||
      (a == TxnLockMode::IX && b == TxnLockMode::S)) {
    return TxnLockMode::X;
  }
  if (is(a, TxnLockMode::S) || is(b, TxnLockMode::S)) return TxnLockMode::S;
  if (is(a, TxnLockMode::IX) || is(b, TxnLockMode::IX)) return TxnLockMode::IX;
  return TxnLockMode::IS;
}

}  // namespace

// Sink that both records undo entries and forwards to the database WAL with
// the transaction's id.
class TransactionManager::UndoSink final : public MutationSink {
 public:
  UndoSink(TransactionManager* mgr, TxnId id) : mgr_(mgr), id_(id) {}

  void on_mutation(const Mutation& m) override {
    {
      std::lock_guard<std::mutex> g(mgr_->mu_);
      mgr_->txns_[id_.value()].undo.push_back(m);
    }
    LogRecord rec;
    switch (m.kind) {
      case MutationKind::insert: rec.kind = LogKind::insert; break;
      case MutationKind::update: rec.kind = LogKind::update; break;
      case MutationKind::erase: rec.kind = LogKind::erase; break;
    }
    rec.txn = id_.value();
    rec.table = m.table;
    rec.row = m.row;
    rec.before = m.before;
    rec.after = m.after;
    Status s = mgr_->db_.log(rec);
    if (!s.is_ok()) WDOC_CHECK(false, "txn WAL append failed: " + s.message());
  }

 private:
  TransactionManager* mgr_;
  TxnId id_;
};

TransactionManager::TransactionManager(Database& db, std::chrono::milliseconds lock_timeout)
    : db_(db), lock_timeout_(lock_timeout) {}

TransactionManager::~TransactionManager() = default;

std::unique_ptr<Txn> TransactionManager::begin() {
  std::lock_guard<std::mutex> g(mu_);
  TxnId id = ids_.next();
  txns_[id.value()] = TxnState{};
  TxnMetrics::get().begins.inc();
  LogRecord rec;
  rec.kind = LogKind::begin;
  rec.txn = id.value();
  Status s = db_.log(rec);
  if (!s.is_ok()) WDOC_CHECK(false, "txn WAL begin failed");
  return std::unique_ptr<Txn>(new Txn(this, id));
}

std::size_t TransactionManager::active_txns() const {
  std::lock_guard<std::mutex> g(mu_);
  return static_cast<std::size_t>(
      std::count_if(txns_.begin(), txns_.end(),
                    [](const auto& kv) { return kv.second.active; }));
}

std::size_t TransactionManager::held_locks(TxnId id) const {
  std::lock_guard<std::mutex> g(mu_);
  auto it = txns_.find(id.value());
  return it == txns_.end() ? 0 : it->second.held.size();
}

bool TransactionManager::would_deadlock(std::uint64_t waiter, const ResourceKey& key,
                                        TxnLockMode mode) {
  // DFS over the waits-for graph: waiter -> current holders blocking it,
  // then each waiting holder -> holders blocking *its* pending request.
  std::set<std::uint64_t> visited;
  std::vector<std::uint64_t> stack;

  auto blockers = [&](const ResourceKey& k, TxnLockMode m,
                      std::uint64_t self) -> std::vector<std::uint64_t> {
    std::vector<std::uint64_t> out;
    auto it = locks_.find(k);
    if (it == locks_.end()) return out;
    for (const auto& [holder, held] : it->second.holders) {
      if (holder != self && !txn_lock_compatible(held, m)) out.push_back(holder);
    }
    return out;
  };

  for (std::uint64_t b : blockers(key, mode, waiter)) stack.push_back(b);
  while (!stack.empty()) {
    std::uint64_t t = stack.back();
    stack.pop_back();
    if (t == waiter) return true;
    if (!visited.insert(t).second) continue;
    auto wit = waiting_.find(t);
    if (wit == waiting_.end()) continue;
    for (std::uint64_t b : blockers(wit->second.first, wit->second.second, t)) {
      stack.push_back(b);
    }
  }
  return false;
}

Status TransactionManager::acquire(TxnId txn, const ResourceKey& key, TxnLockMode mode) {
  std::unique_lock<std::mutex> g(mu_);
  auto& state = txns_[txn.value()];
  WDOC_CHECK(state.active, "acquire on finished txn");

  auto& lock = locks_[key];
  auto held_it = lock.holders.find(txn.value());
  TxnLockMode target = mode;
  if (held_it != lock.holders.end()) {
    target = combine(held_it->second, mode);
    if (target == held_it->second) return Status::ok();  // already strong enough
  }

  auto grantable = [&] {
    for (const auto& [holder, held] : lock.holders) {
      if (holder == txn.value()) continue;
      if (!txn_lock_compatible(held, target)) return false;
    }
    return true;
  };

  const auto deadline = std::chrono::steady_clock::now() + lock_timeout_;
  bool waited = false;
  while (!grantable()) {
    if (!waited) {
      waited = true;
      lock_wait_counter(target).inc();
      obs::FlightRecorder::global().record(
          obs::FlightKind::lock_wait,
          key.table + " " + txn_lock_mode_name(target) + " blocked by holder",
          /*station=*/0, /*actor=*/txn.value());
    }
    if (would_deadlock(txn.value(), key, target)) {
      ++deadlocks_;
      TxnMetrics::get().deadlocks.inc();
      obs::FlightRecorder::global().record(
          obs::FlightKind::deadlock,
          "cycle in waits-for graph acquiring " + key.table + " " +
              txn_lock_mode_name(target),
          /*station=*/0, /*actor=*/txn.value());
      return {Errc::deadlock,
              "txn " + std::to_string(txn.value()) + " would deadlock on " + key.table};
    }
    waiting_[txn.value()] = {key, target};
    auto wait_result = cv_.wait_until(g, deadline);
    waiting_.erase(txn.value());
    if (wait_result == std::cv_status::timeout && !grantable()) {
      TxnMetrics::get().lock_timeouts.inc();
      obs::FlightRecorder::global().record(
          obs::FlightKind::lock_wait,
          key.table + " " + txn_lock_mode_name(target) + " wait timed out",
          /*station=*/0, /*actor=*/txn.value());
      return {Errc::timeout,
              "txn " + std::to_string(txn.value()) + " lock timeout on " + key.table};
    }
  }
  lock.holders[txn.value()] = target;
  state.held.insert(key);
  return Status::ok();
}

void TransactionManager::release_all(TxnId txn) {
  // Caller holds mu_.
  auto it = txns_.find(txn.value());
  if (it == txns_.end()) return;
  for (const ResourceKey& key : it->second.held) {
    auto lit = locks_.find(key);
    if (lit == locks_.end()) continue;
    lit->second.holders.erase(txn.value());
    if (lit->second.holders.empty()) locks_.erase(lit);
  }
  it->second.held.clear();
  it->second.active = false;
  cv_.notify_all();
}

Status TransactionManager::lock_table(TxnId txn, const std::string& table,
                                      TxnLockMode mode) {
  return acquire(txn, ResourceKey{table, 0}, mode);
}

Status TransactionManager::lock_row(TxnId txn, const std::string& table, RowId row,
                                    TxnLockMode mode) {
  WDOC_CHECK(row.valid(), "lock_row on invalid row");
  return acquire(txn, ResourceKey{table, row.value()}, mode);
}

Status TransactionManager::finish_commit(Txn& txn) {
  LogRecord rec;
  rec.kind = LogKind::commit;
  rec.txn = txn.id().value();
  WDOC_TRY(db_.log(rec));
  WDOC_TRY(db_.flush());
  std::lock_guard<std::mutex> g(mu_);
  // Auto-checkpoint only when this is the sole active transaction: a
  // snapshot must not capture other transactions' uncommitted writes.
  // Holding mu_ keeps new transactions from beginning mid-snapshot.
  std::size_t active = static_cast<std::size_t>(
      std::count_if(txns_.begin(), txns_.end(),
                    [](const auto& kv) { return kv.second.active; }));
  if (active == 1) {
    std::lock_guard<std::mutex> latch(physical_mu_);
    WDOC_TRY(db_.maybe_checkpoint());
  }
  release_all(txn.id());
  TxnMetrics::get().commits.inc();
  return Status::ok();
}

void TransactionManager::finish_abort(Txn& txn) {
  std::vector<Mutation> undo;
  {
    std::lock_guard<std::mutex> g(mu_);
    undo = std::move(txns_[txn.id().value()].undo);
  }
  // Roll back through Table directly: constraint checks already passed for
  // the before-images, and FK cascades must not re-fire during undo.
  std::lock_guard<std::mutex> latch(physical_mu_);
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
    Table* t = db_.catalog().table(it->table);
    WDOC_CHECK(t != nullptr, "undo into missing table");
    switch (it->kind) {
      case MutationKind::insert: {
        Status s = t->erase(it->row);
        WDOC_CHECK(s.is_ok(), "undo insert failed: " + s.message());
        break;
      }
      case MutationKind::update: {
        Status s = t->update(it->row, it->before);
        WDOC_CHECK(s.is_ok(), "undo update failed: " + s.message());
        break;
      }
      case MutationKind::erase: {
        Status s = t->restore(it->row, it->before);
        WDOC_CHECK(s.is_ok(), "undo erase failed: " + s.message());
        break;
      }
    }
  }
  LogRecord rec;
  rec.kind = LogKind::abort;
  rec.txn = txn.id().value();
  (void)db_.log(rec);
  std::lock_guard<std::mutex> g(mu_);
  release_all(txn.id());
  TxnMetrics::get().aborts.inc();
}

// --- Txn --------------------------------------------------------------------

Txn::~Txn() {
  if (active_) abort();
}

Result<RowId> Txn::insert(const std::string& table, std::vector<Value> row) {
  WDOC_CHECK(active_, "insert on finished txn");
  WDOC_TRY(mgr_->lock_table(id_, table, TxnLockMode::IX));
  TransactionManager::UndoSink sink(mgr_, id_);
  Result<RowId> id = [&]() -> Result<RowId> {
    std::lock_guard<std::mutex> latch(mgr_->physical_mu_);
    return mgr_->db_.catalog().insert(table, std::move(row), &sink);
  }();
  if (id) {
    // New row is ours; take its X lock so readers serialize behind us.
    WDOC_TRY(mgr_->lock_row(id_, table, id.value(), TxnLockMode::X));
  }
  return id;
}

Status Txn::update(const std::string& table, RowId id, std::vector<Value> row) {
  WDOC_CHECK(active_, "update on finished txn");
  WDOC_TRY(mgr_->lock_table(id_, table, TxnLockMode::IX));
  WDOC_TRY(mgr_->lock_row(id_, table, id, TxnLockMode::X));
  TransactionManager::UndoSink sink(mgr_, id_);
  std::lock_guard<std::mutex> latch(mgr_->physical_mu_);
  return mgr_->db_.catalog().update(table, id, std::move(row), &sink);
}

Status Txn::update_column(const std::string& table, RowId id, std::string_view column,
                          Value v) {
  WDOC_CHECK(active_, "update_column on finished txn");
  WDOC_TRY(mgr_->lock_table(id_, table, TxnLockMode::IX));
  WDOC_TRY(mgr_->lock_row(id_, table, id, TxnLockMode::X));
  TransactionManager::UndoSink sink(mgr_, id_);
  std::lock_guard<std::mutex> latch(mgr_->physical_mu_);
  return mgr_->db_.catalog().update_column(table, id, column, std::move(v), &sink);
}

Status Txn::erase(const std::string& table, RowId id) {
  WDOC_CHECK(active_, "erase on finished txn");
  WDOC_TRY(mgr_->lock_table(id_, table, TxnLockMode::IX));
  WDOC_TRY(mgr_->lock_row(id_, table, id, TxnLockMode::X));
  TransactionManager::UndoSink sink(mgr_, id_);
  std::lock_guard<std::mutex> latch(mgr_->physical_mu_);
  return mgr_->db_.catalog().erase(table, id, &sink);
}

Result<std::vector<Value>> Txn::get(const std::string& table, RowId id) {
  WDOC_CHECK(active_, "get on finished txn");
  WDOC_TRY(mgr_->lock_table(id_, table, TxnLockMode::IS));
  WDOC_TRY(mgr_->lock_row(id_, table, id, TxnLockMode::S));
  std::lock_guard<std::mutex> latch(mgr_->physical_mu_);
  const Table* t = mgr_->db_.catalog().table(table);
  if (t == nullptr) return Error{Errc::not_found, "no table: " + table};
  const auto* row = t->get(id);
  if (row == nullptr) return Error{Errc::not_found, table + ": no such row"};
  return *row;
}

Result<std::vector<RowId>> Txn::find_equal(const std::string& table,
                                           std::string_view column, const Value& v) {
  WDOC_CHECK(active_, "find_equal on finished txn");
  WDOC_TRY(mgr_->lock_table(id_, table, TxnLockMode::S));
  std::lock_guard<std::mutex> latch(mgr_->physical_mu_);
  const Table* t = mgr_->db_.catalog().table(table);
  if (t == nullptr) return Error{Errc::not_found, "no table: " + table};
  return t->find_equal(column, v);
}

Status Txn::commit() {
  WDOC_CHECK(active_, "double commit");
  active_ = false;
  // Joins the ambient request trace (no-op outside one), so a gateway
  // request that commits shows the commit inside its span tree.
  obs::SpanScope span("txn.commit");
  return mgr_->finish_commit(*this);
}

void Txn::abort() {
  if (!active_) return;
  active_ = false;
  mgr_->finish_abort(*this);
}

}  // namespace wdoc::storage

#include "storage/schema.hpp"

namespace wdoc::storage {

const char* ref_action_name(RefAction a) {
  switch (a) {
    case RefAction::restrict: return "restrict";
    case RefAction::cascade: return "cascade";
    case RefAction::set_null: return "set_null";
  }
  return "?";
}

Schema::Schema(std::string table_name, std::vector<Column> columns,
               std::string primary_key, std::vector<ForeignKey> foreign_keys)
    : table_name_(std::move(table_name)),
      columns_(std::move(columns)),
      primary_key_(std::move(primary_key)),
      foreign_keys_(std::move(foreign_keys)) {
  if (!primary_key_.empty()) {
    auto idx = column_index(primary_key_);
    WDOC_CHECK(idx.has_value(), "primary key column missing: " + primary_key_);
    columns_[*idx].unique = true;
    columns_[*idx].nullable = false;
  }
}

std::optional<std::size_t> Schema::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

Status Schema::validate_row(const std::vector<Value>& row) const {
  if (row.size() != columns_.size()) {
    return {Errc::invalid_argument,
            table_name_ + ": row arity " + std::to_string(row.size()) + " != " +
                std::to_string(columns_.size())};
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    const Column& col = columns_[i];
    if (row[i].is_null()) {
      if (!col.nullable) {
        return {Errc::constraint_violation,
                table_name_ + "." + col.name + ": NULL in non-nullable column"};
      }
      continue;
    }
    if (row[i].type() != col.type) {
      return {Errc::invalid_argument,
              table_name_ + "." + col.name + ": expected " +
                  value_type_name(col.type) + ", got " +
                  value_type_name(row[i].type())};
    }
  }
  return Status::ok();
}

void Schema::serialize(Writer& w) const {
  w.str(table_name_);
  w.u32(static_cast<std::uint32_t>(columns_.size()));
  for (const Column& c : columns_) {
    w.str(c.name);
    w.u8(static_cast<std::uint8_t>(c.type));
    w.boolean(c.nullable);
    w.boolean(c.unique);
    w.boolean(c.indexed);
  }
  w.str(primary_key_);
  w.u32(static_cast<std::uint32_t>(foreign_keys_.size()));
  for (const ForeignKey& fk : foreign_keys_) {
    w.str(fk.column);
    w.str(fk.parent_table);
    w.str(fk.parent_column);
    w.u8(static_cast<std::uint8_t>(fk.on_delete));
  }
}

Result<Schema> Schema::deserialize(Reader& r) {
  auto name = r.str();
  if (!name) return name.error();
  auto ncols = r.count(8);  // name length prefix + type + 3 flags
  if (!ncols) return ncols.error();
  std::vector<Column> cols;
  cols.reserve(ncols.value());
  for (std::uint32_t i = 0; i < ncols.value(); ++i) {
    Column c;
    auto cn = r.str();
    if (!cn) return cn.error();
    c.name = std::move(cn).value();
    auto t = r.u8();
    if (!t) return t.error();
    c.type = static_cast<ValueType>(t.value());
    auto nl = r.boolean();
    if (!nl) return nl.error();
    c.nullable = nl.value();
    auto uq = r.boolean();
    if (!uq) return uq.error();
    c.unique = uq.value();
    auto ix = r.boolean();
    if (!ix) return ix.error();
    c.indexed = ix.value();
    cols.push_back(std::move(c));
  }
  auto pk = r.str();
  if (!pk) return pk.error();
  auto nfks = r.count(13);  // three length prefixes + action byte
  if (!nfks) return nfks.error();
  std::vector<ForeignKey> fks;
  fks.reserve(nfks.value());
  for (std::uint32_t i = 0; i < nfks.value(); ++i) {
    ForeignKey fk;
    auto col = r.str();
    if (!col) return col.error();
    fk.column = std::move(col).value();
    auto pt = r.str();
    if (!pt) return pt.error();
    fk.parent_table = std::move(pt).value();
    auto pc = r.str();
    if (!pc) return pc.error();
    fk.parent_column = std::move(pc).value();
    auto act = r.u8();
    if (!act) return act.error();
    fk.on_delete = static_cast<RefAction>(act.value());
    fks.push_back(std::move(fk));
  }
  return Schema(std::move(name).value(), std::move(cols), std::move(pk).value(),
                std::move(fks));
}

}  // namespace wdoc::storage

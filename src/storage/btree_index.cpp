#include "storage/btree_index.hpp"

#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>

namespace wdoc::storage {

namespace {

// Composite ordering on (key, rid) so duplicate keys are totally ordered.
int cmp(const Value& ak, RowId ar, const Value& bk, RowId br) {
  int c = ak.compare(bk);
  if (c != 0) return c;
  if (ar.value() < br.value()) return -1;
  if (ar.value() > br.value()) return 1;
  return 0;
}

}  // namespace

struct BTreeIndex::Node {
  bool leaf = true;
  // Leaf: entries sorted by (key, rid); keys/children unused.
  std::vector<Entry> entries;
  // Internal: children.size() == keys.size() + 1. keys[i] is a copy of the
  // smallest (key,rid) in children[i+1]'s subtree.
  std::vector<Entry> keys;
  std::vector<std::unique_ptr<Node>> children;
  Node* next = nullptr;  // leaf chain

  [[nodiscard]] std::size_t count() const { return leaf ? entries.size() : children.size(); }
};

BTreeIndex::BTreeIndex(std::size_t order) : order_(order < 4 ? 4 : order) {
  root_ = std::make_unique<Node>();
}

BTreeIndex::~BTreeIndex() = default;
BTreeIndex::BTreeIndex(BTreeIndex&&) noexcept = default;
BTreeIndex& BTreeIndex::operator=(BTreeIndex&&) noexcept = default;

void BTreeIndex::insert(const Value& key, RowId rid) {
  struct Helper {
    std::size_t order;

    // Returns a (separator, new right sibling) when `n` splits.
    struct Split {
      Entry sep;
      std::unique_ptr<BTreeIndex::Node> right;
    };

    std::unique_ptr<Split> insert(BTreeIndex::Node* n, const Value& key, RowId rid) {
      if (n->leaf) {
        auto it = std::lower_bound(
            n->entries.begin(), n->entries.end(), std::pair(&key, rid),
            [](const Entry& e, const std::pair<const Value*, RowId>& probe) {
              return cmp(e.key, e.rid, *probe.first, probe.second) < 0;
            });
        n->entries.insert(it, Entry{key, rid});
        if (n->entries.size() <= order) return nullptr;
        // Split leaf.
        auto right = std::make_unique<BTreeIndex::Node>();
        right->leaf = true;
        std::size_t mid = n->entries.size() / 2;
        right->entries.assign(std::make_move_iterator(n->entries.begin() + static_cast<std::ptrdiff_t>(mid)),
                              std::make_move_iterator(n->entries.end()));
        n->entries.resize(mid);
        right->next = n->next;
        n->next = right.get();
        obs::MetricsRegistry::global().counter("storage.btree_splits").inc();
        auto split = std::make_unique<Split>();
        split->sep = right->entries.front();
        split->right = std::move(right);
        return split;
      }
      // Internal: find child.
      std::size_t slot = child_index(n, key, rid);
      auto split = insert(n->children[slot].get(), key, rid);
      if (!split) return nullptr;
      n->keys.insert(n->keys.begin() + static_cast<std::ptrdiff_t>(slot), split->sep);
      n->children.insert(n->children.begin() + static_cast<std::ptrdiff_t>(slot) + 1,
                         std::move(split->right));
      if (n->children.size() <= order) return nullptr;
      // Split internal node.
      auto right = std::make_unique<BTreeIndex::Node>();
      right->leaf = false;
      std::size_t mid = n->keys.size() / 2;  // keys[mid] moves up
      Entry up = std::move(n->keys[mid]);
      right->keys.assign(std::make_move_iterator(n->keys.begin() + static_cast<std::ptrdiff_t>(mid) + 1),
                         std::make_move_iterator(n->keys.end()));
      right->children.assign(
          std::make_move_iterator(n->children.begin() + static_cast<std::ptrdiff_t>(mid) + 1),
          std::make_move_iterator(n->children.end()));
      n->keys.resize(mid);
      n->children.resize(mid + 1);
      obs::MetricsRegistry::global().counter("storage.btree_splits").inc();
      auto out = std::make_unique<Split>();
      out->sep = std::move(up);
      out->right = std::move(right);
      return out;
    }

    static std::size_t child_index(const BTreeIndex::Node* n, const Value& key, RowId rid) {
      // First key strictly greater than probe -> descend left of it.
      std::size_t lo = 0, hi = n->keys.size();
      while (lo < hi) {
        std::size_t mid = (lo + hi) / 2;
        if (cmp(n->keys[mid].key, n->keys[mid].rid, key, rid) <= 0) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo;
    }
  };

  Helper h{order_};
  auto split = h.insert(root_.get(), key, rid);
  if (split) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->keys.push_back(std::move(split->sep));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
  }
  ++size_;
}

bool BTreeIndex::erase(const Value& key, RowId rid) {
  // Rebalancing deletion. Underflow is fixed by borrow-from-sibling or merge.
  struct Helper {
    std::size_t order;
    [[nodiscard]] std::size_t min_fill() const { return order / 2; }

    bool erase(BTreeIndex::Node* n, const Value& key, RowId rid) {
      if (n->leaf) {
        auto it = std::lower_bound(
            n->entries.begin(), n->entries.end(), std::pair(&key, rid),
            [](const Entry& e, const std::pair<const Value*, RowId>& probe) {
              return cmp(e.key, e.rid, *probe.first, probe.second) < 0;
            });
        if (it == n->entries.end() || cmp(it->key, it->rid, key, rid) != 0) return false;
        n->entries.erase(it);
        return true;
      }
      std::size_t slot = child_index(n, key, rid);
      BTreeIndex::Node* child = n->children[slot].get();
      if (!erase(child, key, rid)) return false;
      if (child->count() >= min_fill()) return true;
      rebalance(n, slot);
      return true;
    }

    void rebalance(BTreeIndex::Node* parent, std::size_t slot) {
      BTreeIndex::Node* child = parent->children[slot].get();
      // Try borrow from left sibling.
      if (slot > 0) {
        BTreeIndex::Node* left = parent->children[slot - 1].get();
        if (left->count() > min_fill()) {
          if (child->leaf) {
            child->entries.insert(child->entries.begin(), std::move(left->entries.back()));
            left->entries.pop_back();
            parent->keys[slot - 1] = child->entries.front();
          } else {
            child->keys.insert(child->keys.begin(), std::move(parent->keys[slot - 1]));
            parent->keys[slot - 1] = std::move(left->keys.back());
            left->keys.pop_back();
            child->children.insert(child->children.begin(), std::move(left->children.back()));
            left->children.pop_back();
          }
          return;
        }
      }
      // Try borrow from right sibling.
      if (slot + 1 < parent->children.size()) {
        BTreeIndex::Node* right = parent->children[slot + 1].get();
        if (right->count() > min_fill()) {
          if (child->leaf) {
            child->entries.push_back(std::move(right->entries.front()));
            right->entries.erase(right->entries.begin());
            parent->keys[slot] = right->entries.front();
          } else {
            child->keys.push_back(std::move(parent->keys[slot]));
            parent->keys[slot] = std::move(right->keys.front());
            right->keys.erase(right->keys.begin());
            child->children.push_back(std::move(right->children.front()));
            right->children.erase(right->children.begin());
          }
          return;
        }
      }
      // Merge with a sibling.
      std::size_t left_slot = slot > 0 ? slot - 1 : slot;
      BTreeIndex::Node* left = parent->children[left_slot].get();
      BTreeIndex::Node* right = parent->children[left_slot + 1].get();
      if (left->leaf) {
        left->entries.insert(left->entries.end(),
                             std::make_move_iterator(right->entries.begin()),
                             std::make_move_iterator(right->entries.end()));
        left->next = right->next;
      } else {
        left->keys.push_back(std::move(parent->keys[left_slot]));
        left->keys.insert(left->keys.end(), std::make_move_iterator(right->keys.begin()),
                          std::make_move_iterator(right->keys.end()));
        left->children.insert(left->children.end(),
                              std::make_move_iterator(right->children.begin()),
                              std::make_move_iterator(right->children.end()));
      }
      parent->keys.erase(parent->keys.begin() + static_cast<std::ptrdiff_t>(left_slot));
      parent->children.erase(parent->children.begin() + static_cast<std::ptrdiff_t>(left_slot) + 1);
    }

    static std::size_t child_index(const BTreeIndex::Node* n, const Value& key, RowId rid) {
      std::size_t lo = 0, hi = n->keys.size();
      while (lo < hi) {
        std::size_t mid = (lo + hi) / 2;
        if (cmp(n->keys[mid].key, n->keys[mid].rid, key, rid) <= 0) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      return lo;
    }
  };

  Helper h{order_};
  if (!h.erase(root_.get(), key, rid)) return false;
  --size_;
  // Collapse root if it has a single child.
  while (!root_->leaf && root_->children.size() == 1) {
    root_ = std::move(root_->children.front());
  }
  return true;
}

std::vector<RowId> BTreeIndex::find(const Value& key) const {
  std::vector<RowId> out;
  scan_range(&key, &key, [&](const Value&, RowId rid) {
    out.push_back(rid);
    return true;
  });
  return out;
}

bool BTreeIndex::contains(const Value& key) const {
  bool found = false;
  scan_range(&key, &key, [&](const Value&, RowId) {
    found = true;
    return false;
  });
  return found;
}

void BTreeIndex::scan_range(const Value* lo, const Value* hi,
                            const std::function<bool(const Value&, RowId)>& visit) const {
  // Descend to the first leaf that can contain `lo` (or leftmost leaf).
  const Node* n = root_.get();
  while (!n->leaf) {
    std::size_t slot = 0;
    if (lo != nullptr) {
      std::size_t l = 0, h = n->keys.size();
      while (l < h) {
        std::size_t mid = (l + h) / 2;
        // Separator < lo (by key only; ties descend left to catch dup keys).
        if (n->keys[mid].key.compare(*lo) < 0) {
          l = mid + 1;
        } else {
          h = mid;
        }
      }
      slot = l;
    }
    n = n->children[slot].get();
  }
  for (; n != nullptr; n = n->next) {
    for (const Entry& e : n->entries) {
      if (lo != nullptr && e.key.compare(*lo) < 0) continue;
      if (hi != nullptr && e.key.compare(*hi) > 0) return;
      if (!visit(e.key, e.rid)) return;
    }
  }
}

void BTreeIndex::scan_all(const std::function<bool(const Value&, RowId)>& visit) const {
  scan_range(nullptr, nullptr, visit);
}

std::size_t BTreeIndex::height() const {
  std::size_t h = 1;
  const Node* n = root_.get();
  while (!n->leaf) {
    n = n->children.front().get();
    ++h;
  }
  return h;
}

void BTreeIndex::clear() {
  root_ = std::make_unique<Node>();
  size_ = 0;
}

std::string BTreeIndex::validate() const {
  struct Checker {
    std::size_t order;
    std::string error;
    std::size_t leaf_depth = 0;
    std::size_t counted = 0;
    const Entry* prev = nullptr;

    void check(const Node* n, std::size_t depth, bool is_root,
               const Entry* lo, const Entry* hi) {
      if (!error.empty()) return;
      if (n->leaf) {
        if (leaf_depth == 0) {
          leaf_depth = depth;
        } else if (leaf_depth != depth) {
          error = "leaves at different depths";
          return;
        }
        if (!is_root && n->entries.size() < order / 2) {
          error = "leaf underfull";
          return;
        }
        if (n->entries.size() > order) {
          error = "leaf overfull";
          return;
        }
        for (const Entry& e : n->entries) {
          if (prev != nullptr && cmp(prev->key, prev->rid, e.key, e.rid) >= 0) {
            error = "entries out of order";
            return;
          }
          if (lo != nullptr && cmp(e.key, e.rid, lo->key, lo->rid) < 0) {
            error = "entry below subtree lower bound";
            return;
          }
          if (hi != nullptr && cmp(e.key, e.rid, hi->key, hi->rid) >= 0) {
            error = "entry above subtree upper bound";
            return;
          }
          prev = &e;
          ++counted;
        }
        return;
      }
      if (n->children.size() != n->keys.size() + 1) {
        error = "children/keys arity mismatch";
        return;
      }
      if (!is_root && n->children.size() < order / 2) {
        error = "internal underfull";
        return;
      }
      if (n->children.size() > order) {
        error = "internal overfull";
        return;
      }
      for (std::size_t i = 0; i < n->children.size(); ++i) {
        const Entry* sub_lo = i == 0 ? lo : &n->keys[i - 1];
        const Entry* sub_hi = i == n->keys.size() ? hi : &n->keys[i];
        check(n->children[i].get(), depth + 1, false, sub_lo, sub_hi);
        if (!error.empty()) return;
      }
    }
  };

  Checker c{order_, {}, 0, 0, nullptr};
  c.check(root_.get(), 1, true, nullptr, nullptr);
  if (!c.error.empty()) return c.error;
  if (c.counted != size_) return "size mismatch";
  return {};
}

}  // namespace wdoc::storage

#include "storage/query.hpp"

#include <algorithm>

namespace wdoc::storage {

const char* cmp_op_name(CmpOp op) {
  switch (op) {
    case CmpOp::eq: return "=";
    case CmpOp::ne: return "!=";
    case CmpOp::lt: return "<";
    case CmpOp::le: return "<=";
    case CmpOp::gt: return ">";
    case CmpOp::ge: return ">=";
    case CmpOp::contains: return "contains";
    case CmpOp::is_null: return "is null";
    case CmpOp::not_null: return "is not null";
  }
  return "?";
}

bool eval_cmp(CmpOp op, const Value& cell, const Value& probe) {
  if (op == CmpOp::is_null) return cell.is_null();
  if (op == CmpOp::not_null) return !cell.is_null();
  if (cell.is_null()) return false;  // SQL-like: NULL matches nothing
  switch (op) {
    case CmpOp::eq: return cell == probe;
    case CmpOp::ne: return cell != probe;
    case CmpOp::lt: return cell < probe;
    case CmpOp::le: return cell <= probe;
    case CmpOp::gt: return cell > probe;
    case CmpOp::ge: return cell >= probe;
    case CmpOp::contains:
      if (cell.type() != ValueType::text || probe.type() != ValueType::text) return false;
      return cell.as_text().find(probe.as_text()) != std::string::npos;
    case CmpOp::is_null:
    case CmpOp::not_null:
      break;  // handled above
  }
  return false;
}

Query& Query::where(std::string column, CmpOp op, Value v) {
  predicates_.push_back(Predicate{std::move(column), op, std::move(v)});
  return *this;
}

Query& Query::order_by(std::string column, bool ascending) {
  order_column_ = std::move(column);
  ascending_ = ascending;
  return *this;
}

Query& Query::limit(std::size_t n) {
  limit_ = n;
  return *this;
}

Query& Query::select(std::vector<std::string> columns) {
  projection_ = std::move(columns);
  return *this;
}

const Query::Predicate* Query::choose_driver() const {
  // Prefer an indexed equality, then an indexed range.
  for (const Predicate& p : predicates_) {
    if (p.op == CmpOp::eq && table_->has_index(p.column)) return &p;
  }
  for (const Predicate& p : predicates_) {
    if ((p.op == CmpOp::lt || p.op == CmpOp::le || p.op == CmpOp::gt ||
         p.op == CmpOp::ge) &&
        table_->has_index(p.column)) {
      return &p;
    }
  }
  return nullptr;
}

QueryPlan Query::explain() const {
  QueryPlan plan;
  const Predicate* driver = choose_driver();
  if (driver != nullptr) {
    plan.index_driven = true;
    plan.driver_column = driver->column;
    plan.driver_op = driver->op;
  }
  plan.residual_predicates = predicates_.size() - (driver != nullptr ? 1 : 0);
  plan.sorted_output = order_column_.has_value();
  return plan;
}

std::string QueryPlan::to_string() const {
  std::string out = index_driven
                        ? ("index scan on " + driver_column + " (" +
                           cmp_op_name(driver_op) + ")")
                        : "full scan";
  if (residual_predicates > 0) {
    out += ", filter x" + std::to_string(residual_predicates);
  }
  if (sorted_output) out += ", sort";
  return out;
}

Status Query::for_each(
    const std::function<bool(RowId, const std::vector<Value>&)>& visit) const {
  const Schema& schema = table_->schema();
  for (const Predicate& p : predicates_) {
    if (!schema.column_index(p.column)) {
      return {Errc::invalid_argument, "no column: " + p.column};
    }
  }
  const Predicate* driver = choose_driver();

  auto passes_all = [&](RowId, const std::vector<Value>& row) {
    for (const Predicate& p : predicates_) {
      std::size_t ci = *schema.column_index(p.column);
      if (!eval_cmp(p.op, row[ci], p.probe)) return false;
    }
    return true;
  };

  auto guarded_visit = [&](RowId id, const std::vector<Value>& row) {
    if (!passes_all(id, row)) return true;
    return visit(id, row);
  };

  if (driver != nullptr) {
    const Value* lo = nullptr;
    const Value* hi = nullptr;
    switch (driver->op) {
      case CmpOp::eq:
        lo = hi = &driver->probe;
        break;
      case CmpOp::lt:
      case CmpOp::le:
        hi = &driver->probe;
        break;
      case CmpOp::gt:
      case CmpOp::ge:
        lo = &driver->probe;
        break;
      default:
        break;
    }
    table_->scan_range(driver->column, lo, hi, guarded_visit);
  } else {
    table_->scan(guarded_visit);
  }
  return Status::ok();
}

Result<std::vector<QueryRow>> Query::run() const {
  const Schema& schema = table_->schema();
  std::vector<std::size_t> proj;
  for (const std::string& c : projection_) {
    auto ci = schema.column_index(c);
    if (!ci) return Error{Errc::invalid_argument, "no column: " + c};
    proj.push_back(*ci);
  }
  std::optional<std::size_t> order_ci;
  if (order_column_) {
    auto ci = schema.column_index(*order_column_);
    if (!ci) return Error{Errc::invalid_argument, "no column: " + *order_column_};
    order_ci = *ci;
  }

  struct Hit {
    RowId id;
    std::vector<Value> full;
  };
  std::vector<Hit> hits;
  const bool can_stop_early = !order_ci.has_value();
  WDOC_TRY(for_each([&](RowId id, const std::vector<Value>& row) {
    hits.push_back(Hit{id, row});
    return !(can_stop_early && limit_ && hits.size() >= *limit_);
  }));

  if (order_ci) {
    std::stable_sort(hits.begin(), hits.end(), [&](const Hit& a, const Hit& b) {
      int c = a.full[*order_ci].compare(b.full[*order_ci]);
      return ascending_ ? c < 0 : c > 0;
    });
  }
  if (limit_ && hits.size() > *limit_) hits.resize(*limit_);

  std::vector<QueryRow> out;
  out.reserve(hits.size());
  for (Hit& h : hits) {
    QueryRow qr;
    qr.id = h.id;
    if (proj.empty()) {
      qr.values = std::move(h.full);
    } else {
      qr.values.reserve(proj.size());
      for (std::size_t ci : proj) qr.values.push_back(h.full[ci]);
    }
    out.push_back(std::move(qr));
  }
  return out;
}

Result<std::size_t> Query::count() const {
  std::size_t n = 0;
  WDOC_TRY(for_each([&](RowId, const std::vector<Value>&) {
    ++n;
    return true;
  }));
  return n;
}

Result<std::optional<QueryRow>> Query::first() const {
  Query q = *this;
  q.limit(1);
  auto rows = q.run();
  if (!rows) return rows.error();
  if (rows.value().empty()) return std::optional<QueryRow>{};
  return std::optional<QueryRow>{std::move(rows.value().front())};
}

}  // namespace wdoc::storage

// Catalog: the named-table namespace plus cross-table (foreign key)
// integrity. All mutations of tables that participate in FK relationships
// must go through the catalog so referential actions fire.
//
// This is the stand-in for the paper's "off-the-rack relational database"
// (MS SQL Server behind ODBC) — see DESIGN.md §0.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/table.hpp"

namespace wdoc::storage {

enum class MutationKind : std::uint8_t { insert = 0, update = 1, erase = 2 };

// A physical row mutation, as applied (cascaded deletes and set-null updates
// fire one Mutation each). Consumed by the WAL and by transaction undo.
struct Mutation {
  MutationKind kind;
  std::string table;
  RowId row;
  std::vector<Value> before;  // update/erase
  std::vector<Value> after;   // insert/update
};

class MutationSink {
 public:
  virtual ~MutationSink() = default;
  virtual void on_mutation(const Mutation& m) = 0;
};

class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  [[nodiscard]] Status create_table(Schema schema);
  [[nodiscard]] Status drop_table(const std::string& name);

  [[nodiscard]] Table* table(const std::string& name);
  [[nodiscard]] const Table* table(const std::string& name) const;
  [[nodiscard]] bool has_table(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> table_names() const;

  // FK-checked mutations. `sink` (or the default sink if null) observes
  // every physical row change, including cascade side effects.
  [[nodiscard]] Result<RowId> insert(const std::string& table, std::vector<Value> row,
                                     MutationSink* sink = nullptr);
  [[nodiscard]] Status update(const std::string& table, RowId id, std::vector<Value> row,
                              MutationSink* sink = nullptr);
  [[nodiscard]] Status update_column(const std::string& table, RowId id,
                                     std::string_view column, Value v,
                                     MutationSink* sink = nullptr);
  // Applies the referencing tables' on_delete actions (restrict / cascade /
  // set_null) transitively.
  [[nodiscard]] Status erase(const std::string& table, RowId id,
                             MutationSink* sink = nullptr);

  // Observer used when a call does not pass its own sink (e.g. WAL logging).
  void set_default_sink(MutationSink* sink) { default_sink_ = sink; }

  [[nodiscard]] std::size_t total_rows() const;
  [[nodiscard]] std::size_t total_payload_bytes() const;

 private:
  struct IncomingRef {
    std::string child_table;
    std::string child_column;
    std::string parent_column;
    RefAction on_delete;
  };

  [[nodiscard]] Status check_outgoing_fks(const Table& t, const std::vector<Value>& row) const;
  [[nodiscard]] Status check_not_referenced_changed(const Table& t, RowId id,
                                                    const std::vector<Value>& next) const;
  [[nodiscard]] const std::vector<IncomingRef>* incoming(const std::string& parent) const;
  void notify(MutationSink* sink, Mutation m) const;

  MutationSink* default_sink_ = nullptr;
  std::map<std::string, std::unique_ptr<Table>> tables_;
  // parent table name -> referencing edges
  std::map<std::string, std::vector<IncomingRef>> incoming_;
};

}  // namespace wdoc::storage

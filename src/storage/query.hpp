// Fluent read-query layer over a Table: conjunctive predicates, ordering,
// projection and limits. Picks an index for the most selective applicable
// predicate and filters the rest row-at-a-time.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "storage/table.hpp"

namespace wdoc::storage {

enum class CmpOp : std::uint8_t {
  eq,
  ne,
  lt,
  le,
  gt,
  ge,
  contains,  // text substring
  is_null,   // probe ignored
  not_null,  // probe ignored
};

[[nodiscard]] const char* cmp_op_name(CmpOp op);
[[nodiscard]] bool eval_cmp(CmpOp op, const Value& cell, const Value& probe);

struct QueryRow {
  RowId id;
  std::vector<Value> values;  // projected columns, or all columns
};

// How a query would execute (Query::explain).
struct QueryPlan {
  bool index_driven = false;
  std::string driver_column;  // empty on full scan
  CmpOp driver_op = CmpOp::eq;
  std::size_t residual_predicates = 0;  // filtered row-at-a-time
  bool sorted_output = false;           // ORDER BY present (post-sort)

  [[nodiscard]] std::string to_string() const;
};

class Query {
 public:
  explicit Query(const Table& table) : table_(&table) {}

  Query& where(std::string column, CmpOp op, Value v);
  Query& where_eq(std::string column, Value v) {
    return where(std::move(column), CmpOp::eq, std::move(v));
  }
  Query& order_by(std::string column, bool ascending = true);
  Query& limit(std::size_t n);
  Query& select(std::vector<std::string> columns);

  // Executes and materializes matching rows.
  [[nodiscard]] Result<std::vector<QueryRow>> run() const;
  [[nodiscard]] Result<std::size_t> count() const;
  [[nodiscard]] Result<std::optional<QueryRow>> first() const;

  // The access path this query would take, without executing it.
  [[nodiscard]] QueryPlan explain() const;

 private:
  struct Predicate {
    std::string column;
    CmpOp op;
    Value probe;
  };

  [[nodiscard]] const Predicate* choose_driver() const;
  [[nodiscard]] Status for_each(
      const std::function<bool(RowId, const std::vector<Value>&)>& visit) const;

  const Table* table_;
  std::vector<Predicate> predicates_;
  std::optional<std::string> order_column_;
  bool ascending_ = true;
  std::optional<std::size_t> limit_;
  std::vector<std::string> projection_;
};

}  // namespace wdoc::storage

#include "storage/table.hpp"

#include <algorithm>

namespace wdoc::storage {

namespace {

std::size_t row_bytes(const std::vector<Value>& row) {
  std::size_t n = 0;
  for (const Value& v : row) n += v.byte_size();
  return n;
}

}  // namespace

Table::Table(Schema schema) : schema_(std::move(schema)) {
  for (std::size_t i = 0; i < schema_.column_count(); ++i) {
    const Column& col = schema_.column(i);
    if (col.unique || col.indexed) {
      ColumnIndex ci;
      ci.column = i;
      ci.btree = std::make_unique<BTreeIndex>();
      indexes_.push_back(std::move(ci));
    }
  }
}

Result<RowId> Table::insert(std::vector<Value> row) {
  WDOC_TRY(schema_.validate_row(row));
  WDOC_TRY(check_unique(row, std::nullopt));
  RowId id = ids_.next();
  index_row(id, row);
  payload_bytes_ += row_bytes(row);
  rows_.emplace(id, std::move(row));
  ++live_rows_;
  return id;
}

Status Table::restore(RowId id, std::vector<Value> row) {
  WDOC_TRY(schema_.validate_row(row));
  if (rows_.contains(id)) {
    return {Errc::already_exists, name() + ": restore over live row"};
  }
  WDOC_TRY(check_unique(row, std::nullopt));
  ids_.reserve_through(id.value());
  index_row(id, row);
  payload_bytes_ += row_bytes(row);
  rows_.emplace(id, std::move(row));
  ++live_rows_;
  return Status::ok();
}

const std::vector<Value>* Table::get(RowId id) const {
  auto it = rows_.find(id);
  return it == rows_.end() ? nullptr : &it->second;
}

Status Table::update(RowId id, std::vector<Value> row) {
  auto it = rows_.find(id);
  if (it == rows_.end()) return {Errc::not_found, name() + ": no such row"};
  WDOC_TRY(schema_.validate_row(row));
  WDOC_TRY(check_unique(row, id));
  unindex_row(id, it->second);
  payload_bytes_ -= row_bytes(it->second);
  payload_bytes_ += row_bytes(row);
  it->second = std::move(row);
  index_row(id, it->second);
  return Status::ok();
}

Status Table::update_column(RowId id, std::string_view column, Value v) {
  auto it = rows_.find(id);
  if (it == rows_.end()) return {Errc::not_found, name() + ": no such row"};
  auto ci = schema_.column_index(column);
  if (!ci) return {Errc::invalid_argument, name() + ": no column " + std::string(column)};
  std::vector<Value> row = it->second;
  row[*ci] = std::move(v);
  return update(id, std::move(row));
}

Status Table::erase(RowId id) {
  auto it = rows_.find(id);
  if (it == rows_.end()) return {Errc::not_found, name() + ": no such row"};
  unindex_row(id, it->second);
  payload_bytes_ -= row_bytes(it->second);
  rows_.erase(it);
  --live_rows_;
  return Status::ok();
}

std::vector<RowId> Table::find_equal(std::string_view column, const Value& v) const {
  auto ci = schema_.column_index(column);
  WDOC_CHECK(ci.has_value(), name() + ": no column " + std::string(column));
  for (const ColumnIndex& idx : indexes_) {
    if (idx.column == *ci) {
      if (idx.btree) return idx.btree->find(v);
      if (idx.hash) return idx.hash->find(v);
    }
  }
  std::vector<RowId> out;
  for (const auto& [id, row] : rows_) {
    if (row[*ci] == v) out.push_back(id);
  }
  return out;
}

std::optional<RowId> Table::find_unique(std::string_view column, const Value& v) const {
  auto matches = find_equal(column, v);
  if (matches.empty()) return std::nullopt;
  return matches.front();
}

void Table::scan_range(std::string_view column, const Value* lo, const Value* hi,
                       const std::function<bool(RowId, const std::vector<Value>&)>& visit) const {
  auto ci = schema_.column_index(column);
  WDOC_CHECK(ci.has_value(), name() + ": no column " + std::string(column));
  for (const ColumnIndex& idx : indexes_) {
    if (idx.column == *ci && idx.btree) {
      idx.btree->scan_range(lo, hi, [&](const Value&, RowId rid) {
        const auto* row = get(rid);
        WDOC_CHECK(row != nullptr, "index points at dead row");
        return visit(rid, *row);
      });
      return;
    }
  }
  // Unindexed fallback: materialize matching (value, id) pairs and sort.
  std::vector<std::pair<Value, RowId>> matched;
  for (const auto& [id, row] : rows_) {
    const Value& v = row[*ci];
    if (lo != nullptr && v < *lo) continue;
    if (hi != nullptr && v > *hi) continue;
    matched.emplace_back(v, id);
  }
  std::sort(matched.begin(), matched.end(), [](const auto& a, const auto& b) {
    int c = a.first.compare(b.first);
    if (c != 0) return c < 0;
    return a.second < b.second;
  });
  for (const auto& [v, id] : matched) {
    if (!visit(id, *get(id))) return;
  }
}

void Table::scan(const std::function<bool(RowId, const std::vector<Value>&)>& visit) const {
  for (const auto& [id, row] : rows_) {
    if (!visit(id, row)) return;
  }
}

bool Table::has_index(std::string_view column) const {
  auto ci = schema_.column_index(column);
  if (!ci) return false;
  return std::any_of(indexes_.begin(), indexes_.end(),
                     [&](const ColumnIndex& idx) { return idx.column == *ci; });
}

Status Table::create_index(std::string_view column) {
  auto ci = schema_.column_index(column);
  if (!ci) return {Errc::invalid_argument, name() + ": no column " + std::string(column)};
  if (has_index(column)) return {Errc::already_exists, name() + ": index exists"};
  ColumnIndex idx;
  idx.column = *ci;
  idx.btree = std::make_unique<BTreeIndex>();
  for (const auto& [id, row] : rows_) {
    idx.btree->insert(row[*ci], id);
  }
  indexes_.push_back(std::move(idx));
  return Status::ok();
}

Value Table::cell(RowId id, std::string_view column) const {
  const auto* row = get(id);
  WDOC_CHECK(row != nullptr, name() + ": cell() on dead row");
  auto ci = schema_.column_index(column);
  WDOC_CHECK(ci.has_value(), name() + ": no column " + std::string(column));
  return (*row)[*ci];
}

void Table::index_row(RowId id, const std::vector<Value>& row) {
  for (ColumnIndex& idx : indexes_) {
    const Value& v = row[idx.column];
    if (v.is_null()) continue;  // NULLs are not indexed (and never unique-conflict)
    if (idx.btree) idx.btree->insert(v, id);
    if (idx.hash) idx.hash->insert(v, id);
  }
}

void Table::unindex_row(RowId id, const std::vector<Value>& row) {
  for (ColumnIndex& idx : indexes_) {
    const Value& v = row[idx.column];
    if (v.is_null()) continue;
    if (idx.btree) idx.btree->erase(v, id);
    if (idx.hash) idx.hash->erase(v, id);
  }
}

Status Table::check_unique(const std::vector<Value>& row,
                           std::optional<RowId> ignore) const {
  for (std::size_t i = 0; i < schema_.column_count(); ++i) {
    const Column& col = schema_.column(i);
    if (!col.unique || row[i].is_null()) continue;
    for (RowId match : find_equal(col.name, row[i])) {
      if (!ignore || match != *ignore) {
        return {Errc::constraint_violation,
                name() + "." + col.name + ": duplicate value " + row[i].to_string()};
      }
    }
  }
  return Status::ok();
}

}  // namespace wdoc::storage

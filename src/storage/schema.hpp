// Table schemas: typed columns, primary key, uniqueness and foreign keys.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/serialize.hpp"
#include "storage/value.hpp"

namespace wdoc::storage {

struct Column {
  std::string name;
  ValueType type = ValueType::text;
  bool nullable = true;
  bool unique = false;   // enforced via an automatically created unique index
  bool indexed = false;  // non-unique secondary index requested at creation
};

enum class RefAction : std::uint8_t {
  restrict = 0,  // reject delete/update of a referenced parent row
  cascade = 1,   // delete referencing rows alongside the parent
  set_null = 2,  // null out the referencing column
};

[[nodiscard]] const char* ref_action_name(RefAction a);

struct ForeignKey {
  std::string column;        // column in this table
  std::string parent_table;  // referenced table name
  std::string parent_column; // referenced column (must be unique/PK there)
  RefAction on_delete = RefAction::restrict;
};

class Schema {
 public:
  Schema() = default;
  Schema(std::string table_name, std::vector<Column> columns,
         std::string primary_key = {}, std::vector<ForeignKey> foreign_keys = {});

  [[nodiscard]] const std::string& table_name() const { return table_name_; }
  [[nodiscard]] const std::vector<Column>& columns() const { return columns_; }
  [[nodiscard]] const std::vector<ForeignKey>& foreign_keys() const { return foreign_keys_; }
  [[nodiscard]] const std::string& primary_key() const { return primary_key_; }

  [[nodiscard]] std::optional<std::size_t> column_index(std::string_view name) const;
  [[nodiscard]] const Column& column(std::size_t i) const { return columns_[i]; }
  [[nodiscard]] std::size_t column_count() const { return columns_.size(); }

  // Validates that a row conforms: arity, types (NULL allowed only when
  // nullable). Returns a descriptive error otherwise.
  [[nodiscard]] Status validate_row(const std::vector<Value>& row) const;

  void serialize(Writer& w) const;
  [[nodiscard]] static Result<Schema> deserialize(Reader& r);

 private:
  std::string table_name_;
  std::vector<Column> columns_;
  std::string primary_key_;  // empty if none
  std::vector<ForeignKey> foreign_keys_;
};

}  // namespace wdoc::storage

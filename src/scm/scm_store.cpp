#include "scm/scm_store.hpp"

#include <algorithm>
#include <set>
#include <string_view>

namespace wdoc::scm {

namespace {

bool looks_text(const Bytes& b) {
  std::size_t checked = std::min<std::size_t>(b.size(), 4096);
  for (std::size_t i = 0; i < checked; ++i) {
    if (b[i] == 0) return false;
  }
  return true;
}

std::vector<std::string_view> split_lines(std::string_view s) {
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t nl = s.find('\n', start);
    if (nl == std::string_view::npos) {
      if (start < s.size()) lines.push_back(s.substr(start));
      break;
    }
    lines.push_back(s.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

}  // namespace

DiffSummary diff_lines(std::string_view a, std::string_view b) {
  DiffSummary out;
  if (a == b) {
    out.identical = true;
    auto lines = split_lines(a);
    out.lines_common = lines.size();
    return out;
  }
  auto la = split_lines(a);
  auto lb = split_lines(b);
  // Guard the O(n*m) LCS; beyond the guard fall back to hashes-of-lines
  // multiset intersection (order-insensitive approximation).
  constexpr std::size_t kLcsGuard = 4000;
  if (la.size() <= kLcsGuard && lb.size() <= kLcsGuard) {
    std::vector<std::uint32_t> prev(lb.size() + 1, 0), cur(lb.size() + 1, 0);
    for (std::size_t i = 1; i <= la.size(); ++i) {
      for (std::size_t j = 1; j <= lb.size(); ++j) {
        if (la[i - 1] == lb[j - 1]) {
          cur[j] = prev[j - 1] + 1;
        } else {
          cur[j] = std::max(prev[j], cur[j - 1]);
        }
      }
      std::swap(prev, cur);
    }
    out.lines_common = prev[lb.size()];
  } else {
    std::multiset<std::uint64_t> ha;
    for (auto l : la) ha.insert(fnv1a64(l));
    std::size_t common = 0;
    for (auto l : lb) {
      auto it = ha.find(fnv1a64(l));
      if (it != ha.end()) {
        ha.erase(it);
        ++common;
      }
    }
    out.lines_common = common;
  }
  out.lines_removed = la.size() - out.lines_common;
  out.lines_added = lb.size() - out.lines_common;
  return out;
}

Status ScmStore::add_item(const std::string& key, Bytes initial_content,
                          const std::string& author, std::int64_t now,
                          const std::string& comment) {
  if (items_.contains(key)) return {Errc::already_exists, "item exists: " + key};
  Item item;
  VersionMeta meta;
  meta.id = version_ids_.next();
  meta.number = 1;
  meta.author = author;
  meta.created_at = now;
  meta.comment = comment;
  meta.digest = digest128(std::span<const std::uint8_t>(initial_content));
  meta.size = initial_content.size();
  item.versions.push_back(std::move(meta));
  item.contents.push_back(std::move(initial_content));
  items_.emplace(key, std::move(item));
  return Status::ok();
}

std::vector<std::string> ScmStore::list_items() const {
  std::vector<std::string> out;
  out.reserve(items_.size());
  for (const auto& [key, _] : items_) out.push_back(key);
  return out;
}

const ScmStore::Item* ScmStore::find(const std::string& key) const {
  auto it = items_.find(key);
  return it == items_.end() ? nullptr : &it->second;
}

ScmStore::Item* ScmStore::find(const std::string& key) {
  auto it = items_.find(key);
  return it == items_.end() ? nullptr : &it->second;
}

Result<Bytes> ScmStore::content(const std::string& key,
                                std::optional<std::uint64_t> version) const {
  const Item* item = find(key);
  if (item == nullptr) return Error{Errc::not_found, "no item: " + key};
  if (!version) return item->contents.back();
  if (*version == 0 || *version > item->versions.size()) {
    return Error{Errc::not_found, key + ": no version " + std::to_string(*version)};
  }
  return item->contents[*version - 1];
}

Result<VersionMeta> ScmStore::head(const std::string& key) const {
  const Item* item = find(key);
  if (item == nullptr) return Error{Errc::not_found, "no item: " + key};
  return item->versions.back();
}

Result<std::vector<VersionMeta>> ScmStore::history(const std::string& key) const {
  const Item* item = find(key);
  if (item == nullptr) return Error{Errc::not_found, "no item: " + key};
  return item->versions;
}

Status ScmStore::check_out(const std::string& key, UserId user, bool write,
                           std::int64_t now) {
  Item* item = find(key);
  if (item == nullptr) return {Errc::not_found, "no item: " + key};
  for (const CheckoutInfo& c : item->active_checkouts) {
    if (c.user == user) {
      return {Errc::already_exists, "user already holds a check-out on " + key};
    }
    if (write && c.write) {
      return {Errc::lock_conflict,
              key + " checked out for writing by user " + std::to_string(c.user.value())};
    }
  }
  if (write) {
    // A write check-out also conflicts with an existing write holder (checked
    // above); readers may coexist with a writer (they hold the old version).
    for (const CheckoutInfo& c : item->active_checkouts) {
      if (c.write) {
        return {Errc::lock_conflict, key + " already write-locked"};
      }
    }
  }
  item->active_checkouts.push_back(CheckoutInfo{user, write, now});
  ++user_checkout_counts_[user.value()];
  return Status::ok();
}

Result<VersionMeta> ScmStore::check_in(const std::string& key, UserId user,
                                       Bytes new_content, const std::string& comment,
                                       std::int64_t now) {
  Item* item = find(key);
  if (item == nullptr) return Error{Errc::not_found, "no item: " + key};
  auto holder = std::find_if(item->active_checkouts.begin(), item->active_checkouts.end(),
                             [&](const CheckoutInfo& c) { return c.user == user && c.write; });
  if (holder == item->active_checkouts.end()) {
    return Error{Errc::lock_conflict,
                 "check-in requires a write check-out on " + key};
  }
  Digest128 digest = digest128(std::span<const std::uint8_t>(new_content));
  if (digest == item->versions.back().digest) {
    return Error{Errc::conflict, "nothing to check in (content unchanged)"};
  }
  VersionMeta meta;
  meta.id = version_ids_.next();
  meta.number = item->versions.back().number + 1;
  meta.author = "user-" + std::to_string(user.value());
  meta.created_at = now;
  meta.comment = comment;
  meta.digest = digest;
  meta.size = new_content.size();
  item->versions.push_back(meta);
  item->contents.push_back(std::move(new_content));
  item->active_checkouts.erase(holder);
  return meta;
}

Status ScmStore::cancel_checkout(const std::string& key, UserId user) {
  Item* item = find(key);
  if (item == nullptr) return {Errc::not_found, "no item: " + key};
  auto it = std::find_if(item->active_checkouts.begin(), item->active_checkouts.end(),
                         [&](const CheckoutInfo& c) { return c.user == user; });
  if (it == item->active_checkouts.end()) {
    return {Errc::not_found, "no check-out by user on " + key};
  }
  item->active_checkouts.erase(it);
  return Status::ok();
}

std::optional<UserId> ScmStore::write_holder(const std::string& key) const {
  const Item* item = find(key);
  if (item == nullptr) return std::nullopt;
  for (const CheckoutInfo& c : item->active_checkouts) {
    if (c.write) return c.user;
  }
  return std::nullopt;
}

std::vector<CheckoutInfo> ScmStore::checkouts(const std::string& key) const {
  const Item* item = find(key);
  return item == nullptr ? std::vector<CheckoutInfo>{} : item->active_checkouts;
}

std::uint64_t ScmStore::checkout_count(UserId user) const {
  auto it = user_checkout_counts_.find(user.value());
  return it == user_checkout_counts_.end() ? 0 : it->second;
}

Result<DiffSummary> ScmStore::diff(const std::string& key, std::uint64_t v1,
                                   std::uint64_t v2) const {
  const Item* item = find(key);
  if (item == nullptr) return Error{Errc::not_found, "no item: " + key};
  auto get = [&](std::uint64_t v) -> const Bytes* {
    if (v == 0 || v > item->contents.size()) return nullptr;
    return &item->contents[v - 1];
  };
  const Bytes* a = get(v1);
  const Bytes* b = get(v2);
  if (a == nullptr || b == nullptr) return Error{Errc::not_found, "no such version"};
  if (!looks_text(*a) || !looks_text(*b)) {
    DiffSummary out;
    out.binary = true;
    out.identical = item->versions[v1 - 1].digest == item->versions[v2 - 1].digest;
    return out;
  }
  return diff_lines(
      std::string_view(reinterpret_cast<const char*>(a->data()), a->size()),
      std::string_view(reinterpret_cast<const char*>(b->data()), b->size()));
}

}  // namespace wdoc::scm

// Software-configuration management of SCIs (paper §1: "A software
// configuration management system allows checking in/out of course
// components and maintain versions of a course").
//
// Each item is an append-only version chain. Write check-outs are exclusive
// per item; read check-outs are unlimited and tracked (the virtual library
// uses them as an assessment signal). Check-in requires holding the write
// check-out and bumps the version.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/serialize.hpp"

namespace wdoc::scm {

struct VersionMeta {
  VersionId id;
  std::uint64_t number = 0;  // 1-based, monotonically increasing per item
  std::string author;
  std::int64_t created_at = 0;
  std::string comment;
  Digest128 digest;
  std::uint64_t size = 0;
};

struct DiffSummary {
  std::uint64_t lines_added = 0;
  std::uint64_t lines_removed = 0;
  std::uint64_t lines_common = 0;
  bool identical = false;
  bool binary = false;  // non-text content compared by digest only
};

struct CheckoutInfo {
  UserId user;
  bool write = false;
  std::int64_t at = 0;
};

class ScmStore {
 public:
  // --- items & versions -----------------------------------------------
  [[nodiscard]] Status add_item(const std::string& key, Bytes initial_content,
                                const std::string& author, std::int64_t now,
                                const std::string& comment = "initial");
  [[nodiscard]] bool has_item(const std::string& key) const { return items_.contains(key); }
  [[nodiscard]] std::vector<std::string> list_items() const;

  [[nodiscard]] Result<Bytes> content(const std::string& key,
                                      std::optional<std::uint64_t> version = {}) const;
  [[nodiscard]] Result<VersionMeta> head(const std::string& key) const;
  [[nodiscard]] Result<std::vector<VersionMeta>> history(const std::string& key) const;

  // --- check-out / check-in ---------------------------------------------
  // Read check-outs always succeed and are counted. Write check-outs are
  // exclusive: a second write check-out fails with lock_conflict.
  [[nodiscard]] Status check_out(const std::string& key, UserId user, bool write,
                                 std::int64_t now);
  // Requires `user` to hold the write check-out. Identical content is
  // rejected with Errc::conflict ("nothing to check in").
  [[nodiscard]] Result<VersionMeta> check_in(const std::string& key, UserId user,
                                             Bytes new_content, const std::string& comment,
                                             std::int64_t now);
  // Releases a check-out (read or write).
  [[nodiscard]] Status cancel_checkout(const std::string& key, UserId user);

  [[nodiscard]] std::optional<UserId> write_holder(const std::string& key) const;
  [[nodiscard]] std::vector<CheckoutInfo> checkouts(const std::string& key) const;
  // All check-outs ever made by `user` (for the assessment report).
  [[nodiscard]] std::uint64_t checkout_count(UserId user) const;

  // --- diff --------------------------------------------------------------
  // Line diff for text content (LCS-based); digest comparison for binary or
  // oversized payloads.
  [[nodiscard]] Result<DiffSummary> diff(const std::string& key, std::uint64_t v1,
                                         std::uint64_t v2) const;

 private:
  struct Item {
    std::vector<VersionMeta> versions;
    std::vector<Bytes> contents;  // parallel to versions
    std::vector<CheckoutInfo> active_checkouts;
  };

  [[nodiscard]] const Item* find(const std::string& key) const;
  [[nodiscard]] Item* find(const std::string& key);

  std::map<std::string, Item> items_;
  std::map<std::uint64_t, std::uint64_t> user_checkout_counts_;  // by user id value
  IdAllocator<VersionId> version_ids_;
};

// Line-diff helper, exposed for tests. Inputs are whole text bodies.
[[nodiscard]] DiffSummary diff_lines(std::string_view a, std::string_view b);

}  // namespace wdoc::scm

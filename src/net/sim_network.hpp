// Deterministic discrete-event network simulator.
//
// Each station owns an uplink and a downlink with finite bandwidth; a
// message first serializes on the sender's uplink (FIFO behind earlier
// sends), propagates with the pair's latency, then serializes on the
// receiver's downlink. This makes the economics of the paper's m-ary
// distribution tree visible: a star broadcast serializes N copies through
// one uplink, the tree spreads them across many.
//
// Scale: stations live in a dense vector indexed by id (delivery is one
// array lookup, never a map walk), the event queue is an explicit binary
// heap whose pops move events out instead of copying, and message delivery
// is a first-class event kind — no per-message std::function allocation —
// so N=10,000-station runs with millions of in-flight events stay
// O(log n) per event with tight constants.
//
// Determinism: same seed + same call sequence -> identical delivery order;
// ties in time break by event sequence number (a strict total order, so
// heap order is reproducible bit-for-bit across runs and platforms).
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "net/fabric.hpp"
#include "obs/metrics.hpp"

namespace wdoc::net {

struct StationLink {
  double up_bps = 10e6;    // uplink bandwidth, bits/second
  double down_bps = 10e6;  // downlink bandwidth, bits/second
  SimTime latency = SimTime::millis(20);  // one-way to the "Internet core"
  double loss_rate = 0.0;  // per-message drop probability
  SimTime jitter_max = SimTime::zero();  // uniform extra delay in [0, jitter_max]
};

struct StationStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_dropped = 0;
};

class SimNetwork final : public Fabric {
 public:
  explicit SimNetwork(std::uint64_t seed = 42) : rng_(seed) {}

  // Registry instruments shared by every SimNetwork in the process (the
  // per-station StationStats stay for topology-level queries; these feed
  // the obs snapshot that benches export). Cached once per network so the
  // per-message hot path is a plain atomic increment.
  struct Instruments {
    obs::Counter& messages_sent;
    obs::Counter& messages_received;
    obs::Counter& messages_dropped;
    obs::Counter& bytes_sent;
    obs::Counter& bytes_received;
    obs::Counter& faults_injected;  // fault transitions activated
    obs::Counter& fault_drops;      // messages killed by an active fault
    obs::Gauge& queue_depth;
    obs::Histogram& delivery_latency_us;
    [[nodiscard]] static Instruments make();
  };

  // --- topology ----------------------------------------------------------
  [[nodiscard]] StationId add_station(const StationLink& link = {});
  // Pre-sizes the station table (avoids rehashing/growth when a bench adds
  // thousands of stations up front).
  void reserve_stations(std::size_t n) { stations_.reserve(n); }
  void set_handler(StationId station, MessageHandler handler) override;
  [[nodiscard]] bool has_station(StationId id) const { return station(id) != nullptr; }
  [[nodiscard]] std::size_t station_count() const { return stations_.size(); }

  // Change link properties mid-run (experiment E10: drifting bandwidth).
  [[nodiscard]] Status set_link(StationId id, const StationLink& link);
  [[nodiscard]] Result<StationLink> link_of(StationId id) const;
  [[nodiscard]] Status set_online(StationId id, bool online);
  [[nodiscard]] bool is_online(StationId id) const override;
  [[nodiscard]] double uplink_bps(StationId id) const override {
    const Station* s = station(id);
    return s == nullptr ? 0.0 : s->link.up_bps;
  }
  // Overrides the end-to-end propagation latency for one station pair
  // (symmetric), replacing the sum of the two per-station latencies — e.g.
  // two stations on the same LAN vs an overseas partner university.
  [[nodiscard]] Status set_pair_latency(StationId a, StationId b, SimTime latency);

  // --- traffic ------------------------------------------------------------
  [[nodiscard]] Status send(Message msg) override;
  [[nodiscard]] SimTime now() const override { return now_; }

  // Schedule arbitrary simulation work (timers, lecture playout deadlines).
  void schedule_at(SimTime at, std::function<void()> fn);
  void schedule_after(SimTime delta, std::function<void()> fn);
  // Bulk-schedules many timers in one pass: k items land with one O(n + k)
  // heap rebuild instead of k O(log n) sifts. Items keep their relative
  // order for same-time ties (each gets the next event seq in turn). Used
  // by fault-plan injection and scale benches that arm thousands of timers
  // up front.
  void schedule_bulk(std::vector<std::pair<SimTime, std::function<void()>>> items);
  // Cancellable timer (Fabric interface): a cancelled event is skipped
  // without running and — crucially for benches that read now() after
  // run() — without advancing simulated time.
  [[nodiscard]] TimerHandle schedule_on(StationId station, SimTime delta,
                                        std::function<void()> fn) override;

  // --- fault injection ----------------------------------------------------
  // Schedules every transition of `plan` on the event queue. Faulty runs
  // consume extra rng draws only while a loss burst is active, so a plan
  // whose window never opens leaves the simulation byte-identical.
  [[nodiscard]] Status inject(const FaultPlan& plan) override;

  // --- execution --------------------------------------------------------
  // Runs one event; false when the queue is empty.
  bool step();
  // Runs to quiescence; returns events processed.
  std::size_t run();
  // Runs events with time <= t (and advances now_ to t).
  std::size_t run_until(SimTime t);

  // --- stats --------------------------------------------------------------
  [[nodiscard]] const StationStats& stats(StationId id) const;
  [[nodiscard]] std::uint64_t total_bytes_on_wire() const { return total_bytes_; }
  [[nodiscard]] std::uint64_t total_messages() const { return total_messages_; }
  void reset_stats();

 private:
  struct Station {
    StationLink link;
    MessageHandler handler;
    StationStats stats;
    SimTime up_busy_until = SimTime::zero();
    SimTime down_busy_until = SimTime::zero();
    bool online = true;
  };

  // A queued event is either a timer callback or a message delivery.
  // Deliveries are a first-class kind (not a closure) so the per-message
  // hot path allocates nothing beyond the message's own shared payload.
  struct Event {
    SimTime at;
    std::uint64_t seq = 0;
    std::function<void()> fn;  // timer events only
    TimerHandle cancel;        // null for ordinary events
    Message msg;               // delivery events only (type empty = timer)
    SimTime sent_at;           // delivery events only
    bool is_delivery = false;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Dense station table: ids are allocated monotonically from 1, so
  // stations_[id-1] is the station and delivery never scans or walks a map.
  [[nodiscard]] Station* station(StationId id) {
    const std::uint64_t v = id.value();
    return v >= 1 && v <= stations_.size() ? &stations_[v - 1] : nullptr;
  }
  [[nodiscard]] const Station* station(StationId id) const {
    const std::uint64_t v = id.value();
    return v >= 1 && v <= stations_.size() ? &stations_[v - 1] : nullptr;
  }

  [[nodiscard]] static SimTime transfer_time(std::uint64_t bytes, double bps);
  void record_fault(const std::string& detail, StationId station);
  void push_event(Event ev);
  [[nodiscard]] Event pop_event();
  void deliver(Event& ev);
  void note_queue_depth() {
    obs_.queue_depth.set(static_cast<std::int64_t>(events_.size()));
  }

  std::vector<Station> stations_;
  std::map<std::pair<StationId, StationId>, SimTime> pair_latency_;
  // Active fault state, keyed by station. Partition groups: stations in the
  // same group (or both ungrouped, group 0) can talk; across groups they
  // cannot.
  std::map<StationId, double> fault_loss_;
  std::map<StationId, SimTime> fault_delay_;
  std::map<StationId, std::uint64_t> fault_group_;
  std::uint64_t next_fault_group_ = 0;
  // Explicit binary heap (std::push_heap/pop_heap over a vector): pops move
  // events out instead of copying, and bulk inserts rebuild in O(n).
  std::vector<Event> events_;
  IdAllocator<StationId> station_ids_;
  SimTime now_ = SimTime::zero();
  std::uint64_t event_seq_ = 0;
  std::uint64_t msg_seq_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_messages_ = 0;
  Rng rng_;
  Instruments obs_ = Instruments::make();
};

}  // namespace wdoc::net

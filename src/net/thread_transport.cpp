#include "net/thread_transport.hpp"

namespace wdoc::net {

ThreadTransport::ThreadTransport() : start_(std::chrono::steady_clock::now()) {}

ThreadTransport::~ThreadTransport() { shutdown(); }

StationId ThreadTransport::add_station(MessageHandler handler) {
  std::lock_guard<std::mutex> g(mu_);
  StationId id = ids_.next();
  auto box = std::make_unique<Mailbox>();
  box->handler = std::move(handler);
  Mailbox* raw = box.get();
  box->worker = std::thread([this, raw] { worker_loop(raw); });
  stations_.emplace(id, std::move(box));
  return id;
}

void ThreadTransport::set_handler(StationId station, MessageHandler handler) {
  std::unique_lock<std::mutex> g(mu_);
  auto it = stations_.find(station);
  WDOC_CHECK(it != stations_.end(), "set_handler on unknown station");
  Mailbox* box = it->second.get();
  g.unlock();
  std::lock_guard<std::mutex> bg(box->mu);
  box->handler = std::move(handler);
}

Status ThreadTransport::send(Message msg) {
  Mailbox* box = nullptr;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = stations_.find(msg.to);
    if (it == stations_.end()) return {Errc::not_found, "unknown receiver"};
    box = it->second.get();
  }
  msg.seq = ++seq_;
  c_sent_.inc();
  c_bytes_sent_.inc(msg.charged_size());
  {
    std::lock_guard<std::mutex> bg(box->mu);
    box->queue.push_back(Queued{std::move(msg), now(), nullptr});
  }
  box->cv.notify_one();
  return Status::ok();
}

SimTime ThreadTransport::now() const {
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start_)
                .count();
  return SimTime::micros(us);
}

Fabric::TimerHandle ThreadTransport::schedule_on(StationId station, SimTime delta,
                                                 std::function<void()> fn) {
  auto cancel = std::make_shared<std::atomic<bool>>(false);
  {
    std::lock_guard<std::mutex> g(timer_mu_);
    if (!timer_thread_.joinable()) {
      timer_thread_ = std::thread([this] { timer_loop(); });
    }
    timers_.push(Timer{std::chrono::steady_clock::now() +
                           std::chrono::microseconds(delta.as_micros()),
                       station, std::move(fn), cancel, ++timer_seq_});
  }
  timer_cv_.notify_one();
  return cancel;
}

bool ThreadTransport::is_online(StationId station) const {
  std::lock_guard<std::mutex> g(mu_);
  return stations_.contains(station);
}

void ThreadTransport::timer_loop() {
  std::unique_lock<std::mutex> g(timer_mu_);
  while (running_.load()) {
    if (timers_.empty()) {
      timer_cv_.wait(g, [&] { return !running_.load() || !timers_.empty(); });
      continue;
    }
    auto due = timers_.top().due;
    if (std::chrono::steady_clock::now() < due) {
      timer_cv_.wait_until(g, due);  // re-check: earlier timer or shutdown
      continue;
    }
    Timer t = timers_.top();
    timers_.pop();
    g.unlock();
    if (!t.cancel->load()) {
      // Route through the station's mailbox so the callback runs on its
      // worker thread; the cancel flag is re-checked at execution time.
      Mailbox* box = nullptr;
      {
        std::lock_guard<std::mutex> sg(mu_);
        auto it = stations_.find(t.station);
        if (it != stations_.end()) box = it->second.get();
      }
      if (box != nullptr) {
        Queued item;
        item.enqueued_at = now();
        item.task = [fn = std::move(t.fn), cancel = t.cancel] {
          if (!cancel->load()) fn();
        };
        {
          std::lock_guard<std::mutex> bg(box->mu);
          box->queue.push_back(std::move(item));
        }
        box->cv.notify_one();
      }
    }
    g.lock();
  }
}

void ThreadTransport::worker_loop(Mailbox* box) {
  for (;;) {
    Queued item;
    MessageHandler handler;
    {
      std::unique_lock<std::mutex> g(box->mu);
      box->cv.wait(g, [&] { return !box->queue.empty() || !running_.load(); });
      if (box->queue.empty()) return;  // shutdown with empty queue
      item = std::move(box->queue.front());
      box->queue.pop_front();
      handler = box->handler;
      box->busy = true;
    }
    if (item.task) {
      // Due timer dispatched to this station: same thread as the handler,
      // no delivery accounting.
      item.task();
      {
        std::lock_guard<std::mutex> g(box->mu);
        box->busy = false;
      }
      box->cv.notify_all();
      continue;
    }
    const Message& msg = item.msg;
    c_received_.inc();
    c_bytes_received_.inc(msg.charged_size());
    h_latency_.observe(static_cast<double>((now() - item.enqueued_at).as_micros()));
    if (handler) handler(msg);
    delivered_.fetch_add(1);
    {
      std::lock_guard<std::mutex> g(box->mu);
      box->busy = false;
    }
    box->cv.notify_all();
  }
}

bool ThreadTransport::quiesce(std::chrono::milliseconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    bool idle = true;
    {
      std::lock_guard<std::mutex> g(mu_);
      for (const auto& [_, box] : stations_) {
        std::lock_guard<std::mutex> bg(box->mu);
        if (!box->queue.empty() || box->busy) {
          idle = false;
          break;
        }
      }
    }
    if (idle) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void ThreadTransport::shutdown() {
  bool was_running = running_.exchange(false);
  if (!was_running) return;
  // Stop the timer thread first: pending timers are dropped, so no task can
  // land in a mailbox after the workers drain.
  std::thread timer;
  {
    std::lock_guard<std::mutex> g(timer_mu_);
    timer_cv_.notify_all();
    timer.swap(timer_thread_);
  }
  if (timer.joinable()) timer.join();
  std::lock_guard<std::mutex> g(mu_);
  for (auto& [_, box] : stations_) {
    box->cv.notify_all();
  }
  for (auto& [_, box] : stations_) {
    if (box->worker.joinable()) box->worker.join();
  }
}

}  // namespace wdoc::net

#include "net/fault.hpp"

namespace wdoc::net {

Status FaultPlan::validate() const {
  for (const LossBurst& f : loss_bursts) {
    if (!f.station.valid()) return {Errc::invalid_argument, "loss burst: invalid station"};
    if (f.rate < 0.0 || f.rate > 1.0) {
      return {Errc::invalid_argument, "loss burst: rate must be in [0, 1]"};
    }
    if (f.until <= f.at) return {Errc::invalid_argument, "loss burst: until <= at"};
  }
  for (const DelaySpike& f : delay_spikes) {
    if (!f.station.valid()) return {Errc::invalid_argument, "delay spike: invalid station"};
    if (f.extra < SimTime::zero()) {
      return {Errc::invalid_argument, "delay spike: negative extra delay"};
    }
    if (f.until <= f.at) return {Errc::invalid_argument, "delay spike: until <= at"};
  }
  for (const Partition& f : partitions) {
    if (f.island.empty()) return {Errc::invalid_argument, "partition: empty island"};
    for (StationId s : f.island) {
      if (!s.valid()) return {Errc::invalid_argument, "partition: invalid station"};
    }
    if (f.until <= f.at) return {Errc::invalid_argument, "partition: until <= at"};
  }
  for (const Crash& f : crashes) {
    if (!f.station.valid()) return {Errc::invalid_argument, "crash: invalid station"};
    if (f.restart_at != SimTime::zero() && f.restart_at <= f.at) {
      return {Errc::invalid_argument, "crash: restart_at <= at"};
    }
  }
  return Status::ok();
}

}  // namespace wdoc::net

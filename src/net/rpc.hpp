// Unified RPC lifecycle layer (tentpole of the fault-tolerance redesign).
//
// Every remote request in the distribution protocol used to live in its own
// ad-hoc std::map<req_id, callback> with no expiry — a single dropped
// message stranded the callback forever, and a duplicate response invoked a
// moved-from function. RpcTracker replaces those maps with one owner of the
// whole request lifecycle:
//
//   track() ──▶ in flight ──response──▶ complete()   cb(Result<T>, latency)
//                  │ deadline expires
//                  ▼
//              attempt timeout ──retries left──▶ backoff ──▶ resend ──▶ in flight
//                  │ budget exhausted                │ resend refused
//                  ▼                                 ▼
//        terminal Errc::timeout            terminal Errc::unreachable
//
// Guarantees:
//   * the completion callback fires exactly once with a Result<T>: never
//     silently dropped, never twice — late or duplicate responses are
//     counted and ignored;
//   * retry delays follow capped exponential backoff with deterministic,
//     seeded jitter, so same-seed simulator runs stay byte-identical;
//   * every attempt timeout is surfaced to a TimeoutObserver — that is the
//     failure-detector input StationNode uses to declare a parent dead and
//     reparent its subtree via the paper's placement equation.
//
// Thread-safety: all public entry points lock an internal mutex; user
// callbacks and the resend function are always invoked outside the lock,
// so a completion may immediately issue (and track) a follow-up rpc.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <typeinfo>

#include "common/rng.hpp"
#include "net/fabric.hpp"
#include "obs/trace.hpp"

namespace wdoc::net {

// The one canonical completion shape every remote operation resolves to:
// the outcome and the fabric time it resolved at.
template <typename T>
using Rpc = std::function<void(Result<T>, SimTime)>;

// Capped exponential backoff between retry attempts. The k-th retry waits
// initial * multiplier^(k-1), capped, then spread by +/- jitter fraction
// drawn from the tracker's seeded Rng.
struct BackoffPolicy {
  SimTime initial = SimTime::millis(250);
  double multiplier = 2.0;
  SimTime cap = SimTime::seconds(4);
  double jitter = 0.25;  // fraction of the delay, in [0, 1]

  [[nodiscard]] SimTime delay(std::uint32_t retry, Rng& rng) const;
  [[nodiscard]] Status validate() const;
};

// Per-request lifecycle knobs. The default deadline is deliberately
// generous: large documents legitimately serialize for tens of seconds on
// campus links, and a premature timeout means a wasted full retransmission.
// Callers moving small payloads (scrapes, manifests on fast links) pass a
// tighter deadline instead.
struct RpcOptions {
  SimTime deadline = SimTime::seconds(60);  // per attempt, not end-to-end
  std::uint32_t max_retries = 3;            // attempts = 1 + max_retries
  BackoffPolicy backoff;
  // End-to-end trace this rpc belongs to (inactive = untraced). When
  // active, the tracker opens one durable span named `trace_name` covering
  // the whole lifecycle — every retry included — parented on trace.span_id,
  // so cross-station rpcs render inside the initiating request's trace.
  obs::TraceContext trace;
  std::string trace_name;

  [[nodiscard]] Status validate() const;
};

struct RpcStats {
  std::uint64_t started = 0;
  std::uint64_t completed = 0;         // resolved with a response
  std::uint64_t retries = 0;           // resend attempts issued
  std::uint64_t attempt_timeouts = 0;  // per-attempt deadline expiries
  std::uint64_t exhausted = 0;         // terminal failures delivered
  std::uint64_t duplicates = 0;        // responses for already-resolved reqs
};

class RpcTracker {
 public:
  // Re-issues the request for attempt `attempt` (1-based retry count). The
  // target is recomputed per call, so retries re-route around stations
  // declared dead since the previous attempt. A returned error means "no
  // route at all" and terminates the rpc with Errc::unreachable.
  using ResendFn = std::function<Status(std::uint32_t attempt)>;
  // Notified on every attempt timeout, before the retry (if any) is
  // scheduled. Input to protocol-level failure detection.
  using TimeoutObserver = std::function<void(std::uint64_t req_id, std::uint32_t attempt)>;

  RpcTracker(Fabric& fabric, StationId self, std::uint64_t seed = 0x77d0c);
  ~RpcTracker();
  RpcTracker(const RpcTracker&) = delete;
  RpcTracker& operator=(const RpcTracker&) = delete;

  void set_timeout_observer(TimeoutObserver observer);

  // Registers an in-flight request. `done` fires exactly once: either via
  // complete()/fail(), or with a terminal error when the retry budget runs
  // out. The caller sends the first attempt itself (so a synchronous send
  // failure can cancel() before any timer fires).
  template <typename T>
  void track(std::uint64_t req_id, const RpcOptions& opts, Rpc<T> done, ResendFn resend) {
    auto cb = std::make_shared<Rpc<T>>(std::move(done));
    track_erased(req_id, opts, std::move(resend), cb, &typeid(T),
                 [cb](Error e, SimTime t) { (*cb)(Result<T>(std::move(e)), t); });
  }

  // Resolves `req_id` with a response. Returns false (and counts a
  // duplicate) when the request already resolved or was never tracked.
  template <typename T>
  [[nodiscard]] bool complete(std::uint64_t req_id, Result<T> result) {
    std::shared_ptr<void> done = finish(req_id, &typeid(T));
    if (done == nullptr) return false;
    (*std::static_pointer_cast<Rpc<T>>(done))(std::move(result), fabric_->now());
    return true;
  }

  // Resolves `req_id` with a terminal error (e.g. a fetch_err from the
  // tree root). Counts a duplicate if already resolved.
  void fail(std::uint64_t req_id, Error e);

  // Drops the request without invoking its callback — only for unwinding a
  // failed synchronous first send, where the caller reports the error.
  void cancel(std::uint64_t req_id);

  // Counts a response that arrived for a request this tracker no longer
  // knows — for protocol handlers that detect the duplicate before
  // attempting completion.
  void note_duplicate();

  [[nodiscard]] bool in_flight(std::uint64_t req_id) const;
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] RpcStats stats() const;

 private:
  using FailFn = std::function<void(Error, SimTime)>;

  struct Entry {
    RpcOptions opts;
    ResendFn resend;
    std::shared_ptr<void> done;     // Rpc<T>, type-erased
    const std::type_info* tag = nullptr;
    FailFn on_fail;                 // wraps `done` for terminal errors
    std::uint32_t attempt = 0;      // retries performed so far
    std::uint64_t epoch = 0;        // guards against stale timer firings
    std::uint64_t span = 0;         // durable lifecycle span (0 = untraced)
    SimTime started;
    Fabric::TimerHandle timer;
  };

  void track_erased(std::uint64_t req_id, const RpcOptions& opts, ResendFn resend,
                    std::shared_ptr<void> done, const std::type_info* tag, FailFn on_fail);
  [[nodiscard]] std::shared_ptr<void> finish(std::uint64_t req_id, const std::type_info* tag);
  void on_deadline(std::uint64_t req_id, std::uint64_t epoch);
  void on_retry(std::uint64_t req_id, std::uint64_t epoch);
  void deliver_terminal(std::uint64_t req_id, Entry taken, Error e);

  Fabric* fabric_;
  StationId self_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, Entry> entries_;
  Rng rng_;
  RpcStats stats_;
  TimeoutObserver on_timeout_;
};

}  // namespace wdoc::net

// Wire format of the chunked transfer protocol (push and repair paths).
//
//   ChunkBegin  opens a transfer: geometry plus an opaque manifest blob the
//               distribution layer interprets; charged at structure size.
//   ChunkData   one sequence-numbered, content-hashed chunk. req_id != 0
//               requests a ChunkAck (windowed push under rpc deadlines);
//               req_id == 0 is unacked repair/pull data riding ahead of its
//               ChunkRsp summary on the same FIFO link.
//   ChunkAck    receipt for one pushed chunk; completes the sender's rpc
//               and frees a slot in the per-child in-flight window.
//   ChunkReq    pull request for an explicit list of missing chunk indices.
//   ChunkRsp    pull summary: how many of the requested chunks were served.
//
// ChunkData's bulk bytes do NOT travel inside the encoded header: they ride
// as net::Message::body, a refcounted Payload slice, so a relay re-encodes
// only the ~50-byte header per hop and forwards the received bytes
// untouched. encode() renders the header; decode() takes the header bytes
// and the out-of-band body and cross-checks them (a body/length or
// body/flag mismatch is corruption).
//
// Every decoder fails with Errc::corrupt on truncation, implausible counts,
// or oversized lengths — hostile input must never drive an allocation or
// out-of-bounds read (fuzzed in tests/test_decode_fuzz.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/result.hpp"
#include "common/serialize.hpp"
#include "net/payload.hpp"

namespace wdoc::net {

inline constexpr const char* kChunkBegin = "dist.chunk_begin";
inline constexpr const char* kChunkData = "dist.chunk";
inline constexpr const char* kChunkAck = "dist.chunk_ack";
inline constexpr const char* kChunkReq = "dist.chunk_req";
inline constexpr const char* kChunkRsp = "dist.chunk_rsp";

// Decode-time ceiling on declared chunk sizes (mirrors blob::kMaxChunkBytes
// without reaching into the blob layer).
inline constexpr std::uint32_t kMaxWireChunkBytes = 64u << 20;

struct ChunkBegin {
  std::uint64_t transfer_id = 0;
  std::uint32_t chunk_bytes = 0;
  Bytes manifest;  // opaque to the transport; dist decodes a DocManifest

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<ChunkBegin> decode(std::span<const std::uint8_t> b);
};

struct ChunkData {
  std::uint64_t req_id = 0;       // != 0: ack requested, completes this rpc
  std::uint64_t transfer_id = 0;  // != 0: part of a push transfer (relayed)
  Digest128 digest;               // blob being assembled
  std::uint32_t index = 0;        // sequence number within the blob
  std::uint32_t chunk_len = 0;    // bytes this chunk covers (charged on wire)
  Digest128 chunk_digest;         // content hash of this chunk
  bool has_payload = false;       // false = synthetic (size-only) transfer
  Payload payload;                // exactly chunk_len bytes when has_payload

  // Header only — `payload` travels out-of-band as Message::body.
  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<ChunkData> decode(std::span<const std::uint8_t> header,
                                                Payload body);
};

struct ChunkAck {
  std::uint64_t req_id = 0;
  std::uint64_t transfer_id = 0;
  Digest128 digest;
  std::uint32_t index = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<ChunkAck> decode(std::span<const std::uint8_t> b);
};

struct ChunkReq {
  std::uint64_t req_id = 0;
  std::string doc_key;
  Digest128 digest;
  std::uint64_t size = 0;         // whole-blob size (last chunk is ragged)
  std::uint8_t media_type = 0;
  std::uint32_t chunk_bytes = 0;
  std::vector<std::uint32_t> indices;  // missing chunks, ascending

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<ChunkReq> decode(std::span<const std::uint8_t> b);
};

struct ChunkRsp {
  std::uint64_t req_id = 0;
  std::uint32_t served = 0;
  std::uint32_t requested = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<ChunkRsp> decode(std::span<const std::uint8_t> b);
};

}  // namespace wdoc::net

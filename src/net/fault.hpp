// FaultPlan: scripted fault injection for the network fabric.
//
// The distribution protocol's robustness claims (retries, tree failover,
// lecture repair) are only testable against faults that go beyond the
// steady-state `loss_rate`/`jitter_max` of a StationLink: bursts of loss on
// one link, delay spikes, symmetric partitions, and whole-station
// crash/restart. A FaultPlan describes such a script declaratively; the
// fabric (SimNetwork) schedules the transitions on its own event queue, so
// a faulty run is exactly as deterministic as a healthy one.
//
// All times are absolute fabric times; every fault must be scheduled in the
// future relative to the injection call. Faults compose: a message crossing
// an active partition is dropped outright, otherwise each endpoint's
// injected loss is drawn on top of its link's steady-state loss, and
// injected delay adds to propagation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"
#include "common/sim_time.hpp"

namespace wdoc::net {

// Extra per-message drop probability on both of `station`'s link directions
// during [at, until).
struct LossBurst {
  StationId station;
  double rate = 0.0;
  SimTime at;
  SimTime until;
};

// Extra one-way propagation delay charged to every message `station` sends
// or receives during [at, until).
struct DelaySpike {
  StationId station;
  SimTime extra;
  SimTime at;
  SimTime until;
};

// Symmetric partition: during [at, until) no message crosses between the
// island and the rest of the network, in either direction. Traffic within
// the island (and within the remainder) flows normally.
struct Partition {
  std::vector<StationId> island;
  SimTime at;
  SimTime until;
};

// Station crash at `at`; restart at `restart_at`, or never when zero. A
// crashed station drops everything addressed to it and sends nothing — its
// protocol state survives (the process did not lose its disk), which is
// what makes restart + anti-entropy repair meaningful.
struct Crash {
  StationId station;
  SimTime at;
  SimTime restart_at = SimTime::zero();
};

struct FaultPlan {
  std::vector<LossBurst> loss_bursts;
  std::vector<DelaySpike> delay_spikes;
  std::vector<Partition> partitions;
  std::vector<Crash> crashes;

  [[nodiscard]] bool empty() const {
    return loss_bursts.empty() && delay_spikes.empty() && partitions.empty() &&
           crashes.empty();
  }
  [[nodiscard]] Status validate() const;
};

}  // namespace wdoc::net

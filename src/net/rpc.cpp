#include "net/rpc.hpp"

#include <algorithm>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace wdoc::net {

namespace {

// Process-wide rpc counters; every tracker shares them (per-tracker totals
// live in RpcStats and surface per-station via StationNode::local_snapshot).
struct RpcMetrics {
  obs::Counter& started;
  obs::Counter& completed;
  obs::Counter& retries;
  obs::Counter& attempt_timeouts;
  obs::Counter& exhausted;
  obs::Counter& duplicates;
  obs::Histogram& latency_us;

  static RpcMetrics& get() {
    static RpcMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::global();
      return new RpcMetrics{
          reg.counter("rpc.started"),          reg.counter("rpc.completed"),
          reg.counter("rpc.retries"),          reg.counter("rpc.attempt_timeouts"),
          reg.counter("rpc.exhausted"),        reg.counter("rpc.duplicates"),
          reg.histogram("rpc.latency", {{"unit", "us"}}),
      };
    }();
    return *m;
  }
};

}  // namespace

SimTime BackoffPolicy::delay(std::uint32_t retry, Rng& rng) const {
  WDOC_CHECK(retry >= 1, "BackoffPolicy::delay: retry is 1-based");
  // Iterated multiply instead of std::pow: every step is a single IEEE
  // operation, so delays (and therefore event order and rng consumption)
  // are bit-identical across platforms and libms.
  double us = static_cast<double>(initial.as_micros());
  const double cap_us = static_cast<double>(cap.as_micros());
  for (std::uint32_t i = 1; i < retry && us < cap_us; ++i) us *= multiplier;
  us = std::min(us, cap_us);
  us += (rng.uniform01() * 2.0 - 1.0) * (us * jitter);
  return SimTime::micros(std::max<std::int64_t>(static_cast<std::int64_t>(us), 1));
}

Status BackoffPolicy::validate() const {
  if (initial <= SimTime::zero()) {
    return {Errc::invalid_argument, "backoff: initial delay must be > 0"};
  }
  if (multiplier < 1.0) return {Errc::invalid_argument, "backoff: multiplier must be >= 1"};
  if (cap < initial) return {Errc::invalid_argument, "backoff: cap < initial"};
  if (jitter < 0.0 || jitter > 1.0) {
    return {Errc::invalid_argument, "backoff: jitter must be in [0, 1]"};
  }
  return Status::ok();
}

Status RpcOptions::validate() const {
  if (deadline <= SimTime::zero()) {
    return {Errc::invalid_argument, "rpc: deadline must be > 0"};
  }
  return backoff.validate();
}

RpcTracker::RpcTracker(Fabric& fabric, StationId self, std::uint64_t seed)
    : fabric_(&fabric),
      self_(self),
      // Mix the station id into the seed so co-located trackers with the
      // same base seed still jitter independently.
      rng_(seed ^ (0x9e3779b97f4a7c15ULL * (self.value() + 1))) {}

RpcTracker::~RpcTracker() {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& [id, e] : entries_) {
    if (e.timer) e.timer->store(true);
  }
  entries_.clear();
}

void RpcTracker::set_timeout_observer(TimeoutObserver observer) {
  std::lock_guard<std::mutex> g(mu_);
  on_timeout_ = std::move(observer);
}

void RpcTracker::track_erased(std::uint64_t req_id, const RpcOptions& opts, ResendFn resend,
                              std::shared_ptr<void> done, const std::type_info* tag,
                              FailFn on_fail) {
  Status valid = opts.validate();
  WDOC_CHECK(valid.is_ok(), "RpcTracker::track: " + valid.message());
  std::lock_guard<std::mutex> g(mu_);
  WDOC_CHECK(!entries_.contains(req_id), "RpcTracker::track: req_id already in flight");
  Entry e;
  e.opts = opts;
  e.resend = std::move(resend);
  e.done = std::move(done);
  e.tag = tag;
  e.on_fail = std::move(on_fail);
  e.started = fabric_->now();
  if (opts.trace.active()) {
    e.span = obs::Tracer::global().begin(
        opts.trace_name.empty() ? "rpc" : opts.trace_name, opts.trace.span_id,
        e.started, self_.value(), opts.trace.trace_id);
  }
  std::uint64_t epoch = ++e.epoch;
  e.timer = fabric_->schedule_on(self_, opts.deadline,
                                 [this, req_id, epoch] { on_deadline(req_id, epoch); });
  entries_.emplace(req_id, std::move(e));
  ++stats_.started;
  RpcMetrics::get().started.inc();
}

std::shared_ptr<void> RpcTracker::finish(std::uint64_t req_id, const std::type_info* tag) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = entries_.find(req_id);
  if (it == entries_.end()) {
    ++stats_.duplicates;
    RpcMetrics::get().duplicates.inc();
    return nullptr;
  }
  WDOC_CHECK(*it->second.tag == *tag, "RpcTracker::complete: result type mismatch");
  if (it->second.timer) it->second.timer->store(true);
  ++stats_.completed;
  RpcMetrics::get().completed.inc();
  RpcMetrics::get().latency_us.observe(
      static_cast<double>((fabric_->now() - it->second.started).as_micros()));
  std::shared_ptr<void> done = std::move(it->second.done);
  const std::uint64_t span = it->second.span;
  entries_.erase(it);
  if (span != 0) obs::Tracer::global().end(span, fabric_->now());
  return done;
}

void RpcTracker::fail(std::uint64_t req_id, Error e) {
  Entry taken;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = entries_.find(req_id);
    if (it == entries_.end()) {
      ++stats_.duplicates;
      RpcMetrics::get().duplicates.inc();
      return;
    }
    if (it->second.timer) it->second.timer->store(true);
    taken = std::move(it->second);
    entries_.erase(it);
  }
  deliver_terminal(req_id, std::move(taken), std::move(e));
}

void RpcTracker::cancel(std::uint64_t req_id) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = entries_.find(req_id);
  if (it == entries_.end()) return;
  if (it->second.timer) it->second.timer->store(true);
  if (it->second.span != 0) obs::Tracer::global().end(it->second.span, fabric_->now());
  // The request never left the station; it does not count as started.
  --stats_.started;
  entries_.erase(it);
}

void RpcTracker::note_duplicate() {
  std::lock_guard<std::mutex> g(mu_);
  ++stats_.duplicates;
  RpcMetrics::get().duplicates.inc();
}

bool RpcTracker::in_flight(std::uint64_t req_id) const {
  std::lock_guard<std::mutex> g(mu_);
  return entries_.contains(req_id);
}

std::size_t RpcTracker::pending() const {
  std::lock_guard<std::mutex> g(mu_);
  return entries_.size();
}

RpcStats RpcTracker::stats() const {
  std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

void RpcTracker::on_deadline(std::uint64_t req_id, std::uint64_t epoch) {
  TimeoutObserver observer;
  std::uint32_t timed_out_attempt = 0;
  bool terminal = false;
  Entry taken;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = entries_.find(req_id);
    if (it == entries_.end() || it->second.epoch != epoch) return;  // stale timer
    Entry& e = it->second;
    ++stats_.attempt_timeouts;
    RpcMetrics::get().attempt_timeouts.inc();
    observer = on_timeout_;
    timed_out_attempt = e.attempt;
    if (e.attempt < e.opts.max_retries) {
      ++e.attempt;
      ++stats_.retries;
      RpcMetrics::get().retries.inc();
      SimTime backoff = e.opts.backoff.delay(e.attempt, rng_);
      std::uint64_t next = ++e.epoch;
      e.timer = fabric_->schedule_on(self_, backoff,
                                     [this, req_id, next] { on_retry(req_id, next); });
    } else {
      terminal = true;
      taken = std::move(e);
      entries_.erase(it);
    }
  }
  if (observer) observer(req_id, timed_out_attempt);
  if (terminal) {
    const std::uint32_t attempts = taken.attempt + 1;
    deliver_terminal(req_id, std::move(taken),
                     Error{Errc::timeout,
                           "rpc " + std::to_string(req_id) + " timed out after " +
                               std::to_string(attempts) + " attempt(s)"});
  }
}

void RpcTracker::on_retry(std::uint64_t req_id, std::uint64_t epoch) {
  ResendFn resend;
  std::uint32_t attempt = 0;
  {
    std::lock_guard<std::mutex> g(mu_);
    auto it = entries_.find(req_id);
    if (it == entries_.end() || it->second.epoch != epoch) return;  // stale timer
    Entry& e = it->second;
    resend = e.resend;  // copy: invoked outside the lock
    attempt = e.attempt;
    std::uint64_t next = ++e.epoch;
    e.timer = fabric_->schedule_on(self_, e.opts.deadline,
                                   [this, req_id, next] { on_deadline(req_id, next); });
  }
  Status sent = resend ? resend(attempt)
                       : Status{Errc::unavailable, "rpc has no resend function"};
  if (!sent.is_ok()) {
    fail(req_id, Error{Errc::unreachable,
                       "rpc " + std::to_string(req_id) + " retry " +
                           std::to_string(attempt) + " unroutable: " + sent.message()});
  }
}

void RpcTracker::deliver_terminal(std::uint64_t req_id, Entry taken, Error e) {
  {
    std::lock_guard<std::mutex> g(mu_);
    ++stats_.exhausted;
  }
  RpcMetrics::get().exhausted.inc();
  if (taken.span != 0) obs::Tracer::global().end(taken.span, fabric_->now());
  obs::FlightRecorder::global().record(
      obs::FlightKind::rpc_exhausted, e.to_string(), self_.value(), req_id,
      fabric_->now());
  if (taken.on_fail) taken.on_fail(std::move(e), fabric_->now());
}

}  // namespace wdoc::net

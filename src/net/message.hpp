// Messages exchanged between stations, over either the discrete-event
// simulator or the in-process threaded transport.
//
// `wire_size` is what the network charges for the message; simulations send
// multi-megabyte lectures as declared sizes with small payloads, while the
// threaded transport carries real payload bytes.
#pragma once

#include <cstdint>
#include <string>

#include "common/ids.hpp"
#include "common/serialize.hpp"

namespace wdoc::net {

struct Message {
  StationId from;
  StationId to;
  std::string type;       // protocol discriminator, e.g. "dist.push"
  Bytes payload;          // protocol-defined body
  std::uint64_t wire_size = 0;  // bytes charged on the wire (0 -> payload size)
  std::uint64_t seq = 0;  // assigned by the fabric
  // Span id of the sender-side span that caused this message (0 = untraced).
  // Both fabrics are in-process, so the receiver can parent its own span on
  // it and a trace follows a push down the whole distribution tree.
  std::uint64_t trace_parent = 0;
  // End-to-end trace the sender's span belongs to (0 = none). Receivers
  // stamp it on the spans they open for this message, so remote-station
  // work joins the initiator's trace instead of starting an orphan.
  std::uint64_t trace_id = 0;
  // Initiator's head-sample verdict rides along so downstream stations
  // never re-flip the coin with a different seed.
  bool trace_sampled = false;

  [[nodiscard]] std::uint64_t charged_size() const {
    return wire_size != 0 ? wire_size : payload.size() + 64;  // 64 B header
  }
};

// In-fabric metrics scraping (the observability plane's own protocol):
//   MetricsRequest   {req_id}                  fans down the m-ary tree —
//                                              each node forwards to its
//                                              broadcast-tree children;
//   MetricsResponse  {req_id, snapshot}        aggregates back up — a node
//                                              merges every child response
//                                              into its own station-labeled
//                                              snapshot before replying.
// Payloads are built with obs::encode_snapshot; see StationNode::on_scrape_*.
inline constexpr const char* kMetricsRequest = "obs.metrics_req";
inline constexpr const char* kMetricsResponse = "obs.metrics_rsp";

}  // namespace wdoc::net

// Messages exchanged between stations, over either the discrete-event
// simulator or the in-process threaded transport.
//
// `wire_size` is what the network charges for the message; simulations send
// multi-megabyte lectures as declared sizes with small payloads, while the
// threaded transport carries real payload bytes.
#pragma once

#include <cstdint>
#include <string>

#include "common/ids.hpp"
#include "common/serialize.hpp"
#include "net/payload.hpp"
#include "obs/trace.hpp"

namespace wdoc::net {

// Framing overhead the fabric charges on top of the payload bytes when no
// explicit wire_size is declared. SimNetwork and ThreadTransport both
// account through charged_size(), so this is the single point of truth.
inline constexpr std::uint64_t kWireHeaderBytes = 64;

struct Message {
  StationId from;
  StationId to;
  std::string type;  // protocol discriminator, e.g. "dist.push"
  Payload payload;   // protocol-defined header/body bytes
  // Bulk bytes riding behind the protocol header (chunk payloads). Kept out
  // of `payload` so a relay can forward the received slice untouched while
  // re-encoding only the small per-hop header. Empty for most messages.
  Payload body;
  std::uint64_t wire_size = 0;  // bytes charged on the wire (0 -> payload size)
  std::uint64_t seq = 0;        // assigned by the fabric
  // End-to-end trace this message belongs to: the trace id minted at the
  // initiator, the sender-side span acting as parent (receivers parent
  // their own spans on it, so a trace follows a push down the whole
  // distribution tree — both fabrics are in-process), and the initiator's
  // head-sample verdict so downstream stations never re-flip the coin.
  obs::TraceContext trace;

  [[nodiscard]] std::uint64_t charged_size() const {
    return wire_size != 0 ? wire_size : payload.size() + body.size() + kWireHeaderBytes;
  }
};

// In-fabric metrics scraping (the observability plane's own protocol):
//   MetricsRequest   {req_id}                  fans down the m-ary tree —
//                                              each node forwards to its
//                                              broadcast-tree children;
//   MetricsResponse  {req_id, snapshot}        aggregates back up — a node
//                                              merges every child response
//                                              into its own station-labeled
//                                              snapshot before replying.
// Payloads are built with obs::encode_snapshot; see StationNode::on_scrape_*.
inline constexpr const char* kMetricsRequest = "obs.metrics_req";
inline constexpr const char* kMetricsResponse = "obs.metrics_rsp";

}  // namespace wdoc::net

#include "net/payload.hpp"

#include "obs/metrics.hpp"

namespace wdoc::net {

namespace {

// Process-wide: one pair of counters across every fabric and store, so a
// bench's metrics dump shows the total deep-copy volume of the whole run.
struct PayloadMetrics {
  obs::Counter& copies;
  obs::Counter& bytes_copied;

  static PayloadMetrics& get() {
    static PayloadMetrics* m = [] {
      auto& reg = obs::MetricsRegistry::global();
      return new PayloadMetrics{
          reg.counter("net.payload.copies"),
          reg.counter("net.payload.bytes_copied"),
      };
    }();
    return *m;
  }
};

void count_copy(std::size_t bytes) {
  auto& m = PayloadMetrics::get();
  m.copies.inc();
  m.bytes_copied.inc(bytes);
}

// Register at startup so the counters appear (at zero) in every metrics
// dump: CI drift-checks "no bytes copied", which must be distinguishable
// from "counter never existed".
const bool kRegisteredAtStartup = (PayloadMetrics::get(), true);

}  // namespace

Payload::Payload(Bytes&& b) {
  auto buf = std::make_shared<Bytes>(std::move(b));
  minted_ = buf.get();
  data_ = buf->data();
  size_ = buf->size();
  owner_ = std::move(buf);
}

Payload::Payload(std::string&& s) {
  auto buf = std::make_shared<std::string>(std::move(s));
  data_ = reinterpret_cast<const std::uint8_t*>(buf->data());
  size_ = buf->size();
  owner_ = std::move(buf);
}

Payload Payload::copy_of(std::span<const std::uint8_t> b) {
  count_copy(b.size());
  return Payload(Bytes(b.begin(), b.end()));
}

Payload Payload::wrap(std::shared_ptr<const Bytes> buf) {
  const std::size_t n = buf ? buf->size() : 0;
  return wrap(std::move(buf), 0, n);
}

Payload Payload::wrap(std::shared_ptr<const Bytes> buf, std::size_t offset, std::size_t len) {
  Payload p;
  if (!buf || offset >= buf->size()) return p;
  len = std::min(len, buf->size() - offset);
  p.data_ = buf->data() + offset;
  p.size_ = len;
  p.owner_ = std::move(buf);
  return p;
}

Payload Payload::slice(std::size_t offset, std::size_t len) const {
  Payload p;
  if (offset >= size_) return p;
  p.owner_ = owner_;
  p.minted_ = nullptr;  // a slice never owns the whole buffer
  p.data_ = data_ + offset;
  p.size_ = std::min(len, size_ - offset);
  return p;
}

Bytes Payload::to_bytes() const {
  if (size_ != 0) count_copy(size_);
  return Bytes(data_, data_ + size_);
}

std::string Payload::to_string() const {
  if (size_ != 0) count_copy(size_);
  return std::string(reinterpret_cast<const char*>(data_), size_);
}

Bytes Payload::cow() {
  Bytes out;
  if (minted_ != nullptr && owner_.use_count() == 1 && data_ == minted_->data() &&
      size_ == minted_->size()) {
    // Sole owner of a whole buffer this view minted: steal the allocation.
    // The buffer was born mutable in the Bytes&& constructor; const-ness is
    // only what the shared view promised others, and there are no others.
    out = std::move(*const_cast<Bytes*>(minted_));
  } else {
    if (size_ != 0) count_copy(size_);
    out.assign(data_, data_ + size_);
  }
  *this = Payload{};
  return out;
}

std::uint64_t Payload::copies_total() {
  return static_cast<std::uint64_t>(PayloadMetrics::get().copies.value());
}

std::uint64_t Payload::bytes_copied_total() {
  return static_cast<std::uint64_t>(PayloadMetrics::get().bytes_copied.value());
}

}  // namespace wdoc::net

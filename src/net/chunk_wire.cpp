#include "net/chunk_wire.hpp"

namespace wdoc::net {

namespace {

[[nodiscard]] bool plausible_chunk_len(std::uint32_t len) {
  return len > 0 && len <= kMaxWireChunkBytes;
}

}  // namespace

Bytes ChunkBegin::encode() const {
  Writer w;
  w.u64(transfer_id);
  w.u32(chunk_bytes);
  w.bytes(manifest);
  return w.take();
}

Result<ChunkBegin> ChunkBegin::decode(std::span<const std::uint8_t> b) {
  Reader r(b);
  ChunkBegin out;
  auto id = r.u64();
  auto cb = r.u32();
  if (!id || !cb) return Error{Errc::corrupt, "bad chunk begin"};
  out.transfer_id = id.value();
  out.chunk_bytes = cb.value();
  if (!plausible_chunk_len(out.chunk_bytes)) {
    return Error{Errc::corrupt, "chunk begin: implausible chunk size"};
  }
  auto m = r.bytes();
  if (!m) return m.error();
  out.manifest = std::move(m).value();
  return out;
}

Bytes ChunkData::encode() const {
  Writer w;
  w.u64(req_id);
  w.u64(transfer_id);
  w.u64(digest.lo);
  w.u64(digest.hi);
  w.u32(index);
  w.u32(chunk_len);
  w.u64(chunk_digest.lo);
  w.u64(chunk_digest.hi);
  w.boolean(has_payload);
  return w.take();
}

Result<ChunkData> ChunkData::decode(std::span<const std::uint8_t> header, Payload body) {
  Reader r(header);
  ChunkData out;
  auto req = r.u64();
  auto xfer = r.u64();
  auto lo = r.u64();
  auto hi = r.u64();
  auto idx = r.u32();
  auto len = r.u32();
  auto clo = r.u64();
  auto chi = r.u64();
  auto flag = r.u8();
  if (!req || !xfer || !lo || !hi || !idx || !len || !clo || !chi || !flag) {
    return Error{Errc::corrupt, "bad chunk data"};
  }
  if (flag.value() > 1) return Error{Errc::corrupt, "chunk data: bad payload flag"};
  out.req_id = req.value();
  out.transfer_id = xfer.value();
  out.digest = Digest128{lo.value(), hi.value()};
  out.index = idx.value();
  out.chunk_len = len.value();
  out.chunk_digest = Digest128{clo.value(), chi.value()};
  out.has_payload = flag.value() == 1;
  if (!plausible_chunk_len(out.chunk_len)) {
    return Error{Errc::corrupt, "chunk data: implausible length"};
  }
  // Cross-check the out-of-band body against the header's claim: a header
  // promising bytes it doesn't have (or bytes with no header claim) is as
  // corrupt as a truncated buffer.
  if (out.has_payload) {
    if (body.size() != out.chunk_len) {
      return Error{Errc::corrupt, "chunk data: payload/length mismatch"};
    }
    out.payload = std::move(body);  // the received slice, untouched
  } else if (!body.empty()) {
    return Error{Errc::corrupt, "chunk data: unexpected payload bytes"};
  }
  return out;
}

Bytes ChunkAck::encode() const {
  Writer w;
  w.u64(req_id);
  w.u64(transfer_id);
  w.u64(digest.lo);
  w.u64(digest.hi);
  w.u32(index);
  return w.take();
}

Result<ChunkAck> ChunkAck::decode(std::span<const std::uint8_t> b) {
  Reader r(b);
  ChunkAck out;
  auto req = r.u64();
  auto xfer = r.u64();
  auto lo = r.u64();
  auto hi = r.u64();
  auto idx = r.u32();
  if (!req || !xfer || !lo || !hi || !idx) return Error{Errc::corrupt, "bad chunk ack"};
  out.req_id = req.value();
  out.transfer_id = xfer.value();
  out.digest = Digest128{lo.value(), hi.value()};
  out.index = idx.value();
  return out;
}

Bytes ChunkReq::encode() const {
  Writer w;
  w.u64(req_id);
  w.str(doc_key);
  w.u64(digest.lo);
  w.u64(digest.hi);
  w.u64(size);
  w.u8(media_type);
  w.u32(chunk_bytes);
  w.u32(static_cast<std::uint32_t>(indices.size()));
  for (std::uint32_t i : indices) w.u32(i);
  return w.take();
}

Result<ChunkReq> ChunkReq::decode(std::span<const std::uint8_t> b) {
  Reader r(b);
  ChunkReq out;
  auto req = r.u64();
  if (!req) return req.error();
  out.req_id = req.value();
  auto key = r.str();
  if (!key) return key.error();
  out.doc_key = std::move(key).value();
  auto lo = r.u64();
  auto hi = r.u64();
  auto size = r.u64();
  auto type = r.u8();
  auto cb = r.u32();
  if (!lo || !hi || !size || !type || !cb) return Error{Errc::corrupt, "bad chunk req"};
  out.digest = Digest128{lo.value(), hi.value()};
  out.size = size.value();
  out.media_type = type.value();
  out.chunk_bytes = cb.value();
  if (!plausible_chunk_len(out.chunk_bytes)) {
    return Error{Errc::corrupt, "chunk req: implausible chunk size"};
  }
  auto n = r.count(4);
  if (!n) return n.error();
  out.indices.reserve(n.value());
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    auto idx = r.u32();
    if (!idx) return idx.error();
    out.indices.push_back(idx.value());
  }
  return out;
}

Bytes ChunkRsp::encode() const {
  Writer w;
  w.u64(req_id);
  w.u32(served);
  w.u32(requested);
  return w.take();
}

Result<ChunkRsp> ChunkRsp::decode(std::span<const std::uint8_t> b) {
  Reader r(b);
  ChunkRsp out;
  auto req = r.u64();
  auto served = r.u32();
  auto requested = r.u32();
  if (!req || !served || !requested) return Error{Errc::corrupt, "bad chunk rsp"};
  out.req_id = req.value();
  out.served = served.value();
  out.requested = requested.value();
  return out;
}

}  // namespace wdoc::net

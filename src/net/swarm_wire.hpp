// Wire format of the swarm distribution protocol (DESIGN.md §4f).
//
//   SwarmBegin  opens a swarm transfer: the chunk-pipeline geometry plus
//               the stripe-tree count. Sent down EVERY stripe tree (the
//               m-fold redundancy is the loss protection — duplicates are
//               idempotent), separate from ChunkBegin so the single-tree
//               pipeline's wire format stays byte-identical.
//   SwarmHave   periodic gossip: the sender's chunk-possession bitmap for
//               one transfer, packed one bit per chunk into 64-bit words.
//   SwarmReq    rarest-first pull: an explicit list of global chunk
//               indices, with the requester's own bitmap piggybacked so a
//               request doubles as a gossip update. Served chunks ride the
//               existing ChunkData message (req_id = 0, transfer_id set),
//               so arrival feeds the normal relay path.
//
// Every decoder fails with Errc::corrupt on truncation, implausible
// counts, or geometry the words/indices can't satisfy — hostile input
// must never drive an allocation or out-of-bounds read (fuzzed in
// tests/test_decode_fuzz.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.hpp"
#include "common/serialize.hpp"

namespace wdoc::net {

inline constexpr const char* kSwarmBegin = "swarm.begin";
inline constexpr const char* kSwarmHave = "swarm.have";
inline constexpr const char* kSwarmReq = "swarm.req";

// Decode-time ceilings: chunks per transfer (a 64 MB-chunk, 16M-chunk
// transfer is a petabyte — far past any lecture) and stripe trees.
inline constexpr std::uint32_t kMaxWireChunks = 1u << 24;
inline constexpr std::uint32_t kMaxWireTrees = 64;

struct SwarmBegin {
  std::uint64_t transfer_id = 0;
  std::uint32_t chunk_bytes = 0;
  std::uint32_t trees = 0;
  Bytes manifest;  // opaque to the transport; dist decodes a DocManifest

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<SwarmBegin> decode(std::span<const std::uint8_t> b);
};

struct SwarmHave {
  std::uint64_t transfer_id = 0;
  std::uint64_t position = 0;  // sender's 1-based tree position
  // Sender's estimated serve latency in chunk-times (queued relays plus
  // queued serves weighted by the relay slots each must yield to).
  // Requesters use it to route pulls toward uplinks with spare capacity.
  std::uint32_t backlog = 0;
  // Bit t set: the sender's stripe tree t has lost its push feed and is in
  // pull (recovery) mode. Descendants latch the bit from their own feed,
  // so it marks exactly the orphaned subtree.
  std::uint64_t recovering = 0;
  std::uint32_t total_chunks = 0;
  std::vector<std::uint64_t> words;  // exactly ceil(total_chunks / 64)
  // Chunks the sender has requested and not yet received (same geometry).
  // A parent skips relaying these — the copy is already on its way.
  std::vector<std::uint64_t> pending_words;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<SwarmHave> decode(std::span<const std::uint8_t> b);
};

struct SwarmReq {
  std::uint64_t transfer_id = 0;
  std::uint64_t position = 0;  // requester's 1-based tree position
  std::uint32_t backlog = 0;   // requester's queued-send depth (see SwarmHave)
  std::vector<std::uint32_t> indices;  // global chunk indices, ascending
  // Piggybacked requester bitmaps (same geometry as SwarmHave): possession
  // plus outstanding requests, so a request doubles as a gossip update.
  std::uint32_t total_chunks = 0;
  std::vector<std::uint64_t> have_words;
  std::vector<std::uint64_t> pending_words;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static Result<SwarmReq> decode(std::span<const std::uint8_t> b);
};

}  // namespace wdoc::net

// Refcounted immutable payload buffers — the fabric's unit of bulk bytes.
//
// A Payload is a view (pointer + length) into a shared heap buffer. Copying
// a Payload bumps a refcount; slicing one narrows the view without touching
// the bytes. That makes the chunked distribution tree genuinely zero-copy:
// a verified chunk lands once in a station's reassembly buffer and every
// relay hop forwards a slice of that same buffer.
//
// The bytes behind a live Payload never change (see DESIGN.md "Buffer
// ownership"). Mutation goes through the copy-on-write escape hatch cow(),
// which yields an owned mutable buffer — stealing the allocation when this
// view is the sole owner of a whole buffer, deep-copying otherwise.
//
// Every deep copy (copy_of, to_bytes, to_string, a cow() that cannot
// steal) increments net.payload.copies / net.payload.bytes_copied, so the
// zero-copy property is observable and CI can assert the relay path stays
// near zero.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "common/serialize.hpp"

namespace wdoc::net {

class Payload {
 public:
  Payload() = default;

  // Takes ownership of an owned buffer (e.g. Writer::take()) — no copy.
  /*implicit*/ Payload(Bytes&& b);
  /*implicit*/ Payload(std::string&& s);

  // Deep-copies borrowed bytes (counted: the caller keeps ownership, so the
  // fabric cannot share them).
  [[nodiscard]] static Payload copy_of(std::span<const std::uint8_t> b);

  // Shares `buf` (or the [offset, offset+len) window of it) — no copy. The
  // buffer must outlive nothing: the Payload keeps it alive.
  [[nodiscard]] static Payload wrap(std::shared_ptr<const Bytes> buf);
  [[nodiscard]] static Payload wrap(std::shared_ptr<const Bytes> buf, std::size_t offset,
                                    std::size_t len);

  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::span<const std::uint8_t> span() const { return {data_, size_}; }
  /*implicit*/ operator std::span<const std::uint8_t>() const { return span(); }
  // The bytes viewed as text (HTTP bodies, JSON exports).
  [[nodiscard]] std::string_view text() const {
    return {reinterpret_cast<const char*>(data_), size_};
  }

  // Narrows the view to [offset, offset+len) of this payload — refcount
  // bump, no copy. Out-of-range slices are clamped to the payload's end.
  [[nodiscard]] Payload slice(std::size_t offset, std::size_t len) const;

  // Deep-copy escape hatches (counted).
  [[nodiscard]] Bytes to_bytes() const;
  [[nodiscard]] std::string to_string() const;

  // Copy-on-write: yields an owned mutable buffer and empties this view.
  // Sole owner of a whole Bytes buffer -> the allocation is stolen (free);
  // shared, sliced, or string-backed -> counted deep copy.
  [[nodiscard]] Bytes cow();

  // Process-wide deep-copy totals (the net.payload.* counters), exposed for
  // tests that assert the relay path stays zero-copy.
  [[nodiscard]] static std::uint64_t copies_total();
  [[nodiscard]] static std::uint64_t bytes_copied_total();

 private:
  std::shared_ptr<const void> owner_;
  // Non-null only when owner_ is a Bytes this Payload minted itself (the
  // Bytes&& constructor) — the one case cow() may steal from.
  const Bytes* minted_ = nullptr;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

[[nodiscard]] inline bool operator==(const Payload& a, const Payload& b) {
  return std::equal(a.data(), a.data() + a.size(), b.data(), b.data() + b.size());
}

}  // namespace wdoc::net

#include "net/swarm_wire.hpp"

#include "net/chunk_wire.hpp"  // kMaxWireChunkBytes

namespace wdoc::net {

namespace {

[[nodiscard]] constexpr std::uint32_t words_for(std::uint32_t chunks) {
  return (chunks + 63) / 64;
}

}  // namespace

Bytes SwarmBegin::encode() const {
  Writer w;
  w.u64(transfer_id);
  w.u32(chunk_bytes);
  w.u32(trees);
  w.bytes(manifest);
  return w.take();
}

Result<SwarmBegin> SwarmBegin::decode(std::span<const std::uint8_t> b) {
  Reader r(b);
  SwarmBegin out;
  auto id = r.u64();
  auto cb = r.u32();
  auto trees = r.u32();
  if (!id || !cb || !trees) return Error{Errc::corrupt, "bad swarm begin"};
  out.transfer_id = id.value();
  out.chunk_bytes = cb.value();
  out.trees = trees.value();
  if (out.chunk_bytes == 0 || out.chunk_bytes > kMaxWireChunkBytes) {
    return Error{Errc::corrupt, "swarm begin: implausible chunk size"};
  }
  if (out.trees == 0 || out.trees > kMaxWireTrees) {
    return Error{Errc::corrupt, "swarm begin: implausible stripe count"};
  }
  auto m = r.bytes();
  if (!m) return m.error();
  out.manifest = std::move(m).value();
  return out;
}

Bytes SwarmHave::encode() const {
  Writer w;
  w.u64(transfer_id);
  w.u64(position);
  w.u32(backlog);
  w.u64(recovering);
  w.u32(total_chunks);
  for (std::uint64_t word : words) w.u64(word);
  for (std::uint64_t word : pending_words) w.u64(word);
  return w.take();
}

Result<SwarmHave> SwarmHave::decode(std::span<const std::uint8_t> b) {
  Reader r(b);
  SwarmHave out;
  auto id = r.u64();
  auto pos = r.u64();
  auto backlog = r.u32();
  auto recovering = r.u64();
  auto total = r.u32();
  if (!id || !pos || !backlog || !recovering || !total) {
    return Error{Errc::corrupt, "bad swarm have"};
  }
  out.transfer_id = id.value();
  out.position = pos.value();
  out.backlog = backlog.value();
  out.recovering = recovering.value();
  out.total_chunks = total.value();
  if (out.total_chunks == 0 || out.total_chunks > kMaxWireChunks) {
    return Error{Errc::corrupt, "swarm have: implausible chunk count"};
  }
  // The word count is implied by the geometry, never carried separately —
  // a bitmap that doesn't exactly cover total_chunks is corruption.
  // No reserve: the claimed geometry could be huge, so growth is paced by
  // reads actually succeeding against the buffer.
  const std::uint32_t n = words_for(out.total_chunks);
  for (std::uint32_t i = 0; i < n; ++i) {
    auto word = r.u64();
    if (!word) return Error{Errc::corrupt, "swarm have: truncated bitmap"};
    out.words.push_back(word.value());
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    auto word = r.u64();
    if (!word) return Error{Errc::corrupt, "swarm have: truncated pending bitmap"};
    out.pending_words.push_back(word.value());
  }
  return out;
}

Bytes SwarmReq::encode() const {
  Writer w;
  w.u64(transfer_id);
  w.u64(position);
  w.u32(backlog);
  w.u32(static_cast<std::uint32_t>(indices.size()));
  for (std::uint32_t i : indices) w.u32(i);
  w.u32(total_chunks);
  for (std::uint64_t word : have_words) w.u64(word);
  for (std::uint64_t word : pending_words) w.u64(word);
  return w.take();
}

Result<SwarmReq> SwarmReq::decode(std::span<const std::uint8_t> b) {
  Reader r(b);
  SwarmReq out;
  auto id = r.u64();
  auto pos = r.u64();
  auto backlog = r.u32();
  if (!id || !pos || !backlog) return Error{Errc::corrupt, "bad swarm req"};
  out.transfer_id = id.value();
  out.position = pos.value();
  out.backlog = backlog.value();
  auto n = r.count(4);
  if (!n) return n.error();
  out.indices.reserve(n.value());
  for (std::uint32_t i = 0; i < n.value(); ++i) {
    auto idx = r.u32();
    if (!idx) return idx.error();
    out.indices.push_back(idx.value());
  }
  auto total = r.u32();
  if (!total) return total.error();
  out.total_chunks = total.value();
  if (out.total_chunks == 0 || out.total_chunks > kMaxWireChunks) {
    return Error{Errc::corrupt, "swarm req: implausible chunk count"};
  }
  // Requested indices must fall inside the geometry the request declares.
  for (std::uint32_t idx : out.indices) {
    if (idx >= out.total_chunks) {
      return Error{Errc::corrupt, "swarm req: index out of range"};
    }
  }
  const std::uint32_t nwords = words_for(out.total_chunks);
  for (std::uint32_t i = 0; i < nwords; ++i) {
    auto word = r.u64();
    if (!word) return Error{Errc::corrupt, "swarm req: truncated bitmap"};
    out.have_words.push_back(word.value());
  }
  for (std::uint32_t i = 0; i < nwords; ++i) {
    auto word = r.u64();
    if (!word) return Error{Errc::corrupt, "swarm req: truncated pending bitmap"};
    out.pending_words.push_back(word.value());
  }
  return out;
}

}  // namespace wdoc::net

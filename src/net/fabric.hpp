// Fabric: the transport abstraction the distribution layer runs on.
//
// Two implementations exist: SimNetwork (deterministic discrete-event
// simulation with bandwidth/latency modelling — used by every experiment)
// and ThreadTransport (real threads and queues — used by the live examples
// to show the same protocol code off the simulator).
#pragma once

#include <functional>

#include "common/result.hpp"
#include "common/sim_time.hpp"
#include "net/message.hpp"

namespace wdoc::net {

using MessageHandler = std::function<void(const Message&)>;

class Fabric {
 public:
  virtual ~Fabric() = default;

  // Asynchronous send; delivery invokes the receiver's handler. Returns an
  // error only for immediately-detectable failures (unknown station).
  [[nodiscard]] virtual Status send(Message msg) = 0;

  virtual void set_handler(StationId station, MessageHandler handler) = 0;

  // Current time: simulated for SimNetwork, wall-clock-since-start for
  // ThreadTransport.
  [[nodiscard]] virtual SimTime now() const = 0;
};

}  // namespace wdoc::net

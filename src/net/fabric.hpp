// Fabric: the transport abstraction the distribution layer runs on.
//
// Two implementations exist: SimNetwork (deterministic discrete-event
// simulation with bandwidth/latency modelling — used by every experiment)
// and ThreadTransport (real threads and queues — used by the live examples
// to show the same protocol code off the simulator).
#pragma once

#include <atomic>
#include <functional>
#include <memory>

#include "common/result.hpp"
#include "common/sim_time.hpp"
#include "net/fault.hpp"
#include "net/message.hpp"

namespace wdoc::net {

using MessageHandler = std::function<void(const Message&)>;

class Fabric {
 public:
  // Cancellable timer: store(true) guarantees the callback never runs after
  // the store is observed. SimNetwork additionally skips cancelled events
  // without advancing simulated time, so abandoned deadlines leave no trace
  // on the clock.
  using TimerHandle = std::shared_ptr<std::atomic<bool>>;

  virtual ~Fabric() = default;

  // Asynchronous send; delivery invokes the receiver's handler. Returns an
  // error only for immediately-detectable failures (unknown station).
  [[nodiscard]] virtual Status send(Message msg) = 0;

  virtual void set_handler(StationId station, MessageHandler handler) = 0;

  // Current time: simulated for SimNetwork, wall-clock-since-start for
  // ThreadTransport.
  [[nodiscard]] virtual SimTime now() const = 0;

  // Runs `fn` after `delta` in `station`'s execution context — the shared
  // event loop for SimNetwork, the station's worker thread for
  // ThreadTransport (so timer callbacks never race the message handler).
  // The RpcTracker's deadlines and backoff timers run through this.
  [[nodiscard]] virtual TimerHandle schedule_on(StationId station, SimTime delta,
                                                std::function<void()> fn) = 0;

  // Liveness as the fabric itself knows it (crashed / offline stations).
  // Protocol-level failure detection (StationNode's declared-dead set) is
  // layered on top of this, not derived from it.
  [[nodiscard]] virtual bool is_online(StationId station) const {
    (void)station;
    return true;
  }

  // The station's uplink rate in bits/s, or 0 when the fabric has no link
  // model. Senders that pace themselves at line rate (the swarm relay)
  // read this; everything else ignores it.
  [[nodiscard]] virtual double uplink_bps(StationId station) const {
    (void)station;
    return 0.0;
  }

  // Installs a scripted fault plan. Fabrics without a fault model refuse.
  [[nodiscard]] virtual Status inject(const FaultPlan& plan) {
    (void)plan;
    return {Errc::unsupported, "fault injection not supported on this fabric"};
  }
};

}  // namespace wdoc::net

// In-process threaded transport: each station gets a worker thread draining
// a FIFO mailbox. Used by the live examples to run the same distribution
// protocol code that the experiments run on the simulator.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "net/fabric.hpp"
#include "obs/metrics.hpp"

namespace wdoc::net {

class ThreadTransport final : public Fabric {
 public:
  ThreadTransport();
  ~ThreadTransport() override;
  ThreadTransport(const ThreadTransport&) = delete;
  ThreadTransport& operator=(const ThreadTransport&) = delete;

  // Registers a station; its handler runs on a dedicated worker thread.
  [[nodiscard]] StationId add_station(MessageHandler handler);
  void set_handler(StationId station, MessageHandler handler) override;

  [[nodiscard]] Status send(Message msg) override;
  [[nodiscard]] SimTime now() const override;

  // Blocks until every mailbox is empty and every worker idle (bounded by
  // `timeout`). Returns false on timeout.
  [[nodiscard]] bool quiesce(std::chrono::milliseconds timeout =
                                 std::chrono::milliseconds(5000));

  // Stops all workers (drains nothing further). Idempotent.
  void shutdown();

  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_.load(); }

 private:
  struct Queued {
    Message msg;
    SimTime enqueued_at;  // for the delivery-latency histogram
  };
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Queued> queue;
    MessageHandler handler;
    std::thread worker;
    bool busy = false;
  };

  void worker_loop(Mailbox* box);

  mutable std::mutex mu_;
  std::map<StationId, std::unique_ptr<Mailbox>> stations_;
  IdAllocator<StationId> ids_;
  std::atomic<bool> running_{true};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> seq_{0};
  std::chrono::steady_clock::time_point start_;

  // Shared registry instruments (same names as SimNetwork's, so protocol
  // code is observable identically on either fabric).
  obs::Counter& c_sent_ = obs::MetricsRegistry::global().counter("net.messages_sent");
  obs::Counter& c_received_ =
      obs::MetricsRegistry::global().counter("net.messages_received");
  obs::Counter& c_bytes_sent_ = obs::MetricsRegistry::global().counter("net.bytes_sent");
  obs::Counter& c_bytes_received_ =
      obs::MetricsRegistry::global().counter("net.bytes_received");
  obs::Histogram& h_latency_ = obs::MetricsRegistry::global().histogram(
      "net.delivery_latency", {{"unit", "us"}});
};

}  // namespace wdoc::net

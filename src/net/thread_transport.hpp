// In-process threaded transport: each station gets a worker thread draining
// a FIFO mailbox. Used by the live examples to run the same distribution
// protocol code that the experiments run on the simulator.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "net/fabric.hpp"
#include "obs/metrics.hpp"

namespace wdoc::net {

class ThreadTransport final : public Fabric {
 public:
  ThreadTransport();
  ~ThreadTransport() override;
  ThreadTransport(const ThreadTransport&) = delete;
  ThreadTransport& operator=(const ThreadTransport&) = delete;

  // Registers a station; its handler runs on a dedicated worker thread.
  [[nodiscard]] StationId add_station(MessageHandler handler);
  void set_handler(StationId station, MessageHandler handler) override;

  [[nodiscard]] Status send(Message msg) override;
  [[nodiscard]] SimTime now() const override;

  // Timer callbacks are dispatched through the target station's mailbox, so
  // they run on the same worker thread as its message handler and never
  // race protocol state. The timer thread starts lazily on first use.
  [[nodiscard]] TimerHandle schedule_on(StationId station, SimTime delta,
                                        std::function<void()> fn) override;
  [[nodiscard]] bool is_online(StationId station) const override;

  // Blocks until every mailbox is empty and every worker idle (bounded by
  // `timeout`). Returns false on timeout.
  [[nodiscard]] bool quiesce(std::chrono::milliseconds timeout =
                                 std::chrono::milliseconds(5000));

  // Stops all workers (drains nothing further). Idempotent.
  void shutdown();

  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_.load(); }

 private:
  struct Queued {
    Message msg;
    SimTime enqueued_at;  // for the delivery-latency histogram
    std::function<void()> task;  // when set, a due timer; msg is unused
  };
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Queued> queue;
    MessageHandler handler;
    std::thread worker;
    bool busy = false;
  };

  struct Timer {
    std::chrono::steady_clock::time_point due;
    StationId station;
    std::function<void()> fn;
    TimerHandle cancel;
    std::uint64_t seq = 0;
  };
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.due != b.due) return a.due > b.due;
      return a.seq > b.seq;
    }
  };

  void worker_loop(Mailbox* box);
  void timer_loop();

  mutable std::mutex mu_;
  std::map<StationId, std::unique_ptr<Mailbox>> stations_;
  IdAllocator<StationId> ids_;
  std::atomic<bool> running_{true};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> seq_{0};
  std::chrono::steady_clock::time_point start_;

  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::priority_queue<Timer, std::vector<Timer>, TimerLater> timers_;
  std::thread timer_thread_;
  std::uint64_t timer_seq_ = 0;

  // Shared registry instruments (same names as SimNetwork's, so protocol
  // code is observable identically on either fabric).
  obs::Counter& c_sent_ = obs::MetricsRegistry::global().counter("net.messages_sent");
  obs::Counter& c_received_ =
      obs::MetricsRegistry::global().counter("net.messages_received");
  obs::Counter& c_bytes_sent_ = obs::MetricsRegistry::global().counter("net.bytes_sent");
  obs::Counter& c_bytes_received_ =
      obs::MetricsRegistry::global().counter("net.bytes_received");
  obs::Histogram& h_latency_ = obs::MetricsRegistry::global().histogram(
      "net.delivery_latency", {{"unit", "us"}});
};

}  // namespace wdoc::net

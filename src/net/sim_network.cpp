#include "net/sim_network.hpp"

namespace wdoc::net {

SimNetwork::Instruments SimNetwork::Instruments::make() {
  auto& reg = obs::MetricsRegistry::global();
  return Instruments{
      reg.counter("net.messages_sent"),    reg.counter("net.messages_received"),
      reg.counter("net.messages_dropped"), reg.counter("net.bytes_sent"),
      reg.counter("net.bytes_received"),   reg.gauge("net.queue_depth"),
      reg.histogram("net.delivery_latency", {{"unit", "us"}}),
  };
}

StationId SimNetwork::add_station(const StationLink& link) {
  StationId id = station_ids_.next();
  Station s;
  s.link = link;
  stations_.emplace(id, std::move(s));
  return id;
}

void SimNetwork::set_handler(StationId station, MessageHandler handler) {
  auto it = stations_.find(station);
  WDOC_CHECK(it != stations_.end(), "set_handler on unknown station");
  it->second.handler = std::move(handler);
}

Status SimNetwork::set_link(StationId id, const StationLink& link) {
  auto it = stations_.find(id);
  if (it == stations_.end()) return {Errc::not_found, "no such station"};
  it->second.link = link;
  return Status::ok();
}

Result<StationLink> SimNetwork::link_of(StationId id) const {
  auto it = stations_.find(id);
  if (it == stations_.end()) return Error{Errc::not_found, "no such station"};
  return it->second.link;
}

Status SimNetwork::set_online(StationId id, bool online) {
  auto it = stations_.find(id);
  if (it == stations_.end()) return {Errc::not_found, "no such station"};
  it->second.online = online;
  return Status::ok();
}

Status SimNetwork::set_pair_latency(StationId a, StationId b, SimTime latency) {
  if (!stations_.contains(a) || !stations_.contains(b)) {
    return {Errc::not_found, "no such station"};
  }
  if (b < a) std::swap(a, b);
  pair_latency_[{a, b}] = latency;
  return Status::ok();
}

SimTime SimNetwork::transfer_time(std::uint64_t bytes, double bps) {
  if (bps <= 0) return SimTime::seconds(3600);  // effectively stalled
  return SimTime::seconds(static_cast<double>(bytes) * 8.0 / bps);
}

Status SimNetwork::send(Message msg) {
  auto from_it = stations_.find(msg.from);
  if (from_it == stations_.end()) return {Errc::not_found, "unknown sender"};
  auto to_it = stations_.find(msg.to);
  if (to_it == stations_.end()) return {Errc::not_found, "unknown receiver"};
  Station& from = from_it->second;
  Station& to = to_it->second;

  const std::uint64_t size = msg.charged_size();
  msg.seq = ++msg_seq_;
  from.stats.messages_sent++;
  from.stats.bytes_sent += size;
  total_bytes_ += size;
  total_messages_++;
  obs_.messages_sent.inc();
  obs_.bytes_sent.inc(size);

  if (!from.online || !to.online ||
      (from.link.loss_rate > 0 && rng_.bernoulli(from.link.loss_rate)) ||
      (to.link.loss_rate > 0 && rng_.bernoulli(to.link.loss_rate))) {
    from.stats.messages_dropped++;
    obs_.messages_dropped.inc();
    return Status::ok();  // silently lost, like the real thing
  }

  // Uplink serialization (FIFO behind this sender's earlier messages).
  SimTime depart = std::max(now_, from.up_busy_until) + transfer_time(size, from.link.up_bps);
  from.up_busy_until = depart;
  // Propagation: a per-pair override wins; otherwise the two stations'
  // to-core latencies add. Jitter adds a uniform sample from each side.
  SimTime propagation = from.link.latency + to.link.latency;
  {
    StationId lo = msg.from, hi = msg.to;
    if (hi < lo) std::swap(lo, hi);
    auto pit = pair_latency_.find({lo, hi});
    if (pit != pair_latency_.end()) propagation = pit->second;
  }
  for (const StationLink* link : {&from.link, &to.link}) {
    if (link->jitter_max > SimTime::zero()) {
      propagation += SimTime::micros(static_cast<std::int64_t>(
          rng_.uniform(static_cast<std::uint64_t>(link->jitter_max.as_micros()) + 1)));
    }
  }
  SimTime arrive = depart + propagation;
  // Downlink serialization.
  SimTime done = std::max(arrive, to.down_busy_until) + transfer_time(size, to.link.down_bps);
  to.down_busy_until = done;

  StationId to_id = msg.to;
  SimTime sent_at = now_;
  schedule_at(done, [this, to_id, sent_at, m = std::move(msg), size]() {
    auto it = stations_.find(to_id);
    if (it == stations_.end() || !it->second.online) return;
    it->second.stats.messages_received++;
    it->second.stats.bytes_received += size;
    obs_.messages_received.inc();
    obs_.bytes_received.inc(size);
    obs_.delivery_latency_us.observe(
        static_cast<double>((now_ - sent_at).as_micros()));
    if (it->second.handler) it->second.handler(m);
  });
  return Status::ok();
}

void SimNetwork::schedule_at(SimTime at, std::function<void()> fn) {
  WDOC_CHECK(at >= now_, "schedule_at in the past");
  events_.push(Event{at, ++event_seq_, std::move(fn)});
  obs_.queue_depth.set(static_cast<std::int64_t>(events_.size()));
}

void SimNetwork::schedule_after(SimTime delta, std::function<void()> fn) {
  schedule_at(now_ + delta, std::move(fn));
}

bool SimNetwork::step() {
  if (events_.empty()) return false;
  // priority_queue::top returns const&; move via const_cast is the standard
  // idiom for move-only payloads, but copying the function is fine here.
  Event ev = events_.top();
  events_.pop();
  obs_.queue_depth.set(static_cast<std::int64_t>(events_.size()));
  now_ = ev.at;
  ev.fn();
  return true;
}

std::size_t SimNetwork::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t SimNetwork::run_until(SimTime t) {
  std::size_t n = 0;
  while (!events_.empty() && events_.top().at <= t) {
    step();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

const StationStats& SimNetwork::stats(StationId id) const {
  auto it = stations_.find(id);
  WDOC_CHECK(it != stations_.end(), "stats for unknown station");
  return it->second.stats;
}

void SimNetwork::reset_stats() {
  for (auto& [_, s] : stations_) s.stats = StationStats{};
  total_bytes_ = 0;
  total_messages_ = 0;
}

}  // namespace wdoc::net

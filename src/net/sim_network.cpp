#include "net/sim_network.hpp"

#include <algorithm>

#include "obs/flight_recorder.hpp"

namespace wdoc::net {

SimNetwork::Instruments SimNetwork::Instruments::make() {
  auto& reg = obs::MetricsRegistry::global();
  return Instruments{
      reg.counter("net.messages_sent"),    reg.counter("net.messages_received"),
      reg.counter("net.messages_dropped"), reg.counter("net.bytes_sent"),
      reg.counter("net.bytes_received"),   reg.counter("net.faults_injected"),
      reg.counter("net.fault_drops"),      reg.gauge("net.queue_depth"),
      reg.histogram("net.delivery_latency", {{"unit", "us"}}),
  };
}

StationId SimNetwork::add_station(const StationLink& link) {
  StationId id = station_ids_.next();
  WDOC_CHECK(id.value() == stations_.size() + 1, "station ids must stay dense");
  Station s;
  s.link = link;
  stations_.push_back(std::move(s));
  return id;
}

void SimNetwork::set_handler(StationId id, MessageHandler handler) {
  Station* s = station(id);
  WDOC_CHECK(s != nullptr, "set_handler on unknown station");
  s->handler = std::move(handler);
}

Status SimNetwork::set_link(StationId id, const StationLink& link) {
  Station* s = station(id);
  if (s == nullptr) return {Errc::not_found, "no such station"};
  s->link = link;
  return Status::ok();
}

Result<StationLink> SimNetwork::link_of(StationId id) const {
  const Station* s = station(id);
  if (s == nullptr) return Error{Errc::not_found, "no such station"};
  return s->link;
}

Status SimNetwork::set_online(StationId id, bool online) {
  Station* s = station(id);
  if (s == nullptr) return {Errc::not_found, "no such station"};
  s->online = online;
  return Status::ok();
}

bool SimNetwork::is_online(StationId id) const {
  const Station* s = station(id);
  return s != nullptr && s->online;
}

Status SimNetwork::set_pair_latency(StationId a, StationId b, SimTime latency) {
  if (!has_station(a) || !has_station(b)) {
    return {Errc::not_found, "no such station"};
  }
  if (b < a) std::swap(a, b);
  pair_latency_[{a, b}] = latency;
  return Status::ok();
}

SimTime SimNetwork::transfer_time(std::uint64_t bytes, double bps) {
  if (bps <= 0) return SimTime::seconds(3600);  // effectively stalled
  return SimTime::seconds(static_cast<double>(bytes) * 8.0 / bps);
}

Status SimNetwork::send(Message msg) {
  Station* from = station(msg.from);
  if (from == nullptr) return {Errc::not_found, "unknown sender"};
  Station* to = station(msg.to);
  if (to == nullptr) return {Errc::not_found, "unknown receiver"};

  const std::uint64_t size = msg.charged_size();
  msg.seq = ++msg_seq_;
  from->stats.messages_sent++;
  from->stats.bytes_sent += size;
  total_bytes_ += size;
  total_messages_++;
  obs_.messages_sent.inc();
  obs_.bytes_sent.inc(size);

  if (!from->online || !to->online ||
      (from->link.loss_rate > 0 && rng_.bernoulli(from->link.loss_rate)) ||
      (to->link.loss_rate > 0 && rng_.bernoulli(to->link.loss_rate))) {
    from->stats.messages_dropped++;
    obs_.messages_dropped.inc();
    return Status::ok();  // silently lost, like the real thing
  }

  // Injected faults. Checks (and any extra rng draws) happen only while a
  // fault window is open, so healthy runs consume the identical draw
  // sequence with or without a plan installed.
  if (!fault_group_.empty() || !fault_loss_.empty()) {
    bool killed = false;
    if (!fault_group_.empty()) {
      auto ga = fault_group_.find(msg.from);
      auto gb = fault_group_.find(msg.to);
      std::uint64_t gfrom = ga == fault_group_.end() ? 0 : ga->second;
      std::uint64_t gto = gb == fault_group_.end() ? 0 : gb->second;
      killed = gfrom != gto;  // symmetric partition: no crossing either way
    }
    if (!killed && !fault_loss_.empty()) {
      for (StationId endpoint : {msg.from, msg.to}) {
        auto it = fault_loss_.find(endpoint);
        if (it != fault_loss_.end() && rng_.bernoulli(it->second)) {
          killed = true;
          break;
        }
      }
    }
    if (killed) {
      from->stats.messages_dropped++;
      obs_.messages_dropped.inc();
      obs_.fault_drops.inc();
      return Status::ok();
    }
  }

  // Uplink serialization (FIFO behind this sender's earlier messages).
  SimTime depart = std::max(now_, from->up_busy_until) + transfer_time(size, from->link.up_bps);
  from->up_busy_until = depart;
  // Propagation: a per-pair override wins; otherwise the two stations'
  // to-core latencies add. Jitter adds a uniform sample from each side.
  SimTime propagation = from->link.latency + to->link.latency;
  if (!pair_latency_.empty()) {
    StationId lo = msg.from, hi = msg.to;
    if (hi < lo) std::swap(lo, hi);
    auto pit = pair_latency_.find({lo, hi});
    if (pit != pair_latency_.end()) propagation = pit->second;
  }
  for (const StationLink* link : {&from->link, &to->link}) {
    if (link->jitter_max > SimTime::zero()) {
      propagation += SimTime::micros(static_cast<std::int64_t>(
          rng_.uniform(static_cast<std::uint64_t>(link->jitter_max.as_micros()) + 1)));
    }
  }
  if (!fault_delay_.empty()) {
    for (StationId endpoint : {msg.from, msg.to}) {
      auto it = fault_delay_.find(endpoint);
      if (it != fault_delay_.end()) propagation += it->second;
    }
  }
  SimTime arrive = depart + propagation;
  // Downlink serialization.
  SimTime done = std::max(arrive, to->down_busy_until) + transfer_time(size, to->link.down_bps);
  to->down_busy_until = done;

  // Delivery is a first-class event: the message (whose payloads are
  // refcounted views) moves into the queue, no closure is allocated.
  Event ev;
  ev.at = done;
  ev.seq = ++event_seq_;
  ev.msg = std::move(msg);
  ev.sent_at = now_;
  ev.is_delivery = true;
  push_event(std::move(ev));
  return Status::ok();
}

void SimNetwork::deliver(Event& ev) {
  Station* to = station(ev.msg.to);
  if (to == nullptr || !to->online) return;
  const std::uint64_t size = ev.msg.charged_size();
  to->stats.messages_received++;
  to->stats.bytes_received += size;
  obs_.messages_received.inc();
  obs_.bytes_received.inc(size);
  obs_.delivery_latency_us.observe(static_cast<double>((now_ - ev.sent_at).as_micros()));
  if (to->handler) to->handler(ev.msg);
}

void SimNetwork::push_event(Event ev) {
  events_.push_back(std::move(ev));
  std::push_heap(events_.begin(), events_.end(), EventLater{});
  note_queue_depth();
}

SimNetwork::Event SimNetwork::pop_event() {
  std::pop_heap(events_.begin(), events_.end(), EventLater{});
  Event ev = std::move(events_.back());
  events_.pop_back();
  note_queue_depth();
  return ev;
}

void SimNetwork::schedule_at(SimTime at, std::function<void()> fn) {
  WDOC_CHECK(at >= now_, "schedule_at in the past");
  Event ev;
  ev.at = at;
  ev.seq = ++event_seq_;
  ev.fn = std::move(fn);
  push_event(std::move(ev));
}

void SimNetwork::schedule_after(SimTime delta, std::function<void()> fn) {
  schedule_at(now_ + delta, std::move(fn));
}

void SimNetwork::schedule_bulk(std::vector<std::pair<SimTime, std::function<void()>>> items) {
  if (items.empty()) return;
  events_.reserve(events_.size() + items.size());
  for (auto& [at, fn] : items) {
    WDOC_CHECK(at >= now_, "schedule_bulk in the past");
    Event ev;
    ev.at = at;
    ev.seq = ++event_seq_;
    ev.fn = std::move(fn);
    events_.push_back(std::move(ev));
  }
  // One O(n) rebuild instead of k O(log n) sifts. The heap property is all
  // pop order depends on — (at, seq) is a strict total order, so the run
  // stays byte-identical to individual pushes.
  std::make_heap(events_.begin(), events_.end(), EventLater{});
  note_queue_depth();
}

Fabric::TimerHandle SimNetwork::schedule_on(StationId station, SimTime delta,
                                            std::function<void()> fn) {
  // One shared event loop: `station` only selects an execution context on
  // the threaded fabric. The handle lets callers (RpcTracker) abandon
  // deadlines that resolved early.
  (void)station;
  auto cancel = std::make_shared<std::atomic<bool>>(false);
  Event ev;
  ev.at = now_ + delta;
  ev.seq = ++event_seq_;
  ev.fn = std::move(fn);
  ev.cancel = cancel;
  push_event(std::move(ev));
  return cancel;
}

bool SimNetwork::step() {
  while (!events_.empty()) {
    // Cancelled timers are discarded without running and without advancing
    // now_: an abandoned rpc deadline must not stretch the clock benches
    // read after run().
    Event ev = pop_event();
    if (ev.cancel && ev.cancel->load()) continue;
    now_ = ev.at;
    if (ev.is_delivery) {
      deliver(ev);
    } else {
      ev.fn();
    }
    return true;
  }
  return false;
}

std::size_t SimNetwork::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t SimNetwork::run_until(SimTime t) {
  std::size_t n = 0;
  for (;;) {
    while (!events_.empty() && events_.front().cancel && events_.front().cancel->load()) {
      (void)pop_event();
    }
    if (events_.empty() || events_.front().at > t) break;
    step();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

// --- fault injection ---------------------------------------------------------

void SimNetwork::record_fault(const std::string& detail, StationId station) {
  obs_.faults_injected.inc();
  obs::FlightRecorder::global().record(obs::FlightKind::fault, detail,
                                       station.value(), 0, now_);
}

Status SimNetwork::inject(const FaultPlan& plan) {
  WDOC_TRY(plan.validate());
  auto known = [this](StationId s) { return has_station(s); };
  for (const LossBurst& f : plan.loss_bursts) {
    if (!known(f.station)) return {Errc::not_found, "loss burst: unknown station"};
    if (f.at < now_) return {Errc::invalid_argument, "loss burst scheduled in the past"};
  }
  for (const DelaySpike& f : plan.delay_spikes) {
    if (!known(f.station)) return {Errc::not_found, "delay spike: unknown station"};
    if (f.at < now_) return {Errc::invalid_argument, "delay spike scheduled in the past"};
  }
  for (const Partition& f : plan.partitions) {
    for (StationId s : f.island) {
      if (!known(s)) return {Errc::not_found, "partition: unknown station"};
    }
    if (f.at < now_) return {Errc::invalid_argument, "partition scheduled in the past"};
  }
  for (const Crash& f : plan.crashes) {
    if (!known(f.station)) return {Errc::not_found, "crash: unknown station"};
    if (f.at < now_) return {Errc::invalid_argument, "crash scheduled in the past"};
  }

  // A plan is many transitions; land them through the bulk path so a dense
  // fault schedule doesn't pay one heap sift per edge.
  std::vector<std::pair<SimTime, std::function<void()>>> timers;
  for (const LossBurst& f : plan.loss_bursts) {
    timers.emplace_back(f.at, [this, f] {
      fault_loss_[f.station] = f.rate;
      record_fault("loss burst " + std::to_string(f.rate) + " until t=" +
                       f.until.to_string(),
                   f.station);
    });
    timers.emplace_back(f.until, [this, f] {
      fault_loss_.erase(f.station);
      record_fault("loss burst cleared", f.station);
    });
  }
  for (const DelaySpike& f : plan.delay_spikes) {
    timers.emplace_back(f.at, [this, f] {
      fault_delay_[f.station] = f.extra;
      record_fault("delay spike +" + f.extra.to_string(), f.station);
    });
    timers.emplace_back(f.until, [this, f] {
      fault_delay_.erase(f.station);
      record_fault("delay spike cleared", f.station);
    });
  }
  for (const Partition& f : plan.partitions) {
    const std::uint64_t group = ++next_fault_group_;
    timers.emplace_back(f.at, [this, f, group] {
      for (StationId s : f.island) fault_group_[s] = group;
      record_fault("partition: island of " + std::to_string(f.island.size()) +
                       " station(s) isolated",
                   f.island.front());
    });
    timers.emplace_back(f.until, [this, f, group] {
      for (StationId s : f.island) {
        auto it = fault_group_.find(s);
        if (it != fault_group_.end() && it->second == group) fault_group_.erase(it);
      }
      record_fault("partition healed", f.island.front());
    });
  }
  for (const Crash& f : plan.crashes) {
    timers.emplace_back(f.at, [this, f] {
      (void)set_online(f.station, false);
      record_fault("station crash", f.station);
    });
    if (f.restart_at != SimTime::zero()) {
      timers.emplace_back(f.restart_at, [this, f] {
        (void)set_online(f.station, true);
        record_fault("station restart", f.station);
      });
    }
  }
  schedule_bulk(std::move(timers));
  return Status::ok();
}

const StationStats& SimNetwork::stats(StationId id) const {
  const Station* s = station(id);
  WDOC_CHECK(s != nullptr, "stats for unknown station");
  return s->stats;
}

void SimNetwork::reset_stats() {
  for (Station& s : stations_) s.stats = StationStats{};
  total_bytes_ = 0;
  total_messages_ = 0;
}

}  // namespace wdoc::net

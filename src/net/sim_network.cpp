#include "net/sim_network.hpp"

#include "obs/flight_recorder.hpp"

namespace wdoc::net {

SimNetwork::Instruments SimNetwork::Instruments::make() {
  auto& reg = obs::MetricsRegistry::global();
  return Instruments{
      reg.counter("net.messages_sent"),    reg.counter("net.messages_received"),
      reg.counter("net.messages_dropped"), reg.counter("net.bytes_sent"),
      reg.counter("net.bytes_received"),   reg.counter("net.faults_injected"),
      reg.counter("net.fault_drops"),      reg.gauge("net.queue_depth"),
      reg.histogram("net.delivery_latency", {{"unit", "us"}}),
  };
}

StationId SimNetwork::add_station(const StationLink& link) {
  StationId id = station_ids_.next();
  Station s;
  s.link = link;
  stations_.emplace(id, std::move(s));
  return id;
}

void SimNetwork::set_handler(StationId station, MessageHandler handler) {
  auto it = stations_.find(station);
  WDOC_CHECK(it != stations_.end(), "set_handler on unknown station");
  it->second.handler = std::move(handler);
}

Status SimNetwork::set_link(StationId id, const StationLink& link) {
  auto it = stations_.find(id);
  if (it == stations_.end()) return {Errc::not_found, "no such station"};
  it->second.link = link;
  return Status::ok();
}

Result<StationLink> SimNetwork::link_of(StationId id) const {
  auto it = stations_.find(id);
  if (it == stations_.end()) return Error{Errc::not_found, "no such station"};
  return it->second.link;
}

Status SimNetwork::set_online(StationId id, bool online) {
  auto it = stations_.find(id);
  if (it == stations_.end()) return {Errc::not_found, "no such station"};
  it->second.online = online;
  return Status::ok();
}

bool SimNetwork::is_online(StationId id) const {
  auto it = stations_.find(id);
  return it != stations_.end() && it->second.online;
}

Status SimNetwork::set_pair_latency(StationId a, StationId b, SimTime latency) {
  if (!stations_.contains(a) || !stations_.contains(b)) {
    return {Errc::not_found, "no such station"};
  }
  if (b < a) std::swap(a, b);
  pair_latency_[{a, b}] = latency;
  return Status::ok();
}

SimTime SimNetwork::transfer_time(std::uint64_t bytes, double bps) {
  if (bps <= 0) return SimTime::seconds(3600);  // effectively stalled
  return SimTime::seconds(static_cast<double>(bytes) * 8.0 / bps);
}

Status SimNetwork::send(Message msg) {
  auto from_it = stations_.find(msg.from);
  if (from_it == stations_.end()) return {Errc::not_found, "unknown sender"};
  auto to_it = stations_.find(msg.to);
  if (to_it == stations_.end()) return {Errc::not_found, "unknown receiver"};
  Station& from = from_it->second;
  Station& to = to_it->second;

  const std::uint64_t size = msg.charged_size();
  msg.seq = ++msg_seq_;
  from.stats.messages_sent++;
  from.stats.bytes_sent += size;
  total_bytes_ += size;
  total_messages_++;
  obs_.messages_sent.inc();
  obs_.bytes_sent.inc(size);

  if (!from.online || !to.online ||
      (from.link.loss_rate > 0 && rng_.bernoulli(from.link.loss_rate)) ||
      (to.link.loss_rate > 0 && rng_.bernoulli(to.link.loss_rate))) {
    from.stats.messages_dropped++;
    obs_.messages_dropped.inc();
    return Status::ok();  // silently lost, like the real thing
  }

  // Injected faults. Checks (and any extra rng draws) happen only while a
  // fault window is open, so healthy runs consume the identical draw
  // sequence with or without a plan installed.
  if (!fault_group_.empty() || !fault_loss_.empty()) {
    bool killed = false;
    if (!fault_group_.empty()) {
      auto ga = fault_group_.find(msg.from);
      auto gb = fault_group_.find(msg.to);
      std::uint64_t gfrom = ga == fault_group_.end() ? 0 : ga->second;
      std::uint64_t gto = gb == fault_group_.end() ? 0 : gb->second;
      killed = gfrom != gto;  // symmetric partition: no crossing either way
    }
    if (!killed && !fault_loss_.empty()) {
      for (StationId endpoint : {msg.from, msg.to}) {
        auto it = fault_loss_.find(endpoint);
        if (it != fault_loss_.end() && rng_.bernoulli(it->second)) {
          killed = true;
          break;
        }
      }
    }
    if (killed) {
      from.stats.messages_dropped++;
      obs_.messages_dropped.inc();
      obs_.fault_drops.inc();
      return Status::ok();
    }
  }

  // Uplink serialization (FIFO behind this sender's earlier messages).
  SimTime depart = std::max(now_, from.up_busy_until) + transfer_time(size, from.link.up_bps);
  from.up_busy_until = depart;
  // Propagation: a per-pair override wins; otherwise the two stations'
  // to-core latencies add. Jitter adds a uniform sample from each side.
  SimTime propagation = from.link.latency + to.link.latency;
  {
    StationId lo = msg.from, hi = msg.to;
    if (hi < lo) std::swap(lo, hi);
    auto pit = pair_latency_.find({lo, hi});
    if (pit != pair_latency_.end()) propagation = pit->second;
  }
  for (const StationLink* link : {&from.link, &to.link}) {
    if (link->jitter_max > SimTime::zero()) {
      propagation += SimTime::micros(static_cast<std::int64_t>(
          rng_.uniform(static_cast<std::uint64_t>(link->jitter_max.as_micros()) + 1)));
    }
  }
  if (!fault_delay_.empty()) {
    for (StationId endpoint : {msg.from, msg.to}) {
      auto it = fault_delay_.find(endpoint);
      if (it != fault_delay_.end()) propagation += it->second;
    }
  }
  SimTime arrive = depart + propagation;
  // Downlink serialization.
  SimTime done = std::max(arrive, to.down_busy_until) + transfer_time(size, to.link.down_bps);
  to.down_busy_until = done;

  StationId to_id = msg.to;
  SimTime sent_at = now_;
  schedule_at(done, [this, to_id, sent_at, m = std::move(msg), size]() {
    auto it = stations_.find(to_id);
    if (it == stations_.end() || !it->second.online) return;
    it->second.stats.messages_received++;
    it->second.stats.bytes_received += size;
    obs_.messages_received.inc();
    obs_.bytes_received.inc(size);
    obs_.delivery_latency_us.observe(
        static_cast<double>((now_ - sent_at).as_micros()));
    if (it->second.handler) it->second.handler(m);
  });
  return Status::ok();
}

void SimNetwork::schedule_at(SimTime at, std::function<void()> fn) {
  WDOC_CHECK(at >= now_, "schedule_at in the past");
  events_.push(Event{at, ++event_seq_, std::move(fn), nullptr});
  obs_.queue_depth.set(static_cast<std::int64_t>(events_.size()));
}

void SimNetwork::schedule_after(SimTime delta, std::function<void()> fn) {
  schedule_at(now_ + delta, std::move(fn));
}

Fabric::TimerHandle SimNetwork::schedule_on(StationId station, SimTime delta,
                                            std::function<void()> fn) {
  // One shared event loop: `station` only selects an execution context on
  // the threaded fabric. The handle lets callers (RpcTracker) abandon
  // deadlines that resolved early.
  (void)station;
  auto cancel = std::make_shared<std::atomic<bool>>(false);
  events_.push(Event{now_ + delta, ++event_seq_, std::move(fn), cancel});
  obs_.queue_depth.set(static_cast<std::int64_t>(events_.size()));
  return cancel;
}

bool SimNetwork::step() {
  while (!events_.empty()) {
    // Cancelled timers are discarded without running and without advancing
    // now_: an abandoned rpc deadline must not stretch the clock benches
    // read after run().
    if (events_.top().cancel && events_.top().cancel->load()) {
      events_.pop();
      obs_.queue_depth.set(static_cast<std::int64_t>(events_.size()));
      continue;
    }
    // priority_queue::top returns const&; move via const_cast is the standard
    // idiom for move-only payloads, but copying the function is fine here.
    Event ev = events_.top();
    events_.pop();
    obs_.queue_depth.set(static_cast<std::int64_t>(events_.size()));
    now_ = ev.at;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t SimNetwork::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t SimNetwork::run_until(SimTime t) {
  std::size_t n = 0;
  for (;;) {
    while (!events_.empty() && events_.top().cancel && events_.top().cancel->load()) {
      events_.pop();
      obs_.queue_depth.set(static_cast<std::int64_t>(events_.size()));
    }
    if (events_.empty() || events_.top().at > t) break;
    step();
    ++n;
  }
  if (now_ < t) now_ = t;
  return n;
}

// --- fault injection ---------------------------------------------------------

void SimNetwork::record_fault(const std::string& detail, StationId station) {
  obs_.faults_injected.inc();
  obs::FlightRecorder::global().record(obs::FlightKind::fault, detail,
                                       station.value(), 0, now_);
}

Status SimNetwork::inject(const FaultPlan& plan) {
  WDOC_TRY(plan.validate());
  auto known = [this](StationId s) { return stations_.contains(s); };
  for (const LossBurst& f : plan.loss_bursts) {
    if (!known(f.station)) return {Errc::not_found, "loss burst: unknown station"};
    if (f.at < now_) return {Errc::invalid_argument, "loss burst scheduled in the past"};
  }
  for (const DelaySpike& f : plan.delay_spikes) {
    if (!known(f.station)) return {Errc::not_found, "delay spike: unknown station"};
    if (f.at < now_) return {Errc::invalid_argument, "delay spike scheduled in the past"};
  }
  for (const Partition& f : plan.partitions) {
    for (StationId s : f.island) {
      if (!known(s)) return {Errc::not_found, "partition: unknown station"};
    }
    if (f.at < now_) return {Errc::invalid_argument, "partition scheduled in the past"};
  }
  for (const Crash& f : plan.crashes) {
    if (!known(f.station)) return {Errc::not_found, "crash: unknown station"};
    if (f.at < now_) return {Errc::invalid_argument, "crash scheduled in the past"};
  }

  for (const LossBurst& f : plan.loss_bursts) {
    schedule_at(f.at, [this, f] {
      fault_loss_[f.station] = f.rate;
      record_fault("loss burst " + std::to_string(f.rate) + " until t=" +
                       f.until.to_string(),
                   f.station);
    });
    schedule_at(f.until, [this, f] {
      fault_loss_.erase(f.station);
      record_fault("loss burst cleared", f.station);
    });
  }
  for (const DelaySpike& f : plan.delay_spikes) {
    schedule_at(f.at, [this, f] {
      fault_delay_[f.station] = f.extra;
      record_fault("delay spike +" + f.extra.to_string(), f.station);
    });
    schedule_at(f.until, [this, f] {
      fault_delay_.erase(f.station);
      record_fault("delay spike cleared", f.station);
    });
  }
  for (const Partition& f : plan.partitions) {
    const std::uint64_t group = ++next_fault_group_;
    schedule_at(f.at, [this, f, group] {
      for (StationId s : f.island) fault_group_[s] = group;
      record_fault("partition: island of " + std::to_string(f.island.size()) +
                       " station(s) isolated",
                   f.island.front());
    });
    schedule_at(f.until, [this, f, group] {
      for (StationId s : f.island) {
        auto it = fault_group_.find(s);
        if (it != fault_group_.end() && it->second == group) fault_group_.erase(it);
      }
      record_fault("partition healed", f.island.front());
    });
  }
  for (const Crash& f : plan.crashes) {
    schedule_at(f.at, [this, f] {
      (void)set_online(f.station, false);
      record_fault("station crash", f.station);
    });
    if (f.restart_at != SimTime::zero()) {
      schedule_at(f.restart_at, [this, f] {
        (void)set_online(f.station, true);
        record_fault("station restart", f.station);
      });
    }
  }
  return Status::ok();
}

const StationStats& SimNetwork::stats(StationId id) const {
  auto it = stations_.find(id);
  WDOC_CHECK(it != stations_.end(), "stats for unknown station");
  return it->second.stats;
}

void SimNetwork::reset_stats() {
  for (auto& [_, s] : stations_) s.stats = StationStats{};
  total_bytes_ = 0;
  total_messages_ = 0;
}

}  // namespace wdoc::net

#include "library/virtual_library.hpp"

#include <algorithm>
#include <cctype>

#include "storage/database.hpp"

namespace wdoc::library {

namespace {

constexpr const char* kEntryTable = "wd_library_entry";
constexpr const char* kLoanTable = "wd_library_loan";

storage::Schema entry_schema() {
  using storage::Column;
  using storage::ValueType;
  return storage::Schema(kEntryTable,
                         {Column{"course_number", ValueType::text, false, false, false},
                          Column{"title", ValueType::text},
                          Column{"instructor", ValueType::text, true, false, true},
                          Column{"keywords", ValueType::text},
                          Column{"script_name", ValueType::text},
                          Column{"starting_url", ValueType::text},
                          Column{"added_at", ValueType::integer}},
                         /*primary_key=*/"course_number");
}

storage::Schema loan_schema() {
  using storage::Column;
  using storage::ValueType;
  return storage::Schema(kLoanTable,
                         {Column{"course_number", ValueType::text, false, false, true},
                          Column{"student", ValueType::integer, false, false, true},
                          Column{"checked_out_at", ValueType::integer, false},
                          Column{"checked_in_at", ValueType::integer}});
}

std::string join_keywords(const std::vector<std::string>& kws) {
  std::string out;
  for (const std::string& kw : kws) {
    if (!out.empty()) out += ",";
    out += kw;
  }
  return out;
}

std::vector<std::string> split_keywords(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

}  // namespace

std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string cur;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      cur.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!cur.empty()) {
      tokens.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) tokens.push_back(std::move(cur));
  return tokens;
}

void VirtualLibrary::index_entry(const LibraryEntry& entry) {
  auto add_tokens = [&](const std::string& text) {
    for (const std::string& tok : tokenize(text)) {
      ++keyword_index_[tok][entry.course_number];
    }
  };
  add_tokens(entry.title);
  for (const std::string& kw : entry.keywords) add_tokens(kw);
  instructor_index_[entry.instructor].insert(entry.course_number);
}

void VirtualLibrary::unindex_entry(const LibraryEntry& entry) {
  auto drop_tokens = [&](const std::string& text) {
    for (const std::string& tok : tokenize(text)) {
      auto it = keyword_index_.find(tok);
      if (it == keyword_index_.end()) continue;
      auto cit = it->second.find(entry.course_number);
      if (cit == it->second.end()) continue;
      if (--cit->second == 0) it->second.erase(cit);
      if (it->second.empty()) keyword_index_.erase(it);
    }
  };
  drop_tokens(entry.title);
  for (const std::string& kw : entry.keywords) drop_tokens(kw);
  auto iit = instructor_index_.find(entry.instructor);
  if (iit != instructor_index_.end()) {
    iit->second.erase(entry.course_number);
    if (iit->second.empty()) instructor_index_.erase(iit);
  }
}

Status VirtualLibrary::add_entry(const LibraryEntry& entry) {
  if (entry.course_number.empty()) {
    return {Errc::invalid_argument, "empty course number"};
  }
  if (entries_.contains(entry.course_number)) {
    return {Errc::already_exists, "course exists: " + entry.course_number};
  }
  entries_.emplace(entry.course_number, entry);
  index_entry(entry);
  return Status::ok();
}

Status VirtualLibrary::remove_entry(const std::string& course_number) {
  auto it = entries_.find(course_number);
  if (it == entries_.end()) return {Errc::not_found, "no course: " + course_number};
  // Outstanding loans keep their ledger rows; the entry disappears.
  unindex_entry(it->second);
  entries_.erase(it);
  return Status::ok();
}

Result<LibraryEntry> VirtualLibrary::get(const std::string& course_number) const {
  auto it = entries_.find(course_number);
  if (it == entries_.end()) return Error{Errc::not_found, "no course: " + course_number};
  return it->second;
}

std::vector<SearchHit> VirtualLibrary::search_keywords(const std::string& query) const {
  std::map<std::string, double> scores;
  for (const std::string& tok : tokenize(query)) {
    auto it = keyword_index_.find(tok);
    if (it == keyword_index_.end()) continue;
    for (const auto& [course, tf] : it->second) {
      scores[course] += 1.0 + 0.1 * static_cast<double>(tf - 1);
    }
  }
  std::vector<SearchHit> hits;
  hits.reserve(scores.size());
  for (const auto& [course, score] : scores) hits.push_back(SearchHit{course, score});
  std::stable_sort(hits.begin(), hits.end(), [](const SearchHit& a, const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.course_number < b.course_number;
  });
  return hits;
}

const std::map<std::string, std::uint32_t>* VirtualLibrary::postings(
    const std::string& token) const {
  auto it = keyword_index_.find(token);
  return it == keyword_index_.end() ? nullptr : &it->second;
}

std::size_t VirtualLibrary::doc_freq(const std::string& token) const {
  const auto* p = postings(token);
  return p == nullptr ? 0 : p->size();
}

const std::set<std::string>* VirtualLibrary::instructor_courses(
    const std::string& name) const {
  auto it = instructor_index_.find(name);
  return it == instructor_index_.end() ? nullptr : &it->second;
}

std::vector<LibraryEntry> VirtualLibrary::by_instructor(const std::string& name) const {
  std::vector<LibraryEntry> out;
  auto it = instructor_index_.find(name);
  if (it == instructor_index_.end()) return out;
  out.reserve(it->second.size());
  for (const std::string& course : it->second) {
    out.push_back(entries_.at(course));
  }
  return out;
}

std::optional<LibraryEntry> VirtualLibrary::by_course_number(
    const std::string& course_number) const {
  auto it = entries_.find(course_number);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::vector<SearchHit> VirtualLibrary::search(const std::string& query) const {
  std::vector<SearchHit> hits = search_keywords(query);
  std::map<std::string, double> scores;
  for (const SearchHit& h : hits) scores[h.course_number] = h.score;
  // Exact course-number match dominates.
  if (entries_.contains(query)) scores[query] += 100.0;
  // Instructor-name match ranks above plain keyword hits.
  if (auto it = instructor_index_.find(query); it != instructor_index_.end()) {
    for (const std::string& course : it->second) scores[course] += 10.0;
  }
  std::vector<SearchHit> out;
  out.reserve(scores.size());
  for (const auto& [course, score] : scores) out.push_back(SearchHit{course, score});
  std::stable_sort(out.begin(), out.end(), [](const SearchHit& a, const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.course_number < b.course_number;
  });
  return out;
}

Status VirtualLibrary::check_out(const std::string& course_number, UserId student,
                                 std::int64_t now) {
  if (!entries_.contains(course_number)) {
    return {Errc::not_found, "no course: " + course_number};
  }
  auto key = std::make_pair(course_number, student.value());
  if (open_loans_.contains(key)) {
    return {Errc::already_exists, "already checked out"};
  }
  open_loans_.emplace(std::move(key), ledger_.size());
  ledger_.push_back(LedgerRecord{course_number, student, now, std::nullopt});
  return Status::ok();
}

Status VirtualLibrary::check_in(const std::string& course_number, UserId student,
                                std::int64_t now) {
  auto it = open_loans_.find(std::make_pair(course_number, student.value()));
  if (it == open_loans_.end()) {
    return {Errc::not_found, "no open loan for this course/student"};
  }
  LedgerRecord& record = ledger_[it->second];
  if (now < record.checked_out_at) {
    return {Errc::invalid_argument, "check-in before check-out"};
  }
  record.checked_in_at = now;
  open_loans_.erase(it);
  return Status::ok();
}

std::vector<LedgerRecord> VirtualLibrary::ledger_of(UserId student) const {
  std::vector<LedgerRecord> out;
  for (const LedgerRecord& r : ledger_) {
    if (r.student == student) out.push_back(r);
  }
  return out;
}

std::vector<UserId> VirtualLibrary::holders_of(const std::string& course_number) const {
  std::vector<UserId> out;
  for (auto it = open_loans_.lower_bound(std::make_pair(course_number, std::uint64_t{0}));
       it != open_loans_.end() && it->first.first == course_number; ++it) {
    out.push_back(UserId{it->first.second});
  }
  return out;
}

Status VirtualLibrary::save(storage::Database& db) const {
  using storage::Value;
  // Replace-all semantics: drop and recreate both tables.
  if (db.catalog().has_table(kLoanTable)) WDOC_TRY(db.drop_table(kLoanTable));
  if (db.catalog().has_table(kEntryTable)) WDOC_TRY(db.drop_table(kEntryTable));
  WDOC_TRY(db.create_table(entry_schema()));
  WDOC_TRY(db.create_table(loan_schema()));
  for (const auto& [_, e] : entries_) {
    WDOC_TRY(db.insert(kEntryTable,
                       {Value(e.course_number), Value(e.title), Value(e.instructor),
                        Value(join_keywords(e.keywords)), Value(e.script_name),
                        Value(e.starting_url), Value(e.added_at)})
                 .status());
  }
  for (const LedgerRecord& r : ledger_) {
    WDOC_TRY(db.insert(kLoanTable,
                       {Value(r.course_number),
                        Value(static_cast<std::int64_t>(r.student.value())),
                        Value(r.checked_out_at),
                        r.checked_in_at ? Value(*r.checked_in_at) : Value::null()})
                 .status());
  }
  return Status::ok();
}

Status VirtualLibrary::load(storage::Database& db) {
  const storage::Table* entries = db.catalog().table(kEntryTable);
  if (entries == nullptr) return {Errc::not_found, "no saved library"};
  entries_.clear();
  keyword_index_.clear();
  instructor_index_.clear();
  ledger_.clear();
  open_loans_.clear();

  Status failed = Status::ok();
  entries->scan([&](RowId, const std::vector<storage::Value>& row) {
    LibraryEntry e;
    e.course_number = row[0].as_text();
    e.title = row[1].is_null() ? "" : row[1].as_text();
    e.instructor = row[2].is_null() ? "" : row[2].as_text();
    e.keywords = split_keywords(row[3].is_null() ? "" : row[3].as_text());
    e.script_name = row[4].is_null() ? "" : row[4].as_text();
    e.starting_url = row[5].is_null() ? "" : row[5].as_text();
    e.added_at = row[6].is_null() ? 0 : row[6].as_int();
    Status s = add_entry(e);
    if (!s.is_ok()) failed = s;
    return failed.is_ok();
  });
  WDOC_TRY(failed);

  if (const storage::Table* loans = db.catalog().table(kLoanTable)) {
    loans->scan([&](RowId, const std::vector<storage::Value>& row) {
      LedgerRecord r;
      r.course_number = row[0].as_text();
      r.student = UserId{static_cast<std::uint64_t>(row[1].as_int())};
      r.checked_out_at = row[2].as_int();
      if (!row[3].is_null()) r.checked_in_at = row[3].as_int();
      if (!r.checked_in_at) {
        open_loans_.emplace(std::make_pair(r.course_number, r.student.value()),
                            ledger_.size());
      }
      ledger_.push_back(std::move(r));
      return true;
    });
  }
  return Status::ok();
}

AssessmentReport VirtualLibrary::assess(UserId student) const {
  AssessmentReport report;
  report.student = student;
  std::set<std::string> distinct;
  for (const LedgerRecord& r : ledger_) {
    if (r.student != student) continue;
    ++report.total_checkouts;
    distinct.insert(r.course_number);
    if (r.checked_in_at) {
      report.total_borrow_micros += *r.checked_in_at - r.checked_out_at;
    } else {
      ++report.still_out;
    }
  }
  report.distinct_courses = distinct.size();
  return report;
}

}  // namespace wdoc::library

// The Web document virtual library (paper §5).
//
// Instructors add/delete document instances (lecture notes); students check
// pages out and in, with no limit on concurrent check-outs; "the check
// in/out procedure serves as an assessment criteria to the study
// performance of a student". Retrieval is "according to matching keywords,
// instructor names, and course numbers/titles" — implemented with an
// inverted keyword index plus instructor and course-number maps.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/result.hpp"

namespace wdoc::storage {
class Database;
}

namespace wdoc::library {

struct LibraryEntry {
  std::string course_number;  // unique key, e.g. "CS101"
  std::string title;
  std::string instructor;
  std::vector<std::string> keywords;
  std::string script_name;    // link into the document database
  std::string starting_url;   // link to the implementation
  std::int64_t added_at = 0;
};

struct SearchHit {
  std::string course_number;
  double score = 0.0;  // matched query tokens (tf-weighted)
};

struct LedgerRecord {
  std::string course_number;
  UserId student;
  std::int64_t checked_out_at = 0;
  std::optional<std::int64_t> checked_in_at;  // empty while still out
};

struct AssessmentReport {
  UserId student;
  std::uint64_t total_checkouts = 0;
  std::uint64_t distinct_courses = 0;
  std::uint64_t still_out = 0;
  std::int64_t total_borrow_micros = 0;  // completed loans only
};

// Lowercased alphanumeric tokens of `text`.
[[nodiscard]] std::vector<std::string> tokenize(const std::string& text);

class VirtualLibrary {
 public:
  // --- instructor operations --------------------------------------------
  [[nodiscard]] Status add_entry(const LibraryEntry& entry);
  [[nodiscard]] Status remove_entry(const std::string& course_number);
  [[nodiscard]] Result<LibraryEntry> get(const std::string& course_number) const;
  [[nodiscard]] std::size_t entry_count() const { return entries_.size(); }

  // --- retrieval ---------------------------------------------------------
  // Ranked multi-token keyword search over title + keywords.
  [[nodiscard]] std::vector<SearchHit> search_keywords(const std::string& query) const;
  [[nodiscard]] std::vector<LibraryEntry> by_instructor(const std::string& name) const;
  [[nodiscard]] std::optional<LibraryEntry> by_course_number(
      const std::string& course_number) const;
  // Union of all three retrieval modes, ranked.
  [[nodiscard]] std::vector<SearchHit> search(const std::string& query) const;

  // --- index introspection (the http federated TF-IDF layer) -------------
  // Term postings for one token: course -> term frequency, nullptr when the
  // token is unindexed. Pointers stay valid until the next add/remove.
  [[nodiscard]] const std::map<std::string, std::uint32_t>* postings(
      const std::string& token) const;
  // Number of entries whose title/keywords contain `token`.
  [[nodiscard]] std::size_t doc_freq(const std::string& token) const;
  // Courses taught by `name`, nullptr when unknown.
  [[nodiscard]] const std::set<std::string>* instructor_courses(
      const std::string& name) const;
  [[nodiscard]] const std::map<std::string, LibraryEntry>& entries() const {
    return entries_;
  }
  // Whole-index views, for building merged federation indexes.
  [[nodiscard]] const std::map<std::string, std::map<std::string, std::uint32_t>>&
  keyword_index() const {
    return keyword_index_;
  }
  [[nodiscard]] const std::map<std::string, std::set<std::string>>& instructor_index()
      const {
    return instructor_index_;
  }

  // --- check-out / check-in ledger ----------------------------------------
  // "In general, there is no limitation of the number of Web pages to be
  // checked out" — the same student may hold many courses; re-checking-out
  // a course already held is rejected.
  [[nodiscard]] Status check_out(const std::string& course_number, UserId student,
                                 std::int64_t now);
  [[nodiscard]] Status check_in(const std::string& course_number, UserId student,
                                std::int64_t now);
  [[nodiscard]] std::vector<LedgerRecord> ledger_of(UserId student) const;
  [[nodiscard]] std::vector<UserId> holders_of(const std::string& course_number) const;
  [[nodiscard]] AssessmentReport assess(UserId student) const;

  // --- persistence ----------------------------------------------------------
  // Mirrors the catalog and the full ledger into two relational tables
  // (`wd_library_entry`, `wd_library_loan`), replacing prior contents; load
  // rebuilds the in-memory indexes. Library state thus survives a durable
  // Database restart alongside the document tables.
  [[nodiscard]] Status save(storage::Database& db) const;
  [[nodiscard]] Status load(storage::Database& db);

 private:
  void index_entry(const LibraryEntry& entry);
  void unindex_entry(const LibraryEntry& entry);

  std::map<std::string, LibraryEntry> entries_;
  std::map<std::string, std::map<std::string, std::uint32_t>> keyword_index_;  // token -> course -> tf
  std::map<std::string, std::set<std::string>> instructor_index_;
  std::vector<LedgerRecord> ledger_;
  // (course, student id) -> index of the open ledger row; keeps check-out /
  // check-in O(log n) instead of scanning the full history.
  std::map<std::pair<std::string, std::uint64_t>, std::size_t> open_loans_;
};

}  // namespace wdoc::library

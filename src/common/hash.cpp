#include "common/hash.hpp"

#include <array>
#include <cstdio>

namespace wdoc {

Digest128 digest128(std::span<const std::uint8_t> data) {
  Digest128 d;
  d.lo = fnv1a64(data);
  // Second pass with a different basis, finished with a strong avalanche so
  // the two words are effectively independent.
  std::uint64_t h = fnv1a64(data, 0x9ae16a3b2f90404fULL);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  d.hi = h ^ (data.size() * 0x9e3779b97f4a7c15ULL);
  return d;
}

Digest128 digest128(std::string_view s) {
  return digest128(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

std::optional<Digest128> Digest128::from_hex(std::string_view hex) {
  if (hex.size() != 32) return std::nullopt;
  auto parse = [](std::string_view part) -> std::optional<std::uint64_t> {
    std::uint64_t v = 0;
    for (char c : part) {
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint64_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint64_t>(c - 'A' + 10);
      } else {
        return std::nullopt;
      }
    }
    return v;
  };
  auto hi = parse(hex.substr(0, 16));
  auto lo = parse(hex.substr(16, 16));
  if (!hi || !lo) return std::nullopt;
  return Digest128{*lo, *hi};
}

std::string Digest128::to_hex() const {
  std::array<char, 33> buf{};
  std::snprintf(buf.data(), buf.size(), "%016llx%016llx",
                static_cast<unsigned long long>(hi), static_cast<unsigned long long>(lo));
  return std::string(buf.data(), 32);
}

}  // namespace wdoc

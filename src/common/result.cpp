#include "common/result.hpp"

namespace wdoc {

const char* errc_name(Errc c) {
  switch (c) {
    case Errc::ok: return "ok";
    case Errc::not_found: return "not_found";
    case Errc::already_exists: return "already_exists";
    case Errc::invalid_argument: return "invalid_argument";
    case Errc::constraint_violation: return "constraint_violation";
    case Errc::lock_conflict: return "lock_conflict";
    case Errc::deadlock: return "deadlock";
    case Errc::timeout: return "timeout";
    case Errc::conflict: return "conflict";
    case Errc::unavailable: return "unavailable";
    case Errc::unreachable: return "unreachable";
    case Errc::io_error: return "io_error";
    case Errc::corrupt: return "corrupt";
    case Errc::unsupported: return "unsupported";
    case Errc::out_of_space: return "out_of_space";
  }
  return "unknown";
}

}  // namespace wdoc

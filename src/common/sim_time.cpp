#include "common/sim_time.hpp"

#include <cstdio>

namespace wdoc {

std::string SimTime::to_string() const {
  char buf[48];
  if (us_ >= 1000000 || us_ <= -1000000) {
    std::snprintf(buf, sizeof buf, "%.3fs", as_seconds());
  } else if (us_ >= 1000 || us_ <= -1000) {
    std::snprintf(buf, sizeof buf, "%.3fms", as_millis());
  } else {
    std::snprintf(buf, sizeof buf, "%lldus", static_cast<long long>(us_));
  }
  return buf;
}

std::ostream& operator<<(std::ostream& os, SimTime t) { return os << t.to_string(); }

}  // namespace wdoc

// Result<T> / Status error handling used across the wdoc libraries.
//
// Library code never throws for expected failures (missing key, lock
// conflict, constraint violation); it returns Result<T>. Exceptions are
// reserved for programming errors via WDOC_CHECK.
#pragma once

#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace wdoc {

enum class Errc {
  ok = 0,
  not_found,
  already_exists,
  invalid_argument,
  constraint_violation,   // unique / foreign-key violation
  lock_conflict,          // incompatible lock held by another owner
  deadlock,               // transaction chosen as deadlock victim
  timeout,
  conflict,               // optimistic / state conflict (e.g. stale check-in)
  unavailable,            // station offline or object not materialized here
  unreachable,            // no live route to the target (every resend refused)
  io_error,
  corrupt,                // failed integrity check while decoding
  unsupported,
  out_of_space,
};

[[nodiscard]] const char* errc_name(Errc c);

struct Error {
  Errc code = Errc::ok;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    return std::string(errc_name(code)) + ": " + message;
  }
};

// A Status is a Result with no payload.
class Status {
 public:
  Status() = default;
  Status(Errc code, std::string message) : error_{code, std::move(message)} {}
  Status(Error e) : error_(std::move(e)) {}  // NOLINT: implicit so WDOC_TRY propagates

  [[nodiscard]] static Status ok() { return {}; }

  [[nodiscard]] bool is_ok() const { return error_.code == Errc::ok; }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] Errc code() const { return error_.code; }
  [[nodiscard]] const std::string& message() const { return error_.message; }
  [[nodiscard]] const Error& error() const { return error_; }

  // Aborts (debug) / throws (release) if not ok. For tests and examples.
  void expect(const char* what) const {
    if (!is_ok()) throw std::runtime_error(std::string(what) + ": " + error_.to_string());
  }

 private:
  Error error_;
};

template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Errc code, std::string message) : error_{code, std::move(message)} {}
  Result(Error e) : error_(std::move(e)) {}  // NOLINT: implicit by design

  [[nodiscard]] bool is_ok() const { return value_.has_value(); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] Errc code() const { return is_ok() ? Errc::ok : error_.code; }
  [[nodiscard]] const std::string& message() const { return error_.message; }
  [[nodiscard]] const Error& error() const { return error_; }
  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : Status(error_);
  }

  [[nodiscard]] T& value() & {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    assert(is_ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    assert(is_ok());
    return std::move(*value_);
  }

  [[nodiscard]] T value_or(T fallback) const {
    return is_ok() ? *value_ : std::move(fallback);
  }

  // Unwrap for tests/examples: throws with context on error.
  T expect(const char* what) && {
    if (!is_ok()) throw std::runtime_error(std::string(what) + ": " + error_.to_string());
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Error error_;
};

// Propagate-on-error helper: evaluates expr (a Status or Result), returns the
// error from the current function if it failed.
#define WDOC_TRY(expr)                                  \
  do {                                                  \
    auto wdoc_try_status_ = (expr);                     \
    if (!wdoc_try_status_.is_ok())                      \
      return ::wdoc::Error(wdoc_try_status_.error());   \
  } while (0)

// Internal-invariant check: throws std::logic_error. Used for conditions that
// indicate a bug in wdoc itself, never for user input.
#define WDOC_CHECK(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) throw std::logic_error(std::string("wdoc check failed: ") + (msg)); \
  } while (0)

}  // namespace wdoc

// Strongly typed identifiers used across the wdoc libraries.
//
// Every subsystem keys its objects with a StrongId<Tag> so that a StationId
// cannot be passed where a ScriptId is expected. Ids are 64-bit, value 0 is
// reserved as "invalid".
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace wdoc {

template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint64_t value) : value_(value) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != 0; }

  friend constexpr bool operator==(StrongId a, StrongId b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(StrongId a, StrongId b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(StrongId a, StrongId b) { return a.value_ < b.value_; }
  friend constexpr bool operator>(StrongId a, StrongId b) { return a.value_ > b.value_; }
  friend constexpr bool operator<=(StrongId a, StrongId b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>=(StrongId a, StrongId b) { return a.value_ >= b.value_; }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) { return os << id.value_; }

 private:
  std::uint64_t value_ = 0;
};

// Monotonic id allocator for a given id type. Not thread safe; each owning
// subsystem guards its own allocator.
template <typename Id>
class IdAllocator {
 public:
  Id next() { return Id{++last_}; }
  void reserve_through(std::uint64_t v) {
    if (v > last_) last_ = v;
  }
  [[nodiscard]] std::uint64_t last() const { return last_; }

 private:
  std::uint64_t last_ = 0;
};

// --- id tags ---------------------------------------------------------------

struct DatabaseTag {};
struct ScriptTag {};
struct ImplementationTag {};
struct TestRecordTag {};
struct BugReportTag {};
struct AnnotationTag {};
struct BlobTag {};
struct StationTag {};
struct ObjectTag {};      // distribution-layer document object (class/instance/ref)
struct TxnTag {};
struct RowTag {};
struct LockResourceTag {};
struct VersionTag {};
struct UserTag {};
struct LectureTag {};

using DatabaseId = StrongId<DatabaseTag>;
using ScriptId = StrongId<ScriptTag>;
using ImplementationId = StrongId<ImplementationTag>;
using TestRecordId = StrongId<TestRecordTag>;
using BugReportId = StrongId<BugReportTag>;
using AnnotationId = StrongId<AnnotationTag>;
using BlobId = StrongId<BlobTag>;
using StationId = StrongId<StationTag>;
using ObjectId = StrongId<ObjectTag>;
using TxnId = StrongId<TxnTag>;
using RowId = StrongId<RowTag>;
using LockResourceId = StrongId<LockResourceTag>;
using VersionId = StrongId<VersionTag>;
using UserId = StrongId<UserTag>;
using LectureId = StrongId<LectureTag>;

}  // namespace wdoc

namespace std {
template <typename Tag>
struct hash<wdoc::StrongId<Tag>> {
  size_t operator()(wdoc::StrongId<Tag> id) const noexcept {
    return std::hash<uint64_t>{}(id.value());
  }
};
}  // namespace std

// Simulated time used by the discrete-event network simulator and by
// timestamps in the document database. Microsecond resolution, 64-bit.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace wdoc {

class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
  [[nodiscard]] static constexpr SimTime micros(std::int64_t us) { return SimTime{us}; }
  [[nodiscard]] static constexpr SimTime millis(std::int64_t ms) { return SimTime{ms * 1000}; }
  [[nodiscard]] static constexpr SimTime seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e6)};
  }
  [[nodiscard]] static constexpr SimTime minutes(double m) { return seconds(m * 60.0); }

  [[nodiscard]] constexpr std::int64_t as_micros() const { return us_; }
  [[nodiscard]] constexpr double as_millis() const { return static_cast<double>(us_) / 1e3; }
  [[nodiscard]] constexpr double as_seconds() const { return static_cast<double>(us_) / 1e6; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.us_ + b.us_}; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.us_ - b.us_}; }
  constexpr SimTime& operator+=(SimTime other) {
    us_ += other.us_;
    return *this;
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) { return SimTime{a.us_ * k}; }

  friend constexpr bool operator==(SimTime, SimTime) = default;
  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  friend std::ostream& operator<<(std::ostream& os, SimTime t);

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit SimTime(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace wdoc

// Deterministic random number generation for simulations and workloads.
//
// Xoshiro256** seeded via SplitMix64. Every simulator/workload component
// takes an explicit seed so that experiments are reproducible run-to-run.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/result.hpp"

namespace wdoc {

class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, n). n must be > 0. Uses rejection to avoid modulo bias.
  std::uint64_t uniform(std::uint64_t n) {
    WDOC_CHECK(n > 0, "uniform(0)");
    const std::uint64_t threshold = -n % n;
    for (;;) {
      std::uint64_t r = next_u64();
      if (r >= threshold) return r % n;
    }
  }

  // Uniform in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) {
    WDOC_CHECK(lo <= hi, "uniform_range: lo > hi");
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) { return uniform01() < p; }

  // Exponential with given mean (> 0).
  double exponential(double mean) {
    double u = uniform01();
    if (u >= 1.0) u = 0.9999999999999999;
    return -mean * std::log1p(-u);
  }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

// Zipfian sampler over {0, .., n-1} with exponent s, rank 0 most popular.
// Precomputes the CDF; sampling is a binary search (O(log n)).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    WDOC_CHECK(n > 0, "ZipfSampler: n == 0");
    double sum = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
      cdf_[k] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  std::size_t sample(Rng& rng) const {
    double u = rng.uniform01();
    std::size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace wdoc

// Content hashing for BLOB dedup and integrity checks.
//
// Digest128 is built from two independent FNV-1a passes; it is a
// content-address, not a cryptographic commitment — collision resistance at
// the 2^-64 level is ample for a course-material store.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>

namespace wdoc {

[[nodiscard]] constexpr std::uint64_t fnv1a64(std::span<const std::uint8_t> data,
                                              std::uint64_t seed = 1469598103934665603ULL) {
  std::uint64_t h = seed;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

[[nodiscard]] inline std::uint64_t fnv1a64(std::string_view s,
                                           std::uint64_t seed = 1469598103934665603ULL) {
  return fnv1a64(std::span<const std::uint8_t>(
                     reinterpret_cast<const std::uint8_t*>(s.data()), s.size()),
                 seed);
}

[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  // boost-style mix widened to 64 bits.
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

struct Digest128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend constexpr bool operator==(const Digest128&, const Digest128&) = default;
  friend constexpr bool operator<(const Digest128& a, const Digest128& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }

  [[nodiscard]] std::string to_hex() const;
  // Inverse of to_hex(); fails on malformed input.
  [[nodiscard]] static std::optional<Digest128> from_hex(std::string_view hex);
};

[[nodiscard]] Digest128 digest128(std::span<const std::uint8_t> data);
[[nodiscard]] Digest128 digest128(std::string_view s);

}  // namespace wdoc

namespace std {
template <>
struct hash<wdoc::Digest128> {
  size_t operator()(const wdoc::Digest128& d) const noexcept {
    return static_cast<size_t>(wdoc::hash_combine(d.lo, d.hi));
  }
};
}  // namespace std

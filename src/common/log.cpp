#include "common/log.hpp"

namespace wdoc {

const char* Log::name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}

void Log::write(LogLevel lvl, const char* fmt, ...) {
  std::fprintf(stderr, "[%s] ", name(lvl));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace wdoc

// Minimal leveled logger. Off by default in benches/tests; examples raise
// the level to show the narrative of a run.
#pragma once

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace wdoc {

enum class LogLevel { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

class Log {
 public:
  // Atomic: the level is read from every ThreadTransport worker while
  // examples raise/lower it on the main thread.
  static std::atomic<LogLevel>& level() {
    static std::atomic<LogLevel> lvl{LogLevel::warn};
    return lvl;
  }

  static void write(LogLevel lvl, const char* fmt, ...)
      __attribute__((format(printf, 2, 3)));

  static const char* name(LogLevel lvl);
};

#define WDOC_LOG(lvl, ...)                                         \
  do {                                                             \
    if (static_cast<int>(lvl) >=                                   \
        static_cast<int>(::wdoc::Log::level().load(std::memory_order_relaxed))) \
      ::wdoc::Log::write(lvl, __VA_ARGS__);                        \
  } while (0)

#define WDOC_TRACE(...) WDOC_LOG(::wdoc::LogLevel::trace, __VA_ARGS__)
#define WDOC_DEBUG(...) WDOC_LOG(::wdoc::LogLevel::debug, __VA_ARGS__)
#define WDOC_INFO(...) WDOC_LOG(::wdoc::LogLevel::info, __VA_ARGS__)
#define WDOC_WARN(...) WDOC_LOG(::wdoc::LogLevel::warn, __VA_ARGS__)
#define WDOC_ERROR(...) WDOC_LOG(::wdoc::LogLevel::error, __VA_ARGS__)

}  // namespace wdoc
